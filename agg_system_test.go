package triggerman

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"triggerman/internal/types"
)

func salesSource(t testing.TB, sys *System) *TableSource {
	t.Helper()
	s, err := sys.DefineTableSource("sales",
		types.Column{Name: "region", Kind: types.KindVarchar},
		types.Column{Name: "amount", Kind: types.KindInt},
		types.Column{Name: "rep", Kind: types.KindVarchar})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sale(region string, amount int64, rep string) types.Tuple {
	return types.Tuple{types.NewString(region), types.NewInt(amount), types.NewString(rep)}
}

func TestAggregateHotRegion(t *testing.T) {
	// The paper's §2 aggregate example shape: fire when a region's sale
	// count crosses a threshold.
	sys := syncSystem(t)
	sales := salesSource(t, sys)
	err := sys.CreateTrigger(`create trigger hot from sales
		group by region
		having count(region) > 2
		do raise event HotRegion(sales.region, count(region))`)
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := sys.Subscribe("HotRegion", 8)

	sales.Insert(sale("north", 10, "a"))
	sales.Insert(sale("south", 20, "a"))
	sales.Insert(sale("north", 30, "b"))
	select {
	case n := <-sub.C():
		t.Fatalf("premature fire: %v", n)
	default:
	}
	// Third northern sale crosses the threshold.
	sales.Insert(sale("north", 40, "c"))
	select {
	case n := <-sub.C():
		if n.Args[0].Str() != "north" || n.Args[1].Int() != 3 {
			t.Errorf("args = %v", n.Args)
		}
	default:
		t.Fatal("HotRegion did not fire")
	}
	// Further northern sales do not re-fire (no transition).
	sales.Insert(sale("north", 50, "d"))
	select {
	case n := <-sub.C():
		t.Fatalf("re-fire without transition: %v", n)
	default:
	}
	// Deleting two re-arms; crossing again fires again.
	sales.Delete(sale("north", 10, "a"))
	sales.Delete(sale("north", 30, "b"))
	sales.Delete(sale("north", 40, "c")) // count 1
	sales.Insert(sale("north", 60, "e"))
	sales.Insert(sale("north", 70, "f")) // count 3 again
	select {
	case n := <-sub.C():
		if n.Args[1].Int() != 3 {
			t.Errorf("re-fire args = %v", n.Args)
		}
	default:
		t.Fatal("did not re-fire after re-arming")
	}
}

func TestAggregateWithSelection(t *testing.T) {
	// The when clause filters which rows feed the aggregates.
	sys := syncSystem(t)
	sales := salesSource(t, sys)
	err := sys.CreateTrigger(`create trigger big from sales
		when sales.amount >= 100
		group by region
		having count(region) > 1
		do raise event BigSales(sales.region)`)
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := sys.Subscribe("BigSales", 4)
	sales.Insert(sale("west", 50, "a"))  // filtered out
	sales.Insert(sale("west", 150, "a")) // counts
	sales.Insert(sale("west", 60, "b"))  // filtered out
	select {
	case n := <-sub.C():
		t.Fatalf("premature: %v", n)
	default:
	}
	sales.Insert(sale("west", 200, "b")) // second counting row -> fire
	select {
	case n := <-sub.C():
		if n.Args[0].Str() != "west" {
			t.Errorf("args = %v", n.Args)
		}
	default:
		t.Fatal("no fire")
	}
}

func TestAggregateSumInExecSQL(t *testing.T) {
	// Aggregate values substitute into execSQL actions too.
	sys := syncSystem(t)
	sales := salesSource(t, sys)
	if _, err := sys.DB().CreateTable("alerts", types.MustSchema(
		types.Column{Name: "region", Kind: types.KindVarchar},
		types.Column{Name: "total", Kind: types.KindFloat})); err != nil {
		t.Fatal(err)
	}
	err := sys.CreateTrigger(`create trigger rev from sales
		group by region
		having sum(amount) > 100
		do execSQL 'insert into alerts values (:NEW.sales.region, sum(amount))'`)
	if err != nil {
		t.Fatal(err)
	}
	sales.Insert(sale("east", 60, "a"))
	sales.Insert(sale("east", 70, "b")) // sum 130 -> fire
	res, err := sys.Exec("select region, total from alerts")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "east" || res.Rows[0][1].Float() != 130 {
		t.Fatalf("alerts = %v", res.Rows)
	}
}

func TestAggregateGroupsIndependent(t *testing.T) {
	sys := syncSystem(t)
	sales := salesSource(t, sys)
	err := sys.CreateTrigger(`create trigger t from sales
		group by region, rep
		having count(amount) > 1
		do raise event Pair(sales.region, sales.rep)`)
	if err != nil {
		t.Fatal(err)
	}
	var fired int64
	sys.FireHook = func(uint64, []types.Tuple) { atomic.AddInt64(&fired, 1) }
	// Composite grouping: (north,a) twice fires once; (north,b) separate.
	sales.Insert(sale("north", 1, "a"))
	sales.Insert(sale("north", 1, "b"))
	sales.Insert(sale("north", 1, "a"))
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	sales.Insert(sale("north", 1, "b"))
	if fired != 2 {
		t.Fatalf("fired = %d", fired)
	}
}

func TestAggregateUpdateMovesGroups(t *testing.T) {
	sys := syncSystem(t)
	sales := salesSource(t, sys)
	err := sys.CreateTrigger(`create trigger t from sales
		group by region
		having count(region) > 1
		do raise event Two(sales.region)`)
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := sys.Subscribe("Two", 4)
	sales.Insert(sale("a", 1, "r"))
	sales.Insert(sale("b", 1, "r"))
	// Move b's row into region a: fires for a.
	sales.Update(sale("b", 1, "r"), sale("a", 1, "r"))
	select {
	case n := <-sub.C():
		if n.Args[0].Str() != "a" {
			t.Errorf("args = %v", n.Args)
		}
	default:
		t.Fatal("update did not fire")
	}
}

func TestAggregateDisabledTriggerInert(t *testing.T) {
	sys := syncSystem(t)
	sales := salesSource(t, sys)
	if err := sys.CreateTrigger(`create trigger t from sales
		group by region having count(region) > 1
		do raise event E(sales.region)`); err != nil {
		t.Fatal(err)
	}
	sys.DisableTrigger("t")
	var fired int64
	sys.FireHook = func(uint64, []types.Tuple) { atomic.AddInt64(&fired, 1) }
	sales.Insert(sale("x", 1, "r"))
	sales.Insert(sale("x", 1, "r"))
	if fired != 0 {
		t.Fatal("disabled aggregate trigger fired")
	}
}

func TestAggregateAsync(t *testing.T) {
	sys, err := Open(Options{Drivers: 4, Queue: MemoryQueue, Threshold: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sales := salesSource(t, sys)
	if err := sys.CreateTrigger(`create trigger t from sales
		group by region having count(region) > 99
		do raise event Century(sales.region, count(region))`); err != nil {
		t.Fatal(err)
	}
	sub, _ := sys.Subscribe("Century", 16)
	for i := 0; i < 300; i++ {
		region := fmt.Sprintf("r%d", i%3)
		if err := sales.Insert(sale(region, 1, "x")); err != nil {
			t.Fatal(err)
		}
	}
	sys.Drain()
	if sys.Errors() != 0 {
		t.Fatalf("async errors: %v", sys.LastError())
	}
	// Each of the 3 regions reaches 100 exactly once.
	got := map[string]bool{}
	for len(sub.C()) > 0 {
		n := <-sub.C()
		if got[n.Args[0].Str()] {
			t.Fatalf("region %s fired twice", n.Args[0].Str())
		}
		if n.Args[1].Int() != 100 {
			t.Fatalf("count = %v", n.Args[1])
		}
		got[n.Args[0].Str()] = true
	}
	if len(got) != 3 {
		t.Fatalf("regions fired = %d", len(got))
	}
}

func TestAggregateDropCleansState(t *testing.T) {
	sys := syncSystem(t)
	sales := salesSource(t, sys)
	if err := sys.CreateTrigger(`create trigger t from sales
		group by region having count(region) > 0
		do raise event E(sales.region)`); err != nil {
		t.Fatal(err)
	}
	sales.Insert(sale("x", 1, "r"))
	if err := sys.DropTrigger("t"); err != nil {
		t.Fatal(err)
	}
	var fired int64
	sys.FireHook = func(uint64, []types.Tuple) { atomic.AddInt64(&fired, 1) }
	sales.Insert(sale("x", 1, "r"))
	if fired != 0 {
		t.Fatal("dropped aggregate trigger fired")
	}
}
