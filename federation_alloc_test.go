package triggerman

import (
	"testing"

	"triggerman/internal/datasource"
	"triggerman/internal/metrics"
	"triggerman/internal/workload"
)

// benchFederation is the minimal Federation stand-in for hot-path
// guards: a scrape is one registry snapshot merged and rendered, the
// same work the fleet layer does per round, without importing
// internal/fleet (which imports this package).
type benchFederation struct{ sys *System }

func (f benchFederation) ClusterMetrics() (string, error) {
	snaps := map[string]*metrics.Snapshot{"self": f.sys.met.Snapshot()}
	return metrics.Merge(snaps).Render(), nil
}

func (f benchFederation) ClusterSloz() (any, error) { return nil, nil }

// applyAllocs measures steady-state allocations of one token apply.
func applyAllocs(t *testing.T, sys *System) float64 {
	t.Helper()
	if _, err := sys.DefineStreamSource("emp", workload.EmpSchema.Columns...); err != nil {
		t.Fatal(err)
	}
	src, _ := sys.reg.ByName("emp")
	tok := datasource.Token{SourceID: src.ID, Op: datasource.OpInsert,
		New: workload.EmpRow("user0000001", 1, "d")}
	// Warm caches (interning, histograms, queue) before counting.
	for i := 0; i < 100; i++ {
		if err := sys.apply(tok); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(200, func() {
		if err := sys.apply(tok); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFederationAddsNoHotPathAllocs is the guard behind the fleet
// layer's "off the token hot path" claim: installing the federation
// hook and running scrape rounds must not add a single allocation to
// the apply path — peers read registry snapshots, the token never
// sees them.
func TestFederationAddsNoHotPathAllocs(t *testing.T) {
	open := func() *System {
		sys, err := Open(Options{
			Synchronous:      true,
			Queue:            MemoryQueue,
			TraceSampleEvery: -1,
			DisableSLO:       true,
			DisableProfiling: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sys.Close() })
		return sys
	}

	base := applyAllocs(t, open())

	fedSys := open()
	fed := benchFederation{sys: fedSys}
	fedSys.SetFederation(fed)
	// Exercise the scrape path so any lazily-allocated state exists,
	// then leave it idle: AllocsPerRun counts process-global mallocs,
	// so the guard isolates what the hook's presence costs the token.
	for i := 0; i < 3; i++ {
		if _, err := fed.ClusterMetrics(); err != nil {
			t.Fatal(err)
		}
	}
	withFed := applyAllocs(t, fedSys)

	t.Logf("allocs/apply: base=%.1f federation=%.1f", base, withFed)
	if withFed > base+0.5 {
		t.Fatalf("federation added hot-path allocations: base %.1f, with federation %.1f",
			base, withFed)
	}
}
