package triggerman

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"triggerman/internal/types"
)

// TestKitchenSink runs every major feature in one asynchronous system:
// persistent durable queue, Gator networks, condition partitions,
// equality + range single-variable triggers, a multi-table join
// trigger, an aggregate trigger, an execSQL cascade, and enable/disable
// — with exact expected counts.
func TestKitchenSink(t *testing.T) {
	sys, err := Open(Options{
		DiskPath:            filepath.Join(t.TempDir(), "sink.db"),
		Drivers:             4,
		Queue:               PersistentQueue,
		DurableQueue:        true,
		GatorNetworks:       true,
		ConditionPartitions: 2,
		Threshold:           time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	orders, err := sys.DefineTableSource("orders",
		types.Column{Name: "customer", Kind: types.KindVarchar},
		types.Column{Name: "amount", Kind: types.KindInt},
		types.Column{Name: "region", Kind: types.KindVarchar})
	if err != nil {
		t.Fatal(err)
	}
	vip, err := sys.DefineTableSource("vip",
		types.Column{Name: "name", Kind: types.KindVarchar})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DefineTableSource("audit",
		types.Column{Name: "who", Kind: types.KindVarchar},
		types.Column{Name: "amount", Kind: types.KindInt}); err != nil {
		t.Fatal(err)
	}

	// 50 equality triggers (one signature class), one per customer name.
	for i := 0; i < 50; i++ {
		if err := sys.CreateTrigger(fmt.Sprintf(
			`create trigger watch%02d from orders when orders.customer = 'c%02d'
			 do raise event Watch%02d()`, i, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// A range trigger.
	if err := sys.CreateTrigger(`create trigger big from orders
		when orders.amount > 900 do raise event BigOrder(orders.customer, orders.amount)`); err != nil {
		t.Fatal(err)
	}
	// A multi-table join trigger (runs through a Gator network) with an
	// execSQL action that cascades into the audit source.
	if err := sys.CreateTrigger(`create trigger vipOrder from orders o, vip v
		when o.customer = v.name
		do execSQL 'insert into audit values (:NEW.o.customer, :NEW.o.amount)'`); err != nil {
		t.Fatal(err)
	}
	// An aggregate trigger over the cascaded audit stream.
	if err := sys.CreateTrigger(`create trigger vipSpree from audit
		group by who having count(who) > 2
		do raise event Spree(audit.who, count(who))`); err != nil {
		t.Fatal(err)
	}
	// A disabled trigger that must never fire.
	if err := sys.CreateTrigger(`create trigger never from orders
		when orders.amount > 0 do raise event Never()`); err != nil {
		t.Fatal(err)
	}
	if err := sys.DisableTrigger("never"); err != nil {
		t.Fatal(err)
	}

	counts := map[string]*int64{}
	for _, name := range []string{"Watch", "BigOrder", "Spree", "Never"} {
		var c int64
		counts[name] = &c
	}
	sub, _ := sys.Subscribe("*", 4096)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := range sub.C() {
			switch {
			case len(n.Name) >= 5 && n.Name[:5] == "Watch":
				atomic.AddInt64(counts["Watch"], 1)
			case n.Name == "BigOrder":
				atomic.AddInt64(counts["BigOrder"], 1)
			case n.Name == "Spree":
				atomic.AddInt64(counts["Spree"], 1)
			case n.Name == "Never":
				atomic.AddInt64(counts["Never"], 1)
			}
		}
	}()

	// Two VIPs.
	vip.Insert(types.Tuple{types.NewString("c07")})
	vip.Insert(types.Tuple{types.NewString("c13")})

	// 200 orders: customers c00..c49 cycling, amounts 0..999 cycling,
	// so each customer gets 4 orders.
	for i := 0; i < 200; i++ {
		err := orders.Insert(types.Tuple{
			types.NewString(fmt.Sprintf("c%02d", i%50)),
			types.NewInt(int64(i * 5 % 1000)),
			types.NewString("r1"),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sys.Drain()
	sub.Cancel()
	<-done

	if sys.Errors() != 0 {
		t.Fatalf("async errors: %v", sys.LastError())
	}
	// Watch: every order matches exactly one customer trigger -> 200.
	if got := atomic.LoadInt64(counts["Watch"]); got != 200 {
		t.Errorf("Watch = %d, want 200", got)
	}
	// BigOrder: amounts are i*5 % 1000 for i 0..199 -> 905..995 occur
	// for i%200 in 181..199 -> 19 values > 900.
	if got := atomic.LoadInt64(counts["BigOrder"]); got != 19 {
		t.Errorf("BigOrder = %d, want 19", got)
	}
	// vipOrder cascade: c07 and c13 each placed 4 orders -> 8 audit rows.
	res, err := sys.Exec("select * from audit")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Errorf("audit rows = %d, want 8", len(res.Rows))
	}
	// Spree: each VIP's audit count crosses 2 exactly once -> 2 events.
	if got := atomic.LoadInt64(counts["Spree"]); got != 2 {
		t.Errorf("Spree = %d, want 2", got)
	}
	if got := atomic.LoadInt64(counts["Never"]); got != 0 {
		t.Errorf("Never fired %d times", got)
	}
	// Sanity: dropped events would invalidate the assertions above.
	if sub.Dropped() != 0 {
		t.Fatalf("subscriber dropped %d events", sub.Dropped())
	}
}
