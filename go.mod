module triggerman

go 1.22
