package triggerman

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"triggerman/internal/catalog"
	"triggerman/internal/phasecounter"
	"triggerman/internal/predindex"
	"triggerman/internal/profile"
)

// TriggerCost is one trigger's attributed cost snapshot, built from the
// space-saving sketch (counts may under-estimate by at most RankErr
// after a slot replacement; see internal/profile).
type TriggerCost struct {
	TriggerID   uint64  `json:"trigger_id"`
	Name        string  `json:"name,omitempty"`
	Probes      int64   `json:"probes"`
	Matches     int64   `json:"matches"`
	Selectivity float64 `json:"selectivity"`
	ActionNs    int64   `json:"action_ns"`
	ActionRuns  int64   `json:"action_runs"`
	Failures    int64   `json:"failures"`
	Retries     int64   `json:"retries"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	RankWeight  int64   `json:"rank_weight"`
	RankErr     int64   `json:"rank_err,omitempty"`

	Network *catalog.NetworkShape `json:"network,omitempty"`
}

// triggerzPayload is the /triggerz JSON shape.
type triggerzPayload struct {
	ProfilingOff bool `json:"profiling_off,omitempty"`
	// Tracked / Capacity / Evictions describe the sketch itself, so a
	// reader can judge how trustworthy the rankings are: zero evictions
	// means every listed count is exact.
	Tracked   int           `json:"tracked"`
	Capacity  int           `json:"capacity"`
	Evictions int64         `json:"evictions"`
	Hot       []TriggerCost `json:"hot"`
	Slow      []TriggerCost `json:"slow"`
	Failing   []TriggerCost `json:"failing"`
}

// indexzPayload is the /indexz JSON shape.
type indexzPayload struct {
	Signatures []predindex.SigSnapshot `json:"signatures"`
	// Hot ranks signature IDs by their exact probe counters, descending
	// (top 10, zero-probe signatures omitted).
	Hot []uint64 `json:"hot_signatures,omitempty"`
	// Contention reports the phase-reconciliation domains: how many
	// counters run sliced, promotion/demotion totals, and reconcile
	// recency. The viral-entity runbook starts here.
	Contention ContentionStats `json:"contention"`
}

// ContentionStats pairs the system's two phase-reconciliation domains:
// the predicate index's per-signature and per-constant counters, and
// the cost-attribution sketch's per-trigger cells. Both share the
// driver pool's slot geometry and the ReconcileEvery epoch clock.
type ContentionStats struct {
	Index   phasecounter.DomainStats `json:"index"`
	Profile phasecounter.DomainStats `json:"profile"`
}

// Contention snapshots both phase-reconciliation domains. Embedders
// and the skew benchmark read it to see whether hot keys are being
// sliced and how stale the reconciled readings are.
func (s *System) Contention() ContentionStats {
	return ContentionStats{
		Index:   s.pidx.Contention(),
		Profile: s.prof.Contention(),
	}
}

func (s *System) costOf(e profile.Entry) TriggerCost {
	tc := TriggerCost{
		TriggerID:   e.Key,
		Probes:      e.Counts[profile.Probes],
		Matches:     e.Counts[profile.Matches],
		Selectivity: e.Selectivity(),
		ActionNs:    e.Counts[profile.ActionNanos],
		ActionRuns:  e.Counts[profile.ActionRuns],
		Failures:    e.Counts[profile.Failures],
		Retries:     e.Counts[profile.Retries],
		CacheHits:   e.Counts[profile.CacheHits],
		CacheMisses: e.Counts[profile.CacheMisses],
		RankWeight:  e.Weight,
		RankErr:     e.Err,
	}
	if name, ok := s.cat.TriggerName(e.Key); ok {
		tc.Name = name
	}
	if shape, ok := s.cat.NetworkShape(e.Key); ok && shape.Kind != "" {
		tc.Network = &shape
	}
	return tc
}

func (s *System) triggerzPayload(k int) triggerzPayload {
	p := triggerzPayload{Hot: []TriggerCost{}, Slow: []TriggerCost{}, Failing: []TriggerCost{}}
	prof := s.prof
	if prof == nil {
		p.ProfilingOff = true
		return p
	}
	p.Tracked = prof.Triggers.Len()
	p.Capacity = prof.Triggers.Capacity()
	p.Evictions = prof.Triggers.Evictions()
	for _, e := range prof.Triggers.TopK(profile.Probes, k) {
		p.Hot = append(p.Hot, s.costOf(e))
	}
	for _, e := range prof.Triggers.TopK(profile.ActionNanos, k) {
		p.Slow = append(p.Slow, s.costOf(e))
	}
	for _, e := range prof.Triggers.TopK(profile.Failures, k) {
		p.Failing = append(p.Failing, s.costOf(e))
	}
	return p
}

func (s *System) indexzPayload() indexzPayload {
	p := indexzPayload{Signatures: s.pidx.Snapshot(), Contention: s.Contention()}
	ranked := append([]predindex.SigSnapshot(nil), p.Signatures...)
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Probes != ranked[j].Probes {
			return ranked[i].Probes > ranked[j].Probes
		}
		return ranked[i].ID < ranked[j].ID
	})
	for _, sn := range ranked {
		if sn.Probes == 0 || len(p.Hot) == 10 {
			break
		}
		p.Hot = append(p.Hot, sn.ID)
	}
	return p
}

// ExplainTrigger renders a human-readable cost and placement report for
// one trigger: its predicate-index registrations (signature, constant-
// set organization, estimated probe cost), discrimination-network
// shape, cache residency, and attributed costs since Open. This backs
// the console/wire "explain <trigger>" verb.
func (s *System) ExplainTrigger(name string) (string, error) {
	if s.isClosed() {
		return "", errClosed
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return "", fmt.Errorf("explain: usage: explain <trigger-name>")
	}
	id, ok := s.cat.TriggerByName(name)
	if !ok {
		return "", fmt.Errorf("explain: unknown trigger %q", name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trigger %s (id %d)", name, id)
	if !s.cat.IsFireable(id) {
		b.WriteString(" [not fireable: disabled trigger or set]")
	}
	b.WriteByte('\n')
	if text, ok := s.cat.TriggerText(id); ok {
		for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
			fmt.Fprintf(&b, "  | %s\n", strings.TrimSpace(line))
		}
	}

	// Predicate-index placement: where each selection predicate lives
	// and what one probe of that signature's constant set costs.
	snaps := make(map[uint64]predindex.SigSnapshot)
	for _, sn := range s.pidx.Snapshot() {
		snaps[sn.ID] = sn
	}
	regs := s.cat.TriggerRegistrations(id)
	if len(regs) == 0 {
		b.WriteString("predicate index: no registrations (multi-variable or catch-all condition)\n")
	} else {
		b.WriteString("predicate index:\n")
		for _, reg := range regs {
			fmt.Fprintf(&b, "  sig %d on source %d: %s", reg.SigID, reg.Source, reg.Expr)
			if sn, ok := snaps[reg.SigID]; ok {
				fmt.Fprintf(&b, "\n    organization %s (%s), %d instance(s), %d partition(s), est probe %.0fns, probes=%d matches=%d",
					sn.Org, sn.Structure, sn.Size, sn.Partitions, sn.EstProbeCostNs, sn.Probes, sn.Matches)
				fmt.Fprintf(&b, "\n    counters %s", sn.Phase)
				if sn.Phase == "sliced" {
					fmt.Fprintf(&b, " (%d slice(s))", sn.Slices)
				}
				if sn.Reconciles > 0 {
					fmt.Fprintf(&b, ", %d reconcile(s), last %s ago",
						sn.Reconciles, time.Duration(sn.LastReconcileAgeNs).Round(time.Millisecond))
				}
				for _, hc := range sn.HotConstants {
					fmt.Fprintf(&b, "\n    hot constant %s: probes=%d matches=%d slices=%d",
						hc.Consts, hc.Probes, hc.Matches, hc.Slices)
				}
			}
			b.WriteByte('\n')
		}
	}

	if shape, ok := s.cat.NetworkShape(id); ok && shape.Kind != "" {
		fmt.Fprintf(&b, "network: %s, %d node(s) (%d var(s), %d beta(s)), %d alpha tuple(s), %d beta tuple(s)\n",
			shape.Kind, shape.Nodes(), shape.Vars, shape.Betas, shape.AlphaTuples, shape.BetaTuples)
	}
	fmt.Fprintf(&b, "trigger cache: resident=%v\n", s.cat.Cache().Resident(id))

	if s.prof == nil {
		b.WriteString("cost attribution: profiling disabled (Options.DisableProfiling)\n")
		return b.String(), nil
	}
	e, tracked := s.prof.TriggerEntry(id)
	if !tracked {
		b.WriteString("cost attribution: not tracked (no activity, or displaced from the top-K sketch)\n")
		return b.String(), nil
	}
	tc := s.costOf(e)
	fmt.Fprintf(&b, "cost attribution since open (sketch rank weight %d, overcount bound %d):\n", tc.RankWeight, tc.RankErr)
	fmt.Fprintf(&b, "  match probes=%d matches=%d selectivity=%.4f\n", tc.Probes, tc.Matches, tc.Selectivity)
	mean := time.Duration(0)
	if tc.ActionRuns > 0 {
		mean = time.Duration(tc.ActionNs / tc.ActionRuns)
	}
	fmt.Fprintf(&b, "  actions=%d total=%s mean=%s\n", tc.ActionRuns, time.Duration(tc.ActionNs), mean)
	fmt.Fprintf(&b, "  failures=%d retries=%d\n", tc.Failures, tc.Retries)
	fmt.Fprintf(&b, "  cache hits=%d misses=%d\n", tc.CacheHits, tc.CacheMisses)
	return b.String(), nil
}

// explainIndexText renders the /indexz signature table as text for the
// console's bare "explain" (no trigger) form.
func (s *System) explainIndexText() string {
	snaps := s.pidx.Snapshot()
	if len(snaps) == 0 {
		return "predicate index is empty"
	}
	var b strings.Builder
	cs := s.Contention()
	fmt.Fprintf(&b, "%d expression signature(s) (%d sliced counter(s), %d promotion(s), %d reconcile(s)):\n",
		len(snaps), cs.Index.Sliced, cs.Index.Promotions, cs.Index.Reconciles)
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].ID < snaps[j].ID })
	for _, sn := range snaps {
		fmt.Fprintf(&b, "  sig %d source %d %s: %s (%s), %d instance(s), probes=%d matches=%d, counters %s",
			sn.ID, sn.Source, sn.Expr, sn.Org, sn.Structure, sn.Size, sn.Probes, sn.Matches, sn.Phase)
		if sn.Phase == "sliced" {
			fmt.Fprintf(&b, " (%d slice(s))", sn.Slices)
		}
		b.WriteByte('\n')
		for _, hc := range sn.HotConstants {
			fmt.Fprintf(&b, "    hot constant %s: probes=%d matches=%d slices=%d\n",
				hc.Consts, hc.Probes, hc.Matches, hc.Slices)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
