package triggerman

import (
	"sync"
	"testing"
	"time"

	"triggerman/internal/types"
)

// TestSourceFIFOOrderingUnderDriverPool is the ordering property test
// for Options.SourceFIFO: with several drivers and work stealing
// enabled, every firing for a given source must observe that source's
// tokens in enqueue order. Two sources insert concurrently so tokens
// from different sources interleave freely in the shared queue — only
// the per-source subsequences are constrained.
func TestSourceFIFOOrderingUnderDriverPool(t *testing.T) {
	sys, err := Open(Options{
		Drivers:    8,
		Queue:      MemoryQueue,
		SourceFIFO: true,
		TokenBatch: 4,
		Threshold:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	a, err := sys.DefineStreamSource("sa", types.Column{Name: "x", Kind: types.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.DefineStreamSource("sb", types.Column{Name: "x", Kind: types.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateTrigger(`create trigger ta from sa when sa.x >= 0 do raise event EA(sa.x)`); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateTrigger(`create trigger tb from sb when sb.x >= 0 do raise event EB(sb.x)`); err != nil {
		t.Fatal(err)
	}
	idA := triggerIDByName(t, sys, "ta")
	idB := triggerIDByName(t, sys, "tb")

	var mu sync.Mutex
	var gotA, gotB []int64
	sys.FireHook = func(id uint64, combo []types.Tuple) {
		mu.Lock()
		defer mu.Unlock()
		switch id {
		case idA:
			gotA = append(gotA, combo[0][0].Int())
		case idB:
			gotB = append(gotB, combo[0][0].Int())
		}
	}

	const n = 400
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Insert(types.Tuple{types.NewInt(int64(i))}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := b.Insert(types.Tuple{types.NewInt(int64(i))}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	sys.Drain()

	if sys.Errors() != 0 {
		t.Fatalf("errors: %v", sys.LastError())
	}
	mu.Lock()
	defer mu.Unlock()
	checkSequential(t, "sa", gotA, n)
	checkSequential(t, "sb", gotB, n)
	t.Logf("pool steals=%d parks=%d unparks=%d",
		sys.Stats().Pool.Steals, sys.Stats().Pool.Parks, sys.Stats().Pool.Unparks)
}

func checkSequential(t *testing.T, src string, got []int64, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("%s: fired %d times, want %d", src, len(got), n)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("%s: firing %d observed token %d — enqueue order violated", src, i, v)
		}
	}
}

func triggerIDByName(t *testing.T, sys *System, name string) uint64 {
	t.Helper()
	id, ok := sys.Catalog().TriggerByName(name)
	if !ok {
		t.Fatalf("trigger %q not found", name)
	}
	return id
}
