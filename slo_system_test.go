package triggerman

// SLO-engine acceptance: a 10x ingest burst must be diagnosable from
// the telemetry surface alone — no debugger, no log spelunking:
//
//   - /sloz shows the interactive objective's fast-window burn rate
//     above 1x during the burst and recovering to zero after a quiet
//     period longer than the short window,
//   - the end-to-end histogram's tail exemplar resolves (via /statusz)
//     to a concrete trace whose decomposition attributes the excess to
//     queue wait, not service time — the burst made tokens WAIT, it
//     did not make the pipeline slower,
//   - a client-originated traced push crosses the wire and appears in
//     the server's trace ring carrying the client's context string, so
//     one trace identity spans both processes.

import (
	"encoding/json"
	"testing"
	"time"

	"triggerman/client"
	"triggerman/internal/datasource"
	"triggerman/internal/slo"
	"triggerman/internal/types"
	"triggerman/internal/wire"
)

// slozView mirrors the /sloz wire shape (decoded generically so the
// test exercises the real JSON, not internal structs).
type slozView struct {
	Enabled    bool `json:"enabled"`
	Objectives []struct {
		Name    string `json:"name"`
		Burning bool   `json:"burning"`
		Windows []struct {
			Name           string `json:"name"`
			ShortBurnMilli int64  `json:"short_burn_milli"`
			Burning        bool   `json:"burning"`
		} `json:"windows"`
		BudgetRemainingMilli int64 `json:"budget_remaining_milli"`
	} `json:"objectives"`
}

func interactiveFastBurn(t *testing.T, base string) (burnMilli int64, burning bool) {
	t.Helper()
	var v slozView
	getJSON(t, base+"/sloz", &v)
	if !v.Enabled {
		t.Fatal("/sloz disabled")
	}
	for _, o := range v.Objectives {
		if o.Name != "interactive-p99" {
			continue
		}
		for _, w := range o.Windows {
			if w.Name == "fast" {
				return w.ShortBurnMilli, w.Burning
			}
		}
	}
	t.Fatal("/sloz has no interactive-p99 fast window")
	return 0, false
}

func TestBurstDiagnosedFromTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive burst test")
	}
	sys, err := Open(Options{
		Drivers:          2,
		Queue:            MemoryQueue,
		TraceSampleEvery: 1,
		SLOTick:          5 * time.Millisecond,
		// Compressed windows so the burst and the recovery both fit in
		// a test run: the fast pair alerts on a 300ms short window.
		SLOWindows: []slo.WindowPair{
			{Name: "fast", Short: 300 * time.Millisecond, Long: 2 * time.Second, Burn: 1.0},
		},
		SLOObjectives: []SLOObjective{
			{Name: "interactive-p99", Class: "interactive", Target: 0.9, Threshold: time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	src, err := sys.DefineStreamSource("s", types.Column{Name: "v", Kind: types.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateTrigger(
		`create trigger x from s when s.v >= 0 do raise event X(s.v)`); err != nil {
		t.Fatal(err)
	}
	// Each firing costs ~100us of busy spin (not sleep: timer
	// granularity under load would swamp the measurement). At the
	// baseline rate that is far below the 1ms objective; under the
	// burst the two drivers saturate and queue wait dominates.
	sys.FireHook = func(id uint64, tuples []types.Tuple) {
		for begin := time.Now(); time.Since(begin) < 100*time.Microsecond; {
		}
	}
	addr, err := sys.ListenOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	push := func(n int, every time.Duration) {
		for i := 0; i < n; i++ {
			if err := src.Push(datasource.Token{Op: datasource.OpInsert,
				New: types.Tuple{types.NewInt(int64(i))}}); err != nil {
				t.Fatal(err)
			}
			if every > 0 {
				time.Sleep(every)
			}
		}
	}

	// Baseline: 50 tokens at 2ms spacing — the system keeps up, the
	// objective is healthy.
	push(50, 2*time.Millisecond)
	sys.Drain()
	if burn, _ := interactiveFastBurn(t, base); burn > 1000 {
		t.Fatalf("baseline already burning: %d milli", burn)
	}

	// Burst: 10x the baseline token count back-to-back. 500 tokens x
	// 100us / 2 drivers ~ 25ms of queued work — every token past the
	// first handful blows the 1ms threshold on queue wait alone.
	push(500, 0)
	sys.Drain()
	burn, burning := interactiveFastBurn(t, base)
	if burn <= 1000 {
		t.Errorf("fast-window burn during burst = %d milli, want > 1000", burn)
	}
	if !burning {
		t.Error("interactive-p99 fast window not burning during burst")
	}

	// The p999 story: the tail bucket's exemplar must resolve to a
	// trace whose decomposition blames queue wait, not service time.
	var stz struct {
		Exemplars []struct {
			Seq     uint64 `json:"seq"`
			ValueNs int64  `json:"value_ns"`
			Trace   *struct {
				Seq         uint64 `json:"seq"`
				QueueWaitNs int64  `json:"queue_wait_ns"`
				ServiceNs   int64  `json:"service_ns"`
			} `json:"trace"`
		} `json:"exemplars"`
	}
	getJSON(t, base+"/statusz?traces=64", &stz)
	if len(stz.Exemplars) == 0 {
		t.Fatal("/statusz has no exemplars after a fully-traced burst")
	}
	// The slowest populated bucket is the p999 neighborhood.
	tail := stz.Exemplars[0]
	for _, ex := range stz.Exemplars[1:] {
		if ex.ValueNs > tail.ValueNs {
			tail = ex
		}
	}
	if tail.Trace == nil {
		t.Fatalf("tail exemplar (seq %d, %dns) does not resolve to a trace", tail.Seq, tail.ValueNs)
	}
	if tail.Trace.QueueWaitNs <= tail.Trace.ServiceNs {
		t.Errorf("tail trace blames service: queue_wait=%dns service=%dns, want queue wait dominant",
			tail.Trace.QueueWaitNs, tail.Trace.ServiceNs)
	}

	// Recovery: a quiet period longer than the short window drains the
	// fast burn back to zero and resolves the alert.
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(100 * time.Millisecond)
		burn, burning = interactiveFastBurn(t, base)
		if burn == 0 && !burning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("burn did not recover: %d milli, burning=%v", burn, burning)
		}
	}
}

// TestTraceCrossesWire pushes a traced token through the client
// library and asserts the server's trace ring carries the client's
// context string — one trace identity end to end.
func TestTraceCrossesWire(t *testing.T) {
	sys, err := Open(Options{
		Drivers:          1,
		Queue:            MemoryQueue,
		TraceSampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.DefineStreamSource("s", types.Column{Name: "v", Kind: types.KindInt}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateTrigger(
		`create trigger x from s when s.v >= 0 do raise event X(s.v)`); err != nil {
		t.Fatal(err)
	}
	srv, err := sys.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := client.Dial(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, err := c.PushInsertTraced("s", types.Tuple{types.NewInt(7)})
	if err != nil {
		t.Fatal(err)
	}
	if ctx == "" {
		t.Fatal("PushInsertTraced returned no context")
	}
	sys.Drain()

	addr, err := sys.ListenOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var stz struct {
		RecentTraces []json.RawMessage `json:"recent_traces"`
	}
	getJSON(t, "http://"+addr+"/statusz?traces=64", &stz)
	matched := 0
	for _, raw := range stz.RecentTraces {
		var rec struct {
			TraceParent string `json:"traceparent"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.TraceParent == ctx {
			matched++
		}
	}
	if matched != 1 {
		t.Fatalf("server ring has %d traces carrying client context %q, want exactly 1", matched, ctx)
	}

	// A malformed header must fail the push loudly, not drop the trace.
	if err := sys.PushToken("s", datasource.OpInsert, nil,
		wire.FromTuple(types.Tuple{types.NewInt(1)}), "tm1-bogus"); err == nil {
		t.Error("malformed trace header did not fail the push")
	}
}
