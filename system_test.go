package triggerman

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"triggerman/internal/predindex"
	"triggerman/internal/types"
)

func TestActionTasksMode(t *testing.T) {
	sys, err := Open(Options{Drivers: 2, Queue: MemoryQueue, ActionTasks: true, Threshold: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	emp, _ := sys.DefineTableSource("emp",
		types.Column{Name: "name", Kind: types.KindVarchar},
		types.Column{Name: "salary", Kind: types.KindInt})
	if _, err := sys.DB().CreateTable("log", types.MustSchema(
		types.Column{Name: "who", Kind: types.KindVarchar})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		err := sys.CreateTrigger(fmt.Sprintf(
			`create trigger a%02d from emp when emp.salary > 0
			 do execSQL 'insert into log values (:NEW.emp.name)'`, i))
		if err != nil {
			t.Fatal(err)
		}
	}
	emp.Insert(types.Tuple{types.NewString("x"), types.NewInt(5)})
	sys.Drain()
	if sys.Errors() != 0 {
		t.Fatalf("errors: %v", sys.LastError())
	}
	res, _ := sys.Exec("select * from log")
	if len(res.Rows) != 20 {
		t.Errorf("log rows = %d, want 20", len(res.Rows))
	}
	// RunAction tasks were used.
	st := sys.Stats()
	if st.Pool.Enqueued < 21 { // 1 token task + 20 action tasks
		t.Errorf("pool enqueued = %d", st.Pool.Enqueued)
	}
}

func TestPersistentQueueSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.db")
	{
		// Async system: enqueue tokens but close before the drivers can
		// be given a chance... we cannot easily stop mid-flight, so use
		// a synchronous system and enqueue WITHOUT consuming by pushing
		// through the queue directly.
		sys, err := Open(Options{DiskPath: path, Synchronous: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.DefineStreamSource("s", types.Column{Name: "x", Kind: types.KindInt}); err != nil {
			t.Fatal(err)
		}
		if err := sys.CreateTrigger(`create trigger t from s when s.x > 0 do raise event E(s.x)`); err != nil {
			t.Fatal(err)
		}
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := Open(Options{DiskPath: path, Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Stats().Triggers != 1 {
		t.Fatal("trigger lost")
	}
	// Note: the queue table from the prior run is re-created fresh per
	// Open in this implementation when empty; tokens processed
	// synchronously never linger. This test pins the recovery path.
	src, _ := sys.StreamSourceByName("s")
	var fired int64
	sys.FireHook = func(uint64, []types.Tuple) { atomic.AddInt64(&fired, 1) }
	src.Insert(types.Tuple{types.NewInt(5)})
	if fired != 1 {
		t.Errorf("fired = %d", fired)
	}
}

func TestAdaptiveOrganizationThroughFacade(t *testing.T) {
	pol := predindex.Policy{ListMax: 4, MemMax: 32}
	sys, err := Open(Options{Synchronous: true, Policy: &pol})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.DefineStreamSource("emp",
		types.Column{Name: "name", Kind: types.KindVarchar},
		types.Column{Name: "salary", Kind: types.KindInt}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		err := sys.CreateTrigger(fmt.Sprintf(
			`create trigger t%03d from emp when emp.name = 'u%03d' do raise event E()`, i, i))
		if err != nil {
			t.Fatal(err)
		}
	}
	src, _ := sys.reg.ByName("emp")
	entries := sys.pidx.Signatures(src.ID)
	if len(entries) != 1 {
		t.Fatalf("signatures = %d", len(entries))
	}
	if org := entries[0].Organization(); org != predindex.OrgIndexedTable {
		t.Errorf("organization at 100 = %s, want indexed-table", org)
	}
	// Matching still works through the table organization.
	var fired int64
	sys.FireHook = func(uint64, []types.Tuple) { atomic.AddInt64(&fired, 1) }
	s, _ := sys.StreamSourceByName("emp")
	s.Insert(types.Tuple{types.NewString("u042"), types.NewInt(1)})
	if fired != 1 {
		t.Errorf("fired = %d through table org", fired)
	}
}

func TestConditionPartitionsSmallSet(t *testing.T) {
	// Partition count greater than the triggerID-set size still covers
	// every trigger exactly once.
	sys, err := Open(Options{Drivers: 2, Queue: MemoryQueue, ConditionPartitions: 8, Threshold: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.DefineStreamSource("emp",
		types.Column{Name: "name", Kind: types.KindVarchar}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sys.CreateTrigger(fmt.Sprintf(
			`create trigger t%d from emp when emp.name = 'x' do raise event E%d()`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	var fired int64
	sys.FireHook = func(uint64, []types.Tuple) { atomic.AddInt64(&fired, 1) }
	s, _ := sys.StreamSourceByName("emp")
	s.Insert(types.Tuple{types.NewString("x")})
	sys.Drain()
	if got := atomic.LoadInt64(&fired); got != 3 {
		t.Errorf("fired = %d, want 3", got)
	}
}

func TestMultiVarUpdateMaintenance(t *testing.T) {
	// An update that moves a row OUT of a selection must remove it from
	// the alpha memory even though the new image no longer matches.
	sys := syncSystem(t)
	emp := empSource(t, sys)
	dept, err := sys.DefineTableSource("dept",
		types.Column{Name: "dname", Kind: types.KindVarchar},
		types.Column{Name: "budget", Kind: types.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.CreateTrigger(`create trigger richEng from emp e, dept d
		when e.dept = d.dname and d.budget > 1000 and e.salary > 50
		do raise event RichEng(e.name)`)
	if err != nil {
		t.Fatal(err)
	}
	var fired int64
	sys.FireHook = func(uint64, []types.Tuple) { atomic.AddInt64(&fired, 1) }

	dept.Insert(types.Tuple{types.NewString("eng"), types.NewInt(5000)})
	emp.Insert(row("Ada", 100, "eng"))
	if fired != 1 {
		t.Fatalf("initial join fired %d", fired)
	}
	// Update Ada's salary below the selection threshold: leaves memory.
	emp.Update(row("Ada", 100, "eng"), row("Ada", 10, "eng"))
	// New dept row would re-join if Ada were still in memory.
	fired = 0
	dept.Insert(types.Tuple{types.NewString("eng"), types.NewInt(9000)})
	if fired != 0 {
		t.Errorf("stale memory join fired %d", fired)
	}
	// Raise her back: re-enters memory.
	emp.Update(row("Ada", 10, "eng"), row("Ada", 200, "eng"))
	if fired != 1 { // the update itself seeds a join (two dept rows? both match: eng/5000 and eng/9000 -> 2 combos)
		if fired != 2 {
			t.Errorf("re-entry fired %d", fired)
		}
	}
}

func TestStatsTextAndListen(t *testing.T) {
	sys := syncSystem(t)
	if sys.StatsText() == "" {
		t.Error("StatsText empty")
	}
	srv, err := sys.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr().String() == "" {
		t.Error("no addr")
	}
	srv.Close()
}

func TestApplyAfterClose(t *testing.T) {
	sys, _ := Open(Options{Synchronous: true, Queue: MemoryQueue})
	s, _ := sys.DefineStreamSource("s", types.Column{Name: "x", Kind: types.KindInt})
	sys.Close()
	if err := s.Insert(types.Tuple{types.NewInt(1)}); err == nil {
		t.Error("apply after close should fail")
	}
}

func TestZeroValueOptionsWork(t *testing.T) {
	sys, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	emp, err := sys.DefineTableSource("emp", types.Column{Name: "x", Kind: types.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateTrigger(`create trigger t from emp when emp.x > 1 do raise event E(emp.x)`); err != nil {
		t.Fatal(err)
	}
	sub, _ := sys.Subscribe("E", 4)
	emp.Insert(types.Tuple{types.NewInt(5)})
	sys.Drain()
	select {
	case n := <-sub.C():
		if n.Args[0].Int() != 5 {
			t.Errorf("args = %v", n.Args)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("default async system did not deliver")
	}
}

func TestCommandDMLIsCaptured(t *testing.T) {
	sys := syncSystem(t)
	if _, err := sys.Command("define data source emp(name varchar, salary int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Command(`create trigger t from emp when emp.salary > 5 do raise event Big(emp.name)`); err != nil {
		t.Fatal(err)
	}
	sub, _ := sys.Subscribe("Big", 4)
	if _, err := sys.Command("insert into emp values ('Ada', 10)"); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.C():
		if n.Args[0].Str() != "Ada" {
			t.Errorf("args = %v", n.Args)
		}
	default:
		t.Fatal("command-path insert was not captured")
	}
	// Update and delete are captured too.
	sys.Command(`create trigger gone from emp on delete from emp when emp.salary > 0 do raise event Gone(emp.name)`)
	gone, _ := sys.Subscribe("Gone", 4)
	if _, err := sys.Command("delete from emp where name = 'Ada'"); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-gone.C():
		if n.Args[0].Str() != "Ada" {
			t.Errorf("gone args = %v", n.Args)
		}
	default:
		t.Fatal("command-path delete was not captured")
	}
}

func TestCostModelOption(t *testing.T) {
	m := predindex.DefaultCostModel
	m.MemoryBudget = 16 * int64(m.BytesPerEntry)
	sys, err := Open(Options{Synchronous: true, CostModel: &m})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.DefineStreamSource("emp",
		types.Column{Name: "name", Kind: types.KindVarchar}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := sys.CreateTrigger(fmt.Sprintf(
			`create trigger c%03d from emp when emp.name = 'v%03d' do raise event E()`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	src, _ := sys.reg.ByName("emp")
	entries := sys.pidx.Signatures(src.ID)
	if got := entries[0].Organization(); got != predindex.OrgIndexedTable {
		t.Errorf("cost-model budget should force a table org, got %s", got)
	}
	var fired int64
	sys.FireHook = func(uint64, []types.Tuple) { atomic.AddInt64(&fired, 1) }
	s, _ := sys.StreamSourceByName("emp")
	s.Insert(types.Tuple{types.NewString("v013")})
	if fired != 1 {
		t.Errorf("fired = %d through cost-model-chosen org", fired)
	}
}
