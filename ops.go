package triggerman

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"triggerman/internal/trace"
)

// opsServer is the optional operations HTTP listener: Prometheus
// /metrics, JSON /statusz (counters, recent errors, recent token
// traces), and /debug/pprof.
type opsServer struct {
	ln  net.Listener
	srv *http.Server
}

func (o *opsServer) shutdown() {
	// Close (not Shutdown): scrapes are short, and a hung handler must
	// not stall System.Close.
	o.srv.Close()
}

// ListenOps starts the ops HTTP listener on addr (e.g. ":9090" or
// "127.0.0.1:0") and returns the bound address. Starting twice returns
// the existing listener's address; a closed system refuses.
func (s *System) ListenOps(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", errClosed
	}
	if s.ops != nil {
		return s.ops.ln.Addr().String(), nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.ops = &opsServer{ln: ln, srv: srv}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// OpsAddr reports the ops listener's bound address, or "" when it is
// not running.
func (s *System) OpsAddr() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ops == nil {
		return ""
	}
	return s.ops.ln.Addr().String()
}

// MetricsText renders the registry in Prometheus text exposition
// format (the console's metrics verb and the /metrics endpoint).
func (s *System) MetricsText() (string, error) {
	if s.isClosed() {
		return "", errClosed
	}
	var sb strings.Builder
	if err := s.met.WritePrometheus(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func (s *System) handleMetrics(w http.ResponseWriter, r *http.Request) {
	text, err := s.MetricsText()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, text)
}

// statuszPayload is the /statusz JSON shape.
type statuszPayload struct {
	Triggers        int            `json:"triggers"`
	TokensIn        int64          `json:"tokens_in"`
	TokensMatched   int64          `json:"tokens_matched"`
	ActionsRun      int64          `json:"actions_run"`
	QueueDepth      int            `json:"queue_depth"`
	DeadLetters     int            `json:"dead_letters"`
	DeadLettered    int64          `json:"dead_lettered"`
	EventsRaised    int64          `json:"events_raised"`
	EventsDelivered int64          `json:"events_delivered"`
	Errors          int64          `json:"errors"`
	RecentErrors    []string       `json:"recent_errors"`
	ActiveTraces    int            `json:"active_traces"`
	RecentTraces    []trace.Record `json:"recent_traces"`
}

func (s *System) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if s.isClosed() {
		http.Error(w, errClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	st := s.Stats()
	p := statuszPayload{
		Triggers:        st.Triggers,
		TokensIn:        st.TokensIn,
		TokensMatched:   st.TokensMatched,
		ActionsRun:      st.ActionsRun,
		QueueDepth:      st.QueueDepth,
		DeadLetters:     st.DeadLetters,
		DeadLettered:    st.DeadLettered,
		EventsRaised:    st.EventsRaised,
		EventsDelivered: st.EventsDelivered,
		Errors:          st.Errors,
		RecentErrors:    make([]string, 0, len(st.RecentErrors)),
		ActiveTraces:    s.tracer.ActiveCount(),
		RecentTraces:    s.tracer.Recent(),
	}
	for _, rec := range st.RecentErrors {
		p.RecentErrors = append(p.RecentErrors, rec.String())
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p)
}
