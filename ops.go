package triggerman

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"triggerman/internal/eventlog"
	"triggerman/internal/metrics"
	"triggerman/internal/slo"
	"triggerman/internal/trace"
)

// opsServer is the optional operations HTTP listener: Prometheus
// /metrics, JSON /statusz (counters, recent errors, recent token
// traces), and /debug/pprof.
type opsServer struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux
}

func (o *opsServer) shutdown() {
	// Close (not Shutdown): scrapes are short, and a hung handler must
	// not stall System.Close.
	o.srv.Close()
}

// ListenOps starts the ops HTTP listener on addr (e.g. ":9090" or
// "127.0.0.1:0") and returns the bound address. Starting twice returns
// the existing listener's address; a closed system refuses.
func (s *System) ListenOps(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", errClosed
	}
	if s.ops != nil {
		return s.ops.ln.Addr().String(), nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/indexz", s.handleIndexz)
	mux.HandleFunc("/triggerz", s.handleTriggerz)
	mux.HandleFunc("/eventz", s.handleEventz)
	mux.HandleFunc("/loadz", s.handleLoadz)
	mux.HandleFunc("/sloz", s.handleSloz)
	for pattern, h := range s.extraOps {
		mux.HandleFunc(pattern, h)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.ops = &opsServer{ln: ln, srv: srv, mux: mux}
	go srv.Serve(ln)
	s.elog.Emit("ops.listen", "addr", ln.Addr().String())
	return ln.Addr().String(), nil
}

// RegisterOpsHandler mounts an additional handler on the ops listener
// (internal/cluster mounts /clusterz here). Handlers registered before
// ListenOps are picked up at listen time; registering after the
// listener is up adds the route live.
func (s *System) RegisterOpsHandler(pattern string, h http.HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.extraOps == nil {
		s.extraOps = make(map[string]http.HandlerFunc)
	}
	s.extraOps[pattern] = h
	if s.ops != nil {
		// ServeMux registration is mutex-safe even while serving.
		s.ops.mux.HandleFunc(pattern, h)
	}
}

// OpsAddr reports the ops listener's bound address, or "" when it is
// not running.
func (s *System) OpsAddr() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ops == nil {
		return ""
	}
	return s.ops.ln.Addr().String()
}

// MetricsText renders the registry in Prometheus text exposition
// format (the console's metrics verb and the /metrics endpoint).
func (s *System) MetricsText() (string, error) {
	if s.isClosed() {
		return "", errClosed
	}
	var sb strings.Builder
	if err := s.met.WritePrometheus(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func (s *System) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// ?scope=cluster answers with the fleet-merged registry when a
	// federation provider is installed (internal/fleet). Branching here
	// keeps one route: collectors scrape the same path per node or per
	// fleet and only the query parameter differs.
	if r.URL.Query().Get("scope") == "cluster" {
		fed := s.federation()
		if fed == nil {
			http.Error(w, "triggerman: scope=cluster needs fleet federation (standalone node)", http.StatusNotImplemented)
			return
		}
		text, err := fed.ClusterMetrics()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, text)
		return
	}
	text, err := s.MetricsText()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, text)
}

// statuszPayload is the /statusz JSON shape.
type statuszPayload struct {
	// Node identifies which instance answered: multi-node scrapes of
	// /statusz must be attributable ("local" for standalone systems).
	Node            string         `json:"node"`
	Triggers        int            `json:"triggers"`
	TokensIn        int64          `json:"tokens_in"`
	TokensMatched   int64          `json:"tokens_matched"`
	ActionsRun      int64          `json:"actions_run"`
	QueueDepth      int            `json:"queue_depth"`
	DeadLetters     int            `json:"dead_letters"`
	DeadLettered    int64          `json:"dead_lettered"`
	EventsRaised    int64          `json:"events_raised"`
	EventsDelivered int64          `json:"events_delivered"`
	Errors          int64          `json:"errors"`
	RecentErrors    []string       `json:"recent_errors"`
	ActiveTraces    int            `json:"active_traces"`
	TracesDropped   int64          `json:"traces_dropped"`
	TracesSwept     int64          `json:"traces_swept"`
	RecentTraces    []trace.Record `json:"recent_traces"`
	// Exemplars links end-to-end latency buckets to concrete recent
	// traces: each entry is one populated histogram bucket's most recent
	// traced observation, with the full trace record when it is still in
	// the ring.
	Exemplars []exemplarView `json:"exemplars"`
	// Runtime is the latest runtime telemetry sample (zero when the
	// sampler is disabled).
	Runtime slo.RuntimeStats `json:"runtime"`
}

// exemplarView is one histogram bucket's exemplar resolved against the
// trace ring: a p999 bucket becomes a trace you can actually read.
type exemplarView struct {
	metrics.Exemplar
	// Trace is the exemplar's full record when seq is still in the
	// ring (exemplars outlive the ring, so it can be absent).
	Trace *trace.Record `json:"trace,omitempty"`
}

// Default /statusz bounds: scrapes want a glance, not a dump. Larger
// windows are available via ?traces=N&errors=N.
const (
	defaultStatuszTraces = 8
	defaultStatuszErrors = 16
	maxStatuszWindow     = 1024
)

// queryBound reads a non-negative integer query parameter, applying the
// default when absent or malformed and clamping to maxStatuszWindow.
func queryBound(r *http.Request, key string, def int) int {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return def
	}
	if n > maxStatuszWindow {
		return maxStatuszWindow
	}
	return n
}

func (s *System) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if s.isClosed() {
		http.Error(w, errClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	maxTraces := queryBound(r, "traces", defaultStatuszTraces)
	maxErrors := queryBound(r, "errors", defaultStatuszErrors)
	st := s.Stats()
	recentErrs := st.RecentErrors
	if len(recentErrs) > maxErrors {
		// Rings are oldest-first; the tail is the most recent.
		recentErrs = recentErrs[len(recentErrs)-maxErrors:]
	}
	traces := s.tracer.Recent()
	if len(traces) > maxTraces {
		traces = traces[len(traces)-maxTraces:]
	}
	p := statuszPayload{
		Node:            s.NodeID(),
		Triggers:        st.Triggers,
		TokensIn:        st.TokensIn,
		TokensMatched:   st.TokensMatched,
		ActionsRun:      st.ActionsRun,
		QueueDepth:      st.QueueDepth,
		DeadLetters:     st.DeadLetters,
		DeadLettered:    st.DeadLettered,
		EventsRaised:    st.EventsRaised,
		EventsDelivered: st.EventsDelivered,
		Errors:          st.Errors,
		RecentErrors:    make([]string, 0, len(recentErrs)),
		ActiveTraces:    s.tracer.ActiveCount(),
		TracesDropped:   s.tracer.Dropped(),
		TracesSwept:     s.tracer.Swept(),
		RecentTraces:    traces,
		Exemplars:       []exemplarView{},
		Runtime:         s.rts.Snapshot(),
	}
	for _, rec := range recentErrs {
		p.RecentErrors = append(p.RecentErrors, rec.String())
	}
	if h := s.tracer.TotalHistogram(); h != nil {
		for _, ex := range h.Exemplars() {
			v := exemplarView{Exemplar: ex}
			if rec, ok := s.tracer.RecordBySeq(ex.Seq); ok {
				rec := rec
				v.Trace = &rec
			}
			p.Exemplars = append(p.Exemplars, v)
		}
	}
	writeJSON(w, p)
}

// slozPayload is the /sloz JSON shape: the engine's window pairs and
// one verdict per objective.
type slozPayload struct {
	Enabled    bool                  `json:"enabled"`
	Windows    []slo.WindowPair      `json:"windows"`
	Objectives []slo.ObjectiveStatus `json:"objectives"`
}

// handleSloz reports each objective's burn-rate verdict. With the SLO
// engine disabled it returns {"enabled": false} so dashboards can
// probe unconditionally.
func (s *System) handleSloz(w http.ResponseWriter, r *http.Request) {
	if s.isClosed() {
		http.Error(w, errClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	// ?scope=cluster: burn verdicts over the fleet-merged per-class
	// histograms. The default (node-scope) payload shape is a pinned
	// ops contract, so cluster scope returns its own payload instead of
	// mutating this one.
	if r.URL.Query().Get("scope") == "cluster" {
		fed := s.federation()
		if fed == nil {
			http.Error(w, "triggerman: scope=cluster needs fleet federation (standalone node)", http.StatusNotImplemented)
			return
		}
		payload, err := fed.ClusterSloz()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, payload)
		return
	}
	if s.sloEng == nil {
		writeJSON(w, slozPayload{Windows: []slo.WindowPair{}, Objectives: []slo.ObjectiveStatus{}})
		return
	}
	// Evaluate on demand so a scrape never reads a verdict staler than
	// the request (the tick loop still drives event transitions between
	// scrapes).
	s.sloEng.Tick()
	writeJSON(w, slozPayload{
		Enabled:    true,
		Windows:    s.sloEng.Windows(),
		Objectives: s.sloEng.Snapshot(),
	})
}

// writeJSON renders one indented JSON payload.
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleIndexz dumps the live predicate-index shape: every expression
// signature with its constant-set organization, size, partitioning, and
// exact probe/match counters.
func (s *System) handleIndexz(w http.ResponseWriter, r *http.Request) {
	if s.isClosed() {
		http.Error(w, errClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, s.indexzPayload())
}

// handleTriggerz dumps per-trigger cost attribution: the top-K hottest
// (match probes), slowest (action wall time), and most-failing triggers
// from the space-saving sketch. ?k=N sizes the lists (default 10).
func (s *System) handleTriggerz(w http.ResponseWriter, r *http.Request) {
	if s.isClosed() {
		http.Error(w, errClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	k := queryBound(r, "k", 10)
	writeJSON(w, s.triggerzPayload(k))
}

// loadzPayload is the /loadz JSON shape: the admission controller's
// configuration, global verdict totals, and one row per data source
// that has seen traffic.
type loadzPayload struct {
	// Node identifies the answering instance (see statuszPayload.Node).
	Node      string        `json:"node"`
	Enabled   bool          `json:"enabled"`
	SoftDepth int           `json:"soft_depth"`
	HardDepth int           `json:"hard_depth"`
	Rate      float64       `json:"rate"`
	Burst     int           `json:"burst"`
	Admitted  int64         `json:"admitted"`
	Shed      int64         `json:"shed"`
	Rejected  int64         `json:"rejected"`
	Sources   []loadzSource `json:"sources"`
}

// loadzSource is one data source's load row.
type loadzSource struct {
	SourceID    int32  `json:"source_id"`
	Name        string `json:"name,omitempty"`
	Class       string `json:"class"`
	State       string `json:"state"`
	Depth       int    `json:"depth"`
	Admitted    int64  `json:"admitted"`
	Shed        int64  `json:"shed"`
	Rejected    int64  `json:"rejected"`
	RateLimited int64  `json:"rate_limited"`
}

// handleLoadz reports graceful-degradation state per data source:
// admitting, shedding, or rejecting, with watermark configuration and
// shed/reject accounting. With admission disabled it returns
// {"enabled": false} so dashboards can probe unconditionally.
func (s *System) handleLoadz(w http.ResponseWriter, r *http.Request) {
	if s.isClosed() {
		http.Error(w, errClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	if s.adm == nil {
		writeJSON(w, loadzPayload{Node: s.NodeID(), Sources: []loadzSource{}})
		return
	}
	cfg := s.adm.Config()
	p := loadzPayload{
		Node:      s.NodeID(),
		Enabled:   true,
		SoftDepth: cfg.SoftDepth,
		HardDepth: cfg.HardDepth,
		Rate:      cfg.Rate,
		Burst:     cfg.Burst,
		Sources:   []loadzSource{},
	}
	p.Admitted, p.Shed, p.Rejected = s.adm.Totals()
	for _, row := range s.adm.Snapshot(s.sourceClass) {
		ls := loadzSource{
			SourceID:    row.SourceID,
			Class:       row.Class.String(),
			State:       row.State.String(),
			Depth:       row.Depth,
			Admitted:    row.Admitted,
			Shed:        row.Shed,
			Rejected:    row.Rejected,
			RateLimited: row.RateLimited,
		}
		if src, ok := s.reg.ByID(row.SourceID); ok {
			ls.Name = src.Name
		}
		p.Sources = append(p.Sources, ls)
	}
	writeJSON(w, p)
}

// eventzPayload is the /eventz JSON shape.
type eventzPayload struct {
	Total   int64             `json:"total"`
	Records []eventlog.Record `json:"records"`
}

// handleEventz serves the bounded structured event ring, oldest first.
// ?n=N trims to the most recent N records.
func (s *System) handleEventz(w http.ResponseWriter, r *http.Request) {
	if s.isClosed() {
		http.Error(w, errClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	recs := s.elog.Recent()
	if n := queryBound(r, "n", maxStatuszWindow); len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	writeJSON(w, eventzPayload{Total: s.elog.Total(), Records: recs})
}
