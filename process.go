package triggerman

import (
	"fmt"
	"time"

	"triggerman/internal/admission"
	"triggerman/internal/agg"
	"triggerman/internal/catalog"
	"triggerman/internal/datasource"
	"triggerman/internal/discrim"
	"triggerman/internal/exec"
	"triggerman/internal/minisql"
	"triggerman/internal/parser"
	"triggerman/internal/predindex"
	"triggerman/internal/taskq"
	"triggerman/internal/trace"
	"triggerman/internal/types"
)

// capture is the external entry point for a freshly captured update:
// the closed check and admission control run here, before the token is
// durably enqueued. Producers (TableSource, StreamSource) call capture;
// internal re-entries that must survive shutdown or bypass the closed
// gate (cascaded execSQL updates, dead-letter requeue) call admit
// directly.
func (s *System) capture(tok datasource.Token) error {
	if s.isClosed() {
		return errClosed
	}
	return s.admit(tok)
}

// admit runs the token through admission control (§6's capture point is
// where overload must be pushed back, before the token costs queue
// space). Three outcomes:
//
//   - Admit: the token proceeds into the queue (apply).
//   - Shed: batch-class work over the soft watermark is diverted to the
//     dead-letter table — accounted, requeueable later, never silently
//     dropped — and the capture call reports success.
//   - Reject: the hard watermark or rate limit is breached; the caller
//     gets a retryable *admission.OverloadError and keeps the token.
func (s *System) admit(tok datasource.Token) error {
	// Clustered deployments route before admission: the overload verdict
	// for a source belongs to the node that owns it. This covers every
	// local entry point — producers, cascaded execSQL updates, and
	// dead-letter requeue — so a cross-source cascade whose target lives
	// elsewhere ships to its owner instead of entering this pipeline.
	if r := s.router(); r != nil {
		if src, ok := s.reg.ByID(tok.SourceID); ok {
			if handled, err := r.Route(src.Name, tok, ""); handled {
				return err
			}
		}
	}
	if s.adm != nil {
		verdict, err := s.adm.Admit(tok.SourceID, s.sourceClass(tok.SourceID))
		switch verdict {
		case admission.VerdictReject:
			return err
		case admission.VerdictShed:
			s.shedToken(tok)
			return nil
		}
	}
	return s.apply(tok)
}

// taskPri maps a token's source class to its run-queue priority:
// interactive sources ride the high queue, batch sources the low queue
// (aged by taskq so they cannot starve).
func (s *System) taskPri(src int32) taskq.Priority {
	if s.sourceClass(src) == admission.Batch {
		return taskq.Low
	}
	return taskq.High
}

// apply accepts an admitted update descriptor: it is enqueued (persistent
// or memory queue per Figure 1) and either processed inline
// (Synchronous) or handed to the task queue as a process-one-token task
// (task type 1 of §6). No closed check here: Close drains the pool, and
// tokens cascaded by in-flight actions must still be accepted during
// that drain or they would be lost mid-shutdown.
func (s *System) apply(tok datasource.Token) error {
	return s.applyTraced(tok, 0, 0)
}

// applyTraced is apply with an optional wire-propagated trace context:
// a nonzero sampled parent continues the client's trace through
// capture→action (the span's record carries the client's id, its
// metrics land under the server's seq — one trace, both sides of the
// wire).
func (s *System) applyTraced(tok datasource.Token, parent uint64, flags byte) error {
	sp := s.tracer.BeginRemote(tok.SourceID, tok.Op.String(), parent, flags)
	// Enqueue under the queue retry policy: a transient page fault must
	// not lose a captured update. A retried enqueue whose first attempt
	// partially succeeded can duplicate the token — delivery is
	// at-least-once, never at-most-zero.
	var queued datasource.Token
	if _, err := s.queueRetry.Do(func() error {
		var e error
		queued, e = s.queue.Enqueue(tok)
		return e
	}); err != nil {
		sp.Finish()
		return err
	}
	sp.Mark(trace.StageCapture)
	s.tracer.Attach(queued.Seq, sp)
	s.cTokensIn.Inc()
	if s.opts.Synchronous {
		_, err := s.queueRetry.Do(s.consumeOne)
		return err
	}
	if s.partitions > 1 {
		// Condition-level concurrency (task type 3): the token is
		// dequeued once, then matched partition-by-partition in
		// parallel tasks.
		return s.submitPartitionedToken()
	}
	if s.opts.SourceFIFO {
		// Ordered mode: the task dispatches dequeued tokens into
		// per-source serial tasks, preserving each source's enqueue
		// order across drivers and stealing.
		return s.pool.Submit(taskq.Task{
			Kind: taskq.ProcessToken, Key: sourceKey(tok.SourceID),
			Pri:   s.taskPri(tok.SourceID),
			Retry: &s.queueRetry, Run: s.dispatchOrdered,
		})
	}
	// Task-level retry covers transient *dequeue* failures (the tokens
	// are still queued, so re-running the task finds them again). Once a
	// token is dequeued, consumeBatch handles its failures itself, so a
	// re-run can never strand a dequeued token. The key routes the task
	// to the source's home shard: one source's tokens drain from one
	// queue (and batch together), while idle drivers steal across.
	return s.pool.Submit(taskq.Task{
		Kind: taskq.ProcessToken, Key: sourceKey(tok.SourceID),
		Pri:   s.taskPri(tok.SourceID),
		Retry: &s.queueRetry, RunSlot: s.consumeBatch,
	})
}

// sourceKey maps a data source ID to a non-zero task-queue shard key
// (taskq treats key 0 as "unkeyed").
func sourceKey(id int32) int64 { return int64(id) + 1 }

// consumeOne dequeues and fully processes one token. An error return
// means the dequeue itself failed and the token is still in the queue;
// processing failures past that point are retried and then
// dead-lettered here, never returned.
func (s *System) consumeOne() error {
	tok, ok, err := s.queue.Dequeue()
	if err != nil {
		return fmt.Errorf("dequeue: %w", err)
	}
	if !ok {
		return nil
	}
	s.handleToken(tok, -1, taskq.NoSlot, s.tracer.Dequeued(tok.Seq))
	return nil
}

// consumeBatch dequeues up to tokenBatch tokens and fully processes
// each in order. Tracing and attribution stay per-token: every token
// gets its own span and dead-letter handling. Tokens returned alongside
// a dequeue error have already left the queue, so they are processed
// before the error is surfaced for task-level retry.
func (s *System) consumeBatch(slot int) error {
	batch, err := s.queue.DequeueBatch(s.tokenBatch)
	if len(batch) > 0 {
		s.cBatches.Inc()
		s.cBatchTokens.Add(int64(len(batch)))
		for _, tok := range batch {
			s.handleToken(tok, -1, slot, s.tracer.Dequeued(tok.Seq))
		}
	}
	if err != nil {
		return fmt.Errorf("dequeue: %w", err)
	}
	return nil
}

// dispatchOrdered implements SourceFIFO: one locked step dequeues a
// batch and submits each token as a serial task keyed by its source, so
// per-source submission order equals dequeue order equals enqueue
// order, and taskq's serial-key discipline carries that order through
// to execution even with work stealing. A token whose serial submission
// fails has already left the queue and is quarantined, preserving the
// fire-or-dead-letter invariant.
func (s *System) dispatchOrdered() error {
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	batch, err := s.queue.DequeueBatch(s.tokenBatch)
	if len(batch) > 0 {
		s.cBatches.Inc()
		s.cBatchTokens.Add(int64(len(batch)))
		for _, tok := range batch {
			tok := tok
			sp := s.tracer.Dequeued(tok.Seq)
			// Traced tokens time their serial task's run-queue wait — the
			// scheduler half of the queue-wait decomposition (StageDequeue
			// covered the token-queue half).
			var submitAt time.Time
			if sp != nil {
				submitAt = time.Now()
			}
			serr := s.pool.Submit(taskq.Task{
				Kind: taskq.ProcessToken, Key: sourceKey(tok.SourceID), Serial: true,
				Pri: s.taskPri(tok.SourceID),
				RunSlot: func(slot int) error {
					if sp != nil {
						sp.Observe(trace.StageTaskWait, time.Since(submitAt))
					}
					s.handleToken(tok, -1, slot, sp)
					return nil
				},
			})
			if serr != nil {
				s.quarantine(catalog.DeadToken, 0, tok, serr, 1)
				sp.Finish()
			}
		}
	}
	if err != nil {
		return fmt.Errorf("dequeue: %w", err)
	}
	return nil
}

// handleToken runs the §5.4 token algorithm under the queue retry
// policy. The token has already left the queue, so on exhaustion or a
// permanent fault it is quarantined in the dead-letter table — the
// invariant is fire-or-dead-letter, never silently dropped. Retries
// re-run the whole pass; alpha-memory maintenance is not idempotent
// under partial failure, so delivery is at-least-once.
func (s *System) handleToken(tok datasource.Token, part, slot int, sp *trace.Span) {
	defer sp.Finish()
	attempts, err := s.queueRetry.Do(func() error {
		return s.processToken(tok, part, slot, sp)
	})
	if err != nil {
		s.quarantine(catalog.DeadToken, 0, tok, err, attempts)
	}
}

// submitPartitionedToken dequeues one token and fans its condition
// testing out across partitions.
func (s *System) submitPartitionedToken() error {
	tok, ok, err := s.queue.Dequeue()
	if err != nil || !ok {
		return err
	}
	sp := s.tracer.Dequeued(tok.Seq)
	// The maintenance and aggregate passes must happen exactly once, not
	// per partition; run them first, then fan out fire-only partition
	// tasks. The token has left the queue, so failure here dead-letters
	// it rather than dropping it.
	attempts, err := s.queueRetry.Do(func() error {
		return s.propagateToken(tok, taskq.NoSlot, sp)
	})
	if err != nil {
		s.quarantine(catalog.DeadToken, 0, tok, err, attempts)
		sp.Finish()
		return nil
	}
	pri := s.taskPri(tok.SourceID)
	var submitAt time.Time
	if sp != nil {
		submitAt = time.Now()
	}
	for p := 0; p < s.partitions; p++ {
		part := p
		sp.Retain()
		if err := s.pool.Submit(taskq.Task{
			Kind: taskq.TokenConditions, Retry: &s.queueRetry, Pri: pri,
			RunSlot: func(slot int) error {
				if sp != nil {
					sp.Observe(trace.StageTaskWait, time.Since(submitAt))
				}
				return s.fireMatches(tok, part, slot, sp)
			},
			OnDone: func(error) { sp.Finish() },
		}); err != nil {
			sp.Finish() // the retain for the failed submission
			sp.Finish() // the dequeue reference
			return err
		}
	}
	sp.Finish()
	return nil
}

// processToken is the §5.4 algorithm: maintenance pass for alpha
// memories and aggregate state, then match-and-fire.
func (s *System) processToken(tok datasource.Token, part, slot int, sp *trace.Span) error {
	if err := s.propagateToken(tok, slot, sp); err != nil {
		return err
	}
	return s.fireMatches(tok, part, slot, sp)
}

// propagateToken is the propagation pass — alpha-memory maintenance
// plus incremental aggregate upkeep — timed as the trace's propagate
// stage. Gator triggers also fire in here (their incremental protocol
// fires at propagation time).
func (s *System) propagateToken(tok datasource.Token, slot int, sp *trace.Span) error {
	var begin time.Time
	if sp != nil {
		begin = time.Now()
	}
	err := s.maintainMemories(tok, slot, sp)
	if err == nil {
		err = s.processAggregates(tok, slot, sp)
	}
	if sp != nil {
		sp.Observe(trace.StagePropagate, time.Since(begin))
	}
	return err
}

// processAggregates feeds group-by/having triggers: tokens whose images
// pass the trigger's selection update the group's incremental
// aggregates, and having-condition transitions fire the action with
// aggregate values substituted in.
func (s *System) processAggregates(tok datasource.Token, slot int, sp *trace.Span) error {
	s.mu.RLock()
	hasAgg := s.aggSources[tok.SourceID] > 0
	s.mu.RUnlock()
	if !hasAgg {
		return nil
	}
	oldMatch := map[uint64]bool{}
	newMatch := map[uint64]bool{}
	if tok.Op != datasource.OpInsert && tok.Old != nil {
		probe := datasource.Token{SourceID: tok.SourceID, Op: datasource.OpDelete, Old: tok.Old}
		if err := s.pidx.MatchTokenSlot(probe, slot, func(m predindex.Match) bool {
			if m.Aggregate {
				oldMatch[m.TriggerID] = true
			}
			return true
		}); err != nil {
			return err
		}
	}
	if tok.Op != datasource.OpDelete && tok.New != nil {
		probe := datasource.Token{SourceID: tok.SourceID, Op: datasource.OpInsert, New: tok.New}
		if err := s.pidx.MatchTokenSlot(probe, slot, func(m predindex.Match) bool {
			if m.Aggregate {
				newMatch[m.TriggerID] = true
			}
			return true
		}); err != nil {
			return err
		}
	}
	touched := map[uint64]bool{}
	for id := range oldMatch {
		touched[id] = true
	}
	for id := range newMatch {
		touched[id] = true
	}
	for id := range touched {
		if !s.cat.IsFireable(id) {
			// Disabled triggers still maintain state? No: like the
			// paper's isEnabled semantics, disabled triggers are inert.
			continue
		}
		lt, unpin, err := s.cat.Pin(id)
		if err != nil {
			s.noteErrorAt("aggregate", id, err)
			continue
		}
		if lt.Agg == nil {
			unpin()
			continue
		}
		var op agg.Op
		switch tok.Op {
		case datasource.OpInsert:
			op = agg.OpInsert
		case datasource.OpDelete:
			op = agg.OpDelete
		default:
			op = agg.OpUpdate
		}
		fires, err := lt.Agg.State.Apply(op, tok.Old, tok.New, oldMatch[id], newMatch[id], lt.Agg.Having)
		if err != nil {
			s.noteErrorAt("aggregate", id, err)
			unpin()
			continue
		}
		for _, f := range fires {
			s.cTokensMatch.Inc()
			action, err := agg.SubstituteAction(lt.Action, lt.Agg.Schema, lt.Agg.Specs, f.Aggregates)
			if err != nil {
				s.noteErrorAt("aggregate", id, err)
				continue
			}
			ltCopy := *lt
			ltCopy.Action = action
			olds := []types.Tuple{tok.Old}
			if err := s.runCombo(ltCopy, tok, []types.Tuple{f.Representative}, olds, sp); err != nil {
				s.noteErrorAt("action", id, err)
			}
		}
		unpin()
	}
	return nil
}

// maintainMemories keeps multi-variable triggers' join state
// consistent: tuples enter an alpha memory when they pass the
// variable's selection predicate and leave when they stop passing it
// (or are deleted). A-TREAT triggers only maintain here (firing happens
// in fireMatches); Gator triggers maintain AND fire here, because their
// incremental protocol creates/retracts root combinations at
// maintenance time. Sources with no multi-variable triggers skip this
// pass.
func (s *System) maintainMemories(tok datasource.Token, slot int, sp *trace.Span) error {
	s.mu.RLock()
	hasMulti := s.multiVarSources[tok.SourceID] > 0
	s.mu.RUnlock()
	if !hasMulti {
		return nil
	}
	// Removals: old image matched (delete and update tokens).
	if tok.Op != datasource.OpInsert && tok.Old != nil {
		oldProbe := datasource.Token{SourceID: tok.SourceID, Op: datasource.OpDelete, Old: tok.Old}
		err := s.pidx.MatchTokenSlot(oldProbe, slot, func(m predindex.Match) bool {
			if !m.MultiVar {
				return true
			}
			s.withNetwork(m.TriggerID, func(lt catalog.LoadedTrigger) {
				switch {
				case lt.Gator != nil:
					// Retraction fires only for genuine delete tokens
					// whose fire mask accepts deletes.
					var pnode discrim.PNode
					if tok.Op == datasource.OpDelete && m.FireMask.Matches(tok) && s.cat.IsFireable(m.TriggerID) {
						pnode = s.comboRunner(lt, tok, sp)
						s.cTokensMatch.Inc()
					}
					if err := lt.Gator.NotifyToken(int(m.NextNode), oldProbe, pnode); err != nil {
						s.noteErrorAt("gator", m.TriggerID, err)
					}
				case lt.Network != nil:
					lt.Network.RemoveTuple(int(m.NextNode), tok.Old)
				}
			})
			return true
		})
		if err != nil {
			return err
		}
	}
	// Additions: new image matches (insert and update tokens).
	if tok.Op != datasource.OpDelete && tok.New != nil {
		newProbe := datasource.Token{SourceID: tok.SourceID, Op: datasource.OpInsert, New: tok.New}
		err := s.pidx.MatchTokenSlot(newProbe, slot, func(m predindex.Match) bool {
			if !m.MultiVar {
				return true
			}
			s.withNetwork(m.TriggerID, func(lt catalog.LoadedTrigger) {
				switch {
				case lt.Gator != nil:
					var pnode discrim.PNode
					if m.FireMask.Matches(tok) && s.cat.IsFireable(m.TriggerID) {
						pnode = s.comboRunner(lt, tok, sp)
						s.cTokensMatch.Inc()
					}
					if err := lt.Gator.NotifyToken(int(m.NextNode), newProbe, pnode); err != nil {
						s.noteErrorAt("gator", m.TriggerID, err)
					}
				case lt.Network != nil:
					lt.Network.AddTuple(int(m.NextNode), tok.New)
				}
			})
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *System) withNetwork(id uint64, fn func(catalog.LoadedTrigger)) {
	lt, unpin, err := s.cat.Pin(id)
	if err != nil {
		s.noteErrorAt("match", id, err)
		return
	}
	defer unpin()
	if lt.Network != nil || lt.Gator != nil {
		fn(*lt)
	}
}

// comboRunner builds the P-node callback that executes a trigger's
// action for each satisfying combination.
func (s *System) comboRunner(lt catalog.LoadedTrigger, tok datasource.Token, sp *trace.Span) discrim.PNode {
	return func(c discrim.Combo) bool {
		olds := make([]types.Tuple, len(c.Tuples))
		if c.SeedVar >= 0 && c.SeedVar < len(olds) {
			olds[c.SeedVar] = tok.Old
		}
		if err := s.runCombo(lt, tok, c.Tuples, olds, sp); err != nil {
			s.noteErrorAt("action", lt.Info.ID, err)
			return false
		}
		return true
	}
}

// fireMatches matches the token's effective image against the predicate
// index (optionally one partition) and fires each matching trigger whose
// fire mask accepts the token.
func (s *System) fireMatches(tok datasource.Token, part, slot int, sp *trace.Span) error {
	var begin time.Time
	if sp != nil {
		begin = time.Now()
	}
	var matched []predindex.Match
	var err error
	if part < 0 {
		err = s.pidx.MatchTokenSlot(tok, slot, func(m predindex.Match) bool {
			if m.FireMask.Matches(tok) {
				matched = append(matched, m)
			}
			return true
		})
	} else {
		err = s.pidx.MatchTokenPartitionSlot(tok, part, slot, func(m predindex.Match) bool {
			if m.FireMask.Matches(tok) {
				matched = append(matched, m)
			}
			return true
		})
	}
	if sp != nil {
		sp.Observe(trace.StageMatch, time.Since(begin))
	}
	if err != nil {
		return err
	}
	for _, m := range matched {
		if m.Gator || m.Aggregate {
			// Gator and aggregate triggers fired during their
			// maintenance passes.
			continue
		}
		if !s.cat.IsFireable(m.TriggerID) {
			continue
		}
		s.cTokensMatch.Inc()
		// A transient Pin/Enumerate fault is retried per firing; an
		// exhausted or permanent one quarantines only this trigger's
		// firing — the remaining matches still run.
		m := m
		attempts, err := s.actionRetry.Do(func() error {
			return s.fireTrigger(m, tok, sp)
		})
		s.prof.ActionRetries(m.TriggerID, attempts)
		if err != nil {
			s.quarantine(catalog.DeadAction, m.TriggerID, tok, err, attempts)
		}
	}
	return nil
}

// fireTrigger pins the trigger (§5.4's trigger-cache pin), runs join and
// temporal condition testing through the A-TREAT network when present,
// and executes the action for every satisfying combination.
func (s *System) fireTrigger(m predindex.Match, tok datasource.Token, sp *trace.Span) error {
	lt, unpin, err := s.cat.Pin(m.TriggerID)
	if err != nil {
		return err
	}
	defer unpin()

	if lt.Network == nil {
		// Single-variable trigger: the selection match is the whole
		// condition; fire directly with the effective tuple.
		olds := []types.Tuple{tok.Old}
		return s.runCombo(*lt, tok, []types.Tuple{tok.Effective()}, olds, sp)
	}
	var ferr error
	err = lt.Network.Enumerate(int(m.NextNode), tok, func(c discrim.Combo) bool {
		olds := make([]types.Tuple, len(c.Tuples))
		if c.SeedVar >= 0 && c.SeedVar < len(olds) {
			olds[c.SeedVar] = tok.Old
		}
		if e := s.runCombo(*lt, tok, c.Tuples, olds, sp); e != nil {
			ferr = e
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return ferr
}

// runCombo executes a trigger's action for one satisfying combination,
// inline or as a rule-action task per Options.ActionTasks.
func (s *System) runCombo(lt catalog.LoadedTrigger, tok datasource.Token, tuples, olds []types.Tuple, sp *trace.Span) error {
	if s.FireHook != nil {
		s.FireHook(lt.Info.ID, tuples)
	}
	binding := exec.Binding{VarIndex: lt.VarIndex, Tuples: tuples, Olds: olds}
	schemas := lt.Schemas
	schemaOf := func(vi int) *types.Schema {
		if vi < 0 || vi >= len(schemas) {
			return nil
		}
		return schemas[vi]
	}
	action := lt.Action
	id := lt.Info.ID
	// Traced firings run through a per-firing Executor copy whose
	// Observe hook stamps event delivery, so the deliver stage lands on
	// this token's span without changing Execute's signature.
	exe := s.exe
	if sp != nil {
		e := *s.exe
		e.Observe = func(phase string, d time.Duration) {
			if phase == "deliver" {
				sp.Observe(trace.StageDeliver, d)
			}
		}
		exe = &e
	}
	run := func() error {
		s.cActionsRun.Inc()
		// Timed unconditionally: the elapsed wall time feeds both the
		// sampled trace span and the always-on per-trigger attribution.
		begin := time.Now()
		// The action runs under the action retry policy: transient
		// faults back off and retry, panics and semantic errors fail
		// fast, and either way an undeliverable firing is quarantined in
		// the dead-letter table so the remaining combinations (and
		// triggers) keep firing.
		attempts, err := s.actionRetry.Do(func() error {
			return exe.Execute(id, action, binding, schemaOf)
		})
		elapsed := time.Since(begin)
		if sp != nil {
			sp.Observe(trace.StageAction, elapsed)
		}
		s.prof.ObserveAction(id, elapsed)
		s.prof.ActionRetries(id, attempts)
		if err != nil {
			s.quarantine(catalog.DeadAction, id, tok, err, attempts)
		}
		return nil
	}
	if s.opts.Synchronous || s.pool == nil || !s.opts.ActionTasks {
		// Task type 4: the token's actions run inside its own task.
		return run()
	}
	// Rule action concurrency (task type 2 of §6): the task holds a
	// span reference, because it may outlive the token task that
	// spawned it. The action inherits the *trigger's* declared class,
	// not the source's — a batch trigger on a shared source must not
	// ride the interactive queue.
	pri := taskq.High
	if lt.Info.Class == admission.Batch {
		pri = taskq.Low
	}
	sp.Retain()
	var submitAt time.Time
	if sp != nil {
		submitAt = time.Now()
	}
	err := s.pool.Submit(taskq.Task{
		Kind: taskq.RunAction, Pri: pri,
		Run: func() error {
			if sp != nil {
				sp.Observe(trace.StageTaskWait, time.Since(submitAt))
			}
			return run()
		},
		OnDone: func(error) { sp.Finish() },
	})
	if err != nil {
		sp.Finish()
	}
	return err
}

// CapturingRunner wraps the database so execSQL actions generate update
// descriptors for tables registered as data sources — the cascade path.
type capturingRunner struct{ sys *System }

// ExecStmt implements exec.StmtRunner.
func (r capturingRunner) ExecStmt(st parser.Statement) (*minisql.Result, error) {
	res, err := r.sys.db.ExecStmt(st)
	if err != nil {
		return nil, err
	}
	if res.Table != "" && len(res.Changes) > 0 {
		if src, ok := r.sys.reg.ByName(res.Table); ok {
			for _, ch := range res.Changes {
				tok := datasource.Token{SourceID: src.ID}
				switch {
				case ch.Old == nil:
					tok.Op = datasource.OpInsert
					tok.New = ch.New
				case ch.New == nil:
					tok.Op = datasource.OpDelete
					tok.Old = ch.Old
				default:
					tok.Op = datasource.OpUpdate
					tok.Old, tok.New = ch.Old, ch.New
				}
				// Cascades go through admission (an overloaded source
				// pushes back on the action that feeds it) but skip the
				// closed gate: an in-flight action during Close must be
				// able to finish its writes while the pool drains.
				if err := r.sys.admit(tok); err != nil {
					return res, err
				}
			}
		}
	}
	return res, nil
}
