// Package phasecounter implements Doppel-style phase-reconciled
// counters for skewed workloads (Narula's ddtxn: split contended keys
// into per-core slices, reconcile periodically in phases).
//
// A Counter starts in the plain phase: a single shared atomic cell.
// Each update stamps the writer's driver slot, so the cell itself
// doubles as the contention probe — when updates keep arriving from
// different slots, the cell is demonstrably bouncing between cores,
// and the counter splits into per-driver slices (one padded cache
// line per scheduler slot). Subsequent updates land in the caller's
// own slice, so a viral key stops bouncing one cache line across
// every core. A Domain-wide reconcile tick folds slice deltas back into the
// base cell and records the folded value as the counter's reconciled
// reading; keys that stay cold for a few epochs demote back to the
// plain phase.
//
// The discipline mirrors the predicate index's lock-free
// copy-on-write reads: the slice block is published through an atomic
// pointer, writers never block readers, and no update is ever lost —
// a demoted counter keeps its block so stragglers that raced the
// demotion still count. Value() is exact at quiescence; during a fold
// it may transiently undercount (a delta in flight between a slice
// and the base), never overcount. The triggerID sets themselves stay
// copy-on-write (they are read-only on the match path); what this
// package slices is the mutable per-key state riding next to them:
// probe/match tallies and rate counters.
package phasecounter

import (
	"sync"
	"sync/atomic"
	"time"
)

// promoteSwitches is the cumulative writer-switch count that splits a
// plain counter. A switch means the update arrived from a different
// driver slot than the previous one — the cache line provably moved
// between cores. Single-writer keys never switch and never split; a
// key promoted on sporadic cross-driver traffic costs one slice block
// and demotes again once it goes cold.
const promoteSwitches = 8

// demoteIdleEpochs is how many consecutive reconcile epochs with zero
// sliced activity demote a sliced counter back to plain. Lukewarm keys
// stay sliced — slices are cheap once allocated — only cold keys fold
// back.
const demoteIdleEpochs = 3

// NoSlot is the slot value for callers with no driver identity (a
// synchronous embedder, a control-plane goroutine): their updates stay
// on the plain path, which is always correct, just not sliced.
const NoSlot = -1

// Phase is a counter's current write mode.
type Phase uint8

const (
	// PhasePlain: updates CAS a single shared cell.
	PhasePlain Phase = iota
	// PhaseSliced: updates land in the caller's per-slot slice.
	PhaseSliced
)

func (p Phase) String() string {
	if p == PhaseSliced {
		return "sliced"
	}
	return "plain"
}

// slotCell is one per-driver slice, padded to its own cache line so
// neighboring slots never false-share.
type slotCell struct {
	v atomic.Int64
	_ [56]byte
}

// block is the sliced state of a promoted counter. It is published
// through Counter.block and never freed: a demoted counter keeps its
// block so an update that loaded the pointer just before demotion
// still lands somewhere Value() reads.
type block struct {
	slots []slotCell
	// demoted routes new updates back through the plain CAS path while
	// the block drains; reconcile keeps folding stragglers.
	demoted atomic.Bool
	// reconciled is the counter's value as of the last fold — the
	// reading reorganization decisions and snapshots consume (stale by
	// at most one epoch).
	reconciled atomic.Int64
	// folds counts reconcile epochs applied to this counter.
	folds atomic.Int64
	// lastFold is the wall clock of the latest fold (unix nanos).
	lastFold atomic.Int64
	// idle counts consecutive zero-delta epochs; touched only by the
	// reconciler.
	idle int
}

// Counter is a phase-reconciled int64. The zero value is a plain
// counter ready for use; it may be embedded by value. Updates go
// through Add with the caller's driver slot (-1 when the caller has
// no slot identity, e.g. a synchronous embedder).
type Counter struct {
	base atomic.Int64
	// owner is the last plain-phase writer's slot + 1 (0 = none yet);
	// switches is the cumulative cross-slot writer-switch count.
	owner    atomic.Uint32
	switches atomic.Uint32
	block    atomic.Pointer[block]
}

// Add adds delta, routing through the counter's current phase. slot is
// the caller's stable driver slot from taskq (-1 = no slot identity:
// the update stays on the plain path, which is always correct, just
// not contention-free).
func (c *Counter) Add(d *Domain, slot int, delta int64) {
	if b := c.block.Load(); b != nil && !b.demoted.Load() {
		if slot >= 0 {
			b.slots[uint(slot)%uint(len(b.slots))].v.Add(delta)
			return
		}
		c.base.Add(delta)
		return
	}
	// Plain phase: the shared cell itself is the contention probe —
	// updates stamp the writer's slot, and cross-slot switches mean the
	// cache line is provably migrating between cores.
	c.base.Add(delta)
	if slot < 0 {
		return
	}
	me := uint32(slot) + 1
	if prev := c.owner.Load(); prev != me {
		c.owner.Store(me)
		if prev != 0 && c.switches.Add(1) >= promoteSwitches && d != nil {
			c.Split(d)
		}
	}
}

// Split promotes the counter to the sliced phase (or re-arms a
// demoted block). Idempotent; safe under concurrent Adds — updates
// racing the promotion land in the base cell and stay counted.
// Callers that know a counter is guaranteed-hot (index-wide tallies)
// call Split at construction instead of waiting for the CAS probe.
func (c *Counter) Split(d *Domain) {
	if d == nil || d.slots <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if b := c.block.Load(); b != nil {
		if b.demoted.Load() {
			b.idle = 0
			b.demoted.Store(false)
			c.switches.Store(0)
			d.promotions.Add(1)
		}
		return
	}
	b := &block{slots: make([]slotCell, d.slots)}
	b.lastFold.Store(time.Now().UnixNano())
	c.switches.Store(0)
	c.block.Store(b)
	d.reg = append(d.reg, c)
	d.promotions.Add(1)
}

// Reset sets the counter to v, discarding any slice deltas. It is not
// atomic with respect to concurrent Adds — an add in flight during the
// reset may land before or after it. Embedders whose replacement
// semantics already tolerate bounded misattribution (the profile
// sketch's space-saving admission) use it to recycle a counter for a
// new key; exact embedders must quiesce writers first.
func (c *Counter) Reset(v int64) {
	if b := c.block.Load(); b != nil {
		for i := range b.slots {
			b.slots[i].v.Store(0)
		}
		b.reconciled.Store(v)
	}
	c.base.Store(v)
	c.owner.Store(0)
	c.switches.Store(0)
}

// Value returns the exact current total: base plus every live slice.
// During a concurrent fold it may transiently miss a delta in transit
// (never double count); at quiescence it is exact.
func (c *Counter) Value() int64 {
	v := c.base.Load()
	if b := c.block.Load(); b != nil {
		for i := range b.slots {
			v += b.slots[i].v.Load()
		}
	}
	return v
}

// Reconciled returns the counter's value as of the last reconcile
// fold — stale by at most one epoch. Plain counters (never promoted)
// reconcile trivially: their base cell is always current.
func (c *Counter) Reconciled() int64 {
	if b := c.block.Load(); b != nil {
		return b.reconciled.Load()
	}
	return c.base.Load()
}

// Phase reports the counter's current write mode. A demoted counter
// reports PhasePlain even though it retains its slice block.
func (c *Counter) Phase() Phase {
	if b := c.block.Load(); b != nil && !b.demoted.Load() {
		return PhaseSliced
	}
	return PhasePlain
}

// Slices reports the live slice count (0 in the plain phase).
func (c *Counter) Slices() int {
	if b := c.block.Load(); b != nil && !b.demoted.Load() {
		return len(b.slots)
	}
	return 0
}

// Reconciles reports how many reconcile epochs have folded this
// counter (0 if never promoted).
func (c *Counter) Reconciles() int64 {
	if b := c.block.Load(); b != nil {
		return b.folds.Load()
	}
	return 0
}

// LastReconcile reports the wall clock of the counter's latest fold
// (zero time if never promoted).
func (c *Counter) LastReconcile() time.Time {
	if b := c.block.Load(); b != nil {
		if ns := b.lastFold.Load(); ns != 0 {
			return time.Unix(0, ns)
		}
	}
	return time.Time{}
}

// Domain groups counters that share one slice geometry (the driver
// pool's slot count) and one reconcile clock. An Index or Sketch owns
// a Domain; the embedding system ticks Reconcile on its epoch timer.
type Domain struct {
	slots int

	mu  sync.Mutex
	reg []*Counter // every promoted counter, in promotion order

	promotions atomic.Int64
	demotions  atomic.Int64
	reconciles atomic.Int64
	lastRecon  atomic.Int64 // unix nanos
}

// NewDomain creates a Domain whose sliced counters have one slice per
// slot. slots is the stable driver count from taskq (clamped to ≥ 1).
func NewDomain(slots int) *Domain {
	if slots < 1 {
		slots = 1
	}
	return &Domain{slots: slots}
}

// Slots reports the slice geometry.
func (d *Domain) Slots() int {
	if d == nil {
		return 0
	}
	return d.slots
}

// Reconcile runs one epoch: every promoted counter's slice deltas fold
// into its base cell and its reconciled reading refreshes; counters
// cold for demoteIdleEpochs epochs demote to plain. Exactness: a slice
// delta is captured by the fold's Swap or remains in the slice for the
// next fold — it is never dropped, even for demoted blocks.
func (d *Domain) Reconcile() {
	if d == nil {
		return
	}
	now := time.Now().UnixNano()
	d.mu.Lock()
	reg := d.reg
	d.mu.Unlock()
	for _, c := range reg {
		b := c.block.Load()
		var delta int64
		for i := range b.slots {
			delta += b.slots[i].v.Swap(0)
		}
		if delta != 0 {
			c.base.Add(delta)
		}
		b.reconciled.Store(c.base.Load())
		b.folds.Add(1)
		b.lastFold.Store(now)
		if !b.demoted.Load() {
			if delta == 0 {
				if b.idle++; b.idle >= demoteIdleEpochs {
					b.demoted.Store(true)
					d.demotions.Add(1)
				}
			} else {
				b.idle = 0
			}
		}
	}
	d.reconciles.Add(1)
	d.lastRecon.Store(now)
}

// DomainStats is an introspection snapshot of a Domain.
type DomainStats struct {
	// Slots is the slice geometry (per-driver slice count).
	Slots int `json:"slots"`
	// Sliced is how many counters are currently in the sliced phase.
	Sliced int `json:"sliced"`
	// Promotions and Demotions count phase transitions since creation.
	Promotions int64 `json:"promotions"`
	Demotions  int64 `json:"demotions"`
	// Reconciles counts completed epochs; LastReconcileAgeNs is the age
	// of the latest (-1 if none yet).
	Reconciles         int64 `json:"reconciles"`
	LastReconcileAgeNs int64 `json:"last_reconcile_age_ns"`
}

// Stats snapshots the domain.
func (d *Domain) Stats() DomainStats {
	if d == nil {
		return DomainStats{}
	}
	st := DomainStats{
		Slots:              d.slots,
		Promotions:         d.promotions.Load(),
		Demotions:          d.demotions.Load(),
		Reconciles:         d.reconciles.Load(),
		LastReconcileAgeNs: -1,
	}
	if ns := d.lastRecon.Load(); ns != 0 {
		st.LastReconcileAgeNs = time.Since(time.Unix(0, ns)).Nanoseconds()
	}
	d.mu.Lock()
	reg := d.reg
	d.mu.Unlock()
	for _, c := range reg {
		if c.Phase() == PhaseSliced {
			st.Sliced++
		}
	}
	return st
}
