package phasecounter

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPlainCounterBasics(t *testing.T) {
	d := NewDomain(4)
	var c Counter
	c.Add(d, 0, 5)
	c.Add(d, -1, 2)
	if got := c.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
	if got := c.Reconciled(); got != 7 {
		t.Fatalf("plain Reconciled = %d, want 7 (base is always current)", got)
	}
	if c.Phase() != PhasePlain {
		t.Fatalf("Phase = %v, want plain", c.Phase())
	}
	if c.Slices() != 0 || c.Reconciles() != 0 {
		t.Fatalf("plain counter reports slices=%d reconciles=%d, want 0/0", c.Slices(), c.Reconciles())
	}
}

func TestExplicitSplitAndReconcile(t *testing.T) {
	d := NewDomain(4)
	var c Counter
	c.Add(d, 1, 3)
	c.Split(d)
	if c.Phase() != PhaseSliced || c.Slices() != 4 {
		t.Fatalf("after Split: phase=%v slices=%d, want sliced/4", c.Phase(), c.Slices())
	}
	c.Add(d, 0, 10)
	c.Add(d, 1, 20)
	c.Add(d, 5, 1) // wraps to slot 1
	c.Add(d, -1, 100)
	if got := c.Value(); got != 134 {
		t.Fatalf("sliced Value = %d, want 134", got)
	}
	// Reconciled lags until a fold runs.
	if got := c.Reconciled(); got != 0 {
		t.Fatalf("pre-fold Reconciled = %d, want 0", got)
	}
	d.Reconcile()
	if got := c.Reconciled(); got != 134 {
		t.Fatalf("post-fold Reconciled = %d, want 134", got)
	}
	if c.Reconciles() != 1 {
		t.Fatalf("Reconciles = %d, want 1", c.Reconciles())
	}
	if c.LastReconcile().IsZero() {
		t.Fatal("LastReconcile is zero after a fold")
	}
	st := d.Stats()
	if st.Sliced != 1 || st.Promotions != 1 || st.Reconciles != 1 {
		t.Fatalf("domain stats = %+v, want sliced=1 promotions=1 reconciles=1", st)
	}
}

func TestContentionPromotes(t *testing.T) {
	d := NewDomain(8)
	var c Counter
	var wg sync.WaitGroup
	const goroutines, per = 8, 20000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(d, slot, 1)
				if i%64 == 0 {
					// Force interleaving so writer switches happen even on
					// a single-P scheduler (GOMAXPROCS=1 CI runners).
					runtime.Gosched()
				}
			}
		}(g)
	}
	wg.Wait()
	d.Reconcile()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("Value = %d, want %d (no update may be lost)", got, goroutines*per)
	}
	if c.Phase() != PhaseSliced {
		t.Fatal("sustained 8-way contention did not promote the counter")
	}
}

func TestDemoteAfterIdleAndRepromote(t *testing.T) {
	d := NewDomain(2)
	var c Counter
	c.Split(d)
	c.Add(d, 0, 7)
	d.Reconcile() // folds 7, idle=0
	for i := 0; i < demoteIdleEpochs; i++ {
		d.Reconcile()
	}
	if c.Phase() != PhasePlain {
		t.Fatalf("cold counter did not demote after %d idle epochs", demoteIdleEpochs)
	}
	if d.Stats().Demotions != 1 {
		t.Fatalf("demotions = %d, want 1", d.Stats().Demotions)
	}
	// Demoted counters keep counting (plain path) and can re-promote.
	c.Add(d, 1, 3)
	if got := c.Value(); got != 10 {
		t.Fatalf("post-demotion Value = %d, want 10", got)
	}
	c.Split(d)
	if c.Phase() != PhaseSliced {
		t.Fatal("Split did not re-arm a demoted counter")
	}
	c.Add(d, 1, 5)
	d.Reconcile()
	if got, want := c.Value(), int64(15); got != want {
		t.Fatalf("re-promoted Value = %d, want %d", got, want)
	}
	if d.Stats().Promotions != 2 {
		t.Fatalf("promotions = %d, want 2", d.Stats().Promotions)
	}
}

// TestExactnessUnderConcurrentReconcile is the property test the
// acceptance criteria name: sliced-path totals equal a single-threaded
// reference while reconciles (and the resulting promote/demote churn)
// run concurrently with the adds. Run under -race.
func TestExactnessUnderConcurrentReconcile(t *testing.T) {
	const (
		writers = 8
		rounds  = 4000
		keys    = 16
	)
	d := NewDomain(writers)
	counters := make([]Counter, keys)
	var stop atomic.Bool
	var recons sync.WaitGroup
	recons.Add(1)
	go func() {
		defer recons.Done()
		for !stop.Load() {
			d.Reconcile()
		}
		d.Reconcile()
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for k := range counters {
					// Key 0 takes half the traffic — the contended key.
					if i%2 == 0 {
						counters[0].Add(d, slot, 1)
					}
					counters[k].Add(d, slot, 1)
				}
				if i%16 == 0 {
					runtime.Gosched() // interleave on single-P schedulers too
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	recons.Wait()

	wantHot := int64(writers * rounds * keys / 2 * 1)
	for k := range counters {
		want := int64(writers * rounds)
		if k == 0 {
			want += wantHot
		}
		if got := counters[k].Value(); got != want {
			t.Fatalf("counter %d: Value = %d, want %d", k, got, want)
		}
		if got := counters[k].Reconciled(); got != counters[k].Value() {
			t.Fatalf("counter %d: Reconciled = %d after final fold, want %d", k, got, counters[k].Value())
		}
	}
	if counters[0].Phase() != PhaseSliced && d.Stats().Promotions == 0 {
		t.Fatal("hot key never promoted under 8-way contention")
	}
}

// TestValueNeverOvercounts: concurrent readers during folds may see a
// transient undercount (a delta in transit between slice and base) but
// never more than the true running total.
func TestValueNeverOvercounts(t *testing.T) {
	const writers, rounds = 4, 50000
	d := NewDomain(writers)
	var c Counter
	c.Split(d)
	var wrote atomic.Int64 // monotone lower bound published after each add
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.Add(d, slot, 1)
				wrote.Add(1)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			d.Reconcile()
		}
	}()
	ceiling := int64(writers * rounds)
	for i := 0; i < 20000; i++ {
		if got := c.Value(); got > ceiling {
			stop.Store(true)
			t.Fatalf("Value = %d exceeds total writes %d", got, ceiling)
		}
	}
	stop.Store(true)
	wg.Wait()
	d.Reconcile()
	if got := c.Value(); got != ceiling {
		t.Fatalf("final Value = %d, want %d", got, ceiling)
	}
}

func TestNilAndDegenerateDomains(t *testing.T) {
	var c Counter
	c.Add(nil, 3, 4) // nil domain: plain path, never promotes
	c.Split(nil)
	if c.Phase() != PhasePlain || c.Value() != 4 {
		t.Fatalf("nil-domain counter: phase=%v value=%d", c.Phase(), c.Value())
	}
	var nd *Domain
	nd.Reconcile() // nil receiver is a no-op
	if nd.Slots() != 0 || nd.Stats() != (DomainStats{}) {
		t.Fatal("nil domain stats not zero")
	}
	d := NewDomain(0) // clamps to 1 slot
	if d.Slots() != 1 {
		t.Fatalf("Slots = %d, want clamp to 1", d.Slots())
	}
}

func TestPhaseString(t *testing.T) {
	if PhasePlain.String() != "plain" || PhaseSliced.String() != "sliced" {
		t.Fatalf("Phase strings: %q / %q", PhasePlain.String(), PhaseSliced.String())
	}
}

func BenchmarkPlainUncontended(b *testing.B) {
	d := NewDomain(8)
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Add(d, 0, 1)
	}
}

func BenchmarkSlicedContended(b *testing.B) {
	d := NewDomain(8)
	var c Counter
	c.Split(d)
	var slot atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		s := int(slot.Add(1)) % 8
		for pb.Next() {
			c.Add(d, s, 1)
		}
	})
	if c.Value() != int64(b.N) {
		b.Fatalf("lost updates: %d != %d", c.Value(), b.N)
	}
}
