// Package admission implements overload protection for the token
// pipeline: per-source token-bucket rate limits, queue-depth watermarks
// with priority-aware load shedding, and the classified ErrOverload
// contract producers see when the system refuses work.
//
// The controller sits at capture time — the entry point into the §6
// update queue. Each data source owns a token bucket (sustained rate
// plus burst) and two watermarks over its queued-token depth. At the
// soft watermark the source stops accepting batch-class work: the token
// is shed, meaning quarantined in the dead-letter table where it stays
// accounted and requeueable, never silently dropped. At the hard
// watermark (or an empty rate bucket) the source rejects everything
// with ErrOverload, which classifies as transient in the retry taxonomy
// so producers treat it as retryable backpressure. Interactive-class
// work is never shed — only rejected at the hard limit — which is what
// bounds its queueing delay under a burst.
package admission

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"triggerman/internal/retry"
)

// Class is a trigger's scheduling priority class, declared in the
// create-trigger statement and carried onto every task the trigger's
// tokens and actions spawn.
type Class uint8

const (
	// Interactive is the default class: latency-sensitive work that is
	// never shed and runs from the high-priority queues.
	Interactive Class = iota
	// Batch marks throughput work: first to shed under load, runs from
	// the low-priority queues.
	Batch
)

// String names the class.
func (c Class) String() string {
	if c == Batch {
		return "batch"
	}
	return "interactive"
}

// ParseClass recognizes a class keyword from a create-trigger flag
// list. The second result reports whether s named a class at all.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "interactive":
		return Interactive, true
	case "batch":
		return Batch, true
	default:
		return Interactive, false
	}
}

// Verdict is the admission decision for one token.
type Verdict uint8

const (
	// VerdictAdmit lets the token into the pipeline.
	VerdictAdmit Verdict = iota
	// VerdictShed diverts the token to the dead-letter table (batch
	// class over the soft watermark). The producer sees success.
	VerdictShed
	// VerdictReject refuses the token with ErrOverload (hard watermark
	// or rate limit). The producer must back off and retry.
	VerdictReject
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictShed:
		return "shed"
	case VerdictReject:
		return "reject"
	default:
		return "admit"
	}
}

// State is a source's current graceful-degradation state, derived from
// its most recent admission decision.
type State uint8

const (
	// StateAdmitting: below the soft watermark, bucket has tokens.
	StateAdmitting State = iota
	// StateShedding: at or over the soft watermark; batch work is being
	// shed while interactive work still flows.
	StateShedding
	// StateRejecting: at or over the hard watermark or rate-limited;
	// everything is refused.
	StateRejecting
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateShedding:
		return "shedding"
	case StateRejecting:
		return "rejecting"
	default:
		return "admitting"
	}
}

// ErrOverload is the sentinel producers test with errors.Is when a
// token is rejected at capture. Overload errors classify as transient:
// the condition clears as the queues drain, so retrying is correct.
var ErrOverload = errors.New("admission: source overloaded")

// OverloadError carries the rejection detail. It matches ErrOverload
// via errors.Is and classifies transient via the retry taxonomy.
type OverloadError struct {
	// SourceID is the refusing data source.
	SourceID int32
	// Reason is "depth" (hard watermark) or "rate" (empty bucket).
	Reason string
	// Depth and Limit describe the tripped bound: queued tokens vs the
	// hard watermark for depth rejections, or the configured rate (as
	// tokens/sec) for rate rejections.
	Depth, Limit int
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("admission: source %d overloaded (%s: %d >= %d)",
		e.SourceID, e.Reason, e.Depth, e.Limit)
}

// Is matches the ErrOverload sentinel.
func (e *OverloadError) Is(target error) bool { return target == ErrOverload }

// overload builds the classified error for one rejection.
func overload(src int32, reason string, depth, limit int) error {
	return retry.Transient(&OverloadError{SourceID: src, Reason: reason, Depth: depth, Limit: limit})
}

// Config bounds one source's admission. The zero value disables every
// limit (all tokens admitted); each field is independent so depth
// watermarks work without rate limits and vice versa.
type Config struct {
	// SoftDepth is the queued-token watermark at which batch-class work
	// is shed. 0 disables shedding.
	SoftDepth int
	// HardDepth is the watermark at which every token is rejected with
	// ErrOverload. 0 disables hard rejection.
	HardDepth int
	// Rate is the sustained admission rate in tokens/second per source.
	// 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket capacity; defaults to max(Rate, 1) when
	// a rate is set, letting short bursts through at full speed.
	Burst int
}

// withDefaults fills derived fields.
func (c Config) withDefaults() Config {
	if c.Rate > 0 && c.Burst <= 0 {
		c.Burst = int(c.Rate)
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	return c
}

// Enabled reports whether the config imposes any limit at all.
func (c Config) Enabled() bool {
	return c.SoftDepth > 0 || c.HardDepth > 0 || c.Rate > 0
}

// sourceState is one source's bucket, counters, and last state.
type sourceState struct {
	mu     sync.Mutex
	tokens float64   // current bucket fill
	last   time.Time // last refill instant
	state  State

	admitted    atomic.Int64
	shed        atomic.Int64
	rejected    atomic.Int64
	rateLimited atomic.Int64 // subset of rejected caused by the bucket
}

// SourceLoad is one source's row in a Snapshot (the /loadz payload and
// the metrics gauges read this).
type SourceLoad struct {
	SourceID    int32
	Class       Class
	State       State
	Depth       int
	Admitted    int64
	Shed        int64
	Rejected    int64
	RateLimited int64
}

// Controller applies one Config uniformly across data sources, keeping
// per-source buckets, counters, and degradation state.
type Controller struct {
	cfg   Config
	depth func(src int32) int // queued-token depth signal (datasource.Queue.SourceDepth)

	// OnTransition, when set, observes graceful-degradation state
	// changes (admitting → shedding → rejecting and back). It is called
	// outside the controller's locks.
	OnTransition func(src int32, from, to State)

	// now is the clock (replaced in tests).
	now func() time.Time

	mu   sync.RWMutex
	srcs map[int32]*sourceState

	admitTotal  atomic.Int64
	shedTotal   atomic.Int64
	rejectTotal atomic.Int64
}

// New builds a controller over a depth signal. depth may be nil when no
// watermarks are configured.
func New(cfg Config, depth func(src int32) int) *Controller {
	if depth == nil {
		depth = func(int32) int { return 0 }
	}
	return &Controller{
		cfg:   cfg.withDefaults(),
		depth: depth,
		now:   time.Now,
		srcs:  make(map[int32]*sourceState),
	}
}

// Config returns the controller's (default-filled) configuration.
func (c *Controller) Config() Config { return c.cfg }

// source returns (creating on first sight) one source's state.
func (c *Controller) source(src int32) *sourceState {
	c.mu.RLock()
	st := c.srcs[src]
	c.mu.RUnlock()
	if st != nil {
		return st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st = c.srcs[src]; st == nil {
		st = &sourceState{tokens: float64(c.cfg.Burst), last: c.now()}
		c.srcs[src] = st
	}
	return st
}

// Admit decides one token's fate. The error is non-nil exactly when the
// verdict is VerdictReject; it matches ErrOverload and classifies
// transient. The caller is responsible for acting on a shed verdict
// (dead-lettering the token) — the controller only counts it.
func (c *Controller) Admit(src int32, class Class) (Verdict, error) {
	st := c.source(src)
	depth := c.depth(src)

	verdict := VerdictAdmit
	var err error
	rateHit := false
	if c.cfg.HardDepth > 0 && depth >= c.cfg.HardDepth {
		verdict, err = VerdictReject, overload(src, "depth", depth, c.cfg.HardDepth)
	} else if c.cfg.Rate > 0 && !c.take(st) {
		verdict, err = VerdictReject, overload(src, "rate", depth, int(c.cfg.Rate))
		rateHit = true
	} else if c.cfg.SoftDepth > 0 && depth >= c.cfg.SoftDepth && class == Batch {
		verdict = VerdictShed
	}

	var next State
	switch verdict {
	case VerdictReject:
		st.rejected.Add(1)
		c.rejectTotal.Add(1)
		if rateHit {
			st.rateLimited.Add(1)
		}
		next = StateRejecting
	case VerdictShed:
		st.shed.Add(1)
		c.shedTotal.Add(1)
		next = StateShedding
	default:
		st.admitted.Add(1)
		c.admitTotal.Add(1)
		next = StateAdmitting
		// An admitted interactive token over the soft watermark still
		// means the source is degraded: batch work would have shed.
		if c.cfg.SoftDepth > 0 && depth >= c.cfg.SoftDepth {
			next = StateShedding
		}
	}

	st.mu.Lock()
	prev := st.state
	st.state = next
	st.mu.Unlock()
	if prev != next && c.OnTransition != nil {
		c.OnTransition(src, prev, next)
	}
	return verdict, err
}

// take refills and drains one bucket token; false means rate-limited.
func (c *Controller) take(st *sourceState) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := c.now()
	st.tokens += now.Sub(st.last).Seconds() * c.cfg.Rate
	st.last = now
	if max := float64(c.cfg.Burst); st.tokens > max {
		st.tokens = max
	}
	if st.tokens < 1 {
		return false
	}
	st.tokens--
	return true
}

// StateOf reports a source's current degradation state. Sources the
// controller has never seen are admitting.
func (c *Controller) StateOf(src int32) State {
	c.mu.RLock()
	st := c.srcs[src]
	c.mu.RUnlock()
	if st == nil {
		return StateAdmitting
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.state
}

// Totals reports the controller-wide verdict counters.
func (c *Controller) Totals() (admitted, shed, rejected int64) {
	return c.admitTotal.Load(), c.shedTotal.Load(), c.rejectTotal.Load()
}

// Snapshot lists every source the controller has seen, sorted by
// source ID, with live depth readings. classOf resolves each source's
// current class (nil means all interactive).
func (c *Controller) Snapshot(classOf func(int32) Class) []SourceLoad {
	if classOf == nil {
		classOf = func(int32) Class { return Interactive }
	}
	c.mu.RLock()
	ids := make([]int32, 0, len(c.srcs))
	for id := range c.srcs {
		ids = append(ids, id)
	}
	c.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]SourceLoad, 0, len(ids))
	for _, id := range ids {
		st := c.source(id)
		st.mu.Lock()
		state := st.state
		st.mu.Unlock()
		out = append(out, SourceLoad{
			SourceID:    id,
			Class:       classOf(id),
			State:       state,
			Depth:       c.depth(id),
			Admitted:    st.admitted.Load(),
			Shed:        st.shed.Load(),
			Rejected:    st.rejected.Load(),
			RateLimited: st.rateLimited.Load(),
		})
	}
	return out
}
