package admission

import (
	"errors"
	"testing"
	"time"

	"triggerman/internal/retry"
)

// fakeDepth is a settable depth signal.
type fakeDepth struct{ d map[int32]int }

func (f *fakeDepth) fn(src int32) int { return f.d[src] }

func TestZeroConfigAdmitsEverything(t *testing.T) {
	c := New(Config{}, nil)
	for i := 0; i < 1000; i++ {
		v, err := c.Admit(1, Batch)
		if v != VerdictAdmit || err != nil {
			t.Fatalf("zero config: verdict %v err %v", v, err)
		}
	}
	if a, s, r := c.Totals(); a != 1000 || s != 0 || r != 0 {
		t.Fatalf("totals = %d/%d/%d, want 1000/0/0", a, s, r)
	}
}

func TestSoftWatermarkShedsOnlyBatch(t *testing.T) {
	fd := &fakeDepth{d: map[int32]int{7: 0}}
	c := New(Config{SoftDepth: 4, HardDepth: 100}, fd.fn)

	fd.d[7] = 3
	if v, err := c.Admit(7, Batch); v != VerdictAdmit || err != nil {
		t.Fatalf("below soft: %v %v", v, err)
	}
	fd.d[7] = 4
	if v, err := c.Admit(7, Batch); v != VerdictShed || err != nil {
		t.Fatalf("at soft, batch: verdict %v err %v, want shed/nil", v, err)
	}
	// Interactive work flows through the same depth.
	if v, err := c.Admit(7, Interactive); v != VerdictAdmit || err != nil {
		t.Fatalf("at soft, interactive: %v %v", v, err)
	}
	if got := c.StateOf(7); got != StateShedding {
		t.Fatalf("state = %v, want shedding (interactive admit over soft keeps degraded state)", got)
	}
}

func TestHardWatermarkRejectsEverything(t *testing.T) {
	fd := &fakeDepth{d: map[int32]int{1: 10}}
	c := New(Config{SoftDepth: 4, HardDepth: 10}, fd.fn)
	for _, class := range []Class{Interactive, Batch} {
		v, err := c.Admit(1, class)
		if v != VerdictReject {
			t.Fatalf("%v at hard: verdict %v", class, v)
		}
		if !errors.Is(err, ErrOverload) {
			t.Fatalf("%v at hard: err %v does not match ErrOverload", class, err)
		}
		if !retry.IsTransient(err) {
			t.Fatalf("%v at hard: err %v is not transient", class, err)
		}
		var oe *OverloadError
		if !errors.As(err, &oe) || oe.Reason != "depth" || oe.SourceID != 1 {
			t.Fatalf("overload detail: %+v", oe)
		}
	}
	if got := c.StateOf(1); got != StateRejecting {
		t.Fatalf("state = %v, want rejecting", got)
	}
	// Recovery: depth drains, source admits again.
	fd.d[1] = 0
	if v, err := c.Admit(1, Batch); v != VerdictAdmit || err != nil {
		t.Fatalf("after drain: %v %v", v, err)
	}
	if got := c.StateOf(1); got != StateAdmitting {
		t.Fatalf("state after drain = %v, want admitting", got)
	}
}

func TestTokenBucketRateLimit(t *testing.T) {
	c := New(Config{Rate: 10, Burst: 5}, nil)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	// Burst drains first.
	for i := 0; i < 5; i++ {
		if v, err := c.Admit(3, Interactive); v != VerdictAdmit || err != nil {
			t.Fatalf("burst token %d: %v %v", i, v, err)
		}
	}
	v, err := c.Admit(3, Interactive)
	if v != VerdictReject || !errors.Is(err, ErrOverload) {
		t.Fatalf("empty bucket: verdict %v err %v", v, err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "rate" {
		t.Fatalf("reason = %+v, want rate", oe)
	}
	// 100ms refills one token at 10/s.
	now = now.Add(100 * time.Millisecond)
	if v, err := c.Admit(3, Interactive); v != VerdictAdmit || err != nil {
		t.Fatalf("after refill: %v %v", v, err)
	}
	// Bucket never exceeds Burst: a long idle stretch refills to 5, not more.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if v, _ := c.Admit(3, Interactive); v == VerdictAdmit {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("after idle hour: admitted %d, want 5 (burst cap)", admitted)
	}
}

func TestTransitionHookFiresOnChangesOnly(t *testing.T) {
	fd := &fakeDepth{d: map[int32]int{2: 0}}
	c := New(Config{SoftDepth: 2, HardDepth: 4}, fd.fn)
	type tr struct{ from, to State }
	var seen []tr
	c.OnTransition = func(src int32, from, to State) {
		if src != 2 {
			t.Fatalf("transition for source %d", src)
		}
		seen = append(seen, tr{from, to})
	}
	c.Admit(2, Batch) // admitting (no change from zero state)
	c.Admit(2, Batch)
	fd.d[2] = 2
	c.Admit(2, Batch) // -> shedding
	c.Admit(2, Batch) // still shedding, no hook
	fd.d[2] = 4
	c.Admit(2, Batch) // -> rejecting
	fd.d[2] = 0
	c.Admit(2, Batch) // -> admitting
	want := []tr{
		{StateAdmitting, StateShedding},
		{StateShedding, StateRejecting},
		{StateRejecting, StateAdmitting},
	}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestSnapshotCountsAndSorts(t *testing.T) {
	fd := &fakeDepth{d: map[int32]int{5: 0, 9: 3}}
	c := New(Config{SoftDepth: 3}, fd.fn)
	c.Admit(9, Batch) // shed
	c.Admit(9, Batch) // shed
	c.Admit(5, Batch) // admit
	classes := map[int32]Class{5: Interactive, 9: Batch}
	snap := c.Snapshot(func(src int32) Class { return classes[src] })
	if len(snap) != 2 || snap[0].SourceID != 5 || snap[1].SourceID != 9 {
		t.Fatalf("snapshot order: %+v", snap)
	}
	if snap[0].Admitted != 1 || snap[0].Shed != 0 || snap[0].Class != Interactive {
		t.Fatalf("source 5: %+v", snap[0])
	}
	if snap[1].Shed != 2 || snap[1].State != StateShedding || snap[1].Depth != 3 || snap[1].Class != Batch {
		t.Fatalf("source 9: %+v", snap[1])
	}
}

func TestParseClass(t *testing.T) {
	cases := []struct {
		in string
		cl Class
		ok bool
	}{
		{"interactive", Interactive, true},
		{"batch", Batch, true},
		{"urgent", Interactive, false},
		{"", Interactive, false},
	}
	for _, tc := range cases {
		cl, ok := ParseClass(tc.in)
		if cl != tc.cl || ok != tc.ok {
			t.Fatalf("ParseClass(%q) = %v,%v want %v,%v", tc.in, cl, ok, tc.cl, tc.ok)
		}
	}
	if Interactive.String() != "interactive" || Batch.String() != "batch" {
		t.Fatal("Class.String")
	}
}

func TestConcurrentAdmitIsRaceFree(t *testing.T) {
	fd := &fakeDepth{d: map[int32]int{1: 5}}
	c := New(Config{SoftDepth: 3, HardDepth: 100, Rate: 1e9}, fd.fn)
	c.OnTransition = func(int32, State, State) {}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			class := Interactive
			if g%2 == 0 {
				class = Batch
			}
			for i := 0; i < 2000; i++ {
				c.Admit(int32(1+g%3), class)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	a, s, r := c.Totals()
	if a+s+r != 16000 {
		t.Fatalf("totals %d+%d+%d != 16000: verdicts lost", a, s, r)
	}
}
