package parser

import (
	"fmt"
	"strconv"
	"strings"

	"triggerman/internal/expr"
	"triggerman/internal/sqlscan"
	"triggerman/internal/types"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []sqlscan.Token
	pos  int
	src  string
}

// New builds a parser for src, tokenizing eagerly.
func New(src string) (*Parser, error) {
	toks, err := sqlscan.New(src).All()
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks, src: src}, nil
}

// Parse parses a single TriggerMan command.
func Parse(src string) (Statement, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	st, err := p.Statement()
	if err != nil {
		return nil, err
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return st, nil
}

// ParseExpr parses a standalone expression (used by tests and the
// console's explain mode).
func ParseExpr(src string) (expr.Node, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	n, err := p.Expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return n, nil
}

func (p *Parser) cur() sqlscan.Token { return p.toks[p.pos] }
func (p *Parser) peek() sqlscan.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *Parser) advance() sqlscan.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("parse error at offset %d (near %q): %s",
		p.cur().Pos, p.cur().Text, fmt.Sprintf(format, args...))
}

func (p *Parser) accept(word string) bool {
	if p.cur().Is(word) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) acceptSymbol(sym string) bool {
	if p.cur().IsSymbol(sym) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(word string) error {
	if !p.accept(word) {
		return p.errf("expected %q", word)
	}
	return nil
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errf("expected %q", sym)
	}
	return nil
}

func (p *Parser) ident() (string, error) {
	if p.cur().Kind != sqlscan.Ident {
		return "", p.errf("expected identifier")
	}
	return p.advance().Text, nil
}

func (p *Parser) expectEnd() error {
	p.acceptSymbol(";")
	if p.cur().Kind != sqlscan.EOF {
		return p.errf("unexpected trailing input")
	}
	return nil
}

// Statement parses any command, dispatching on the leading keywords.
func (p *Parser) Statement() (Statement, error) {
	switch {
	case p.cur().Is("create"):
		if p.peek().Is("trigger") {
			return p.createTriggerOrSet()
		}
		return nil, p.errf("expected 'trigger' after 'create'")
	case p.cur().Is("drop"):
		return p.dropStatement()
	case p.cur().Is("define"):
		return p.defineDataSource()
	case p.cur().Is("enable"), p.cur().Is("disable"):
		return p.setEnabled()
	case p.cur().Is("select"):
		return p.selectStmt()
	case p.cur().Is("insert"):
		return p.insertStmt()
	case p.cur().Is("update"):
		return p.updateStmt()
	case p.cur().Is("delete"):
		return p.deleteStmt()
	default:
		return nil, p.errf("unknown command")
	}
}

func (p *Parser) createTriggerOrSet() (Statement, error) {
	start := p.cur().Pos
	p.advance() // create
	p.advance() // trigger
	if p.accept("set") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st := &CreateTriggerSet{Name: name}
		if p.cur().Kind == sqlscan.String {
			st.Comments = p.advance().Text
		}
		return st, nil
	}
	ct := &CreateTrigger{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct.Name = name
	if p.accept("in") {
		if ct.SetName, err = p.ident(); err != nil {
			return nil, err
		}
	}
	// Optional flags before the from clause; each flag is a bare
	// identifier that is not one of the clause keywords.
	for p.cur().Kind == sqlscan.Ident && !isClauseKeyword(p.cur().Text) {
		ct.Flags = append(ct.Flags, strings.ToLower(p.advance().Text))
	}
	// Clauses may appear with on before from (the paper writes both
	// "from emp on update(...)" and "on insert to house from ...").
	for {
		switch {
		case p.accept("from"):
			if ct.From, err = p.fromList(); err != nil {
				return nil, err
			}
		case p.accept("on"):
			if ct.On, err = p.eventSpec(); err != nil {
				return nil, err
			}
		case p.accept("when"):
			if ct.When, err = p.Expr(); err != nil {
				return nil, err
			}
		case p.accept("group"):
			if err = p.expect("by"); err != nil {
				return nil, err
			}
			if ct.GroupBy, err = p.nameList(); err != nil {
				return nil, err
			}
		case p.accept("having"):
			if ct.Having, err = p.Expr(); err != nil {
				return nil, err
			}
		case p.accept("do"):
			if ct.Do, err = p.actionClause(); err != nil {
				return nil, err
			}
			end := p.cur().Pos
			if end > len(p.src) {
				end = len(p.src)
			}
			ct.Text = strings.TrimSpace(p.src[start:])
			_ = end
			if len(ct.From) == 0 {
				return nil, fmt.Errorf("parse error: create trigger %s has no from clause", ct.Name)
			}
			return ct, nil
		default:
			return nil, p.errf("expected trigger clause (from/on/when/group by/having/do)")
		}
	}
}

func isClauseKeyword(w string) bool {
	switch strings.ToLower(w) {
	case "from", "on", "when", "group", "having", "do", "in":
		return true
	}
	return false
}

func (p *Parser) fromList() ([]FromItem, error) {
	var out []FromItem
	for {
		src, err := p.ident()
		if err != nil {
			return nil, err
		}
		item := FromItem{Source: src}
		// Optional alias: an identifier that is not a clause keyword.
		if p.cur().Kind == sqlscan.Ident && !isClauseKeyword(p.cur().Text) {
			item.Alias = p.advance().Text
		}
		out = append(out, item)
		if !p.acceptSymbol(",") {
			return out, nil
		}
	}
}

// eventSpec parses forms like:
//
//	insert to house
//	delete from emp
//	update(emp.salary, emp.dept)
//	update of emp
//	update to emp
func (p *Parser) eventSpec() (*EventSpec, error) {
	es := &EventSpec{}
	switch {
	case p.accept("insert"):
		es.Op = OpInsert
	case p.accept("delete"):
		es.Op = OpDelete
	case p.accept("update"):
		es.Op = OpUpdate
	default:
		return nil, p.errf("expected insert, delete or update")
	}
	if es.Op == OpUpdate && p.acceptSymbol("(") {
		for {
			qual, col, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			if qual != "" {
				if es.Target != "" && !strings.EqualFold(es.Target, qual) {
					return nil, fmt.Errorf("parse error: update event names two targets (%s, %s)", es.Target, qual)
				}
				es.Target = qual
			}
			es.Columns = append(es.Columns, col)
			if p.acceptSymbol(")") {
				break
			}
			if err := p.expectSymbol(","); err != nil {
				return nil, err
			}
		}
		return es, nil
	}
	// "to", "from", "of" are interchangeable connective words here.
	if p.accept("to") || p.accept("from") || p.accept("of") {
		t, err := p.ident()
		if err != nil {
			return nil, err
		}
		es.Target = t
	}
	return es, nil
}

// qualifiedName parses ident or ident.ident, returning (qualifier, name).
func (p *Parser) qualifiedName() (string, string, error) {
	a, err := p.ident()
	if err != nil {
		return "", "", err
	}
	if p.acceptSymbol(".") {
		b, err := p.ident()
		if err != nil {
			return "", "", err
		}
		return a, b, nil
	}
	return "", a, nil
}

func (p *Parser) nameList() ([]string, error) {
	var out []string
	for {
		_, name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		out = append(out, name)
		if !p.acceptSymbol(",") {
			return out, nil
		}
	}
}

func (p *Parser) actionClause() (Action, error) {
	switch {
	case p.accept("execsql"):
		if p.cur().Kind != sqlscan.String {
			return nil, p.errf("execSQL expects a string literal")
		}
		sql := p.advance().Text
		inner, err := parseActionSQL(sql)
		if err != nil {
			return nil, fmt.Errorf("in execSQL action: %w", err)
		}
		return &ExecSQL{SQL: sql, Stmt: inner}, nil
	case p.accept("raise"):
		if err := p.expect("event"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		re := &RaiseEvent{Name: name}
		if p.acceptSymbol("(") {
			if !p.acceptSymbol(")") {
				for {
					arg, err := p.Expr()
					if err != nil {
						return nil, err
					}
					re.Args = append(re.Args, arg)
					if p.acceptSymbol(")") {
						break
					}
					if err := p.expectSymbol(","); err != nil {
						return nil, err
					}
				}
			}
		}
		return re, nil
	default:
		return nil, p.errf("expected execSQL or raise event action")
	}
}

// parseActionSQL parses the mini-SQL inside an execSQL string.
func parseActionSQL(sql string) (Statement, error) {
	p, err := New(sql)
	if err != nil {
		return nil, err
	}
	st, err := p.Statement()
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case *Select, *Insert, *Update, *Delete:
	default:
		return nil, fmt.Errorf("parse error: execSQL only supports select/insert/update/delete")
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) dropStatement() (Statement, error) {
	p.advance() // drop
	if err := p.expect("trigger"); err != nil {
		return nil, err
	}
	if p.accept("set") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTriggerSet{Name: name}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTrigger{Name: name}, nil
}

func (p *Parser) setEnabled() (Statement, error) {
	enabled := p.cur().Is("enable")
	p.advance()
	if err := p.expect("trigger"); err != nil {
		return nil, err
	}
	isSet := p.accept("set")
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &SetEnabled{Name: name, Set: isSet, Enabled: enabled}, nil
}

func (p *Parser) defineDataSource() (Statement, error) {
	p.advance() // define
	if err := p.expect("data"); err != nil {
		return nil, err
	}
	if err := p.expect("source"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ds := &DefineDataSource{Name: name}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		tn, err := p.ident()
		if err != nil {
			return nil, err
		}
		kind, err := types.KindFromName(tn)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		// Optional (n) width spec, accepted and ignored.
		if p.acceptSymbol("(") {
			if p.cur().Kind != sqlscan.Number {
				return nil, p.errf("expected width")
			}
			p.advance()
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		ds.Columns = append(ds.Columns, types.Column{Name: col, Kind: kind})
		if p.acceptSymbol(")") {
			return ds, nil
		}
		if err := p.expectSymbol(","); err != nil {
			return nil, err
		}
	}
}

// --- mini-SQL ---

func (p *Parser) selectStmt() (Statement, error) {
	p.advance() // select
	st := &Select{}
	for {
		if p.acceptSymbol("*") {
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			e, err := p.Expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept("as") {
				if item.Alias, err = p.ident(); err != nil {
					return nil, err
				}
			}
			st.Items = append(st.Items, item)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expect("from"); err != nil {
		return nil, err
	}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if p.accept("where") {
		if st.Where, err = p.Expr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *Parser) insertStmt() (Statement, error) {
	p.advance() // insert
	if err := p.expect("into"); err != nil {
		return nil, err
	}
	st := &Insert{}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if p.acceptSymbol("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c)
			if p.acceptSymbol(")") {
				break
			}
			if err := p.expectSymbol(","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect("values"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		e, err := p.Expr()
		if err != nil {
			return nil, err
		}
		st.Values = append(st.Values, e)
		if p.acceptSymbol(")") {
			break
		}
		if err := p.expectSymbol(","); err != nil {
			return nil, err
		}
	}
	if len(st.Columns) > 0 && len(st.Columns) != len(st.Values) {
		return nil, fmt.Errorf("parse error: insert names %d columns but supplies %d values", len(st.Columns), len(st.Values))
	}
	return st, nil
}

func (p *Parser) updateStmt() (Statement, error) {
	p.advance() // update
	st := &Update{}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expect("set"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.Expr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Column: col, Value: val})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.accept("where") {
		if st.Where, err = p.Expr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *Parser) deleteStmt() (Statement, error) {
	p.advance() // delete
	if err := p.expect("from"); err != nil {
		return nil, err
	}
	st := &Delete{}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if p.accept("where") {
		if st.Where, err = p.Expr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// --- expressions (precedence climbing) ---

// Expr parses a full Boolean expression.
func (p *Parser) Expr() (expr.Node, error) { return p.orExpr() }

func (p *Parser) orExpr() (expr.Node, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("or") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = expr.Or(left, right)
	}
	return left, nil
}

func (p *Parser) andExpr() (expr.Node, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("and") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = expr.And(left, right)
	}
	return left, nil
}

func (p *Parser) notExpr() (expr.Node, error) {
	if p.accept("not") {
		child, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return expr.Not(child), nil
	}
	return p.comparison()
}

var cmpOps = map[string]expr.Op{
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt,
	"<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *Parser) comparison() (expr.Node, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == sqlscan.Symbol {
		if op, ok := cmpOps[p.cur().Text]; ok {
			p.advance()
			right, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return expr.Cmp(op, left, right), nil
		}
	}
	if p.accept("like") {
		right, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return expr.Cmp(expr.OpLike, left, right), nil
	}
	if p.accept("between") {
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("and"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return expr.And(
			expr.Cmp(expr.OpGe, left, lo),
			expr.Cmp(expr.OpLe, expr.Clone(left), hi)), nil
	}
	negate := false
	if p.cur().Is("not") && p.peek().Is("in") {
		p.advance()
		negate = true
	}
	if p.accept("in") {
		// x in (a, b, c) desugars to (x = a OR x = b OR x = c).
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var out expr.Node
		for {
			item, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			out = expr.Or(out, expr.Cmp(expr.OpEq, expr.Clone(left), item))
			if p.acceptSymbol(")") {
				break
			}
			if err := p.expectSymbol(","); err != nil {
				return nil, err
			}
		}
		if out == nil {
			return nil, p.errf("empty IN list")
		}
		if negate {
			return expr.Not(out), nil
		}
		return out, nil
	}
	if negate {
		return nil, p.errf("expected 'in' after 'not'")
	}
	return left, nil
}

func (p *Parser) addExpr() (expr.Node, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.Op
		switch {
		case p.acceptSymbol("+"):
			op = expr.OpAdd
		case p.acceptSymbol("-"):
			op = expr.OpSub
		default:
			return left, nil
		}
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) mulExpr() (expr.Node, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.Op
		switch {
		case p.acceptSymbol("*"):
			op = expr.OpMul
		case p.acceptSymbol("/"):
			op = expr.OpDiv
		default:
			return left, nil
		}
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) unary() (expr.Node, error) {
	if p.acceptSymbol("-") {
		child, err := p.unary()
		if err != nil {
			return nil, err
		}
		// Fold negation of literals immediately.
		if c, ok := child.(*expr.Const); ok {
			switch c.Val.Kind() {
			case types.KindInt:
				return expr.Int(-c.Val.Int()), nil
			case types.KindFloat:
				return expr.Float(-c.Val.Float()), nil
			}
		}
		return &expr.Unary{Op: expr.OpNeg, Child: child}, nil
	}
	if p.acceptSymbol("+") {
		return p.unary()
	}
	return p.primary()
}

func (p *Parser) primary() (expr.Node, error) {
	t := p.cur()
	switch t.Kind {
	case sqlscan.Number:
		p.advance()
		if t.IsFloat {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad float literal %q", t.Text)
			}
			return expr.Float(f), nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			// Overflowing integers degrade to float.
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errf("bad numeric literal %q", t.Text)
			}
			return expr.Float(f), nil
		}
		return expr.Int(i), nil
	case sqlscan.String:
		p.advance()
		return expr.Str(t.Text), nil
	case sqlscan.Param:
		// :NEW.var.col, :NEW.col, :OLD.var.col, :OLD.col
		p.advance()
		old := false
		switch strings.ToLower(t.Text) {
		case "new":
		case "old":
			old = true
		default:
			return nil, p.errf("unknown parameter :%s (want :NEW or :OLD)", t.Text)
		}
		if err := p.expectSymbol("."); err != nil {
			return nil, err
		}
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref := &expr.ColumnRef{Column: a, VarIdx: -1, ColIdx: -1, Old: old, Param: true}
		if p.acceptSymbol(".") {
			b, err := p.ident()
			if err != nil {
				return nil, err
			}
			ref.Var, ref.Column = a, b
		}
		return ref, nil
	case sqlscan.Ident:
		if t.Is("null") {
			p.advance()
			return expr.Lit(types.Null()), nil
		}
		p.advance()
		// Function call?
		if p.cur().IsSymbol("(") {
			p.advance()
			fc := &expr.FuncCall{Name: t.Text}
			if !p.acceptSymbol(")") {
				for {
					arg, err := p.Expr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, arg)
					if p.acceptSymbol(")") {
						break
					}
					if err := p.expectSymbol(","); err != nil {
						return nil, err
					}
				}
			}
			return fc, nil
		}
		// Qualified or bare column reference.
		ref := &expr.ColumnRef{Column: t.Text, VarIdx: -1, ColIdx: -1}
		if p.acceptSymbol(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ref.Var, ref.Column = t.Text, col
		}
		return ref, nil
	case sqlscan.Symbol:
		if t.Text == "(" {
			p.advance()
			inner, err := p.Expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, p.errf("expected expression")
}
