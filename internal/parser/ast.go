// Package parser parses the TriggerMan command language (§2): trigger
// DDL (create/drop trigger, trigger sets, define data source) and the
// mini-SQL dialect used in execSQL rule actions.
package parser

import (
	"strings"

	"triggerman/internal/expr"
	"triggerman/internal/types"
)

// Statement is any parsed command.
type Statement interface{ stmt() }

// EventOp is the update-event kind an event condition names. A missing
// on clause means "insert or update" implicitly (§5).
type EventOp uint8

const (
	// OpInsertOrUpdate is the implicit event when no on clause names the
	// tuple variable.
	OpInsertOrUpdate EventOp = iota
	// OpInsert fires on inserts.
	OpInsert
	// OpDelete fires on deletes.
	OpDelete
	// OpUpdate fires on updates (optionally of specific columns).
	OpUpdate
)

// String names the event op in command-language spelling.
func (o EventOp) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return "insert or update"
	}
}

// FromItem is one entry of a from clause: a data source usage with an
// optional tuple-variable alias ("salesperson s").
type FromItem struct {
	Source string
	Alias  string
}

// Var returns the tuple-variable name binding this item (alias if
// present, else the source name).
func (f FromItem) Var() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Source
}

// EventSpec is a parsed on clause. Exactly one tuple variable may carry
// an event condition (§4).
type EventSpec struct {
	Op EventOp
	// Target names the data source or tuple variable the event applies
	// to ("insert to house" → "house").
	Target string
	// Columns restricts update events to specific columns
	// ("update(emp.salary)" → ["salary"], with Target "emp").
	Columns []string
}

// Action is a rule action (the do clause).
type Action interface{ action() }

// ExecSQL runs a mini-SQL statement, with :NEW/:OLD references bound to
// the firing token at execution time (the paper's macro substitution).
type ExecSQL struct {
	// SQL is the raw statement text as written in the trigger.
	SQL string
	// Stmt is the pre-parsed statement; :NEW/:OLD column refs remain
	// unbound until fire time.
	Stmt Statement
}

func (*ExecSQL) action() {}

// RaiseEvent raises a named external event with computed arguments
// ("raise event NewHouseInIrisNeighborhood(h.hno, h.address)").
type RaiseEvent struct {
	Name string
	Args []expr.Node
}

func (*RaiseEvent) action() {}

// CreateTrigger is a parsed create trigger command.
type CreateTrigger struct {
	Name    string
	SetName string
	Flags   []string
	From    []FromItem
	On      *EventSpec
	When    expr.Node
	GroupBy []string
	Having  expr.Node
	Do      Action
	// Text is the original command text, stored in the trigger catalog.
	Text string
}

func (*CreateTrigger) stmt() {}

// VarIndex returns tuple-variable name → from-list position, lower-cased.
func (c *CreateTrigger) VarIndex() map[string]int {
	m := make(map[string]int, len(c.From))
	for i, f := range c.From {
		m[strings.ToLower(f.Var())] = i
	}
	return m
}

// DropTrigger drops a trigger by name.
type DropTrigger struct{ Name string }

func (*DropTrigger) stmt() {}

// CreateTriggerSet creates a named trigger set.
type CreateTriggerSet struct {
	Name     string
	Comments string
}

func (*CreateTriggerSet) stmt() {}

// DropTriggerSet drops a trigger set.
type DropTriggerSet struct{ Name string }

func (*DropTriggerSet) stmt() {}

// SetEnabled enables or disables a trigger or trigger set.
type SetEnabled struct {
	Name    string
	Set     bool // true when targeting a trigger set
	Enabled bool
}

func (*SetEnabled) stmt() {}

// DefineDataSource imports a data source with its schema
// ("define data source house(hno int, address varchar, ...)").
type DefineDataSource struct {
	Name    string
	Columns []types.Column
}

func (*DefineDataSource) stmt() {}

// --- mini-SQL statements (execSQL dialect) ---

// SelectItem is one projection of a select list.
type SelectItem struct {
	Expr  expr.Node
	Alias string
	// Star marks "select *".
	Star bool
}

// Select is a single-table select.
type Select struct {
	Items []SelectItem
	Table string
	Where expr.Node
}

func (*Select) stmt() {}

// Insert inserts one row of computed values.
type Insert struct {
	Table   string
	Columns []string // empty means positional
	Values  []expr.Node
}

func (*Insert) stmt() {}

// SetClause is one assignment of an update statement.
type SetClause struct {
	Column string
	Value  expr.Node
}

// Update updates rows matching Where.
type Update struct {
	Table string
	Sets  []SetClause
	Where expr.Node
}

func (*Update) stmt() {}

// Delete deletes rows matching Where.
type Delete struct {
	Table string
	Where expr.Node
}

func (*Delete) stmt() {}
