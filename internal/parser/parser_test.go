package parser

import (
	"math/rand"
	"strings"
	"testing"

	"triggerman/internal/expr"
	"triggerman/internal/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return st
}

func TestParseUpdateFredTrigger(t *testing.T) {
	// The paper's §2 example verbatim (modulo nested-quote escaping).
	src := `create trigger updateFred
	  from emp
	  on update(emp.salary)
	  when emp.name = 'Bob'
	  do execSQL 'update emp set salary=:NEW.emp.salary where emp.name=''Fred'''`
	ct := mustParse(t, src).(*CreateTrigger)
	if ct.Name != "updateFred" {
		t.Errorf("name = %q", ct.Name)
	}
	if len(ct.From) != 1 || ct.From[0].Source != "emp" || ct.From[0].Var() != "emp" {
		t.Errorf("from = %+v", ct.From)
	}
	if ct.On == nil || ct.On.Op != OpUpdate || ct.On.Target != "emp" ||
		len(ct.On.Columns) != 1 || ct.On.Columns[0] != "salary" {
		t.Errorf("on = %+v", ct.On)
	}
	if ct.When == nil || ct.When.String() != "emp.name = 'Bob'" {
		t.Errorf("when = %v", ct.When)
	}
	act, ok := ct.Do.(*ExecSQL)
	if !ok {
		t.Fatalf("action = %T", ct.Do)
	}
	up, ok := act.Stmt.(*Update)
	if !ok {
		t.Fatalf("inner stmt = %T", act.Stmt)
	}
	if up.Table != "emp" || len(up.Sets) != 1 || up.Sets[0].Column != "salary" {
		t.Errorf("update = %+v", up)
	}
	ref, ok := up.Sets[0].Value.(*expr.ColumnRef)
	if !ok || ref.Var != "emp" || ref.Column != "salary" || ref.Old {
		t.Errorf(":NEW ref = %+v", up.Sets[0].Value)
	}
	if up.Where == nil {
		t.Error("where missing")
	}
	if ct.Text == "" {
		t.Error("original text not captured")
	}
}

func TestParseIrisHouseAlert(t *testing.T) {
	// The paper's §2 multi-table example verbatim.
	src := `create trigger IrisHouseAlert
	  on insert to house
	  from salesperson s, house h, represents r
	  when s.name = 'Iris' and s.spno=r.spno and r.nno=h.nno
	  do raise event NewHouseInIrisNeighborhood(h.hno, h.address)`
	ct := mustParse(t, src).(*CreateTrigger)
	if len(ct.From) != 3 {
		t.Fatalf("from = %+v", ct.From)
	}
	if ct.From[0].Var() != "s" || ct.From[1].Var() != "h" || ct.From[2].Var() != "r" {
		t.Errorf("aliases: %+v", ct.From)
	}
	if ct.On.Op != OpInsert || ct.On.Target != "house" {
		t.Errorf("on = %+v", ct.On)
	}
	re, ok := ct.Do.(*RaiseEvent)
	if !ok || re.Name != "NewHouseInIrisNeighborhood" || len(re.Args) != 2 {
		t.Fatalf("action = %+v", ct.Do)
	}
	vi := ct.VarIndex()
	if vi["s"] != 0 || vi["h"] != 1 || vi["r"] != 2 {
		t.Errorf("VarIndex = %v", vi)
	}
}

func TestParseTriggerInSetWithFlags(t *testing.T) {
	src := `create trigger t1 in nightly noopt deferred
	  from emp when emp.salary > 100 do raise event Big(emp.salary)`
	ct := mustParse(t, src).(*CreateTrigger)
	if ct.SetName != "nightly" {
		t.Errorf("set = %q", ct.SetName)
	}
	if len(ct.Flags) != 2 || ct.Flags[0] != "noopt" || ct.Flags[1] != "deferred" {
		t.Errorf("flags = %v", ct.Flags)
	}
	if ct.On != nil {
		t.Errorf("no event expected, got %+v", ct.On)
	}
}

func TestParseGroupByHaving(t *testing.T) {
	src := `create trigger agg from sales
	  group by region
	  having count(region) > 10
	  do raise event HotRegion()`
	ct := mustParse(t, src).(*CreateTrigger)
	if len(ct.GroupBy) != 1 || ct.GroupBy[0] != "region" {
		t.Errorf("group by = %v", ct.GroupBy)
	}
	if ct.Having == nil {
		t.Error("having missing")
	}
	re := ct.Do.(*RaiseEvent)
	if len(re.Args) != 0 {
		t.Errorf("args = %v", re.Args)
	}
}

func TestParseEventForms(t *testing.T) {
	for _, c := range []struct {
		src    string
		op     EventOp
		target string
	}{
		{"on insert to house", OpInsert, "house"},
		{"on delete from emp", OpDelete, "emp"},
		{"on update of emp", OpUpdate, "emp"},
		{"on update(emp.salary, emp.dept)", OpUpdate, "emp"},
	} {
		src := "create trigger x from emp " + c.src + " do raise event E()"
		ct := mustParse(t, src).(*CreateTrigger)
		if ct.On.Op != c.op || !strings.EqualFold(ct.On.Target, c.target) {
			t.Errorf("%q -> %+v", c.src, ct.On)
		}
	}
	// conflicting update targets
	if _, err := Parse("create trigger x from a, b on update(a.x, b.y) do raise event E()"); err == nil {
		t.Error("two-target update event should fail")
	}
}

func TestParseEventOpString(t *testing.T) {
	if OpInsert.String() != "insert" || OpInsertOrUpdate.String() != "insert or update" {
		t.Error("EventOp strings")
	}
}

func TestParseDefineDataSource(t *testing.T) {
	src := `define data source house(hno int, address varchar(80), price float, nno int, spno int)`
	ds := mustParse(t, src).(*DefineDataSource)
	if ds.Name != "house" || len(ds.Columns) != 5 {
		t.Fatalf("ds = %+v", ds)
	}
	if ds.Columns[1].Kind != types.KindVarchar || ds.Columns[2].Kind != types.KindFloat {
		t.Errorf("column kinds: %+v", ds.Columns)
	}
	if _, err := Parse("define data source x(a blob)"); err == nil {
		t.Error("unknown type should fail")
	}
}

func TestParseDDLMisc(t *testing.T) {
	if st := mustParse(t, "drop trigger t1").(*DropTrigger); st.Name != "t1" {
		t.Errorf("drop = %+v", st)
	}
	if st := mustParse(t, "create trigger set s1 'batch rules'").(*CreateTriggerSet); st.Name != "s1" || st.Comments != "batch rules" {
		t.Errorf("create set = %+v", st)
	}
	if st := mustParse(t, "drop trigger set s1").(*DropTriggerSet); st.Name != "s1" {
		t.Errorf("drop set = %+v", st)
	}
	if st := mustParse(t, "disable trigger t2").(*SetEnabled); st.Enabled || st.Set || st.Name != "t2" {
		t.Errorf("disable = %+v", st)
	}
	if st := mustParse(t, "enable trigger set s2").(*SetEnabled); !st.Enabled || !st.Set {
		t.Errorf("enable set = %+v", st)
	}
}

func TestParseMiniSQL(t *testing.T) {
	sel := mustParse(t, "select name, salary * 2 as dbl from emp where salary > 10").(*Select)
	if sel.Table != "emp" || len(sel.Items) != 2 || sel.Items[1].Alias != "dbl" {
		t.Errorf("select = %+v", sel)
	}
	star := mustParse(t, "select * from emp").(*Select)
	if !star.Items[0].Star {
		t.Error("star item")
	}
	ins := mustParse(t, "insert into emp(name, salary) values ('Bob', 100)").(*Insert)
	if ins.Table != "emp" || len(ins.Columns) != 2 || len(ins.Values) != 2 {
		t.Errorf("insert = %+v", ins)
	}
	insPos := mustParse(t, "insert into emp values ('Bob', 100, 'eng')").(*Insert)
	if len(insPos.Columns) != 0 || len(insPos.Values) != 3 {
		t.Errorf("positional insert = %+v", insPos)
	}
	if _, err := Parse("insert into emp(a, b) values (1)"); err == nil {
		t.Error("column/value arity mismatch should fail")
	}
	up := mustParse(t, "update emp set salary = salary + 1, dept = 'x' where name = 'Bob'").(*Update)
	if len(up.Sets) != 2 || up.Where == nil {
		t.Errorf("update = %+v", up)
	}
	del := mustParse(t, "delete from emp where salary < 0").(*Delete)
	if del.Table != "emp" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
	delAll := mustParse(t, "delete from emp").(*Delete)
	if delAll.Where != nil {
		t.Error("bare delete should have nil where")
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"a.x > 5 and b.y < 3 or c.z = 1", "a.x > 5 AND b.y < 3 OR c.z = 1"},
		{"not a.x = 1", "NOT (a.x = 1)"},
		{"-5", "-5"},
		{"-x", "-(x)"},
		{"x between 1 and 10", "x >= 1 AND x <= 10"},
		{"name like 'a%'", "name LIKE 'a%'"},
		{"upper(name) = 'BOB'", "upper(name) = 'BOB'"},
		{"null", "NULL"},
		{"1.5e2", "150"},
		{"x <> 3", "x <> 3"},
	}
	for _, c := range cases {
		n, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if n.String() != c.want {
			t.Errorf("%q -> %q, want %q", c.src, n.String(), c.want)
		}
	}
}

func TestParseExprPrecedenceEval(t *testing.T) {
	n, err := ParseExpr("2 + 3 * 4 - 6 / 2")
	if err != nil {
		t.Fatal(err)
	}
	v, err := expr.EvalScalar(n, expr.SingleEnv{})
	if err != nil || v.Int() != 11 {
		t.Errorf("eval = %v, %v", v, err)
	}
}

func TestParseParamRefs(t *testing.T) {
	n, err := ParseExpr(":OLD.emp.salary < :NEW.emp.salary")
	if err != nil {
		t.Fatal(err)
	}
	b := n.(*expr.Binary)
	l := b.Left.(*expr.ColumnRef)
	r := b.Right.(*expr.ColumnRef)
	if !l.Old || l.Var != "emp" || l.Column != "salary" {
		t.Errorf("old ref = %+v", l)
	}
	if r.Old || r.Var != "emp" {
		t.Errorf("new ref = %+v", r)
	}
	// short form :NEW.salary
	n2, err := ParseExpr(":NEW.salary > 5")
	if err != nil {
		t.Fatal(err)
	}
	ref := n2.(*expr.Binary).Left.(*expr.ColumnRef)
	if ref.Var != "" || ref.Column != "salary" {
		t.Errorf("short ref = %+v", ref)
	}
	if _, err := ParseExpr(":BAD.x"); err == nil {
		t.Error(":BAD should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"create table x",
		"create trigger",
		"create trigger t do raise event E()", // no from
		"create trigger t from emp",           // no do
		"create trigger t from emp do flySouth",
		"create trigger t from emp do execSQL 'drop trigger x'", // non-DML in execSQL
		"create trigger t from emp do execSQL 'select * from'",
		"select from emp",
		"select * emp",
		"insert emp values (1)",
		"update emp salary = 1",
		"delete emp",
		"define data source x",
		"drop trigger",
		"1 +",
		"(1",
		"x >",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q should fail to parse", src)
		}
	}
	if _, err := ParseExpr("1 2"); err == nil {
		t.Error("trailing input should fail")
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("drop trigger t1;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
}

func TestParseOnBeforeFrom(t *testing.T) {
	// on clause may precede from, as in the IrisHouseAlert example.
	src := "create trigger x on insert to h from h do raise event E()"
	ct := mustParse(t, src).(*CreateTrigger)
	if ct.On == nil || ct.On.Target != "h" || len(ct.From) != 1 {
		t.Errorf("on-first: %+v", ct)
	}
}

func TestParseNumericOverflowToFloat(t *testing.T) {
	n, err := ParseExpr("99999999999999999999999999")
	if err != nil {
		t.Fatal(err)
	}
	c := n.(*expr.Const)
	if c.Val.Kind() != types.KindFloat {
		t.Errorf("overflowing int should become float, got %s", c.Val.Kind())
	}
}

func TestParseUnaryPlusAndNegFloat(t *testing.T) {
	n, _ := ParseExpr("+5")
	if n.(*expr.Const).Val.Int() != 5 {
		t.Error("+5")
	}
	n, _ = ParseExpr("-2.5")
	if n.(*expr.Const).Val.Float() != -2.5 {
		t.Error("-2.5")
	}
}

func TestParseInList(t *testing.T) {
	n, err := ParseExpr("dept in ('eng', 'ops', 'qa')")
	if err != nil {
		t.Fatal(err)
	}
	want := "dept = 'eng' OR dept = 'ops' OR dept = 'qa'"
	if n.String() != want {
		t.Errorf("IN desugar = %q, want %q", n.String(), want)
	}
	n, err = ParseExpr("x not in (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "NOT (x = 1 OR x = 2)" {
		t.Errorf("NOT IN = %q", n.String())
	}
	if _, err := ParseExpr("x in ()"); err == nil {
		t.Error("empty IN list should fail")
	}
	if _, err := ParseExpr("x in (1,"); err == nil {
		t.Error("unterminated IN list should fail")
	}
}

func TestParserNeverPanics(t *testing.T) {
	// Robustness: arbitrary garbage must produce errors, not panics.
	rng := rand.New(rand.NewSource(31))
	alphabet := []byte("abcdef0123 ()'=<>,.:;*/+-_%\n\t\"\\xyzDOSELECTcreatetriggerfromwhen")
	for i := 0; i < 20000; i++ {
		n := rng.Intn(60)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", buf, r)
				}
			}()
			Parse(string(buf))
			ParseExpr(string(buf))
		}()
	}
	// Mutations of valid statements.
	valid := []string{
		"create trigger t from emp on update(emp.salary) when emp.name = 'Bob' do raise event E(emp.x)",
		"select a, b from t where x in (1,2,3) and y between 2 and 9",
		"insert into t(a) values (upper('x'))",
	}
	for i := 0; i < 20000; i++ {
		s := []byte(valid[rng.Intn(len(valid))])
		for k := 0; k < 1+rng.Intn(4); k++ {
			s[rng.Intn(len(s))] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated %q: %v", s, r)
				}
			}()
			Parse(string(s))
		}()
	}
}
