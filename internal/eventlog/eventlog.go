// Package eventlog is the system's structured event log: a log/slog
// pipeline that records discrete decisions — predicate-index
// constant-set organization transitions, trigger-cache evictions,
// dead-letter quarantines, ops listener lifecycle — as JSON lines on an
// optional writer, while mirroring the most recent records into a
// bounded in-memory ring for introspection (/eventz and tests read the
// ring without any I/O configured).
//
// Metrics answer "how much"; the event log answers "what did the
// system decide, and why" ("Optimal On The Fly Index Selection":
// adaptive choices are only trustworthy when the decisions themselves
// are observable).
package eventlog

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"time"
)

// Record is one mirrored event.
type Record struct {
	Time  time.Time      `json:"time"`
	Level string         `json:"level"`
	Event string         `json:"event"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Config configures a Log.
type Config struct {
	// Out, when non-nil, receives every event as a JSON line (slog's
	// JSONHandler). Nil keeps events in the ring only.
	Out io.Writer
	// Ring bounds the in-memory mirror; 0 takes DefaultRing.
	Ring int
	// Level drops events below it; nil admits Info and above.
	Level slog.Leveler
}

// DefaultRing is the default mirror capacity.
const DefaultRing = 256

// Log is a bounded, optionally-persisted structured event log. All
// methods are safe for concurrent use and safe on a nil receiver (a
// nil *Log records nothing), so wiring stays branch-free.
type Log struct {
	logger *slog.Logger

	mu    sync.Mutex
	ring  []Record
	next  int
	full  bool
	total int64
}

// New builds a Log.
func New(cfg Config) *Log {
	if cfg.Ring <= 0 {
		cfg.Ring = DefaultRing
	}
	level := cfg.Level
	if level == nil {
		level = slog.LevelInfo
	}
	l := &Log{ring: make([]Record, cfg.Ring)}
	var inner slog.Handler
	if cfg.Out != nil {
		inner = slog.NewJSONHandler(cfg.Out, &slog.HandlerOptions{Level: level})
	}
	l.logger = slog.New(&mirrorHandler{log: l, inner: inner, level: level})
	return l
}

// Logger exposes the slog.Logger (embedders may attach their own
// attrs or groups; records still land in the ring).
func (l *Log) Logger() *slog.Logger {
	if l == nil {
		return slog.New(discardHandler{})
	}
	return l.logger
}

// Emit records one event at Info level.
func (l *Log) Emit(event string, args ...any) {
	if l == nil {
		return
	}
	l.logger.Info(event, args...)
}

// Warn records one event at Warn level.
func (l *Log) Warn(event string, args ...any) {
	if l == nil {
		return
	}
	l.logger.Warn(event, args...)
}

// Recent returns the mirrored records, oldest first.
func (l *Log) Recent() []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		out := make([]Record, l.next)
		copy(out, l.ring[:l.next])
		return out
	}
	out := make([]Record, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Total reports how many events have ever been recorded.
func (l *Log) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

func (l *Log) append(rec Record) {
	l.mu.Lock()
	l.ring[l.next] = rec
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.total++
	l.mu.Unlock()
}

// mirrorHandler copies every record into the ring and forwards to the
// JSON handler when one is configured.
type mirrorHandler struct {
	log   *Log
	inner slog.Handler
	level slog.Leveler
	attrs []slog.Attr // accumulated WithAttrs, already group-prefixed
	group string      // dotted WithGroup prefix
}

func (h *mirrorHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

func (h *mirrorHandler) Handle(ctx context.Context, r slog.Record) error {
	rec := Record{Time: r.Time, Level: r.Level.String(), Event: r.Message}
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	n := len(h.attrs) + r.NumAttrs()
	if n > 0 {
		rec.Attrs = make(map[string]any, n)
		for _, a := range h.attrs {
			flattenAttr(rec.Attrs, "", a)
		}
		r.Attrs(func(a slog.Attr) bool {
			flattenAttr(rec.Attrs, h.group, a)
			return true
		})
	}
	h.log.append(rec)
	if h.inner != nil {
		return h.inner.Handle(ctx, r)
	}
	return nil
}

func (h *mirrorHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	nh.attrs = append(nh.attrs, h.attrs...)
	for _, a := range attrs {
		if h.group != "" {
			a.Key = h.group + "." + a.Key
		}
		nh.attrs = append(nh.attrs, a)
	}
	if h.inner != nil {
		nh.inner = h.inner.WithAttrs(attrs)
	}
	return &nh
}

func (h *mirrorHandler) WithGroup(name string) slog.Handler {
	nh := *h
	if name != "" {
		if nh.group != "" {
			nh.group += "." + name
		} else {
			nh.group = name
		}
	}
	if h.inner != nil {
		nh.inner = h.inner.WithGroup(name)
	}
	return &nh
}

// flattenAttr renders one attr into the record map, dotting group
// prefixes (the ring mirror favors flat, greppable keys over nesting).
func flattenAttr(dst map[string]any, prefix string, a slog.Attr) {
	a.Value = a.Value.Resolve()
	key := a.Key
	if prefix != "" {
		key = prefix + "." + key
	}
	if a.Value.Kind() == slog.KindGroup {
		for _, ga := range a.Value.Group() {
			flattenAttr(dst, key, ga)
		}
		return
	}
	dst[key] = a.Value.Any()
}

// discardHandler backs the nil-receiver Logger().
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
