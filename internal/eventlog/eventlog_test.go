package eventlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"testing"
)

func TestEmitAndRecent(t *testing.T) {
	l := New(Config{Ring: 8})
	l.Emit("predindex.reorganize",
		"sig_id", 3, "from", "mm-list", "to", "mm-index", "size", 17)
	l.Warn("deadletter.quarantine", "trigger_id", 9)

	recs := l.Recent()
	if len(recs) != 2 {
		t.Fatalf("Recent returned %d records, want 2", len(recs))
	}
	if recs[0].Event != "predindex.reorganize" || recs[0].Level != "INFO" {
		t.Fatalf("bad first record: %+v", recs[0])
	}
	if recs[0].Attrs["to"] != "mm-index" {
		t.Fatalf("attr to = %v", recs[0].Attrs["to"])
	}
	if got := recs[0].Attrs["size"]; got != int64(17) {
		t.Fatalf("attr size = %v (%T)", got, got)
	}
	if recs[1].Event != "deadletter.quarantine" || recs[1].Level != "WARN" {
		t.Fatalf("bad second record: %+v", recs[1])
	}
	if l.Total() != 2 {
		t.Fatalf("Total = %d", l.Total())
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	l := New(Config{Ring: 4})
	for i := 0; i < 10; i++ {
		l.Emit("e", "i", i)
	}
	recs := l.Recent()
	if len(recs) != 4 {
		t.Fatalf("Recent returned %d records, want 4", len(recs))
	}
	for j, rec := range recs {
		if want := int64(6 + j); rec.Attrs["i"] != want {
			t.Fatalf("record %d has i=%v, want %d", j, rec.Attrs["i"], want)
		}
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d", l.Total())
	}
}

func TestJSONWriterMirror(t *testing.T) {
	var buf bytes.Buffer
	l := New(Config{Out: &buf, Ring: 8})
	l.Emit("cache.evict", "trigger_id", 42)
	var line struct {
		Msg       string `json:"msg"`
		TriggerID int64  `json:"trigger_id"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("output is not one JSON line: %v (%q)", err, buf.String())
	}
	if line.Msg != "cache.evict" || line.TriggerID != 42 {
		t.Fatalf("bad JSON line: %+v", line)
	}
	if len(l.Recent()) != 1 {
		t.Fatal("ring mirror missing the record")
	}
}

func TestLevelFiltering(t *testing.T) {
	l := New(Config{Ring: 8, Level: slog.LevelWarn})
	l.Emit("dropped.info")
	l.Warn("kept.warn")
	recs := l.Recent()
	if len(recs) != 1 || recs[0].Event != "kept.warn" {
		t.Fatalf("level filter failed: %+v", recs)
	}
}

func TestGroupsAndWithAttrsFlatten(t *testing.T) {
	l := New(Config{Ring: 8})
	l.Logger().With("component", "predindex").WithGroup("cost").Info("reorganize",
		"old_ns", 510.0, slog.Group("new", "ns", 600.0))
	recs := l.Recent()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	a := recs[0].Attrs
	if a["component"] != "predindex" {
		t.Fatalf("component attr = %v", a["component"])
	}
	if a["cost.old_ns"] != 510.0 {
		t.Fatalf("cost.old_ns = %v", a["cost.old_ns"])
	}
	if a["cost.new.ns"] != 600.0 {
		t.Fatalf("cost.new.ns = %v", a["cost.new.ns"])
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Emit("ignored")
	l.Warn("ignored")
	l.Logger().Info("ignored")
	if l.Recent() != nil || l.Total() != 0 {
		t.Fatal("nil log must be inert")
	}
}

func TestConcurrentEmit(t *testing.T) {
	l := New(Config{Ring: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Emit(fmt.Sprintf("g%d", g), "i", i)
			}
		}(g)
	}
	wg.Wait()
	if l.Total() != 800 {
		t.Fatalf("Total = %d, want 800", l.Total())
	}
	if len(l.Recent()) != 64 {
		t.Fatalf("ring holds %d, want 64", len(l.Recent()))
	}
}
