// Package event implements the raise-event side of TriggerMan (§2,
// [Hans98]): rule actions raise named events with computed arguments;
// client applications register for events and receive notifications.
// Delivery is asynchronous with bounded per-subscriber buffers so one
// slow client cannot stall trigger processing.
package event

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"triggerman/internal/types"
)

// Notification is one delivered event occurrence.
type Notification struct {
	// Name is the event name from the raise event action.
	Name string
	// Args are the evaluated action arguments.
	Args types.Tuple
	// TriggerID identifies the trigger whose action raised the event.
	TriggerID uint64
	// Seq is a per-bus monotone delivery sequence.
	Seq uint64
}

// String renders the notification.
func (n Notification) String() string {
	return fmt.Sprintf("%s%s [trigger %d]", n.Name, n.Args, n.TriggerID)
}

// Subscription receives notifications for one registration.
type Subscription struct {
	bus  *Bus
	id   int64
	name string
	ch   chan Notification

	dropped int64
}

// C returns the notification channel. It is closed by Cancel and by
// Bus.Close.
func (s *Subscription) C() <-chan Notification { return s.ch }

// Dropped reports notifications discarded because the subscriber's
// buffer was full.
func (s *Subscription) Dropped() int64 { return atomic.LoadInt64(&s.dropped) }

// Cancel deregisters the subscription and closes its channel.
func (s *Subscription) Cancel() { s.bus.cancel(s) }

// Bus routes raised events to registered subscribers.
type Bus struct {
	mu     sync.Mutex
	subs   map[string]map[int64]*Subscription // event name -> subs
	all    map[int64]*Subscription            // wildcard subscribers
	nextID int64
	seq    uint64
	closed bool

	raised    int64
	delivered int64
}

// NewBus returns an empty event bus.
func NewBus() *Bus {
	return &Bus{
		subs: make(map[string]map[int64]*Subscription),
		all:  make(map[int64]*Subscription),
	}
}

// Subscribe registers for an event by name; the empty name (or "*")
// subscribes to every event. buffer bounds the per-subscriber queue
// (minimum 1).
func (b *Bus) Subscribe(name string, buffer int) (*Subscription, error) {
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("event: bus is closed")
	}
	b.nextID++
	s := &Subscription{bus: b, id: b.nextID, name: normalize(name), ch: make(chan Notification, buffer)}
	if s.name == "" {
		b.all[s.id] = s
	} else {
		m := b.subs[s.name]
		if m == nil {
			m = make(map[int64]*Subscription)
			b.subs[s.name] = m
		}
		m[s.id] = s
	}
	return s, nil
}

func normalize(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "*" {
		return ""
	}
	return name
}

func (b *Bus) cancel(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.name == "" {
		if _, ok := b.all[s.id]; !ok {
			return
		}
		delete(b.all, s.id)
	} else {
		m := b.subs[s.name]
		if _, ok := m[s.id]; !ok {
			return
		}
		delete(m, s.id)
		if len(m) == 0 {
			delete(b.subs, s.name)
		}
	}
	close(s.ch)
}

// Raise publishes an event occurrence to all matching subscribers.
// Delivery never blocks: a subscriber whose buffer is full has the
// notification dropped and counted against it.
func (b *Bus) Raise(name string, args types.Tuple, triggerID uint64) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	n := Notification{Name: name, Args: args.Clone(), TriggerID: triggerID, Seq: b.seq}
	b.raised++
	targets := make([]*Subscription, 0, 4)
	for _, s := range b.subs[normalize(name)] {
		targets = append(targets, s)
	}
	for _, s := range b.all {
		targets = append(targets, s)
	}
	b.mu.Unlock()

	for _, s := range targets {
		select {
		case s.ch <- n:
			atomic.AddInt64(&b.delivered, 1)
		default:
			atomic.AddInt64(&s.dropped, 1)
		}
	}
}

// Stats reports (raised, delivered) totals.
func (b *Bus) Stats() (raised, delivered int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.raised, atomic.LoadInt64(&b.delivered)
}

// Close shuts the bus, closing every subscription channel.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, s := range b.all {
		close(s.ch)
	}
	for _, m := range b.subs {
		for _, s := range m {
			close(s.ch)
		}
	}
	b.all = map[int64]*Subscription{}
	b.subs = map[string]map[int64]*Subscription{}
}
