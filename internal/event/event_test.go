package event

import (
	"sync"
	"testing"

	"triggerman/internal/types"
)

func args(vals ...int64) types.Tuple {
	out := make(types.Tuple, len(vals))
	for i, v := range vals {
		out[i] = types.NewInt(v)
	}
	return out
}

func TestSubscribeAndRaise(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, err := b.Subscribe("Alert", 4)
	if err != nil {
		t.Fatal(err)
	}
	b.Raise("Alert", args(1, 2), 42)
	n := <-sub.C()
	if n.Name != "Alert" || n.TriggerID != 42 || len(n.Args) != 2 || n.Seq != 1 {
		t.Errorf("notification = %+v", n)
	}
	if n.String() == "" {
		t.Error("String")
	}
}

func TestNameMatchingCaseInsensitive(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, _ := b.Subscribe("alert", 4)
	b.Raise("ALERT", nil, 1)
	select {
	case <-sub.C():
	default:
		t.Fatal("case-insensitive match failed")
	}
	b.Raise("other", nil, 1)
	select {
	case n := <-sub.C():
		t.Fatalf("wrong event delivered: %v", n)
	default:
	}
}

func TestWildcardSubscription(t *testing.T) {
	b := NewBus()
	defer b.Close()
	all, _ := b.Subscribe("*", 8)
	b.Raise("A", nil, 1)
	b.Raise("B", nil, 2)
	if (<-all.C()).Name != "A" || (<-all.C()).Name != "B" {
		t.Error("wildcard delivery")
	}
	empty, _ := b.Subscribe("", 8)
	b.Raise("C", nil, 3)
	if (<-empty.C()).Name != "C" {
		t.Error("empty-name wildcard")
	}
}

func TestDroppedOnFullBuffer(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, _ := b.Subscribe("X", 2)
	for i := 0; i < 5; i++ {
		b.Raise("X", nil, 1)
	}
	if sub.Dropped() != 3 {
		t.Errorf("dropped = %d", sub.Dropped())
	}
	raised, delivered := b.Stats()
	if raised != 5 || delivered != 2 {
		t.Errorf("stats = %d raised, %d delivered", raised, delivered)
	}
}

func TestCancel(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, _ := b.Subscribe("X", 2)
	sub.Cancel()
	if _, open := <-sub.C(); open {
		t.Error("channel should be closed after cancel")
	}
	// Raising after cancel panics if the sub was not removed.
	b.Raise("X", nil, 1)
	// Double cancel is safe.
	sub.Cancel()
	// Wildcard cancel path.
	all, _ := b.Subscribe("*", 2)
	all.Cancel()
	b.Raise("Y", nil, 1)
}

func TestCloseClosesAll(t *testing.T) {
	b := NewBus()
	s1, _ := b.Subscribe("A", 1)
	s2, _ := b.Subscribe("*", 1)
	b.Close()
	if _, open := <-s1.C(); open {
		t.Error("s1 open after close")
	}
	if _, open := <-s2.C(); open {
		t.Error("s2 open after close")
	}
	if _, err := b.Subscribe("B", 1); err == nil {
		t.Error("subscribe after close should fail")
	}
	b.Raise("A", nil, 1) // no panic
	b.Close()            // idempotent
}

func TestConcurrentRaise(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, _ := b.Subscribe("X", 10000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Raise("X", args(int64(i)), 1)
			}
		}()
	}
	wg.Wait()
	raised, delivered := b.Stats()
	if raised != 4000 || delivered != 4000 {
		t.Errorf("raised %d delivered %d", raised, delivered)
	}
	// Sequence numbers are unique.
	seen := map[uint64]bool{}
	for i := 0; i < 4000; i++ {
		n := <-sub.C()
		if seen[n.Seq] {
			t.Fatalf("duplicate seq %d", n.Seq)
		}
		seen[n.Seq] = true
	}
}

func TestArgsCloned(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, _ := b.Subscribe("X", 1)
	a := args(1)
	b.Raise("X", a, 1)
	a[0] = types.NewInt(99) // mutate after raise
	n := <-sub.C()
	if n.Args[0].Int() != 1 {
		t.Error("args aliased caller's slice")
	}
}
