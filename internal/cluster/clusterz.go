package cluster

import (
	"encoding/json"
	"net/http"
	"time"
)

// clusterzPayload is the /clusterz JSON shape: this node's identity,
// the membership with per-peer health, per-source ownership, and the
// forwarding/replication counters.
type clusterzPayload struct {
	Node    string       `json:"node"`
	Addr    string       `json:"addr"`
	Members []string     `json:"members"`
	Peers   []peerView   `json:"peers"`
	Sources []sourceView `json:"sources"`
	// Forwarded/ForwardDeadLettered/Received mirror
	// tman_cluster_forward_total: sent to an owner, quarantined because
	// the owner was unreachable, and accepted from a peer.
	Forwarded           int64 `json:"forwarded"`
	ForwardDeadLettered int64 `json:"forward_dead_lettered"`
	Received            int64 `json:"received"`
	// Forward-hop wire latency from tman_cluster_forward_seconds
	// (successful ships only; quantiles 0 until the first forward).
	ForwardCount int64 `json:"forward_count"`
	ForwardP50Ns int64 `json:"forward_p50_ns"`
	ForwardP99Ns int64 `json:"forward_p99_ns"`
}

// peerView is one peer's health row.
type peerView struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	Up   bool   `json:"up"`
	// LastSeenAgoNs is the time since the last successful round-trip
	// (-1 when the peer has never answered).
	LastSeenAgoNs int64 `json:"last_seen_ago_ns"`
}

// sourceView maps one data source to its owner.
type sourceView struct {
	Name  string `json:"name"`
	Owner string `json:"owner"`
	Local bool   `json:"local"`
}

// handleClusterz serves the cluster diagnosis endpoint.
func (n *Node) handleClusterz(w http.ResponseWriter, r *http.Request) {
	p := clusterzPayload{
		Node:                n.cfg.Self.ID,
		Addr:                n.cfg.Self.Addr,
		Members:             n.ring.Members(),
		Peers:               []peerView{},
		Sources:             []sourceView{},
		Forwarded:           n.cForwarded.Value(),
		ForwardDeadLettered: n.cForwardDead.Value(),
		Received:            n.cReceived.Value(),
		ForwardCount:        n.hForward.Count(),
	}
	if d, ok := n.hForward.Quantile(0.5); ok {
		p.ForwardP50Ns = int64(d)
	}
	if d, ok := n.hForward.Quantile(0.99); ok {
		p.ForwardP99Ns = int64(d)
	}
	now := time.Now().UnixNano()
	for _, id := range n.order {
		ps := n.peers[id]
		v := peerView{ID: id, Addr: ps.member.Addr, Up: ps.up.Load(), LastSeenAgoNs: -1}
		if seen := ps.lastSeen.Load(); seen > 0 {
			v.LastSeenAgoNs = now - seen
		}
		p.Peers = append(p.Peers, v)
	}
	for _, name := range n.sys.DataSources() {
		owner := n.ring.Owner(name)
		p.Sources = append(p.Sources, sourceView{
			Name: name, Owner: owner, Local: owner == n.cfg.Self.ID,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p)
}
