package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("source_%d", i)
	}
	return out
}

// TestRingDeterministicOrdering: rings built from any permutation of
// the same member set place every key identically — placement is a
// pure function of the membership, so all nodes agree.
func TestRingDeterministicOrdering(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4", "n5"}
	base := NewRing(members, 0)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := NewRing(shuffled, 0)
		for _, k := range keys(500) {
			if got, want := r.Owner(k), base.Owner(k); got != want {
				t.Fatalf("permutation %v: Owner(%q) = %q, want %q", shuffled, k, got, want)
			}
		}
	}
	// Duplicates and empties collapse.
	r := NewRing([]string{"n1", "", "n2", "n1", "n3", "n4", "n5", "n2"}, 0)
	if r.Size() != 5 {
		t.Fatalf("Size = %d after dedup, want 5", r.Size())
	}
	for _, k := range keys(100) {
		if r.Owner(k) != base.Owner(k) {
			t.Fatal("dedup changed placement")
		}
	}
}

// TestRingStabilityUnderMembershipChange: adding a member moves keys
// only TO the new member, removing one moves only ITS keys, and the
// moved fraction is bounded near 1/n (consistent hashing's point).
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	ks := keys(2000)
	r3 := NewRing([]string{"n1", "n2", "n3"}, 0)
	r4 := r3.Add("n4")

	moved := 0
	for _, k := range ks {
		before, after := r3.Owner(k), r4.Owner(k)
		if before != after {
			moved++
			if after != "n4" {
				t.Fatalf("key %q moved %q -> %q, but only the new member may gain keys", k, before, after)
			}
		}
	}
	// Expect ~1/4 of keys to move; allow a generous band around it.
	if moved == 0 || moved > len(ks)/2 {
		t.Fatalf("add moved %d/%d keys, want ~%d", moved, len(ks), len(ks)/4)
	}

	back := r4.Remove("n4")
	for _, k := range ks {
		if back.Owner(k) != r3.Owner(k) {
			t.Fatalf("remove(add(x)) changed placement of %q", k)
		}
	}
	// Removing an original member strands only its keys.
	r2 := r3.Remove("n2")
	for _, k := range ks {
		before, after := r3.Owner(k), r2.Owner(k)
		if before == "n2" {
			if after == "n2" {
				t.Fatalf("key %q still owned by removed member", k)
			}
		} else if before != after {
			t.Fatalf("key %q moved %q -> %q though its owner stayed", k, before, after)
		}
	}
}

// TestRingBalance: a fuzz-style distribution check — over a few
// thousand random keys, every member of a 3-node ring owns a
// reasonable share (no pathological hot node, no starved node).
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"alpha", "beta", "gamma"}, 0)
	rng := rand.New(rand.NewSource(42))
	counts := map[string]int{}
	const total = 6000
	for i := 0; i < total; i++ {
		k := fmt.Sprintf("src-%d-%d", rng.Int63(), i)
		counts[r.Owner(k)]++
	}
	if len(counts) != 3 {
		t.Fatalf("owners seen: %v, want all 3 members", counts)
	}
	for m, c := range counts {
		frac := float64(c) / total
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("member %s owns %.1f%% of keys (counts %v); balance is off", m, 100*frac, counts)
		}
	}
}

// TestRingEdgeCases pins empty-ring and single-member behavior.
func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring Owner = %q, want \"\"", got)
	}
	one := NewRing([]string{"solo"}, 0)
	for _, k := range keys(50) {
		if one.Owner(k) != "solo" {
			t.Fatal("single-member ring must own everything")
		}
	}
}
