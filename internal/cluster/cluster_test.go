// Package cluster_test boots real multi-node clusters — separate
// Systems, real TCP listeners, the production wire protocol — and
// exercises the paper's scaling story one level up: catalog
// replication, owner-directed token forwarding, and zero-loss behavior
// through a node restart.
package cluster_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"triggerman"
	"triggerman/client"
	"triggerman/internal/catalog"
	"triggerman/internal/cluster"
	"triggerman/internal/retry"
	"triggerman/internal/types"
)

// firedLog records the first column of every firing on one node, in
// order (per-source FIFO assertions read it back).
type firedLog struct {
	mu   sync.Mutex
	vals []int64
}

func (f *firedLog) hook(_ uint64, combo []types.Tuple) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(combo) > 0 && len(combo[0]) > 0 {
		f.vals = append(f.vals, combo[0].Get(0).Int())
	}
}

func (f *firedLog) snapshot() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int64(nil), f.vals...)
}

func (f *firedLog) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.vals)
}

// tnode is one booted cluster member.
type tnode struct {
	id    string
	addr  string
	sys   *triggerman.System
	node  *cluster.Node
	fired *firedLog
}

func (n *tnode) stop() {
	n.node.Close()
	n.sys.Close()
}

// testRetry keeps forwarding/dial backoff short so down-node paths
// resolve in milliseconds, not seconds.
func testRetry() *retry.Policy {
	return &retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
}

// bootNode opens a System, wraps it in a cluster Node, and serves it
// on ln. diskPath == "" keeps the catalog in memory.
func bootNode(t *testing.T, self cluster.Member, members []cluster.Member, ln net.Listener, diskPath string, fired *firedLog) *tnode {
	t.Helper()
	sys, err := triggerman.Open(triggerman.Options{
		Queue:            triggerman.MemoryQueue,
		Synchronous:      true,
		NodeID:           self.ID,
		DiskPath:         diskPath,
		TraceSampleEvery: 1,
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", self.ID, err)
	}
	sys.FireHook = fired.hook
	node, err := cluster.New(sys, cluster.Config{
		Self:         self,
		Peers:        members,
		PingEvery:    50 * time.Millisecond,
		ForwardRetry: testRetry(),
	})
	if err != nil {
		t.Fatalf("cluster.New(%s): %v", self.ID, err)
	}
	node.Serve(ln)
	return &tnode{id: self.ID, addr: self.Addr, sys: sys, node: node, fired: fired}
}

// startCluster boots a 3-node cluster A/B/C: listeners first (so the
// member table is complete before any node dials), then systems, then
// health checks.
func startCluster(t *testing.T) map[string]*tnode {
	t.Helper()
	ids := []string{"A", "B", "C"}
	lns := make([]net.Listener, len(ids))
	members := make([]cluster.Member, len(ids))
	for i, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		members[i] = cluster.Member{ID: id, Addr: ln.Addr().String()}
	}
	nodes := make(map[string]*tnode, len(ids))
	for i, id := range ids {
		n := bootNode(t, members[i], members, lns[i], "", &firedLog{})
		nodes[id] = n
		t.Cleanup(n.stop)
	}
	for _, n := range nodes {
		n.node.Start()
	}
	return nodes
}

// sourceOwnedBy scans generated names for one the ring places on
// owner; the tests then aim traffic at a node they chose.
func sourceOwnedBy(t *testing.T, r *cluster.Ring, owner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("src%d", i)
		if r.Owner(name) == owner {
			return name
		}
	}
	t.Fatalf("no generated source owned by %s", owner)
	return ""
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func mustCommand(t *testing.T, c *client.Client, text string) {
	t.Helper()
	if _, err := c.Command(text); err != nil {
		t.Fatalf("command %q: %v", text, err)
	}
}

func defineAndTrigger(t *testing.T, c *client.Client, src string) {
	t.Helper()
	mustCommand(t, c, fmt.Sprintf("define data source %s(x int)", src))
	mustCommand(t, c, fmt.Sprintf(
		"create trigger t_%s from %s when %s.x >= 0 do raise event Fired_%s(%s.x)",
		src, src, src, src, src))
}

// TestClusterReplicationForwardingFIFO is the tentpole system test:
// DDL issued on node A materializes on every node; tokens pushed to
// non-owner nodes fire on their owners; per-source FIFO order survives
// the forwarding hop; trace context crosses the wire; /clusterz and
// the node-stamped /statusz report it all.
func TestClusterReplicationForwardingFIFO(t *testing.T) {
	nodes := startCluster(t)
	a, b, c := nodes["A"], nodes["B"], nodes["C"]
	ring := a.node.Ring()

	cliA, err := client.Dial(a.addr, 4)
	if err != nil {
		t.Fatalf("dial A: %v", err)
	}
	defer cliA.Close()
	if got := cliA.ServerNode(); got != "A" {
		t.Fatalf("handshake: ServerNode = %q, want A", got)
	}

	// All DDL goes to A; the cluster must replicate it everywhere.
	srcA := sourceOwnedBy(t, ring, "A")
	srcB := sourceOwnedBy(t, ring, "B")
	for _, src := range []string{srcA, srcB} {
		defineAndTrigger(t, cliA, src)
	}
	for _, n := range nodes {
		have := map[string]bool{}
		for _, s := range n.sys.DataSources() {
			have[s] = true
		}
		if !have[srcA] || !have[srcB] {
			t.Fatalf("node %s is missing replicated sources: %v", n.id, n.sys.DataSources())
		}
	}

	// Per-source FIFO through forwarding: C pushes a numbered stream
	// for a source owned by B. Forwards are synchronous in the capture
	// path, so order must survive the hop exactly.
	cliC, err := client.Dial(c.addr, 4)
	if err != nil {
		t.Fatalf("dial C: %v", err)
	}
	defer cliC.Close()
	const n = 40
	for i := 0; i < n; i++ {
		if err := cliC.PushInsert(srcB, types.Tuple{types.NewInt(int64(i))}); err != nil {
			t.Fatalf("push %d to C: %v", i, err)
		}
	}
	got := b.fired.snapshot()
	if len(got) != n {
		t.Fatalf("node B fired %d times, want %d (fired on wrong node? A=%d C=%d)",
			len(got), n, a.fired.count(), c.fired.count())
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("FIFO violated through forwarding: position %d fired value %d (%v)", i, v, got)
		}
	}
	if cnt := c.fired.count(); cnt != 0 {
		t.Fatalf("non-owner C fired %d times for %s", cnt, srcB)
	}

	// Trace context crosses the wire: a traced push to the non-owner
	// must surface on the owner with the propagated parent.
	traceCtx, err := cliC.PushInsertTraced(srcB, types.Tuple{types.NewInt(int64(n))})
	if err != nil {
		t.Fatalf("traced push: %v", err)
	}
	if traceCtx == "" {
		t.Fatal("traced push returned empty trace context")
	}
	foundTrace := false
	for _, rec := range b.sys.Tracer().Recent() {
		if rec.TraceParent != "" {
			foundTrace = true
		}
	}
	if !foundTrace {
		t.Fatalf("no trace on owner B carries a propagated parent (pushed %s)", traceCtx)
	}

	// A push to the owner itself stays local (no self-forwarding).
	cliB, err := client.Dial(b.addr, 4)
	if err != nil {
		t.Fatalf("dial B: %v", err)
	}
	defer cliB.Close()
	if err := cliB.PushInsert(srcB, types.Tuple{types.NewInt(999)}); err != nil {
		t.Fatalf("local push to owner: %v", err)
	}
	if got := b.fired.count(); got != n+2 {
		t.Fatalf("owner B fired %d times, want %d", got, n+2)
	}

	// Ops surfaces: /clusterz on the forwarding node and the node stamp
	// on /statusz.
	opsAddr, err := c.sys.ListenOps("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenOps: %v", err)
	}
	var cz struct {
		Node      string `json:"node"`
		Members   []string
		Forwarded int64 `json:"forwarded"`
		Sources   []struct {
			Name  string `json:"name"`
			Owner string `json:"owner"`
			Local bool   `json:"local"`
		} `json:"sources"`
	}
	getJSON(t, "http://"+opsAddr+"/clusterz", &cz)
	if cz.Node != "C" || len(cz.Members) != 3 {
		t.Fatalf("clusterz identity: %+v", cz)
	}
	if cz.Forwarded < n {
		t.Fatalf("clusterz forwarded = %d, want >= %d", cz.Forwarded, n)
	}
	sawB := false
	for _, s := range cz.Sources {
		if s.Name == srcB {
			sawB = true
			if s.Owner != "B" || s.Local {
				t.Fatalf("clusterz ownership for %s: %+v", srcB, s)
			}
		}
	}
	if !sawB {
		t.Fatalf("clusterz sources missing %s: %+v", srcB, cz.Sources)
	}
	var st struct {
		Node string `json:"node"`
	}
	getJSON(t, "http://"+opsAddr+"/statusz", &st)
	if st.Node != "C" {
		t.Fatalf("/statusz node = %q, want C", st.Node)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

// TestClusterRestartZeroLoss kills the owner mid-stream and checks the
// zero-loss ledger: every attempted token is either fired or sitting
// in the dead-letter table as a DeadForward entry, and after the owner
// returns, requeueing delivers the rest — nothing vanishes.
func TestClusterRestartZeroLoss(t *testing.T) {
	ids := []string{"A", "B", "C"}
	lns := make([]net.Listener, len(ids))
	members := make([]cluster.Member, len(ids))
	for i, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		members[i] = cluster.Member{ID: id, Addr: ln.Addr().String()}
	}
	// C persists its catalog so the restart recovers sources, triggers,
	// and nothing else needs re-declaring.
	cDisk := filepath.Join(t.TempDir(), "nodec.db")
	cFired := &firedLog{} // shared across C's two lives

	var nodes [3]*tnode
	for i := range ids {
		fl := &firedLog{}
		disk := ""
		if ids[i] == "C" {
			fl, disk = cFired, cDisk
		}
		nodes[i] = bootNode(t, members[i], members, lns[i], disk, fl)
	}
	a, b, c := nodes[0], nodes[1], nodes[2]
	defer a.stop()
	defer b.stop()
	for _, n := range nodes {
		n.node.Start()
	}

	src := sourceOwnedBy(t, a.node.Ring(), "C")
	cliA, err := client.Dial(a.addr, 4)
	if err != nil {
		t.Fatalf("dial A: %v", err)
	}
	defer cliA.Close()
	defineAndTrigger(t, cliA, src)

	// Phase 1: B forwards a stream to the healthy owner C.
	cliB, err := client.Dial(b.addr, 4)
	if err != nil {
		t.Fatalf("dial B: %v", err)
	}
	defer cliB.Close()
	const before, after = 30, 20
	for i := 0; i < before; i++ {
		if err := cliB.PushInsert(src, types.Tuple{types.NewInt(int64(i))}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if got := cFired.count(); got != before {
		t.Fatalf("owner fired %d, want %d", got, before)
	}

	// Phase 2: the owner dies mid-storm. Pushes keep succeeding — every
	// unforwardable token lands in B's dead-letter table as
	// DeadForward.
	c.stop()
	for i := before; i < before+after; i++ {
		if err := cliB.PushInsert(src, types.Tuple{types.NewInt(int64(i))}); err != nil {
			t.Fatalf("push %d with owner down: %v", i, err)
		}
	}
	dead, err := b.sys.DeadLetters()
	if err != nil {
		t.Fatalf("DeadLetters: %v", err)
	}
	var forwardDead []uint64
	for _, d := range dead {
		if d.Kind == catalog.DeadForward {
			forwardDead = append(forwardDead, d.ID)
		}
	}
	// The ledger: fired + dead-lettered == attempted. Zero silent loss.
	if got, want := cFired.count()+len(forwardDead), before+after; got != want {
		t.Fatalf("ledger broken: fired %d + dead-lettered %d != attempted %d",
			cFired.count(), len(forwardDead), want)
	}
	waitUntil(t, "B to mark C down", func() bool { return !b.node.PeerUp("C") })
	if !hasPeerEvent(b, "C", "down") {
		t.Fatal("no cluster.peer down event for C on B")
	}

	// Phase 3: C returns on the same address and catalog. The pinger
	// notices, and requeueing the DeadForward entries delivers every
	// parked token to the recovered owner.
	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", c.addr, err)
	}
	c2 := bootNode(t, members[2], members, ln, cDisk, cFired)
	defer c2.stop()
	c2.node.Start()
	waitUntil(t, "B to see C up again", func() bool { return b.node.PeerUp("C") })
	if !hasPeerEvent(b, "C", "up") {
		t.Fatal("no cluster.peer up event for C on B")
	}

	for _, id := range forwardDead {
		if err := b.sys.RequeueDeadLetter(id); err != nil {
			t.Fatalf("requeue %d: %v", id, err)
		}
	}
	if got, want := cFired.count(), before+after; got != want {
		t.Fatalf("after recovery owner fired %d, want %d", got, want)
	}
	if got := b.sys.DeadLetterCount(); got != 0 {
		t.Fatalf("B still holds %d dead letters after requeue", got)
	}
	// Every pushed value arrived exactly once in this controlled
	// sequence (pushes paused around the crash, so at-least-once
	// degenerates to exactly-once).
	seen := map[int64]bool{}
	for _, v := range cFired.snapshot() {
		if seen[v] {
			t.Fatalf("value %d fired twice", v)
		}
		seen[v] = true
	}
	for i := 0; i < before+after; i++ {
		if !seen[int64(i)] {
			t.Fatalf("value %d lost", i)
		}
	}
}

// hasPeerEvent scans a node's event log for a cluster.peer transition.
func hasPeerEvent(n *tnode, peer, state string) bool {
	for _, rec := range n.sys.EventLog().Recent() {
		if rec.Event != "cluster.peer" {
			continue
		}
		if fmt.Sprint(rec.Attrs["peer"]) == peer && fmt.Sprint(rec.Attrs["state"]) == state {
			return true
		}
	}
	return false
}

// TestClusterDDLReplicationError pins the contract that a replication
// failure is loud: the statement applies locally but the command
// reports which peer missed it.
func TestClusterDDLReplicationError(t *testing.T) {
	nodes := startCluster(t)
	a, c := nodes["A"], nodes["C"]
	c.stop()
	waitUntil(t, "A to mark C down", func() bool { return !a.node.PeerUp("C") })

	cliA, err := client.Dial(a.addr, 4)
	if err != nil {
		t.Fatalf("dial A: %v", err)
	}
	defer cliA.Close()
	_, err = cliA.Command("define data source orphaned(x int)")
	if err == nil {
		t.Fatal("DDL with a dead peer should surface the replication failure")
	}
	// The statement did apply locally and on the healthy peer.
	for _, n := range []*tnode{a, nodes["B"]} {
		found := false
		for _, s := range n.sys.DataSources() {
			if s == "orphaned" {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %s missing locally-applied DDL after partial replication", n.id)
		}
	}
}
