package cluster

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"triggerman"
	"triggerman/client"
	"triggerman/internal/catalog"
	"triggerman/internal/datasource"
	"triggerman/internal/event"
	"triggerman/internal/metrics"
	"triggerman/internal/parser"
	"triggerman/internal/retry"
	"triggerman/internal/trace"
	"triggerman/internal/wire"
)

// Member identifies one cluster node: a stable id and its wire
// address.
type Member struct {
	ID   string
	Addr string
}

// String renders the id@host:port form ParseMember reads.
func (m Member) String() string { return m.ID + "@" + m.Addr }

// ParseMember parses "id@host:port".
func ParseMember(s string) (Member, error) {
	i := strings.Index(s, "@")
	if i <= 0 || i == len(s)-1 {
		return Member{}, fmt.Errorf("cluster: bad member %q (want id@host:port)", s)
	}
	return Member{ID: s[:i], Addr: s[i+1:]}, nil
}

// ParseMembers parses a comma-separated member list (the
// -cluster.peers flag form). Empty elements are skipped.
func ParseMembers(s string) ([]Member, error) {
	var out []Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := ParseMember(part)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's identity and listen address.
	Self Member
	// Peers is the static seed list of the other members (entries
	// matching Self are tolerated and skipped, so every node can share
	// one list).
	Peers []Member
	// Vnodes tunes placement granularity (default DefaultVnodes).
	Vnodes int
	// PingEvery is the membership health-check interval (default 1s).
	PingEvery time.Duration
	// ForwardRetry bounds forwarding and peer-dial attempts; nil takes
	// 4 attempts backing off 10ms→100ms. The same policy drives the
	// peer clients' reconnect redials.
	ForwardRetry *retry.Policy
}

// peerState is one remote member's connection and health state.
type peerState struct {
	member   Member
	up       atomic.Bool
	lastSeen atomic.Int64 // unix ns of the last successful round-trip

	mu  sync.Mutex
	cli *client.Client // lazy; reconnecting
}

// Node wraps a triggerman.System as one member of a cluster: it owns
// the placement ring, replicates DDL to its peers, forwards non-owned
// tokens, and health-checks the membership. It implements the wire
// Backend (plus DDLBackend and ForwardBackend), so Serve exposes the
// whole node over one listener.
type Node struct {
	sys   *triggerman.System
	cfg   Config
	ring  *Ring
	peers map[string]*peerState
	order []string // sorted peer ids: deterministic broadcast/ping order

	fwdPolicy   retry.Policy
	fwdAttempts int

	srv      *wire.Server
	pingStop chan struct{}
	pingDone chan struct{}
	started  atomic.Bool
	startO   sync.Once
	closeO   sync.Once

	cForwarded   *metrics.Counter
	cForwardDead *metrics.Counter
	cReceived    *metrics.Counter
	cDDLSent     *metrics.Counter
	cDDLApplied  *metrics.Counter
	cDDLFailed   *metrics.Counter
	// hForward measures the forward hop's wire latency (successful
	// synchronous ships only), independently of trace sampling.
	hForward *metrics.Histogram
}

// New builds a cluster node around sys: the ring covers Self plus
// Peers, the capture-point router is installed, and tman_cluster_*
// metrics plus the /clusterz ops handler are registered. Call Start to
// begin health checks and Serve to accept wire connections.
func New(sys *triggerman.System, cfg Config) (*Node, error) {
	if cfg.Self.ID == "" || cfg.Self.Addr == "" {
		return nil, fmt.Errorf("cluster: Config.Self must name this node (id@host:port)")
	}
	if cfg.PingEvery <= 0 {
		cfg.PingEvery = time.Second
	}
	if cfg.ForwardRetry == nil {
		cfg.ForwardRetry = &retry.Policy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
	}
	n := &Node{
		sys:      sys,
		cfg:      cfg,
		peers:    make(map[string]*peerState),
		pingStop: make(chan struct{}),
		pingDone: make(chan struct{}),
	}
	n.fwdPolicy = cfg.ForwardRetry.WithDefaults()
	n.fwdAttempts = n.fwdPolicy.MaxAttempts
	members := []string{cfg.Self.ID}
	for _, p := range cfg.Peers {
		if p.ID == cfg.Self.ID {
			continue
		}
		if _, dup := n.peers[p.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", p.ID)
		}
		ps := &peerState{member: p}
		// Optimistic until the first ping round: a fresh cluster must
		// not dead-letter its first tokens just because no ping has
		// completed yet.
		ps.up.Store(true)
		n.peers[p.ID] = ps
		n.order = append(n.order, p.ID)
		members = append(members, p.ID)
	}
	sort.Strings(n.order)
	n.ring = NewRing(members, cfg.Vnodes)

	met := sys.Metrics()
	const fwdHelp = "cross-node token movements by result"
	n.cForwarded = met.Counter("tman_cluster_forward_total", fwdHelp, metrics.L("result", "forwarded"))
	n.cForwardDead = met.Counter("tman_cluster_forward_total", fwdHelp, metrics.L("result", "dead_lettered"))
	n.cReceived = met.Counter("tman_cluster_forward_total", fwdHelp, metrics.L("result", "received"))
	n.hForward = met.Histogram("tman_cluster_forward_seconds",
		"forward-hop wire latency: the synchronous ship of a non-owned token to its owner node", nil)
	const ddlHelp = "catalog statement replication by kind"
	n.cDDLSent = met.Counter("tman_cluster_ddl_total", ddlHelp, metrics.L("kind", "broadcast"))
	n.cDDLApplied = met.Counter("tman_cluster_ddl_total", ddlHelp, metrics.L("kind", "applied"))
	n.cDDLFailed = met.Counter("tman_cluster_ddl_total", ddlHelp, metrics.L("kind", "failed"))
	const peersHelp = "peer nodes by health state"
	met.GaugeFunc("tman_cluster_peers", peersHelp, func() int64 { return n.countPeers(true) }, metrics.L("state", "up"))
	met.GaugeFunc("tman_cluster_peers", peersHelp, func() int64 { return n.countPeers(false) }, metrics.L("state", "down"))

	sys.RegisterOpsHandler("/clusterz", n.handleClusterz)
	sys.SetRouter(n)
	return n, nil
}

func (n *Node) countPeers(up bool) int64 {
	var c int64
	for _, p := range n.peers {
		if p.up.Load() == up {
			c++
		}
	}
	return c
}

// Self returns this node's member identity.
func (n *Node) Self() Member { return n.cfg.Self }

// PeerUp reports whether peer id is currently marked healthy (false
// for unknown ids). Harnesses poll it to sequence restarts.
func (n *Node) PeerUp(id string) bool {
	p := n.peers[id]
	return p != nil && p.up.Load()
}

// Ring returns the placement ring (immutable).
func (n *Node) Ring() *Ring { return n.ring }

// System returns the wrapped trigger system.
func (n *Node) System() *triggerman.System { return n.sys }

// Serve starts accepting wire connections on ln, answering handshakes
// with this node's id.
func (n *Node) Serve(ln net.Listener) *wire.Server {
	n.srv = wire.ServeWith(ln, n, wire.Config{NodeID: n.cfg.Self.ID})
	return n.srv
}

// Start runs one synchronous ping round (so peer health is real, not
// optimistic, by the time Start returns) and then health-checks every
// PingEvery.
func (n *Node) Start() {
	n.startO.Do(func() {
		n.started.Store(true)
		n.pingRound()
		go func() {
			defer close(n.pingDone)
			t := time.NewTicker(n.cfg.PingEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					n.pingRound()
				case <-n.pingStop:
					return
				}
			}
		}()
	})
}

// Close stops health checks, uninstalls the router, and closes peer
// connections and the wire server (the wrapped System is the caller's
// to close). Idempotent.
func (n *Node) Close() error {
	n.closeO.Do(func() {
		close(n.pingStop)
		if n.started.Load() {
			<-n.pingDone
		}
		n.sys.SetRouter(nil)
		for _, p := range n.peers {
			p.mu.Lock()
			if p.cli != nil {
				p.cli.Close()
				p.cli = nil
			}
			p.mu.Unlock()
		}
		if n.srv != nil {
			n.srv.Close()
		}
	})
	return nil
}

// clientFor returns the peer's reconnecting client, dialing (with
// backoff) on first use or after a Close-induced drop.
func (n *Node) clientFor(p *peerState) (*client.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cli != nil {
		return p.cli, nil
	}
	var cli *client.Client
	_, err := n.fwdPolicy.Do(func() error {
		c, derr := client.DialWith(p.member.Addr, client.Options{
			Reconnect: true,
			Redial:    &n.fwdPolicy,
			Node:      n.cfg.Self.ID,
		})
		if derr != nil {
			return retry.Transient(derr)
		}
		cli = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	p.cli = cli
	return cli, nil
}

// markPeer records a health transition, logging it exactly once per
// edge.
func (n *Node) markPeer(p *peerState, up bool) {
	if p.up.Swap(up) != up {
		state := "down"
		if up {
			state = "up"
		}
		n.sys.EventLog().Emit("cluster.peer",
			"peer", p.member.ID, "addr", p.member.Addr, "state", state)
	}
	if up {
		p.lastSeen.Store(time.Now().UnixNano())
	}
}

// pingRound health-checks every peer once.
func (n *Node) pingRound() {
	for _, id := range n.order {
		p := n.peers[id]
		cli, err := n.clientFor(p)
		if err != nil {
			n.markPeer(p, false)
			continue
		}
		if err := cli.Ping(); err != nil {
			n.markPeer(p, false)
		} else {
			n.markPeer(p, true)
		}
	}
}

// Route implements triggerman.TokenRouter: a token whose source is
// owned elsewhere is forwarded to the owner (synchronously, so
// per-source FIFO order survives the hop), or dead-lettered as
// catalog.DeadForward when the owner is unreachable. It never returns
// an error for a handled token — the producer's push succeeded; the
// token is either on the owner or durably quarantined for requeue.
func (n *Node) Route(source string, tok datasource.Token, traceCtx string) (bool, error) {
	owner := n.ring.Owner(source)
	if owner == "" || owner == n.cfg.Self.ID {
		return false, nil
	}
	p := n.peers[owner]
	if p == nil {
		// Cannot happen with a ring built from the peer table, but a
		// token must never fall through a hole in it.
		n.deadLetterForward(tok, owner, fmt.Errorf("cluster: owner %q not in peer table", owner))
		return true, nil
	}
	if !p.up.Load() {
		// Fast path: a known-down owner gets no per-token retry storm;
		// the token goes straight to the dead-letter table and ships
		// again on requeue once the pinger sees the peer return.
		n.deadLetterForward(tok, owner, fmt.Errorf("cluster: owner %q is down", owner))
		return true, nil
	}
	cli, err := n.clientFor(p)
	began := time.Now()
	if err == nil {
		err = cli.Forward(source, tok.Op, tok.Old, tok.New, traceCtx, n.cfg.Self.ID)
	}
	if err != nil {
		n.markPeer(p, false)
		n.deadLetterForward(tok, owner, err)
		return true, nil
	}
	d := time.Since(began)
	n.hForward.Observe(d)
	// A sampled trace context gets an origin-side forward record: the
	// token's local lifecycle ends here, and without this the origin
	// half of the cross-node timeline would be empty.
	if traceCtx != "" {
		if id, flags, perr := trace.ParseContext(traceCtx); perr == nil && id != 0 && flags&trace.FlagSampled != 0 {
			n.sys.Tracer().RecordForward(tok.SourceID, tok.Op.String(), id, began, d)
		}
	}
	p.lastSeen.Store(time.Now().UnixNano())
	n.cForwarded.Inc()
	return true, nil
}

// deadLetterForward quarantines a token that could not reach its
// owner: accounted, requeueable, never silently lost.
func (n *Node) deadLetterForward(tok datasource.Token, owner string, cause error) {
	n.cForwardDead.Inc()
	n.sys.QuarantineToken(catalog.DeadForward, tok,
		fmt.Errorf("forward to %s: %w", owner, cause), n.fwdAttempts)
}

// --- wire backend -----------------------------------------------------

// Command executes a statement locally and, when it is a catalog
// (DDL) statement, replicates it to every peer so all nodes hold the
// full trigger catalog. Replication failures are surfaced in the
// returned error (the statement HAS applied locally) and counted, not
// swallowed.
func (n *Node) Command(text string) (string, error) {
	out, err := n.sys.Command(text)
	if err != nil || !isDDL(text) {
		return out, err
	}
	n.cDDLSent.Inc()
	var failures []string
	for _, id := range n.order {
		p := n.peers[id]
		cli, cerr := n.clientFor(p)
		if cerr == nil {
			_, cerr = cli.DDL(text, n.cfg.Self.ID)
		}
		if cerr != nil {
			n.cDDLFailed.Inc()
			n.sys.EventLog().Warn("cluster.ddl",
				"peer", id, "error", cerr.Error())
			failures = append(failures, fmt.Sprintf("%s: %v", id, cerr))
		}
	}
	if len(failures) > 0 {
		return out, fmt.Errorf("cluster: statement applied on %s but replication failed: %s",
			n.cfg.Self.ID, strings.Join(failures, "; "))
	}
	return out, nil
}

// isDDL reports whether text is a catalog statement worth
// replicating. Unparseable text is not DDL — the local Command call
// already reported its real error.
func isDDL(text string) bool {
	st, err := parser.Parse(text)
	if err != nil {
		return false
	}
	switch st.(type) {
	case *parser.CreateTrigger, *parser.DropTrigger,
		*parser.CreateTriggerSet, *parser.DropTriggerSet,
		*parser.SetEnabled, *parser.DefineDataSource:
		return true
	}
	return false
}

// ApplyDDL implements wire.DDLBackend: a statement replicated from
// origin applies locally without re-broadcasting (no loops).
func (n *Node) ApplyDDL(text, origin string) (string, error) {
	out, err := n.sys.Command(text)
	if err != nil {
		return "", err
	}
	n.cDDLApplied.Inc()
	return out, nil
}

// ForwardToken implements wire.ForwardBackend: a token shipped from a
// peer applies locally, bypassing this node's own ring so a stale
// sender cannot bounce it forever.
func (n *Node) ForwardToken(source string, op datasource.Op, old, new []wire.Value, trace, origin string) error {
	if err := n.sys.ApplyForwarded(source, op, old, new, trace); err != nil {
		return err
	}
	n.cReceived.Inc()
	return nil
}

// Subscribe implements wire.Backend.
func (n *Node) Subscribe(name string, buffer int) (*event.Subscription, error) {
	return n.sys.Subscribe(name, buffer)
}

// PushToken implements wire.Backend; the system's installed router
// (this node) decides locality.
func (n *Node) PushToken(source string, op datasource.Op, old, new []wire.Value, trace string) error {
	return n.sys.PushToken(source, op, old, new, trace)
}

// StatsText implements wire.Backend.
func (n *Node) StatsText() string { return n.sys.StatsText() }

// TraceFetch implements wire.IntrospectBackend (node-local trace
// records for a tm1- id, as JSON).
func (n *Node) TraceFetch(id string) (string, error) { return n.sys.TraceFetch(id) }

// MetricsSnapshot implements wire.IntrospectBackend (this node's
// registry as a JSON metrics.Snapshot).
func (n *Node) MetricsSnapshot() (string, error) { return n.sys.MetricsSnapshot() }

// --- fleet observability (internal/fleet's Cluster interface) ---------

// SelfID returns this node's id.
func (n *Node) SelfID() string { return n.cfg.Self.ID }

// PeerIDs returns the peer ids in deterministic (sorted) order.
func (n *Node) PeerIDs() []string { return append([]string(nil), n.order...) }

// PeerTraceFetch asks one peer for its local trace records for a tm1-
// trace id, over the same reconnecting client the forwarding path
// uses.
func (n *Node) PeerTraceFetch(peer, traceID string) (string, error) {
	p := n.peers[peer]
	if p == nil {
		return "", fmt.Errorf("cluster: unknown peer %q", peer)
	}
	cli, err := n.clientFor(p)
	if err != nil {
		return "", err
	}
	return cli.TraceFetch(traceID)
}

// PeerMetricsSnapshot asks one peer for its metrics registry snapshot
// (JSON).
func (n *Node) PeerMetricsSnapshot(peer string) (string, error) {
	p := n.peers[peer]
	if p == nil {
		return "", fmt.Errorf("cluster: unknown peer %q", peer)
	}
	cli, err := n.clientFor(p)
	if err != nil {
		return "", err
	}
	return cli.MetricsSnapshot()
}
