// Package cluster turns a single-process TriggerMan system into one
// node of a multi-node trigger service. The paper's scaling argument —
// route tokens by (source, signature) onto independent workers — is
// applied one level up: data sources are partitioned across nodes by
// consistent hashing (the placement ring), every node replicates the
// full trigger catalog (DDL broadcast), and tokens captured on a
// non-owner node are forwarded to the owner over the wire protocol
// with retry backoff, falling back to the dead-letter table when the
// owner is unreachable — zero silent loss.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per member: enough points
// that source ownership spreads evenly across a handful of nodes
// without making ring rebuilds expensive.
const DefaultVnodes = 64

// point is one virtual node on the ring.
type point struct {
	hash   uint64
	member string
}

// Ring maps source names onto member nodes by consistent hashing.
// Replication-free v1: each source is owned by exactly one node. A
// Ring is immutable — Add and Remove return new rings — so hot-path
// Owner lookups need no locking.
type Ring struct {
	vnodes  int
	members []string // sorted, deduplicated
	points  []point  // sorted by (hash, member)
}

// NewRing builds a ring over members (order-insensitive; duplicates
// collapse). vnodes <= 0 takes DefaultVnodes. An empty member list
// yields a ring whose Owner always returns "".
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	// Ties (identical hashes) break by member name so two rings built
	// from the same member set are bit-identical regardless of input
	// order — every node computes the same placement.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// hash64 is FNV-1a followed by a 64-bit avalanche finalizer:
// stdlib-only and stable across processes and architectures (placement
// must agree on every node). Raw FNV-1a of near-identical short
// strings ("n4#0".."n4#63") clusters badly on the ring; the finalizer
// restores uniform point spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the member that owns source: the first ring point
// clockwise from the source's hash. Empty ring returns "".
func (r *Ring) Owner(source string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(source)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].member
}

// Members returns the ring's member list, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.members) }

// Add returns a new ring with member added (no-op copy if present).
func (r *Ring) Add(member string) *Ring {
	return NewRing(append(r.Members(), member), r.vnodes)
}

// Remove returns a new ring with member removed (no-op copy if
// absent).
func (r *Ring) Remove(member string) *Ring {
	kept := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			kept = append(kept, m)
		}
	}
	return NewRing(kept, r.vnodes)
}
