package storage

import (
	"fmt"
	"sync"
)

// HeapFile is an unordered record file: a linked chain of slotted pages.
// It backs constant tables (§5.1), trigger catalogs, and the update
// queue table. Records are opaque bytes (the catalog layer encodes
// tuples with types.EncodeTuple).
type HeapFile struct {
	mu    sync.Mutex
	bp    *BufferPool
	first PageID
	last  PageID
	count int // live record count, maintained incrementally
}

// CreateHeap allocates a new empty heap file and returns it. The first
// page ID is the heap's persistent identity; store it in a catalog to
// reopen later.
func CreateHeap(bp *BufferPool) (*HeapFile, error) {
	p, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	p.InitSlotted()
	id := p.ID
	if err := bp.Unpin(id, true); err != nil {
		return nil, err
	}
	return &HeapFile{bp: bp, first: id, last: id}, nil
}

// OpenHeap reattaches to an existing heap by its first page ID, walking
// the chain to find the tail and count live records.
func OpenHeap(bp *BufferPool, first PageID) (*HeapFile, error) {
	h := &HeapFile{bp: bp, first: first, last: first}
	id := first
	for id != InvalidPageID {
		p, err := bp.FetchPage(id)
		if err != nil {
			return nil, err
		}
		h.count += p.LiveRecords()
		next := p.NextPage()
		if err := bp.Unpin(id, false); err != nil {
			return nil, err
		}
		h.last = id
		id = next
	}
	return h, nil
}

// FirstPage returns the heap's identity page ID.
func (h *HeapFile) FirstPage() PageID { return h.first }

// Count returns the number of live records.
func (h *HeapFile) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Insert appends a record, returning its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	if len(rec) > PageSize-pageHeaderSize-slotSize {
		return RID{}, fmt.Errorf("storage: record of %d bytes exceeds page capacity", len(rec))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	p, err := h.bp.FetchPage(h.last)
	if err != nil {
		return RID{}, err
	}
	slot, err := p.InsertRecord(rec)
	if err != nil && p.LiveRecords() < p.NumSlots() {
		// Dead records may hold the space; compact and retry before
		// growing the chain (churn-heavy tables stay small).
		p.Compact()
		slot, err = p.InsertRecord(rec)
	}
	if err == nil {
		rid := RID{Page: h.last, Slot: uint16(slot)}
		h.count++
		return rid, h.bp.Unpin(h.last, true)
	}
	// Tail is full: grow the chain.
	np, nerr := h.bp.NewPage()
	if nerr != nil {
		h.bp.Unpin(h.last, false)
		return RID{}, nerr
	}
	np.InitSlotted()
	p.SetNextPage(np.ID)
	if err := h.bp.Unpin(h.last, true); err != nil {
		h.bp.Unpin(np.ID, true)
		return RID{}, err
	}
	h.last = np.ID
	slot, err = np.InsertRecord(rec)
	if err != nil {
		h.bp.Unpin(np.ID, true)
		return RID{}, err
	}
	h.count++
	rid := RID{Page: np.ID, Slot: uint16(slot)}
	return rid, h.bp.Unpin(np.ID, true)
}

// Get returns a copy of the record at rid, or an error if it is dead or
// out of range.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	p, err := h.bp.FetchPage(rid.Page)
	if err != nil {
		return nil, err
	}
	rec := p.Record(int(rid.Slot))
	if rec == nil {
		h.bp.Unpin(rid.Page, false)
		return nil, fmt.Errorf("storage: no record at %s", rid)
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, h.bp.Unpin(rid.Page, false)
}

// Delete removes the record at rid.
func (h *HeapFile) Delete(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, err := h.bp.FetchPage(rid.Page)
	if err != nil {
		return err
	}
	if err := p.DeleteRecord(int(rid.Slot)); err != nil {
		h.bp.Unpin(rid.Page, false)
		return err
	}
	h.count--
	return h.bp.Unpin(rid.Page, true)
}

// Update replaces the record at rid in place when it fits; otherwise it
// deletes and re-inserts, returning the (possibly new) RID.
func (h *HeapFile) Update(rid RID, rec []byte) (RID, error) {
	h.mu.Lock()
	p, err := h.bp.FetchPage(rid.Page)
	if err != nil {
		h.mu.Unlock()
		return RID{}, err
	}
	err = p.UpdateRecord(int(rid.Slot), rec)
	if err == nil {
		h.mu.Unlock()
		return rid, h.bp.Unpin(rid.Page, true)
	}
	if err != ErrPageFull {
		h.bp.Unpin(rid.Page, false)
		h.mu.Unlock()
		return RID{}, err
	}
	// Relocate: delete here, insert elsewhere.
	if derr := p.DeleteRecord(int(rid.Slot)); derr != nil {
		h.bp.Unpin(rid.Page, false)
		h.mu.Unlock()
		return RID{}, derr
	}
	h.count--
	if uerr := h.bp.Unpin(rid.Page, true); uerr != nil {
		h.mu.Unlock()
		return RID{}, uerr
	}
	h.mu.Unlock()
	return h.Insert(rec)
}

// Scan calls fn for every live record in heap order. The rec slice is
// only valid during the call. Scanning stops early when fn returns
// false.
func (h *HeapFile) Scan(fn func(rid RID, rec []byte) bool) error {
	return h.ScanFrom(h.first, fn)
}

// ScanFrom scans like Scan but starts at the given page of the chain
// (queues use this to skip drained pages).
func (h *HeapFile) ScanFrom(start PageID, fn func(rid RID, rec []byte) bool) error {
	id := start
	for id != InvalidPageID {
		p, err := h.bp.FetchPage(id)
		if err != nil {
			return err
		}
		n := p.NumSlots()
		stop := false
		for i := 0; i < n && !stop; i++ {
			rec := p.Record(i)
			if rec == nil {
				continue
			}
			if !fn(RID{Page: id, Slot: uint16(i)}, rec) {
				stop = true
			}
		}
		next := p.NextPage()
		if err := h.bp.Unpin(id, false); err != nil {
			return err
		}
		if stop {
			return nil
		}
		id = next
	}
	return nil
}

// Pages counts the pages in the heap chain.
func (h *HeapFile) Pages() (int, error) {
	n := 0
	id := h.first
	for id != InvalidPageID {
		p, err := h.bp.FetchPage(id)
		if err != nil {
			return 0, err
		}
		next := p.NextPage()
		if err := h.bp.Unpin(id, false); err != nil {
			return 0, err
		}
		n++
		id = next
	}
	return n, nil
}
