package storage

import (
	"fmt"
	"os"
	"sync"
)

// DiskManager reads and writes fixed-size pages by PageID. Two
// implementations exist: a real file-backed manager and an in-memory
// manager for tests and pure main-memory operation.
type DiskManager interface {
	// ReadPage fills buf (PageSize bytes) with page id's contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf as page id's contents.
	WritePage(id PageID, buf []byte) error
	// AllocatePage extends the file by one page and returns its ID.
	AllocatePage() (PageID, error)
	// NumPages reports the number of allocated pages.
	NumPages() int
	// Sync flushes to stable storage.
	Sync() error
	// Close releases resources.
	Close() error
}

// FileDiskManager stores pages in a single OS file.
type FileDiskManager struct {
	mu    sync.Mutex
	f     *os.File
	pages int
}

// OpenFile opens (creating if needed) a page file at path.
func OpenFile(path string) (*FileDiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s has torn size %d", path, st.Size())
	}
	return &FileDiskManager{f: f, pages: int(st.Size() / PageSize)}, nil
}

// ReadPage implements DiskManager.
func (d *FileDiskManager) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= d.pages {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, d.pages)
	}
	_, err := d.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// WritePage implements DiskManager.
func (d *FileDiskManager) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= d.pages {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, d.pages)
	}
	_, err := d.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// AllocatePage implements DiskManager.
func (d *FileDiskManager) AllocatePage() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(d.pages)
	var zero [PageSize]byte
	if _, err := d.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return InvalidPageID, err
	}
	d.pages++
	return id, nil
}

// NumPages implements DiskManager.
func (d *FileDiskManager) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

// Sync implements DiskManager.
func (d *FileDiskManager) Sync() error { return d.f.Sync() }

// Close implements DiskManager.
func (d *FileDiskManager) Close() error { return d.f.Close() }

// MemDiskManager keeps pages in memory. It optionally counts simulated
// I/Os so benchmarks can attribute page-access costs without a real disk.
type MemDiskManager struct {
	mu    sync.Mutex
	pages [][]byte

	// Reads and Writes count page-level I/O operations.
	Reads, Writes int
}

// NewMem returns an empty in-memory disk manager.
func NewMem() *MemDiskManager { return &MemDiskManager{} }

// ReadPage implements DiskManager.
func (d *MemDiskManager) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, len(d.pages))
	}
	d.Reads++
	copy(buf[:PageSize], d.pages[id])
	return nil
}

// WritePage implements DiskManager.
func (d *MemDiskManager) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, len(d.pages))
	}
	d.Writes++
	copy(d.pages[id], buf[:PageSize])
	return nil
}

// AllocatePage implements DiskManager.
func (d *MemDiskManager) AllocatePage() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pages = append(d.pages, make([]byte, PageSize))
	return PageID(len(d.pages) - 1), nil
}

// NumPages implements DiskManager.
func (d *MemDiskManager) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// Sync implements DiskManager.
func (d *MemDiskManager) Sync() error { return nil }

// Close implements DiskManager.
func (d *MemDiskManager) Close() error { return nil }

// IOCounts returns the simulated read/write totals.
func (d *MemDiskManager) IOCounts() (reads, writes int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Reads, d.Writes
}
