// Package storage implements the disk substrate that stands in for the
// host DBMS (Informix in the paper): a paged file with a buffer pool and
// slotted-page heap files. Constant tables (§5.1), the trigger catalogs,
// and the persistent update-descriptor queue (Figure 1) are all stored
// here, so the "non-indexed database table" and "indexed database table"
// constant-set organizations (§5.2) pay genuine page-I/O costs.
package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed size of every page in bytes.
const PageSize = 4096

// PageID identifies a page within a pager. InvalidPageID marks "none".
type PageID uint32

// InvalidPageID is the null page reference.
const InvalidPageID PageID = 0xFFFFFFFF

// Slotted page layout:
//
//	offset 0:  uint16 slot count
//	offset 2:  uint16 free-space start (grows up, after slot array)
//	offset 4:  uint16 free-space end (records grow down from PageSize)
//	offset 6:  uint32 next page in heap chain (InvalidPageID terminator)
//	offset 10: slot array, 4 bytes per slot: uint16 offset, uint16 length
//
// A slot with offset 0xFFFF is dead (deleted record).
const (
	pageHeaderSize = 10
	slotSize       = 4
	deadSlot       = 0xFFFF
)

// Page is a fixed-size page image with slotted-record accessors. The
// buffer pool hands out *Page frames; mutators set the dirty flag via
// the pool, not here.
type Page struct {
	ID   PageID
	Data [PageSize]byte
}

// InitSlotted formats the page as an empty slotted page.
func (p *Page) InitSlotted() {
	for i := range p.Data[:pageHeaderSize] {
		p.Data[i] = 0
	}
	p.setSlotCount(0)
	p.setFreeStart(pageHeaderSize)
	p.setFreeEnd(PageSize)
	p.SetNextPage(InvalidPageID)
}

func (p *Page) slotCount() int     { return int(binary.LittleEndian.Uint16(p.Data[0:])) }
func (p *Page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.Data[0:], uint16(n)) }
func (p *Page) freeStart() int     { return int(binary.LittleEndian.Uint16(p.Data[2:])) }
func (p *Page) setFreeStart(n int) { binary.LittleEndian.PutUint16(p.Data[2:], uint16(n)) }
func (p *Page) freeEnd() int       { return int(binary.LittleEndian.Uint16(p.Data[4:])) }
func (p *Page) setFreeEnd(n int)   { binary.LittleEndian.PutUint16(p.Data[4:], uint16(n)) }

// NextPage returns the next page in the heap chain.
func (p *Page) NextPage() PageID { return PageID(binary.LittleEndian.Uint32(p.Data[6:])) }

// SetNextPage links the heap chain.
func (p *Page) SetNextPage(id PageID) { binary.LittleEndian.PutUint32(p.Data[6:], uint32(id)) }

// NumSlots returns the slot-array length (including dead slots).
func (p *Page) NumSlots() int { return p.slotCount() }

func (p *Page) slot(i int) (offset, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.Data[base:])),
		int(binary.LittleEndian.Uint16(p.Data[base+2:]))
}

func (p *Page) setSlot(i, offset, length int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.Data[base:], uint16(offset))
	binary.LittleEndian.PutUint16(p.Data[base+2:], uint16(length))
}

// FreeSpace returns the bytes available for a new record (accounting for
// its slot entry).
func (p *Page) FreeSpace() int {
	free := p.freeEnd() - p.freeStart() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// InsertRecord stores rec in the page, returning its slot number.
// It fails when the record does not fit.
func (p *Page) InsertRecord(rec []byte) (int, error) {
	if len(rec) > p.FreeSpace() {
		return 0, fmt.Errorf("storage: record of %d bytes does not fit (free %d)", len(rec), p.FreeSpace())
	}
	// Reuse a dead slot if present (keeps slot array from growing
	// unboundedly under churn).
	slotIdx := -1
	n := p.slotCount()
	for i := 0; i < n; i++ {
		if off, _ := p.slot(i); off == deadSlot {
			slotIdx = i
			break
		}
	}
	if slotIdx == -1 {
		slotIdx = n
		p.setSlotCount(n + 1)
		p.setFreeStart(p.freeStart() + slotSize)
	}
	end := p.freeEnd()
	start := end - len(rec)
	copy(p.Data[start:end], rec)
	p.setFreeEnd(start)
	p.setSlot(slotIdx, start, len(rec))
	return slotIdx, nil
}

// Record returns the record bytes at slot i, or nil when the slot is
// dead or out of range. The returned slice aliases the page image.
func (p *Page) Record(i int) []byte {
	if i < 0 || i >= p.slotCount() {
		return nil
	}
	off, length := p.slot(i)
	if off == deadSlot {
		return nil
	}
	return p.Data[off : off+length]
}

// DeleteRecord marks slot i dead. Space is reclaimed by Compact.
func (p *Page) DeleteRecord(i int) error {
	if i < 0 || i >= p.slotCount() {
		return fmt.Errorf("storage: delete of invalid slot %d", i)
	}
	if off, _ := p.slot(i); off == deadSlot {
		return fmt.Errorf("storage: slot %d already dead", i)
	}
	p.setSlot(i, deadSlot, 0)
	return nil
}

// UpdateRecord replaces the record at slot i. If the new record does not
// fit in place it is re-stored within the page when possible; the caller
// must handle ErrPageFull by relocating to another page.
func (p *Page) UpdateRecord(i int, rec []byte) error {
	if i < 0 || i >= p.slotCount() {
		return fmt.Errorf("storage: update of invalid slot %d", i)
	}
	off, length := p.slot(i)
	if off == deadSlot {
		return fmt.Errorf("storage: update of dead slot %d", i)
	}
	if len(rec) <= length {
		copy(p.Data[off:off+len(rec)], rec)
		p.setSlot(i, off, len(rec))
		return nil
	}
	// Needs more room: try appending a fresh copy.
	if len(rec) > p.freeEnd()-p.freeStart() {
		// Compact to coalesce dead space, then retry.
		p.Compact()
		off, _ = p.slot(i)
	}
	if len(rec) > p.freeEnd()-p.freeStart() {
		return ErrPageFull
	}
	end := p.freeEnd()
	start := end - len(rec)
	copy(p.Data[start:end], rec)
	p.setFreeEnd(start)
	p.setSlot(i, start, len(rec))
	return nil
}

// ErrPageFull reports that a record cannot fit in the page.
var ErrPageFull = fmt.Errorf("storage: page full")

// Compact rewrites live records contiguously at the end of the page,
// reclaiming space from deleted and superseded records.
func (p *Page) Compact() {
	type live struct{ slot, length int }
	n := p.slotCount()
	var recs []live
	for i := 0; i < n; i++ {
		if off, length := p.slot(i); off != deadSlot {
			recs = append(recs, live{i, length})
		}
	}
	var buf [PageSize]byte
	end := PageSize
	for _, r := range recs {
		off, _ := p.slot(r.slot)
		end -= r.length
		copy(buf[end:end+r.length], p.Data[off:off+r.length])
		p.setSlot(r.slot, end, r.length)
	}
	copy(p.Data[end:], buf[end:])
	p.setFreeEnd(end)
}

// LiveRecords counts non-dead slots.
func (p *Page) LiveRecords() int {
	n := 0
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off != deadSlot {
			n++
		}
	}
	return n
}

// RID identifies a record: (page, slot).
type RID struct {
	Page PageID
	Slot uint16
}

// Pack encodes the RID as a uint64 for index payloads.
func (r RID) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// UnpackRID decodes a packed RID.
func UnpackRID(v uint64) RID {
	return RID{Page: PageID(v >> 16), Slot: uint16(v & 0xFFFF)}
}

// String renders the RID.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }
