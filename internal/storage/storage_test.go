package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestSlottedPageBasics(t *testing.T) {
	var p Page
	p.InitSlotted()
	if p.NumSlots() != 0 || p.LiveRecords() != 0 {
		t.Fatal("fresh page not empty")
	}
	s1, err := p.InsertRecord([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.InsertRecord([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Record(s1)) != "hello" || string(p.Record(s2)) != "world!" {
		t.Error("record retrieval")
	}
	if p.Record(99) != nil || p.Record(-1) != nil {
		t.Error("out-of-range should be nil")
	}
	if err := p.DeleteRecord(s1); err != nil {
		t.Fatal(err)
	}
	if p.Record(s1) != nil {
		t.Error("deleted record still visible")
	}
	if err := p.DeleteRecord(s1); err == nil {
		t.Error("double delete should fail")
	}
	if p.LiveRecords() != 1 {
		t.Errorf("live = %d", p.LiveRecords())
	}
	// Dead slot is reused.
	s3, err := p.InsertRecord([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Errorf("dead slot not reused: got %d want %d", s3, s1)
	}
}

func TestSlottedPageFull(t *testing.T) {
	var p Page
	p.InitSlotted()
	rec := make([]byte, 100)
	n := 0
	for {
		if _, err := p.InsertRecord(rec); err != nil {
			break
		}
		n++
	}
	if n < 35 || n > 40 { // 4096/104-ish
		t.Errorf("inserted %d 100-byte records", n)
	}
	if p.FreeSpace() >= 100 {
		t.Error("free space after fill")
	}
}

func TestSlottedPageUpdate(t *testing.T) {
	var p Page
	p.InitSlotted()
	s, _ := p.InsertRecord([]byte("aaaa"))
	// Shrink in place.
	if err := p.UpdateRecord(s, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	if string(p.Record(s)) != "bb" {
		t.Error("in-place shrink")
	}
	// Grow within page.
	if err := p.UpdateRecord(s, bytes.Repeat([]byte("c"), 500)); err != nil {
		t.Fatal(err)
	}
	if len(p.Record(s)) != 500 {
		t.Error("grow")
	}
	if err := p.UpdateRecord(99, []byte("x")); err == nil {
		t.Error("update invalid slot")
	}
	// Fill the page then try to grow: must return ErrPageFull.
	for {
		if _, err := p.InsertRecord(make([]byte, 200)); err != nil {
			break
		}
	}
	if err := p.UpdateRecord(s, make([]byte, 3000)); err != ErrPageFull {
		t.Errorf("want ErrPageFull, got %v", err)
	}
}

func TestSlottedPageCompact(t *testing.T) {
	var p Page
	p.InitSlotted()
	var slots []int
	for i := 0; i < 10; i++ {
		s, err := p.InsertRecord([]byte(fmt.Sprintf("record-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i := 0; i < 10; i += 2 {
		p.DeleteRecord(slots[i])
	}
	before := p.FreeSpace()
	p.Compact()
	if p.FreeSpace() <= before {
		t.Error("compact did not reclaim space")
	}
	for i := 1; i < 10; i += 2 {
		want := fmt.Sprintf("record-%02d", i)
		if string(p.Record(slots[i])) != want {
			t.Errorf("slot %d = %q, want %q", slots[i], p.Record(slots[i]), want)
		}
	}
}

func TestRIDPack(t *testing.T) {
	r := RID{Page: 123456, Slot: 789}
	if UnpackRID(r.Pack()) != r {
		t.Error("RID pack roundtrip")
	}
	if r.String() != "(123456,789)" {
		t.Errorf("RID string = %s", r)
	}
}

func TestQuickRIDPack(t *testing.T) {
	f := func(page uint32, slot uint16) bool {
		r := RID{Page: PageID(page), Slot: slot}
		return UnpackRID(r.Pack()) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemDiskManager(t *testing.T) {
	d := NewMem()
	id, err := d.AllocatePage()
	if err != nil || id != 0 {
		t.Fatalf("alloc: %v %v", id, err)
	}
	buf := make([]byte, PageSize)
	buf[0] = 42
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	if err := d.ReadPage(id, out); err != nil || out[0] != 42 {
		t.Fatal("read back")
	}
	if err := d.ReadPage(5, out); err == nil {
		t.Error("unallocated read should fail")
	}
	if err := d.WritePage(5, buf); err == nil {
		t.Error("unallocated write should fail")
	}
	r, w := d.IOCounts()
	if r != 1 || w != 1 {
		t.Errorf("io counts = %d, %d", r, w)
	}
	if d.NumPages() != 1 {
		t.Error("NumPages")
	}
	if d.Sync() != nil || d.Close() != nil {
		t.Error("sync/close")
	}
}

func TestFileDiskManager(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	d, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	copy(buf, "persistent data")
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify.
	d2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 1 {
		t.Fatalf("pages after reopen = %d", d2.NumPages())
	}
	out := make([]byte, PageSize)
	if err := d2.ReadPage(id, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, []byte("persistent data")) {
		t.Error("data lost across reopen")
	}
	if err := d2.ReadPage(9, out); err == nil {
		t.Error("unallocated read should fail")
	}
	// Torn file detection.
	if err := os.WriteFile(filepath.Join(dir, "torn.db"), []byte("xyz"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(filepath.Join(dir, "torn.db")); err == nil {
		t.Error("torn file should fail to open")
	}
}

func TestBufferPoolHitMissEvict(t *testing.T) {
	d := NewMem()
	bp := NewBufferPool(d, 2)
	p1, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p1.InitSlotted()
	p1.InsertRecord([]byte("one"))
	id1 := p1.ID
	bp.Unpin(id1, true)

	p2, _ := bp.NewPage()
	p2.InitSlotted()
	id2 := p2.ID
	bp.Unpin(id2, true)

	// Third page evicts LRU (id1, dirty -> flushed).
	p3, _ := bp.NewPage()
	id3 := p3.ID
	bp.Unpin(id3, true)

	st := bp.Stats()
	if st.Evictions != 1 || st.Flushes != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Re-fetch id1: must come back from disk with its record intact.
	p1b, err := bp.FetchPage(id1)
	if err != nil {
		t.Fatal(err)
	}
	if string(p1b.Record(0)) != "one" {
		t.Error("flushed page lost data")
	}
	bp.Unpin(id1, false)
	st = bp.Stats()
	if st.Misses < 1 {
		t.Errorf("misses = %d", st.Misses)
	}
	// Hit path.
	if _, err := bp.FetchPage(id1); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id1, false)
	if bp.Stats().Hits < 1 {
		t.Error("no hits recorded")
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	bp := NewBufferPool(NewMem(), 1)
	p, _ := bp.NewPage()
	_ = p
	if _, err := bp.NewPage(); err == nil {
		t.Error("pool with all frames pinned should fail")
	}
}

func TestBufferPoolUnpinErrors(t *testing.T) {
	bp := NewBufferPool(NewMem(), 2)
	if err := bp.Unpin(99, false); err == nil {
		t.Error("unpin uncached")
	}
	p, _ := bp.NewPage()
	bp.Unpin(p.ID, false)
	if err := bp.Unpin(p.ID, false); err == nil {
		t.Error("unpin unpinned")
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	d := NewMem()
	bp := NewBufferPool(d, 4)
	p, _ := bp.NewPage()
	p.InitSlotted()
	p.InsertRecord([]byte("flush me"))
	bp.Unpin(p.ID, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Read raw from disk.
	buf := make([]byte, PageSize)
	if err := d.ReadPage(p.ID, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf, []byte("flush me")) {
		t.Error("FlushAll did not persist")
	}
}

func TestHeapInsertGetDelete(t *testing.T) {
	bp := NewBufferPool(NewMem(), 8)
	h, err := CreateHeap(bp)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := h.Insert([]byte("record one"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil || string(got) != "record one" {
		t.Fatalf("get = %q, %v", got, err)
	}
	if h.Count() != 1 {
		t.Error("count")
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err == nil {
		t.Error("get after delete should fail")
	}
	if h.Count() != 0 {
		t.Error("count after delete")
	}
	if _, err := h.Insert(make([]byte, PageSize)); err == nil {
		t.Error("oversized record should fail")
	}
}

func TestHeapGrowsAcrossPages(t *testing.T) {
	bp := NewBufferPool(NewMem(), 16)
	h, _ := CreateHeap(bp)
	rec := make([]byte, 500)
	var rids []RID
	for i := 0; i < 50; i++ { // ~7 per page -> ~8 pages
		rec[0] = byte(i)
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pages, err := h.Pages()
	if err != nil {
		t.Fatal(err)
	}
	if pages < 5 {
		t.Errorf("pages = %d, expected growth", pages)
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	// Scan sees all 50 in order of pages.
	n := 0
	if err := h.Scan(func(rid RID, rec []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("scan saw %d", n)
	}
	// Early stop.
	n = 0
	h.Scan(func(RID, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop saw %d", n)
	}
}

func TestHeapUpdate(t *testing.T) {
	bp := NewBufferPool(NewMem(), 8)
	h, _ := CreateHeap(bp)
	rid, _ := h.Insert([]byte("short"))
	// In-place update.
	nrid, err := h.Update(rid, []byte("tiny"))
	if err != nil || nrid != rid {
		t.Fatalf("in-place update: %v %v", nrid, err)
	}
	got, _ := h.Get(rid)
	if string(got) != "tiny" {
		t.Error("update content")
	}
	// Force relocation: fill the page, then grow the record.
	for {
		p, _ := bp.FetchPage(rid.Page)
		free := p.FreeSpace()
		bp.Unpin(rid.Page, false)
		if free < 300 {
			break
		}
		h.Insert(make([]byte, 250))
	}
	big := bytes.Repeat([]byte("z"), 3000)
	nrid, err = h.Update(rid, big)
	if err != nil {
		t.Fatal(err)
	}
	if nrid == rid {
		t.Error("expected relocation")
	}
	got, _ = h.Get(nrid)
	if !bytes.Equal(got, big) {
		t.Error("relocated content")
	}
	if h.Count() == 0 {
		t.Error("count after relocation")
	}
}

func TestHeapReopen(t *testing.T) {
	d := NewMem()
	bp := NewBufferPool(d, 8)
	h, _ := CreateHeap(bp)
	var keep RID
	for i := 0; i < 20; i++ {
		rid, _ := h.Insert([]byte(fmt.Sprintf("row %d", i)))
		if i == 7 {
			keep = rid
		}
	}
	h.Delete(keep)
	bp.FlushAll()

	bp2 := NewBufferPool(d, 8)
	h2, err := OpenHeap(bp2, h.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	if h2.Count() != 19 {
		t.Errorf("reopened count = %d", h2.Count())
	}
	// Inserts continue at the tail.
	if _, err := h2.Insert([]byte("after reopen")); err != nil {
		t.Fatal(err)
	}
	if h2.Count() != 20 {
		t.Error("count after reopen insert")
	}
}

func TestHeapRandomChurn(t *testing.T) {
	bp := NewBufferPool(NewMem(), 32)
	h, _ := CreateHeap(bp)
	rng := rand.New(rand.NewSource(11))
	live := make(map[RID][]byte)
	var order []RID
	for step := 0; step < 2000; step++ {
		switch {
		case len(order) == 0 || rng.Intn(3) > 0:
			rec := make([]byte, 10+rng.Intn(200))
			rng.Read(rec)
			rid, err := h.Insert(rec)
			if err != nil {
				t.Fatal(err)
			}
			live[rid] = rec
			order = append(order, rid)
		default:
			i := rng.Intn(len(order))
			rid := order[i]
			order = append(order[:i], order[i+1:]...)
			if err := h.Delete(rid); err != nil {
				t.Fatal(err)
			}
			delete(live, rid)
		}
	}
	if h.Count() != len(live) {
		t.Fatalf("count %d != live %d", h.Count(), len(live))
	}
	seen := 0
	err := h.Scan(func(rid RID, rec []byte) bool {
		want, ok := live[rid]
		if !ok {
			t.Fatalf("scan found dead rid %s", rid)
		}
		if !bytes.Equal(rec, want) {
			t.Fatalf("content mismatch at %s", rid)
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(live) {
		t.Errorf("scan saw %d of %d", seen, len(live))
	}
}

func TestBufferPoolSmallCapacityWorkload(t *testing.T) {
	// A heap bigger than the pool still works (pages cycle through).
	bp := NewBufferPool(NewMem(), 2)
	h, _ := CreateHeap(bp)
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := h.Insert(bytes.Repeat([]byte{byte(i)}, 300))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if bp.Stats().Evictions == 0 {
		t.Error("expected evictions with tiny pool")
	}
}
