package storage_test

// Error-propagation tests through the buffer pool and heap layers,
// driven by the shared fault-injection harness (internal/faults), which
// replaced the ad-hoc faultDisk these tests originally carried.

import (
	"testing"

	"triggerman/internal/faults"
	"triggerman/internal/storage"
)

func TestBufferPoolReadFaultPropagates(t *testing.T) {
	fd := faults.NewDisk(storage.NewMem(), 1)
	bp := storage.NewBufferPool(fd, 2)
	p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID
	bp.Unpin(id, true)
	// Evict it by allocating past capacity.
	p2, _ := bp.NewPage()
	bp.Unpin(p2.ID, true)
	p3, _ := bp.NewPage()
	bp.Unpin(p3.ID, true)

	fd.SetFailReads(true)
	if _, err := bp.FetchPage(id); err == nil {
		t.Error("read fault should propagate through FetchPage")
	}
	fd.SetFailReads(false)
	if _, err := bp.FetchPage(id); err != nil {
		t.Errorf("recovery after fault: %v", err)
	}
	bp.Unpin(id, false)
}

func TestBufferPoolWriteFaultOnEviction(t *testing.T) {
	fd := faults.NewDisk(storage.NewMem(), 1)
	bp := storage.NewBufferPool(fd, 1)
	p, _ := bp.NewPage()
	p.InitSlotted()
	p.InsertRecord([]byte("dirty"))
	bp.Unpin(p.ID, true)

	fd.SetFailWrites(true)
	// Evicting the dirty page must fail, not lose the data silently.
	if _, err := bp.NewPage(); err == nil {
		t.Error("dirty eviction with write fault should fail")
	}
	if err := bp.FlushAll(); err == nil {
		t.Error("FlushAll with write fault should fail")
	}
	fd.SetFailWrites(false)
	if err := bp.FlushAll(); err != nil {
		t.Errorf("flush after recovery: %v", err)
	}
}

func TestHeapAllocFaultPropagates(t *testing.T) {
	fd := faults.NewDisk(storage.NewMem(), 1)
	bp := storage.NewBufferPool(fd, 8)
	h, err := storage.CreateHeap(bp)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the first page, then make chain growth fail.
	big := make([]byte, 1000)
	for i := 0; i < 4; i++ {
		if _, err := h.Insert(big); err != nil {
			t.Fatal(err)
		}
	}
	fd.SetFailAllocs(true)
	if _, err := h.Insert(big); err == nil {
		t.Error("chain growth with alloc fault should fail")
	}
	fd.SetFailAllocs(false)
	if _, err := h.Insert(big); err != nil {
		t.Errorf("insert after recovery: %v", err)
	}
	// Count stayed consistent through the failure.
	n := 0
	h.Scan(func(storage.RID, []byte) bool { n++; return true })
	if n != h.Count() {
		t.Errorf("scan %d != count %d after fault", n, h.Count())
	}
}

func TestCreateHeapAllocFault(t *testing.T) {
	fd := faults.NewDisk(storage.NewMem(), 1)
	fd.SetFailAllocs(true)
	bp := storage.NewBufferPool(fd, 4)
	if _, err := storage.CreateHeap(bp); err == nil {
		t.Error("CreateHeap with alloc fault should fail")
	}
}

func TestOpenHeapReadFault(t *testing.T) {
	fd := faults.NewDisk(storage.NewMem(), 1)
	bp := storage.NewBufferPool(fd, 4)
	h, _ := storage.CreateHeap(bp)
	h.Insert([]byte("x"))
	bp.FlushAll()

	fd.SetFailReads(true)
	bp2 := storage.NewBufferPool(fd, 4)
	if _, err := storage.OpenHeap(bp2, h.FirstPage()); err == nil {
		t.Error("OpenHeap with read fault should fail")
	}
}
