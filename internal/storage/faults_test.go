package storage

import (
	"fmt"
	"testing"
)

// faultDisk wraps a DiskManager and fails operations on command,
// exercising error propagation through the buffer pool and heap layers.
type faultDisk struct {
	inner                             DiskManager
	failReads, failWrites, failAllocs bool
}

func (d *faultDisk) ReadPage(id PageID, buf []byte) error {
	if d.failReads {
		return fmt.Errorf("injected read fault on page %d", id)
	}
	return d.inner.ReadPage(id, buf)
}
func (d *faultDisk) WritePage(id PageID, buf []byte) error {
	if d.failWrites {
		return fmt.Errorf("injected write fault on page %d", id)
	}
	return d.inner.WritePage(id, buf)
}
func (d *faultDisk) AllocatePage() (PageID, error) {
	if d.failAllocs {
		return InvalidPageID, fmt.Errorf("injected allocation fault")
	}
	return d.inner.AllocatePage()
}
func (d *faultDisk) NumPages() int { return d.inner.NumPages() }
func (d *faultDisk) Sync() error   { return d.inner.Sync() }
func (d *faultDisk) Close() error  { return d.inner.Close() }

func TestBufferPoolReadFaultPropagates(t *testing.T) {
	fd := &faultDisk{inner: NewMem()}
	bp := NewBufferPool(fd, 2)
	p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID
	bp.Unpin(id, true)
	// Evict it by allocating past capacity.
	p2, _ := bp.NewPage()
	bp.Unpin(p2.ID, true)
	p3, _ := bp.NewPage()
	bp.Unpin(p3.ID, true)

	fd.failReads = true
	if _, err := bp.FetchPage(id); err == nil {
		t.Error("read fault should propagate through FetchPage")
	}
	fd.failReads = false
	if _, err := bp.FetchPage(id); err != nil {
		t.Errorf("recovery after fault: %v", err)
	}
	bp.Unpin(id, false)
}

func TestBufferPoolWriteFaultOnEviction(t *testing.T) {
	fd := &faultDisk{inner: NewMem()}
	bp := NewBufferPool(fd, 1)
	p, _ := bp.NewPage()
	p.InitSlotted()
	p.InsertRecord([]byte("dirty"))
	bp.Unpin(p.ID, true)

	fd.failWrites = true
	// Evicting the dirty page must fail, not lose the data silently.
	if _, err := bp.NewPage(); err == nil {
		t.Error("dirty eviction with write fault should fail")
	}
	if err := bp.FlushAll(); err == nil {
		t.Error("FlushAll with write fault should fail")
	}
	fd.failWrites = false
	if err := bp.FlushAll(); err != nil {
		t.Errorf("flush after recovery: %v", err)
	}
}

func TestHeapAllocFaultPropagates(t *testing.T) {
	fd := &faultDisk{inner: NewMem()}
	bp := NewBufferPool(fd, 8)
	h, err := CreateHeap(bp)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the first page, then make chain growth fail.
	big := make([]byte, 1000)
	for i := 0; i < 4; i++ {
		if _, err := h.Insert(big); err != nil {
			t.Fatal(err)
		}
	}
	fd.failAllocs = true
	if _, err := h.Insert(big); err == nil {
		t.Error("chain growth with alloc fault should fail")
	}
	fd.failAllocs = false
	if _, err := h.Insert(big); err != nil {
		t.Errorf("insert after recovery: %v", err)
	}
	// Count stayed consistent through the failure.
	n := 0
	h.Scan(func(RID, []byte) bool { n++; return true })
	if n != h.Count() {
		t.Errorf("scan %d != count %d after fault", n, h.Count())
	}
}

func TestCreateHeapAllocFault(t *testing.T) {
	fd := &faultDisk{inner: NewMem(), failAllocs: true}
	bp := NewBufferPool(fd, 4)
	if _, err := CreateHeap(bp); err == nil {
		t.Error("CreateHeap with alloc fault should fail")
	}
}

func TestOpenHeapReadFault(t *testing.T) {
	fd := &faultDisk{inner: NewMem()}
	bp := NewBufferPool(fd, 4)
	h, _ := CreateHeap(bp)
	h.Insert([]byte("x"))
	bp.FlushAll()

	fd.failReads = true
	bp2 := NewBufferPool(fd, 4)
	if _, err := OpenHeap(bp2, h.FirstPage()); err == nil {
		t.Error("OpenHeap with read fault should fail")
	}
}
