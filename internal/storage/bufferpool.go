package storage

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"triggerman/internal/metrics"
)

// BufferPool caches pages in a bounded set of frames with LRU
// replacement and pin counting — the same discipline the paper's trigger
// cache borrows ("analogous to the pin operation in a traditional buffer
// pool", §5.4).
type BufferPool struct {
	mu     sync.Mutex
	disk   DiskManager
	cap    int
	frames map[PageID]*frame
	lru    *list.List // front = most recent; holds unpinned page IDs

	stats PoolStats

	// I/O latency histograms (nil until SetMetrics).
	readHist, writeHist *metrics.Histogram
}

// PoolStats counts buffer pool activity for experiments.
type PoolStats struct {
	Hits, Misses, Evictions, Flushes int
}

type frame struct {
	page  *Page
	pins  int
	dirty bool
	lruEl *list.Element // non-nil only while unpinned
}

// NewBufferPool builds a pool of capacity frames over disk. Capacity
// must be at least 1.
func NewBufferPool(disk DiskManager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:   disk,
		cap:    capacity,
		frames: make(map[PageID]*frame, capacity),
		lru:    list.New(),
	}
}

// Disk exposes the underlying disk manager (benchmarks read I/O counts).
func (bp *BufferPool) Disk() DiskManager { return bp.disk }

// SetMetrics registers the pool's I/O latency histograms with reg.
// Call before concurrent use (Open does, right after construction).
func (bp *BufferPool) SetMetrics(reg *metrics.Registry) {
	bp.readHist = reg.Histogram("tman_io_duration_seconds",
		"disk manager page I/O latency", nil, metrics.L("op", "read"))
	bp.writeHist = reg.Histogram("tman_io_duration_seconds",
		"disk manager page I/O latency", nil, metrics.L("op", "write"))
}

// readPage is disk.ReadPage with latency recording.
func (bp *BufferPool) readPage(id PageID, buf []byte) error {
	if bp.readHist == nil {
		return bp.disk.ReadPage(id, buf)
	}
	begin := time.Now()
	err := bp.disk.ReadPage(id, buf)
	bp.readHist.Observe(time.Since(begin))
	return err
}

// writePage is disk.WritePage with latency recording.
func (bp *BufferPool) writePage(id PageID, buf []byte) error {
	if bp.writeHist == nil {
		return bp.disk.WritePage(id, buf)
	}
	begin := time.Now()
	err := bp.disk.WritePage(id, buf)
	bp.writeHist.Observe(time.Since(begin))
	return err
}

// Stats returns a snapshot of pool counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// FetchPage pins page id and returns it, reading from disk on a miss.
// Callers must Unpin when done.
func (bp *BufferPool) FetchPage(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.pinLocked(id, fr)
		return fr.page, nil
	}
	bp.stats.Misses++
	fr, err := bp.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	if err := bp.readPage(id, fr.page.Data[:]); err != nil {
		delete(bp.frames, id)
		return nil, err
	}
	return fr.page, nil
}

// NewPage allocates a fresh page on disk, pins it, and returns it
// zero-filled. Callers must Unpin when done.
func (bp *BufferPool) NewPage() (*Page, error) {
	id, err := bp.disk.AllocatePage()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, err := bp.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	fr.dirty = true
	return fr.page, nil
}

func (bp *BufferPool) pinLocked(id PageID, fr *frame) {
	fr.pins++
	if fr.lruEl != nil {
		bp.lru.Remove(fr.lruEl)
		fr.lruEl = nil
	}
}

// allocFrameLocked finds a free frame (evicting if needed), installs an
// empty pinned frame for id, and returns it.
func (bp *BufferPool) allocFrameLocked(id PageID) (*frame, error) {
	if len(bp.frames) >= bp.cap {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	fr := &frame{page: &Page{ID: id}, pins: 1}
	bp.frames[id] = fr
	return fr, nil
}

func (bp *BufferPool) evictLocked() error {
	el := bp.lru.Back()
	if el == nil {
		return fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned)", bp.cap)
	}
	victim := el.Value.(PageID)
	fr := bp.frames[victim]
	if fr.dirty {
		if err := bp.writePage(victim, fr.page.Data[:]); err != nil {
			return err
		}
		bp.stats.Flushes++
	}
	bp.lru.Remove(el)
	delete(bp.frames, victim)
	bp.stats.Evictions++
	return nil
}

// Unpin releases one pin on page id, marking it dirty when the caller
// modified it. The page becomes evictable when its pin count reaches 0.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: unpin of uncached page %d", id)
	}
	if fr.pins <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
	if fr.pins == 0 {
		fr.lruEl = bp.lru.PushFront(id)
	}
	return nil
}

// FlushPage writes one page to disk if it is cached and dirty, then
// syncs the disk manager — the durability primitive for write-ahead
// semantics on the persistent update queue.
func (bp *BufferPool) FlushPage(id PageID) error {
	bp.mu.Lock()
	fr, ok := bp.frames[id]
	if ok && fr.dirty {
		if err := bp.writePage(id, fr.page.Data[:]); err != nil {
			bp.mu.Unlock()
			return err
		}
		fr.dirty = false
		bp.stats.Flushes++
	}
	bp.mu.Unlock()
	return bp.disk.Sync()
}

// WriteBack writes one cached dirty page to the disk manager without
// syncing. Group commit uses it to write a round's pages back to back
// and pay a single Sync for all of them; callers that need durability
// must sync the disk manager afterwards.
func (bp *BufferPool) WriteBack(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || !fr.dirty {
		return nil
	}
	if err := bp.writePage(id, fr.page.Data[:]); err != nil {
		return err
	}
	fr.dirty = false
	bp.stats.Flushes++
	return nil
}

// FlushAll writes every dirty cached page to disk.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, fr := range bp.frames {
		if fr.dirty {
			if err := bp.writePage(id, fr.page.Data[:]); err != nil {
				return err
			}
			fr.dirty = false
			bp.stats.Flushes++
		}
	}
	return bp.disk.Sync()
}

// Cached reports the number of resident frames (for tests).
func (bp *BufferPool) Cached() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
