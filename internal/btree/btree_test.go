package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"triggerman/internal/storage"
	"triggerman/internal/types"
)

func newTree(t testing.TB) *BTree {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMem(), 256)
	tr, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func intKey(v int64) []byte {
	return types.EncodeKey(nil, types.Tuple{types.NewInt(v)})
}

func TestInsertLookupSmall(t *testing.T) {
	tr := newTree(t)
	for i := int64(0); i < 10; i++ {
		added, err := tr.Insert(intKey(i), uint64(i*100))
		if err != nil || !added {
			t.Fatalf("insert %d: %v %v", i, added, err)
		}
	}
	if tr.Len() != 10 {
		t.Errorf("len = %d", tr.Len())
	}
	vals, err := tr.Lookup(intKey(7))
	if err != nil || len(vals) != 1 || vals[0] != 700 {
		t.Errorf("lookup 7 = %v, %v", vals, err)
	}
	vals, _ = tr.Lookup(intKey(99))
	if len(vals) != 0 {
		t.Errorf("missing key returned %v", vals)
	}
}

func TestInsertDuplicatePairsNoOp(t *testing.T) {
	tr := newTree(t)
	added, _ := tr.Insert(intKey(1), 5)
	if !added {
		t.Fatal("first insert")
	}
	added, _ = tr.Insert(intKey(1), 5)
	if added {
		t.Error("duplicate pair should be a no-op")
	}
	if tr.Len() != 1 {
		t.Errorf("len = %d", tr.Len())
	}
	// Same key, different value is a new entry.
	added, _ = tr.Insert(intKey(1), 6)
	if !added || tr.Len() != 2 {
		t.Error("duplicate key distinct value should insert")
	}
	vals, _ := tr.Lookup(intKey(1))
	if len(vals) != 2 || vals[0] != 5 || vals[1] != 6 {
		t.Errorf("lookup = %v", vals)
	}
}

func TestSplitsAndOrder(t *testing.T) {
	tr := newTree(t)
	const n = 5000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, v := range perm {
		if _, err := tr.Insert(intKey(int64(v)), uint64(v)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Errorf("height = %d, expected splits", h)
	}
	// Full scan must be sorted and complete.
	var got []uint64
	var prevKey []byte
	err = tr.ScanAll(func(k []byte, v uint64) bool {
		if prevKey != nil && bytes.Compare(prevKey, k) > 0 {
			t.Fatalf("out of order at %d", v)
		}
		prevKey = append(prevKey[:0], k...)
		got = append(got, v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scan saw %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("position %d = %d", i, v)
		}
	}
	// Point lookups for every key.
	for i := 0; i < n; i += 97 {
		vals, err := tr.Lookup(intKey(int64(i)))
		if err != nil || len(vals) != 1 || vals[0] != uint64(i) {
			t.Fatalf("lookup %d = %v, %v", i, vals, err)
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr := newTree(t)
	for i := int64(0); i < 1000; i += 2 { // even numbers
		tr.Insert(intKey(i), uint64(i))
	}
	// Scan from 501: first hit is 502.
	var first uint64 = 0xFFFF
	count := 0
	tr.Scan(intKey(501), func(k []byte, v uint64) bool {
		if first == 0xFFFF {
			first = v
		}
		count++
		return true
	})
	if first != 502 {
		t.Errorf("first = %d", first)
	}
	if count != (1000-502)/2 {
		t.Errorf("count = %d", count)
	}
	// Early termination.
	count = 0
	tr.Scan(nil, func(k []byte, v uint64) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early stop count = %d", count)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t)
	for i := int64(0); i < 500; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	ok, err := tr.Delete(intKey(250), 250)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if ok, _ := tr.Delete(intKey(250), 250); ok {
		t.Error("double delete should be false")
	}
	if ok, _ := tr.Delete(intKey(9999), 1); ok {
		t.Error("deleting missing key should be false")
	}
	if tr.Len() != 499 {
		t.Errorf("len = %d", tr.Len())
	}
	vals, _ := tr.Lookup(intKey(250))
	if len(vals) != 0 {
		t.Errorf("deleted key still found: %v", vals)
	}
	// Delete one value of a duplicate set.
	tr.Insert(intKey(100), 1000)
	tr.Insert(intKey(100), 2000)
	tr.Delete(intKey(100), 1000)
	vals, _ = tr.Lookup(intKey(100))
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if len(vals) != 2 || vals[0] != 100 || vals[1] != 2000 {
		t.Errorf("after partial delete: %v", vals)
	}
}

func TestContains(t *testing.T) {
	tr := newTree(t)
	tr.Insert(intKey(5), 50)
	if ok, _ := tr.Contains(intKey(5), 50); !ok {
		t.Error("contains existing")
	}
	if ok, _ := tr.Contains(intKey(5), 51); ok {
		t.Error("contains wrong value")
	}
	if ok, _ := tr.Contains(intKey(6), 50); ok {
		t.Error("contains wrong key")
	}
}

func TestVariableLengthStringKeys(t *testing.T) {
	tr := newTree(t)
	words := []string{}
	for i := 0; i < 2000; i++ {
		words = append(words, fmt.Sprintf("key-%06d-%s", i, string(bytes.Repeat([]byte{'x'}, i%40))))
	}
	rand.New(rand.NewSource(9)).Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })
	for i, w := range words {
		key := types.EncodeKey(nil, types.Tuple{types.NewString(w)})
		if _, err := tr.Insert(key, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(words)
	i := 0
	tr.ScanAll(func(k []byte, v uint64) bool {
		i++
		return true
	})
	if i != len(words) {
		t.Errorf("scan saw %d of %d", i, len(words))
	}
	for _, w := range []string{words[0], words[500], words[1999]} {
		key := types.EncodeKey(nil, types.Tuple{types.NewString(w)})
		vals, err := tr.Lookup(key)
		if err != nil || len(vals) != 1 {
			t.Fatalf("lookup %q = %v, %v", w, vals, err)
		}
	}
}

func TestKeyTooLarge(t *testing.T) {
	tr := newTree(t)
	if _, err := tr.Insert(make([]byte, MaxKeySize+1), 0); err == nil {
		t.Error("oversize key should fail")
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	disk := storage.NewMem()
	bp := storage.NewBufferPool(disk, 64)
	tr, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		tr.Insert(intKey(i), uint64(i))
	}
	meta := tr.MetaPage()
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Fresh pool, same disk.
	bp2 := storage.NewBufferPool(disk, 64)
	tr2, err := Open(bp2, meta)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 1000 {
		t.Errorf("reopened len = %d", tr2.Len())
	}
	vals, err := tr2.Lookup(intKey(777))
	if err != nil || len(vals) != 1 || vals[0] != 777 {
		t.Errorf("reopened lookup = %v, %v", vals, err)
	}
	// Continue inserting after reopen.
	if _, err := tr2.Insert(intKey(5000), 5000); err != nil {
		t.Fatal(err)
	}
}

func TestHeavyDuplicateKeys(t *testing.T) {
	// One key, thousands of values — the Figure 5 shape (same condition,
	// many triggers).
	tr := newTree(t)
	key := types.EncodeKey(nil, types.Tuple{types.NewString("PENDING")})
	const n = 3000
	for i := 0; i < n; i++ {
		added, err := tr.Insert(key, uint64(i))
		if err != nil || !added {
			t.Fatalf("insert %d: %v %v", i, added, err)
		}
	}
	vals, err := tr.Lookup(key)
	if err != nil || len(vals) != n {
		t.Fatalf("lookup = %d values, %v", len(vals), err)
	}
	for i, v := range vals {
		if v != uint64(i) {
			t.Fatalf("value order broken at %d: %d", i, v)
		}
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	tr := newTree(t)
	rng := rand.New(rand.NewSource(21))
	model := make(map[string]map[uint64]bool)
	keyOf := func(i int) []byte { return intKey(int64(i % 200)) }
	for step := 0; step < 5000; step++ {
		i := rng.Intn(200)
		k := keyOf(i)
		v := uint64(rng.Intn(20))
		ks := string(k)
		switch rng.Intn(3) {
		case 0, 1:
			added, err := tr.Insert(k, v)
			if err != nil {
				t.Fatal(err)
			}
			if model[ks] == nil {
				model[ks] = make(map[uint64]bool)
			}
			if added == model[ks][v] {
				t.Fatalf("step %d: added=%v but model has=%v", step, added, model[ks][v])
			}
			model[ks][v] = true
		case 2:
			ok, err := tr.Delete(k, v)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (model[ks] != nil && model[ks][v]) {
				t.Fatalf("step %d: delete=%v model=%v", step, ok, model[ks][v])
			}
			if model[ks] != nil {
				delete(model[ks], v)
			}
		}
	}
	total := 0
	for _, vs := range model {
		total += len(vs)
	}
	if tr.Len() != total {
		t.Fatalf("len %d != model %d", tr.Len(), total)
	}
	// Verify every model entry via Contains.
	for ks, vs := range model {
		for v := range vs {
			if ok, _ := tr.Contains([]byte(ks), v); !ok {
				t.Fatalf("missing (%x, %d)", ks, v)
			}
		}
	}
}

func TestCompositeKeyRange(t *testing.T) {
	// Composite keys (dept, salary) as in the clustered constant table.
	tr := newTree(t)
	depts := []string{"eng", "ops", "sales"}
	for _, d := range depts {
		for s := int64(0); s < 100; s += 10 {
			key := types.EncodeKey(nil, types.Tuple{types.NewString(d), types.NewInt(s)})
			tr.Insert(key, uint64(s))
		}
	}
	// Prefix scan over "ops": start at ("ops", minimal) and stop when the
	// prefix changes.
	prefix := types.EncodeKey(nil, types.Tuple{types.NewString("ops")})
	count := 0
	tr.Scan(prefix, func(k []byte, v uint64) bool {
		if !bytes.HasPrefix(k, prefix) {
			return false
		}
		count++
		return true
	})
	if count != 10 {
		t.Errorf("prefix scan saw %d", count)
	}
}

func TestBigEndianValueOrdering(t *testing.T) {
	// Values under the same key must come back in ascending value order.
	tr := newTree(t)
	k := intKey(1)
	for _, v := range []uint64{5, 1, 9, 3} {
		tr.Insert(k, v)
	}
	vals, _ := tr.Lookup(k)
	want := []uint64{1, 3, 5, 9}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v", vals)
		}
	}
	_ = binary.LittleEndian // silence potential unused import on edits
}
