// Package btree implements a disk-backed B+tree over the storage
// engine's buffer pool. It provides the clustered composite-key index
// the paper puts on constant tables ("a clustered index on
// [const1, ... constK] as a composite key", §5.1), and the secondary
// indexes used by the mini-SQL executor.
//
// Keys are arbitrary byte strings compared lexicographically (the types
// package's EncodeKey produces order-preserving encodings of tuples);
// values are uint64 payloads (packed RIDs or trigger IDs). Duplicate
// keys are allowed: entries are ordered by (key, value), so exact-pair
// deletion is supported. Deletion is lazy (no page merging); pages
// emptied by deletes are reused only through fresh inserts, which is the
// standard simplification for append-heavy workloads like trigger
// catalogs.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"triggerman/internal/storage"
)

const (
	nodeLeaf     = 0
	nodeInternal = 1

	// header layout: type(1) pad(1) nKeys(2) freeEnd(2) link(4)
	// leaf link = right sibling; internal link = leftmost child.
	hdrSize = 10

	cellPtrSize = 2

	// MaxKeySize bounds keys so at least 4 cells fit on a page.
	MaxKeySize = 512
)

// BTree is the index handle. All methods are safe for concurrent use
// through a single tree-level mutex (coarse, but the trigger workloads
// are read-mostly and partitioned above this layer).
type BTree struct {
	mu   sync.Mutex
	bp   *storage.BufferPool
	meta storage.PageID
	root storage.PageID
	size int // entry count, cached in meta
}

// Create allocates a new empty tree and returns it. The returned
// MetaPage is the tree's persistent identity.
func Create(bp *storage.BufferPool) (*BTree, error) {
	meta, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	metaID := meta.ID
	rootPage, err := bp.NewPage()
	if err != nil {
		bp.Unpin(metaID, true)
		return nil, err
	}
	initNode(rootPage, nodeLeaf)
	rootID := rootPage.ID
	if err := bp.Unpin(rootID, true); err != nil {
		return nil, err
	}
	t := &BTree{bp: bp, meta: metaID, root: rootID}
	t.writeMeta(meta)
	if err := bp.Unpin(metaID, true); err != nil {
		return nil, err
	}
	return t, nil
}

// Open reattaches to an existing tree by its meta page ID.
func Open(bp *storage.BufferPool, metaID storage.PageID) (*BTree, error) {
	p, err := bp.FetchPage(metaID)
	if err != nil {
		return nil, err
	}
	t := &BTree{bp: bp, meta: metaID}
	t.root = storage.PageID(binary.LittleEndian.Uint32(p.Data[0:]))
	t.size = int(binary.LittleEndian.Uint64(p.Data[4:]))
	return t, bp.Unpin(metaID, false)
}

// MetaPage returns the tree's persistent identity page.
func (t *BTree) MetaPage() storage.PageID { return t.meta }

// Len returns the number of entries.
func (t *BTree) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

func (t *BTree) writeMeta(p *storage.Page) {
	binary.LittleEndian.PutUint32(p.Data[0:], uint32(t.root))
	binary.LittleEndian.PutUint64(p.Data[4:], uint64(t.size))
}

func (t *BTree) syncMeta() error {
	p, err := t.bp.FetchPage(t.meta)
	if err != nil {
		return err
	}
	t.writeMeta(p)
	return t.bp.Unpin(t.meta, true)
}

// --- node accessors (operating on a pinned page) ---

func initNode(p *storage.Page, typ byte) {
	p.Data[0] = typ
	p.Data[1] = 0
	setNKeys(p, 0)
	setFreeEnd(p, storage.PageSize)
	setLink(p, storage.InvalidPageID)
}

func nodeType(p *storage.Page) byte { return p.Data[0] }
func nKeys(p *storage.Page) int     { return int(binary.LittleEndian.Uint16(p.Data[2:])) }
func setNKeys(p *storage.Page, n int) {
	binary.LittleEndian.PutUint16(p.Data[2:], uint16(n))
}
func setFreeEnd(p *storage.Page, n int) {
	// PageSize (4096) itself does not fit a distinct uint16 pattern, so
	// the empty-page value is encoded as 0xFFFF.
	if n == storage.PageSize {
		binary.LittleEndian.PutUint16(p.Data[4:], 0xFFFF)
		return
	}
	binary.LittleEndian.PutUint16(p.Data[4:], uint16(n))
}
func realFreeEnd(p *storage.Page) int {
	v := binary.LittleEndian.Uint16(p.Data[4:])
	if v == 0xFFFF {
		return storage.PageSize
	}
	return int(v)
}
func link(p *storage.Page) storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(p.Data[6:]))
}
func setLink(p *storage.Page, id storage.PageID) {
	binary.LittleEndian.PutUint32(p.Data[6:], uint32(id))
}

func cellPtr(p *storage.Page, i int) int {
	return int(binary.LittleEndian.Uint16(p.Data[hdrSize+i*cellPtrSize:]))
}
func setCellPtr(p *storage.Page, i, off int) {
	binary.LittleEndian.PutUint16(p.Data[hdrSize+i*cellPtrSize:], uint16(off))
}

// leafCell returns (key, value) of leaf cell i.
// Leaf cell layout: klen(2) + key + val(8).
func leafCell(p *storage.Page, i int) (key []byte, val uint64) {
	off := cellPtr(p, i)
	klen := int(binary.LittleEndian.Uint16(p.Data[off:]))
	key = p.Data[off+2 : off+2+klen]
	return key, binary.LittleEndian.Uint64(p.Data[off+2+klen:])
}

// internalCell returns the full separator entry (key, val) and the child
// page holding entries >= that separator.
// Internal cell layout: klen(2) + key + sepVal(8) + child(4).
func internalCell(p *storage.Page, i int) (key []byte, sepVal uint64, child storage.PageID) {
	off := cellPtr(p, i)
	klen := int(binary.LittleEndian.Uint16(p.Data[off:]))
	key = p.Data[off+2 : off+2+klen]
	body := p.Data[off+2+klen:]
	return key, binary.LittleEndian.Uint64(body), storage.PageID(binary.LittleEndian.Uint32(body[8:]))
}

func cellSize(p *storage.Page, key []byte) int {
	if nodeType(p) == nodeLeaf {
		return 2 + len(key) + 8
	}
	return 2 + len(key) + 8 + 4
}

func freeSpace(p *storage.Page) int {
	return realFreeEnd(p) - hdrSize - nKeys(p)*cellPtrSize
}

// insertCellAt writes a cell and splices its pointer at position i.
// For leaves, payload is the value and child is ignored; for internal
// nodes, payload is the separator's value and child the page pointer.
func insertCellAt(p *storage.Page, i int, key []byte, payload uint64, child storage.PageID) {
	size := cellSize(p, key)
	end := realFreeEnd(p)
	off := end - size
	binary.LittleEndian.PutUint16(p.Data[off:], uint16(len(key)))
	copy(p.Data[off+2:], key)
	binary.LittleEndian.PutUint64(p.Data[off+2+len(key):], payload)
	if nodeType(p) != nodeLeaf {
		binary.LittleEndian.PutUint32(p.Data[off+2+len(key)+8:], uint32(child))
	}
	setFreeEnd(p, off)
	n := nKeys(p)
	// shift pointers [i, n) right by one
	base := hdrSize
	copy(p.Data[base+(i+1)*cellPtrSize:base+(n+1)*cellPtrSize],
		p.Data[base+i*cellPtrSize:base+n*cellPtrSize])
	setCellPtr(p, i, off)
	setNKeys(p, n+1)
}

// removeCellAt deletes pointer i (cell space reclaimed on compaction).
func removeCellAt(p *storage.Page, i int) {
	n := nKeys(p)
	base := hdrSize
	copy(p.Data[base+i*cellPtrSize:base+(n-1)*cellPtrSize],
		p.Data[base+(i+1)*cellPtrSize:base+n*cellPtrSize])
	setNKeys(p, n-1)
}

// compactNode rewrites live cells contiguously to reclaim dead space.
func compactNode(p *storage.Page) {
	n := nKeys(p)
	type entry struct {
		key     []byte
		payload uint64
		child   storage.PageID
	}
	entries := make([]entry, n)
	typ := nodeType(p)
	for i := 0; i < n; i++ {
		var e entry
		if typ == nodeLeaf {
			k, v := leafCell(p, i)
			e = entry{append([]byte(nil), k...), v, 0}
		} else {
			k, v, c := internalCell(p, i)
			e = entry{append([]byte(nil), k...), v, c}
		}
		entries[i] = e
	}
	lk := link(p)
	initNode(p, typ)
	setLink(p, lk)
	for i, e := range entries {
		insertCellAt(p, i, e.key, e.payload, e.child)
	}
}

// compareEntry orders (key, val) pairs.
func compareEntry(k1 []byte, v1 uint64, k2 []byte, v2 uint64) int {
	if c := bytes.Compare(k1, k2); c != 0 {
		return c
	}
	switch {
	case v1 < v2:
		return -1
	case v1 > v2:
		return 1
	}
	return 0
}

// leafLowerBound finds the first cell index with (key,val) >= target.
func leafLowerBound(p *storage.Page, key []byte, val uint64) int {
	lo, hi := 0, nKeys(p)
	for lo < hi {
		mid := (lo + hi) / 2
		k, v := leafCell(p, mid)
		if compareEntry(k, v, key, val) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// internalChild picks the child to descend for entry (key, val): the
// child of the last separator <= (key, val), or the leftmost child when
// (key, val) precedes every separator. Separators are full (key, val)
// boundary entries so duplicate keys spanning leaves stay ordered.
func internalChild(p *storage.Page, key []byte, val uint64) storage.PageID {
	lo, hi := 0, nKeys(p)
	for lo < hi {
		mid := (lo + hi) / 2
		k, v, _ := internalCell(p, mid)
		if compareEntry(k, v, key, val) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return link(p)
	}
	_, _, c := internalCell(p, lo-1)
	return c
}

// Insert adds (key, val). Duplicate (key, val) pairs are stored once:
// re-inserting an existing pair is a no-op returning false.
func (t *BTree) Insert(key []byte, val uint64) (bool, error) {
	if len(key) > MaxKeySize {
		return false, fmt.Errorf("btree: key of %d bytes exceeds max %d", len(key), MaxKeySize)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	promoted, newChild, added, err := t.insertRec(t.root, key, val)
	if err != nil {
		return false, err
	}
	if promoted != nil {
		// Root split: new root with old root as leftmost child.
		nr, err := t.bp.NewPage()
		if err != nil {
			return false, err
		}
		initNode(nr, nodeInternal)
		setLink(nr, t.root)
		insertCellAt(nr, 0, promoted.key, promoted.val, newChild)
		t.root = nr.ID
		if err := t.bp.Unpin(nr.ID, true); err != nil {
			return false, err
		}
	}
	if added {
		t.size++
	}
	return added, t.syncMeta()
}

// promotedKey carries a separator entry up after a split: the first
// (key, val) of the new right sibling, so descent can discriminate
// between duplicates of the same key.
type promotedKey struct {
	key []byte
	val uint64
}

// insertRec descends to the leaf, inserts, and splits on the way back
// up. It returns a promoted separator and the new right sibling when the
// node split.
func (t *BTree) insertRec(id storage.PageID, key []byte, val uint64) (*promotedKey, storage.PageID, bool, error) {
	p, err := t.bp.FetchPage(id)
	if err != nil {
		return nil, 0, false, err
	}
	if nodeType(p) == nodeLeaf {
		idx := leafLowerBound(p, key, val)
		if idx < nKeys(p) {
			k, v := leafCell(p, idx)
			if compareEntry(k, v, key, val) == 0 {
				return nil, 0, false, t.bp.Unpin(id, false)
			}
		}
		need := cellSize(p, key) + cellPtrSize
		if freeSpace(p) < need {
			compactNode(p)
		}
		if freeSpace(p) < need {
			pk, right, err := t.splitLeaf(p, idx, key, val)
			if err != nil {
				t.bp.Unpin(id, true)
				return nil, 0, false, err
			}
			return pk, right, true, t.bp.Unpin(id, true)
		}
		insertCellAt(p, idx, key, val, 0)
		return nil, 0, true, t.bp.Unpin(id, true)
	}
	// Internal node.
	child := internalChild(p, key, val)
	// Unpin before recursing to keep pin footprint at one page per level.
	if err := t.bp.Unpin(id, false); err != nil {
		return nil, 0, false, err
	}
	pk, newChild, added, err := t.insertRec(child, key, val)
	if err != nil || pk == nil {
		return nil, 0, added, err
	}
	// Insert the promoted separator into this node.
	p, err = t.bp.FetchPage(id)
	if err != nil {
		return nil, 0, added, err
	}
	idx := t.separatorSlot(p, pk.key, pk.val)
	need := cellSize(p, pk.key) + cellPtrSize
	if freeSpace(p) < need {
		compactNode(p)
	}
	if freeSpace(p) < need {
		pk2, right, serr := t.splitInternal(p, idx, pk, newChild)
		if serr != nil {
			t.bp.Unpin(id, true)
			return nil, 0, added, serr
		}
		return pk2, right, added, t.bp.Unpin(id, true)
	}
	insertCellAt(p, idx, pk.key, pk.val, newChild)
	return nil, 0, added, t.bp.Unpin(id, true)
}

func (t *BTree) separatorSlot(p *storage.Page, key []byte, val uint64) int {
	lo, hi := 0, nKeys(p)
	for lo < hi {
		mid := (lo + hi) / 2
		k, v, _ := internalCell(p, mid)
		if compareEntry(k, v, key, val) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// splitLeaf splits a full leaf while inserting (key,val) at idx, links
// siblings, and returns the separator to promote: the first (key, val)
// entry of the right sibling.
func (t *BTree) splitLeaf(p *storage.Page, idx int, key []byte, val uint64) (*promotedKey, storage.PageID, error) {
	n := nKeys(p)
	type entry struct {
		key []byte
		val uint64
	}
	entries := make([]entry, 0, n+1)
	for i := 0; i < n; i++ {
		k, v := leafCell(p, i)
		kc := append([]byte(nil), k...)
		entries = append(entries, entry{kc, v})
	}
	kc := append([]byte(nil), key...)
	entries = append(entries[:idx], append([]entry{{kc, val}}, entries[idx:]...)...)
	mid := len(entries) / 2

	right, err := t.bp.NewPage()
	if err != nil {
		return nil, 0, err
	}
	initNode(right, nodeLeaf)
	setLink(right, link(p))
	for i, e := range entries[mid:] {
		insertCellAt(right, i, e.key, e.val, 0)
	}
	initNode(p, nodeLeaf)
	setLink(p, right.ID)
	for i, e := range entries[:mid] {
		insertCellAt(p, i, e.key, e.val, 0)
	}
	sep := entries[mid]
	rid := right.ID
	if err := t.bp.Unpin(rid, true); err != nil {
		return nil, 0, err
	}
	return &promotedKey{key: sep.key, val: sep.val}, rid, nil
}

// splitInternal splits a full internal node while inserting the
// separator entry pk (pointing at child) at idx. The middle separator
// moves up.
func (t *BTree) splitInternal(p *storage.Page, idx int, pk *promotedKey, child storage.PageID) (*promotedKey, storage.PageID, error) {
	n := nKeys(p)
	type entry struct {
		key   []byte
		val   uint64
		child storage.PageID
	}
	entries := make([]entry, 0, n+1)
	for i := 0; i < n; i++ {
		k, v, c := internalCell(p, i)
		kc := append([]byte(nil), k...)
		entries = append(entries, entry{kc, v, c})
	}
	kc := append([]byte(nil), pk.key...)
	entries = append(entries[:idx], append([]entry{{kc, pk.val, child}}, entries[idx:]...)...)
	mid := len(entries) / 2
	sep := entries[mid]

	right, err := t.bp.NewPage()
	if err != nil {
		return nil, 0, err
	}
	initNode(right, nodeInternal)
	setLink(right, sep.child) // leftmost child of right = promoted cell's child
	for i, e := range entries[mid+1:] {
		insertCellAt(right, i, e.key, e.val, e.child)
	}
	leftmost := link(p)
	initNode(p, nodeInternal)
	setLink(p, leftmost)
	for i, e := range entries[:mid] {
		insertCellAt(p, i, e.key, e.val, e.child)
	}
	rid := right.ID
	if err := t.bp.Unpin(rid, true); err != nil {
		return nil, 0, err
	}
	return &promotedKey{key: sep.key, val: sep.val}, rid, nil
}

// Delete removes the exact (key, val) pair, returning whether it was
// present. Underflowing pages are not merged (lazy deletion).
func (t *BTree) Delete(key []byte, val uint64) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.root
	for {
		p, err := t.bp.FetchPage(id)
		if err != nil {
			return false, err
		}
		if nodeType(p) == nodeInternal {
			child := internalChild(p, key, val)
			if err := t.bp.Unpin(id, false); err != nil {
				return false, err
			}
			id = child
			continue
		}
		idx := leafLowerBound(p, key, val)
		if idx < nKeys(p) {
			k, v := leafCell(p, idx)
			if compareEntry(k, v, key, val) == 0 {
				removeCellAt(p, idx)
				t.size--
				if err := t.bp.Unpin(id, true); err != nil {
					return false, err
				}
				return true, t.syncMeta()
			}
		}
		return false, t.bp.Unpin(id, false)
	}
}

// Contains reports whether the exact (key, val) pair exists.
func (t *BTree) Contains(key []byte, val uint64) (bool, error) {
	found := false
	err := t.Scan(key, func(k []byte, v uint64) bool {
		if !bytes.Equal(k, key) {
			return false
		}
		if v == val {
			found = true
			return false
		}
		return true
	})
	return found, err
}

// Lookup returns all values stored under exactly key.
func (t *BTree) Lookup(key []byte) ([]uint64, error) {
	var out []uint64
	err := t.Scan(key, func(k []byte, v uint64) bool {
		if !bytes.Equal(k, key) {
			return false
		}
		out = append(out, v)
		return true
	})
	return out, err
}

// Scan iterates entries with key >= start in ascending (key, val) order,
// calling fn until it returns false or the tree is exhausted. The key
// slice passed to fn is only valid during the call.
func (t *BTree) Scan(start []byte, fn func(key []byte, val uint64) bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.root
	// Descend to the leaf that could contain start.
	for {
		p, err := t.bp.FetchPage(id)
		if err != nil {
			return err
		}
		if nodeType(p) == nodeLeaf {
			idx := leafLowerBound(p, start, 0)
			return t.scanFrom(p, id, idx, fn)
		}
		child := internalChild(p, start, 0)
		if err := t.bp.Unpin(id, false); err != nil {
			return err
		}
		id = child
	}
}

// ScanAll iterates the whole tree in order.
func (t *BTree) ScanAll(fn func(key []byte, val uint64) bool) error {
	return t.Scan(nil, fn)
}

// scanFrom walks leaves from (page p pinned, index idx) onward.
func (t *BTree) scanFrom(p *storage.Page, id storage.PageID, idx int, fn func([]byte, uint64) bool) error {
	for {
		n := nKeys(p)
		for ; idx < n; idx++ {
			k, v := leafCell(p, idx)
			if !fn(k, v) {
				return t.bp.Unpin(id, false)
			}
		}
		next := link(p)
		if err := t.bp.Unpin(id, false); err != nil {
			return err
		}
		if next == storage.InvalidPageID {
			return nil
		}
		var err error
		p, err = t.bp.FetchPage(next)
		if err != nil {
			return err
		}
		id = next
		idx = 0
	}
}

// Height returns the tree height (1 = root is a leaf); used in tests.
func (t *BTree) Height() (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := 1
	id := t.root
	for {
		p, err := t.bp.FetchPage(id)
		if err != nil {
			return 0, err
		}
		if nodeType(p) == nodeLeaf {
			return h, t.bp.Unpin(id, false)
		}
		next := link(p)
		if err := t.bp.Unpin(id, false); err != nil {
			return 0, err
		}
		id = next
		h++
	}
}
