package agg

import (
	"fmt"
	"math/rand"
	"testing"

	"triggerman/internal/expr"
	"triggerman/internal/parser"
	"triggerman/internal/types"
)

// sales schema: region(0) varchar, amount(1) int, rep(2) varchar.
var salesSchema = types.MustSchema(
	types.Column{Name: "region", Kind: types.KindVarchar},
	types.Column{Name: "amount", Kind: types.KindInt},
	types.Column{Name: "rep", Kind: types.KindVarchar},
)

func saleRow(region string, amount int64, rep string) types.Tuple {
	return types.Tuple{types.NewString(region), types.NewInt(amount), types.NewString(rep)}
}

func bindSales(t *testing.T, src string) expr.Node {
	t.Helper()
	n, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	b := &expr.Binder{
		VarIndex:    map[string]int{"sales": 0},
		DefaultVar:  0,
		ColumnIndex: func(_ int, col string) int { return salesSchema.ColumnIndex(col) },
	}
	if err := b.Bind(n); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFuncFromName(t *testing.T) {
	for name, want := range map[string]Func{
		"count": Count, "SUM": Sum, "Avg": Avg, "min": Min, "MAX": Max,
	} {
		got, ok := FuncFromName(name)
		if !ok || got != want {
			t.Errorf("FuncFromName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := FuncFromName("median"); ok {
		t.Error("median should be unknown")
	}
	if Count.String() != "count" || Max.String() != "max" {
		t.Error("names")
	}
}

func TestRewriteHaving(t *testing.T) {
	n := bindSales(t, "count(amount) > 2 and region <> 'x'")
	rewritten, specs, err := RewriteHaving(n, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Func != Count || specs[0].Col != 1 {
		t.Fatalf("specs = %v", specs)
	}
	// Evaluable with (groupKey, aggs).
	ev := HavingEvaluator(rewritten)
	ok, err := ev(types.Tuple{types.NewString("north")}, types.Tuple{types.NewInt(3)})
	if err != nil || !ok {
		t.Fatalf("eval = %v %v", ok, err)
	}
	ok, _ = ev(types.Tuple{types.NewString("x")}, types.Tuple{types.NewInt(3)})
	if ok {
		t.Error("region <> 'x' should fail for group x")
	}
	// Duplicate aggregates are shared.
	n2 := bindSales(t, "sum(amount) > 10 and sum(amount) < 100")
	_, specs2, err := RewriteHaving(n2, []int{0})
	if err != nil || len(specs2) != 1 {
		t.Fatalf("dedup: %v %v", specs2, err)
	}
	// Naked non-group column rejected.
	if _, _, err := RewriteHaving(bindSales(t, "amount > 5"), []int{0}); err == nil {
		t.Error("non-group column should be rejected")
	}
	// Aggregate over expression rejected (column only).
	if _, _, err := RewriteHaving(bindSales(t, "sum(amount * 2) > 5"), []int{0}); err == nil {
		t.Error("aggregate over expression should be rejected")
	}
}

// run applies a sequence of inserts and returns fire counts.
func applyInsert(t *testing.T, st *State, having func(a, b types.Tuple) (bool, error), tu types.Tuple) []Fire {
	t.Helper()
	fires, err := st.Apply(OpInsert, nil, tu, false, true, having)
	if err != nil {
		t.Fatal(err)
	}
	return fires
}

func TestCountTransitionFiring(t *testing.T) {
	n := bindSales(t, "count(amount) > 2")
	rewritten, specs, _ := RewriteHaving(n, []int{0})
	st := NewState([]int{0}, specs)
	ev := HavingEvaluator(rewritten)

	var total int
	for i := 0; i < 5; i++ {
		fires := applyInsert(t, st, ev, saleRow("north", 10, "a"))
		total += len(fires)
		if i == 2 && len(fires) != 1 {
			t.Fatalf("insert %d: fires = %d", i, len(fires))
		}
	}
	// Fires exactly once (at count 3), not again at 4, 5.
	if total != 1 {
		t.Fatalf("total fires = %d", total)
	}
	// A different group is independent.
	fires := applyInsert(t, st, ev, saleRow("south", 10, "a"))
	if len(fires) != 0 {
		t.Fatal("south should not fire at count 1")
	}
	// Deletions re-arm only once the condition drops to false: delete
	// three of the five rows (count 5 -> 2, condition false), then rise
	// back above the threshold.
	for i := 0; i < 3; i++ {
		if _, err := st.Apply(OpDelete, saleRow("north", 10, "a"), nil, true, false, ev); err != nil {
			t.Fatal(err)
		}
	}
	fires = applyInsert(t, st, ev, saleRow("north", 10, "a"))
	if len(fires) != 1 {
		t.Fatalf("re-armed fire = %d", len(fires))
	}
}

func TestSumAvgMinMax(t *testing.T) {
	n := bindSales(t, "sum(amount) >= 100 and avg(amount) >= 25 and max(amount) >= 50 and min(amount) > 0")
	rewritten, specs, err := RewriteHaving(n, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("specs = %v", specs)
	}
	st := NewState([]int{0}, specs)
	ev := HavingEvaluator(rewritten)

	applyInsert(t, st, ev, saleRow("n", 30, "a"))
	applyInsert(t, st, ev, saleRow("n", 20, "a"))
	fires := applyInsert(t, st, ev, saleRow("n", 60, "a")) // sum=110 avg≈36.7 max=60 min=20
	if len(fires) != 1 {
		t.Fatalf("fires = %d", len(fires))
	}
	f := fires[0]
	if f.GroupKey[0].Str() != "n" {
		t.Errorf("group = %v", f.GroupKey)
	}
	if f.Aggregates[0].Float() != 110 {
		t.Errorf("sum = %v", f.Aggregates[0])
	}
	if f.Aggregates[2].Int() != 60 || f.Aggregates[3].Int() != 20 {
		t.Errorf("max/min = %v %v", f.Aggregates[2], f.Aggregates[3])
	}
	// Deleting the max re-arms (max drops to 30 -> condition false).
	if _, err := st.Apply(OpDelete, saleRow("n", 60, "a"), nil, true, false, ev); err != nil {
		t.Fatal(err)
	}
	fires = applyInsert(t, st, ev, saleRow("n", 55, "a"))
	if len(fires) != 1 {
		t.Fatalf("fires after max removal = %d", len(fires))
	}
}

func TestUpdateMovesBetweenGroups(t *testing.T) {
	n := bindSales(t, "count(amount) > 1")
	rewritten, specs, _ := RewriteHaving(n, []int{0})
	st := NewState([]int{0}, specs)
	ev := HavingEvaluator(rewritten)

	applyInsert(t, st, ev, saleRow("a", 1, "r"))
	applyInsert(t, st, ev, saleRow("b", 1, "r"))
	// Move the b row into group a: a reaches count 2 -> fires.
	fires, err := st.Apply(OpUpdate, saleRow("b", 1, "r"), saleRow("a", 1, "r"), true, true, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(fires) != 1 || fires[0].GroupKey[0].Str() != "a" {
		t.Fatalf("fires = %+v", fires)
	}
	// Group b is now empty and garbage-collected.
	if st.Groups() != 1 {
		t.Errorf("groups = %d", st.Groups())
	}
}

func TestSelectionFiltering(t *testing.T) {
	// Tokens whose image fails the selection do not contribute.
	n := bindSales(t, "count(amount) > 1")
	rewritten, specs, _ := RewriteHaving(n, []int{0})
	st := NewState([]int{0}, specs)
	ev := HavingEvaluator(rewritten)
	if fires, _ := st.Apply(OpInsert, nil, saleRow("n", 1, "r"), false, false, ev); len(fires) != 0 {
		t.Fatal("non-matching insert should be a no-op")
	}
	if st.Groups() != 0 {
		t.Error("no group should exist")
	}
}

func TestRandomizedAgainstRecompute(t *testing.T) {
	// Incremental aggregates equal a from-scratch recomputation after
	// every step; firing happens exactly on false->true transitions of
	// the recomputed condition.
	n := bindSales(t, "sum(amount) > 100 and count(amount) > 2")
	rewritten, specs, _ := RewriteHaving(n, []int{0})
	st := NewState([]int{0}, specs)
	ev := HavingEvaluator(rewritten)

	rng := rand.New(rand.NewSource(13))
	regions := []string{"a", "b", "c"}
	var rows []types.Tuple
	condWas := map[string]bool{}
	for step := 0; step < 2000; step++ {
		var fires []Fire
		var err error
		if len(rows) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(rows))
			old := rows[i]
			rows = append(rows[:i], rows[i+1:]...)
			fires, err = st.Apply(OpDelete, old, nil, true, false, ev)
		} else {
			tu := saleRow(regions[rng.Intn(3)], int64(rng.Intn(60)), "r")
			rows = append(rows, tu)
			fires, err = st.Apply(OpInsert, nil, tu, false, true, ev)
		}
		if err != nil {
			t.Fatal(err)
		}
		// Recompute per group from rows.
		sums := map[string]int64{}
		counts := map[string]int64{}
		for _, r := range rows {
			sums[r[0].Str()] += r[1].Int()
			counts[r[0].Str()]++
		}
		condNow := map[string]bool{}
		for g := range sums {
			condNow[g] = sums[g] > 100 && counts[g] > 2
		}
		firedGroups := map[string]bool{}
		for _, f := range fires {
			firedGroups[f.GroupKey[0].Str()] = true
		}
		for g, now := range condNow {
			if now && !condWas[g] && !firedGroups[g] {
				t.Fatalf("step %d: group %s transitioned true but did not fire", step, g)
			}
		}
		for g := range firedGroups {
			if !condNow[g] {
				t.Fatalf("step %d: group %s fired while condition false", step, g)
			}
			if condWas[g] {
				t.Fatalf("step %d: group %s fired without a transition", step, g)
			}
		}
		condWas = condNow
	}
}

// Ablation: incremental aggregate maintenance vs recomputing the group
// from its rows on every token (what a query-based trigger system would
// do, per the paper's §8 critique of RPL/DIPS).
func BenchmarkIncrementalVsRecompute(b *testing.B) {
	n := expr.Cmp(expr.OpGt,
		&expr.FuncCall{Name: "sum", Args: []expr.Node{&expr.ColumnRef{Column: "amount", VarIdx: 0, ColIdx: 1}}},
		expr.Int(1_000_000))
	rewritten, specs, err := RewriteHaving(n, []int{0})
	if err != nil {
		b.Fatal(err)
	}
	ev := HavingEvaluator(rewritten)
	for _, rows := range []int{100, 10000} {
		b.Run("incremental/group="+itoa(rows), func(b *testing.B) {
			st := NewState([]int{0}, specs)
			for i := 0; i < rows; i++ {
				st.Apply(OpInsert, nil, saleRow("g", int64(i), "r"), false, true, ev)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Apply(OpInsert, nil, saleRow("g", 1, "r"), false, true, ev); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("recompute/group="+itoa(rows), func(b *testing.B) {
			var all []types.Tuple
			for i := 0; i < rows; i++ {
				all = append(all, saleRow("g", int64(i), "r"))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				all = append(all, saleRow("g", 1, "r"))
				var sum int64
				for _, r := range all {
					sum += r[1].Int()
				}
				if sum < 0 {
					b.Fatal("impossible")
				}
				all = all[:len(all)-1]
			}
		})
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
