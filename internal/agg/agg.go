// Package agg implements aggregate trigger conditions — the paper's §9
// names "scalable trigger processing for trigger conditions involving
// aggregates" as a research topic, and §2's grammar reserves group by /
// having clauses for them. This package defines the execution semantics
// this repository adopts:
//
//   - the trigger's from clause names ONE data source; group by
//     partitions its update stream by the listed columns;
//   - count/sum/avg/min/max aggregates over stream columns are
//     maintained incrementally from insert, delete and update tokens
//     (deletes decrement, updates move rows between groups);
//   - after each token, the having condition is evaluated for every
//     touched group; the trigger fires on a false→true transition
//     ("alerting" semantics), and re-arms when the condition drops back
//     to false;
//   - the action may reference group-by columns and the aggregate
//     values in effect at firing time.
package agg

import (
	"fmt"
	"strings"
	"sync"

	"triggerman/internal/expr"
	"triggerman/internal/parser"
	"triggerman/internal/types"
)

// Func enumerates supported aggregate functions.
type Func uint8

const (
	// Count counts rows in the group (column value ignored but must be
	// named, per SQL's count(col) form).
	Count Func = iota
	// Sum totals a numeric column.
	Sum
	// Avg averages a numeric column.
	Avg
	// Min tracks the minimum of a column.
	Min
	// Max tracks the maximum of a column.
	Max
)

// String names the function.
func (f Func) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// FuncFromName resolves an aggregate function name.
func FuncFromName(name string) (Func, bool) {
	switch strings.ToLower(name) {
	case "count":
		return Count, true
	case "sum":
		return Sum, true
	case "avg":
		return Avg, true
	case "min":
		return Min, true
	case "max":
		return Max, true
	}
	return 0, false
}

// Spec is one aggregate to maintain: a function over a column position.
type Spec struct {
	Func Func
	Col  int
}

// String renders the spec.
func (s Spec) String() string { return fmt.Sprintf("%s(#%d)", s.Func, s.Col) }

// groupState holds one group's running aggregates.
type groupState struct {
	key   types.Tuple
	count int64
	sums  []float64 // per numeric spec (sum/avg)
	// multisets per min/max spec: value-key -> (value, count)
	sets []map[string]msEntry
	// armed reports whether the having condition was false after the
	// last token (so the next true fires).
	armed bool
	// everEvaluated guards the initial arming.
	everEvaluated bool
}

type msEntry struct {
	val types.Value
	n   int
}

// State maintains every group of one aggregate trigger.
type State struct {
	mu sync.Mutex
	// GroupCols are the grouping column positions in the source schema.
	GroupCols []int
	Specs     []Spec
	groups    map[string]*groupState
}

// NewState builds an empty aggregate state.
func NewState(groupCols []int, specs []Spec) *State {
	return &State{
		GroupCols: groupCols,
		Specs:     specs,
		groups:    make(map[string]*groupState),
	}
}

// Groups reports the number of live groups.
func (st *State) Groups() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.groups)
}

func (st *State) keyOf(tu types.Tuple) (string, types.Tuple) {
	key := make(types.Tuple, len(st.GroupCols))
	for i, c := range st.GroupCols {
		key[i] = tu.Get(c)
	}
	return string(types.EncodeKey(nil, key)), key
}

func (st *State) group(tu types.Tuple) *groupState {
	ks, key := st.keyOf(tu)
	g, ok := st.groups[ks]
	if !ok {
		g = &groupState{
			key:  key,
			sums: make([]float64, len(st.Specs)),
			sets: make([]map[string]msEntry, len(st.Specs)),
		}
		for i, s := range st.Specs {
			if s.Func == Min || s.Func == Max {
				g.sets[i] = make(map[string]msEntry)
			}
		}
		st.groups[ks] = g
	}
	return g
}

func (st *State) apply(g *groupState, tu types.Tuple, sign int64) {
	g.count += sign
	for i, s := range st.Specs {
		switch s.Func {
		case Sum, Avg:
			if f, ok := tu.Get(s.Col).AsFloat(); ok {
				g.sums[i] += float64(sign) * f
			}
		case Min, Max:
			v := tu.Get(s.Col)
			if v.IsNull() {
				continue
			}
			vk := string(types.EncodeKey(nil, types.Tuple{v}))
			e := g.sets[i][vk]
			e.val = v
			e.n += int(sign)
			if e.n <= 0 {
				delete(g.sets[i], vk)
			} else {
				g.sets[i][vk] = e
			}
		}
	}
}

// Values computes the current aggregate tuple for a group.
func (st *State) values(g *groupState) types.Tuple {
	out := make(types.Tuple, len(st.Specs))
	for i, s := range st.Specs {
		switch s.Func {
		case Count:
			out[i] = types.NewInt(g.count)
		case Sum:
			out[i] = types.NewFloat(g.sums[i])
		case Avg:
			if g.count > 0 {
				out[i] = types.NewFloat(g.sums[i] / float64(g.count))
			} else {
				out[i] = types.Null()
			}
		case Min, Max:
			var best types.Value
			first := true
			for _, e := range g.sets[i] {
				if first {
					best = e.val
					first = false
					continue
				}
				c := types.Compare(e.val, best)
				if (s.Func == Min && c < 0) || (s.Func == Max && c > 0) {
					best = e.val
				}
			}
			if first {
				out[i] = types.Null()
			} else {
				out[i] = best
			}
		}
	}
	return out
}

// Fire describes one group whose having condition transitioned to true.
type Fire struct {
	// GroupKey holds the group-by column values.
	GroupKey types.Tuple
	// Aggregates holds the aggregate values (Specs order) at firing.
	Aggregates types.Tuple
	// Representative is the token tuple that caused the transition.
	Representative types.Tuple
}

// Op mirrors the token operation for Apply.
type Op uint8

// Token operations.
const (
	OpInsert Op = iota
	OpDelete
	OpUpdate
)

// Apply folds one token into the state. oldMatch/newMatch report
// whether the old/new images passed the trigger's selection predicate
// (rows outside the selection do not contribute). having evaluates the
// rewritten having condition for a group; it is called with the group
// key and aggregates and returns the condition's truth. Fires are the
// false→true transitions produced by this token.
func (st *State) Apply(op Op, old, new types.Tuple, oldMatch, newMatch bool,
	having func(groupKey, aggs types.Tuple) (bool, error)) ([]Fire, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	touched := map[string]*groupState{}
	reps := map[string]types.Tuple{}
	if op != OpInsert && oldMatch && old != nil {
		g := st.group(old)
		st.apply(g, old, -1)
		ks, _ := st.keyOf(old)
		touched[ks] = g
		reps[ks] = old
	}
	if op != OpDelete && newMatch && new != nil {
		g := st.group(new)
		st.apply(g, new, +1)
		ks, _ := st.keyOf(new)
		touched[ks] = g
		reps[ks] = new
	}
	var fires []Fire
	for ks, g := range touched {
		aggs := st.values(g)
		ok, err := having(g.key, aggs)
		if err != nil {
			return fires, err
		}
		if !g.everEvaluated {
			g.armed = true
			g.everEvaluated = true
		}
		switch {
		case ok && g.armed:
			g.armed = false
			fires = append(fires, Fire{
				GroupKey:       g.key.Clone(),
				Aggregates:     aggs,
				Representative: reps[ks],
			})
		case !ok:
			g.armed = true
		}
		if g.count <= 0 {
			delete(st.groups, ks)
		}
	}
	return fires, nil
}

// RewriteHaving splits a having expression: every aggregate function
// call count/sum/avg/min/max over a single bound column reference is
// replaced by a reference to tuple-variable 1 ("the aggregate tuple"),
// and the list of Specs (deduplicated) is returned. Non-aggregate
// column references are rewritten to tuple-variable 0 positions of the
// group key when they name group-by columns; other plain references are
// rejected (SQL's "column must appear in GROUP BY" rule).
func RewriteHaving(n expr.Node, groupCols []int) (expr.Node, []Spec, error) {
	var specs []Spec
	specIndex := func(s Spec) int {
		for i, have := range specs {
			if have == s {
				return i
			}
		}
		specs = append(specs, s)
		return len(specs) - 1
	}
	groupPos := func(col int) int {
		for i, c := range groupCols {
			if c == col {
				return i
			}
		}
		return -1
	}
	var rewrite func(n expr.Node) (expr.Node, error)
	rewrite = func(n expr.Node) (expr.Node, error) {
		switch t := n.(type) {
		case nil:
			return nil, nil
		case *expr.Const:
			return expr.Clone(t), nil
		case *expr.ColumnRef:
			pos := groupPos(t.ColIdx)
			if pos < 0 {
				return nil, fmt.Errorf("agg: column %q must appear in group by or inside an aggregate", t.Column)
			}
			return &expr.ColumnRef{Column: t.Column, VarIdx: 0, ColIdx: pos}, nil
		case *expr.FuncCall:
			if f, ok := FuncFromName(t.Name); ok {
				if len(t.Args) != 1 {
					return nil, fmt.Errorf("agg: %s expects one column argument", t.Name)
				}
				ref, ok := t.Args[0].(*expr.ColumnRef)
				if !ok || ref.ColIdx < 0 {
					return nil, fmt.Errorf("agg: %s expects a column argument", t.Name)
				}
				idx := specIndex(Spec{Func: f, Col: ref.ColIdx})
				return &expr.ColumnRef{Column: t.Name, VarIdx: 1, ColIdx: idx}, nil
			}
			out := &expr.FuncCall{Name: t.Name}
			for _, a := range t.Args {
				ra, err := rewrite(a)
				if err != nil {
					return nil, err
				}
				out.Args = append(out.Args, ra)
			}
			return out, nil
		case *expr.Unary:
			c, err := rewrite(t.Child)
			if err != nil {
				return nil, err
			}
			return &expr.Unary{Op: t.Op, Child: c}, nil
		case *expr.Binary:
			l, err := rewrite(t.Left)
			if err != nil {
				return nil, err
			}
			r, err := rewrite(t.Right)
			if err != nil {
				return nil, err
			}
			return &expr.Binary{Op: t.Op, Left: l, Right: r}, nil
		default:
			return nil, fmt.Errorf("agg: cannot rewrite %T in having", n)
		}
	}
	out, err := rewrite(n)
	if err != nil {
		return nil, nil, err
	}
	return out, specs, nil
}

// HavingEvaluator binds a rewritten having tree into the callback shape
// Apply expects.
func HavingEvaluator(rewritten expr.Node) func(groupKey, aggs types.Tuple) (bool, error) {
	return func(groupKey, aggs types.Tuple) (bool, error) {
		env := expr.MultiEnv{Tuples: []types.Tuple{groupKey, aggs}}
		res, err := expr.EvalPredicate(rewritten, env)
		if err != nil {
			return false, err
		}
		return res == expr.True, nil
	}
}

// CollectActionSpecs walks an action's expressions, resolving aggregate
// calls (count/sum/... over one column of the source schema) into
// Specs, merged into the given list. It returns the extended list.
func CollectActionSpecs(action parser.Action, schema *types.Schema, specs []Spec) ([]Spec, error) {
	add := func(s Spec) {
		for _, have := range specs {
			if have == s {
				return
			}
		}
		specs = append(specs, s)
	}
	var scanNode func(n expr.Node) error
	scanNode = func(n expr.Node) error {
		fc, ok := n.(*expr.FuncCall)
		if !ok {
			switch t := n.(type) {
			case *expr.Unary:
				return scanNode(t.Child)
			case *expr.Binary:
				if err := scanNode(t.Left); err != nil {
					return err
				}
				return scanNode(t.Right)
			}
			return nil
		}
		f, isAgg := FuncFromName(fc.Name)
		if !isAgg {
			for _, a := range fc.Args {
				if err := scanNode(a); err != nil {
					return err
				}
			}
			return nil
		}
		if len(fc.Args) != 1 {
			return fmt.Errorf("agg: %s expects one column argument", fc.Name)
		}
		ref, ok := fc.Args[0].(*expr.ColumnRef)
		if !ok {
			return fmt.Errorf("agg: %s expects a column argument", fc.Name)
		}
		col := schema.ColumnIndex(ref.Column)
		if col < 0 {
			return fmt.Errorf("agg: unknown column %q in aggregate", ref.Column)
		}
		add(Spec{Func: f, Col: col})
		return nil
	}
	err := walkAction(action, scanNode)
	if err != nil {
		return nil, err
	}
	return specs, nil
}

// SubstituteAction clones an action with every aggregate call replaced
// by its current value (specs/values as produced at firing time).
func SubstituteAction(action parser.Action, schema *types.Schema, specs []Spec, values types.Tuple) (parser.Action, error) {
	lookup := func(f Func, col int) (types.Value, bool) {
		for i, s := range specs {
			if s.Func == f && s.Col == col {
				return values.Get(i), true
			}
		}
		return types.Null(), false
	}
	var sub func(n expr.Node) (expr.Node, error)
	sub = func(n expr.Node) (expr.Node, error) {
		switch t := n.(type) {
		case nil:
			return nil, nil
		case *expr.FuncCall:
			if f, isAgg := FuncFromName(t.Name); isAgg && len(t.Args) == 1 {
				if ref, ok := t.Args[0].(*expr.ColumnRef); ok {
					col := schema.ColumnIndex(ref.Column)
					if v, found := lookup(f, col); found {
						return expr.Lit(v), nil
					}
					return nil, fmt.Errorf("agg: %s(%s) not maintained by this trigger", t.Name, ref.Column)
				}
			}
			out := &expr.FuncCall{Name: t.Name}
			for _, a := range t.Args {
				ra, err := sub(a)
				if err != nil {
					return nil, err
				}
				out.Args = append(out.Args, ra)
			}
			return out, nil
		case *expr.Unary:
			c, err := sub(t.Child)
			if err != nil {
				return nil, err
			}
			return &expr.Unary{Op: t.Op, Child: c}, nil
		case *expr.Binary:
			l, err := sub(t.Left)
			if err != nil {
				return nil, err
			}
			r, err := sub(t.Right)
			if err != nil {
				return nil, err
			}
			return &expr.Binary{Op: t.Op, Left: l, Right: r}, nil
		default:
			return expr.Clone(n), nil
		}
	}
	switch a := action.(type) {
	case *parser.RaiseEvent:
		out := &parser.RaiseEvent{Name: a.Name}
		for _, arg := range a.Args {
			s, err := sub(arg)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, s)
		}
		return out, nil
	case *parser.ExecSQL:
		st, err := substituteStmt(a.Stmt, sub)
		if err != nil {
			return nil, err
		}
		return &parser.ExecSQL{SQL: a.SQL, Stmt: st}, nil
	default:
		return action, nil
	}
}

// walkAction visits every expression of an action.
func walkAction(action parser.Action, fn func(expr.Node) error) error {
	switch a := action.(type) {
	case *parser.RaiseEvent:
		for _, arg := range a.Args {
			if err := fn(arg); err != nil {
				return err
			}
		}
		return nil
	case *parser.ExecSQL:
		return walkStmt(a.Stmt, fn)
	default:
		return nil
	}
}

func walkStmt(st parser.Statement, fn func(expr.Node) error) error {
	apply := func(nodes ...expr.Node) error {
		for _, n := range nodes {
			if n == nil {
				continue
			}
			if err := fn(n); err != nil {
				return err
			}
		}
		return nil
	}
	switch s := st.(type) {
	case *parser.Select:
		for _, it := range s.Items {
			if err := apply(it.Expr); err != nil {
				return err
			}
		}
		return apply(s.Where)
	case *parser.Insert:
		return apply(s.Values...)
	case *parser.Update:
		for _, sc := range s.Sets {
			if err := apply(sc.Value); err != nil {
				return err
			}
		}
		return apply(s.Where)
	case *parser.Delete:
		return apply(s.Where)
	}
	return nil
}

func substituteStmt(st parser.Statement, sub func(expr.Node) (expr.Node, error)) (parser.Statement, error) {
	switch s := st.(type) {
	case *parser.Select:
		out := &parser.Select{Table: s.Table}
		for _, it := range s.Items {
			ni := parser.SelectItem{Alias: it.Alias, Star: it.Star}
			if it.Expr != nil {
				e, err := sub(it.Expr)
				if err != nil {
					return nil, err
				}
				ni.Expr = e
			}
			out.Items = append(out.Items, ni)
		}
		w, err := sub(s.Where)
		if err != nil {
			return nil, err
		}
		out.Where = w
		return out, nil
	case *parser.Insert:
		out := &parser.Insert{Table: s.Table, Columns: append([]string(nil), s.Columns...)}
		for _, v := range s.Values {
			e, err := sub(v)
			if err != nil {
				return nil, err
			}
			out.Values = append(out.Values, e)
		}
		return out, nil
	case *parser.Update:
		out := &parser.Update{Table: s.Table}
		for _, sc := range s.Sets {
			e, err := sub(sc.Value)
			if err != nil {
				return nil, err
			}
			out.Sets = append(out.Sets, parser.SetClause{Column: sc.Column, Value: e})
		}
		w, err := sub(s.Where)
		if err != nil {
			return nil, err
		}
		out.Where = w
		return out, nil
	case *parser.Delete:
		out := &parser.Delete{Table: s.Table}
		w, err := sub(s.Where)
		if err != nil {
			return nil, err
		}
		out.Where = w
		return out, nil
	default:
		return st, nil
	}
}
