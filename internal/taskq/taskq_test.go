package taskq

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"triggerman/internal/retry"
)

func TestSubmitAndDrain(t *testing.T) {
	p := New(Config{Drivers: 4, T: time.Millisecond, Threshold: time.Millisecond})
	defer p.Close()
	var count int64
	for i := 0; i < 1000; i++ {
		err := p.Submit(Task{Kind: ProcessToken, Run: func() error {
			atomic.AddInt64(&count, 1)
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	if count != 1000 {
		t.Fatalf("executed %d", count)
	}
	st := p.Stats()
	if st.Enqueued != 1000 || st.Executed != 1000 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFollowUpTasks(t *testing.T) {
	// A ProcessToken task fans out RunAction tasks; Drain must cover the
	// whole tree.
	p := New(Config{Drivers: 2, T: time.Millisecond, Threshold: time.Millisecond})
	defer p.Close()
	var actions int64
	for i := 0; i < 10; i++ {
		p.Submit(Task{Kind: ProcessToken, Run: func() error {
			for j := 0; j < 5; j++ {
				p.Submit(Task{Kind: RunAction, Run: func() error {
					atomic.AddInt64(&actions, 1)
					return nil
				}})
			}
			return nil
		}})
	}
	p.Drain()
	if actions != 50 {
		t.Fatalf("actions = %d", actions)
	}
}

func TestErrorsCounted(t *testing.T) {
	var seen int64
	p := New(Config{Drivers: 1, OnError: func(error) { atomic.AddInt64(&seen, 1) }})
	defer p.Close()
	p.Submit(Task{Run: func() error { return fmt.Errorf("boom") }})
	p.Submit(Task{Run: nil}) // nil Run is a no-op, not a crash
	p.Drain()
	if p.Stats().Errors != 1 || seen != 1 {
		t.Errorf("errors = %d, seen = %d", p.Stats().Errors, seen)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	p := New(Config{Drivers: 1})
	p.Close()
	if err := p.Submit(Task{Run: func() error { return nil }}); err == nil {
		t.Error("submit after close should fail")
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Drivers < 1 {
		t.Error("default drivers")
	}
	if cfg.T != 250*time.Millisecond || cfg.Threshold != 250*time.Millisecond {
		t.Error("paper defaults for T and THRESHOLD")
	}
	half := Config{ConcurrencyLevel: 0.5}.withDefaults()
	if half.Drivers > cfg.Drivers || half.Drivers < 1 {
		t.Errorf("TMAN_CONCURRENCY_LEVEL=0.5 -> %d drivers (full=%d)", half.Drivers, cfg.Drivers)
	}
	bad := Config{ConcurrencyLevel: 7}.withDefaults()
	if bad.ConcurrencyLevel != 1.0 {
		t.Error("out-of-range level should clamp to 1.0")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{ProcessToken, RunAction, TokenConditions, TokenActions} {
		if k.String() == "" {
			t.Error("kind name")
		}
	}
}

func TestParallelismActuallyHappens(t *testing.T) {
	// With 4 drivers and tasks that block on a shared barrier, all 4
	// must be in-flight simultaneously.
	p := New(Config{Drivers: 4, Threshold: time.Microsecond})
	defer p.Close()
	var inFlight, peak int64
	var mu sync.Mutex
	for i := 0; i < 40; i++ {
		p.Submit(Task{Run: func() error {
			cur := atomic.AddInt64(&inFlight, 1)
			mu.Lock()
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&inFlight, -1)
			return nil
		}})
	}
	p.Drain()
	if peak < 2 {
		t.Errorf("peak concurrency = %d, expected parallel drivers", peak)
	}
}

func TestQueueLenAndSlide(t *testing.T) {
	p := New(Config{Drivers: 1, Threshold: time.Millisecond})
	defer p.Close()
	block := make(chan struct{})
	p.Submit(Task{Run: func() error { <-block; return nil }})
	for i := 0; i < 3000; i++ {
		p.Submit(Task{Run: func() error { return nil }})
	}
	if p.QueueLen() < 2500 {
		t.Errorf("queue len = %d", p.QueueLen())
	}
	close(block)
	p.Drain()
	if p.QueueLen() != 0 {
		t.Errorf("queue len after drain = %d", p.QueueLen())
	}
}

func TestDrainSliceAccounting(t *testing.T) {
	p := New(Config{Drivers: 1, Threshold: 50 * time.Millisecond})
	defer p.Close()
	for i := 0; i < 100; i++ {
		p.Submit(Task{Run: func() error { return nil }})
	}
	p.Drain()
	st := p.Stats()
	if st.DrainSlices < 1 || st.DrainSlices > 100 {
		t.Errorf("drain slices = %d", st.DrainSlices)
	}
}

func TestPanicIsolation(t *testing.T) {
	// A panicking task must be converted into an error, not kill its
	// driver: with a single driver, later tasks still run.
	var panics, after int64
	var got error
	var mu sync.Mutex
	p := New(Config{Drivers: 1, OnError: func(err error) {
		mu.Lock()
		got = err
		mu.Unlock()
	}})
	defer p.Close()
	p.Submit(Task{Kind: RunAction, Run: func() error {
		atomic.AddInt64(&panics, 1)
		panic("poison token")
	}})
	for i := 0; i < 10; i++ {
		p.Submit(Task{Run: func() error { atomic.AddInt64(&after, 1); return nil }})
	}
	p.Drain()
	if after != 10 {
		t.Fatalf("driver died: only %d tasks ran after the panic", after)
	}
	st := p.Stats()
	if st.Panics != 1 || st.Errors != 1 {
		t.Errorf("stats = %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	var pe *retry.PanicError
	if !errors.As(got, &pe) || len(pe.Stack) == 0 {
		t.Errorf("OnError got %v, want PanicError with stack", got)
	}
}

func TestDrainReturnsWhenEveryTaskErrors(t *testing.T) {
	// Drain must terminate even when 100% of the queued tasks fail —
	// the errors-only path must still release pending accounting.
	var seen int64
	p := New(Config{Drivers: 2, OnError: func(error) { atomic.AddInt64(&seen, 1) }})
	defer p.Close()
	for i := 0; i < 200; i++ {
		p.Submit(Task{Run: func() error { return fmt.Errorf("always fails") }})
	}
	done := make(chan struct{})
	go func() { p.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return with an all-error queue")
	}
	if seen != 200 || p.Stats().Errors != 200 {
		t.Errorf("OnError saw %d, stats errors %d", seen, p.Stats().Errors)
	}
}

func TestOnErrorReceivesTaskError(t *testing.T) {
	want := fmt.Errorf("specific failure")
	var got error
	var mu sync.Mutex
	p := New(Config{Drivers: 1, OnError: func(err error) {
		mu.Lock()
		got = err
		mu.Unlock()
	}})
	defer p.Close()
	p.Submit(Task{Run: func() error { return want }})
	p.Drain()
	mu.Lock()
	defer mu.Unlock()
	if !errors.Is(got, want) {
		t.Errorf("OnError got %v, want %v", got, want)
	}
}

func TestTaskRetryTransient(t *testing.T) {
	// A transiently failing task is re-enqueued with backoff and Drain
	// waits for its final success.
	pol := &retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	var runs int64
	var failed int64
	p := New(Config{Drivers: 2, OnError: func(error) { atomic.AddInt64(&failed, 1) }})
	defer p.Close()
	p.Submit(Task{Kind: ProcessToken, Retry: pol, Run: func() error {
		if atomic.AddInt64(&runs, 1) < 3 {
			return retry.Transient(fmt.Errorf("flaky dequeue"))
		}
		return nil
	}})
	p.Drain()
	if runs != 3 {
		t.Fatalf("runs = %d, want 3", runs)
	}
	if failed != 0 {
		t.Errorf("OnError fired %d times for a task that eventually succeeded", failed)
	}
	if st := p.Stats(); st.Retries != 2 {
		t.Errorf("retries = %d", st.Retries)
	}
}

func TestTaskRetryExhaustionReportsError(t *testing.T) {
	pol := &retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	var runs, failed int64
	p := New(Config{Drivers: 1, OnError: func(error) { atomic.AddInt64(&failed, 1) }})
	defer p.Close()
	p.Submit(Task{Retry: pol, Run: func() error {
		atomic.AddInt64(&runs, 1)
		return retry.Transient(fmt.Errorf("still down"))
	}})
	p.Drain()
	if runs != 3 {
		t.Fatalf("runs = %d, want 3 (MaxAttempts)", runs)
	}
	if failed != 1 {
		t.Errorf("OnError fired %d times, want once at exhaustion", failed)
	}
}

func TestTaskRetrySkipsPermanentErrors(t *testing.T) {
	pol := &retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	var runs int64
	p := New(Config{Drivers: 1})
	defer p.Close()
	p.Submit(Task{Retry: pol, Run: func() error {
		atomic.AddInt64(&runs, 1)
		return fmt.Errorf("semantic error") // unmarked => not retried
	}})
	p.Drain()
	if runs != 1 {
		t.Errorf("permanent error retried %d times", runs)
	}
}

func TestStealingDrainsHotShard(t *testing.T) {
	// All tasks carry the same key, so they land on one shard; the
	// other drivers must steal to help drain it.
	p := New(Config{Drivers: 4, Threshold: 10 * time.Millisecond, T: time.Millisecond})
	defer p.Close()
	var inFlight, peak, count int64
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		p.Submit(Task{Kind: ProcessToken, Key: 7, Run: func() error {
			cur := atomic.AddInt64(&inFlight, 1)
			mu.Lock()
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&inFlight, -1)
			atomic.AddInt64(&count, 1)
			return nil
		}})
	}
	p.Drain()
	if count != 64 {
		t.Fatalf("executed %d", count)
	}
	if peak < 2 {
		t.Errorf("peak concurrency = %d; stealing should parallelize a single hot shard", peak)
	}
	if st := p.Stats(); st.Steals == 0 {
		t.Errorf("steals = 0 with one hot shard and 4 drivers; stats = %+v", st)
	}
}

func TestSerialKeyOrderingUnderStealing(t *testing.T) {
	// Serial tasks sharing a key must observe enqueue order even with
	// many drivers stealing; tasks on other keys run freely in between.
	p := New(Config{Drivers: 8, Threshold: time.Millisecond, T: time.Millisecond})
	defer p.Close()
	const n = 500
	var mu sync.Mutex
	var got []int
	for i := 0; i < n; i++ {
		i := i
		p.Submit(Task{Kind: ProcessToken, Key: 42, Serial: true, Run: func() error {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			return nil
		}})
		// Interfering unkeyed work to force stealing and shard churn.
		p.Submit(Task{Kind: RunAction, Run: func() error { return nil }})
	}
	p.Drain()
	if len(got) != n {
		t.Fatalf("ran %d serial tasks, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("serial key order violated at %d: got %d", i, v)
		}
	}
}

func TestSerialKeysDoNotBlockEachOther(t *testing.T) {
	// Two serial keys mapping to different shards proceed in parallel:
	// key A blocking must not stop key B.
	p := New(Config{Drivers: 2, Threshold: time.Millisecond, T: time.Millisecond})
	defer p.Close()
	gate := make(chan struct{})
	var bRan int64
	p.Submit(Task{Key: 1, Serial: true, Run: func() error { <-gate; return nil }})
	p.Submit(Task{Key: 2, Serial: true, Run: func() error {
		atomic.AddInt64(&bRan, 1)
		return nil
	}})
	deadline := time.Now().Add(2 * time.Second)
	for atomic.LoadInt64(&bRan) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("key 2 never ran while key 1 was blocked")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	p.Drain()
}

func TestSerialBlockedTaskCountsAsQueued(t *testing.T) {
	// A popped-but-blocked serial task is still "queued, not running":
	// QueueLen (and the depth gauge) must include it until it runs.
	p := New(Config{Drivers: 2, Threshold: time.Millisecond, T: time.Millisecond})
	defer p.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	p.Submit(Task{Key: 9, Serial: true, Run: func() error { close(started); <-gate; return nil }})
	<-started
	p.Submit(Task{Key: 9, Serial: true, Run: func() error { return nil }})
	// Give the second driver time to pop the blocked task into the
	// shard's blocked list.
	deadline := time.Now().Add(time.Second)
	for p.QueueLen() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue len = %d, want 1 (blocked serial task)", p.QueueLen())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	p.Drain()
	if p.QueueLen() != 0 {
		t.Errorf("queue len after drain = %d", p.QueueLen())
	}
}

func TestOverflowSpillKeepsSubmitCheap(t *testing.T) {
	// With one driver wedged, unkeyed submits past the spill depth land
	// on the overflow queue; everything still runs once unwedged.
	p := New(Config{Drivers: 1, Threshold: time.Millisecond, T: time.Millisecond})
	defer p.Close()
	gate := make(chan struct{})
	p.Submit(Task{Run: func() error { <-gate; return nil }})
	var count int64
	const n = spillDepth * 3
	for i := 0; i < n; i++ {
		p.Submit(Task{Run: func() error { atomic.AddInt64(&count, 1); return nil }})
	}
	if got := p.overflow.depth.Load(); got == 0 {
		t.Errorf("overflow depth = 0 after %d submits onto a wedged shard", n)
	}
	if got := p.QueueLen(); got < n-1 {
		t.Errorf("queue len = %d, want >= %d", got, n-1)
	}
	close(gate)
	p.Drain()
	if count != n {
		t.Fatalf("executed %d, want %d", count, n)
	}
}

func TestParkUnparkCounters(t *testing.T) {
	p := New(Config{Drivers: 2, Threshold: time.Millisecond, T: time.Hour})
	defer p.Close()
	// Let the drivers go idle: with T enormous they park until woken.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Parks < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("parks = %d, want both idle drivers parked", p.Stats().Parks)
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	p.Submit(Task{Run: func() error { close(done); return nil }})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("submit did not wake a parked driver")
	}
	p.Drain()
	if st := p.Stats(); st.Unparks == 0 {
		t.Errorf("unparks = 0 after a wake-up submit; stats = %+v", st)
	}
}

func TestKeyedRoutingIsDeterministic(t *testing.T) {
	p := New(Config{Drivers: 4, Threshold: time.Millisecond, T: time.Millisecond})
	defer p.Close()
	for _, key := range []int64{1, -1, 12345, -98765} {
		a, b := p.shardFor(Task{Key: key}), p.shardFor(Task{Key: key})
		if a != b {
			t.Errorf("key %d routed to two different shards", key)
		}
		if a == p.overflow {
			t.Errorf("key %d routed to the overflow queue", key)
		}
	}
}

func TestSerialRetryStillCompletes(t *testing.T) {
	// A transiently failing serial task releases its key, retries via
	// the normal queue path, and later same-key tasks wait their turn.
	pol := &retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	p := New(Config{Drivers: 4, Threshold: time.Millisecond, T: time.Millisecond})
	defer p.Close()
	var first, second int64
	p.Submit(Task{Key: 5, Serial: true, Retry: pol, Run: func() error {
		if atomic.AddInt64(&first, 1) < 2 {
			return retry.Transient(fmt.Errorf("flaky"))
		}
		return nil
	}})
	p.Submit(Task{Key: 5, Serial: true, Run: func() error {
		atomic.AddInt64(&second, 1)
		return nil
	}})
	p.Drain()
	if first != 2 || second != 1 {
		t.Errorf("first ran %d (want 2), second ran %d (want 1)", first, second)
	}
}

func TestCloseWaitsForScheduledRetries(t *testing.T) {
	// Close must not strand a retry scheduled via AfterFunc: the final
	// incarnation still runs before Close returns.
	pol := &retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 5 * time.Millisecond}
	var runs int64
	p := New(Config{Drivers: 1})
	p.Submit(Task{Retry: pol, Run: func() error {
		if atomic.AddInt64(&runs, 1) < 2 {
			return retry.Transient(fmt.Errorf("flaky"))
		}
		return nil
	}})
	p.Close()
	if got := atomic.LoadInt64(&runs); got != 2 {
		t.Errorf("runs at Close return = %d, want 2", got)
	}
}

func TestRunSlotReportsDriverIdentity(t *testing.T) {
	const drivers = 4
	p := New(Config{Drivers: drivers, T: time.Millisecond, Threshold: time.Millisecond})
	defer p.Close()
	var seen [drivers]int64
	var bad int64
	for i := 0; i < 2000; i++ {
		err := p.Submit(Task{Kind: ProcessToken, RunSlot: func(slot int) error {
			if slot < 0 || slot >= drivers {
				atomic.AddInt64(&bad, 1)
				return nil
			}
			atomic.AddInt64(&seen[slot], 1)
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	if bad != 0 {
		t.Fatalf("%d tasks saw a slot outside [0, %d)", bad, drivers)
	}
	var total int64
	for _, n := range seen {
		total += n
	}
	if total != 2000 {
		t.Fatalf("executed %d tasks through RunSlot, want 2000", total)
	}
	if p.Drivers() != drivers {
		t.Fatalf("Drivers() = %d, want %d", p.Drivers(), drivers)
	}
}

func TestRunSlotTakesPrecedenceOverRun(t *testing.T) {
	p := New(Config{Drivers: 1, T: time.Millisecond, Threshold: time.Millisecond})
	defer p.Close()
	var viaSlot, viaRun int64
	if err := p.Submit(Task{
		Kind:    ProcessToken,
		Run:     func() error { atomic.AddInt64(&viaRun, 1); return nil },
		RunSlot: func(int) error { atomic.AddInt64(&viaSlot, 1); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	if viaSlot != 1 || viaRun != 0 {
		t.Fatalf("viaSlot=%d viaRun=%d, want 1/0", viaSlot, viaRun)
	}
}
