package taskq

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"triggerman/internal/retry"
)

func TestSubmitAndDrain(t *testing.T) {
	p := New(Config{Drivers: 4, T: time.Millisecond, Threshold: time.Millisecond})
	defer p.Close()
	var count int64
	for i := 0; i < 1000; i++ {
		err := p.Submit(Task{Kind: ProcessToken, Run: func() error {
			atomic.AddInt64(&count, 1)
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	if count != 1000 {
		t.Fatalf("executed %d", count)
	}
	st := p.Stats()
	if st.Enqueued != 1000 || st.Executed != 1000 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFollowUpTasks(t *testing.T) {
	// A ProcessToken task fans out RunAction tasks; Drain must cover the
	// whole tree.
	p := New(Config{Drivers: 2, T: time.Millisecond, Threshold: time.Millisecond})
	defer p.Close()
	var actions int64
	for i := 0; i < 10; i++ {
		p.Submit(Task{Kind: ProcessToken, Run: func() error {
			for j := 0; j < 5; j++ {
				p.Submit(Task{Kind: RunAction, Run: func() error {
					atomic.AddInt64(&actions, 1)
					return nil
				}})
			}
			return nil
		}})
	}
	p.Drain()
	if actions != 50 {
		t.Fatalf("actions = %d", actions)
	}
}

func TestErrorsCounted(t *testing.T) {
	var seen int64
	p := New(Config{Drivers: 1, OnError: func(error) { atomic.AddInt64(&seen, 1) }})
	defer p.Close()
	p.Submit(Task{Run: func() error { return fmt.Errorf("boom") }})
	p.Submit(Task{Run: nil}) // nil Run is a no-op, not a crash
	p.Drain()
	if p.Stats().Errors != 1 || seen != 1 {
		t.Errorf("errors = %d, seen = %d", p.Stats().Errors, seen)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	p := New(Config{Drivers: 1})
	p.Close()
	if err := p.Submit(Task{Run: func() error { return nil }}); err == nil {
		t.Error("submit after close should fail")
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Drivers < 1 {
		t.Error("default drivers")
	}
	if cfg.T != 250*time.Millisecond || cfg.Threshold != 250*time.Millisecond {
		t.Error("paper defaults for T and THRESHOLD")
	}
	half := Config{ConcurrencyLevel: 0.5}.withDefaults()
	if half.Drivers > cfg.Drivers || half.Drivers < 1 {
		t.Errorf("TMAN_CONCURRENCY_LEVEL=0.5 -> %d drivers (full=%d)", half.Drivers, cfg.Drivers)
	}
	bad := Config{ConcurrencyLevel: 7}.withDefaults()
	if bad.ConcurrencyLevel != 1.0 {
		t.Error("out-of-range level should clamp to 1.0")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{ProcessToken, RunAction, TokenConditions, TokenActions} {
		if k.String() == "" {
			t.Error("kind name")
		}
	}
}

func TestParallelismActuallyHappens(t *testing.T) {
	// With 4 drivers and tasks that block on a shared barrier, all 4
	// must be in-flight simultaneously.
	p := New(Config{Drivers: 4, Threshold: time.Microsecond})
	defer p.Close()
	var inFlight, peak int64
	var mu sync.Mutex
	for i := 0; i < 40; i++ {
		p.Submit(Task{Run: func() error {
			cur := atomic.AddInt64(&inFlight, 1)
			mu.Lock()
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&inFlight, -1)
			return nil
		}})
	}
	p.Drain()
	if peak < 2 {
		t.Errorf("peak concurrency = %d, expected parallel drivers", peak)
	}
}

func TestQueueLenAndSlide(t *testing.T) {
	p := New(Config{Drivers: 1, Threshold: time.Millisecond})
	defer p.Close()
	block := make(chan struct{})
	p.Submit(Task{Run: func() error { <-block; return nil }})
	for i := 0; i < 3000; i++ {
		p.Submit(Task{Run: func() error { return nil }})
	}
	if p.QueueLen() < 2500 {
		t.Errorf("queue len = %d", p.QueueLen())
	}
	close(block)
	p.Drain()
	if p.QueueLen() != 0 {
		t.Errorf("queue len after drain = %d", p.QueueLen())
	}
}

func TestDrainSliceAccounting(t *testing.T) {
	p := New(Config{Drivers: 1, Threshold: 50 * time.Millisecond})
	defer p.Close()
	for i := 0; i < 100; i++ {
		p.Submit(Task{Run: func() error { return nil }})
	}
	p.Drain()
	st := p.Stats()
	if st.DrainSlices < 1 || st.DrainSlices > 100 {
		t.Errorf("drain slices = %d", st.DrainSlices)
	}
}

func TestPanicIsolation(t *testing.T) {
	// A panicking task must be converted into an error, not kill its
	// driver: with a single driver, later tasks still run.
	var panics, after int64
	var got error
	var mu sync.Mutex
	p := New(Config{Drivers: 1, OnError: func(err error) {
		mu.Lock()
		got = err
		mu.Unlock()
	}})
	defer p.Close()
	p.Submit(Task{Kind: RunAction, Run: func() error {
		atomic.AddInt64(&panics, 1)
		panic("poison token")
	}})
	for i := 0; i < 10; i++ {
		p.Submit(Task{Run: func() error { atomic.AddInt64(&after, 1); return nil }})
	}
	p.Drain()
	if after != 10 {
		t.Fatalf("driver died: only %d tasks ran after the panic", after)
	}
	st := p.Stats()
	if st.Panics != 1 || st.Errors != 1 {
		t.Errorf("stats = %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	var pe *retry.PanicError
	if !errors.As(got, &pe) || len(pe.Stack) == 0 {
		t.Errorf("OnError got %v, want PanicError with stack", got)
	}
}

func TestDrainReturnsWhenEveryTaskErrors(t *testing.T) {
	// Drain must terminate even when 100% of the queued tasks fail —
	// the errors-only path must still release pending accounting.
	var seen int64
	p := New(Config{Drivers: 2, OnError: func(error) { atomic.AddInt64(&seen, 1) }})
	defer p.Close()
	for i := 0; i < 200; i++ {
		p.Submit(Task{Run: func() error { return fmt.Errorf("always fails") }})
	}
	done := make(chan struct{})
	go func() { p.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return with an all-error queue")
	}
	if seen != 200 || p.Stats().Errors != 200 {
		t.Errorf("OnError saw %d, stats errors %d", seen, p.Stats().Errors)
	}
}

func TestOnErrorReceivesTaskError(t *testing.T) {
	want := fmt.Errorf("specific failure")
	var got error
	var mu sync.Mutex
	p := New(Config{Drivers: 1, OnError: func(err error) {
		mu.Lock()
		got = err
		mu.Unlock()
	}})
	defer p.Close()
	p.Submit(Task{Run: func() error { return want }})
	p.Drain()
	mu.Lock()
	defer mu.Unlock()
	if !errors.Is(got, want) {
		t.Errorf("OnError got %v, want %v", got, want)
	}
}

func TestTaskRetryTransient(t *testing.T) {
	// A transiently failing task is re-enqueued with backoff and Drain
	// waits for its final success.
	pol := &retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	var runs int64
	var failed int64
	p := New(Config{Drivers: 2, OnError: func(error) { atomic.AddInt64(&failed, 1) }})
	defer p.Close()
	p.Submit(Task{Kind: ProcessToken, Retry: pol, Run: func() error {
		if atomic.AddInt64(&runs, 1) < 3 {
			return retry.Transient(fmt.Errorf("flaky dequeue"))
		}
		return nil
	}})
	p.Drain()
	if runs != 3 {
		t.Fatalf("runs = %d, want 3", runs)
	}
	if failed != 0 {
		t.Errorf("OnError fired %d times for a task that eventually succeeded", failed)
	}
	if st := p.Stats(); st.Retries != 2 {
		t.Errorf("retries = %d", st.Retries)
	}
}

func TestTaskRetryExhaustionReportsError(t *testing.T) {
	pol := &retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	var runs, failed int64
	p := New(Config{Drivers: 1, OnError: func(error) { atomic.AddInt64(&failed, 1) }})
	defer p.Close()
	p.Submit(Task{Retry: pol, Run: func() error {
		atomic.AddInt64(&runs, 1)
		return retry.Transient(fmt.Errorf("still down"))
	}})
	p.Drain()
	if runs != 3 {
		t.Fatalf("runs = %d, want 3 (MaxAttempts)", runs)
	}
	if failed != 1 {
		t.Errorf("OnError fired %d times, want once at exhaustion", failed)
	}
}

func TestTaskRetrySkipsPermanentErrors(t *testing.T) {
	pol := &retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	var runs int64
	p := New(Config{Drivers: 1})
	defer p.Close()
	p.Submit(Task{Retry: pol, Run: func() error {
		atomic.AddInt64(&runs, 1)
		return fmt.Errorf("semantic error") // unmarked => not retried
	}})
	p.Drain()
	if runs != 1 {
		t.Errorf("permanent error retried %d times", runs)
	}
}

func TestCloseWaitsForScheduledRetries(t *testing.T) {
	// Close must not strand a retry scheduled via AfterFunc: the final
	// incarnation still runs before Close returns.
	pol := &retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 5 * time.Millisecond}
	var runs int64
	p := New(Config{Drivers: 1})
	p.Submit(Task{Retry: pol, Run: func() error {
		if atomic.AddInt64(&runs, 1) < 2 {
			return retry.Transient(fmt.Errorf("flaky"))
		}
		return nil
	}})
	p.Close()
	if got := atomic.LoadInt64(&runs); got != 2 {
		t.Errorf("runs at Close return = %d, want 2", got)
	}
}
