package taskq

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitAndDrain(t *testing.T) {
	p := New(Config{Drivers: 4, T: time.Millisecond, Threshold: time.Millisecond})
	defer p.Close()
	var count int64
	for i := 0; i < 1000; i++ {
		err := p.Submit(Task{Kind: ProcessToken, Run: func() error {
			atomic.AddInt64(&count, 1)
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	if count != 1000 {
		t.Fatalf("executed %d", count)
	}
	st := p.Stats()
	if st.Enqueued != 1000 || st.Executed != 1000 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFollowUpTasks(t *testing.T) {
	// A ProcessToken task fans out RunAction tasks; Drain must cover the
	// whole tree.
	p := New(Config{Drivers: 2, T: time.Millisecond, Threshold: time.Millisecond})
	defer p.Close()
	var actions int64
	for i := 0; i < 10; i++ {
		p.Submit(Task{Kind: ProcessToken, Run: func() error {
			for j := 0; j < 5; j++ {
				p.Submit(Task{Kind: RunAction, Run: func() error {
					atomic.AddInt64(&actions, 1)
					return nil
				}})
			}
			return nil
		}})
	}
	p.Drain()
	if actions != 50 {
		t.Fatalf("actions = %d", actions)
	}
}

func TestErrorsCounted(t *testing.T) {
	var seen int64
	p := New(Config{Drivers: 1, OnError: func(error) { atomic.AddInt64(&seen, 1) }})
	defer p.Close()
	p.Submit(Task{Run: func() error { return fmt.Errorf("boom") }})
	p.Submit(Task{Run: nil}) // nil Run is a no-op, not a crash
	p.Drain()
	if p.Stats().Errors != 1 || seen != 1 {
		t.Errorf("errors = %d, seen = %d", p.Stats().Errors, seen)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	p := New(Config{Drivers: 1})
	p.Close()
	if err := p.Submit(Task{Run: func() error { return nil }}); err == nil {
		t.Error("submit after close should fail")
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Drivers < 1 {
		t.Error("default drivers")
	}
	if cfg.T != 250*time.Millisecond || cfg.Threshold != 250*time.Millisecond {
		t.Error("paper defaults for T and THRESHOLD")
	}
	half := Config{ConcurrencyLevel: 0.5}.withDefaults()
	if half.Drivers > cfg.Drivers || half.Drivers < 1 {
		t.Errorf("TMAN_CONCURRENCY_LEVEL=0.5 -> %d drivers (full=%d)", half.Drivers, cfg.Drivers)
	}
	bad := Config{ConcurrencyLevel: 7}.withDefaults()
	if bad.ConcurrencyLevel != 1.0 {
		t.Error("out-of-range level should clamp to 1.0")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{ProcessToken, RunAction, TokenConditions, TokenActions} {
		if k.String() == "" {
			t.Error("kind name")
		}
	}
}

func TestParallelismActuallyHappens(t *testing.T) {
	// With 4 drivers and tasks that block on a shared barrier, all 4
	// must be in-flight simultaneously.
	p := New(Config{Drivers: 4, Threshold: time.Microsecond})
	defer p.Close()
	var inFlight, peak int64
	var mu sync.Mutex
	for i := 0; i < 40; i++ {
		p.Submit(Task{Run: func() error {
			cur := atomic.AddInt64(&inFlight, 1)
			mu.Lock()
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&inFlight, -1)
			return nil
		}})
	}
	p.Drain()
	if peak < 2 {
		t.Errorf("peak concurrency = %d, expected parallel drivers", peak)
	}
}

func TestQueueLenAndSlide(t *testing.T) {
	p := New(Config{Drivers: 1, Threshold: time.Millisecond})
	defer p.Close()
	block := make(chan struct{})
	p.Submit(Task{Run: func() error { <-block; return nil }})
	for i := 0; i < 3000; i++ {
		p.Submit(Task{Run: func() error { return nil }})
	}
	if p.QueueLen() < 2500 {
		t.Errorf("queue len = %d", p.QueueLen())
	}
	close(block)
	p.Drain()
	if p.QueueLen() != 0 {
		t.Errorf("queue len after drain = %d", p.QueueLen())
	}
}

func TestDrainSliceAccounting(t *testing.T) {
	p := New(Config{Drivers: 1, Threshold: 50 * time.Millisecond})
	defer p.Close()
	for i := 0; i < 100; i++ {
		p.Submit(Task{Run: func() error { return nil }})
	}
	p.Drain()
	st := p.Stats()
	if st.DrainSlices < 1 || st.DrainSlices > 100 {
		t.Errorf("drain slices = %d", st.DrainSlices)
	}
}
