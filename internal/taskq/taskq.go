// Package taskq implements the concurrent processing machinery of §6: a
// task queue holding the four task kinds the paper defines, and N driver
// workers that each run the TmanTest() loop — drain tasks for at most
// THRESHOLD, yield, and come back after T when the queue was empty.
//
// The paper cannot spawn threads inside Informix, so it multiplexes
// driver *processes* over a shared-memory queue; here goroutines play
// the driver role, preserving the scheduling discipline (bounded drain
// slices, idle backoff).
//
// The queue itself is sharded per driver. Submit routes keyed tasks to
// their home shard (source-affine, so one data source's tokens stay
// together) and spreads unkeyed tasks round-robin, spilling to a global
// overflow queue when a shard backs up. A driver drains its own shard
// first, then the overflow, then steals from its peers' shards before
// parking — so a single hot source cannot idle the rest of the pool,
// and an idle pool costs nothing but parked goroutines.
//
// Tasks marked Serial additionally serialize per Key: at most one
// Serial task per key runs at a time, and blocked successors keep their
// FIFO position. The pipeline's SourceFIFO mode uses this to give each
// data source strict enqueue-order action visibility even with stealing
// enabled.
package taskq

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"triggerman/internal/fifo"
	"triggerman/internal/metrics"
	"triggerman/internal/retry"
)

// Kind enumerates the §6 task types.
type Kind uint8

const (
	// ProcessToken matches one token against the whole predicate index
	// (task type 1).
	ProcessToken Kind = iota
	// RunAction executes one fired rule action (task type 2).
	RunAction
	// TokenConditions matches one token against one partition of the
	// predicate index's triggerID sets (task type 3).
	TokenConditions
	// TokenActions runs the set of rule actions triggered by one token
	// (task type 4).
	TokenActions
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ProcessToken:
		return "process-token"
	case RunAction:
		return "run-action"
	case TokenConditions:
		return "token-conditions"
	case TokenActions:
		return "token-actions"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// spillDepth is the per-shard backlog beyond which unkeyed Submits
// divert to the global overflow queue instead of piling onto one shard.
const spillDepth = 1024

// Priority selects which of a shard's two run queues a task joins.
// Drivers drain high before low — across their own shard, the overflow
// queue, and steals — but an aging tick (Config.AgingEvery) bounds how
// long low-priority work can wait behind a steady high-priority stream.
type Priority uint8

const (
	// High is the default: interactive-class work.
	High Priority = iota
	// Low marks batch-class work: drained after high, first to wait
	// under load, never starved thanks to aging.
	Low
)

// String names the priority.
func (pr Priority) String() string {
	if pr == Low {
		return "low"
	}
	return "high"
}

// NoSlot is the slot index reported to work running outside any
// driver: synchronous embedders and direct producer calls. Slot-keyed
// counter slices treat it as "no worker identity" and fall back to
// their shared cell.
const NoSlot = -1

// Task is one unit of work. Run executes it; tasks may enqueue follow-up
// tasks (e.g. a ProcessToken task spawning RunAction tasks).
//
// Every task runs under panic isolation: a panic in Run is recovered
// into a *retry.PanicError and reported through OnError, so one poison
// token can neither kill its driver goroutine nor wedge Drain.
type Task struct {
	Kind Kind
	Run  func() error
	// RunSlot, when set, is invoked instead of Run and receives the
	// executing driver's stable slot index in [0, Drivers): the identity
	// of the worker, not the goroutine, so a stolen task reports the
	// stealing driver's slot. Phase-reconciled counters key their
	// per-worker slices on it (see internal/phasecounter). A task run
	// outside any driver (synchronous embedders) would see NoSlot.
	RunSlot func(slot int) error
	// Key, when non-zero, routes the task to a fixed shard so tasks
	// sharing a key drain from the same queue (source affinity). Keyed
	// tasks never spill to the overflow queue.
	Key int64
	// Serial, with a non-zero Key, guarantees at most one task with
	// this key runs at a time; later same-key tasks wait, keeping their
	// FIFO position. Stealing drivers honor the constraint because the
	// busy/blocked bookkeeping lives on the key's home shard.
	Serial bool
	// Pri selects the run queue; the zero value is High, so untagged
	// call sites keep today's behavior.
	Pri Priority
	// Retry, when non-nil, re-enqueues the task with the policy's
	// backoff after Run returns a transient error, up to the policy's
	// MaxAttempts total runs. Permanent errors, unknown errors and
	// panics are never retried. Drain and Close account for scheduled
	// retries: they wait for the task's final outcome.
	Retry *retry.Policy
	// OnDone, when set, runs exactly once when the task reaches its
	// terminal outcome — success, a non-retryable error, or retry
	// exhaustion. Attempts that will be retried do not call it. The
	// token tracer uses this to release span references held by
	// in-flight tasks.
	OnDone func(error)

	// attempt counts completed runs of this task (retry bookkeeping).
	attempt int
	// submitted is stamped by push so runTask can measure how long the
	// task waited in the run queue before a driver picked it up — the
	// scheduler-wait half of the queue-wait/service decomposition. A
	// requeued retry is re-stamped: each incarnation's wait is its own
	// observation.
	submitted time.Time
}

// Config tunes the driver pool.
type Config struct {
	// Drivers is N; 0 means ceil(NUM_CPUS * ConcurrencyLevel).
	Drivers int
	// ConcurrencyLevel is TMAN_CONCURRENCY_LEVEL in (0, 1]; default 1.0.
	ConcurrencyLevel float64
	// T is the idle re-poll interval (paper default 250ms; tests and
	// benchmarks use much smaller values).
	T time.Duration
	// Threshold bounds one TmanTest drain slice (paper default 250ms).
	Threshold time.Duration
	// AgingEvery bounds low-priority starvation: after this many
	// consecutive high-priority picks from one shard, the next pick
	// takes a waiting low-priority task even though high work remains.
	// Default 16.
	AgingEvery int
	// OnError receives task errors (default: counted and dropped).
	OnError func(error)
	// Metrics, when non-nil, registers the pool's instruments:
	// per-kind dispatch counters, a task-duration histogram, a
	// queue-depth gauge, and steal/park counters.
	Metrics *metrics.Registry
}

// ResolveDrivers is the pool's driver-count derivation, exported so
// embedders can size per-driver structures (slice geometries, slot
// arrays) before the pool exists: drivers when positive, else
// ceil(NUM_CPUS * level) as in §6.
func ResolveDrivers(drivers int, level float64) int {
	if level <= 0 || level > 1 {
		level = 1.0
	}
	if drivers > 0 {
		return drivers
	}
	n := int(float64(runtime.NumCPU())*level + 0.999999)
	if n < 1 {
		n = 1
	}
	return n
}

func (c Config) withDefaults() Config {
	if c.ConcurrencyLevel <= 0 || c.ConcurrencyLevel > 1 {
		c.ConcurrencyLevel = 1.0
	}
	c.Drivers = ResolveDrivers(c.Drivers, c.ConcurrencyLevel)
	if c.T <= 0 {
		c.T = 250 * time.Millisecond
	}
	if c.Threshold <= 0 {
		c.Threshold = 250 * time.Millisecond
	}
	if c.AgingEvery <= 0 {
		c.AgingEvery = 16
	}
	return c
}

// Stats counts pool activity.
type Stats struct {
	Enqueued, Executed, Errors int64
	// DrainSlices counts TmanTest invocations that found work.
	DrainSlices int64
	// Panics counts task panics recovered by the drivers.
	Panics int64
	// Retries counts backoff re-enqueues of transiently failed tasks.
	Retries int64
	// Steals counts tasks a driver took from another driver's shard.
	Steals int64
	// Parks counts drivers going idle; Unparks counts wake-ups by a
	// Submit (timed re-polls after T are not counted as unparks).
	Parks, Unparks int64
	// Aged counts low-priority tasks promoted by the aging tick while
	// high-priority work was still waiting.
	Aged int64
	// LowRuns counts executed low-priority tasks.
	LowRuns int64
}

// shard is one driver's run queue. The overflow queue is a shard too
// (without an owning driver). busy/blocked implement the Serial
// constraint: busy holds keys with a task currently running, blocked
// holds popped-but-not-runnable tasks per key, in FIFO order.
type shard struct {
	mu sync.Mutex
	// hi and lo are the priority run queues; takeFrom drains hi first
	// with an aging tick so lo is never starved.
	hi, lo fifo.Queue[Task]
	// hiStreak counts consecutive high-priority picks since the last
	// low pick (the aging clock).
	hiStreak int
	busy     map[int64]struct{}
	blocked  map[int64][]Task
	// depth mirrors the number of tasks queued on this shard (including
	// blocked Serial tasks) so QueueLen and the depth gauge sum shard
	// lengths without taking every shard lock.
	depth atomic.Int64
}

// queueFor picks the run queue matching a task's priority. Callers hold
// s.mu.
func (s *shard) queueFor(t Task) *fifo.Queue[Task] {
	if t.Pri == Low {
		return &s.lo
	}
	return &s.hi
}

func newShard() *shard {
	return &shard{busy: make(map[int64]struct{}), blocked: make(map[int64][]Task)}
}

// Pool is the sharded task queue plus its driver goroutines.
type Pool struct {
	cfg Config

	shards   []*shard
	overflow *shard
	rr       atomic.Uint64 // round-robin cursor for unkeyed tasks

	// runnable counts queued tasks that a driver could take right now
	// (excludes Serial tasks parked behind a busy key). Parking drivers
	// re-check it after joining the waiter list, closing the lost-wakeup
	// window between a failed scan and the park.
	runnable atomic.Int64

	// closeMu serializes Submit against Close's transition to closed;
	// requeue (retry re-admission) deliberately bypasses it.
	closeMu sync.RWMutex
	closed  atomic.Bool

	// lotMu guards the parking lot: drivers waiting for work.
	lotMu   sync.Mutex
	waiters []*waiter

	// pendN counts open tasks (queued or running); drainers are parked
	// Drain/Close callers woken at the next zero crossing. An explicit
	// counter instead of a WaitGroup: Drain and Close must tolerate
	// Submits racing the wait (a Close during a token storm), and
	// WaitGroup.Add concurrent with Wait across a zero crossing is a
	// runtime panic ("WaitGroup misuse").
	pendN    atomic.Int64
	drainMu  sync.Mutex
	drainers []chan struct{}

	drivers sync.WaitGroup

	stats Stats

	// Registry-backed instruments (nil without Config.Metrics).
	kindCounters [4]*metrics.Counter
	taskHist     *metrics.Histogram
	// waitHists record submit→run wait per priority queue, indexed by
	// Priority (High, Low).
	waitHists [2]*metrics.Histogram
}

// waiter is one parked driver's wake-up channel (capacity 1 so a wake
// never blocks the waker and a stale token at most causes one spurious
// rescan).
type waiter struct {
	ch chan struct{}
}

// New creates a pool and starts its drivers.
func New(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg, overflow: newShard()}
	p.shards = make([]*shard, cfg.Drivers)
	for i := range p.shards {
		p.shards[i] = newShard()
	}
	if reg := cfg.Metrics; reg != nil {
		for k := ProcessToken; k <= TokenActions; k++ {
			p.kindCounters[k] = reg.Counter("tman_tasks_total",
				"tasks dispatched by the driver pool", metrics.L("kind", k.String()))
		}
		p.taskHist = reg.Histogram("tman_task_duration_seconds",
			"task execution time (one attempt)", nil)
		for pr := High; pr <= Low; pr++ {
			p.waitHists[pr] = reg.Histogram("tman_task_wait_seconds",
				"task wait in the run queue, submit to first run",
				nil, metrics.L("pri", pr.String()))
		}
		reg.GaugeFunc("tman_task_queue_depth", "tasks queued, not yet running",
			func() int64 { return int64(p.QueueLen()) })
		reg.CounterFunc("tman_task_steals_total", "tasks taken from another driver's shard",
			func() int64 { return atomic.LoadInt64(&p.stats.Steals) })
		reg.CounterFunc("tman_driver_parks_total", "drivers going idle",
			func() int64 { return atomic.LoadInt64(&p.stats.Parks) })
		reg.CounterFunc("tman_driver_unparks_total", "idle drivers woken by a submit",
			func() int64 { return atomic.LoadInt64(&p.stats.Unparks) })
		reg.CounterFunc("tman_task_aged_total", "low-priority tasks promoted by the aging tick",
			func() int64 { return atomic.LoadInt64(&p.stats.Aged) })
		reg.CounterFunc("tman_task_low_runs_total", "executed low-priority tasks",
			func() int64 { return atomic.LoadInt64(&p.stats.LowRuns) })
	}
	p.drivers.Add(cfg.Drivers)
	for i := 0; i < cfg.Drivers; i++ {
		go p.driver(i)
	}
	return p
}

// Drivers reports the configured driver count.
func (p *Pool) Drivers() int { return p.cfg.Drivers }

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Enqueued:    atomic.LoadInt64(&p.stats.Enqueued),
		Executed:    atomic.LoadInt64(&p.stats.Executed),
		Errors:      atomic.LoadInt64(&p.stats.Errors),
		DrainSlices: atomic.LoadInt64(&p.stats.DrainSlices),
		Panics:      atomic.LoadInt64(&p.stats.Panics),
		Retries:     atomic.LoadInt64(&p.stats.Retries),
		Steals:      atomic.LoadInt64(&p.stats.Steals),
		Parks:       atomic.LoadInt64(&p.stats.Parks),
		Unparks:     atomic.LoadInt64(&p.stats.Unparks),
		Aged:        atomic.LoadInt64(&p.stats.Aged),
		LowRuns:     atomic.LoadInt64(&p.stats.LowRuns),
	}
}

// shardFor picks the queue a task lands on. Keyed tasks always go to
// the key's home shard — routing and the Serial bookkeeping both depend
// on that. Unkeyed tasks rotate across shards and divert to the global
// overflow queue when the chosen shard is backed up, so a burst cannot
// bury one driver while its peers idle.
func (p *Pool) shardFor(t Task) *shard {
	if t.Key != 0 {
		return p.shards[uint64(t.Key)%uint64(len(p.shards))]
	}
	s := p.shards[p.rr.Add(1)%uint64(len(p.shards))]
	if s.depth.Load() >= spillDepth {
		return p.overflow
	}
	return s
}

// push enqueues t on its shard and wakes one parked driver. Callers
// handle closed-state and pending accounting.
func (p *Pool) push(t Task) {
	t.submitted = time.Now()
	s := p.shardFor(t)
	s.mu.Lock()
	s.queueFor(t).Push(t)
	s.mu.Unlock()
	s.depth.Add(1)
	p.runnable.Add(1)
	p.wakeOne()
}

// Submit enqueues a task. It fails after Close.
func (p *Pool) Submit(t Task) error {
	p.closeMu.RLock()
	if p.closed.Load() {
		p.closeMu.RUnlock()
		return fmt.Errorf("taskq: pool is closed")
	}
	p.pendN.Add(1)
	atomic.AddInt64(&p.stats.Enqueued, 1)
	p.push(t)
	p.closeMu.RUnlock()
	return nil
}

// requeue re-admits a retried task. Unlike Submit it ignores the closed
// flag: the task was accepted before Close, and Close's pending.Wait
// cannot return until this incarnation runs, so the drivers are still
// alive to pick it up.
func (p *Pool) requeue(t Task) {
	p.push(t)
}

// QueueLen reports the number of queued (not yet running) tasks. It
// sums the shards' depth mirrors — no shard lock is taken, so a metrics
// scrape never stalls the hot path.
func (p *Pool) QueueLen() int {
	n := p.overflow.depth.Load()
	for _, s := range p.shards {
		n += s.depth.Load()
	}
	return int(n)
}

// takeFrom pops the next runnable task from one shard. Serial tasks
// whose key is busy are moved aside into the shard's blocked lists
// (keeping FIFO order per key) and promoted by release when the running
// task finishes.
func (p *Pool) takeFrom(s *shard) (Task, bool) {
	s.mu.Lock()
	for {
		var t Task
		var ok bool
		// High-priority first; after AgingEvery consecutive high picks
		// the next pick promotes the oldest waiting low task so a steady
		// interactive stream cannot starve batch work.
		if s.lo.Len() > 0 && (s.hi.Len() == 0 || s.hiStreak >= p.cfg.AgingEvery) {
			if s.hi.Len() > 0 {
				atomic.AddInt64(&p.stats.Aged, 1)
			}
			t, ok = s.lo.Pop()
			s.hiStreak = 0
		} else {
			t, ok = s.hi.Pop()
			if ok {
				s.hiStreak++
			}
		}
		if !ok {
			s.mu.Unlock()
			return Task{}, false
		}
		if t.Serial {
			if _, running := s.busy[t.Key]; running {
				s.blocked[t.Key] = append(s.blocked[t.Key], t)
				p.runnable.Add(-1)
				continue
			}
			s.busy[t.Key] = struct{}{}
		}
		s.depth.Add(-1)
		p.runnable.Add(-1)
		s.mu.Unlock()
		return t, true
	}
}

// release clears a Serial key after its task ran and promotes the
// oldest blocked same-key task to the front of its priority's shard
// queue, so the key's FIFO order survives the detour through blocked.
func (p *Pool) release(s *shard, key int64) {
	s.mu.Lock()
	delete(s.busy, key)
	bl := s.blocked[key]
	if len(bl) == 0 {
		s.mu.Unlock()
		return
	}
	next := bl[0]
	copy(bl, bl[1:])
	bl = bl[:len(bl)-1]
	if len(bl) == 0 {
		delete(s.blocked, key)
	} else {
		s.blocked[key] = bl
	}
	s.queueFor(next).PushFront(next)
	s.mu.Unlock()
	p.runnable.Add(1)
	p.wakeOne()
}

// findTask scans for work: the driver's own shard first, then the
// global overflow queue, then its peers' shards (a steal). It never
// blocks; the driver loop parks when it returns false.
func (p *Pool) findTask(id int) (Task, *shard, bool) {
	own := p.shards[id]
	if t, ok := p.takeFrom(own); ok {
		return t, own, true
	}
	if t, ok := p.takeFrom(p.overflow); ok {
		return t, p.overflow, true
	}
	for i := 1; i < len(p.shards); i++ {
		victim := p.shards[(id+i)%len(p.shards)]
		if t, ok := p.takeFrom(victim); ok {
			atomic.AddInt64(&p.stats.Steals, 1)
			return t, victim, true
		}
	}
	return Task{}, nil, false
}

// wakeOne pops one parked driver and signals it.
func (p *Pool) wakeOne() {
	p.lotMu.Lock()
	n := len(p.waiters)
	if n == 0 {
		p.lotMu.Unlock()
		return
	}
	w := p.waiters[n-1]
	p.waiters[n-1] = nil
	p.waiters = p.waiters[:n-1]
	p.lotMu.Unlock()
	select {
	case w.ch <- struct{}{}:
	default:
	}
}

// wakeAll signals every parked driver (Close).
func (p *Pool) wakeAll() {
	p.lotMu.Lock()
	ws := p.waiters
	p.waiters = nil
	p.lotMu.Unlock()
	for _, w := range ws {
		select {
		case w.ch <- struct{}{}:
		default:
		}
	}
}

// cancelPark withdraws w from the lot (it found work or the pool
// closed) and absorbs a signal sent concurrently so a stale token does
// not cause a phantom wake on the next park.
func (p *Pool) cancelPark(w *waiter) {
	p.lotMu.Lock()
	for i, x := range p.waiters {
		if x == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			break
		}
	}
	p.lotMu.Unlock()
	select {
	case <-w.ch:
	default:
	}
}

// driver is one TriggerMan driver: call TmanTest (a bounded drain) while
// work is found, otherwise park until a Submit wakes it or the idle
// interval T elapses. The paper's external driver processes must re-poll
// every T because they cannot be signalled; in-process drivers are woken
// immediately, which strictly dominates the T-polling discipline (T
// remains the timed-park bound for safety).
func (p *Pool) driver(id int) {
	defer p.drivers.Done()
	w := &waiter{ch: make(chan struct{}, 1)}
	timer := time.NewTimer(p.cfg.T)
	defer timer.Stop()
	for {
		t, s, ok := p.findTask(id)
		if ok {
			p.tmanTest(id, t, s)
			continue
		}
		if p.closed.Load() {
			// closed is stored only after every racing Submit finished
			// its push (Submit holds closeMu.RLock across check+push), so
			// a failed rescan after observing the flag proves the queues
			// are empty for good — no task can be stranded by a Submit
			// that won the race against Close.
			if t, s, ok := p.findTask(id); ok {
				p.tmanTest(id, t, s)
				continue
			}
			return
		}
		p.lotMu.Lock()
		p.waiters = append(p.waiters, w)
		p.lotMu.Unlock()
		atomic.AddInt64(&p.stats.Parks, 1)
		// Re-check after joining the lot: a Submit that scanned the lot
		// before we appended would otherwise be a lost wakeup.
		if p.runnable.Load() > 0 || p.closed.Load() {
			p.cancelPark(w)
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(p.cfg.T)
		select {
		case <-w.ch:
			atomic.AddInt64(&p.stats.Unparks, 1)
		case <-timer.C:
			p.cancelPark(w)
		}
	}
}

// tmanTest runs the first task and keeps draining until Threshold
// elapses, mirroring the paper's pseudocode (get task, execute, yield).
// Follow-up tasks come from the same scan order as the driver loop, so
// a drain slice steals too when its own shard runs dry.
func (p *Pool) tmanTest(id int, t Task, s *shard) {
	atomic.AddInt64(&p.stats.DrainSlices, 1)
	deadline := time.Now().Add(p.cfg.Threshold)
	for {
		p.runTask(id, t, s)
		if time.Now().After(deadline) {
			return
		}
		var ok bool
		t, s, ok = p.findTask(id)
		if !ok {
			return
		}
		// The paper calls mi_yield() between tasks so other Informix
		// work can run; Gosched is the goroutine analogue.
		runtime.Gosched()
	}
}

func (p *Pool) runTask(slot int, t Task, s *shard) {
	if t.Kind <= TokenActions {
		if c := p.kindCounters[t.Kind]; c != nil {
			c.Inc()
		}
	}
	var begin time.Time
	if p.taskHist != nil || p.waitHists[0] != nil {
		begin = time.Now()
		idx := High
		if t.Pri == Low {
			idx = Low
		}
		if h := p.waitHists[idx]; h != nil && !t.submitted.IsZero() {
			h.Observe(begin.Sub(t.submitted))
		}
	}
	err := p.invoke(slot, t)
	if t.Serial {
		// Release the key before retry/Done handling: a retried
		// incarnation re-acquires it via the normal queue path.
		p.release(s, t.Key)
	}
	if p.taskHist != nil {
		p.taskHist.Observe(time.Since(begin))
	}
	atomic.AddInt64(&p.stats.Executed, 1)
	if t.Pri == Low {
		atomic.AddInt64(&p.stats.LowRuns, 1)
	}
	if err == nil {
		if t.OnDone != nil {
			t.OnDone(nil)
		}
		p.donePending()
		return
	}
	atomic.AddInt64(&p.stats.Errors, 1)
	if t.Retry != nil && t.attempt+1 < t.Retry.WithDefaults().MaxAttempts && retry.IsTransient(err) {
		// Re-enqueue after the policy's backoff. The new incarnation is
		// registered with pending before this one is released, so Drain
		// and Close keep waiting for the task's final outcome.
		nt := t
		nt.attempt++
		p.pendN.Add(1)
		atomic.AddInt64(&p.stats.Retries, 1)
		time.AfterFunc(t.Retry.Backoff(nt.attempt), func() { p.requeue(nt) })
		p.donePending()
		return
	}
	if p.cfg.OnError != nil {
		p.cfg.OnError(err)
	}
	if t.OnDone != nil {
		t.OnDone(err)
	}
	p.donePending()
}

// invoke runs the task body under panic isolation: a panicking task is
// converted into a *retry.PanicError (with stack) instead of killing
// the driver goroutine or deadlocking Drain.
func (p *Pool) invoke(slot int, t Task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddInt64(&p.stats.Panics, 1)
			err = retry.Recovered(r)
		}
	}()
	if t.RunSlot != nil {
		return t.RunSlot(slot)
	}
	if t.Run == nil {
		return nil
	}
	return t.Run()
}

// donePending retires one open task and wakes every parked drainer at
// a zero crossing.
func (p *Pool) donePending() {
	if p.pendN.Add(-1) != 0 {
		return
	}
	p.drainMu.Lock()
	ds := p.drainers
	p.drainers = nil
	p.drainMu.Unlock()
	for _, ch := range ds {
		close(ch)
	}
}

// Drain blocks until every task enqueued so far (and every follow-up
// task they spawn) has finished. Unlike a WaitGroup wait it is safe
// against Submits racing the drain: the register-then-recheck dance
// closes the lost-wakeup window, and a waiter left registered across a
// missed crossing is swept (its channel closed) at the next one.
func (p *Pool) Drain() {
	for {
		if p.pendN.Load() == 0 {
			return
		}
		ch := make(chan struct{})
		p.drainMu.Lock()
		p.drainers = append(p.drainers, ch)
		p.drainMu.Unlock()
		if p.pendN.Load() == 0 {
			return
		}
		<-ch
	}
}

// Close stops accepting tasks, waits for the queue to drain, and stops
// the drivers. Tasks still in flight (and the follow-ups they cascade)
// complete; Submits racing Close either land before the drain finishes
// and are executed, or observe the closed flag and fail cleanly.
func (p *Pool) Close() {
	p.Drain()
	p.closeMu.Lock()
	p.closed.Store(true)
	p.closeMu.Unlock()
	p.wakeAll()
	p.drivers.Wait()
}
