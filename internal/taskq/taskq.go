// Package taskq implements the concurrent processing machinery of §6: a
// shared task queue holding the four task kinds the paper defines, and N
// driver workers that each run the TmanTest() loop — drain tasks for at
// most THRESHOLD, yield, and come back after T when the queue was empty.
//
// The paper cannot spawn threads inside Informix, so it multiplexes
// driver *processes* over a shared-memory queue; here goroutines play
// the driver role and the queue is an in-process structure, preserving
// the scheduling discipline (bounded drain slices, idle backoff).
package taskq

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"triggerman/internal/metrics"
	"triggerman/internal/retry"
)

// Kind enumerates the §6 task types.
type Kind uint8

const (
	// ProcessToken matches one token against the whole predicate index
	// (task type 1).
	ProcessToken Kind = iota
	// RunAction executes one fired rule action (task type 2).
	RunAction
	// TokenConditions matches one token against one partition of the
	// predicate index's triggerID sets (task type 3).
	TokenConditions
	// TokenActions runs the set of rule actions triggered by one token
	// (task type 4).
	TokenActions
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ProcessToken:
		return "process-token"
	case RunAction:
		return "run-action"
	case TokenConditions:
		return "token-conditions"
	case TokenActions:
		return "token-actions"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Task is one unit of work. Run executes it; tasks may enqueue follow-up
// tasks (e.g. a ProcessToken task spawning RunAction tasks).
//
// Every task runs under panic isolation: a panic in Run is recovered
// into a *retry.PanicError and reported through OnError, so one poison
// token can neither kill its driver goroutine nor wedge Drain.
type Task struct {
	Kind Kind
	Run  func() error
	// Retry, when non-nil, re-enqueues the task with the policy's
	// backoff after Run returns a transient error, up to the policy's
	// MaxAttempts total runs. Permanent errors, unknown errors and
	// panics are never retried. Drain and Close account for scheduled
	// retries: they wait for the task's final outcome.
	Retry *retry.Policy
	// OnDone, when set, runs exactly once when the task reaches its
	// terminal outcome — success, a non-retryable error, or retry
	// exhaustion. Attempts that will be retried do not call it. The
	// token tracer uses this to release span references held by
	// in-flight tasks.
	OnDone func(error)

	// attempt counts completed runs of this task (retry bookkeeping).
	attempt int
}

// Config tunes the driver pool.
type Config struct {
	// Drivers is N; 0 means ceil(NUM_CPUS * ConcurrencyLevel).
	Drivers int
	// ConcurrencyLevel is TMAN_CONCURRENCY_LEVEL in (0, 1]; default 1.0.
	ConcurrencyLevel float64
	// T is the idle re-poll interval (paper default 250ms; tests and
	// benchmarks use much smaller values).
	T time.Duration
	// Threshold bounds one TmanTest drain slice (paper default 250ms).
	Threshold time.Duration
	// OnError receives task errors (default: counted and dropped).
	OnError func(error)
	// Metrics, when non-nil, registers the pool's instruments:
	// per-kind dispatch counters, a task-duration histogram, and a
	// queue-depth gauge.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.ConcurrencyLevel <= 0 || c.ConcurrencyLevel > 1 {
		c.ConcurrencyLevel = 1.0
	}
	if c.Drivers <= 0 {
		n := int(float64(runtime.NumCPU())*c.ConcurrencyLevel + 0.999999)
		if n < 1 {
			n = 1
		}
		c.Drivers = n
	}
	if c.T <= 0 {
		c.T = 250 * time.Millisecond
	}
	if c.Threshold <= 0 {
		c.Threshold = 250 * time.Millisecond
	}
	return c
}

// Stats counts pool activity.
type Stats struct {
	Enqueued, Executed, Errors int64
	// DrainSlices counts TmanTest invocations that found work.
	DrainSlices int64
	// Panics counts task panics recovered by the drivers.
	Panics int64
	// Retries counts backoff re-enqueues of transiently failed tasks.
	Retries int64
}

// Pool is the shared task queue plus its driver goroutines.
type Pool struct {
	cfg Config

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Task
	head   int
	closed bool

	pending sync.WaitGroup // open tasks (queued or running)
	drivers sync.WaitGroup

	stats Stats

	// Registry-backed instruments (nil without Config.Metrics).
	kindCounters [4]*metrics.Counter
	taskHist     *metrics.Histogram
}

// New creates a pool and starts its drivers.
func New(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg}
	p.cond = sync.NewCond(&p.mu)
	if reg := cfg.Metrics; reg != nil {
		for k := ProcessToken; k <= TokenActions; k++ {
			p.kindCounters[k] = reg.Counter("tman_tasks_total",
				"tasks dispatched by the driver pool", metrics.L("kind", k.String()))
		}
		p.taskHist = reg.Histogram("tman_task_duration_seconds",
			"task execution time (one attempt)", nil)
		reg.GaugeFunc("tman_task_queue_depth", "tasks queued, not yet running",
			func() int64 { return int64(p.QueueLen()) })
	}
	p.drivers.Add(cfg.Drivers)
	for i := 0; i < cfg.Drivers; i++ {
		go p.driver()
	}
	return p
}

// Drivers reports the configured driver count.
func (p *Pool) Drivers() int { return p.cfg.Drivers }

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Enqueued:    atomic.LoadInt64(&p.stats.Enqueued),
		Executed:    atomic.LoadInt64(&p.stats.Executed),
		Errors:      atomic.LoadInt64(&p.stats.Errors),
		DrainSlices: atomic.LoadInt64(&p.stats.DrainSlices),
		Panics:      atomic.LoadInt64(&p.stats.Panics),
		Retries:     atomic.LoadInt64(&p.stats.Retries),
	}
}

// Submit enqueues a task. It fails after Close.
func (p *Pool) Submit(t Task) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("taskq: pool is closed")
	}
	p.pending.Add(1)
	p.queue = append(p.queue, t)
	atomic.AddInt64(&p.stats.Enqueued, 1)
	p.cond.Signal()
	p.mu.Unlock()
	return nil
}

// QueueLen reports the number of queued (not yet running) tasks.
func (p *Pool) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue) - p.head
}

// pop removes the next task, blocking while the queue is empty. The
// paper's external driver processes must re-poll every T because they
// cannot be signalled; in-process drivers are woken immediately on
// Submit, which strictly dominates the T-polling discipline (T remains
// configurable for the network daemon's external-driver mode).
// ok is false when the pool is closed and drained.
func (p *Pool) pop() (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.head >= len(p.queue) {
		if p.closed {
			return Task{}, false
		}
		p.cond.Wait()
	}
	t := p.queue[p.head]
	p.queue[p.head] = Task{}
	p.head++
	if p.head > 1024 && p.head*2 > len(p.queue) {
		p.queue = append(p.queue[:0], p.queue[p.head:]...)
		p.head = 0
	}
	return t, true
}

// tryPop is pop without blocking.
func (p *Pool) tryPop() (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.head >= len(p.queue) {
		return Task{}, false
	}
	t := p.queue[p.head]
	p.queue[p.head] = Task{}
	p.head++
	return t, true
}

// driver is one TriggerMan driver: call TmanTest (a bounded drain),
// and immediately call again while work remained; otherwise wait for
// a wake-up or the idle interval T.
func (p *Pool) driver() {
	defer p.drivers.Done()
	for {
		t, ok := p.pop()
		if !ok {
			return
		}
		p.tmanTest(t)
	}
}

// tmanTest runs the first task and keeps draining until Threshold
// elapses, mirroring the paper's pseudocode (get task, execute, yield).
func (p *Pool) tmanTest(first Task) {
	atomic.AddInt64(&p.stats.DrainSlices, 1)
	deadline := time.Now().Add(p.cfg.Threshold)
	t := first
	for {
		p.runTask(t)
		if time.Now().After(deadline) {
			return
		}
		var ok bool
		t, ok = p.tryPop()
		if !ok {
			return
		}
		// The paper calls mi_yield() between tasks so other Informix
		// work can run; Gosched is the goroutine analogue.
		runtime.Gosched()
	}
}

func (p *Pool) runTask(t Task) {
	if t.Kind <= TokenActions {
		if c := p.kindCounters[t.Kind]; c != nil {
			c.Inc()
		}
	}
	var begin time.Time
	if p.taskHist != nil {
		begin = time.Now()
	}
	err := p.invoke(t)
	if p.taskHist != nil {
		p.taskHist.Observe(time.Since(begin))
	}
	atomic.AddInt64(&p.stats.Executed, 1)
	if err == nil {
		if t.OnDone != nil {
			t.OnDone(nil)
		}
		p.pending.Done()
		return
	}
	atomic.AddInt64(&p.stats.Errors, 1)
	if t.Retry != nil && t.attempt+1 < t.Retry.WithDefaults().MaxAttempts && retry.IsTransient(err) {
		// Re-enqueue after the policy's backoff. The new incarnation is
		// registered with pending before this one is released, so Drain
		// and Close keep waiting for the task's final outcome.
		nt := t
		nt.attempt++
		p.pending.Add(1)
		atomic.AddInt64(&p.stats.Retries, 1)
		time.AfterFunc(t.Retry.Backoff(nt.attempt), func() { p.requeue(nt) })
		p.pending.Done()
		return
	}
	if p.cfg.OnError != nil {
		p.cfg.OnError(err)
	}
	if t.OnDone != nil {
		t.OnDone(err)
	}
	p.pending.Done()
}

// invoke runs the task body under panic isolation: a panicking task is
// converted into a *retry.PanicError (with stack) instead of killing
// the driver goroutine or deadlocking Drain.
func (p *Pool) invoke(t Task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddInt64(&p.stats.Panics, 1)
			err = retry.Recovered(r)
		}
	}()
	if t.Run == nil {
		return nil
	}
	return t.Run()
}

// requeue re-admits a retried task. Unlike Submit it ignores the closed
// flag: the task was accepted before Close, and Close's pending.Wait
// cannot return until this incarnation runs, so the drivers are still
// alive to pick it up.
func (p *Pool) requeue(t Task) {
	p.mu.Lock()
	p.queue = append(p.queue, t)
	p.cond.Signal()
	p.mu.Unlock()
}

// Drain blocks until every task enqueued so far (and every follow-up
// task they spawn) has finished.
func (p *Pool) Drain() {
	p.pending.Wait()
}

// Close stops accepting tasks, waits for the queue to drain, and stops
// the drivers.
func (p *Pool) Close() {
	p.pending.Wait()
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.drivers.Wait()
}
