package taskq

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHighDrainsBeforeLow pre-loads one shard with mixed priorities and
// checks the drain order: all high tasks run before any low task (the
// backlog is far below one aging interval).
func TestHighDrainsBeforeLow(t *testing.T) {
	p := New(Config{Drivers: 1, T: time.Millisecond, Threshold: time.Millisecond, AgingEvery: 1 << 30})
	defer p.Close()
	var mu sync.Mutex
	var order []Priority
	record := func(pr Priority) func() error {
		return func() error {
			mu.Lock()
			order = append(order, pr)
			mu.Unlock()
			return nil
		}
	}
	// Key every task to shard 0 so a single driver sees one interleaved
	// backlog; the first task blocks the driver until the whole mix is
	// queued.
	gate := make(chan struct{})
	p.Submit(Task{Key: 1, Run: func() error { <-gate; return nil }})
	for i := 0; i < 8; i++ {
		p.Submit(Task{Key: 1, Pri: Low, Run: record(Low)})
		p.Submit(Task{Key: 1, Pri: High, Run: record(High)})
	}
	close(gate)
	p.Drain()
	if len(order) != 16 {
		t.Fatalf("ran %d tasks", len(order))
	}
	for i, pr := range order {
		want := High
		if i >= 8 {
			want = Low
		}
		if pr != want {
			t.Fatalf("position %d ran %v (order %v)", i, pr, order)
		}
	}
	if st := p.Stats(); st.LowRuns != 8 {
		t.Fatalf("LowRuns = %d, want 8", st.LowRuns)
	}
}

// TestAgingPreventsLowStarvation keeps a shard's high queue non-empty
// while a low task waits: the aging tick must run it anyway.
func TestAgingPreventsLowStarvation(t *testing.T) {
	p := New(Config{Drivers: 1, T: time.Millisecond, Threshold: time.Millisecond, AgingEvery: 4})
	defer p.Close()
	var lowRan atomic.Bool
	var feeding atomic.Bool
	feeding.Store(true)
	var wg sync.WaitGroup
	// Each high task re-submits a successor, so the high queue never
	// runs dry until the low task has run.
	var feed func() error
	feed = func() error {
		if feeding.Load() {
			wg.Add(1)
			p.Submit(Task{Key: 1, Pri: High, Run: func() error { defer wg.Done(); return feed() }})
		}
		return nil
	}
	gate := make(chan struct{})
	p.Submit(Task{Key: 1, Run: func() error { <-gate; return nil }})
	p.Submit(Task{Key: 1, Pri: Low, Run: func() error {
		lowRan.Store(true)
		feeding.Store(false)
		return nil
	}})
	wg.Add(1)
	p.Submit(Task{Key: 1, Pri: High, Run: func() error { defer wg.Done(); return feed() }})
	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for !lowRan.Load() {
		if time.Now().After(deadline) {
			feeding.Store(false)
			t.Fatal("low task starved behind a steady high stream")
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	p.Drain()
	if st := p.Stats(); st.Aged < 1 {
		t.Fatalf("Aged = %d, want >= 1", st.Aged)
	}
}

// TestSerialBlockedLowKeepsPriority routes a blocked Serial low task
// back to the low queue on release, not the high queue.
func TestSerialBlockedLowKeepsPriority(t *testing.T) {
	p := New(Config{Drivers: 1, T: time.Millisecond, Threshold: time.Millisecond, AgingEvery: 1 << 30})
	defer p.Close()
	var mu sync.Mutex
	var order []string
	log := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	gate := make(chan struct{})
	release := make(chan struct{})
	// Serial key 1 runs and blocks; a second serial-low task on the same
	// key is popped and parked in blocked. While it is parked, a high
	// task arrives. On release the serial task must re-enter the low
	// queue, so the high task runs first.
	p.Submit(Task{Key: 1, Serial: true, Run: func() error { close(gate); <-release; return nil }})
	<-gate
	p.Submit(Task{Key: 1, Serial: true, Pri: Low, Run: func() error { log("serial-low"); return nil }})
	// Let the driver pop-and-park the blocked serial task.
	time.Sleep(20 * time.Millisecond)
	p.Submit(Task{Key: 1, Pri: High, Run: func() error { log("high"); return nil }})
	close(release)
	p.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "high" || order[1] != "serial-low" {
		t.Fatalf("order = %v, want [high serial-low]", order)
	}
}

// TestDrainToleratesConcurrentSubmits hammers Drain while producers
// submit: the old WaitGroup-based pending count could panic with
// "Add called concurrently with Wait" across a zero crossing.
func TestDrainToleratesConcurrentSubmits(t *testing.T) {
	p := New(Config{Drivers: 4, T: time.Millisecond, Threshold: time.Millisecond})
	defer p.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.Submit(Task{Run: func() error { return nil }})
			}
		}()
	}
	for i := 0; i < 200; i++ {
		p.Drain()
	}
	close(stop)
	wg.Wait()
	p.Drain()
	if n := p.pendN.Load(); n != 0 {
		t.Fatalf("pending = %d after drain", n)
	}
}

// TestCloseDuringSubmitStorm closes the pool while producers are still
// submitting: no panic, every accepted task executes, rejected submits
// error cleanly.
func TestCloseDuringSubmitStorm(t *testing.T) {
	p := New(Config{Drivers: 4, T: time.Millisecond, Threshold: time.Millisecond})
	var accepted, executed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				err := p.Submit(Task{Run: func() error {
					executed.Add(1)
					return nil
				}})
				if err != nil {
					return // pool closed: expected
				}
				accepted.Add(1)
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	p.Close()
	wg.Wait()
	if a, e := accepted.Load(), executed.Load(); a != e {
		t.Fatalf("accepted %d but executed %d: tasks lost at close", a, e)
	}
	if p.Stats().Panics != 0 {
		t.Fatalf("panics = %d", p.Stats().Panics)
	}
}
