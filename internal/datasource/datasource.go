// Package datasource implements the paper's data source layer
// (Figure 1): data sources that wrap local tables or external feeds,
// update descriptors (tokens), and the queue that carries captured
// updates to the trigger processor — either a persistent queue table
// (the paper's current implementation) or a main-memory queue (the
// paper's planned fast path, which trades the safety of persistent
// queuing for speed).
package datasource

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"triggerman/internal/fifo"
	"triggerman/internal/storage"
	"triggerman/internal/types"
)

// Op is an update-descriptor operation code.
type Op uint8

const (
	// OpInsert is a new-tuple event.
	OpInsert Op = iota
	// OpDelete is an old-tuple event.
	OpDelete
	// OpUpdate carries an old/new tuple pair.
	OpUpdate
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Token is an update descriptor: data source ID, operation code, and an
// old tuple, new tuple, or old/new pair (§5.4).
type Token struct {
	SourceID int32
	Op       Op
	Old, New types.Tuple
	// Seq is a monotone sequence number assigned at enqueue.
	Seq uint64
}

// Effective returns the tuple selection predicates test: the new image
// for inserts and updates, the old image for deletes.
func (t Token) Effective() types.Tuple {
	if t.Op == OpDelete {
		return t.Old
	}
	return t.New
}

// UpdatedColumns returns the set of column positions whose value changed
// (both images present and unequal). For non-update tokens it returns
// nil.
func (t Token) UpdatedColumns() []int {
	if t.Op != OpUpdate {
		return nil
	}
	n := len(t.New)
	if len(t.Old) > n {
		n = len(t.Old)
	}
	var out []int
	for i := 0; i < n; i++ {
		if !types.Equal(t.Old.Get(i), t.New.Get(i)) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the token.
func (t Token) String() string {
	switch t.Op {
	case OpInsert:
		return fmt.Sprintf("insert#%d%s", t.SourceID, t.New)
	case OpDelete:
		return fmt.Sprintf("delete#%d%s", t.SourceID, t.Old)
	default:
		return fmt.Sprintf("update#%d%s->%s", t.SourceID, t.Old, t.New)
	}
}

// Encode flattens the token for queue-table storage.
func (t Token) Encode() []byte {
	flat := make(types.Tuple, 0, 5+len(t.Old)+len(t.New))
	flat = append(flat,
		types.NewInt(int64(t.SourceID)),
		types.NewInt(int64(t.Op)),
		types.NewInt(int64(t.Seq)),
		types.NewInt(int64(len(t.Old))),
		types.NewInt(int64(len(t.New))),
	)
	flat = append(flat, t.Old...)
	flat = append(flat, t.New...)
	return types.EncodeTuple(nil, flat)
}

// DecodeToken parses an encoded token.
func DecodeToken(rec []byte) (Token, error) {
	flat, _, err := types.DecodeTuple(rec)
	if err != nil {
		return Token{}, err
	}
	if len(flat) < 5 {
		return Token{}, fmt.Errorf("datasource: short token record (%d values)", len(flat))
	}
	nOld := int(flat[3].Int())
	nNew := int(flat[4].Int())
	if len(flat) != 5+nOld+nNew {
		return Token{}, fmt.Errorf("datasource: token record arity mismatch")
	}
	tok := Token{
		SourceID: int32(flat[0].Int()),
		Op:       Op(flat[1].Int()),
		Seq:      uint64(flat[2].Int()),
	}
	if nOld > 0 {
		tok.Old = flat[5 : 5+nOld].Clone()
	}
	if nNew > 0 {
		tok.New = flat[5+nOld:].Clone()
	}
	return tok, nil
}

// Source describes one data source: a named, typed stream of update
// descriptors, normally corresponding to a table.
type Source struct {
	ID     int32
	Name   string
	Schema *types.Schema
}

// Registry assigns data source IDs and resolves names.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Source
	byID   map[int32]*Source
	nextID int32
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Source), byID: make(map[int32]*Source), nextID: 1}
}

// Define registers a new data source.
func (r *Registry) Define(name string, schema *types.Schema) (*Source, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := r.byName[key]; dup {
		return nil, fmt.Errorf("datasource: %q already defined", name)
	}
	s := &Source{ID: r.nextID, Name: name, Schema: schema}
	r.nextID++
	r.byName[key] = s
	r.byID[s.ID] = s
	return s, nil
}

// DefineWithID registers a source under a fixed ID (catalog recovery).
func (r *Registry) DefineWithID(id int32, name string, schema *types.Schema) (*Source, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := r.byName[key]; dup {
		return nil, fmt.Errorf("datasource: %q already defined", name)
	}
	if _, dup := r.byID[id]; dup {
		return nil, fmt.Errorf("datasource: id %d already in use", id)
	}
	s := &Source{ID: id, Name: name, Schema: schema}
	if id >= r.nextID {
		r.nextID = id + 1
	}
	r.byName[key] = s
	r.byID[id] = s
	return s, nil
}

// ByName resolves a source by name.
func (r *Registry) ByName(name string) (*Source, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byName[strings.ToLower(name)]
	return s, ok
}

// ByID resolves a source by ID.
func (r *Registry) ByID(id int32) (*Source, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byID[id]
	return s, ok
}

// Names lists defined source names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for _, s := range r.byName {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// Queue is the update-descriptor transport between capture and the
// trigger processor.
type Queue interface {
	// Enqueue appends a token, assigning its sequence number.
	Enqueue(t Token) (Token, error)
	// Dequeue removes and returns the oldest token; ok is false when the
	// queue is empty.
	Dequeue() (Token, bool, error)
	// DequeueBatch removes and returns up to max tokens in queue order
	// (max <= 0 means "whatever one scan yields"). An empty result with
	// a nil error means the queue is empty. A non-empty result with a
	// non-nil error returns tokens already removed — the caller must
	// process them before handling the error, or they are lost.
	DequeueBatch(max int) ([]Token, error)
	// Len reports the number of queued tokens.
	Len() int
	// SourceDepth reports the number of queued tokens from one source —
	// the admission controller's watermark signal. Both implementations
	// answer from a counter map, not a scan, so the capture path can
	// afford a reading per token.
	SourceDepth(src int32) int
}

// depthAdd adjusts a per-source depth counter, dropping zero entries so
// the map does not accumulate every source ever seen.
func depthAdd(m map[int32]int, src int32, d int) {
	n := m[src] + d
	if n <= 0 {
		delete(m, src)
		return
	}
	m[src] = n
}

// MemQueue is the main-memory queue (fast, not crash-safe).
type MemQueue struct {
	mu     sync.Mutex
	q      fifo.Queue[Token]
	seq    uint64
	depths map[int32]int
}

// NewMemQueue returns an empty in-memory queue.
func NewMemQueue() *MemQueue { return &MemQueue{depths: make(map[int32]int)} }

// Enqueue implements Queue.
func (q *MemQueue) Enqueue(t Token) (Token, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	t.Seq = q.seq
	q.q.Push(t)
	depthAdd(q.depths, t.SourceID, 1)
	return t, nil
}

// Dequeue implements Queue.
func (q *MemQueue) Dequeue() (Token, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.q.Pop()
	if ok {
		depthAdd(q.depths, t.SourceID, -1)
	}
	return t, ok, nil
}

// DequeueBatch implements Queue.
func (q *MemQueue) DequeueBatch(max int) ([]Token, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.q.Len()
	if n == 0 {
		return nil, nil
	}
	if max > 0 && n > max {
		n = max
	}
	out := make([]Token, 0, n)
	for len(out) < n {
		t, ok := q.q.Pop()
		if !ok {
			break
		}
		depthAdd(q.depths, t.SourceID, -1)
		out = append(out, t)
	}
	return out, nil
}

// Len implements Queue.
func (q *MemQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.q.Len()
}

// SourceDepth implements Queue.
func (q *MemQueue) SourceDepth(src int32) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depths[src]
}

// TableQueue is the persistent queue table of Figure 1: tokens are
// inserted as rows by update-capture triggers and consumed by TmanTest.
//
// Durable enqueues are group-committed: the first enqueue to reach the
// flush step becomes the leader and writes out every page dirtied so
// far (then syncs the disk once); enqueues arriving while a flush is in
// progress register their page and wait for the next round. N
// concurrent durable enqueues thus cost one or two flush+sync rounds,
// not N.
type TableQueue struct {
	mu   sync.Mutex
	heap *storage.HeapFile
	bp   *storage.BufferPool
	seq  uint64
	// durable forces every enqueue's page to stable storage before the
	// call returns — "the safety of persistent update queuing" (§3).
	durable bool
	// cursor remembers where the last dequeue stopped so repeated
	// dequeues do not rescan drained pages.
	cursor storage.RID
	hasCur bool
	// depths counts queued tokens per source (admission's watermark
	// signal); rebuilt from the recovery scan on reopen.
	depths map[int32]int

	commit commitGroup
}

// commitGroup is the leader/follower state for group-committed flushes.
// It is deliberately separate from TableQueue.mu: flushing happens with
// the queue unlocked, so enqueues and dequeues proceed while the disk
// syncs.
type commitGroup struct {
	mu       sync.Mutex
	flushing bool
	dirty    map[storage.PageID]struct{}
	waiters  []chan error

	// rounds counts flush+sync rounds; enqueues counts durable enqueues
	// served. enqueues/rounds is the coalescing factor.
	rounds   atomic.Int64
	enqueues atomic.Int64
}

// FlushRounds reports completed group-commit flush rounds.
func (q *TableQueue) FlushRounds() int64 { return q.commit.rounds.Load() }

// DurableEnqueues reports durable enqueues served by group commit.
func (q *TableQueue) DurableEnqueues() int64 { return q.commit.enqueues.Load() }

// flushGroup makes page durable, coalescing with concurrent callers.
// The caller must not hold q.mu.
func (q *TableQueue) flushGroup(page storage.PageID) error {
	g := &q.commit
	g.enqueues.Add(1)
	g.mu.Lock()
	if g.dirty == nil {
		g.dirty = make(map[storage.PageID]struct{})
	}
	g.dirty[page] = struct{}{}
	if g.flushing {
		// Follower: the leader's next round claims our page and waiter
		// together, so the error we get back covers our page.
		ch := make(chan error, 1)
		g.waiters = append(g.waiters, ch)
		g.mu.Unlock()
		return <-ch
	}
	g.flushing = true
	var myErr error
	for first := true; ; first = false {
		pages := g.dirty
		waiters := g.waiters
		g.dirty = nil
		g.waiters = nil
		g.mu.Unlock()

		var err error
		for p := range pages {
			if e := q.bp.WriteBack(p); e != nil && err == nil {
				err = e
			}
		}
		// One sync covers every page in the round — this is the whole
		// saving over flush-per-enqueue.
		if e := q.bp.Disk().Sync(); e != nil && err == nil {
			err = e
		}
		g.rounds.Add(1)
		if first {
			myErr = err
		}
		for _, ch := range waiters {
			ch <- err
		}

		g.mu.Lock()
		if len(g.dirty) == 0 {
			g.flushing = false
			g.mu.Unlock()
			return myErr
		}
	}
}

// SetDurable toggles flush-per-enqueue durability.
func (q *TableQueue) SetDurable(d bool) {
	q.mu.Lock()
	q.durable = d
	q.mu.Unlock()
}

// NewTableQueue creates a persistent queue on bp.
func NewTableQueue(bp *storage.BufferPool) (*TableQueue, error) {
	h, err := storage.CreateHeap(bp)
	if err != nil {
		return nil, err
	}
	return &TableQueue{heap: h, bp: bp, depths: make(map[int32]int)}, nil
}

// OpenTableQueue reopens a persistent queue by its first page.
func OpenTableQueue(bp *storage.BufferPool, first storage.PageID) (*TableQueue, error) {
	h, err := storage.OpenHeap(bp, first)
	if err != nil {
		return nil, err
	}
	q := &TableQueue{heap: h, bp: bp, depths: make(map[int32]int)}
	// Restore the sequence counter and per-source depths from the
	// surviving tokens.
	err = h.Scan(func(_ storage.RID, rec []byte) bool {
		if t, derr := DecodeToken(rec); derr == nil {
			if t.Seq > q.seq {
				q.seq = t.Seq
			}
			depthAdd(q.depths, t.SourceID, 1)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return q, nil
}

// FirstPage returns the queue heap's identity page.
func (q *TableQueue) FirstPage() storage.PageID { return q.heap.FirstPage() }

// Enqueue implements Queue. The heap insert happens under the queue
// lock; the durability flush happens outside it through the commit
// group, so concurrent enqueues coalesce their disk waits.
func (q *TableQueue) Enqueue(t Token) (Token, error) {
	q.mu.Lock()
	q.seq++
	t.Seq = q.seq
	rid, err := q.heap.Insert(t.Encode())
	if err == nil {
		depthAdd(q.depths, t.SourceID, 1)
	}
	durable := q.durable
	q.mu.Unlock()
	if err != nil {
		return Token{}, err
	}
	if durable {
		if err := q.flushGroup(rid.Page); err != nil {
			return Token{}, err
		}
	}
	return t, nil
}

// Dequeue implements Queue. Tokens come back in heap (insertion) order.
func (q *TableQueue) Dequeue() (Token, bool, error) {
	batch, err := q.DequeueBatch(1)
	if len(batch) == 0 {
		return Token{}, false, err
	}
	return batch[0], true, err
}

// DequeueBatch implements Queue. One call drains up to max tokens from
// the first non-empty page (pages fill strictly in chain order, so that
// page holds the oldest tokens; within it, dead-slot reuse can scramble
// slot order, so records are sorted by sequence number).
func (q *TableQueue) DequeueBatch(max int) ([]Token, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	type liveRec struct {
		tok Token
		rid storage.RID
	}
	var (
		recs []liveRec
		derr error
	)
	scanPage := func(start storage.PageID) error {
		var page storage.PageID
		havePage := false
		return q.heap.ScanFrom(start, func(r storage.RID, rec []byte) bool {
			if havePage && r.Page != page {
				return false // left the first non-empty page
			}
			t, e := DecodeToken(rec)
			if e != nil {
				derr = e
				return false
			}
			page, havePage = r.Page, true
			recs = append(recs, liveRec{t, r})
			return true
		})
	}
	start := q.heap.FirstPage()
	if q.hasCur {
		start = q.cursor.Page
	}
	if err := scanPage(start); err != nil {
		return nil, err
	}
	if derr != nil {
		return nil, derr
	}
	if len(recs) == 0 && q.hasCur {
		// The cursor's page drained; restart from the head in case
		// earlier pages gained records through slot reuse.
		q.hasCur = false
		if err := scanPage(q.heap.FirstPage()); err != nil {
			return nil, err
		}
		if derr != nil {
			return nil, derr
		}
	}
	if len(recs) == 0 {
		return nil, nil
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].tok.Seq < recs[j].tok.Seq })
	if max > 0 && len(recs) > max {
		recs = recs[:max]
	}
	out := make([]Token, 0, len(recs))
	for _, r := range recs {
		if err := q.heap.Delete(r.rid); err != nil {
			// Tokens already deleted must still reach the caller.
			return out, err
		}
		depthAdd(q.depths, r.tok.SourceID, -1)
		out = append(out, r.tok)
		q.cursor, q.hasCur = r.rid, true
	}
	return out, nil
}

// Len implements Queue.
func (q *TableQueue) Len() int { return q.heap.Count() }

// SourceDepth implements Queue.
func (q *TableQueue) SourceDepth(src int32) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depths[src]
}
