// Package datasource implements the paper's data source layer
// (Figure 1): data sources that wrap local tables or external feeds,
// update descriptors (tokens), and the queue that carries captured
// updates to the trigger processor — either a persistent queue table
// (the paper's current implementation) or a main-memory queue (the
// paper's planned fast path, which trades the safety of persistent
// queuing for speed).
package datasource

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"triggerman/internal/storage"
	"triggerman/internal/types"
)

// Op is an update-descriptor operation code.
type Op uint8

const (
	// OpInsert is a new-tuple event.
	OpInsert Op = iota
	// OpDelete is an old-tuple event.
	OpDelete
	// OpUpdate carries an old/new tuple pair.
	OpUpdate
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Token is an update descriptor: data source ID, operation code, and an
// old tuple, new tuple, or old/new pair (§5.4).
type Token struct {
	SourceID int32
	Op       Op
	Old, New types.Tuple
	// Seq is a monotone sequence number assigned at enqueue.
	Seq uint64
}

// Effective returns the tuple selection predicates test: the new image
// for inserts and updates, the old image for deletes.
func (t Token) Effective() types.Tuple {
	if t.Op == OpDelete {
		return t.Old
	}
	return t.New
}

// UpdatedColumns returns the set of column positions whose value changed
// (both images present and unequal). For non-update tokens it returns
// nil.
func (t Token) UpdatedColumns() []int {
	if t.Op != OpUpdate {
		return nil
	}
	n := len(t.New)
	if len(t.Old) > n {
		n = len(t.Old)
	}
	var out []int
	for i := 0; i < n; i++ {
		if !types.Equal(t.Old.Get(i), t.New.Get(i)) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the token.
func (t Token) String() string {
	switch t.Op {
	case OpInsert:
		return fmt.Sprintf("insert#%d%s", t.SourceID, t.New)
	case OpDelete:
		return fmt.Sprintf("delete#%d%s", t.SourceID, t.Old)
	default:
		return fmt.Sprintf("update#%d%s->%s", t.SourceID, t.Old, t.New)
	}
}

// Encode flattens the token for queue-table storage.
func (t Token) Encode() []byte {
	flat := make(types.Tuple, 0, 5+len(t.Old)+len(t.New))
	flat = append(flat,
		types.NewInt(int64(t.SourceID)),
		types.NewInt(int64(t.Op)),
		types.NewInt(int64(t.Seq)),
		types.NewInt(int64(len(t.Old))),
		types.NewInt(int64(len(t.New))),
	)
	flat = append(flat, t.Old...)
	flat = append(flat, t.New...)
	return types.EncodeTuple(nil, flat)
}

// DecodeToken parses an encoded token.
func DecodeToken(rec []byte) (Token, error) {
	flat, _, err := types.DecodeTuple(rec)
	if err != nil {
		return Token{}, err
	}
	if len(flat) < 5 {
		return Token{}, fmt.Errorf("datasource: short token record (%d values)", len(flat))
	}
	nOld := int(flat[3].Int())
	nNew := int(flat[4].Int())
	if len(flat) != 5+nOld+nNew {
		return Token{}, fmt.Errorf("datasource: token record arity mismatch")
	}
	tok := Token{
		SourceID: int32(flat[0].Int()),
		Op:       Op(flat[1].Int()),
		Seq:      uint64(flat[2].Int()),
	}
	if nOld > 0 {
		tok.Old = flat[5 : 5+nOld].Clone()
	}
	if nNew > 0 {
		tok.New = flat[5+nOld:].Clone()
	}
	return tok, nil
}

// Source describes one data source: a named, typed stream of update
// descriptors, normally corresponding to a table.
type Source struct {
	ID     int32
	Name   string
	Schema *types.Schema
}

// Registry assigns data source IDs and resolves names.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Source
	byID   map[int32]*Source
	nextID int32
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Source), byID: make(map[int32]*Source), nextID: 1}
}

// Define registers a new data source.
func (r *Registry) Define(name string, schema *types.Schema) (*Source, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := r.byName[key]; dup {
		return nil, fmt.Errorf("datasource: %q already defined", name)
	}
	s := &Source{ID: r.nextID, Name: name, Schema: schema}
	r.nextID++
	r.byName[key] = s
	r.byID[s.ID] = s
	return s, nil
}

// DefineWithID registers a source under a fixed ID (catalog recovery).
func (r *Registry) DefineWithID(id int32, name string, schema *types.Schema) (*Source, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := r.byName[key]; dup {
		return nil, fmt.Errorf("datasource: %q already defined", name)
	}
	if _, dup := r.byID[id]; dup {
		return nil, fmt.Errorf("datasource: id %d already in use", id)
	}
	s := &Source{ID: id, Name: name, Schema: schema}
	if id >= r.nextID {
		r.nextID = id + 1
	}
	r.byName[key] = s
	r.byID[id] = s
	return s, nil
}

// ByName resolves a source by name.
func (r *Registry) ByName(name string) (*Source, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byName[strings.ToLower(name)]
	return s, ok
}

// ByID resolves a source by ID.
func (r *Registry) ByID(id int32) (*Source, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byID[id]
	return s, ok
}

// Names lists defined source names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for _, s := range r.byName {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// Queue is the update-descriptor transport between capture and the
// trigger processor.
type Queue interface {
	// Enqueue appends a token, assigning its sequence number.
	Enqueue(t Token) (Token, error)
	// Dequeue removes and returns the oldest token; ok is false when the
	// queue is empty.
	Dequeue() (Token, bool, error)
	// Len reports the number of queued tokens.
	Len() int
}

// MemQueue is the main-memory queue (fast, not crash-safe).
type MemQueue struct {
	mu   sync.Mutex
	buf  []Token
	head int
	seq  uint64
}

// NewMemQueue returns an empty in-memory queue.
func NewMemQueue() *MemQueue { return &MemQueue{} }

// Enqueue implements Queue.
func (q *MemQueue) Enqueue(t Token) (Token, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	t.Seq = q.seq
	q.buf = append(q.buf, t)
	return t, nil
}

// Dequeue implements Queue.
func (q *MemQueue) Dequeue() (Token, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
		return Token{}, false, nil
	}
	t := q.buf[q.head]
	q.head++
	if q.head > 4096 && q.head*2 > len(q.buf) {
		// Slide to reclaim memory.
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
	return t, true, nil
}

// Len implements Queue.
func (q *MemQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf) - q.head
}

// TableQueue is the persistent queue table of Figure 1: tokens are
// inserted as rows by update-capture triggers and consumed by TmanTest.
type TableQueue struct {
	mu   sync.Mutex
	heap *storage.HeapFile
	bp   *storage.BufferPool
	seq  uint64
	// durable forces every enqueue's page to stable storage before the
	// call returns — "the safety of persistent update queuing" (§3).
	durable bool
	// cursor remembers where the last dequeue stopped so repeated
	// dequeues do not rescan drained pages.
	cursor storage.RID
	hasCur bool
}

// SetDurable toggles flush-per-enqueue durability.
func (q *TableQueue) SetDurable(d bool) {
	q.mu.Lock()
	q.durable = d
	q.mu.Unlock()
}

// NewTableQueue creates a persistent queue on bp.
func NewTableQueue(bp *storage.BufferPool) (*TableQueue, error) {
	h, err := storage.CreateHeap(bp)
	if err != nil {
		return nil, err
	}
	return &TableQueue{heap: h, bp: bp}, nil
}

// OpenTableQueue reopens a persistent queue by its first page.
func OpenTableQueue(bp *storage.BufferPool, first storage.PageID) (*TableQueue, error) {
	h, err := storage.OpenHeap(bp, first)
	if err != nil {
		return nil, err
	}
	q := &TableQueue{heap: h, bp: bp}
	// Restore the sequence counter from the surviving tokens.
	err = h.Scan(func(_ storage.RID, rec []byte) bool {
		if t, derr := DecodeToken(rec); derr == nil && t.Seq > q.seq {
			q.seq = t.Seq
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return q, nil
}

// FirstPage returns the queue heap's identity page.
func (q *TableQueue) FirstPage() storage.PageID { return q.heap.FirstPage() }

// Enqueue implements Queue.
func (q *TableQueue) Enqueue(t Token) (Token, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	t.Seq = q.seq
	rid, err := q.heap.Insert(t.Encode())
	if err != nil {
		return Token{}, err
	}
	if q.durable {
		if err := q.bp.FlushPage(rid.Page); err != nil {
			return Token{}, err
		}
	}
	return t, nil
}

// Dequeue implements Queue. Tokens come back in heap (insertion) order.
func (q *TableQueue) Dequeue() (Token, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var (
		found bool
		tok   Token
		rid   storage.RID
		derr  error
	)
	// Pages fill strictly in chain order, so the oldest token lives on
	// the first page with any live record. Within a page, dead-slot
	// reuse can scramble slot order, so pick the minimum sequence number
	// on that page.
	scanOldest := func(start storage.PageID) error {
		var page storage.PageID
		havePage := false
		return q.heap.ScanFrom(start, func(r storage.RID, rec []byte) bool {
			if havePage && r.Page != page {
				return false // left the first non-empty page
			}
			t, e := DecodeToken(rec)
			if e != nil {
				derr = e
				return false
			}
			page, havePage = r.Page, true
			if !found || t.Seq < tok.Seq {
				tok, rid, found = t, r, true
			}
			return true
		})
	}
	start := q.heap.FirstPage()
	if q.hasCur {
		start = q.cursor.Page
	}
	if err := scanOldest(start); err != nil {
		return Token{}, false, err
	}
	if derr != nil {
		return Token{}, false, derr
	}
	if !found && q.hasCur {
		q.hasCur = false
		if err := scanOldest(q.heap.FirstPage()); err != nil {
			return Token{}, false, err
		}
	}
	if derr != nil {
		return Token{}, false, derr
	}
	if !found {
		return Token{}, false, nil
	}
	if err := q.heap.Delete(rid); err != nil {
		return Token{}, false, err
	}
	q.cursor, q.hasCur = rid, true
	return tok, true, nil
}

// Len implements Queue.
func (q *TableQueue) Len() int { return q.heap.Count() }
