package datasource

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"triggerman/internal/storage"
	"triggerman/internal/types"
)

func tok(src int32, op Op, vals ...int64) Token {
	tu := make(types.Tuple, len(vals))
	for i, v := range vals {
		tu[i] = types.NewInt(v)
	}
	t := Token{SourceID: src, Op: op}
	if op == OpDelete {
		t.Old = tu
	} else {
		t.New = tu
	}
	return t
}

func TestTokenEffective(t *testing.T) {
	ins := tok(1, OpInsert, 1, 2)
	if !ins.Effective().Equal(ins.New) {
		t.Error("insert effective")
	}
	del := tok(1, OpDelete, 3)
	if !del.Effective().Equal(del.Old) {
		t.Error("delete effective")
	}
	upd := Token{Op: OpUpdate, Old: types.Tuple{types.NewInt(1)}, New: types.Tuple{types.NewInt(2)}}
	if upd.Effective().Get(0).Int() != 2 {
		t.Error("update effective should be new image")
	}
}

func TestUpdatedColumns(t *testing.T) {
	upd := Token{Op: OpUpdate,
		Old: types.Tuple{types.NewInt(1), types.NewString("a"), types.NewInt(3)},
		New: types.Tuple{types.NewInt(1), types.NewString("b"), types.NewInt(3)}}
	cols := upd.UpdatedColumns()
	if len(cols) != 1 || cols[0] != 1 {
		t.Errorf("updated cols = %v", cols)
	}
	// arity mismatch counts the missing column as changed
	upd2 := Token{Op: OpUpdate,
		Old: types.Tuple{types.NewInt(1)},
		New: types.Tuple{types.NewInt(1), types.NewInt(9)}}
	if cols := upd2.UpdatedColumns(); len(cols) != 1 || cols[0] != 1 {
		t.Errorf("arity-mismatch cols = %v", cols)
	}
	if tok(1, OpInsert, 1).UpdatedColumns() != nil {
		t.Error("insert should have nil updated columns")
	}
}

func TestTokenEncodeDecode(t *testing.T) {
	cases := []Token{
		tok(7, OpInsert, 1, 2, 3),
		tok(9, OpDelete, 4),
		{SourceID: 2, Op: OpUpdate, Seq: 55,
			Old: types.Tuple{types.NewString("a"), types.Null()},
			New: types.Tuple{types.NewString("b"), types.NewFloat(1.5)}},
		{SourceID: 1, Op: OpInsert}, // empty tuples
	}
	for _, c := range cases {
		enc := c.Encode()
		got, err := DecodeToken(enc)
		if err != nil {
			t.Fatalf("decode %s: %v", c, err)
		}
		if got.SourceID != c.SourceID || got.Op != c.Op || got.Seq != c.Seq ||
			!got.Old.Equal(c.Old) || !got.New.Equal(c.New) {
			t.Errorf("roundtrip %s -> %s", c, got)
		}
	}
	if _, err := DecodeToken([]byte{1, 0}); err == nil {
		t.Error("garbage should fail")
	}
	// valid tuple, wrong arity
	bad := types.EncodeTuple(nil, types.Tuple{types.NewInt(1)})
	if _, err := DecodeToken(bad); err == nil {
		t.Error("short token should fail")
	}
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" || OpUpdate.String() != "update" {
		t.Error("op names")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	s1, err := r.Define("emp", types.MustSchema(types.Column{Name: "x", Kind: types.KindInt}))
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID != 1 {
		t.Errorf("first id = %d", s1.ID)
	}
	if _, err := r.Define("EMP", nil); err == nil {
		t.Error("case-insensitive duplicate should fail")
	}
	s2, _ := r.Define("dept", nil)
	if s2.ID != 2 {
		t.Errorf("second id = %d", s2.ID)
	}
	if got, ok := r.ByName("Emp"); !ok || got != s1 {
		t.Error("ByName")
	}
	if got, ok := r.ByID(2); !ok || got != s2 {
		t.Error("ByID")
	}
	if _, ok := r.ByName("ghost"); ok {
		t.Error("missing name")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "dept" || names[1] != "emp" {
		t.Errorf("names = %v", names)
	}
}

func TestRegistryWithID(t *testing.T) {
	r := NewRegistry()
	if _, err := r.DefineWithID(10, "a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineWithID(10, "b", nil); err == nil {
		t.Error("duplicate id should fail")
	}
	if _, err := r.DefineWithID(11, "a", nil); err == nil {
		t.Error("duplicate name should fail")
	}
	// nextID advanced past explicit ids
	s, _ := r.Define("c", nil)
	if s.ID != 11 {
		t.Errorf("next auto id = %d", s.ID)
	}
}

func TestMemQueueFIFO(t *testing.T) {
	q := NewMemQueue()
	for i := int64(0); i < 100; i++ {
		if _, err := q.Enqueue(tok(1, OpInsert, i)); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 100 {
		t.Errorf("len = %d", q.Len())
	}
	for i := int64(0); i < 100; i++ {
		got, ok, err := q.Dequeue()
		if err != nil || !ok {
			t.Fatal("dequeue failed")
		}
		if got.New.Get(0).Int() != i {
			t.Fatalf("order broken at %d: %v", i, got)
		}
		if got.Seq != uint64(i+1) {
			t.Fatalf("seq = %d", got.Seq)
		}
	}
	if _, ok, _ := q.Dequeue(); ok {
		t.Error("empty queue should report !ok")
	}
	if q.Len() != 0 {
		t.Error("len after drain")
	}
}

func TestMemQueueSlideReclaim(t *testing.T) {
	q := NewMemQueue()
	for i := int64(0); i < 10000; i++ {
		q.Enqueue(tok(1, OpInsert, i))
	}
	for i := int64(0); i < 9000; i++ {
		q.Dequeue()
	}
	// Interleave to exercise the slide path.
	q.Enqueue(tok(1, OpInsert, 99999))
	n := 0
	for {
		_, ok, _ := q.Dequeue()
		if !ok {
			break
		}
		n++
	}
	if n != 1001 {
		t.Errorf("drained %d, want 1001", n)
	}
}

func TestTableQueuePersistsAndFIFO(t *testing.T) {
	disk := storage.NewMem()
	bp := storage.NewBufferPool(disk, 32)
	q, err := NewTableQueue(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		if _, err := q.Enqueue(tok(1, OpInsert, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Drain half.
	for i := int64(0); i < 250; i++ {
		got, ok, err := q.Dequeue()
		if err != nil || !ok || got.New.Get(0).Int() != i {
			t.Fatalf("dequeue %d: %v %v %v", i, got, ok, err)
		}
	}
	if q.Len() != 250 {
		t.Errorf("len = %d", q.Len())
	}
	bp.FlushAll()

	// Crash-restart: reopen from disk; the 250 unconsumed tokens remain.
	bp2 := storage.NewBufferPool(disk, 32)
	q2, err := OpenTableQueue(bp2, q.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 250 {
		t.Fatalf("reopened len = %d", q2.Len())
	}
	got, ok, err := q2.Dequeue()
	if err != nil || !ok || got.New.Get(0).Int() != 250 {
		t.Fatalf("first after reopen = %v", got)
	}
	// Sequence numbers continue from the persisted max.
	nt, _ := q2.Enqueue(tok(1, OpInsert, 1000))
	if nt.Seq != 501 {
		t.Errorf("seq after reopen = %d", nt.Seq)
	}
	// Drain fully.
	n := 0
	for {
		_, ok, err := q2.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 250 {
		t.Errorf("drained %d", n)
	}
}

func TestTableQueueInterleaved(t *testing.T) {
	bp := storage.NewBufferPool(storage.NewMem(), 32)
	q, _ := NewTableQueue(bp)
	next := int64(0)
	want := int64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.Enqueue(tok(1, OpInsert, next))
			next++
		}
		for i := 0; i < 5; i++ {
			got, ok, err := q.Dequeue()
			if err != nil || !ok {
				t.Fatal("dequeue")
			}
			if got.New.Get(0).Int() != want {
				t.Fatalf("order: got %d want %d", got.New.Get(0).Int(), want)
			}
			want++
		}
	}
	if q.Len() != int(next-want) {
		t.Errorf("len = %d, want %d", q.Len(), next-want)
	}
}

func BenchmarkMemQueue(b *testing.B) {
	q := NewMemQueue()
	t := tok(1, OpInsert, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(t)
		q.Dequeue()
	}
}

func BenchmarkTableQueue(b *testing.B) {
	bp := storage.NewBufferPool(storage.NewMem(), 64)
	q, err := NewTableQueue(bp)
	if err != nil {
		b.Fatal(err)
	}
	t := tok(1, OpInsert, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(t)
		if _, ok, _ := q.Dequeue(); !ok {
			b.Fatal("empty")
		}
	}
	_ = fmt.Sprint()
}

func TestDurableQueueFlushesPerEnqueue(t *testing.T) {
	disk := storage.NewMem()
	bp := storage.NewBufferPool(disk, 32)
	q, err := NewTableQueue(bp)
	if err != nil {
		t.Fatal(err)
	}
	q.SetDurable(true)
	if _, err := q.Enqueue(tok(1, OpInsert, 7)); err != nil {
		t.Fatal(err)
	}
	// WITHOUT any explicit flush, a fresh pool over the same disk must
	// already see the token (the enqueue itself reached the disk).
	bp2 := storage.NewBufferPool(disk, 32)
	q2, err := OpenTableQueue(bp2, q.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := q2.Dequeue()
	if err != nil || !ok || got.New.Get(0).Int() != 7 {
		t.Fatalf("durable token lost: %v %v %v", got, ok, err)
	}
	// Non-durable enqueues are only in the buffer pool: a fresh pool
	// does not see them before a flush.
	q.SetDurable(false)
	q.Enqueue(tok(1, OpInsert, 8))
	bp3 := storage.NewBufferPool(disk, 32)
	q3, _ := OpenTableQueue(bp3, q.FirstPage())
	if n := q3.Len(); n != 1 {
		t.Fatalf("expected only the durable token on disk, found %d", n)
	}
}

func TestDecodeTokenNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50000; i++ {
		buf := make([]byte, rng.Intn(80))
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %x: %v", buf, r)
				}
			}()
			DecodeToken(buf)
		}()
	}
	// Adversarial: valid header claiming huge lengths.
	evil := types.EncodeTuple(nil, types.Tuple{
		types.NewInt(1), types.NewInt(0), types.NewInt(1),
		types.NewInt(1 << 40), types.NewInt(1 << 40),
	})
	if _, err := DecodeToken(evil); err == nil {
		t.Error("absurd old/new lengths should fail")
	}
}

// slowSyncDisk wraps a disk manager and stretches Sync so group-commit
// followers pile up behind the leader's round.
type slowSyncDisk struct {
	storage.DiskManager
	delay time.Duration
	syncs atomic.Int64
}

func (d *slowSyncDisk) Sync() error {
	d.syncs.Add(1)
	time.Sleep(d.delay)
	return d.DiskManager.Sync()
}

func TestGroupCommitCoalescesConcurrentEnqueues(t *testing.T) {
	disk := &slowSyncDisk{DiskManager: storage.NewMem(), delay: 2 * time.Millisecond}
	bp := storage.NewBufferPool(disk, 32)
	q, err := NewTableQueue(bp)
	if err != nil {
		t.Fatal(err)
	}
	q.SetDurable(true)
	const n = 64
	var wg sync.WaitGroup
	for i := int64(0); i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := q.Enqueue(tok(1, OpInsert, i)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := q.DurableEnqueues(); got != n {
		t.Fatalf("durable enqueues = %d, want %d", got, n)
	}
	rounds := q.FlushRounds()
	if rounds < 1 || rounds >= n {
		t.Errorf("flush rounds = %d for %d concurrent enqueues; expected coalescing", rounds, n)
	}
	if disk.syncs.Load() != rounds {
		t.Errorf("disk syncs = %d, rounds = %d", disk.syncs.Load(), rounds)
	}
	if q.Len() != n {
		t.Errorf("len = %d", q.Len())
	}
	// Every token survives a crash-restart: group commit must not trade
	// away the durability contract.
	bp2 := storage.NewBufferPool(disk, 32)
	q2, err := OpenTableQueue(bp2, q.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != n {
		t.Errorf("reopened len = %d, want %d", q2.Len(), n)
	}
}

func TestGroupCommitSerialEnqueuesStillFlushEach(t *testing.T) {
	// Without concurrency there is nothing to coalesce: each durable
	// enqueue runs its own round (the TestDurableQueueFlushesPerEnqueue
	// contract, restated against the round counter).
	bp := storage.NewBufferPool(storage.NewMem(), 32)
	q, _ := NewTableQueue(bp)
	q.SetDurable(true)
	for i := int64(0); i < 10; i++ {
		if _, err := q.Enqueue(tok(1, OpInsert, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.FlushRounds(); got != 10 {
		t.Errorf("flush rounds = %d, want 10 for serial enqueues", got)
	}
}

func TestMemQueueDequeueBatch(t *testing.T) {
	q := NewMemQueue()
	for i := int64(0); i < 10; i++ {
		q.Enqueue(tok(1, OpInsert, i))
	}
	batch, err := q.DequeueBatch(4)
	if err != nil || len(batch) != 4 {
		t.Fatalf("batch = %d tokens, err %v", len(batch), err)
	}
	for i, tk := range batch {
		if tk.New.Get(0).Int() != int64(i) {
			t.Fatalf("batch order broken at %d: %v", i, tk)
		}
	}
	rest, err := q.DequeueBatch(0) // no cap: drain the rest
	if err != nil || len(rest) != 6 {
		t.Fatalf("rest = %d tokens, err %v", len(rest), err)
	}
	if rest[0].New.Get(0).Int() != 4 {
		t.Fatalf("rest starts at %v", rest[0])
	}
	if b, err := q.DequeueBatch(8); err != nil || b != nil {
		t.Fatalf("empty queue batch = %v, %v", b, err)
	}
}

func TestTableQueueDequeueBatchAcrossPageBoundaries(t *testing.T) {
	// Enqueue enough tokens to span several heap pages, then pull
	// batches larger than a page holds: each call drains at most one
	// page, order must hold across the boundary, and interleaved
	// enqueues around the boundary must not disturb the cursor.
	bp := storage.NewBufferPool(storage.NewMem(), 64)
	q, err := NewTableQueue(bp)
	if err != nil {
		t.Fatal(err)
	}
	const total = 600 // several pages worth with these record sizes
	for i := int64(0); i < total; i++ {
		if _, err := q.Enqueue(tok(1, OpInsert, i)); err != nil {
			t.Fatal(err)
		}
	}
	want := int64(0)
	for want < total/2 {
		batch, err := q.DequeueBatch(37)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			t.Fatalf("queue dried up at %d of %d", want, total)
		}
		for _, tk := range batch {
			if got := tk.New.Get(0).Int(); got != want {
				t.Fatalf("order broken: got %d, want %d", got, want)
			}
			want++
		}
	}
	// Interleave fresh enqueues mid-drain: they reuse freed slots on
	// early pages but carry higher sequence numbers, so they must come
	// out after everything already queued.
	for i := int64(total); i < total+50; i++ {
		if _, err := q.Enqueue(tok(1, OpInsert, i)); err != nil {
			t.Fatal(err)
		}
	}
	for want < total+50 {
		batch, err := q.DequeueBatch(64)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			t.Fatalf("queue dried up at %d of %d", want, total+50)
		}
		for _, tk := range batch {
			if got := tk.New.Get(0).Int(); got != want {
				t.Fatalf("order broken after interleave: got %d, want %d", got, want)
			}
			want++
		}
	}
	if q.Len() != 0 {
		t.Errorf("len after drain = %d", q.Len())
	}
}

func TestTableQueueBatchThenSingleDequeueAgree(t *testing.T) {
	bp := storage.NewBufferPool(storage.NewMem(), 64)
	q, _ := NewTableQueue(bp)
	for i := int64(0); i < 20; i++ {
		q.Enqueue(tok(1, OpInsert, i))
	}
	batch, err := q.DequeueBatch(5)
	if err != nil || len(batch) != 5 {
		t.Fatalf("batch = %v, %v", batch, err)
	}
	got, ok, err := q.Dequeue()
	if err != nil || !ok || got.New.Get(0).Int() != 5 {
		t.Fatalf("single dequeue after batch = %v %v %v", got, ok, err)
	}
}

// TestGroupCommitWriteBackUnderConcurrentDequeues maximizes overlap
// between the group-commit leader's WriteBack loop and concurrent
// inserts/dequeues (folded from the PR-5 scratch race test, shortened).
// Besides being a race-detector target, it checks that the per-source
// depth counters balance exactly against what went in and came out.
func TestGroupCommitWriteBackUnderConcurrentDequeues(t *testing.T) {
	disk := &slowSyncDisk{DiskManager: storage.NewMem(), delay: 0}
	bp := storage.NewBufferPool(disk, 64)
	q, err := NewTableQueue(bp)
	if err != nil {
		t.Fatal(err)
	}
	q.SetDurable(true)
	stop := time.Now().Add(300 * time.Millisecond)
	var enq, deq [8]int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); time.Now().Before(stop); i++ {
				if _, err := q.Enqueue(tok(int32(g+1), OpInsert, i)); err != nil {
					t.Error(err)
					return
				}
				atomic.AddInt64(&enq[g], 1)
				if i%64 == 0 {
					batch, err := q.DequeueBatch(32)
					if err != nil {
						t.Error(err)
						return
					}
					for _, tk := range batch {
						atomic.AddInt64(&deq[tk.SourceID-1], 1)
					}
				}
			}
		}()
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		want := int(enq[g] - deq[g])
		if got := q.SourceDepth(int32(g + 1)); got != want {
			t.Errorf("source %d depth = %d, want %d (enq %d, deq %d)",
				g+1, got, want, enq[g], deq[g])
		}
	}
}

// TestSourceDepthTracksPerSource exercises the depth counters on both
// queue implementations through every dequeue path.
func TestSourceDepthTracksPerSource(t *testing.T) {
	queues := map[string]Queue{
		"mem": NewMemQueue(),
	}
	tq, err := NewTableQueue(storage.NewBufferPool(storage.NewMem(), 32))
	if err != nil {
		t.Fatal(err)
	}
	queues["table"] = tq
	for name, q := range queues {
		for i := int64(0); i < 6; i++ {
			q.Enqueue(tok(1, OpInsert, i))
		}
		for i := int64(0); i < 3; i++ {
			q.Enqueue(tok(2, OpInsert, i))
		}
		if d1, d2 := q.SourceDepth(1), q.SourceDepth(2); d1 != 6 || d2 != 3 {
			t.Fatalf("%s: depths = %d,%d want 6,3", name, d1, d2)
		}
		if d := q.SourceDepth(99); d != 0 {
			t.Fatalf("%s: unknown source depth = %d", name, d)
		}
		if _, ok, _ := q.Dequeue(); !ok {
			t.Fatalf("%s: dequeue failed", name)
		}
		if d := q.SourceDepth(1); d != 5 {
			t.Fatalf("%s: depth after single dequeue = %d, want 5", name, d)
		}
		if batch, err := q.DequeueBatch(0); err != nil || len(batch) != 8 {
			t.Fatalf("%s: drain = %d tokens, err %v", name, len(batch), err)
		}
		if d1, d2 := q.SourceDepth(1), q.SourceDepth(2); d1 != 0 || d2 != 0 {
			t.Fatalf("%s: depths after drain = %d,%d", name, d1, d2)
		}
	}
}

// TestSourceDepthSurvivesReopen checks the recovery scan rebuilds the
// per-source counters a restarted system's admission control needs.
func TestSourceDepthSurvivesReopen(t *testing.T) {
	disk := storage.NewMem()
	bp := storage.NewBufferPool(disk, 32)
	q, err := NewTableQueue(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 7; i++ {
		q.Enqueue(tok(3, OpInsert, i))
	}
	q.Enqueue(tok(4, OpInsert, 0))
	q.DequeueBatch(2) // consume two of source 3's tokens
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	q2, err := OpenTableQueue(storage.NewBufferPool(disk, 32), q.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	if d3, d4 := q2.SourceDepth(3), q2.SourceDepth(4); d3 != 5 || d4 != 1 {
		t.Fatalf("reopened depths = %d,%d want 5,1", d3, d4)
	}
}
