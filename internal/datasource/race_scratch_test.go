package datasource

import (
	"sync"
	"testing"
	"time"

	"triggerman/internal/storage"
)

// Scratch: maximize overlap between leader WriteBack and concurrent inserts.
func TestScratchGroupCommitWriteBackRace(t *testing.T) {
	disk := &slowSyncDisk{DiskManager: storage.NewMem(), delay: 0}
	bp := storage.NewBufferPool(disk, 64)
	q, err := NewTableQueue(bp)
	if err != nil {
		t.Fatal(err)
	}
	q.SetDurable(true)
	stop := time.Now().Add(2 * time.Second)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); time.Now().Before(stop); i++ {
				if _, err := q.Enqueue(tok(int32(g), OpInsert, i)); err != nil {
					t.Error(err)
					return
				}
				if i%64 == 0 {
					if _, err := q.DequeueBatch(32); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
