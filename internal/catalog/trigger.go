package catalog

import (
	"fmt"
	"strings"

	"triggerman/internal/admission"
	"triggerman/internal/agg"
	"triggerman/internal/datasource"
	"triggerman/internal/discrim"
	"triggerman/internal/expr"
	"triggerman/internal/parser"
	"triggerman/internal/predindex"
	"triggerman/internal/types"
)

// CreateTrigger runs the §5.1 pipeline for a create trigger statement:
//
//  1. parse and validate,
//  2. convert the when clause to CNF and group conjuncts by
//     tuple-variable set,
//  3. form the trigger condition graph,
//  4. build the A-TREAT network (multi-variable triggers),
//  5. intern each selection predicate's expression signature and add
//     the trigger's constants and ref to its equivalence class.
//
// The original statement text is stored in the trigger catalog so the
// trigger cache can rebuild the description after eviction.
func (c *Catalog) CreateTrigger(text string) (*TriggerInfo, error) {
	st, err := parser.Parse(text)
	if err != nil {
		return nil, err
	}
	ct, ok := st.(*parser.CreateTrigger)
	if !ok {
		return nil, fmt.Errorf("catalog: statement is not create trigger")
	}
	return c.CreateTriggerStmt(ct)
}

// CreateTriggerStmt is CreateTrigger over a pre-parsed statement.
func (c *Catalog) CreateTriggerStmt(ct *parser.CreateTrigger) (*TriggerInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(ct.Name)
	if _, dup := c.byName[key]; dup {
		return nil, fmt.Errorf("catalog: trigger %q already exists", ct.Name)
	}
	var setID uint64
	if ct.SetName != "" {
		ts, ok := c.sets[strings.ToLower(ct.SetName)]
		if !ok {
			// Sets are created implicitly on first use, like the paper's
			// default set.
			var err error
			ts, err = c.createTriggerSetLocked(ct.SetName, "")
			if err != nil {
				return nil, err
			}
		}
		setID = ts.ID
	}
	c.nextTriggerID++
	info := &TriggerInfo{
		ID:      c.nextTriggerID,
		SetID:   setID,
		Name:    ct.Name,
		Text:    ct.Text,
		Enabled: true,
		Created: c.now(),
	}
	if err := c.primeTrigger(info, ct); err != nil {
		delete(c.networks, info.ID)
		delete(c.gators, info.ID)
		delete(c.aggsMap, info.ID)
		c.nextTriggerID--
		return nil, err
	}
	rid, err := c.trigTab.Insert(types.Tuple{
		types.NewInt(int64(info.ID)),
		types.NewInt(int64(setID)),
		types.NewString(info.Name),
		types.NewString(""),
		types.NewString(info.Text),
		types.NewString(info.Created),
		types.NewInt(1),
	})
	if err != nil {
		c.unregisterLocked(info)
		c.nextTriggerID--
		return nil, err
	}
	info.rid = rid
	c.triggers[info.ID] = info
	c.byName[key] = info.ID
	return info, nil
}

// primeTrigger performs steps 2–5 of the pipeline: all analysis,
// network construction and predicate registration, but no catalog-row
// insertion (recovery reuses it).
func (c *Catalog) primeTrigger(info *TriggerInfo, ct *parser.CreateTrigger) error {
	if (len(ct.GroupBy) > 0) != (ct.Having != nil) {
		return fmt.Errorf("catalog: group by and having must appear together")
	}
	if len(ct.GroupBy) > 0 && len(ct.From) != 1 {
		return fmt.Errorf("catalog: aggregate triggers take a single data source")
	}
	if ct.Do == nil {
		return fmt.Errorf("catalog: trigger %q has no action", ct.Name)
	}
	// The priority class rides in the flag list between the trigger name
	// and the from clause; other flags stay reserved for future options.
	info.Class = admission.Interactive
	for _, f := range ct.Flags {
		if cl, ok := admission.ParseClass(f); ok {
			info.Class = cl
		}
	}
	// Resolve tuple variables to sources.
	varIndex := ct.VarIndex()
	if len(varIndex) != len(ct.From) {
		return fmt.Errorf("catalog: duplicate tuple variable in from clause")
	}
	sources := make([]*datasource.Source, len(ct.From))
	schemas := make([]*types.Schema, len(ct.From))
	for i, f := range ct.From {
		src, ok := c.reg.ByName(f.Source)
		if !ok {
			return fmt.Errorf("catalog: unknown data source %q", f.Source)
		}
		sources[i] = src
		schemas[i] = src.Schema
	}
	// Locate the event target variable.
	eventVar := -1
	if ct.On != nil {
		if ct.On.Target == "" {
			if len(ct.From) != 1 {
				return fmt.Errorf("catalog: on clause must name its data source in a multi-source trigger")
			}
			eventVar = 0
		} else {
			vi, ok := varIndex[strings.ToLower(ct.On.Target)]
			if !ok {
				// The on clause may name the source rather than its alias.
				for i, f := range ct.From {
					if strings.EqualFold(f.Source, ct.On.Target) {
						vi, ok = i, true
						break
					}
				}
				if !ok {
					return fmt.Errorf("catalog: on clause names unknown tuple variable %q", ct.On.Target)
				}
			}
			eventVar = vi
		}
	}
	// Bind the when clause and convert to CNF.
	defaultVar := -1
	if len(ct.From) == 1 {
		defaultVar = 0
	}
	var when expr.Node
	if ct.When != nil {
		when = expr.Clone(ct.When)
		b := &expr.Binder{
			VarIndex:   varIndex,
			DefaultVar: defaultVar,
			ColumnIndex: func(vi int, col string) int {
				return schemas[vi].ColumnIndex(col)
			},
		}
		if err := b.Bind(when); err != nil {
			return fmt.Errorf("catalog: trigger %q: %w", ct.Name, err)
		}
	}
	cnf, err := expr.ToCNF(when)
	if err != nil {
		return err
	}
	groups := expr.GroupConjuncts(cnf)

	// Build the condition graph: per-variable selections, pairwise join
	// edges, catch-all for the rest.
	selections := make([]expr.CNF, len(ct.From))
	var edges []discrim.JoinEdge
	var catchAll expr.CNF
	for _, g := range groups {
		switch g.Class {
		case expr.Selection:
			vi := c.varOf(g, when)
			if vi < 0 {
				return fmt.Errorf("catalog: cannot resolve selection variable for %s", g.CNF())
			}
			selections[vi].Clauses = append(selections[vi].Clauses, g.Clauses...)
		case expr.Join:
			a, b := c.varsOfJoin(g)
			if a < 0 || b < 0 {
				return fmt.Errorf("catalog: cannot resolve join variables for %s", g.CNF())
			}
			edges = append(edges, discrim.JoinEdge{A: a, B: b, Pred: g.CNF()})
		default: // Trivial, HyperJoin -> catch-all list
			catchAll.Clauses = append(catchAll.Clauses, g.Clauses...)
		}
	}

	// Aggregate (group by / having) triggers: rewrite the having clause,
	// collect the aggregates it and the action need, and keep resident
	// incremental state. The when clause remains the selection filter.
	isAgg := len(ct.GroupBy) > 0
	info.IsAggregate = isAgg
	if isAgg {
		var groupCols []int
		for _, name := range ct.GroupBy {
			ci := schemas[0].ColumnIndex(name)
			if ci < 0 {
				return fmt.Errorf("catalog: group by names unknown column %q", name)
			}
			groupCols = append(groupCols, ci)
		}
		having := expr.Clone(ct.Having)
		hb := &expr.Binder{
			VarIndex:   varIndex,
			DefaultVar: 0,
			ColumnIndex: func(vi int, col string) int {
				return schemas[vi].ColumnIndex(col)
			},
		}
		// Aggregate calls wrap column refs; bind refs first, ignoring
		// binder errors for arguments inside aggregate functions is not
		// needed because they are plain columns of the source.
		if err := hb.Bind(having); err != nil {
			return fmt.Errorf("catalog: having: %w", err)
		}
		rewritten, specs, err := agg.RewriteHaving(having, groupCols)
		if err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
		specs, err = agg.CollectActionSpecs(ct.Do, schemas[0], specs)
		if err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
		c.aggsMap[info.ID] = &AggTrigger{
			State:  agg.NewState(groupCols, specs),
			Having: agg.HavingEvaluator(rewritten),
			Specs:  specs,
			Schema: schemas[0],
		}
	}

	multiVar := len(ct.From) > 1
	if multiVar {
		vars := make([]discrim.Var, len(ct.From))
		for i, f := range ct.From {
			vars[i] = discrim.Var{
				Name:      f.Var(),
				SourceID:  sources[i].ID,
				Kind:      discrim.Stored,
				Selection: selections[i],
			}
		}
		if c.useGator {
			g, err := discrim.NewLeftDeepGator(info.ID, vars, edges, catchAll)
			if err != nil {
				return err
			}
			c.gators[info.ID] = g
		} else {
			net, err := discrim.NewNetwork(info.ID, vars, edges, catchAll)
			if err != nil {
				return err
			}
			c.networks[info.ID] = net
		}
	} else if len(catchAll.Clauses) > 0 {
		// Single-variable triggers fold trivial conjuncts into the
		// selection predicate.
		selections[0].Clauses = append(selections[0].Clauses, catchAll.Clauses...)
	}

	info.SourceIDs = info.SourceIDs[:0]
	for _, s := range sources {
		info.SourceIDs = append(info.SourceIDs, s.ID)
	}
	// Register one selection predicate per tuple variable.
	for vi := range ct.From {
		fire := predindex.EventMask{AnyOp: true}
		if vi == eventVar {
			fire, err = maskFromEvent(ct.On, schemas[vi])
			if err != nil {
				return err
			}
		}
		regMask := fire
		if multiVar {
			// Alpha memories must see every event on the source.
			regMask = predindex.EventMask{AllOps: true}
		}
		sig, consts, err := expr.ExtractSignature(normalizeVarIdx(selections[vi], vi))
		if err != nil {
			return err
		}
		rest, err := expr.InstantiateCNF(sig.Rest, consts)
		if err != nil {
			return err
		}
		c.nextExprID++
		regMask2 := regMask
		if isAgg {
			// Aggregate state needs every operation (deletes decrement).
			regMask2 = predindex.EventMask{AllOps: true}
		}
		ref := predindex.Ref{
			ExprID:    c.nextExprID,
			TriggerID: info.ID,
			NextNode:  int32(vi),
			Rest:      rest,
			FireMask:  fire,
			MultiVar:  multiVar,
			Gator:     multiVar && c.useGator,
			Aggregate: isAgg,
		}
		entry, err := c.pidx.AddPredicate(sources[vi].ID, regMask2, sig, consts, ref)
		if err != nil {
			c.unregisterLocked(info)
			return err
		}
		info.regs = append(info.regs, predReg{entry: entry, consts: consts, exprID: ref.ExprID})
		if err := c.recordSignatureLocked(entry, sources[vi].ID); err != nil {
			return err
		}
	}
	return nil
}

// normalizeVarIdx rewrites a selection CNF so its column references use
// VarIdx 0 (the predicate index evaluates selections against a single
// token tuple).
func normalizeVarIdx(sel expr.CNF, vi int) expr.CNF {
	out := expr.CNF{Clauses: make([]expr.Clause, len(sel.Clauses))}
	for i, cl := range sel.Clauses {
		atoms := make([]expr.Node, len(cl.Atoms))
		for j, a := range cl.Atoms {
			n := expr.Clone(a)
			expr.Walk(n, func(m expr.Node) bool {
				if ref, ok := m.(*expr.ColumnRef); ok && ref.VarIdx == vi {
					ref.VarIdx = 0
				}
				return true
			})
			atoms[j] = n
		}
		out.Clauses[i] = expr.Clause{Atoms: atoms}
	}
	return out
}

// varOf finds the (single) bound variable index of a selection group.
func (c *Catalog) varOf(g expr.ConjunctGroup, _ expr.Node) int {
	vi := -1
	expr.Walk(g.Predicate(), func(n expr.Node) bool {
		if ref, ok := n.(*expr.ColumnRef); ok && ref.VarIdx >= 0 {
			vi = ref.VarIdx
			return false
		}
		return true
	})
	return vi
}

// varsOfJoin finds the two bound variable indexes of a join group.
func (c *Catalog) varsOfJoin(g expr.ConjunctGroup) (int, int) {
	a, b := -1, -1
	expr.Walk(g.Predicate(), func(n expr.Node) bool {
		if ref, ok := n.(*expr.ColumnRef); ok && ref.VarIdx >= 0 {
			switch {
			case a == -1:
				a = ref.VarIdx
			case a != ref.VarIdx && b == -1:
				b = ref.VarIdx
			}
		}
		return true
	})
	return a, b
}

// maskFromEvent converts a parsed on clause into an event mask, mapping
// update column names to positions.
func maskFromEvent(es *parser.EventSpec, schema *types.Schema) (predindex.EventMask, error) {
	var m predindex.EventMask
	switch es.Op {
	case parser.OpInsert:
		m.Op = datasource.OpInsert
	case parser.OpDelete:
		m.Op = datasource.OpDelete
	case parser.OpUpdate:
		m.Op = datasource.OpUpdate
		for _, col := range es.Columns {
			ci := schema.ColumnIndex(col)
			if ci < 0 {
				return m, fmt.Errorf("catalog: update event names unknown column %q", col)
			}
			m.Columns = append(m.Columns, ci)
		}
	default:
		m.AnyOp = true
	}
	return m, nil
}

// recordSignatureLocked upserts the expression_signature catalog row for
// a signature entry (§5.1's table of the same name). The row's RID is
// cached so the frequent size/organization refresh is a single in-place
// update rather than a table scan.
func (c *Catalog) recordSignatureLocked(e *predindex.SignatureEntry, srcID int32) error {
	constTable := ""
	if org := e.Organization(); org == predindex.OrgTable || org == predindex.OrgIndexedTable {
		constTable = fmt.Sprintf("const_sig_%d", e.ID)
	}
	row := types.Tuple{
		types.NewInt(int64(e.ID)),
		types.NewInt(int64(srcID)),
		types.NewString(e.Sig.Canonical()),
		types.NewString(constTable),
		types.NewInt(int64(e.Size())),
		types.NewString(e.Organization().String()),
	}
	if rid, ok := c.sigRows[e.ID]; ok {
		nrid, err := c.sigTab.UpdateRow(rid, row)
		if err != nil {
			return err
		}
		c.sigRows[e.ID] = nrid
		return nil
	}
	rid, err := c.sigTab.Insert(row)
	if err != nil {
		return err
	}
	c.sigRows[e.ID] = rid
	return nil
}

// DropTrigger removes a trigger: predicates leave the index, the
// catalog row is deleted, the cache entry invalidated, and any resident
// network released.
func (c *Catalog) DropTrigger(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	id, ok := c.byName[key]
	if !ok {
		return fmt.Errorf("catalog: unknown trigger %q", name)
	}
	info := c.triggers[id]
	c.unregisterLocked(info)
	if err := c.trigTab.Delete(info.rid); err != nil {
		return err
	}
	delete(c.triggers, id)
	delete(c.byName, key)
	delete(c.networks, id)
	delete(c.gators, id)
	delete(c.aggsMap, id)
	if err := c.tcache.Invalidate(id); err != nil {
		return err
	}
	return nil
}

func (c *Catalog) unregisterLocked(info *TriggerInfo) {
	for _, r := range info.regs {
		// Best effort; a missing registration is not fatal during
		// rollback of a failed create.
		_ = c.pidx.RemovePredicate(r.entry, r.consts, r.exprID)
	}
	info.regs = nil
}
