package catalog

import (
	"testing"

	"triggerman/internal/datasource"
	"triggerman/internal/storage"
	"triggerman/internal/types"
)

func dlToken(seq uint64) datasource.Token {
	return datasource.Token{
		SourceID: 3,
		Op:       datasource.OpInsert,
		New:      types.Tuple{types.NewString("ada"), types.NewInt(250000)},
		Seq:      seq,
	}
}

func TestDeadLetterAddListTake(t *testing.T) {
	c := newCatalog(t, storage.NewMem(), 16)
	if c.DeadLetterCount() != 0 {
		t.Fatal("fresh catalog should have no dead letters")
	}
	id1, err := c.AddDeadLetter(DeadAction, 7, dlToken(1), "injected action fault", 4)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.AddDeadLetter(DeadToken, 0, dlToken(2), "dequeue exhausted", 5)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 || c.DeadLetterCount() != 2 {
		t.Fatalf("ids %d/%d count %d", id1, id2, c.DeadLetterCount())
	}
	all, err := c.DeadLetters()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("len = %d", len(all))
	}
	first := all[0]
	if first.Kind != DeadAction || first.TriggerID != 7 || first.Attempts != 4 ||
		first.Error != "injected action fault" || first.Created == "" {
		t.Errorf("entry = %+v", first)
	}
	// The token round-trips intact, old/new images included.
	if first.Token.SourceID != 3 || first.Token.Op != datasource.OpInsert ||
		!first.Token.New.Equal(dlToken(1).New) {
		t.Errorf("token = %v", first.Token)
	}
	if first.String() == "" {
		t.Error("String()")
	}

	got, err := c.TakeDeadLetter(id1)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != id1 || c.DeadLetterCount() != 1 {
		t.Errorf("take: %+v count=%d", got, c.DeadLetterCount())
	}
	if _, err := c.TakeDeadLetter(id1); err == nil {
		t.Error("double take should fail")
	}
	if n, err := c.PurgeDeadLetters(); err != nil || n != 1 {
		t.Errorf("purge = %d, %v", n, err)
	}
}

func TestDeadLettersSurviveReopen(t *testing.T) {
	disk := storage.NewMem()
	c, flush := newCatalogFlush(t, disk, 16)
	if _, err := c.AddDeadLetter(DeadToken, 0, dlToken(9), "boom", 3); err != nil {
		t.Fatal(err)
	}
	flush()

	c2 := newCatalog(t, disk, 16)
	all, err := c2.DeadLetters()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Error != "boom" || all[0].Token.Seq != 9 {
		t.Fatalf("recovered = %+v", all)
	}
	// The ID sequence continues past recovered entries.
	id, err := c2.AddDeadLetter(DeadToken, 0, dlToken(10), "later", 1)
	if err != nil {
		t.Fatal(err)
	}
	if id <= all[0].ID {
		t.Errorf("new id %d should exceed recovered id %d", id, all[0].ID)
	}
}
