package catalog

import (
	"sort"

	"triggerman/internal/types"
)

// Registration describes one predicate-index registration of a trigger:
// which expression signature the trigger's predicate instance lives in
// and with which constants.
type Registration struct {
	SigID  uint64        `json:"sig_id"`
	Source int32         `json:"source_id"`
	Expr   string        `json:"expr"`
	ExprID uint64        `json:"expr_id"`
	Consts []types.Value `json:"consts,omitempty"`
}

// TriggerName resolves a trigger ID to its name.
func (c *Catalog) TriggerName(id uint64) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.triggers[id]
	if !ok {
		return "", false
	}
	return t.Name, true
}

// TriggerText returns the stored create-trigger statement.
func (c *Catalog) TriggerText(id uint64) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.triggers[id]
	if !ok {
		return "", false
	}
	return t.Text, true
}

// TriggerRegistrations lists the predicate-index registrations of one
// trigger, sorted by signature ID.
func (c *Catalog) TriggerRegistrations(id uint64) []Registration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.triggers[id]
	if !ok {
		return nil
	}
	out := make([]Registration, 0, len(t.regs))
	for _, r := range t.regs {
		reg := Registration{
			ExprID: r.exprID,
			Consts: append([]types.Value(nil), r.consts...),
		}
		if r.entry != nil {
			reg.SigID = r.entry.ID
			reg.Source = r.entry.Source
			reg.Expr = r.entry.Sig.Canonical()
		}
		out = append(out, reg)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SigID != out[j].SigID {
			return out[i].SigID < out[j].SigID
		}
		return out[i].ExprID < out[j].ExprID
	})
	return out
}

// NetworkShape summarizes the resident discrimination-network state of
// a trigger: node counts feed the /triggerz and explain surfaces so a
// slow trigger's join-state footprint is visible without a debugger.
type NetworkShape struct {
	// Kind is "atreat", "gator", or "" for single-variable triggers.
	Kind string `json:"kind,omitempty"`
	// Vars counts tuple variables (alpha memories).
	Vars int `json:"vars,omitempty"`
	// Betas counts Gator beta nodes (0 for flat A-TREAT).
	Betas int `json:"betas,omitempty"`
	// AlphaTuples sums resident tuples across variable memories.
	AlphaTuples int `json:"alpha_tuples,omitempty"`
	// BetaTuples sums resident partial joins across beta memories.
	BetaTuples int `json:"beta_tuples,omitempty"`
}

// Nodes reports the total discrimination-network node count.
func (s NetworkShape) Nodes() int { return s.Vars + s.Betas }

// NetworkShape reports the network shape for a trigger; ok is false for
// unknown IDs.
func (c *Catalog) NetworkShape(id uint64) (NetworkShape, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.triggers[id]; !ok {
		return NetworkShape{}, false
	}
	if g, ok := c.gators[id]; ok {
		s := NetworkShape{Kind: "gator", Vars: len(g.Vars)}
		for i := range g.Vars {
			s.AlphaTuples += g.MemorySize(i)
		}
		betas := g.BetaSizes()
		s.Betas = len(betas)
		for _, b := range betas {
			s.BetaTuples += b
		}
		return s, true
	}
	if n, ok := c.networks[id]; ok {
		s := NetworkShape{Kind: "atreat", Vars: len(n.Vars)}
		for i := range n.Vars {
			s.AlphaTuples += n.MemorySize(i)
		}
		return s, true
	}
	return NetworkShape{}, true
}

// TriggerIDs returns every trigger ID, sorted (introspection surfaces).
func (c *Catalog) TriggerIDs() []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]uint64, 0, len(c.triggers))
	for id := range c.triggers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
