package catalog

import (
	"fmt"
	"testing"

	"triggerman/internal/admission"
	"triggerman/internal/datasource"
	"triggerman/internal/minisql"
	"triggerman/internal/parser"
	"triggerman/internal/predindex"
	"triggerman/internal/storage"
	"triggerman/internal/types"
)

func newCatalogFlush(t testing.TB, disk storage.DiskManager, cacheSize int) (*Catalog, func()) {
	t.Helper()
	bp := storage.NewBufferPool(disk, 512)
	var db *minisql.DB
	var err error
	if disk.NumPages() == 0 {
		db, err = minisql.Create(bp)
	} else {
		db, err = minisql.Open(bp, 0)
	}
	if err != nil {
		t.Fatal(err)
	}
	reg := datasource.NewRegistry()
	pidx := predindex.New(predindex.WithDB(db))
	c, err := New(Config{DB: db, Reg: reg, Pidx: pidx, Cache: cacheSize})
	if err != nil {
		t.Fatal(err)
	}
	return c, func() {
		if err := bp.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
}

func newCatalog(t testing.TB, disk storage.DiskManager, cacheSize int) *Catalog {
	t.Helper()
	c, _ := newCatalogFlush(t, disk, cacheSize)
	return c
}

var empSchema = types.MustSchema(
	types.Column{Name: "name", Kind: types.KindVarchar},
	types.Column{Name: "salary", Kind: types.KindInt},
)

func withEmp(t testing.TB, c *Catalog) *datasource.Source {
	t.Helper()
	src, err := c.DefineDataSource("emp", empSchema)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestCreateTriggerPipeline(t *testing.T) {
	c := newCatalog(t, storage.NewMem(), 16)
	src := withEmp(t, c)
	info, err := c.CreateTrigger(`create trigger big from emp when emp.salary > 100 do raise event Big(emp.name)`)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == 0 || info.Name != "big" || !info.Enabled {
		t.Errorf("info = %+v", info)
	}
	if len(info.SourceIDs) != 1 || info.SourceIDs[0] != src.ID {
		t.Errorf("sources = %v", info.SourceIDs)
	}
	if c.TriggerCount() != 1 {
		t.Error("count")
	}
	if id, ok := c.TriggerByName("BIG"); !ok || id != info.ID {
		t.Error("case-insensitive lookup")
	}
	// One signature registered on the source.
	if n := c.PredIndex().SignatureCount(src.ID); n != 1 {
		t.Errorf("signatures = %d", n)
	}
	// The expression_signature catalog table has a row.
	res, err := c.DB().Exec("select sigid, constantsetsize from expression_signature")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("sig rows = %v, %v", res, err)
	}
	if res.Rows[0][1].Int() != 1 {
		t.Errorf("constantsetsize = %v", res.Rows[0][1])
	}
}

func TestSignatureRowTracksSize(t *testing.T) {
	c := newCatalog(t, storage.NewMem(), 16)
	withEmp(t, c)
	for i := 0; i < 5; i++ {
		if _, err := c.CreateTrigger(fmt.Sprintf(
			`create trigger t%d from emp when emp.salary > %d do raise event E()`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	res, _ := c.DB().Exec("select constantsetsize from expression_signature")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 5 {
		t.Errorf("sig rows = %v", res.Rows)
	}
}

func TestPinLoadsFromCatalogText(t *testing.T) {
	c := newCatalog(t, storage.NewMem(), 2) // tiny cache to force churn
	withEmp(t, c)
	var ids []uint64
	for i := 0; i < 6; i++ {
		info, err := c.CreateTrigger(fmt.Sprintf(
			`create trigger t%d from emp when emp.salary > %d do raise event E%d(emp.name)`, i, i, i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	// Pin each: with capacity 2 most loads are misses re-parsed from the
	// stored text.
	for _, id := range ids {
		lt, unpin, err := c.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		if lt.Stmt.Name != fmt.Sprintf("t%d", id-1) {
			t.Errorf("loaded name = %q for id %d", lt.Stmt.Name, id)
		}
		if lt.Network != nil {
			t.Error("single-var trigger should have no network")
		}
		if len(lt.Schemas) != 1 || lt.Schemas[0].Arity() != 2 {
			t.Error("schemas not resolved")
		}
		unpin()
	}
	st := c.Cache().Stats()
	if st.Misses < 4 {
		t.Errorf("expected cache churn, stats = %+v", st)
	}
}

func TestMultiVarTriggerHasResidentNetwork(t *testing.T) {
	c := newCatalog(t, storage.NewMem(), 16)
	withEmp(t, c)
	dept := types.MustSchema(types.Column{Name: "dname", Kind: types.KindVarchar})
	if _, err := c.DefineDataSource("dept", dept); err != nil {
		t.Fatal(err)
	}
	info, err := c.CreateTrigger(`create trigger j from emp e, dept d
		when e.name = d.dname do raise event J(e.salary)`)
	if err != nil {
		t.Fatal(err)
	}
	lt, unpin, err := c.Pin(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if lt.Network == nil {
		t.Fatal("multi-var trigger needs a network")
	}
	net1 := lt.Network
	unpin()
	// Evict and re-pin: the network object must be the same instance
	// (alpha memories are resident).
	c.Cache().Invalidate(info.ID)
	lt2, unpin2, err := c.Pin(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unpin2()
	if lt2.Network != net1 {
		t.Error("network not shared across cache reloads")
	}
}

func TestDropTriggerCleansUp(t *testing.T) {
	c := newCatalog(t, storage.NewMem(), 16)
	src := withEmp(t, c)
	info, _ := c.CreateTrigger(`create trigger gone from emp when emp.name = 'x' do raise event E()`)
	entry := c.PredIndex().Signatures(src.ID)[0]
	if entry.Size() != 1 {
		t.Fatal("predicate not registered")
	}
	if err := c.DropTrigger("gone"); err != nil {
		t.Fatal(err)
	}
	if entry.Size() != 0 {
		t.Error("predicate not removed on drop")
	}
	if c.TriggerCount() != 0 {
		t.Error("count after drop")
	}
	if _, _, err := c.Pin(info.ID); err == nil {
		t.Error("pin of dropped trigger should fail")
	}
	if err := c.DropTrigger("gone"); err == nil {
		t.Error("double drop")
	}
	// Row gone from the catalog table.
	res, _ := c.DB().Exec("select * from trigger")
	if len(res.Rows) != 0 {
		t.Errorf("trigger rows = %d", len(res.Rows))
	}
}

func TestEnableDisableAndSets(t *testing.T) {
	c := newCatalog(t, storage.NewMem(), 16)
	withEmp(t, c)
	if _, err := c.CreateTriggerSet("batch", "comment"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTriggerSet("batch", ""); err == nil {
		t.Error("duplicate set")
	}
	info, err := c.CreateTrigger(`create trigger t1 in batch from emp when emp.salary > 0 do raise event E()`)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsFireable(info.ID) {
		t.Error("should be fireable")
	}
	c.SetTriggerEnabled("t1", false)
	if c.IsFireable(info.ID) {
		t.Error("disabled trigger fireable")
	}
	c.SetTriggerEnabled("t1", true)
	c.SetTriggerSetEnabled("batch", false)
	if c.IsFireable(info.ID) {
		t.Error("trigger in disabled set fireable")
	}
	c.SetTriggerSetEnabled("batch", true)
	if !c.IsFireable(info.ID) {
		t.Error("re-enabled")
	}
	if err := c.DropTriggerSet("batch"); err == nil {
		t.Error("non-empty set drop should fail")
	}
	c.DropTrigger("t1")
	if err := c.DropTriggerSet("batch"); err != nil {
		t.Error(err)
	}
	if err := c.SetTriggerEnabled("ghost", true); err == nil {
		t.Error("unknown trigger")
	}
	if err := c.SetTriggerSetEnabled("ghost", true); err == nil {
		t.Error("unknown set")
	}
}

func TestImplicitSetCreation(t *testing.T) {
	c := newCatalog(t, storage.NewMem(), 16)
	withEmp(t, c)
	if _, err := c.CreateTrigger(`create trigger t1 in autoset from emp when emp.salary > 0 do raise event E()`); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTriggerSetEnabled("autoset", false); err != nil {
		t.Errorf("implicit set missing: %v", err)
	}
}

func TestRecoveryAcrossRestart(t *testing.T) {
	disk := storage.NewMem()
	var trigID uint64
	{
		c, flush := newCatalogFlush(t, disk, 16)
		withEmp(t, c)
		info, err := c.CreateTrigger(`create trigger keep from emp when emp.salary > 42 do raise event Keep(emp.name)`)
		if err != nil {
			t.Fatal(err)
		}
		trigID = info.ID
		if _, err := c.CreateTriggerSet("night", "batch jobs"); err != nil {
			t.Fatal(err)
		}
		c.SetTriggerEnabled("keep", false)
		flush()
	}
	// "Restart": a new catalog over the same disk.
	c2 := newCatalog(t, disk, 16)
	if c2.TriggerCount() != 1 {
		t.Fatalf("recovered %d triggers", c2.TriggerCount())
	}
	id, ok := c2.TriggerByName("keep")
	if !ok || id != trigID {
		t.Fatalf("recovered id = %d", id)
	}
	if c2.IsFireable(id) {
		t.Error("disabled flag lost in recovery")
	}
	// The predicate is re-registered.
	src, _ := c2.Registry().ByName("emp")
	if n := c2.PredIndex().SignatureCount(src.ID); n != 1 {
		t.Errorf("recovered signatures = %d", n)
	}
	// Sets recovered.
	if err := c2.SetTriggerSetEnabled("night", false); err != nil {
		t.Errorf("set lost: %v", err)
	}
	// New triggers get fresh IDs.
	info, err := c2.CreateTrigger(`create trigger fresh from emp when emp.salary > 1 do raise event F()`)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID <= trigID {
		t.Errorf("id %d not advanced past %d", info.ID, trigID)
	}
}

func TestCreateErrors(t *testing.T) {
	c := newCatalog(t, storage.NewMem(), 16)
	withEmp(t, c)
	bad := []string{
		`create trigger x from ghost when ghost.a > 1 do raise event E()`,
		`create trigger x from emp when emp.ghost > 1 do raise event E()`,
		`create trigger x from emp group by name having salary > 1 do raise event E()`,
		`create trigger x from emp group by ghost having count(name) > 1 do raise event E()`,
		`create trigger x from emp emp2, emp emp2 when emp2.salary > 1 do raise event E()`,
		`drop trigger x`, // not a create statement via CreateTrigger
	}
	for _, src := range bad {
		if _, err := c.CreateTrigger(src); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
	if c.TriggerCount() != 0 {
		t.Error("failed creates leaked triggers")
	}
	if _, err := c.CreateTrigger(`create trigger ok from emp when emp.salary > 1 do raise event E()`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTrigger(`create trigger OK from emp when emp.salary > 2 do raise event E()`); err == nil {
		t.Error("case-insensitive duplicate name")
	}
}

func TestEventMaskMapping(t *testing.T) {
	c := newCatalog(t, storage.NewMem(), 16)
	src := withEmp(t, c)
	if _, err := c.CreateTrigger(`create trigger u from emp on update(emp.salary) when emp.salary > 0 do raise event E()`); err != nil {
		t.Fatal(err)
	}
	entries := c.PredIndex().Signatures(src.ID)
	if len(entries) != 1 {
		t.Fatalf("signatures = %d", len(entries))
	}
	m := entries[0].Mask
	if m.AnyOp || m.AllOps || m.Op != datasource.OpUpdate || len(m.Columns) != 1 || m.Columns[0] != 1 {
		t.Errorf("mask = %+v", m)
	}
	// Event column must exist.
	if _, err := c.CreateTrigger(`create trigger u2 from emp on update(emp.ghost) do raise event E()`); err == nil {
		t.Error("unknown event column")
	}
}

func TestOnClauseNamesSourceNotAlias(t *testing.T) {
	c := newCatalog(t, storage.NewMem(), 16)
	withEmp(t, c)
	dept := types.MustSchema(types.Column{Name: "dname", Kind: types.KindVarchar})
	c.DefineDataSource("dept", dept)
	// on insert to emp where the from clause aliases emp as e.
	if _, err := c.CreateTrigger(`create trigger x on insert to emp from emp e, dept d
		when e.name = d.dname do raise event E()`); err != nil {
		t.Errorf("on clause naming the source should resolve: %v", err)
	}
}

func TestLoadedTriggerParsedAction(t *testing.T) {
	c := newCatalog(t, storage.NewMem(), 16)
	withEmp(t, c)
	info, _ := c.CreateTrigger(`create trigger a from emp when emp.salary > 0
		do execSQL 'insert into emp values (:NEW.emp.name, 0)'`)
	lt, unpin, err := c.Pin(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unpin()
	if _, ok := lt.Action.(*parser.ExecSQL); !ok {
		t.Errorf("action = %T", lt.Action)
	}
}

func TestAggregateTriggerRecovery(t *testing.T) {
	disk := storage.NewMem()
	{
		c, flush := newCatalogFlush(t, disk, 16)
		c.DefineDataSource("sales", types.MustSchema(
			types.Column{Name: "region", Kind: types.KindVarchar},
			types.Column{Name: "amount", Kind: types.KindInt}))
		if _, err := c.CreateTrigger(`create trigger hot from sales
			group by region having count(region) > 2
			do raise event Hot(sales.region)`); err != nil {
			t.Fatal(err)
		}
		flush()
	}
	c2 := newCatalog(t, disk, 16)
	id, ok := c2.TriggerByName("hot")
	if !ok {
		t.Fatal("aggregate trigger not recovered")
	}
	if !c2.TriggerIsAggregate(id) {
		t.Error("IsAggregate flag lost")
	}
	lt, unpin, err := c2.Pin(id)
	if err != nil {
		t.Fatal(err)
	}
	defer unpin()
	if lt.Agg == nil {
		t.Fatal("aggregate state not rebuilt on recovery")
	}
	// State restarts empty (main-memory resident, like alpha memories).
	if lt.Agg.State.Groups() != 0 {
		t.Errorf("recovered groups = %d", lt.Agg.State.Groups())
	}
	if len(lt.Agg.Specs) != 1 {
		t.Errorf("specs = %v", lt.Agg.Specs)
	}
}

func TestTriggerClassFromFlags(t *testing.T) {
	disk := storage.NewMem()
	c, flush := newCatalogFlush(t, disk, 8)
	withEmp(t, c)
	inter, err := c.CreateTrigger("create trigger t_inter from emp when emp.salary > 1 do raise event A(emp.name)")
	if err != nil {
		t.Fatal(err)
	}
	bat, err := c.CreateTrigger("create trigger t_bat batch from emp when emp.salary > 2 do raise event B(emp.name)")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TriggerClass(inter.ID); got != admission.Interactive {
		t.Fatalf("default class = %v", got)
	}
	if got := c.TriggerClass(bat.ID); got != admission.Batch {
		t.Fatalf("batch flag class = %v", got)
	}
	if got := c.TriggerClass(99999); got != admission.Interactive {
		t.Fatalf("unknown trigger class = %v", got)
	}
	flush()

	// The class survives restart via text re-parse in recovery.
	c2 := newCatalog(t, disk, 8)
	id, ok := c2.TriggerByName("t_bat")
	if !ok {
		t.Fatal("t_bat lost in recovery")
	}
	if got := c2.TriggerClass(id); got != admission.Batch {
		t.Fatalf("recovered class = %v", got)
	}
}
