package catalog

// The dead-letter queue: tokens and rule-action firings that exhausted
// their retries (or failed permanently — a panicking action, a semantic
// error) are quarantined in a catalog-backed dead_letter table instead
// of being silently dropped. The table persists across restarts like
// the other §5.1 catalogs, so an operator can inspect, requeue, or
// purge stranded work after a crash.

import (
	"encoding/hex"
	"fmt"

	"triggerman/internal/datasource"
	"triggerman/internal/storage"
	"triggerman/internal/types"
)

// Dead-letter entry kinds.
const (
	// DeadToken is a whole update descriptor whose processing failed.
	DeadToken = "token"
	// DeadAction is one trigger firing whose action failed.
	DeadAction = "action"
	// DeadShed is a token diverted by admission control before it
	// reached the queue: batch-class work shed past the soft watermark.
	// Shed entries carry no failure, only deferral — requeue them once
	// the source recovers.
	DeadShed = "shed"
	// DeadForward is a token that belonged on another cluster node but
	// could not be forwarded there within the retry budget. Like shed
	// entries it carries deferral, not failure: requeue it once the
	// owner node returns and it ships again.
	DeadForward = "forward"
)

// DeadLetter is one quarantined work item.
type DeadLetter struct {
	ID uint64
	// Kind is DeadToken or DeadAction.
	Kind string
	// TriggerID identifies the failing trigger for DeadAction entries
	// (0 for DeadToken entries).
	TriggerID uint64
	// Token is the original update descriptor.
	Token datasource.Token
	// Error is the final error message.
	Error string
	// Attempts is how many times the work was tried before quarantine.
	Attempts int
	// Created is the quarantine timestamp (RFC3339).
	Created string

	rid storage.RID
}

// String renders the entry for the console.
func (d DeadLetter) String() string {
	return fmt.Sprintf("#%d %s trigger=%d attempts=%d token=%s created=%s error=%s",
		d.ID, d.Kind, d.TriggerID, d.Attempts, d.Token, d.Created, d.Error)
}

func (c *Catalog) ensureDeadLetterTable() error {
	if t, err := c.db.Table("dead_letter"); err == nil {
		c.dlTab = t
	} else {
		t, err := c.db.CreateTable("dead_letter", types.MustSchema(
			types.Column{Name: "dlid", Kind: types.KindInt},
			types.Column{Name: "kind", Kind: types.KindVarchar},
			types.Column{Name: "triggerid", Kind: types.KindInt},
			types.Column{Name: "token", Kind: types.KindVarchar},
			types.Column{Name: "error", Kind: types.KindVarchar},
			types.Column{Name: "attempts", Kind: types.KindInt},
			types.Column{Name: "created", Kind: types.KindVarchar},
		))
		if err != nil {
			return err
		}
		c.dlTab = t
	}
	// Entries persist across restarts; continue the ID sequence past the
	// surviving rows.
	return c.dlTab.Scan(func(_ storage.RID, row types.Tuple) bool {
		if id := uint64(row[0].Int()); id > c.nextDLID {
			c.nextDLID = id
		}
		return true
	})
}

func decodeDeadLetterRow(rid storage.RID, row types.Tuple) (DeadLetter, error) {
	if len(row) != 7 {
		return DeadLetter{}, fmt.Errorf("catalog: bad dead_letter row arity %d", len(row))
	}
	d := DeadLetter{
		ID:        uint64(row[0].Int()),
		Kind:      row[1].Str(),
		TriggerID: uint64(row[2].Int()),
		Error:     row[4].Str(),
		Attempts:  int(row[5].Int()),
		Created:   row[6].Str(),
		rid:       rid,
	}
	raw, err := hex.DecodeString(row[3].Str())
	if err != nil {
		return DeadLetter{}, fmt.Errorf("catalog: dead_letter %d token hex: %w", d.ID, err)
	}
	d.Token, err = datasource.DecodeToken(raw)
	if err != nil {
		return DeadLetter{}, fmt.Errorf("catalog: dead_letter %d token: %w", d.ID, err)
	}
	return d, nil
}

// AddDeadLetter quarantines a failed work item and returns its ID.
func (c *Catalog) AddDeadLetter(kind string, triggerID uint64, tok datasource.Token, errMsg string, attempts int) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextDLID++
	id := c.nextDLID
	_, err := c.dlTab.Insert(types.Tuple{
		types.NewInt(int64(id)),
		types.NewString(kind),
		types.NewInt(int64(triggerID)),
		types.NewString(hex.EncodeToString(tok.Encode())),
		types.NewString(errMsg),
		types.NewInt(int64(attempts)),
		types.NewString(c.now()),
	})
	if err != nil {
		// Roll the sequence back so a retried insert reuses the ID.
		c.nextDLID--
		return 0, err
	}
	return id, nil
}

// DeadLetters returns every quarantined entry in ID order of storage.
func (c *Catalog) DeadLetters() ([]DeadLetter, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []DeadLetter
	var derr error
	err := c.dlTab.Scan(func(rid storage.RID, row types.Tuple) bool {
		d, e := decodeDeadLetterRow(rid, row)
		if e != nil {
			derr = e
			return false
		}
		out = append(out, d)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, derr
}

// DeadLetterCount reports the number of quarantined entries.
func (c *Catalog) DeadLetterCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dlTab.Count()
}

// TakeDeadLetter removes entry id and returns it (the requeue path:
// the caller re-injects the token and the entry must not double-fire).
func (c *Catalog) TakeDeadLetter(id uint64) (DeadLetter, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var found *DeadLetter
	var derr error
	err := c.dlTab.Scan(func(rid storage.RID, row types.Tuple) bool {
		if uint64(row[0].Int()) != id {
			return true
		}
		d, e := decodeDeadLetterRow(rid, row)
		if e != nil {
			derr = e
		} else {
			found = &d
		}
		return false
	})
	if err != nil {
		return DeadLetter{}, err
	}
	if derr != nil {
		return DeadLetter{}, derr
	}
	if found == nil {
		return DeadLetter{}, fmt.Errorf("catalog: no dead letter %d", id)
	}
	if err := c.dlTab.Delete(found.rid); err != nil {
		return DeadLetter{}, err
	}
	return *found, nil
}

// PurgeDeadLetters removes every entry and reports how many.
func (c *Catalog) PurgeDeadLetters() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rids []storage.RID
	if err := c.dlTab.Scan(func(rid storage.RID, _ types.Tuple) bool {
		rids = append(rids, rid)
		return true
	}); err != nil {
		return 0, err
	}
	for i, rid := range rids {
		if err := c.dlTab.Delete(rid); err != nil {
			return i, err
		}
	}
	return len(rids), nil
}
