// Package catalog implements the trigger system catalogs of §5.1: the
// trigger_set, trigger, data_source and expression_signature tables kept
// in the embedded database, the in-memory mirrors used on the hot path,
// the trigger cache, and the create trigger processing pipeline (parse,
// CNF conversion, condition-graph construction, A-TREAT network build,
// and predicate registration with signature interning).
package catalog

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"triggerman/internal/admission"
	"triggerman/internal/agg"
	"triggerman/internal/cache"
	"triggerman/internal/datasource"
	"triggerman/internal/discrim"
	"triggerman/internal/expr"
	"triggerman/internal/minisql"
	"triggerman/internal/parser"
	"triggerman/internal/predindex"
	"triggerman/internal/storage"
	"triggerman/internal/types"
)

// DefaultTriggerCacheSize follows the paper's sizing example (§5.1):
// 64MB of cache at ~4KB per description holds 16,384 triggers.
const DefaultTriggerCacheSize = 16384

// TriggerSet mirrors a trigger_set row.
type TriggerSet struct {
	ID       uint64
	Name     string
	Comments string
	Enabled  bool

	rid storage.RID
}

// TriggerInfo mirrors a trigger row plus registration bookkeeping.
type TriggerInfo struct {
	ID      uint64
	SetID   uint64
	Name    string
	Text    string
	Enabled bool
	Created string
	// SourceIDs lists the data sources of the trigger's tuple variables,
	// in from-clause order.
	SourceIDs []int32
	// IsAggregate marks group-by/having triggers.
	IsAggregate bool
	// Class is the scheduling priority class, declared as a flag in the
	// create-trigger statement ("create trigger t batch from ...").
	// Interactive is the default. It survives restart because recovery
	// re-parses the trigger text through primeTrigger.
	Class admission.Class

	rid  storage.RID
	regs []predReg
}

type predReg struct {
	entry  *predindex.SignatureEntry
	consts []types.Value
	exprID uint64
}

// LoadedTrigger is the trigger-cache payload: the complete description
// of §5.1 (syntax tree, network skeleton, data source references).
type LoadedTrigger struct {
	Info     *TriggerInfo
	Stmt     *parser.CreateTrigger
	VarIndex map[string]int
	Schemas  []*types.Schema
	Sources  []int32
	// Network is non-nil for multi-variable triggers under the default
	// A-TREAT strategy; its alpha memories are resident (owned by the
	// catalog, shared across cache loads).
	Network *discrim.Network
	// Gator is non-nil instead of Network when the catalog runs Gator
	// networks (Config.UseGator).
	Gator *discrim.GatorNetwork
	// Agg is non-nil for group-by/having triggers: resident incremental
	// aggregate state plus the rewritten having condition.
	Agg    *AggTrigger
	Action parser.Action
}

// AggTrigger is the resident state of one aggregate trigger.
type AggTrigger struct {
	State  *agg.State
	Having func(groupKey, aggs types.Tuple) (bool, error)
	Specs  []agg.Spec
	// Schema is the source schema, needed to substitute aggregate calls
	// in the action at firing time.
	Schema *types.Schema
}

// Catalog owns the trigger system state.
type Catalog struct {
	mu   sync.RWMutex
	db   *minisql.DB
	reg  *datasource.Registry
	pidx *predindex.Index

	tcache *cache.Sharded

	triggers map[uint64]*TriggerInfo
	byName   map[string]uint64
	sets     map[string]*TriggerSet
	networks map[uint64]*discrim.Network      // resident multi-var networks
	gators   map[uint64]*discrim.GatorNetwork // resident Gator networks
	aggsMap  map[uint64]*AggTrigger           // resident aggregate states
	sigRows  map[uint64]storage.RID           // expression_signature row per signature
	useGator bool

	nextTriggerID uint64
	nextExprID    uint64
	nextSetID     uint64
	nextDLID      uint64

	trigTab, setTab, srcTab, sigTab, dlTab *minisql.Table

	now func() string
}

// Config configures a catalog.
type Config struct {
	DB    *minisql.DB
	Reg   *datasource.Registry
	Pidx  *predindex.Index
	Cache int // trigger cache capacity; 0 = DefaultTriggerCacheSize
	// UseGator runs multi-variable triggers through Gator networks
	// (cached join state, [Hans97b]) instead of flat A-TREAT networks.
	UseGator bool
}

// New creates the catalog tables (or reopens them) and returns a ready
// catalog. Recovery re-registers data sources and re-primes every stored
// trigger from its catalog text.
func New(cfg Config) (*Catalog, error) {
	if cfg.Cache <= 0 {
		cfg.Cache = DefaultTriggerCacheSize
	}
	c := &Catalog{
		db:       cfg.DB,
		reg:      cfg.Reg,
		pidx:     cfg.Pidx,
		triggers: make(map[uint64]*TriggerInfo),
		byName:   make(map[string]uint64),
		sets:     make(map[string]*TriggerSet),
		networks: make(map[uint64]*discrim.Network),
		gators:   make(map[uint64]*discrim.GatorNetwork),
		aggsMap:  make(map[uint64]*AggTrigger),
		sigRows:  make(map[uint64]storage.RID),
		useGator: cfg.UseGator,
		now:      func() string { return time.Now().UTC().Format(time.RFC3339) },
	}
	c.tcache = cache.NewSharded(cfg.Cache, c.loadTrigger)
	if err := c.ensureTables(); err != nil {
		return nil, err
	}
	if err := c.recover(); err != nil {
		return nil, err
	}
	return c, nil
}

// Cache exposes the trigger cache (stats for experiments).
func (c *Catalog) Cache() *cache.Sharded { return c.tcache }

// DB exposes the embedded database.
func (c *Catalog) DB() *minisql.DB { return c.db }

// PredIndex exposes the predicate index.
func (c *Catalog) PredIndex() *predindex.Index { return c.pidx }

// Registry exposes the data source registry.
func (c *Catalog) Registry() *datasource.Registry { return c.reg }

func (c *Catalog) ensureTables() error {
	get := func(name string, schema *types.Schema, indexCols ...string) (*minisql.Table, error) {
		if t, err := c.db.Table(name); err == nil {
			return t, nil
		}
		t, err := c.db.CreateTable(name, schema)
		if err != nil {
			return nil, err
		}
		if len(indexCols) > 0 {
			if _, err := t.CreateIndex(name+"_idx", indexCols...); err != nil {
				return nil, err
			}
		}
		return t, nil
	}
	var err error
	c.setTab, err = get("trigger_set", types.MustSchema(
		types.Column{Name: "tsid", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindVarchar},
		types.Column{Name: "comments", Kind: types.KindVarchar},
		types.Column{Name: "creation_date", Kind: types.KindVarchar},
		types.Column{Name: "isenabled", Kind: types.KindInt},
	))
	if err != nil {
		return err
	}
	c.trigTab, err = get("trigger", types.MustSchema(
		types.Column{Name: "triggerid", Kind: types.KindInt},
		types.Column{Name: "tsid", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindVarchar},
		types.Column{Name: "comments", Kind: types.KindVarchar},
		types.Column{Name: "trigger_text", Kind: types.KindVarchar},
		types.Column{Name: "creation_date", Kind: types.KindVarchar},
		types.Column{Name: "isenabled", Kind: types.KindInt},
	), "triggerid")
	if err != nil {
		return err
	}
	c.srcTab, err = get("data_source", types.MustSchema(
		types.Column{Name: "srcid", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindVarchar},
		types.Column{Name: "schematext", Kind: types.KindVarchar},
	))
	if err != nil {
		return err
	}
	c.sigTab, err = get("expression_signature", types.MustSchema(
		types.Column{Name: "sigid", Kind: types.KindInt},
		types.Column{Name: "datasrcid", Kind: types.KindInt},
		types.Column{Name: "signaturedesc", Kind: types.KindVarchar},
		types.Column{Name: "consttablename", Kind: types.KindVarchar},
		types.Column{Name: "constantsetsize", Kind: types.KindInt},
		types.Column{Name: "constantsetorganization", Kind: types.KindVarchar},
	))
	if err != nil {
		return err
	}
	return c.ensureDeadLetterTable()
}

// recover rebuilds in-memory state from the catalog tables: data
// sources first, then trigger sets, then every trigger re-primed from
// its stored text. Constant tables from the previous incarnation are
// dropped (the predicate index rebuilds them as classes regrow).
func (c *Catalog) recover() error {
	// Drop stale constant tables and signature rows; they are rebuilt.
	for _, name := range c.db.Tables() {
		if strings.HasPrefix(strings.ToLower(name), "const_sig_") {
			if err := c.db.DropTable(name); err != nil {
				return err
			}
		}
	}
	if _, err := c.db.ExecStmt(&parser.Delete{Table: "expression_signature"}); err != nil {
		return err
	}
	// Data sources.
	var derr error
	err := c.srcTab.Scan(func(_ storage.RID, row types.Tuple) bool {
		schema, e := decodeSchemaText(row[2].Str())
		if e != nil {
			derr = e
			return false
		}
		if _, e := c.reg.DefineWithID(int32(row[0].Int()), row[1].Str(), schema); e != nil {
			derr = e
			return false
		}
		c.pidx.AddSource(int32(row[0].Int()), schema)
		return true
	})
	if err != nil {
		return err
	}
	if derr != nil {
		return derr
	}
	// Trigger sets.
	err = c.setTab.Scan(func(rid storage.RID, row types.Tuple) bool {
		ts := &TriggerSet{
			ID:       uint64(row[0].Int()),
			Name:     row[1].Str(),
			Comments: row[2].Str(),
			Enabled:  row[4].Int() != 0,
			rid:      rid,
		}
		c.sets[strings.ToLower(ts.Name)] = ts
		if ts.ID >= c.nextSetID {
			c.nextSetID = ts.ID
		}
		return true
	})
	if err != nil {
		return err
	}
	// Triggers: collect rows, then re-prime.
	type row struct {
		info TriggerInfo
	}
	var rows []row
	err = c.trigTab.Scan(func(rid storage.RID, r types.Tuple) bool {
		rows = append(rows, row{TriggerInfo{
			ID:      uint64(r[0].Int()),
			SetID:   uint64(r[1].Int()),
			Name:    r[2].Str(),
			Text:    r[4].Str(),
			Created: r[5].Str(),
			Enabled: r[6].Int() != 0,
			rid:     rid,
		}})
		return true
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		st, err := parser.Parse(r.info.Text)
		if err != nil {
			return fmt.Errorf("catalog: recovering trigger %q: %w", r.info.Name, err)
		}
		ct, ok := st.(*parser.CreateTrigger)
		if !ok {
			return fmt.Errorf("catalog: trigger %q text is not a create trigger", r.info.Name)
		}
		info := r.info
		if err := c.primeTrigger(&info, ct); err != nil {
			return fmt.Errorf("catalog: recovering trigger %q: %w", r.info.Name, err)
		}
		c.triggers[info.ID] = &info
		c.byName[strings.ToLower(info.Name)] = info.ID
		if info.ID >= c.nextTriggerID {
			c.nextTriggerID = info.ID
		}
	}
	return nil
}

func encodeSchemaText(s *types.Schema) string {
	parts := make([]string, len(s.Columns))
	for i, col := range s.Columns {
		parts[i] = fmt.Sprintf("%s:%d", col.Name, col.Kind)
	}
	return strings.Join(parts, ",")
}

func decodeSchemaText(text string) (*types.Schema, error) {
	if text == "" {
		return types.NewSchema()
	}
	var cols []types.Column
	for _, part := range strings.Split(text, ",") {
		i := strings.LastIndexByte(part, ':')
		if i < 0 {
			return nil, fmt.Errorf("catalog: bad schema text %q", text)
		}
		var k int
		if _, err := fmt.Sscanf(part[i+1:], "%d", &k); err != nil {
			return nil, err
		}
		cols = append(cols, types.Column{Name: part[:i], Kind: types.Kind(k)})
	}
	return types.NewSchema(cols...)
}

// DefineDataSource registers a data source and persists it.
func (c *Catalog) DefineDataSource(name string, schema *types.Schema) (*datasource.Source, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	src, err := c.reg.Define(name, schema)
	if err != nil {
		return nil, err
	}
	c.pidx.AddSource(src.ID, schema)
	_, err = c.srcTab.Insert(types.Tuple{
		types.NewInt(int64(src.ID)),
		types.NewString(name),
		types.NewString(encodeSchemaText(schema)),
	})
	if err != nil {
		return nil, err
	}
	return src, nil
}

// CreateTriggerSet creates a named trigger set.
func (c *Catalog) CreateTriggerSet(name, comments string) (*TriggerSet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.createTriggerSetLocked(name, comments)
}

func (c *Catalog) createTriggerSetLocked(name, comments string) (*TriggerSet, error) {
	key := strings.ToLower(name)
	if _, dup := c.sets[key]; dup {
		return nil, fmt.Errorf("catalog: trigger set %q already exists", name)
	}
	c.nextSetID++
	ts := &TriggerSet{ID: c.nextSetID, Name: name, Comments: comments, Enabled: true}
	rid, err := c.setTab.Insert(types.Tuple{
		types.NewInt(int64(ts.ID)),
		types.NewString(name),
		types.NewString(comments),
		types.NewString(c.now()),
		types.NewInt(1),
	})
	if err != nil {
		return nil, err
	}
	ts.rid = rid
	c.sets[key] = ts
	return ts, nil
}

// DropTriggerSet removes an empty trigger set.
func (c *Catalog) DropTriggerSet(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	ts, ok := c.sets[key]
	if !ok {
		return fmt.Errorf("catalog: unknown trigger set %q", name)
	}
	for _, t := range c.triggers {
		if t.SetID == ts.ID {
			return fmt.Errorf("catalog: trigger set %q is not empty (trigger %q)", name, t.Name)
		}
	}
	if err := c.setTab.Delete(ts.rid); err != nil {
		return err
	}
	delete(c.sets, key)
	return nil
}

// TriggerCount reports the number of defined triggers.
func (c *Catalog) TriggerCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.triggers)
}

// TriggerNames lists trigger names (unsorted).
func (c *Catalog) TriggerNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.triggers))
	for _, t := range c.triggers {
		out = append(out, t.Name)
	}
	return out
}

// TriggerByName resolves a trigger ID.
func (c *Catalog) TriggerByName(name string) (uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.byName[strings.ToLower(name)]
	return id, ok
}

// TriggerIsAggregate reports whether the trigger has a group-by/having
// condition.
func (c *Catalog) TriggerIsAggregate(id uint64) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.triggers[id]
	return ok && t.IsAggregate
}

// TriggerClass reports the trigger's scheduling priority class.
// Unknown triggers are interactive (the safe default for routing).
func (c *Catalog) TriggerClass(id uint64) admission.Class {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if t, ok := c.triggers[id]; ok {
		return t.Class
	}
	return admission.Interactive
}

// TriggerSources returns the data sources of a trigger's tuple
// variables without loading the full description.
func (c *Catalog) TriggerSources(id uint64) ([]int32, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.triggers[id]
	if !ok {
		return nil, false
	}
	return t.SourceIDs, true
}

// IsFireable reports whether the trigger and its set are enabled.
func (c *Catalog) IsFireable(id uint64) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.triggers[id]
	if !ok || !t.Enabled {
		return false
	}
	if t.SetID != 0 {
		for _, ts := range c.sets {
			if ts.ID == t.SetID {
				return ts.Enabled
			}
		}
	}
	return true
}

// SetTriggerEnabled toggles a trigger's isEnabled flag.
func (c *Catalog) SetTriggerEnabled(name string, enabled bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.byName[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("catalog: unknown trigger %q", name)
	}
	t := c.triggers[id]
	t.Enabled = enabled
	return c.updateTriggerRowLocked(t)
}

// SetTriggerSetEnabled toggles a trigger set's isEnabled flag.
func (c *Catalog) SetTriggerSetEnabled(name string, enabled bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts, ok := c.sets[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("catalog: unknown trigger set %q", name)
	}
	ts.Enabled = enabled
	_, err := c.setTab.UpdateRow(ts.rid, types.Tuple{
		types.NewInt(int64(ts.ID)),
		types.NewString(ts.Name),
		types.NewString(ts.Comments),
		types.NewString(c.now()),
		types.NewInt(boolInt(ts.Enabled)),
	})
	return err
}

func (c *Catalog) updateTriggerRowLocked(t *TriggerInfo) error {
	rid, err := c.trigTab.UpdateRow(t.rid, types.Tuple{
		types.NewInt(int64(t.ID)),
		types.NewInt(int64(t.SetID)),
		types.NewString(t.Name),
		types.NewString(""),
		types.NewString(t.Text),
		types.NewString(t.Created),
		types.NewInt(boolInt(t.Enabled)),
	})
	if err != nil {
		return err
	}
	t.rid = rid
	return nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Pin loads the trigger description through the trigger cache and pins
// it. Callers must invoke the returned unpin function.
func (c *Catalog) Pin(id uint64) (*LoadedTrigger, func(), error) {
	e, err := c.tcache.Pin(id)
	if err != nil {
		return nil, nil, err
	}
	lt := e.Value.(*LoadedTrigger)
	return lt, func() { c.tcache.Unpin(id) }, nil
}

// loadTrigger is the cache loader: it re-reads the trigger row, parses
// the stored text and rebuilds the description (§5.4's pin bringing the
// description "in from the disk-based trigger catalog").
func (c *Catalog) loadTrigger(id uint64) (interface{}, error) {
	res, err := c.db.ExecStmt(&parser.Select{
		Items: []parser.SelectItem{{Star: true}},
		Table: "trigger",
		Where: expr.Cmp(expr.OpEq, expr.Col("", "triggerid"), expr.Int(int64(id))),
	})
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("catalog: trigger %d not in catalog", id)
	}
	text := res.Rows[0][4].Str()
	st, err := parser.Parse(text)
	if err != nil {
		return nil, err
	}
	ct, ok := st.(*parser.CreateTrigger)
	if !ok {
		return nil, fmt.Errorf("catalog: trigger %d text is not a create trigger", id)
	}
	c.mu.RLock()
	info := c.triggers[id]
	network := c.networks[id]
	gator := c.gators[id]
	aggState := c.aggsMap[id]
	c.mu.RUnlock()
	if info == nil {
		return nil, fmt.Errorf("catalog: trigger %d dropped", id)
	}
	lt, err := c.buildLoaded(info, ct)
	if err != nil {
		return nil, err
	}
	lt.Network = network
	lt.Gator = gator
	lt.Agg = aggState
	return lt, nil
}

// buildLoaded resolves sources/schemas and the action for a parsed
// trigger.
func (c *Catalog) buildLoaded(info *TriggerInfo, ct *parser.CreateTrigger) (*LoadedTrigger, error) {
	lt := &LoadedTrigger{
		Info:     info,
		Stmt:     ct,
		VarIndex: ct.VarIndex(),
		Action:   ct.Do,
	}
	for _, f := range ct.From {
		src, ok := c.reg.ByName(f.Source)
		if !ok {
			return nil, fmt.Errorf("catalog: trigger %q references unknown data source %q", info.Name, f.Source)
		}
		lt.Sources = append(lt.Sources, src.ID)
		lt.Schemas = append(lt.Schemas, src.Schema)
	}
	return lt, nil
}
