package profile

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"triggerman/internal/phasecounter"
)

func TestSketchExactWhenUnderCapacity(t *testing.T) {
	s := NewSketch(1024)
	for key := uint64(1); key <= 100; key++ {
		for i := uint64(0); i < key; i++ {
			s.Add(key, Matches, 1)
		}
	}
	if ev := s.Evictions(); ev != 0 {
		// Set-associativity can evict below global capacity only when a
		// bucket overflows; 100 keys over 128 buckets * 8 ways will not.
		t.Fatalf("evictions = %d, want 0", ev)
	}
	for key := uint64(1); key <= 100; key++ {
		e, ok := s.Get(key)
		if !ok {
			t.Fatalf("key %d not tracked", key)
		}
		if e.Counts[Matches] != int64(key) {
			t.Fatalf("key %d count = %d, want %d", key, e.Counts[Matches], key)
		}
		if e.Err != 0 {
			t.Fatalf("key %d err = %d, want 0", key, e.Err)
		}
	}
	top := s.TopK(Matches, 5)
	if len(top) != 5 {
		t.Fatalf("TopK returned %d entries", len(top))
	}
	for i, want := range []uint64{100, 99, 98, 97, 96} {
		if top[i].Key != want {
			t.Fatalf("TopK[%d] = key %d, want %d", i, top[i].Key, want)
		}
	}
}

func TestSketchHeavyHittersSurviveNoise(t *testing.T) {
	// 10 heavy keys with ~1000 updates each against 50k one-shot noise
	// keys must all be tracked and rank in the top 10: the space-saving
	// guarantee is that any key with true count above the minimum weight
	// stays resident.
	s := NewSketch(256)
	rng := rand.New(rand.NewSource(42))
	heavy := map[uint64]int64{}
	for i := 0; i < 10; i++ {
		heavy[uint64(1000+i)] = int64(900 + 20*i)
	}
	type upd struct{ key uint64 }
	var stream []upd
	for k, n := range heavy {
		for i := int64(0); i < n; i++ {
			stream = append(stream, upd{k})
		}
	}
	for i := 0; i < 50_000; i++ {
		stream = append(stream, upd{uint64(10_000 + i)})
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	for _, u := range stream {
		s.Add(u.key, Probes, 1)
	}
	top := s.TopK(Probes, 10)
	if len(top) != 10 {
		t.Fatalf("TopK returned %d entries", len(top))
	}
	got := map[uint64]bool{}
	for _, e := range top {
		got[e.Key] = true
	}
	for k := range heavy {
		if !got[k] {
			t.Fatalf("heavy key %d missing from top-10: %+v", k, top)
		}
	}
	// Estimates over-count by at most Err (weight inherited at
	// admission): estimate - Err <= true <= estimate + Err on weight.
	for _, e := range top {
		if e.Weight-e.Err > heavy[e.Key]+e.Err {
			t.Fatalf("key %d weight %d err %d inconsistent with true %d",
				e.Key, e.Weight, e.Err, heavy[e.Key])
		}
	}
	if s.Len() > s.Capacity() {
		t.Fatalf("Len %d exceeds capacity %d", s.Len(), s.Capacity())
	}
	if s.Evictions() == 0 {
		t.Fatal("expected evictions under 50k-key noise")
	}
}

func TestSketchZeroKeyIgnored(t *testing.T) {
	s := NewSketch(8)
	s.Add(0, Probes, 1)
	if s.Len() != 0 {
		t.Fatal("zero key must not be tracked")
	}
	if _, ok := s.Get(0); ok {
		t.Fatal("Get(0) must miss")
	}
}

func TestSketchConcurrentAdds(t *testing.T) {
	s := NewSketch(64)
	const goroutines = 8
	const perG = 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				s.Add(uint64(1+rng.Intn(32)), Matches, 1)
			}
		}(int64(g))
	}
	wg.Wait()
	// 32 distinct keys over 64 capacity: every update lands somewhere,
	// and with no bucket overflow the totals are exact.
	var total int64
	for _, e := range s.Entries() {
		total += e.Counts[Matches]
	}
	if s.Evictions() == 0 && total != goroutines*perG {
		t.Fatalf("total = %d, want %d", total, goroutines*perG)
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	p.MatchProbe(1)
	p.MatchHit(1)
	p.ObserveAction(1, time.Millisecond)
	p.ActionFailure(1)
	p.ActionRetries(1, 3)
	p.CacheHit(1)
	p.CacheMiss(1)
	if _, ok := p.TriggerEntry(1); ok {
		t.Fatal("nil profiler must report no entries")
	}
}

func TestProfilerAttribution(t *testing.T) {
	p := New(0)
	p.MatchProbe(7) // failed rest test: probe only
	p.MatchHit(7)   // full match: probe + match in one charge
	p.ObserveAction(7, 1500*time.Nanosecond)
	p.ActionRetries(7, 3)
	p.ActionRetries(7, 1) // no retries -> no charge
	p.ActionFailure(7)
	p.CacheHit(7)
	p.CacheMiss(7)

	e, ok := p.TriggerEntry(7)
	if !ok {
		t.Fatal("trigger 7 not tracked")
	}
	want := [NumMetrics]int64{}
	want[Probes] = 2
	want[Matches] = 1
	want[ActionNanos] = 1500
	want[ActionRuns] = 1
	want[Failures] = 1
	want[Retries] = 2
	want[CacheHits] = 1
	want[CacheMisses] = 1
	if e.Counts != want {
		t.Fatalf("counts = %v, want %v", e.Counts, want)
	}
	if sel := e.Selectivity(); sel != 0.5 {
		t.Fatalf("selectivity = %v, want 0.5", sel)
	}
}

func TestSketchAdd2(t *testing.T) {
	s := NewSketch(64)
	// Fresh admission through the Add2 path.
	s.Add2(9, Probes, 1, Matches, 1)
	// Hot-path update of an existing cell.
	s.Add2(9, Probes, 1, Matches, 1)
	e, ok := s.Get(9)
	if !ok {
		t.Fatal("key 9 not tracked")
	}
	if e.Counts[Probes] != 2 || e.Counts[Matches] != 2 {
		t.Fatalf("counts = %v, want probes=2 matches=2", e.Counts)
	}
	// Each Add2 is one event for the space-saving rank.
	if e.Weight != 2 || e.Err != 0 {
		t.Fatalf("weight=%d err=%d, want 2 and 0", e.Weight, e.Err)
	}
}

func TestSketchAdd2Replacement(t *testing.T) {
	// Force bucket overflow so an Add2 admission must replace: the
	// newcomer inherits the victim's weight as Err and both metric
	// deltas land on the fresh cell.
	s := NewSketch(ways) // single bucket
	for key := uint64(1); key <= ways; key++ {
		s.Add(key, Probes, 1)
	}
	s.Add2(100, Probes, 3, Matches, 2)
	e, ok := s.Get(100)
	if !ok {
		t.Fatal("replacement key not tracked")
	}
	if e.Counts[Probes] != 3 || e.Counts[Matches] != 2 {
		t.Fatalf("counts = %v, want probes=3 matches=2", e.Counts)
	}
	if e.Err != 1 || e.Weight != 2 {
		t.Fatalf("weight=%d err=%d, want weight=2 err=1", e.Weight, e.Err)
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions())
	}
}

// TestSlicedSketchExactUnderReconcile: on a sliced sketch, per-key
// totals must equal the single-threaded reference while a reconciler
// folds epochs (and promotes the top-ranked keys) concurrently with
// slot-stamped updates from every driver. Run under -race.
func TestSlicedSketchExactUnderReconcile(t *testing.T) {
	const (
		writers = 8
		rounds  = 3000
		keys    = 12
	)
	s := NewSlicedSketch(256, writers) // under capacity: no evictions
	var stop atomic.Bool
	var recons sync.WaitGroup
	recons.Add(1)
	go func() {
		defer recons.Done()
		for !stop.Load() {
			s.Reconcile()
			runtime.Gosched()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for k := uint64(1); k <= keys; k++ {
					// Key 1 is viral: double traffic, via both entry points.
					if k == 1 {
						s.Add2Slot(k, slot, Probes, 1, Matches, 1)
					}
					s.AddSlot(k, slot, Probes, 1)
				}
				if i%16 == 0 {
					runtime.Gosched() // interleave on single-P schedulers too
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	recons.Wait()
	s.Reconcile() // final fold at quiescence

	if ev := s.Evictions(); ev != 0 {
		t.Fatalf("evictions = %d, want 0 (under capacity)", ev)
	}
	for k := uint64(1); k <= keys; k++ {
		e, ok := s.Get(k)
		if !ok {
			t.Fatalf("key %d not tracked", k)
		}
		wantProbes := int64(writers * rounds)
		wantMatches := int64(0)
		wantWeight := int64(writers * rounds)
		if k == 1 {
			wantProbes *= 2
			wantMatches = int64(writers * rounds)
			wantWeight *= 2
		}
		if e.Counts[Probes] != wantProbes || e.Counts[Matches] != wantMatches {
			t.Fatalf("key %d: probes/matches = %d/%d, want %d/%d",
				k, e.Counts[Probes], e.Counts[Matches], wantProbes, wantMatches)
		}
		if e.Weight != wantWeight || e.Err != 0 {
			t.Fatalf("key %d: weight/err = %d/%d, want %d/0", k, e.Weight, e.Err, wantWeight)
		}
	}
	// The viral key must have been routed through sliced cells — either
	// by rank pre-split or by the writer-switch probe.
	st := s.Contention()
	if st.Slots != writers || st.Sliced == 0 || st.Reconciles == 0 {
		t.Fatalf("contention stats = %+v, want sliced counters under %d slots", st, writers)
	}
}

// TestPlainSketchUnchanged: a sketch built without slots never slices
// and keeps zero-cost domain stats, whatever the traffic.
func TestPlainSketchUnchanged(t *testing.T) {
	s := NewSketch(64)
	for i := 0; i < 1000; i++ {
		s.AddSlot(7, i%8, Probes, 1)
	}
	s.Reconcile() // no-op
	if st := s.Contention(); st != (phasecounter.DomainStats{}) {
		t.Fatalf("plain sketch domain stats = %+v, want zero", st)
	}
	if e, _ := s.Get(7); e.Counts[Probes] != 1000 {
		t.Fatalf("probes = %d, want 1000", e.Counts[Probes])
	}
}
