// Package profile implements per-trigger cost attribution: a
// cardinality-bounded space-saving top-K sketch that charges match
// probes, matches, rule-action wall time, action failures/retries, and
// trigger-cache traffic to individual trigger IDs without holding
// per-entity state for every trigger in the catalog. (Signatures are
// few by design, so the predicate index keeps exact per-signature
// counters itself; the sketch is for the unbounded trigger dimension.)
//
// The paper's scalability argument (§5) collapses millions of triggers
// into few expression signatures, so exact per-trigger counters would
// reintroduce the O(#triggers) memory the predicate index removed. The
// sketch keeps a fixed number of tracked entities and applies the
// space-saving replacement rule (Metwally et al.; "Threshold Queries in
// Theory and in the Wild" motivates the same shape): when a new key
// arrives and the structure is full, the minimum-weight entry is
// replaced and its weight inherited as the newcomer's error bound.
// Heavy entities are therefore guaranteed to be tracked once their
// update count exceeds the minimum, which is all top-K queries need.
//
// Layout: the sketch is an array of set-associative buckets (the
// shards), each holding `ways` entries with the keys packed into one
// cache line. A key hashes to exactly one bucket; lookups scan at most
// `ways` keys with atomic loads and update counters with atomic adds —
// no locks on the match hot path. Admission of a new key takes the
// bucket's mutex and runs the space-saving replacement within the
// bucket; when the bucket is full, replacement is sampled (see
// admissionSample) so uniform cold traffic cannot turn every probe
// into a mutex acquisition. Replacement under concurrent updates can
// misattribute a handful of in-flight updates to the new occupant; the
// Err field bounds the resulting estimate error exactly as in the
// classic algorithm, and sampling only delays a heavy hitter's
// admission, never perturbs tracked counts.
package profile

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"triggerman/internal/phasecounter"
)

// Metric enumerates the quantities attributed to each entity.
type Metric uint8

const (
	// Probes counts candidate refs delivered by the predicate index
	// (constant matched; rest-of-predicate not yet tested).
	Probes Metric = iota
	// Matches counts refs whose whole selection predicate passed.
	Matches
	// ActionNanos accumulates rule-action wall time in nanoseconds.
	ActionNanos
	// ActionRuns counts rule-action executions started.
	ActionRuns
	// Failures counts firings quarantined to the dead-letter table.
	Failures
	// Retries counts action retry attempts beyond the first.
	Retries
	// CacheHits counts trigger-cache pin hits.
	CacheHits
	// CacheMisses counts trigger-cache pin misses (catalog loads).
	CacheMisses

	numMetrics
)

// NumMetrics is the number of attributed quantities.
const NumMetrics = int(numMetrics)

// ways is the set-associativity of each bucket: a key can live in one
// of `ways` cells, so lookups are at most `ways` atomic loads.
const ways = 8

// Entry is a snapshot of one tracked entity.
type Entry struct {
	Key    uint64
	Counts [NumMetrics]int64
	// Weight is the space-saving rank: the number of updates charged to
	// the key, including any inherited from replaced predecessors.
	Weight int64
	// Err bounds the over-estimate of Weight (the weight inherited when
	// the key was admitted by replacement; 0 = exact).
	Err int64
}

// Selectivity is the entry's probe→match rate (0 when never probed).
func (e Entry) Selectivity() float64 {
	if e.Counts[Probes] == 0 {
		return 0
	}
	return float64(e.Counts[Matches]) / float64(e.Counts[Probes])
}

// cell holds one tracked key's attribution state. The weight and the
// per-metric counts are phase-reconciled: on a sliced sketch a viral
// trigger's tallies split into per-driver slices (either proven
// contended by the writer-switch probe, or pre-split by top-K rank at
// reconcile time) instead of bouncing shared cache lines across every
// driver. Err never slices — it is written only under the bucket mutex
// during admission.
type cell struct {
	weight phasecounter.Counter
	err    atomic.Int64
	counts [numMetrics]phasecounter.Counter
}

// bucket packs its keys into a contiguous array — one 64-byte cache
// line for ways=8 — so the common "is this key tracked?" scan touches
// a single line instead of striding across every cell.
type bucket struct {
	mu     sync.Mutex   // serializes admissions and replacements
	misses atomic.Int64 // full-bucket misses, drives sampled replacement
	keys   [ways]atomic.Uint64
	cells  [ways]cell
}

// admissionSample rate-limits space-saving replacements when a bucket
// is full: only every admissionSample-th full-bucket miss runs the
// replacement (the first miss of each cycle, so an isolated newcomer
// still lands immediately). Uniform cold traffic — the replacement-path
// worst case — then pays the mutex on 1/8 of misses instead of all of
// them, keeping the match hot path cheap. The cost is a bounded
// under-count: updates for an untracked key between its admission
// opportunities are dropped, which only delays a heavy hitter's
// admission by O(admissionSample) bucket misses and never perturbs
// already-tracked keys. Admission into an *empty* cell is never
// sampled, so sketches running under capacity stay exact.
const admissionSample = 8

// Sketch is a bounded space-saving top-K structure keyed by uint64
// entity IDs. The zero key is reserved as the empty sentinel; trigger
// and signature IDs both start at 1.
type Sketch struct {
	buckets   []bucket
	mask      uint64
	evictions atomic.Int64
	// dom, when set, gives the sketch's counters per-driver slice
	// geometry and a reconcile clock (see NewSlicedSketch); nil keeps
	// every counter on the plain path.
	dom *phasecounter.Domain
}

// sliceTopK is how many of the sketch's heaviest keys are proactively
// split at each reconcile tick: a key in the top ranks is hot by
// definition, so its counters go sliced without waiting for the
// writer-switch probe to prove contention.
const sliceTopK = 8

// NewSketch builds a sketch tracking at least capacity entities
// (rounded up to a power-of-two bucket count times the associativity).
func NewSketch(capacity int) *Sketch {
	if capacity < ways {
		capacity = ways
	}
	n := 1
	for n*ways < capacity {
		n <<= 1
	}
	return &Sketch{buckets: make([]bucket, n), mask: uint64(n - 1)}
}

// NewSlicedSketch builds a sketch whose hot keys split into slots
// per-driver slices. Updates carrying a driver slot (AddSlot/Add2Slot)
// route through the slices once a key promotes — by the counter's own
// contention probe or by top-K rank at a Reconcile tick.
func NewSlicedSketch(capacity, slots int) *Sketch {
	s := NewSketch(capacity)
	if slots > 0 {
		s.dom = phasecounter.NewDomain(slots)
	}
	return s
}

// Reconcile runs one epoch on a sliced sketch: the heaviest tracked
// keys are pre-split by rank, then every sliced counter folds its
// slice deltas and refreshes its reconciled reading (cold ones demote).
// No-op on a plain sketch.
func (s *Sketch) Reconcile() {
	if s.dom == nil {
		return
	}
	type ranked struct {
		w int64
		c *cell
	}
	var top []ranked
	for bi := range s.buckets {
		b := &s.buckets[bi]
		for i := range b.keys {
			if b.keys[i].Load() == 0 {
				continue
			}
			c := &b.cells[i]
			top = append(top, ranked{c.weight.Value(), c})
		}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].w > top[j].w })
	if len(top) > sliceTopK {
		top = top[:sliceTopK]
	}
	for _, r := range top {
		r.c.weight.Split(s.dom)
		for m := range r.c.counts {
			r.c.counts[m].Split(s.dom)
		}
	}
	s.dom.Reconcile()
}

// Contention snapshots the sketch's phase-reconciliation domain (zero
// value for a plain sketch).
func (s *Sketch) Contention() phasecounter.DomainStats { return s.dom.Stats() }

// Capacity reports the number of entities the sketch can track.
func (s *Sketch) Capacity() int { return len(s.buckets) * ways }

// mix is the 64-bit murmur3 finalizer — cheap, well-distributed.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add charges delta of metric m to key. Keys already tracked pay two
// atomic adds after at most `ways` atomic loads from one cache line;
// new keys take the bucket mutex for (possibly sampled) admission.
func (s *Sketch) Add(key uint64, m Metric, delta int64) {
	s.AddSlot(key, phasecounter.NoSlot, m, delta)
}

// AddSlot is Add with the caller's stable driver slot: on a sliced
// sketch, updates to a promoted key land in the slot's own slice
// instead of the shared cell.
func (s *Sketch) AddSlot(key uint64, slot int, m Metric, delta int64) {
	if key == 0 {
		return
	}
	b := &s.buckets[mix(key)&s.mask]
	for i := range b.keys {
		if b.keys[i].Load() == key {
			c := &b.cells[i]
			c.counts[m].Add(s.dom, slot, delta)
			c.weight.Add(s.dom, slot, 1)
			return
		}
	}
	s.admitCell(b, key, slot, func(c *cell) {
		c.counts[m].Add(s.dom, slot, delta)
	})
}

// Add2 charges two metrics to key with a single cell lookup — the
// match hot path charges Probes and Matches together, so folding both
// into one scan halves its sketch cost. The update counts as one event
// for the space-saving rank.
func (s *Sketch) Add2(key uint64, m1 Metric, d1 int64, m2 Metric, d2 int64) {
	s.Add2Slot(key, phasecounter.NoSlot, m1, d1, m2, d2)
}

// Add2Slot is Add2 with the caller's stable driver slot.
func (s *Sketch) Add2Slot(key uint64, slot int, m1 Metric, d1 int64, m2 Metric, d2 int64) {
	if key == 0 {
		return
	}
	b := &s.buckets[mix(key)&s.mask]
	for i := range b.keys {
		if b.keys[i].Load() == key {
			c := &b.cells[i]
			c.counts[m1].Add(s.dom, slot, d1)
			c.counts[m2].Add(s.dom, slot, d2)
			c.weight.Add(s.dom, slot, 1)
			return
		}
	}
	s.admitCell(b, key, slot, func(c *cell) {
		c.counts[m1].Add(s.dom, slot, d1)
		c.counts[m2].Add(s.dom, slot, d2)
	})
}

// admitCell locates or creates key's cell and applies charge to it.
// charge always runs against zeroed (or already-live) counts, so it
// adds unconditionally. Full-bucket replacement is sampled (see
// admissionSample); sampled-out updates are dropped.
func (s *Sketch) admitCell(b *bucket, key uint64, slot int, charge func(c *cell)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	empty, min := -1, -1
	minW := int64(1<<63 - 1)
	for i := range b.keys {
		k := b.keys[i].Load()
		if k == key {
			// Admitted by a concurrent caller while we waited.
			c := &b.cells[i]
			charge(c)
			c.weight.Add(s.dom, slot, 1)
			return
		}
		if k == 0 {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if w := b.cells[i].weight.Value(); w < minW {
			minW, min = w, i
		}
	}
	if empty >= 0 {
		c := &b.cells[empty]
		charge(c)
		c.err.Store(0)
		c.weight.Reset(1)
		b.keys[empty].Store(key) // publish last
		return
	}
	if b.misses.Add(1)%admissionSample != 1 {
		// Sampled out: drop this update rather than churn the bucket.
		return
	}
	// Space-saving replacement: the newcomer inherits the victim's
	// weight as its rank and error bound; per-metric counts restart (an
	// under-estimate for re-admitted keys, bounded by Err). A recycled
	// cell keeps its slice block: the new occupant of a hot bucket is
	// itself likely hot, and Reset zeroes the slices.
	s.evictions.Add(1)
	c := &b.cells[min]
	b.keys[min].Store(key)
	for i := range c.counts {
		c.counts[i].Reset(0)
	}
	charge(c)
	c.err.Store(minW)
	c.weight.Reset(minW + 1)
}

// Get returns the tracked entry for key, if present.
func (s *Sketch) Get(key uint64) (Entry, bool) {
	if key == 0 {
		return Entry{}, false
	}
	b := &s.buckets[mix(key)&s.mask]
	for i := range b.keys {
		if b.keys[i].Load() == key {
			return snapshotCell(key, &b.cells[i]), true
		}
	}
	return Entry{}, false
}

func snapshotCell(key uint64, c *cell) Entry {
	e := Entry{Key: key, Weight: c.weight.Value(), Err: c.err.Load()}
	for i := range c.counts {
		e.Counts[i] = c.counts[i].Value()
	}
	return e
}

// Entries snapshots every tracked entity, unordered.
func (s *Sketch) Entries() []Entry {
	out := make([]Entry, 0, 64)
	for bi := range s.buckets {
		b := &s.buckets[bi]
		for i := range b.keys {
			k := b.keys[i].Load()
			if k == 0 {
				continue
			}
			out = append(out, snapshotCell(k, &b.cells[i]))
		}
	}
	return out
}

// TopK returns the k tracked entities with the largest counts of
// metric m, descending (ties broken by key for determinism). Entities
// with a zero count of m are omitted.
func (s *Sketch) TopK(m Metric, k int) []Entry {
	all := s.Entries()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Counts[m] != all[j].Counts[m] {
			return all[i].Counts[m] > all[j].Counts[m]
		}
		return all[i].Key < all[j].Key
	})
	out := all[:0]
	for _, e := range all {
		if e.Counts[m] == 0 {
			break
		}
		out = append(out, e)
		if len(out) == k {
			break
		}
	}
	return out[:len(out):len(out)]
}

// Len reports the number of tracked entities.
func (s *Sketch) Len() int {
	n := 0
	for bi := range s.buckets {
		b := &s.buckets[bi]
		for i := range b.keys {
			if b.keys[i].Load() != 0 {
				n++
			}
		}
	}
	return n
}

// Evictions reports how many space-saving replacements have happened;
// zero means every tracked count is exact.
func (s *Sketch) Evictions() int64 { return s.evictions.Load() }

// Profiler wraps a trigger-keyed sketch with typed attribution hooks.
// Per-signature counts need no sketch: signatures are few by design
// (the paper's whole point), so the predicate index keeps exact atomic
// counters per signature entry. All methods are safe on a nil receiver,
// so call sites need no profiling-enabled branches.
type Profiler struct {
	Triggers *Sketch
}

// DefaultCapacity tracks the paper's trigger-cache sizing spirit: room
// for every plausibly-hot entity at a few hundred bytes each.
const DefaultCapacity = 1024

// New builds a profiler tracking up to capacity triggers.
func New(capacity int) *Profiler {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Profiler{Triggers: NewSketch(capacity)}
}

// NewSliced builds a profiler whose hot triggers' tallies split into
// slots per-driver slices (see NewSlicedSketch). The system ticks
// Reconcile on its epoch timer.
func NewSliced(capacity, slots int) *Profiler {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Profiler{Triggers: NewSlicedSketch(capacity, slots)}
}

// Reconcile runs one fold epoch on the trigger sketch (no-op for a
// plain or nil profiler).
func (p *Profiler) Reconcile() {
	if p == nil {
		return
	}
	p.Triggers.Reconcile()
}

// Contention snapshots the trigger sketch's phase-reconciliation state.
func (p *Profiler) Contention() phasecounter.DomainStats {
	if p == nil {
		return phasecounter.DomainStats{}
	}
	return p.Triggers.Contention()
}

// MatchProbe charges one candidate-ref delivery whose rest-of-predicate
// test failed. (Candidates that match are charged by MatchHit, which
// folds the probe and the match into one sketch lookup — the match path
// pays at most one lookup per candidate either way.)
func (p *Profiler) MatchProbe(triggerID uint64) {
	p.MatchProbeSlot(triggerID, phasecounter.NoSlot)
}

// MatchProbeSlot is MatchProbe stamped with the probing driver's slot.
func (p *Profiler) MatchProbeSlot(triggerID uint64, slot int) {
	if p == nil {
		return
	}
	p.Triggers.AddSlot(triggerID, slot, Probes, 1)
}

// MatchHit charges one candidate-ref delivery that passed its whole
// selection predicate: a probe and a match in a single lookup.
func (p *Profiler) MatchHit(triggerID uint64) {
	p.MatchHitSlot(triggerID, phasecounter.NoSlot)
}

// MatchHitSlot is MatchHit stamped with the probing driver's slot.
func (p *Profiler) MatchHitSlot(triggerID uint64, slot int) {
	if p == nil {
		return
	}
	p.Triggers.Add2Slot(triggerID, slot, Probes, 1, Matches, 1)
}

// ObserveAction charges one rule-action execution and its wall time.
func (p *Profiler) ObserveAction(triggerID uint64, d time.Duration) {
	if p == nil {
		return
	}
	p.Triggers.Add2(triggerID, ActionRuns, 1, ActionNanos, d.Nanoseconds())
}

// ActionFailure charges one quarantined firing.
func (p *Profiler) ActionFailure(triggerID uint64) {
	if p == nil {
		return
	}
	p.Triggers.Add(triggerID, Failures, 1)
}

// ActionRetries charges retry attempts beyond the first.
func (p *Profiler) ActionRetries(triggerID uint64, attempts int) {
	if p == nil || attempts <= 1 {
		return
	}
	p.Triggers.Add(triggerID, Retries, int64(attempts-1))
}

// CacheHit charges one trigger-cache pin hit.
func (p *Profiler) CacheHit(triggerID uint64) {
	if p == nil {
		return
	}
	p.Triggers.Add(triggerID, CacheHits, 1)
}

// CacheMiss charges one trigger-cache pin miss.
func (p *Profiler) CacheMiss(triggerID uint64) {
	if p == nil {
		return
	}
	p.Triggers.Add(triggerID, CacheMisses, 1)
}

// TriggerEntry returns the tracked entry for a trigger ID.
func (p *Profiler) TriggerEntry(id uint64) (Entry, bool) {
	if p == nil {
		return Entry{}, false
	}
	return p.Triggers.Get(id)
}
