package trace

import "testing"

// TestContextRoundTrip checks Format/Parse are inverses.
func TestContextRoundTrip(t *testing.T) {
	id := NewTraceID()
	s := FormatContext(id, FlagSampled)
	gotID, gotFlags, err := ParseContext(s)
	if err != nil || gotID != id || gotFlags != FlagSampled {
		t.Fatalf("round trip %q → id=%x flags=%x err=%v", s, gotID, gotFlags, err)
	}
}

// TestParseContextEmpty checks the no-context fast path is not an error.
func TestParseContextEmpty(t *testing.T) {
	id, flags, err := ParseContext("")
	if id != 0 || flags != 0 || err != nil {
		t.Fatalf("empty context → id=%d flags=%d err=%v", id, flags, err)
	}
}

// TestParseContextRejects checks malformed headers fail loudly rather
// than misparse.
func TestParseContextRejects(t *testing.T) {
	bad := []string{
		"tm1",                        // too few parts
		"tm2-0000000000000001-01",    // unknown version
		"tm1-0001-01",                // short id
		"tm1-0000000000000000-01",    // zero id
		"tm1-000000000000000g-01",    // non-hex id
		"tm1-0000000000000001-1",     // short flags
		"tm1-0000000000000001-zz",    // non-hex flags
		"tm1-0000000000000001-01-xx", // too many parts
	}
	for _, s := range bad {
		if _, _, err := ParseContext(s); err == nil {
			t.Errorf("ParseContext(%q) accepted malformed header", s)
		}
	}
}
