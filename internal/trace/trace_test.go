package trace

import (
	"sync"
	"testing"
	"time"

	"triggerman/internal/metrics"
)

// TestSpanLifecycle walks one token through every stage and checks the
// completed record.
func TestSpanLifecycle(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{Registry: reg})
	sp := tr.Begin(3, "insert")
	if sp == nil {
		t.Fatal("span not sampled at SampleEvery=1")
	}
	sp.Mark(StageCapture)
	tr.Attach(42, sp)
	got := tr.Dequeued(42)
	if got != sp {
		t.Fatalf("Dequeued returned %p, want %p", got, sp)
	}
	sp.Observe(StageTaskWait, 3*time.Microsecond)
	sp.Observe(StageMatch, 5*time.Microsecond)
	sp.Observe(StagePropagate, time.Microsecond)
	sp.Observe(StageAction, 10*time.Microsecond)
	sp.Observe(StageDeliver, 2*time.Microsecond)
	sp.Finish()

	recs := tr.Recent()
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Seq != 42 || rec.Source != 3 || rec.Op != "insert" {
		t.Fatalf("record identity = %+v", rec)
	}
	for _, st := range Stages() {
		if st == StageForward {
			// Origin-side synthesized for forwarded tokens only; a
			// locally-processed span never marks it.
			continue
		}
		if !rec.HasStage(st.String()) {
			t.Fatalf("record missing stage %s: %+v", st, rec.Stages)
		}
	}
	if tr.ActiveCount() != 0 {
		t.Fatalf("active = %d after finish", tr.ActiveCount())
	}
	if d, ok := tr.StageQuantile(StageMatch, 0.99); !ok || d <= 0 {
		t.Fatalf("stage quantile = %v ok=%v", d, ok)
	}
	if v, ok := reg.Value("tman_traces_started_total"); !ok || v != 1 {
		t.Fatalf("traces started = %d ok=%v", v, ok)
	}
	// Decomposition: dequeue+taskwait are wait, everything else service.
	if rec.QueueWaitNs <= 0 || rec.ServiceNs <= 0 {
		t.Fatalf("decomposition wait=%d service=%d, want both > 0", rec.QueueWaitNs, rec.ServiceNs)
	}
	var wantWait, wantSvc int64
	for _, st := range rec.Stages {
		if st.Stage == "dequeue" || st.Stage == "taskwait" {
			wantWait += int64(st.Total)
		} else {
			wantSvc += int64(st.Total)
		}
	}
	if rec.QueueWaitNs != wantWait || rec.ServiceNs != wantSvc {
		t.Fatalf("decomposition wait=%d/%d service=%d/%d", rec.QueueWaitNs, wantWait, rec.ServiceNs, wantSvc)
	}
	// The end-to-end histogram carries an exemplar pointing back at the
	// span's seq.
	exs := tr.TotalHistogram().Exemplars()
	if len(exs) != 1 || exs[0].Seq != 42 {
		t.Fatalf("exemplars = %+v, want one with seq 42", exs)
	}
	if r, ok := tr.RecordBySeq(42); !ok || r.Seq != 42 {
		t.Fatalf("RecordBySeq(42) = %+v ok=%v", r, ok)
	}
}

// TestClassHistogram checks ClassOf labels records and routes durations
// into per-class histograms.
func TestClassHistogram(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{Registry: reg, ClassOf: func(src int32) string {
		if src == 1 {
			return "interactive"
		}
		return "batch"
	}})
	for seq, src := range map[uint64]int32{10: 1, 11: 2, 12: 1} {
		sp := tr.Begin(src, "insert")
		tr.Attach(seq, sp)
		sp.Finish()
	}
	if n := tr.ClassHistogram("interactive").Count(); n != 2 {
		t.Fatalf("interactive count = %d, want 2", n)
	}
	if n := tr.ClassHistogram("batch").Count(); n != 1 {
		t.Fatalf("batch count = %d, want 1", n)
	}
	for _, rec := range tr.Recent() {
		want := "batch"
		if rec.Source == 1 {
			want = "interactive"
		}
		if rec.Class != want {
			t.Fatalf("seq %d class = %q, want %q", rec.Seq, rec.Class, want)
		}
	}
}

// TestBeginRemote checks a sampled wire context forces tracing and the
// parent id survives into the record and onward context.
func TestBeginRemote(t *testing.T) {
	tr := New(Config{SampleEvery: 1000}) // would sample almost nothing locally
	id := NewTraceID()
	sp := tr.BeginRemote(1, "insert", id, FlagSampled)
	if sp == nil {
		t.Fatal("sampled remote parent did not force a span")
	}
	tr.Attach(7, sp)
	if got, want := sp.Context(), FormatContext(id, FlagSampled); got != want {
		t.Fatalf("Context() = %q, want %q", got, want)
	}
	sp.Finish()
	rec, ok := tr.RecordBySeq(7)
	if !ok || rec.TraceParent != FormatContext(id, FlagSampled) {
		t.Fatalf("record = %+v ok=%v, want traceparent %s", rec, ok, FormatContext(id, FlagSampled))
	}
	// Unsampled parent falls back to normal sampling (1-in-1000 → nil).
	if sp := tr.BeginRemote(1, "insert", id, 0); sp != nil {
		t.Fatal("unsampled parent bypassed sampling")
	}
	// Disabled tracing wins over a sampled parent.
	off := New(Config{SampleEvery: -1})
	if sp := off.BeginRemote(1, "insert", id, FlagSampled); sp != nil {
		t.Fatal("disabled tracer produced a remote span")
	}
}

// TestSampling checks 1-in-N sampling and the disabled mode.
func TestSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 40; i++ {
		if sp := tr.Begin(1, "insert"); sp != nil {
			sampled++
			sp.Finish()
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40, want 10", sampled)
	}
	off := New(Config{SampleEvery: -1})
	if off.Begin(1, "insert") != nil {
		t.Fatal("disabled tracer produced a span")
	}
	if off.Enabled() {
		t.Fatal("disabled tracer reports enabled")
	}
}

// TestRingBound checks the completed ring stays bounded, oldest
// evicted first.
func TestRingBound(t *testing.T) {
	tr := New(Config{RingSize: 4})
	for i := uint64(1); i <= 10; i++ {
		sp := tr.Begin(1, "insert")
		tr.Attach(i, sp)
		sp.Finish()
	}
	recs := tr.Recent()
	if len(recs) != 4 {
		t.Fatalf("ring has %d records, want 4", len(recs))
	}
	if recs[0].Seq != 7 || recs[3].Seq != 10 {
		t.Fatalf("ring order wrong: first=%d last=%d", recs[0].Seq, recs[3].Seq)
	}
}

// TestMaxActive checks the in-flight bound drops, not blocks.
func TestMaxActive(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{Registry: reg, MaxActive: 2})
	a := tr.Begin(1, "insert")
	tr.Attach(1, a)
	b := tr.Begin(1, "insert")
	tr.Attach(2, b)
	if c := tr.Begin(1, "insert"); c != nil {
		t.Fatal("span allocated beyond MaxActive")
	}
	if v, _ := reg.Value("tman_traces_dropped_total"); v != 1 {
		t.Fatalf("dropped = %d, want 1", v)
	}
	a.Finish()
	if d := tr.Begin(1, "insert"); d == nil {
		t.Fatal("span denied after slot freed")
	}
	b.Finish()
}

// TestConcurrentStamping has partition-style concurrent stage
// recording on one span, plus refcounted completion.
func TestConcurrentStamping(t *testing.T) {
	tr := New(Config{})
	sp := tr.Begin(1, "insert")
	tr.Attach(9, sp)
	const parts = 8
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		sp.Retain()
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp.Observe(StageMatch, time.Microsecond)
			sp.Finish()
		}()
	}
	wg.Wait()
	sp.Finish()
	recs := tr.Recent()
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1", len(recs))
	}
	for _, st := range recs[0].Stages {
		if st.Stage == "match" && st.Count != parts {
			t.Fatalf("match count = %d, want %d", st.Count, parts)
		}
	}
}
