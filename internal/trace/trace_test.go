package trace

import (
	"sync"
	"testing"
	"time"

	"triggerman/internal/metrics"
)

// TestSpanLifecycle walks one token through every stage and checks the
// completed record.
func TestSpanLifecycle(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{Registry: reg})
	sp := tr.Begin(3, "insert")
	if sp == nil {
		t.Fatal("span not sampled at SampleEvery=1")
	}
	sp.Mark(StageCapture)
	tr.Attach(42, sp)
	got := tr.Dequeued(42)
	if got != sp {
		t.Fatalf("Dequeued returned %p, want %p", got, sp)
	}
	sp.Observe(StageMatch, 5*time.Microsecond)
	sp.Observe(StagePropagate, time.Microsecond)
	sp.Observe(StageAction, 10*time.Microsecond)
	sp.Observe(StageDeliver, 2*time.Microsecond)
	sp.Finish()

	recs := tr.Recent()
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Seq != 42 || rec.Source != 3 || rec.Op != "insert" {
		t.Fatalf("record identity = %+v", rec)
	}
	for _, st := range Stages() {
		if !rec.HasStage(st.String()) {
			t.Fatalf("record missing stage %s: %+v", st, rec.Stages)
		}
	}
	if tr.ActiveCount() != 0 {
		t.Fatalf("active = %d after finish", tr.ActiveCount())
	}
	if d, ok := tr.StageQuantile(StageMatch, 0.99); !ok || d <= 0 {
		t.Fatalf("stage quantile = %v ok=%v", d, ok)
	}
	if v, ok := reg.Value("tman_traces_started_total"); !ok || v != 1 {
		t.Fatalf("traces started = %d ok=%v", v, ok)
	}
}

// TestSampling checks 1-in-N sampling and the disabled mode.
func TestSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 40; i++ {
		if sp := tr.Begin(1, "insert"); sp != nil {
			sampled++
			sp.Finish()
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40, want 10", sampled)
	}
	off := New(Config{SampleEvery: -1})
	if off.Begin(1, "insert") != nil {
		t.Fatal("disabled tracer produced a span")
	}
	if off.Enabled() {
		t.Fatal("disabled tracer reports enabled")
	}
}

// TestRingBound checks the completed ring stays bounded, oldest
// evicted first.
func TestRingBound(t *testing.T) {
	tr := New(Config{RingSize: 4})
	for i := uint64(1); i <= 10; i++ {
		sp := tr.Begin(1, "insert")
		tr.Attach(i, sp)
		sp.Finish()
	}
	recs := tr.Recent()
	if len(recs) != 4 {
		t.Fatalf("ring has %d records, want 4", len(recs))
	}
	if recs[0].Seq != 7 || recs[3].Seq != 10 {
		t.Fatalf("ring order wrong: first=%d last=%d", recs[0].Seq, recs[3].Seq)
	}
}

// TestMaxActive checks the in-flight bound drops, not blocks.
func TestMaxActive(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{Registry: reg, MaxActive: 2})
	a := tr.Begin(1, "insert")
	tr.Attach(1, a)
	b := tr.Begin(1, "insert")
	tr.Attach(2, b)
	if c := tr.Begin(1, "insert"); c != nil {
		t.Fatal("span allocated beyond MaxActive")
	}
	if v, _ := reg.Value("tman_traces_dropped_total"); v != 1 {
		t.Fatalf("dropped = %d, want 1", v)
	}
	a.Finish()
	if d := tr.Begin(1, "insert"); d == nil {
		t.Fatal("span denied after slot freed")
	}
	b.Finish()
}

// TestConcurrentStamping has partition-style concurrent stage
// recording on one span, plus refcounted completion.
func TestConcurrentStamping(t *testing.T) {
	tr := New(Config{})
	sp := tr.Begin(1, "insert")
	tr.Attach(9, sp)
	const parts = 8
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		sp.Retain()
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp.Observe(StageMatch, time.Microsecond)
			sp.Finish()
		}()
	}
	wg.Wait()
	sp.Finish()
	recs := tr.Recent()
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1", len(recs))
	}
	for _, st := range recs[0].Stages {
		if st.Stage == "match" && st.Count != parts {
			t.Fatalf("match count = %d, want %d", st.Count, parts)
		}
	}
}
