// Package trace stamps update descriptors as they move through the
// token lifecycle — capture into the (persistent) queue, dequeue by a
// driver, predicate-index match, join/A-TREAT propagation, rule-action
// execution, event delivery — recording per-stage durations into the
// metrics registry and keeping a bounded ring of recent complete traces
// so slow tokens can be debugged from a running system.
//
// A Span is live from Begin until its last reference is Finished; stage
// recording is lock-free (atomic adds into a fixed per-stage array) so
// partitioned condition testing and concurrent rule-action tasks can
// stamp the same span safely. Spans cross the queue boundary keyed by
// the token's sequence number: the capture side registers the span
// under the seq the queue assigned, and the driver side looks it up
// after dequeue.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"triggerman/internal/metrics"
)

// Stage enumerates the token lifecycle stages.
type Stage uint8

const (
	// StageCapture is apply-entry → token durably enqueued (includes
	// the persistent queue write).
	StageCapture Stage = iota
	// StageDequeue is enqueued → dequeued by a driver: the token's
	// queue-wait. It is pure residence time — the work between capture
	// and dequeue is the queue, nothing else — so a trace whose dequeue
	// stage dominates was delayed by backlog, not by slow processing.
	// Record.QueueWaitNs is derived from it.
	StageDequeue
	// StageTaskWait is time a per-token task (a SourceFIFO serial
	// dispatch, a condition partition, a spawned rule action) sat in
	// the driver pool's run queue between submit and first run —
	// scheduler wait, distinct from the token queue's StageDequeue.
	StageTaskWait
	// StageMatch is the predicate-index probe (§5.4's match pass).
	StageMatch
	// StagePropagate is alpha-memory maintenance plus incremental
	// aggregate upkeep — the join/A-TREAT propagation pass. For Gator
	// triggers it includes in-network firing, which happens at
	// propagation time.
	StagePropagate
	// StageAction is rule-action execution (one observation per
	// firing, retries included).
	StageAction
	// StageDeliver is event-bus publication within a raise event
	// action.
	StageDeliver
	// StageForward is the cross-node forward hop: the origin node's
	// synchronous wire call shipping a non-owned token to its owner.
	// It is recorded origin-side as a synthesized record (the token's
	// local lifecycle ends at the forward); the owner's stages continue
	// under the same propagated trace id.
	StageForward
	numStages
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageCapture:
		return "capture"
	case StageDequeue:
		return "dequeue"
	case StageTaskWait:
		return "taskwait"
	case StageMatch:
		return "match"
	case StagePropagate:
		return "propagate"
	case StageAction:
		return "action"
	case StageDeliver:
		return "deliver"
	case StageForward:
		return "forward"
	default:
		return "unknown"
	}
}

// Stages lists every lifecycle stage in pipeline order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// stageCell is one span's per-stage accumulator.
type stageCell struct {
	count atomic.Int64
	total atomic.Int64 // ns
}

// Span is one traced token's in-flight state.
type Span struct {
	tracer *Tracer
	seq    uint64
	source int32
	op     string
	class  string
	// parent is the wire-propagated trace id for a token that began
	// life in a client application (0 for locally originated tokens).
	parent uint64
	start  time.Time
	// lastEvent is the previous sequential stamp (ns offset from
	// start), used by Mark to compute capture/dequeue durations.
	lastEvent atomic.Int64
	refs      atomic.Int32
	stages    [numStages]stageCell
}

// Mark records the sequential stage ending now: its duration is the
// time since the previous Mark (or Begin). Used for capture and
// dequeue, which bracket the queue boundary. Nil-safe.
func (sp *Span) Mark(st Stage) {
	if sp == nil {
		return
	}
	now := int64(time.Since(sp.start))
	prev := sp.lastEvent.Swap(now)
	sp.observe(st, time.Duration(now-prev))
}

// Observe records an explicitly timed stage duration. Nil-safe.
func (sp *Span) Observe(st Stage, d time.Duration) {
	if sp == nil {
		return
	}
	sp.observe(st, d)
}

func (sp *Span) observe(st Stage, d time.Duration) {
	if d < 0 {
		d = 0
	}
	sp.stages[st].count.Add(1)
	sp.stages[st].total.Add(int64(d))
	if h := sp.tracer.stageHists[st]; h != nil {
		h.Observe(d)
	}
}

// Context renders the span's wire context for onward propagation (to a
// forwarded token, or echoed back to the client): the parent id when
// the span was begun remotely, otherwise the span's own seq. Nil spans
// render empty. Nil-safe.
func (sp *Span) Context() string {
	if sp == nil {
		return ""
	}
	id := sp.parent
	if id == 0 {
		id = sp.seq
	}
	if id == 0 {
		return ""
	}
	return FormatContext(id, FlagSampled)
}

// Retain adds a reference for a concurrent consumer (a partition task
// holding the span). Nil-safe.
func (sp *Span) Retain() {
	if sp == nil {
		return
	}
	sp.refs.Add(1)
}

// Finish releases one reference; when the last drops, the span is
// completed into the tracer's ring. Nil-safe.
func (sp *Span) Finish() {
	if sp == nil {
		return
	}
	if sp.refs.Add(-1) == 0 {
		sp.tracer.complete(sp)
	}
}

// StageStat summarizes one stage of a completed trace.
type StageStat struct {
	Stage string        `json:"stage"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
}

// Record is one completed token trace, JSON-friendly for /statusz.
type Record struct {
	Seq    uint64    `json:"seq"`
	Source int32     `json:"source"`
	Op     string    `json:"op"`
	Class  string    `json:"class,omitempty"`
	Start  time.Time `json:"start"`
	// TraceParent is the wire-propagated context for a client-
	// originated token (empty otherwise): the same id the client put
	// on its push request, so one trace crosses the wire boundary.
	TraceParent string        `json:"traceparent,omitempty"`
	Total       time.Duration `json:"total_ns"`
	// QueueWaitNs and ServiceNs decompose Total: wait is time spent
	// sitting in queues (token queue residence + driver-pool run-queue
	// wait), service is everything else (capture, match, propagate,
	// action, deliver). A slow trace whose wait dominates was a backlog
	// victim; one whose service dominates was itself expensive.
	QueueWaitNs int64       `json:"queue_wait_ns"`
	ServiceNs   int64       `json:"service_ns"`
	Stages      []StageStat `json:"stages"`
}

// HasStage reports whether the trace recorded the named stage.
func (r Record) HasStage(name string) bool {
	for _, st := range r.Stages {
		if st.Stage == name {
			return true
		}
	}
	return false
}

// Config tunes a Tracer.
type Config struct {
	// Registry receives per-stage and end-to-end duration histograms;
	// nil disables registry recording (traces still complete).
	Registry *metrics.Registry
	// SampleEvery traces every Nth token; 0 or 1 traces all, negative
	// disables tracing entirely.
	SampleEvery int
	// RingSize bounds the completed-trace ring (default 64).
	RingSize int
	// MaxActive bounds in-flight spans: tokens captured while the
	// table is full are simply not traced (counted in Dropped). This
	// keeps a stuck queue from pinning unbounded trace state.
	// Default 1024.
	MaxActive int
	// StaleAfter bounds how long an unfinished span may sit in the
	// active table once it is full: when Begin finds the table at
	// MaxActive, spans older than this are swept out to make room. A
	// span can be orphaned when its token is dequeued by a concurrent
	// driver in the instant between enqueue and Attach — rare, but
	// without the sweep each occurrence would pin a slot forever.
	// Default 1 minute.
	StaleAfter time.Duration
	// ClassOf, when set, labels each span with its source's priority
	// class ("interactive"/"batch"), and end-to-end durations are
	// additionally recorded into per-class histograms
	// (tman_token_duration_seconds{class=...}) — the series the SLO
	// engine evaluates objectives against.
	ClassOf func(source int32) string
}

// Tracer samples tokens and tracks their spans across the queue
// boundary.
type Tracer struct {
	cfg        Config
	stageHists [numStages]*metrics.Histogram
	totalHist  *metrics.Histogram
	started    *metrics.Counter

	// droppedN and sweptN are kept as plain atomics (not registry
	// counters) so /statusz can report them with or without a registry;
	// the registry exports them as callback views.
	droppedN atomic.Int64
	sweptN   atomic.Int64

	tick atomic.Uint64 // sampling clock

	mu      sync.Mutex
	active  map[uint64]*Span
	nActive atomic.Int32 // fast-path skip when nothing is traced

	// classHists interns per-class end-to-end histograms lazily (the
	// class vocabulary is tiny: interactive, batch). Guarded by mu —
	// only complete() and ClassHistogram touch it, never the stamp
	// hot path.
	classHists map[string]*metrics.Histogram

	ring  []Record
	next  int
	count int
}

// New builds a tracer.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 64
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 1024
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = time.Minute
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 1
	}
	t := &Tracer{
		cfg:        cfg,
		active:     make(map[uint64]*Span),
		classHists: make(map[string]*metrics.Histogram),
		ring:       make([]Record, cfg.RingSize),
	}
	if reg := cfg.Registry; reg != nil {
		for _, st := range Stages() {
			t.stageHists[st] = reg.Histogram("tman_stage_duration_seconds",
				"token lifecycle stage durations", nil, metrics.L("stage", st.String()))
		}
		t.totalHist = reg.Histogram("tman_token_duration_seconds",
			"end-to-end token processing time, capture to completion", nil)
		t.started = reg.Counter("tman_traces_started_total", "tokens sampled for tracing")
		reg.CounterFunc("tman_traces_dropped_total",
			"tokens not traced because the active-span table was full",
			t.droppedN.Load)
		reg.CounterFunc("tman_traces_swept_total",
			"orphaned spans evicted from the full active-span table",
			t.sweptN.Load)
	}
	return t
}

// Enabled reports whether the tracer samples at all.
func (t *Tracer) Enabled() bool { return t != nil && t.cfg.SampleEvery > 0 }

// Begin starts a span for a token about to be captured, or returns nil
// when the token is not sampled. The caller must Attach the span once
// the queue has assigned the token's sequence number.
func (t *Tracer) Begin(source int32, op string) *Span {
	if t == nil || t.cfg.SampleEvery <= 0 {
		return nil
	}
	if n := t.tick.Add(1); int(n%uint64(t.cfg.SampleEvery)) != 0 {
		return nil
	}
	if int(t.nActive.Load()) >= t.cfg.MaxActive {
		if t.sweepStale() == 0 {
			t.droppedN.Add(1)
			return nil
		}
	}
	sp := t.newSpan(source, op)
	return sp
}

// BeginRemote starts a span for a token that arrived over the wire
// carrying a trace context. A sampled parent forces tracing — the
// client paid for the header, the server honors it regardless of
// SampleEvery (though fully-disabled tracing still wins). An unsampled
// or absent parent (id 0) falls back to Begin's normal sampling.
func (t *Tracer) BeginRemote(source int32, op string, parent uint64, flags byte) *Span {
	if parent == 0 || flags&FlagSampled == 0 {
		return t.Begin(source, op)
	}
	if t == nil || t.cfg.SampleEvery <= 0 {
		return nil
	}
	if int(t.nActive.Load()) >= t.cfg.MaxActive {
		if t.sweepStale() == 0 {
			t.droppedN.Add(1)
			return nil
		}
	}
	sp := t.newSpan(source, op)
	sp.parent = parent
	return sp
}

func (t *Tracer) newSpan(source int32, op string) *Span {
	sp := &Span{tracer: t, source: source, op: op, start: time.Now()}
	if fn := t.cfg.ClassOf; fn != nil {
		sp.class = fn(source)
	}
	sp.refs.Store(1)
	if t.started != nil {
		t.started.Inc()
	}
	return sp
}

// Attach registers the span under the sequence number the queue
// assigned, making it discoverable by the dequeue side. Nil-safe.
func (t *Tracer) Attach(seq uint64, sp *Span) {
	if t == nil || sp == nil {
		return
	}
	sp.seq = seq
	t.mu.Lock()
	if _, dup := t.active[seq]; !dup {
		t.active[seq] = sp
		t.nActive.Add(1)
	}
	t.mu.Unlock()
}

// sweepStale evicts spans older than StaleAfter from the full active
// table, reporting how many slots it freed. Swept spans are only
// deregistered — holders that later Finish still complete them into
// the ring; orphans (never dequeued) become garbage.
func (t *Tracer) sweepStale() int {
	cutoff := time.Now().Add(-t.cfg.StaleAfter)
	freed := 0
	t.mu.Lock()
	for seq, sp := range t.active {
		if sp.start.Before(cutoff) {
			delete(t.active, seq)
			t.nActive.Add(-1)
			freed++
		}
	}
	t.mu.Unlock()
	if freed > 0 {
		t.sweptN.Add(int64(freed))
	}
	return freed
}

// Dequeued looks up the active span for a dequeued token and stamps its
// dequeue stage. Returns nil for untraced tokens. The fast path (no
// active spans) is one atomic load.
func (t *Tracer) Dequeued(seq uint64) *Span {
	if t == nil || t.nActive.Load() == 0 {
		return nil
	}
	t.mu.Lock()
	sp := t.active[seq]
	t.mu.Unlock()
	sp.Mark(StageDequeue)
	return sp
}

// complete moves a finished span into the ring.
func (t *Tracer) complete(sp *Span) {
	total := time.Since(sp.start)
	if t.totalHist != nil {
		t.totalHist.ObserveEx(total, sp.seq)
	}
	rec := Record{
		Seq:    sp.seq,
		Source: sp.source,
		Op:     sp.op,
		Class:  sp.class,
		Start:  sp.start,
		Total:  total,
	}
	if sp.parent != 0 {
		rec.TraceParent = FormatContext(sp.parent, FlagSampled)
	}
	for _, st := range Stages() {
		c := sp.stages[st].count.Load()
		if c == 0 {
			continue
		}
		ns := sp.stages[st].total.Load()
		// Queue-wait vs service decomposition: dequeue (token-queue
		// residence) and taskwait (driver-pool run-queue wait) are
		// waiting; every other stage is work.
		switch st {
		case StageDequeue, StageTaskWait:
			rec.QueueWaitNs += ns
		default:
			rec.ServiceNs += ns
		}
		rec.Stages = append(rec.Stages, StageStat{
			Stage: st.String(),
			Count: c,
			Total: time.Duration(ns),
		})
	}
	t.mu.Lock()
	if cur, ok := t.active[sp.seq]; ok && cur == sp {
		delete(t.active, sp.seq)
		t.nActive.Add(-1)
	}
	if sp.class != "" {
		if h := t.classHistLocked(sp.class); h != nil {
			h.ObserveEx(total, sp.seq)
		}
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	t.mu.Unlock()
}

// classHistLocked interns the per-class end-to-end histogram; caller
// holds t.mu. Returns nil without a registry.
func (t *Tracer) classHistLocked(class string) *metrics.Histogram {
	if h, ok := t.classHists[class]; ok {
		return h
	}
	if t.cfg.Registry == nil {
		return nil
	}
	h := t.cfg.Registry.Histogram("tman_token_duration_seconds",
		"end-to-end token processing time, capture to completion", nil,
		metrics.L("class", class))
	t.classHists[class] = h
	return h
}

// ClassHistogram returns the end-to-end duration histogram for a
// priority class — the series SLO objectives evaluate against. It
// interns on first use so an objective can be wired before the first
// token of its class completes. Nil when the tracer has no registry.
func (t *Tracer) ClassHistogram(class string) *metrics.Histogram {
	if t == nil || t.cfg.Registry == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.classHistLocked(class)
}

// TotalHistogram returns the aggregate end-to-end duration histogram
// (nil without a registry) — the exemplar source for /statusz.
func (t *Tracer) TotalHistogram() *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.totalHist
}

// Dropped reports tokens not traced because the active table was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.droppedN.Load()
}

// Swept reports orphaned spans evicted by the stale sweep.
func (t *Tracer) Swept() int64 {
	if t == nil {
		return 0
	}
	return t.sweptN.Load()
}

// RecordBySeq finds the completed trace for a sequence number in the
// ring (most recent wins). ok is false when the trace has been evicted
// or never existed — exemplars outlive the ring, so callers must
// tolerate a miss.
func (t *Tracer) RecordBySeq(seq uint64) (Record, bool) {
	if t == nil || seq == 0 {
		return Record{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < t.count; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		if t.ring[idx].Seq == seq {
			return t.ring[idx], true
		}
	}
	return Record{}, false
}

// Recent returns the completed traces retained in the ring, oldest
// first.
func (t *Tracer) Recent() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, t.count)
	start := (t.next - t.count + len(t.ring)) % len(t.ring)
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// RecordForward synthesizes a completed origin-side record for a
// token forwarded to its owner node: the origin never dequeues the
// token, so without this the forward hop would vanish from the trace
// ring and a cross-node timeline would start at the owner. The record
// carries the propagated trace id as its TraceParent — the same id the
// owner's record will carry — so RecordsByParent stitches both halves
// together. No-op when tracing is disabled or the id is unsampled.
func (t *Tracer) RecordForward(source int32, op string, parent uint64, start time.Time, d time.Duration) {
	if t == nil || t.cfg.SampleEvery <= 0 || parent == 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	if h := t.stageHists[StageForward]; h != nil {
		h.Observe(d)
	}
	rec := Record{
		Source:      source,
		Op:          op,
		Start:       start,
		TraceParent: FormatContext(parent, FlagSampled),
		Total:       d,
		ServiceNs:   int64(d),
		Stages:      []StageStat{{Stage: StageForward.String(), Count: 1, Total: d}},
	}
	if fn := t.cfg.ClassOf; fn != nil {
		rec.Class = fn(source)
	}
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	t.mu.Unlock()
}

// RecordsByParent returns every retained record carrying the given
// propagated trace id, oldest first — the node-local slice of a
// cross-node trace, served over the wire by ReqTraceFetch.
func (t *Tracer) RecordsByParent(parent uint64) []Record {
	if t == nil || parent == 0 {
		return nil
	}
	want := FormatContext(parent, FlagSampled)
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Record
	start := (t.next - t.count + len(t.ring)) % len(t.ring)
	for i := 0; i < t.count; i++ {
		rec := t.ring[(start+i)%len(t.ring)]
		if rec.TraceParent == want {
			out = append(out, rec)
		}
	}
	return out
}

// ActiveCount reports in-flight spans (tests).
func (t *Tracer) ActiveCount() int { return int(t.nActive.Load()) }

// StageQuantile reports an upper bound on the q-quantile of a stage's
// recorded durations, from the registry histogram. ok is false when
// the tracer has no registry or the stage has no observations.
func (t *Tracer) StageQuantile(st Stage, q float64) (time.Duration, bool) {
	if t == nil || st >= numStages || t.stageHists[st] == nil {
		return 0, false
	}
	return t.stageHists[st].Quantile(q)
}
