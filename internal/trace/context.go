package trace

import (
	"fmt"
	mrand "math/rand/v2"
	"strconv"
	"strings"
)

// Wire-level trace context: a compact traceparent-style header that
// lets a span begun in a client application continue through
// capture→action on the server — and, when the catalog is sharded
// across nodes, across forwarded tokens too. The format is
//
//	tm1-<16 hex id>-<2 hex flags>
//
// mirroring W3C traceparent's version-id-flags shape without the 16
// byte trace ID (one processor, 64 bits of id is plenty) or the
// parent-span field (the queue sequence number plays that role once
// the token is enqueued).

// FlagSampled marks a context whose originator wants the token traced
// regardless of the server's sampling rate: the client paid for the
// header, the server honors it.
const FlagSampled = 0x01

// contextVersion is the header prefix; unknown versions are rejected
// so a future format change cannot be silently misparsed.
const contextVersion = "tm1"

// NewTraceID draws a nonzero 64-bit trace identifier.
func NewTraceID() uint64 {
	for {
		if id := mrand.Uint64(); id != 0 {
			return id
		}
	}
}

// FormatContext renders a trace context header.
func FormatContext(id uint64, flags byte) string {
	return fmt.Sprintf("%s-%016x-%02x", contextVersion, id, flags)
}

// ParseContext parses a trace context header. An empty string is not
// an error — it parses to id 0 (no context), so call sites can pass
// the wire field through unconditionally.
func ParseContext(s string) (id uint64, flags byte, err error) {
	if s == "" {
		return 0, 0, nil
	}
	parts := strings.Split(s, "-")
	if len(parts) != 3 || len(parts[1]) != 16 || len(parts[2]) != 2 {
		return 0, 0, fmt.Errorf("trace: malformed context %q", s)
	}
	if parts[0] != contextVersion {
		return 0, 0, fmt.Errorf("trace: unsupported context version %q", parts[0])
	}
	id, err = strconv.ParseUint(parts[1], 16, 64)
	if err != nil || id == 0 {
		return 0, 0, fmt.Errorf("trace: bad trace id in %q", s)
	}
	f, err := strconv.ParseUint(parts[2], 16, 8)
	if err != nil {
		return 0, 0, fmt.Errorf("trace: bad flags in %q", s)
	}
	return id, byte(f), nil
}
