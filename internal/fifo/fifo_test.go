package fifo

import "testing"

func TestFIFOOrder(t *testing.T) {
	var q Queue[int]
	if _, ok := q.Pop(); ok {
		t.Fatal("empty queue popped")
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("len after drain = %d", q.Len())
	}
}

func TestPushFrontPreservesPosition(t *testing.T) {
	var q Queue[int]
	q.Push(1)
	q.Push(2)
	q.Push(3)
	v, _ := q.Pop() // 1 leaves, then returns to the front
	q.PushFront(v)
	want := []int{1, 2, 3}
	for _, w := range want {
		if v, ok := q.Pop(); !ok || v != w {
			t.Fatalf("got %d, want %d", v, w)
		}
	}
	// PushFront onto a queue with no consumed head slots shifts right.
	var q2 Queue[int]
	q2.Push(9)
	q2.PushFront(8)
	if v, _ := q2.Pop(); v != 8 {
		t.Fatalf("front = %d", v)
	}
	if v, _ := q2.Pop(); v != 9 {
		t.Fatalf("second = %d", v)
	}
}

func TestCompactionReclaimsAndKeepsOrder(t *testing.T) {
	var q Queue[int]
	next, want := 0, 0
	// Interleave pushes and pops so head grows far past compactAfter
	// while order must survive every slide.
	for round := 0; round < 200; round++ {
		for i := 0; i < 37; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 36; i++ {
			v, ok := q.Pop()
			if !ok || v != want {
				t.Fatalf("round %d: got %d, want %d", round, v, want)
			}
			want++
		}
	}
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if v != want {
			t.Fatalf("drain: got %d, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d, pushed %d", want, next)
	}
	if len(q.buf) != 0 || q.head != 0 {
		t.Fatalf("empty pop should reset storage: len=%d head=%d", len(q.buf), q.head)
	}
}

func TestPopZeroesSlots(t *testing.T) {
	var q Queue[*int]
	v := new(int)
	q.Push(v)
	q.Pop()
	// The consumed slot must not retain the pointer.
	if q.buf[:1][0] != nil {
		t.Fatal("popped slot retains reference")
	}
}
