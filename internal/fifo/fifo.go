// Package fifo provides the slice-backed FIFO with head compaction that
// the task queue shards and the main-memory token queue share. Before
// this package existed the same compaction slide was hand-rolled in
// three places (taskq.pop, taskq.tryPop, datasource.MemQueue.Dequeue);
// it lives here once, tested once.
//
// Queue is not safe for concurrent use; callers wrap it in their own
// lock (one lock per shard, which is the whole point of sharding).
package fifo

// compactAfter is the minimum number of consumed head slots before a
// Pop considers sliding live elements back to the front. The slide runs
// only when consumed slots also outnumber live ones, so it amortizes to
// O(1) per element.
const compactAfter = 1024

// Queue is a FIFO over a slice with an advancing head index. The zero
// value is an empty queue.
type Queue[T any] struct {
	buf  []T
	head int
}

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.buf) - q.head }

// Push appends v at the back.
func (q *Queue[T]) Push(v T) { q.buf = append(q.buf, v) }

// PushFront re-admits v at the front (used to return a popped element
// that could not run yet, preserving its FIFO position).
func (q *Queue[T]) PushFront(v T) {
	if q.head > 0 {
		q.head--
		q.buf[q.head] = v
		return
	}
	var zero T
	q.buf = append(q.buf, zero)
	copy(q.buf[1:], q.buf)
	q.buf[0] = v
}

// Pop removes and returns the front element; ok is false when empty.
// Consumed slots are zeroed so the queue never retains references, and
// the backing slice is compacted once consumed slots dominate.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if q.head >= len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head++
	if q.head > compactAfter && q.head*2 > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v, true
}
