package slo

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"triggerman/internal/metrics"
)

// RuntimeConfig tunes a RuntimeSampler.
type RuntimeConfig struct {
	// Registry receives the tman_runtime_* instruments; nil disables
	// metric export (Snapshot still works).
	Registry *metrics.Registry
	// Interval between samples (default 5s).
	Interval time.Duration
	// Tokens, when set, reports cumulative tokens processed so the
	// sampler can derive allocations per token — the baseline for
	// ROADMAP item 5's allocation attack. Nil leaves that gauge at 0.
	Tokens func() int64
}

// RuntimeStats is one sampled view of the Go runtime, JSON-shaped for
// /statusz.
type RuntimeStats struct {
	HeapAllocBytes      int64 `json:"heap_alloc_bytes"`
	HeapSysBytes        int64 `json:"heap_sys_bytes"`
	Goroutines          int64 `json:"goroutines"`
	NumGC               int64 `json:"gc_total"`
	GCPauseTotalNs      int64 `json:"gc_pause_total_ns"`
	LastGCPauseNs       int64 `json:"gc_pause_last_ns"`
	MallocsTotal        int64 `json:"mallocs_total"`
	AllocsPerTokenMilli int64 `json:"allocs_per_token_milli"`
	SampledAtUnixNs     int64 `json:"sampled_at_unix_ns"`
}

// RuntimeSampler periodically reads runtime memory statistics into
// atomic cells, feeding /statusz and the registry without putting
// ReadMemStats (a stop-the-world-ish call) on any request path.
type RuntimeSampler struct {
	cfg RuntimeConfig

	heapAlloc   atomic.Int64
	heapSys     atomic.Int64
	goroutines  atomic.Int64
	numGC       atomic.Int64
	pauseTotal  atomic.Int64
	pauseLast   atomic.Int64
	mallocs     atomic.Int64
	perTokMilli atomic.Int64
	sampledAt   atomic.Int64

	mu       sync.Mutex
	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRuntimeSampler builds a sampler and registers its instruments. It
// takes one immediate sample so gauges are never zero-before-first-tick.
func NewRuntimeSampler(cfg RuntimeConfig) *RuntimeSampler {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	r := &RuntimeSampler{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	if reg := cfg.Registry; reg != nil {
		reg.GaugeFunc("tman_runtime_heap_alloc_bytes", "live heap bytes at last sample",
			r.heapAlloc.Load)
		reg.GaugeFunc("tman_runtime_heap_sys_bytes", "heap bytes obtained from the OS",
			r.heapSys.Load)
		reg.GaugeFunc("tman_runtime_goroutines", "goroutines at last sample",
			r.goroutines.Load)
		reg.CounterFunc("tman_runtime_gc_total", "completed GC cycles",
			r.numGC.Load)
		reg.CounterFunc("tman_runtime_gc_pause_total_ns", "cumulative GC stop-the-world pause",
			r.pauseTotal.Load)
		reg.GaugeFunc("tman_runtime_gc_pause_last_ns", "most recent GC pause",
			r.pauseLast.Load)
		reg.GaugeFunc("tman_runtime_allocs_per_token_milli",
			"cumulative heap allocations per processed token, in thousandths",
			r.perTokMilli.Load)
	}
	r.Sample()
	return r
}

// Sample takes one reading now.
func (r *RuntimeSampler) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.heapAlloc.Store(int64(ms.HeapAlloc))
	r.heapSys.Store(int64(ms.HeapSys))
	r.goroutines.Store(int64(runtime.NumGoroutine()))
	r.numGC.Store(int64(ms.NumGC))
	r.pauseTotal.Store(int64(ms.PauseTotalNs))
	if ms.NumGC > 0 {
		r.pauseLast.Store(int64(ms.PauseNs[(ms.NumGC+255)%256]))
	}
	r.mallocs.Store(int64(ms.Mallocs))
	if r.cfg.Tokens != nil {
		if n := r.cfg.Tokens(); n > 0 {
			r.perTokMilli.Store(int64(ms.Mallocs) * 1000 / n)
		}
	}
	r.sampledAt.Store(time.Now().UnixNano())
}

// Snapshot returns the latest sampled values.
func (r *RuntimeSampler) Snapshot() RuntimeStats {
	if r == nil {
		return RuntimeStats{}
	}
	return RuntimeStats{
		HeapAllocBytes:      r.heapAlloc.Load(),
		HeapSysBytes:        r.heapSys.Load(),
		Goroutines:          r.goroutines.Load(),
		NumGC:               r.numGC.Load(),
		GCPauseTotalNs:      r.pauseTotal.Load(),
		LastGCPauseNs:       r.pauseLast.Load(),
		MallocsTotal:        r.mallocs.Load(),
		AllocsPerTokenMilli: r.perTokMilli.Load(),
		SampledAtUnixNs:     r.sampledAt.Load(),
	}
}

// Start launches the sampling loop.
func (r *RuntimeSampler) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		tk := time.NewTicker(r.cfg.Interval)
		defer tk.Stop()
		for {
			select {
			case <-tk.C:
				r.Sample()
			case <-r.stop:
				return
			}
		}
	}()
}

// Stop ends the sampling loop and waits for it (idempotent; a no-op
// when Start never ran).
func (r *RuntimeSampler) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	r.stopOnce.Do(func() { close(r.stop) })
	if started {
		<-r.done
	}
}
