package slo

import (
	"testing"
	"time"

	"triggerman/internal/metrics"
)

// fakeSource is a hand-cranked cumulative counter pair.
type fakeSource struct{ total, good int64 }

func (f *fakeSource) Totals() (int64, int64) { return f.total, f.good }

// burnEvent captures one OnEvent invocation's key fields.
type burnEvent struct {
	objective, window, state string
}

func parseEvent(t *testing.T, event string, args []any) burnEvent {
	t.Helper()
	if event != "slo.burn" {
		t.Fatalf("unexpected event %q", event)
	}
	ev := burnEvent{}
	for i := 0; i+1 < len(args); i += 2 {
		switch args[i] {
		case "objective":
			ev.objective = args[i+1].(string)
		case "window":
			ev.window = args[i+1].(string)
		case "state":
			ev.state = args[i+1].(string)
		}
	}
	return ev
}

// TestBurnRateLifecycle drives a synthetic objective through healthy →
// burning → recovered and checks verdicts, events, gauges, and budget.
func TestBurnRateLifecycle(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	var events []burnEvent
	reg := metrics.NewRegistry()
	eng := New(Config{
		Registry: reg,
		Tick:     10 * time.Second,
		Windows: []WindowPair{
			{Name: "fast", Short: time.Minute, Long: 5 * time.Minute, Burn: 2},
		},
		Now: clock,
		OnEvent: func(event string, args ...any) {
			events = append(events, parseEvent(t, event, args))
		},
	})
	src := &fakeSource{}
	if err := eng.Add(Objective{Name: "p99", Class: "interactive", Target: 0.9, Threshold: 10 * time.Millisecond, Source: src}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Add(Objective{Name: "p99", Target: 0.9, Source: src}); err == nil {
		t.Fatal("duplicate objective accepted")
	}

	tick := func(total, good int64) {
		src.total += total
		src.good += good
		now = now.Add(10 * time.Second)
		eng.Tick()
	}

	// Healthy: 10 ticks of all-good traffic.
	for i := 0; i < 10; i++ {
		tick(100, 100)
	}
	st := eng.Snapshot()[0]
	if st.Burning || st.Windows[0].ShortBurnMilli != 0 {
		t.Fatalf("healthy status = %+v", st)
	}
	if st.BudgetRemainingMilli != 1000 {
		t.Fatalf("healthy budget = %d, want 1000", st.BudgetRemainingMilli)
	}

	// Burn: 50% bad (5× the 10%% budget) until both windows exceed 2×.
	for i := 0; i < 8; i++ {
		tick(100, 50)
	}
	st = eng.Snapshot()[0]
	if !st.Burning || !st.Windows[0].Burning {
		t.Fatalf("burning status = %+v", st)
	}
	// Short window now sees only bad ticks: burn 0.5/0.1 = 5×.
	if got := st.Windows[0].ShortBurnMilli; got < 4500 || got > 5500 {
		t.Fatalf("short burn = %d milli, want ≈5000", got)
	}
	if st.BudgetRemainingMilli >= 1000 {
		t.Fatalf("burning budget = %d, want < 1000", st.BudgetRemainingMilli)
	}
	if len(events) != 1 || events[0] != (burnEvent{"p99", "fast", "firing"}) {
		t.Fatalf("events = %+v, want one firing", events)
	}
	if v, ok := reg.Value("tman_slo_burning", metrics.L("objective", "p99")); !ok || v != 1 {
		t.Fatalf("tman_slo_burning = %d ok=%v, want 1", v, ok)
	}

	// Recover: all-good ticks push the short window back under.
	for i := 0; i < 8; i++ {
		tick(100, 100)
	}
	st = eng.Snapshot()[0]
	if st.Burning {
		t.Fatalf("recovered status = %+v", st)
	}
	if len(events) != 2 || events[1] != (burnEvent{"p99", "fast", "resolved"}) {
		t.Fatalf("events = %+v, want firing then resolved", events)
	}
	if v, _ := reg.Value("tman_slo_burning", metrics.L("objective", "p99")); v != 0 {
		t.Fatalf("tman_slo_burning = %d after recovery, want 0", v)
	}
}

// TestHistogramSource checks the histogram adapter's conservative good
// count drives the expected burn verdict (the CI smoke's logic).
func TestHistogramSource(t *testing.T) {
	h := metrics.NewHistogram(nil)
	for i := 0; i < 95; i++ {
		h.Observe(2 * time.Millisecond) // good
	}
	for i := 0; i < 5; i++ {
		h.Observe(200 * time.Millisecond) // bad
	}
	src := HistogramSource{H: h, Cutoff: 10 * time.Millisecond}
	total, good := src.Totals()
	if total != 100 || good != 95 {
		t.Fatalf("totals = (%d, %d), want (100, 95)", total, good)
	}

	// 5%% bad against a 99%% target = burn 5× — over threshold 2 on
	// every window once history exists.
	now := time.Unix(0, 0)
	eng := New(Config{
		Tick:    time.Second,
		Windows: []WindowPair{{Name: "fast", Short: 5 * time.Second, Long: 30 * time.Second, Burn: 2}},
		Now:     func() time.Time { return now },
	})
	if err := eng.Add(Objective{Name: "hist", Target: 0.99, Threshold: 10 * time.Millisecond, Source: src}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Second)
	eng.Tick()
	st := eng.Snapshot()[0]
	if !st.Burning {
		t.Fatalf("synthetic histogram did not burn: %+v", st)
	}
	if got := st.Windows[0].ShortBurnMilli; got < 4990 || got > 5010 {
		t.Fatalf("burn = %d milli, want ≈5000", got)
	}
}

// TestSnapshotBeforeTick checks never-evaluated objectives report a
// sane zero state.
func TestSnapshotBeforeTick(t *testing.T) {
	eng := New(Config{})
	if err := eng.Add(Objective{Name: "idle", Target: 0.99, Source: &fakeSource{}}); err != nil {
		t.Fatal(err)
	}
	st := eng.Snapshot()[0]
	if st.Name != "idle" || st.Burning || st.BudgetRemainingMilli != 1000 {
		t.Fatalf("pre-tick status = %+v", st)
	}
	// Stop without Start must not hang.
	eng.Stop()
}

// TestAddValidation checks objective validation.
func TestAddValidation(t *testing.T) {
	eng := New(Config{})
	if err := eng.Add(Objective{Name: "", Target: 0.9, Source: &fakeSource{}}); err == nil {
		t.Fatal("nameless objective accepted")
	}
	if err := eng.Add(Objective{Name: "x", Target: 0.9}); err == nil {
		t.Fatal("sourceless objective accepted")
	}
	if err := eng.Add(Objective{Name: "x", Target: 1.5, Source: &fakeSource{}}); err == nil {
		t.Fatal("target outside (0,1) accepted")
	}
}

// TestRuntimeSampler checks sampling populates the snapshot and the
// registry instruments.
func TestRuntimeSampler(t *testing.T) {
	reg := metrics.NewRegistry()
	tokens := int64(1000)
	rs := NewRuntimeSampler(RuntimeConfig{
		Registry: reg,
		Tokens:   func() int64 { return tokens },
	})
	defer rs.Stop()
	rs.Sample()
	st := rs.Snapshot()
	if st.HeapAllocBytes <= 0 || st.Goroutines <= 0 || st.MallocsTotal <= 0 {
		t.Fatalf("snapshot = %+v", st)
	}
	if st.AllocsPerTokenMilli <= 0 {
		t.Fatalf("allocs per token = %d, want > 0", st.AllocsPerTokenMilli)
	}
	if v, ok := reg.Value("tman_runtime_heap_alloc_bytes"); !ok || v <= 0 {
		t.Fatalf("heap gauge = %d ok=%v", v, ok)
	}
}
