// Package slo evaluates declarative latency objectives against the
// metrics registry with multi-window burn-rate alerting, the
// measurement half of ROADMAP item 5's "make p99 a contract" (the
// enforcement half is internal/admission).
//
// An Objective names a latency contract — "interactive capture→deliver
// under 25ms for 99% of tokens" — backed by a cumulative histogram.
// The engine snapshots each objective's (total, good) counts at a fixed
// tick and derives the burn rate over sliding windows: the ratio of the
// observed bad fraction to the budgeted bad fraction (1 − target).
// Burn 1.0 spends the error budget exactly at the sustainable pace;
// burn 14.4 exhausts a 3-day budget in 5 hours.
//
// Alerting uses the standard multi-window pairing: a pair fires only
// when BOTH its short and long window exceed the pair's burn threshold
// — the short window makes the alert fast to resolve, the long window
// keeps a brief spike from paging. The defaults are a fast pair
// (5m/1h at 14.4×) and a slow pair (6h/3d at 1×).
package slo

import (
	"fmt"
	"sync"
	"time"

	"triggerman/internal/metrics"
)

// Source supplies an objective's cumulative counts: how many events
// total, and how many met the objective ("good"). Counts must be
// monotone; the engine works on deltas.
type Source interface {
	Totals() (total, good int64)
}

// HistogramSource adapts a latency histogram: good = observations in
// buckets provably at or under Cutoff (conservative — see
// Histogram.CountAtOrBelow).
type HistogramSource struct {
	H      *metrics.Histogram
	Cutoff time.Duration
}

// Totals implements Source.
func (s HistogramSource) Totals() (total, good int64) {
	return s.H.Count(), s.H.CountAtOrBelow(s.Cutoff)
}

// FuncSource adapts a closure — the fleet layer uses it to evaluate
// objectives over merged cross-node histogram snapshots, which have no
// live *metrics.Histogram to hand to HistogramSource.
type FuncSource func() (total, good int64)

// Totals implements Source.
func (f FuncSource) Totals() (total, good int64) { return f() }

// Objective is one declarative latency contract.
type Objective struct {
	// Name identifies the objective in metrics, /sloz, and events
	// (e.g. "interactive-p99").
	Name string
	// Class is the priority class whose histogram feeds the objective
	// (informational; shown in /sloz).
	Class string
	// Target is the good fraction the contract promises, e.g. 0.99.
	Target float64
	// Threshold is the latency cutoff defining "good".
	Threshold time.Duration
	// Source supplies the counts. Required.
	Source Source
}

// WindowPair is one multi-window alerting rule: the pair is burning
// when the burn rate over BOTH windows exceeds Burn.
type WindowPair struct {
	Name  string        `json:"name"`
	Short time.Duration `json:"short_ns"`
	Long  time.Duration `json:"long_ns"`
	// Burn is the rate threshold (1.0 = spending the budget exactly at
	// the sustainable pace).
	Burn float64 `json:"burn_threshold"`
}

// DefaultWindows returns the standard fast-page / slow-ticket pairs.
func DefaultWindows() []WindowPair {
	return []WindowPair{
		{Name: "fast", Short: 5 * time.Minute, Long: time.Hour, Burn: 14.4},
		{Name: "slow", Short: 6 * time.Hour, Long: 72 * time.Hour, Burn: 1.0},
	}
}

// Config tunes an Engine.
type Config struct {
	// Registry receives the tman_slo_* instruments; nil disables
	// metric export (evaluation still works).
	Registry *metrics.Registry
	// Tick is the snapshot resolution (default 10s). Burn rates cannot
	// resolve faster than this.
	Tick time.Duration
	// Windows overrides the alerting pairs (default DefaultWindows).
	Windows []WindowPair
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
	// OnEvent receives burn-state transitions for the event log:
	// OnEvent("slo.burn", "objective", name, "window", pair, "state",
	// "firing"|"resolved", ...). Nil drops them.
	OnEvent func(event string, args ...any)
}

// sample is one objective's counts at one tick.
type sample struct {
	at          time.Time
	total, good int64
}

// maxRing bounds per-objective history regardless of window/tick
// ratio; at the default 10s tick it holds 3.8 days.
const maxRing = 32768

// objState is one tracked objective plus its evaluation state.
type objState struct {
	Objective
	ring  []sample // bounded history ring
	next  int
	count int
	// burning tracks per-pair alert state (index matches cfg.Windows);
	// transitions emit slo.burn events.
	burning []bool
	// last evaluation, for Snapshot.
	status ObjectiveStatus

	gBurn    []*metrics.Gauge // per pair, short window burn (milli)
	gBurning *metrics.Gauge
	gBudget  *metrics.Gauge
}

// WindowStatus reports one pair's evaluation.
type WindowStatus struct {
	Name           string  `json:"name"`
	ShortBurnMilli int64   `json:"short_burn_milli"`
	LongBurnMilli  int64   `json:"long_burn_milli"`
	BurnThreshold  float64 `json:"burn_threshold"`
	Burning        bool    `json:"burning"`
}

// ObjectiveStatus is one objective's current verdict, JSON-shaped for
// /sloz.
type ObjectiveStatus struct {
	Name      string         `json:"name"`
	Class     string         `json:"class,omitempty"`
	Target    float64        `json:"target"`
	Threshold time.Duration  `json:"threshold_ns"`
	Total     int64          `json:"total"`
	Good      int64          `json:"good"`
	Windows   []WindowStatus `json:"windows"`
	Burning   bool           `json:"burning"`
	// BudgetRemainingMilli is the unspent error budget over the longest
	// window, in thousandths (1000 = untouched, 0 = exhausted).
	BudgetRemainingMilli int64 `json:"budget_remaining_milli"`
}

// Engine evaluates objectives on a tick.
type Engine struct {
	cfg Config

	mu   sync.Mutex
	objs []*objState

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds an engine. Call Add for each objective, then Start (or
// drive Tick manually).
func New(cfg Config) *Engine {
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * time.Second
	}
	if len(cfg.Windows) == 0 {
		cfg.Windows = DefaultWindows()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Engine{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// Windows reports the engine's alerting pairs.
func (e *Engine) Windows() []WindowPair { return e.cfg.Windows }

// Add registers an objective. The first evaluation happens at the next
// Tick.
func (e *Engine) Add(obj Objective) error {
	if obj.Name == "" || obj.Source == nil {
		return fmt.Errorf("slo: objective needs a name and a source")
	}
	if obj.Target <= 0 || obj.Target >= 1 {
		return fmt.Errorf("slo: objective %q target %v outside (0,1)", obj.Name, obj.Target)
	}
	// Ring sized to cover the longest window at tick resolution.
	var longest time.Duration
	for _, w := range e.cfg.Windows {
		if w.Long > longest {
			longest = w.Long
		}
	}
	n := int(longest/e.cfg.Tick) + 2
	if n > maxRing {
		n = maxRing
	}
	st := &objState{
		Objective: obj,
		ring:      make([]sample, n),
		burning:   make([]bool, len(e.cfg.Windows)),
	}
	if reg := e.cfg.Registry; reg != nil {
		for _, w := range e.cfg.Windows {
			st.gBurn = append(st.gBurn, reg.Gauge("tman_slo_burn_rate_milli",
				"short-window burn rate in thousandths (1000 = sustainable pace)",
				metrics.L("objective", obj.Name), metrics.L("window", w.Name)))
		}
		st.gBurning = reg.Gauge("tman_slo_burning",
			"1 while any window pair exceeds its burn threshold",
			metrics.L("objective", obj.Name))
		st.gBudget = reg.Gauge("tman_slo_budget_remaining_milli",
			"unspent error budget over the longest window, in thousandths",
			metrics.L("objective", obj.Name))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, have := range e.objs {
		if have.Name == obj.Name {
			return fmt.Errorf("slo: duplicate objective %q", obj.Name)
		}
	}
	e.objs = append(e.objs, st)
	return nil
}

// Tick snapshots every objective and re-evaluates burn state. Called
// by the Start loop; tests call it directly with an injected clock.
func (e *Engine) Tick() {
	now := e.cfg.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.objs {
		e.evalLocked(st, now)
	}
}

// evalLocked appends one sample and recomputes st.status.
func (e *Engine) evalLocked(st *objState, now time.Time) {
	total, good := st.Source.Totals()
	st.ring[st.next] = sample{at: now, total: total, good: good}
	st.next = (st.next + 1) % len(st.ring)
	if st.count < len(st.ring) {
		st.count++
	}

	status := ObjectiveStatus{
		Name:      st.Name,
		Class:     st.Class,
		Target:    st.Target,
		Threshold: st.Threshold,
		Total:     total,
		Good:      good,
	}
	var longest time.Duration
	var longestBurn float64
	anyBurning := false
	for i, w := range e.cfg.Windows {
		shortBurn := e.burnOver(st, now, w.Short, total, good)
		longBurn := e.burnOver(st, now, w.Long, total, good)
		burning := shortBurn > w.Burn && longBurn > w.Burn
		if burning != st.burning[i] {
			st.burning[i] = burning
			state := "resolved"
			if burning {
				state = "firing"
			}
			if e.cfg.OnEvent != nil {
				e.cfg.OnEvent("slo.burn",
					"objective", st.Name,
					"window", w.Name,
					"state", state,
					"short_burn_milli", int64(shortBurn*1000),
					"long_burn_milli", int64(longBurn*1000),
					"threshold_milli", int64(w.Burn*1000))
			}
		}
		if burning {
			anyBurning = true
		}
		if w.Long > longest {
			longest, longestBurn = w.Long, longBurn
		}
		status.Windows = append(status.Windows, WindowStatus{
			Name:           w.Name,
			ShortBurnMilli: int64(shortBurn * 1000),
			LongBurnMilli:  int64(longBurn * 1000),
			BurnThreshold:  w.Burn,
			Burning:        burning,
		})
		if i < len(st.gBurn) {
			st.gBurn[i].Set(int64(shortBurn * 1000))
		}
	}
	status.Burning = anyBurning
	// Budget remaining: burn over the longest window IS the spend rate;
	// spent fraction = burn (burn 1.0 over the whole window = budget
	// exactly gone at window end).
	rem := int64((1 - longestBurn) * 1000)
	if rem < 0 {
		rem = 0
	}
	status.BudgetRemainingMilli = rem
	if st.gBurning != nil {
		v := int64(0)
		if anyBurning {
			v = 1
		}
		st.gBurning.Set(v)
		st.gBudget.Set(rem)
	}
	st.status = status
}

// burnOver computes the burn rate over the trailing window: the bad
// fraction of events in the window divided by the budgeted bad
// fraction. An engine younger than the window evaluates over its whole
// history (standard burn-rate behavior: better a conservative early
// answer than none).
func (e *Engine) burnOver(st *objState, now time.Time, window time.Duration, total, good int64) float64 {
	base, ok := st.sampleAtOrBefore(now.Add(-window))
	if !ok {
		// No history yet: the whole lifetime is the window.
		base = sample{}
	}
	dTotal := total - base.total
	dGood := good - base.good
	if dTotal <= 0 {
		return 0
	}
	badFrac := float64(dTotal-dGood) / float64(dTotal)
	return badFrac / (1 - st.Target)
}

// sampleAtOrBefore finds the newest sample at or before t — the
// baseline for a window ending now. ok is false when every retained
// sample is newer than t.
func (st *objState) sampleAtOrBefore(t time.Time) (sample, bool) {
	for i := 0; i < st.count; i++ {
		s := st.ring[(st.next-1-i+len(st.ring))%len(st.ring)]
		if !s.at.After(t) {
			return s, true
		}
	}
	return sample{}, false
}

// Snapshot returns every objective's latest verdict (objectives added
// but not yet ticked report zero counts).
func (e *Engine) Snapshot() []ObjectiveStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ObjectiveStatus, 0, len(e.objs))
	for _, st := range e.objs {
		s := st.status
		if s.Name == "" { // never evaluated
			s = ObjectiveStatus{Name: st.Name, Class: st.Class, Target: st.Target, Threshold: st.Threshold, BudgetRemainingMilli: 1000}
		}
		out = append(out, s)
	}
	return out
}

// Start launches the tick loop. Stop ends it; Start after Stop is not
// supported.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	go func() {
		defer close(e.done)
		tk := time.NewTicker(e.cfg.Tick)
		defer tk.Stop()
		for {
			select {
			case <-tk.C:
				e.Tick()
			case <-e.stop:
				return
			}
		}
	}()
}

// Stop ends the tick loop and waits for it to exit (idempotent; a
// no-op when Start never ran).
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.mu.Lock()
	started := e.started
	e.mu.Unlock()
	e.stopOnce.Do(func() { close(e.stop) })
	if started {
		<-e.done
	}
}
