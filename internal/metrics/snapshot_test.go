package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildRegistry makes a small registry resembling a node's: a labeled
// counter, a gauge, and a class-labeled latency histogram.
func buildRegistry(tokens, depth int64, lat time.Duration, n int) *Registry {
	r := NewRegistry()
	r.Counter("tman_tokens_total", "tokens captured").Add(tokens)
	r.Gauge("tman_queue_depth", "queue depth").Set(depth)
	h := r.Histogram("tman_token_duration_seconds", "end to end", nil, L("class", "interactive"))
	for i := 0; i < n; i++ {
		h.Observe(lat)
	}
	return r
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := buildRegistry(7, 3, 2*time.Millisecond, 5)
	snap := r.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if v, ok := back.Value("tman_tokens_total", ""); !ok || v != 7 {
		t.Fatalf("tokens after round trip = %d, %v", v, ok)
	}
	h, ok := back.Histogram("tman_token_duration_seconds", LabelString(L("class", "interactive")))
	if !ok || h.Count != 5 {
		t.Fatalf("histogram after round trip: ok=%v count=%d", ok, h.Count)
	}
	if h.CountAtOrBelow(5*time.Millisecond) != 5 {
		t.Fatalf("CountAtOrBelow(5ms) = %d, want 5", h.CountAtOrBelow(5*time.Millisecond))
	}
	if h.CountAtOrBelow(time.Microsecond) != 0 {
		t.Fatalf("CountAtOrBelow(1µs) = %d, want 0", h.CountAtOrBelow(time.Microsecond))
	}
}

func TestMergeSemanticsPerKind(t *testing.T) {
	snaps := map[string]*Snapshot{
		"A": buildRegistry(10, 2, time.Millisecond, 3).Snapshot(),
		"B": buildRegistry(5, 9, 100*time.Millisecond, 4).Snapshot(),
	}
	m := Merge(snaps)

	// Counters sum.
	if v, ok := m.Value("tman_tokens_total", ""); !ok || v != 15 {
		t.Fatalf("merged counter = %d, %v; want 15", v, ok)
	}
	// Gauges are labeled per node, never summed.
	if _, ok := m.Value("tman_queue_depth", ""); ok {
		t.Fatalf("merged gauge kept an unlabeled (summed) instance")
	}
	if v, ok := m.Value("tman_queue_depth", LabelString(L("node", "A"))); !ok || v != 2 {
		t.Fatalf("gauge node=A = %d, %v; want 2", v, ok)
	}
	if v, ok := m.Value("tman_queue_depth", LabelString(L("node", "B"))); !ok || v != 9 {
		t.Fatalf("gauge node=B = %d, %v; want 9", v, ok)
	}
	// Histograms merge bucket-wise: counts add, per-bucket placement
	// preserved.
	h, ok := m.Histogram("tman_token_duration_seconds", LabelString(L("class", "interactive")))
	if !ok {
		t.Fatalf("merged histogram missing")
	}
	if h.Count != 7 {
		t.Fatalf("merged count = %d, want 7", h.Count)
	}
	if got := h.CountAtOrBelow(10 * time.Millisecond); got != 3 {
		t.Fatalf("fast bucket mass = %d, want 3 (A's 1ms observations)", got)
	}
	var bucketSum int64
	for _, c := range h.Buckets {
		bucketSum += c
	}
	if bucketSum != h.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count)
	}
}

func TestMergeMismatchedBoundsDegradesToPerNode(t *testing.T) {
	a := NewRegistry()
	a.Histogram("odd_hist", "", []int64{10, 20}).Observe(5)
	b := NewRegistry()
	b.Histogram("odd_hist", "", []int64{100}).Observe(5)
	m := Merge(map[string]*Snapshot{"A": a.Snapshot(), "B": b.Snapshot()})
	if _, ok := m.Histogram("odd_hist", ""); ok {
		t.Fatalf("mismatched bounds were merged bucket-wise")
	}
	if _, ok := m.Histogram("odd_hist", LabelString(L("node", "A"))); !ok {
		t.Fatalf("mismatched histogram lost node A's series")
	}
}

func TestMergedExpositionIsValid(t *testing.T) {
	snaps := map[string]*Snapshot{
		"A": buildRegistry(10, 2, time.Millisecond, 3).Snapshot(),
		"B": buildRegistry(5, 9, 100*time.Millisecond, 4).Snapshot(),
	}
	text := Merge(snaps).Render()
	if err := CheckExposition(text); err != nil {
		t.Fatalf("merged exposition invalid: %v\n%s", err, text)
	}
	if !strings.Contains(text, `tman_queue_depth{node="A"} 2`) {
		t.Fatalf("per-node gauge missing from exposition:\n%s", text)
	}
	if !strings.Contains(text, "tman_tokens_total 15") {
		t.Fatalf("summed counter missing from exposition:\n%s", text)
	}
}

func TestCheckExpositionCatchesGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_type_line 3\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 2\n",
		"# TYPE y counter\n9leading_digit 1\n",
	} {
		if err := CheckExposition(bad); err == nil {
			t.Fatalf("CheckExposition accepted %q", bad)
		}
	}
	r := buildRegistry(1, 1, time.Millisecond, 1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := CheckExposition(sb.String()); err != nil {
		t.Fatalf("CheckExposition rejected registry output: %v", err)
	}
}
