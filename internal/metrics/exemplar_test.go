package metrics

import (
	"testing"
	"time"
)

// TestExemplarStamping checks ObserveEx stamps the landing bucket and
// seq 0 degrades to a plain observation.
func TestExemplarStamping(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveEx(3*time.Microsecond, 0) // untraced: counted, no exemplar
	h.ObserveEx(3*time.Microsecond, 77)
	h.ObserveEx(2*time.Second, 99)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	exs := h.Exemplars()
	if len(exs) != 2 {
		t.Fatalf("exemplars = %+v, want 2", exs)
	}
	if exs[0].Seq != 77 || exs[0].Value != 3*time.Microsecond {
		t.Fatalf("low exemplar = %+v", exs[0])
	}
	if exs[1].Seq != 99 || exs[1].UpperNs != int64(2500*time.Millisecond) {
		t.Fatalf("high exemplar = %+v", exs[1])
	}
	if exs[0].At == 0 || exs[1].At == 0 {
		t.Fatal("exemplar timestamps not stamped")
	}
}

// TestQuantileExemplar checks the tail quantile resolves to the slow
// observation's exemplar, with fallback when the exact bucket is
// untraced.
func TestQuantileExemplar(t *testing.T) {
	h := NewHistogram(nil)
	if _, ok := h.QuantileExemplar(0.99); ok {
		t.Fatal("empty histogram produced an exemplar")
	}
	for i := 0; i < 999; i++ {
		h.Observe(2 * time.Microsecond) // untraced bulk
	}
	h.ObserveEx(time.Second, 42) // the traced tail
	e, ok := h.QuantileExemplar(0.999)
	if !ok || e.Seq != 42 {
		t.Fatalf("p999 exemplar = %+v ok=%v, want seq 42", e, ok)
	}
	// p50 bucket holds no exemplar; fallback walks up to the traced one.
	e, ok = h.QuantileExemplar(0.5)
	if !ok || e.Seq != 42 {
		t.Fatalf("p50 fallback exemplar = %+v ok=%v, want seq 42", e, ok)
	}
}

// TestCountAtOrBelow checks the conservative good-count: only whole
// buckets provably under the threshold count.
func TestCountAtOrBelow(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Microsecond) // lands in the 5µs bucket
	}
	for i := 0; i < 5; i++ {
		h.Observe(20 * time.Millisecond) // lands in the 25ms bucket
	}
	if got := h.CountAtOrBelow(5 * time.Microsecond); got != 10 {
		t.Fatalf("good@5µs = %d, want 10", got)
	}
	// 10ms threshold excludes the 25ms bucket even though some of its
	// members might be under — conservative by design.
	if got := h.CountAtOrBelow(10 * time.Millisecond); got != 10 {
		t.Fatalf("good@10ms = %d, want 10", got)
	}
	if got := h.CountAtOrBelow(25 * time.Millisecond); got != 15 {
		t.Fatalf("good@25ms = %d, want 15", got)
	}
	// A threshold between bucket edges rounds down.
	if got := h.CountAtOrBelow(7 * time.Microsecond); got != 10 {
		t.Fatalf("good@7µs = %d, want 10", got)
	}
}
