// Package metrics is a dependency-free, allocation-light
// instrumentation layer for the trigger processor: sharded atomic
// counters, gauges, callback instruments, and fixed-bucket latency
// histograms, organized into a process-wide Registry of named, labeled
// instruments.
//
// The paper's architecture (§5 predicate index, §5.1 trigger cache, §6
// task queue) is a set of performance claims; this package is how a
// live system observes them. Counters sit on token and match hot paths,
// so Add is a single atomic increment on one of several padded shards —
// no locks, no maps, no allocation. Registry lookups (by name + label
// set) happen once at wiring time; hot paths hold instrument pointers.
//
// The registry renders in Prometheus text exposition format (see
// prometheus.go) for the tmand ops listener's /metrics endpoint.
package metrics

import (
	"fmt"
	mrand "math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// counterShards stripes a Counter to keep concurrent drivers off one
// cache line. Must be a power of two.
const counterShards = 8

// shard is one padded counter cell; the padding keeps neighbouring
// shards on separate cache lines.
type shard struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded atomic counter.
type Counter struct {
	shards [counterShards]shard
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta. The shard is picked by the runtime's per-thread fast
// random source, spreading concurrent writers across cache lines.
func (c *Counter) Add(delta int64) {
	c.shards[mrand.Uint32()&(counterShards-1)].v.Add(delta)
}

// Value sums the shards.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value loads the value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Label is one name="value" pair identifying an instrument within its
// family.
type Label struct {
	Key, Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// instrument kinds, which double as the Prometheus TYPE line.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// instrument is one registered time series (or histogram).
type instrument struct {
	labels string // rendered {k="v",...}, "" for unlabeled

	counter *Counter
	gauge   *Gauge
	fn      func() int64 // callback counter/gauge view
	hist    *Histogram
}

// family groups the instruments sharing one metric name.
type family struct {
	name string
	help string
	kind string

	insts map[string]*instrument // keyed by rendered labels
	order []string               // rendered labels, sorted for output
}

// Registry is a process-wide set of named, labeled instruments.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // sorted family names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels produces the canonical `{k="v",...}` form: keys sorted,
// values escaped. Empty input renders as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register interns (name, labels) and returns the slot, creating the
// family on first sight. It panics on a kind conflict — instruments are
// wired once at Open, so a conflict is a programming error, not an
// operational condition.
func (r *Registry) register(name, help, kind string, labels []Label) *instrument {
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, insts: make(map[string]*instrument)}
		r.families[name] = fam
		r.names = append(r.names, name)
		sort.Strings(r.names)
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, fam.kind, kind))
	}
	inst, ok := fam.insts[rendered]
	if !ok {
		inst = &instrument{labels: rendered}
		fam.insts[rendered] = inst
		fam.order = append(fam.order, rendered)
		sort.Strings(fam.order)
	}
	return inst
}

// Counter interns and returns the counter (name, labels...). Repeated
// calls with the same identity return the same instrument.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	inst := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst.counter == nil && inst.fn == nil {
		inst.counter = &Counter{}
	}
	if inst.counter == nil {
		panic(fmt.Sprintf("metrics: %s%s registered as a callback", name, inst.labels))
	}
	return inst.counter
}

// Gauge interns and returns the gauge (name, labels...).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	inst := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst.gauge == nil && inst.fn == nil {
		inst.gauge = &Gauge{}
	}
	if inst.gauge == nil {
		panic(fmt.Sprintf("metrics: %s%s registered as a callback", name, inst.labels))
	}
	return inst.gauge
}

// CounterFunc registers a callback-backed counter view: fn is invoked
// at scrape time. Use it to export counters that already live in a
// subsystem's own Stats struct, so the registry and the struct cannot
// drift.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	inst := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	inst.fn = fn
}

// GaugeFunc registers a callback-backed gauge view (queue depths,
// resident counts).
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	inst := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	inst.fn = fn
}

// Histogram interns and returns a fixed-bucket latency histogram. Nil
// or empty bounds take DefaultLatencyBounds.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	inst := r.register(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst.hist == nil {
		inst.hist = NewHistogram(bounds)
	}
	return inst.hist
}

// value reads an instrument's current scalar (counters and gauges).
func (i *instrument) value() int64 {
	switch {
	case i.fn != nil:
		return i.fn()
	case i.counter != nil:
		return i.counter.Value()
	case i.gauge != nil:
		return i.gauge.Value()
	default:
		return 0
	}
}

// Value looks up a registered scalar instrument's current value — the
// equivalence tests use this to compare registry contents against
// legacy Stats fields.
func (r *Registry) Value(name string, labels ...Label) (int64, bool) {
	rendered := renderLabels(labels)
	r.mu.RLock()
	defer r.mu.RUnlock()
	fam, ok := r.families[name]
	if !ok {
		return 0, false
	}
	inst, ok := fam.insts[rendered]
	if !ok || inst.hist != nil {
		return 0, false
	}
	return inst.value(), true
}
