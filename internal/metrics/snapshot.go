package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time, JSON-serializable copy of a Registry —
// the unit of metrics federation. A node serializes its registry with
// Registry.Snapshot, ships it over the wire as JSON, and the fleet
// layer merges the per-node snapshots with Merge. Histograms carry raw
// (non-cumulative) bucket counts so bucket-wise merging is a plain
// elementwise sum.
type Snapshot struct {
	Node     string       `json:"node,omitempty"`
	Families []FamilySnap `json:"families"`
}

// FamilySnap is one metric family: every instrument sharing a name.
type FamilySnap struct {
	Name  string     `json:"name"`
	Help  string     `json:"help,omitempty"`
	Kind  string     `json:"kind"`
	Insts []InstSnap `json:"instruments"`
}

// InstSnap is one instrument. Labels is the canonical rendered
// `{k="v",...}` form ("" for unlabeled); exactly one of Value (scalar
// kinds) or Hist is meaningful.
type InstSnap struct {
	Labels string    `json:"labels,omitempty"`
	Value  int64     `json:"value,omitempty"`
	Hist   *HistSnap `json:"hist,omitempty"`
}

// HistSnap is a histogram's raw state: per-bucket counts (len
// bounds+1, last is +Inf overflow), NOT cumulative.
type HistSnap struct {
	BoundsNs []int64 `json:"bounds_ns"`
	Buckets  []int64 `json:"buckets"`
	SumNs    int64   `json:"sum_ns"`
	Count    int64   `json:"count"`
}

// LabelString renders labels in the registry's canonical form — the
// key callers need to look instruments up inside a Snapshot.
func LabelString(labels ...Label) string { return renderLabels(labels) }

// Snapshot copies the registry's current state. Counter/gauge reads
// and per-bucket histogram loads are individually atomic but not
// mutually consistent — fine for federation, which is a scrape, not a
// transaction.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{Families: make([]FamilySnap, 0, len(r.names))}
	for _, name := range r.names {
		fam := r.families[name]
		fs := FamilySnap{Name: fam.name, Help: fam.help, Kind: fam.kind,
			Insts: make([]InstSnap, 0, len(fam.order))}
		for _, l := range fam.order {
			inst := fam.insts[l]
			is := InstSnap{Labels: l}
			if h := inst.hist; h != nil {
				hs := &HistSnap{
					BoundsNs: append([]int64(nil), h.bounds...),
					Buckets:  make([]int64, len(h.buckets)),
					SumNs:    h.sum.Load(),
					Count:    h.count.Load(),
				}
				for i := range h.buckets {
					hs.Buckets[i] = h.buckets[i].Load()
				}
				is.Hist = hs
			} else {
				is.Value = inst.value()
			}
			fs.Insts = append(fs.Insts, is)
		}
		s.Families = append(s.Families, fs)
	}
	return s
}

// Family finds a family by name.
func (s *Snapshot) Family(name string) (FamilySnap, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnap{}, false
}

// Value finds a scalar instrument by family name and rendered labels.
func (s *Snapshot) Value(name, labels string) (int64, bool) {
	f, ok := s.Family(name)
	if !ok {
		return 0, false
	}
	for _, inst := range f.Insts {
		if inst.Labels == labels && inst.Hist == nil {
			return inst.Value, true
		}
	}
	return 0, false
}

// Histogram finds a histogram instrument by family name and rendered
// labels.
func (s *Snapshot) Histogram(name, labels string) (*HistSnap, bool) {
	f, ok := s.Family(name)
	if !ok {
		return nil, false
	}
	for _, inst := range f.Insts {
		if inst.Labels == labels && inst.Hist != nil {
			return inst.Hist, true
		}
	}
	return nil, false
}

// FamilyTotal sums every scalar instrument in a family — the headline
// number for a labeled counter like tman_tokens_total across all its
// label sets.
func (s *Snapshot) FamilyTotal(name string) int64 {
	f, ok := s.Family(name)
	if !ok {
		return 0
	}
	var total int64
	for _, inst := range f.Insts {
		if inst.Hist == nil {
			total += inst.Value
		}
	}
	return total
}

// CountAtOrBelow counts observations known to be ≤ d: whole buckets
// whose upper bound is ≤ d (conservative, matching
// Histogram.CountAtOrBelow).
func (h *HistSnap) CountAtOrBelow(d time.Duration) int64 {
	var n int64
	for i, b := range h.BoundsNs {
		if b > int64(d) {
			break
		}
		if i < len(h.Buckets) {
			n += h.Buckets[i]
		}
	}
	return n
}

// boundsEqual reports whether two histograms share a bucket layout and
// can be merged bucket-wise.
func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge folds per-node snapshots into one fleet-scope snapshot with
// the federation semantics per metric kind:
//
//   - counters: summed across nodes (totals are totals);
//   - gauges: NOT summed — an instantaneous value from three nodes is
//     three facts, so each instance is re-labeled with node="<id>";
//   - histograms: merged bucket-wise when every node shares the bucket
//     layout (all latency histograms use DefaultLatencyBounds, so this
//     is the common case); on a layout mismatch they degrade to
//     per-node labeled series rather than summing incomparable buckets.
//
// Ordering is deterministic: families sorted by name, instruments by
// rendered labels, node labels in sorted node-id order.
func Merge(snaps map[string]*Snapshot) *Snapshot {
	nodes := make([]string, 0, len(snaps))
	for id, s := range snaps {
		if s != nil {
			nodes = append(nodes, id)
		}
	}
	sort.Strings(nodes)

	type instKey struct{ fam, labels string }
	famMeta := map[string]*FamilySnap{}
	var famOrder []string
	scalars := map[instKey]int64{}           // summed counters
	perNode := map[instKey][]InstSnap{}      // node-labeled gauges (and mismatched hists)
	hists := map[instKey]*HistSnap{}         // bucket-wise merged histograms
	histSources := map[instKey][]histEntry{} // raw per-node hists, to detect mismatches
	var keyOrder []instKey
	seenKey := map[instKey]bool{}

	for _, id := range nodes {
		for _, f := range snaps[id].Families {
			if famMeta[f.Name] == nil {
				famMeta[f.Name] = &FamilySnap{Name: f.Name, Help: f.Help, Kind: f.Kind}
				famOrder = append(famOrder, f.Name)
			}
			meta := famMeta[f.Name]
			for _, inst := range f.Insts {
				k := instKey{f.Name, inst.Labels}
				if !seenKey[k] {
					seenKey[k] = true
					keyOrder = append(keyOrder, k)
				}
				switch {
				case inst.Hist != nil && meta.Kind == kindHistogram:
					histSources[k] = append(histSources[k], histEntry{node: id, h: inst.Hist})
				case meta.Kind == kindGauge:
					perNode[k] = append(perNode[k], InstSnap{
						Labels: mergeLabels(inst.Labels, "node", id),
						Value:  inst.Value,
					})
				default:
					scalars[k] += inst.Value
				}
			}
		}
	}

	// Resolve histograms: bucket-wise merge when layouts agree,
	// per-node labels when they don't.
	for k, entries := range histSources {
		mergeable := true
		for _, e := range entries[1:] {
			if !boundsEqual(e.h.BoundsNs, entries[0].h.BoundsNs) {
				mergeable = false
				break
			}
		}
		if !mergeable {
			for _, e := range entries {
				perNode[k] = append(perNode[k], InstSnap{
					Labels: mergeLabels(k.labels, "node", e.node),
					Hist:   e.h,
				})
			}
			continue
		}
		m := &HistSnap{
			BoundsNs: append([]int64(nil), entries[0].h.BoundsNs...),
			Buckets:  make([]int64, len(entries[0].h.Buckets)),
		}
		for _, e := range entries {
			m.SumNs += e.h.SumNs
			m.Count += e.h.Count
			for i, c := range e.h.Buckets {
				if i < len(m.Buckets) {
					m.Buckets[i] += c
				}
			}
		}
		hists[k] = m
	}

	sort.Strings(famOrder)
	out := &Snapshot{Families: make([]FamilySnap, 0, len(famOrder))}
	for _, name := range famOrder {
		meta := famMeta[name]
		fs := FamilySnap{Name: name, Help: meta.Help, Kind: meta.Kind}
		for _, k := range keyOrder {
			if k.fam != name {
				continue
			}
			if h, ok := hists[k]; ok {
				fs.Insts = append(fs.Insts, InstSnap{Labels: k.labels, Hist: h})
			}
			if insts, ok := perNode[k]; ok {
				fs.Insts = append(fs.Insts, insts...)
			}
			if v, ok := scalars[k]; ok {
				fs.Insts = append(fs.Insts, InstSnap{Labels: k.labels, Value: v})
			}
		}
		sort.SliceStable(fs.Insts, func(i, j int) bool { return fs.Insts[i].Labels < fs.Insts[j].Labels })
		out.Families = append(out.Families, fs)
	}
	return out
}

type histEntry struct {
	node string
	h    *HistSnap
}

// WritePrometheus renders the snapshot in the same text exposition
// format Registry.WritePrometheus produces, so /metrics?scope=cluster
// is scrapeable by the same collectors as /metrics.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, f := range s.Families {
		help := f.Help
		if help == "" {
			help = f.Name
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(help)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, inst := range f.Insts {
			if h := inst.Hist; h != nil {
				var cum int64
				for i, c := range h.Buckets {
					cum += c
					le := "+Inf"
					if i < len(h.BoundsNs) {
						le = formatSeconds(h.BoundsNs[i])
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, mergeLabels(inst.Labels, "le", le), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, inst.Labels, formatSeconds(h.SumNs)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, inst.Labels, h.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.Name, inst.Labels, inst.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// Render is WritePrometheus into a string.
func (s *Snapshot) Render() string {
	var b strings.Builder
	s.WritePrometheus(&b)
	return b.String()
}
