package metrics

import (
	"testing"
	"time"
)

// Edge cases around the quantile extractor: empty histograms must
// refuse, single observations must bracket correctly, and observations
// beyond the last bucket bound must land in the overflow bucket without
// inventing durations larger than the largest finite bound.

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewHistogram(nil)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if d, ok := h.Quantile(q); ok || d != 0 {
			t.Fatalf("Quantile(%v) on empty histogram = %v, %v; want 0, false", q, d, ok)
		}
		if lo, hi, ok := h.QuantileBounds(q); ok || lo != 0 || hi != 0 {
			t.Fatalf("QuantileBounds(%v) on empty histogram = %v, %v, %v", q, lo, hi, ok)
		}
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(3 * time.Microsecond) // lands in the (2.5µs, 5µs] bucket
	for _, q := range []float64{0, 0.5, 1} {
		lo, hi, ok := h.QuantileBounds(q)
		if !ok {
			t.Fatalf("QuantileBounds(%v) not ok with one observation", q)
		}
		if lo != 2500*time.Nanosecond || hi != 5*time.Microsecond {
			t.Fatalf("QuantileBounds(%v) = [%v, %v], want [2.5µs, 5µs]", q, lo, hi)
		}
	}
	if h.Count() != 1 || h.Sum() != 3*time.Microsecond {
		t.Fatalf("Count=%d Sum=%v", h.Count(), h.Sum())
	}
}

func TestQuantileBeyondLastBound(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(time.Minute) // beyond the 10s top bound: overflow bucket
	d, ok := h.Quantile(0.5)
	last := time.Duration(DefaultLatencyBounds[len(DefaultLatencyBounds)-1])
	if !ok || d != last {
		t.Fatalf("Quantile(0.5) = %v, %v; want the largest finite bound %v", d, ok, last)
	}
	lo, hi, ok := h.QuantileBounds(0.5)
	if !ok || lo != last || hi != last {
		t.Fatalf("QuantileBounds(0.5) = [%v, %v], %v; want [%v, %v]", lo, hi, ok, last, last)
	}
	// The observation must sit in the +Inf overflow bucket alone.
	cum, total := h.snapshot()
	if total != 1 || cum[len(cum)-1] != 1 || cum[len(cum)-2] != 0 {
		t.Fatalf("overflow observation not in +Inf bucket: cum=%v total=%d", cum, total)
	}
}

func TestQuantileMixedWithOverflow(t *testing.T) {
	h := NewHistogram([]int64{int64(time.Millisecond), int64(10 * time.Millisecond)})
	for i := 0; i < 9; i++ {
		h.Observe(500 * time.Microsecond)
	}
	h.Observe(time.Hour) // one overflow outlier
	if d, ok := h.Quantile(0.5); !ok || d != time.Millisecond {
		t.Fatalf("median = %v, %v; want 1ms", d, ok)
	}
	// p100 hits the overflow bucket and reports the largest finite bound.
	if d, ok := h.Quantile(1); !ok || d != 10*time.Millisecond {
		t.Fatalf("p100 = %v, %v; want 10ms (largest finite bound)", d, ok)
	}
}

func TestQuantileClampsOutOfRangeQ(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(time.Microsecond)
	for _, q := range []float64{-1, 2} {
		if _, ok := h.Quantile(q); !ok {
			t.Fatalf("Quantile(%v) should clamp into [0,1] and succeed", q)
		}
	}
}

func TestNegativeObservationClampedToZero(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(-5 * time.Second)
	if h.Sum() != 0 || h.Count() != 1 {
		t.Fatalf("negative observation: Sum=%v Count=%d, want 0 and 1", h.Sum(), h.Count())
	}
	if d, ok := h.Quantile(0.5); !ok || d != time.Microsecond {
		t.Fatalf("Quantile(0.5) = %v, %v; want the smallest bound 1µs", d, ok)
	}
}
