package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// CheckExposition validates Prometheus text exposition format (0.0.4)
// strictly enough to catch a broken federation renderer: well-formed
// HELP/TYPE comments, metric-name and label syntax, parseable sample
// values, every sample preceded by its family's TYPE line, and
// histogram invariants (monotone cumulative buckets, _count equal to
// the +Inf bucket). The cluster-scrape smoke step fails on the first
// error.
func CheckExposition(text string) error {
	types := map[string]string{}
	// histState tracks the in-progress histogram checks per family.
	type histState struct {
		lastCum  int64
		infSeen  bool
		infVal   int64
		countVal int64
		hasCount bool
	}
	hists := map[string]*histState{} // keyed family + base labels
	for lineno, line := range strings.Split(text, "\n") {
		n := lineno + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", n, line)
			}
			if !validMetricName(fields[2]) {
				return fmt.Errorf("line %d: bad metric name %q", n, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE needs a kind", n)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q", n, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", n, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", n, err)
		}
		fam := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && types[base] == "histogram" {
				fam, suffix = base, sfx
				break
			}
		}
		if _, ok := types[fam]; !ok {
			return fmt.Errorf("line %d: sample %s before its TYPE line", n, name)
		}
		if types[fam] == "histogram" && suffix == "" {
			return fmt.Errorf("line %d: bare sample %s in histogram family", n, name)
		}
		if types[fam] == "histogram" {
			le, base := splitLE(labels)
			key := fam + base
			st := hists[key]
			if st == nil {
				st = &histState{}
				hists[key] = st
			}
			switch suffix {
			case "_bucket":
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", n)
				}
				cum := int64(value)
				if cum < st.lastCum {
					return fmt.Errorf("line %d: non-monotone cumulative bucket in %s%s", n, fam, base)
				}
				st.lastCum = cum
				if le == "+Inf" {
					st.infSeen = true
					st.infVal = cum
				}
			case "_count":
				st.hasCount = true
				st.countVal = int64(value)
			}
		}
	}
	for key, st := range hists {
		if !st.infSeen {
			return fmt.Errorf("histogram %s has no +Inf bucket", key)
		}
		if !st.hasCount {
			return fmt.Errorf("histogram %s has no _count", key)
		}
		if st.countVal != st.infVal {
			return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", key, st.countVal, st.infVal)
		}
	}
	return nil
}

// parseSample splits `name{labels} value` (labels optional) and parses
// the value as a float.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i : j+1]
		rest = strings.TrimSpace(rest[j+1:])
		if err := checkLabels(labels); err != nil {
			return "", "", 0, err
		}
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("no value in %q", line)
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("bad metric name %q", name)
	}
	// A sample may carry an optional timestamp after the value.
	valField := strings.Fields(rest)
	if len(valField) < 1 || len(valField) > 2 {
		return "", "", 0, fmt.Errorf("bad sample tail %q", rest)
	}
	v, perr := strconv.ParseFloat(valField[0], 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q", valField[0])
	}
	return name, labels, v, nil
}

// checkLabels validates a rendered `{k="v",...}` set.
func checkLabels(rendered string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(rendered, "{"), "}")
	if inner == "" {
		return nil
	}
	for len(inner) > 0 {
		eq := strings.Index(inner, `="`)
		if eq <= 0 || !validLabelName(inner[:eq]) {
			return fmt.Errorf("bad label in %q", rendered)
		}
		rest := inner[eq+2:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", rendered)
		}
		inner = rest[end+1:]
		if inner == "" {
			break
		}
		if !strings.HasPrefix(inner, ",") {
			return fmt.Errorf("bad label separator in %q", rendered)
		}
		inner = inner[1:]
	}
	return nil
}

// splitLE extracts the le="..." pair from a rendered label set,
// returning its value and the remaining labels (the histogram's own
// identity, used to key per-series bucket checks).
func splitLE(rendered string) (le, base string) {
	inner := strings.TrimSuffix(strings.TrimPrefix(rendered, "{"), "}")
	var kept []string
	for _, part := range strings.Split(inner, ",") {
		if v, ok := strings.CutPrefix(part, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		if part != "" {
			kept = append(kept, part)
		}
	}
	if len(kept) == 0 {
		return le, ""
	}
	return le, "{" + strings.Join(kept, ",") + "}"
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
