package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one sharded counter from 8 goroutines
// while a reader polls Value; the final sum must be exact. Run under
// -race this doubles as the data-race stress test.
func TestCounterConcurrent(t *testing.T) {
	const (
		workers = 8
		perG    = 20000
	)
	var c Counter
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		prev := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := c.Value()
			if v < prev {
				t.Errorf("counter went backwards: %d -> %d", prev, v)
				return
			}
			prev = v
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := c.Value(); got != workers*perG {
		t.Fatalf("counter = %d, want %d", got, workers*perG)
	}
}

// TestHistogramConcurrent has 8 goroutines observing while readers pull
// quantiles and counts; the final count and sum must be exact.
func TestHistogramConcurrent(t *testing.T) {
	const (
		workers = 8
		perG    = 10000
	)
	h := NewHistogram(nil)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.Count()
			h.Quantile(0.99)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := h.Count(); got != workers*perG {
		t.Fatalf("count = %d, want %d", got, workers*perG)
	}
}

// TestRegistryConcurrent interns instruments and scrapes concurrently.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("tman_test_total", "help", L("worker", "w")).Inc()
				r.Histogram("tman_test_seconds", "help", nil).Observe(time.Microsecond)
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v, ok := r.Value("tman_test_total", L("worker", "w")); !ok || v != 8*500 {
		t.Fatalf("counter = %d ok=%v, want %d", v, ok, 8*500)
	}
}

// trueQuantile is the reference order statistic matching the
// histogram's rank convention (ceil(q*n), 1-based).
func trueQuantile(sorted []time.Duration, q float64) time.Duration {
	rank := int(q * float64(len(sorted)))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestHistogramQuantileBounds is the property test: for random sample
// sets drawn from several distributions, the histogram's quantile
// bracket must contain the true sample quantile.
func TestHistogramQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() time.Duration{
		"uniform": func() time.Duration {
			return time.Duration(rng.Int63n(int64(2 * time.Second)))
		},
		"exponentialish": func() time.Duration {
			// Heavy-tailed: mostly microseconds, occasional near-second.
			return time.Duration(float64(time.Microsecond) * (1 / (rng.Float64() + 1e-6)))
		},
		"bimodal": func() time.Duration {
			if rng.Intn(2) == 0 {
				return 3*time.Microsecond + time.Duration(rng.Int63n(int64(time.Microsecond)))
			}
			return 80*time.Millisecond + time.Duration(rng.Int63n(int64(10*time.Millisecond)))
		},
	}
	for name, draw := range distributions {
		for trial := 0; trial < 5; trial++ {
			h := NewHistogram(nil)
			n := 100 + rng.Intn(5000)
			samples := make([]time.Duration, n)
			for i := range samples {
				d := draw()
				if d > 5*time.Second {
					d = 5 * time.Second // keep within finite buckets
				}
				samples[i] = d
				h.Observe(d)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
				lo, hi, ok := h.QuantileBounds(q)
				if !ok {
					t.Fatalf("%s trial %d: empty histogram", name, trial)
				}
				want := trueQuantile(samples, q)
				if want < lo || want > hi {
					t.Fatalf("%s trial %d q=%v: true quantile %v outside bracket [%v, %v]",
						name, trial, q, want, lo, hi)
				}
			}
		}
	}
}

// TestHistogramQuantileEdges pins the empty and single-sample cases.
func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram(nil)
	if _, ok := h.Quantile(0.5); ok {
		t.Fatal("quantile of empty histogram reported ok")
	}
	h.Observe(3 * time.Millisecond)
	d, ok := h.Quantile(0.99)
	if !ok || d < 3*time.Millisecond {
		t.Fatalf("quantile = %v ok=%v, want >= 3ms", d, ok)
	}
}

// TestWritePrometheusFormat checks the exposition format shape.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("tman_tokens_total", "tokens accepted").Add(5)
	r.Gauge("tman_queue_depth", "queued tokens").Set(2)
	r.CounterFunc("tman_view_total", "callback view", func() int64 { return 9 }, L("kind", "x"))
	r.Histogram("tman_lat_seconds", "latency", []int64{int64(time.Millisecond), int64(time.Second)}).
		Observe(2 * time.Millisecond)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE tman_tokens_total counter",
		"tman_tokens_total 5",
		"# TYPE tman_queue_depth gauge",
		"tman_queue_depth 2",
		`tman_view_total{kind="x"} 9`,
		`tman_lat_seconds_bucket{le="0.001"} 0`,
		`tman_lat_seconds_bucket{le="1"} 1`,
		`tman_lat_seconds_bucket{le="+Inf"} 1`,
		"tman_lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
