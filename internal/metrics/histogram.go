package metrics

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds are the fixed bucket upper bounds, in
// nanoseconds, used by every latency histogram unless overridden:
// roughly log-spaced from 1µs to 10s. Fixed buckets keep Observe
// allocation-free and make quantile extraction a single cumulative
// scan.
var DefaultLatencyBounds = []int64{
	int64(1 * time.Microsecond),
	int64(2500 * time.Nanosecond),
	int64(5 * time.Microsecond),
	int64(10 * time.Microsecond),
	int64(25 * time.Microsecond),
	int64(50 * time.Microsecond),
	int64(100 * time.Microsecond),
	int64(250 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(2500 * time.Microsecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(25 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(250 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
	int64(2500 * time.Millisecond),
	int64(5 * time.Second),
	int64(10 * time.Second),
}

// Histogram is a fixed-bucket latency histogram. Observations are
// durations in nanoseconds; buckets hold counts of observations at or
// below each upper bound, with one implicit overflow bucket (+Inf).
// Observe is lock-free: one atomic add for the bucket, one for the
// running sum, one for the count.
type Histogram struct {
	bounds  []int64 // sorted upper bounds, ns
	buckets []atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// NewHistogram builds a histogram with the given sorted upper bounds in
// nanoseconds (nil or empty takes DefaultLatencyBounds).
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1), // +1 = +Inf overflow
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[h.bucketOf(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// bucketOf binary-searches the bucket index whose upper bound is the
// first >= ns; len(bounds) is the overflow bucket.
func (h *Histogram) bucketOf(ns int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// snapshot copies the bucket counts (cumulative form) and the total.
func (h *Histogram) snapshot() (cum []int64, total int64) {
	cum = make([]int64, len(h.buckets))
	var running int64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum, running
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]) of the
// observed samples: the upper edge of the first bucket whose cumulative
// count reaches q·total. Observations in the overflow bucket report the
// largest finite bound. ok is false when the histogram is empty.
func (h *Histogram) Quantile(q float64) (d time.Duration, ok bool) {
	_, hi, ok := h.QuantileBounds(q)
	return hi, ok
}

// QuantileBounds brackets the true q-quantile of the observed samples:
// the quantile lies within [lo, hi], where hi is the selected bucket's
// upper edge and lo is the previous bucket's. For the overflow bucket,
// hi is the largest finite bound (an under-estimate; the histogram
// cannot do better, which is why the top bound is 10s).
func (h *Histogram) QuantileBounds(q float64) (lo, hi time.Duration, ok bool) {
	cum, total := h.snapshot()
	if total == 0 {
		return 0, 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic at quantile q.
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	for i, c := range cum {
		if c >= rank {
			if i > 0 {
				lo = time.Duration(h.bounds[i-1])
			}
			if i < len(h.bounds) {
				hi = time.Duration(h.bounds[i])
			} else {
				hi = time.Duration(h.bounds[len(h.bounds)-1])
			}
			return lo, hi, true
		}
	}
	// Unreachable: the overflow bucket's cumulative count equals total.
	last := time.Duration(h.bounds[len(h.bounds)-1])
	return last, last, true
}
