package metrics

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds are the fixed bucket upper bounds, in
// nanoseconds, used by every latency histogram unless overridden:
// roughly log-spaced from 1µs to 10s. Fixed buckets keep Observe
// allocation-free and make quantile extraction a single cumulative
// scan.
var DefaultLatencyBounds = []int64{
	int64(1 * time.Microsecond),
	int64(2500 * time.Nanosecond),
	int64(5 * time.Microsecond),
	int64(10 * time.Microsecond),
	int64(25 * time.Microsecond),
	int64(50 * time.Microsecond),
	int64(100 * time.Microsecond),
	int64(250 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(2500 * time.Microsecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(25 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(250 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
	int64(2500 * time.Millisecond),
	int64(5 * time.Second),
	int64(10 * time.Second),
}

// Exemplar links one histogram bucket to a concrete recent
// observation: the trace sequence number that produced it, the
// observed value, and when it landed. A p999 bucket in /statusz is an
// abstract count; its exemplar is a trace you can actually open.
type Exemplar struct {
	Seq     uint64        `json:"seq"`
	Value   time.Duration `json:"value_ns"`
	At      int64         `json:"at_unix_ns"`
	UpperNs int64         `json:"bucket_upper_ns"` // bucket edge; 0 for +Inf
}

// exemplarCell is one bucket's lock-free exemplar slot. Fields are
// written independently (three atomic stores), so a reader racing a
// writer may see fields from two different observations — each field
// is still a real recent observation in this bucket, which is all a
// debugging pointer needs. A seqlock would buy exactness the use case
// does not require at the price of hot-path fencing.
type exemplarCell struct {
	seq atomic.Uint64
	ns  atomic.Int64
	at  atomic.Int64
}

// Histogram is a fixed-bucket latency histogram. Observations are
// durations in nanoseconds; buckets hold counts of observations at or
// below each upper bound, with one implicit overflow bucket (+Inf).
// Observe is lock-free: one atomic add for the bucket, one for the
// running sum, one for the count.
type Histogram struct {
	bounds  []int64 // sorted upper bounds, ns
	buckets []atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
	// exemplars holds one recent traced observation per bucket
	// (including +Inf), populated only by ObserveEx so plain Observe
	// stays three atomic adds.
	exemplars []exemplarCell
}

// NewHistogram builds a histogram with the given sorted upper bounds in
// nanoseconds (nil or empty takes DefaultLatencyBounds).
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{
		bounds:    bounds,
		buckets:   make([]atomic.Int64, len(bounds)+1), // +1 = +Inf overflow
		exemplars: make([]exemplarCell, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[h.bucketOf(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// ObserveEx records one duration and stamps the landing bucket's
// exemplar with the trace sequence number that produced it. Seq 0
// (an untraced observation) degrades to a plain Observe.
func (h *Histogram) ObserveEx(d time.Duration, seq uint64) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	b := h.bucketOf(ns)
	h.buckets[b].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
	if seq != 0 {
		ex := &h.exemplars[b]
		ex.seq.Store(seq)
		ex.ns.Store(ns)
		ex.at.Store(time.Now().UnixNano())
	}
}

// exemplarAt reads one bucket's exemplar; ok is false when the bucket
// never received a traced observation.
func (h *Histogram) exemplarAt(b int) (Exemplar, bool) {
	ex := &h.exemplars[b]
	seq := ex.seq.Load()
	if seq == 0 {
		return Exemplar{}, false
	}
	e := Exemplar{Seq: seq, Value: time.Duration(ex.ns.Load()), At: ex.at.Load()}
	if b < len(h.bounds) {
		e.UpperNs = h.bounds[b]
	}
	return e, true
}

// Exemplars returns every populated bucket exemplar, lowest bucket
// first.
func (h *Histogram) Exemplars() []Exemplar {
	var out []Exemplar
	for b := range h.exemplars {
		if e, ok := h.exemplarAt(b); ok {
			out = append(out, e)
		}
	}
	return out
}

// QuantileExemplar resolves the q-quantile to the exemplar of the
// bucket holding that order statistic — the concrete recent trace
// behind an abstract percentile. When the quantile bucket itself holds
// no traced observation, it falls back to the nearest populated bucket
// at or above it (tail quantiles care about "at least this slow"), and
// failing that the nearest below. ok is false when the histogram has
// no exemplars at all.
func (h *Histogram) QuantileExemplar(q float64) (Exemplar, bool) {
	cum, total := h.snapshot()
	if total == 0 {
		return Exemplar{}, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	target := 0
	for i, c := range cum {
		if c >= rank {
			target = i
			break
		}
	}
	for b := target; b < len(h.exemplars); b++ {
		if e, ok := h.exemplarAt(b); ok {
			return e, true
		}
	}
	for b := target - 1; b >= 0; b-- {
		if e, ok := h.exemplarAt(b); ok {
			return e, true
		}
	}
	return Exemplar{}, false
}

// CountAtOrBelow reports how many observations landed in buckets whose
// upper bound is <= d — the "good" count for a latency SLO with
// threshold d. The bucket edge rounds the threshold down, so the count
// is conservative: an observation is only counted good when its whole
// bucket is provably under the threshold.
func (h *Histogram) CountAtOrBelow(d time.Duration) int64 {
	ns := int64(d)
	var good int64
	for i, bound := range h.bounds {
		if bound > ns {
			break
		}
		good += h.buckets[i].Load()
	}
	return good
}

// bucketOf binary-searches the bucket index whose upper bound is the
// first >= ns; len(bounds) is the overflow bucket.
func (h *Histogram) bucketOf(ns int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// snapshot copies the bucket counts (cumulative form) and the total.
func (h *Histogram) snapshot() (cum []int64, total int64) {
	cum = make([]int64, len(h.buckets))
	var running int64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum, running
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]) of the
// observed samples: the upper edge of the first bucket whose cumulative
// count reaches q·total. Observations in the overflow bucket report the
// largest finite bound. ok is false when the histogram is empty.
func (h *Histogram) Quantile(q float64) (d time.Duration, ok bool) {
	_, hi, ok := h.QuantileBounds(q)
	return hi, ok
}

// QuantileBounds brackets the true q-quantile of the observed samples:
// the quantile lies within [lo, hi], where hi is the selected bucket's
// upper edge and lo is the previous bucket's. For the overflow bucket,
// hi is the largest finite bound (an under-estimate; the histogram
// cannot do better, which is why the top bound is 10s).
func (h *Histogram) QuantileBounds(q float64) (lo, hi time.Duration, ok bool) {
	cum, total := h.snapshot()
	if total == 0 {
		return 0, 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic at quantile q.
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	for i, c := range cum {
		if c >= rank {
			if i > 0 {
				lo = time.Duration(h.bounds[i-1])
			}
			if i < len(h.bounds) {
				hi = time.Duration(h.bounds[i])
			} else {
				hi = time.Duration(h.bounds[len(h.bounds)-1])
			}
			return lo, hi, true
		}
	}
	// Unreachable: the overflow bucket's cumulative count equals total.
	last := time.Duration(h.bounds[len(h.bounds)-1])
	return last, last, true
}
