package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4): one # HELP / # TYPE pair per
// family, then one sample line per instrument. Histograms emit
// cumulative _bucket series with `le` upper bounds in seconds, plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	r.mu.RUnlock()
	for _, name := range names {
		r.mu.RLock()
		fam := r.families[name]
		order := append([]string(nil), fam.order...)
		insts := make([]*instrument, 0, len(order))
		for _, l := range order {
			insts = append(insts, fam.insts[l])
		}
		help, kind := fam.help, fam.kind
		r.mu.RUnlock()

		// Every family gets a # HELP line, even when no help text was
		// registered: scrapers and exposition-format linters treat a
		// family without HELP as malformed. Fall back to the name.
		if help == "" {
			help = name
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind); err != nil {
			return err
		}
		for _, inst := range insts {
			if inst.hist != nil {
				if err := writeHistogram(w, name, inst.labels, inst.hist); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", name, inst.labels, inst.value()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram's _bucket/_sum/_count series.
// Bucket bounds are stored in nanoseconds but exposed in seconds, the
// Prometheus convention for *_seconds histograms.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	cum, total := h.snapshot()
	for i, c := range cum {
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatSeconds(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", le), c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatSeconds(int64(h.Sum()))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, total)
	return err
}

// formatSeconds renders nanoseconds as a decimal seconds literal
// without float artifacts (2500000 → "0.0025").
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition
// format's HELP escaping rules.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// mergeLabels splices an extra label into an already-rendered label
// set.
func mergeLabels(rendered, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(rendered, "}") + "," + extra + "}"
}
