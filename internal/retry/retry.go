// Package retry implements the failure-handling policy of the trigger
// processor: bounded retries with exponential backoff and jitter,
// per-attempt timeouts, and a transient/permanent error classification.
//
// TriggerMan's host DBMS commits and moves on (§2, §6), so the trigger
// processor alone decides what happens to a failing token or action.
// The contract this package supports: *transient* faults (a flaky disk,
// a timed-out action) are retried under an exponential-backoff policy;
// *permanent* faults (unknown column, type mismatch, a panicking
// action) fail fast so the caller can quarantine the work item in the
// dead-letter queue instead of burning driver time on it.
package retry

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"
)

// Class is the retryability classification of an error.
type Class int

const (
	// ClassUnknown means the error carries no explicit marker; policies
	// treat unknown errors as permanent (fail fast) so semantic errors
	// are never retried by accident.
	ClassUnknown Class = iota
	// ClassTransient errors are worth retrying.
	ClassTransient
	// ClassPermanent errors must not be retried.
	ClassPermanent
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	default:
		return "unknown"
	}
}

// classified wraps an error with an explicit class; it unwraps so
// errors.Is/As keep seeing the cause.
type classified struct {
	err   error
	class Class
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// Transient marks err as retryable. Marking nil returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: ClassTransient}
}

// Permanent marks err as not retryable. Marking nil returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: ClassPermanent}
}

// ClassOf reports the innermost explicit classification of err (the
// mark closest to the fault wins), or ClassUnknown when err carries no
// marker. A *PanicError anywhere in the chain is permanent, and so is
// an *Exhausted wrapper: once one policy has burned its attempts, an
// enclosing policy must not retry the whole batch again.
func ClassOf(err error) Class {
	var pe *PanicError
	if errors.As(err, &pe) {
		return ClassPermanent
	}
	var ex *Exhausted
	if errors.As(err, &ex) {
		return ClassPermanent
	}
	class := ClassUnknown
	for e := err; e != nil; e = errors.Unwrap(e) {
		if c, ok := e.(*classified); ok {
			class = c.class
		}
	}
	return class
}

// IsTransient reports whether err is explicitly marked transient.
func IsTransient(err error) bool { return ClassOf(err) == ClassTransient }

// PanicError is a recovered panic converted into an error, with the
// goroutine stack captured at recovery time. It classifies as
// permanent: a panicking action is deterministic until someone fixes
// it, so retrying would only re-crash.
type PanicError struct {
	Value interface{}
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Recovered converts a recover() value into a *PanicError with the
// current stack. It returns nil for a nil recover value.
func Recovered(v interface{}) error {
	if v == nil {
		return nil
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// TimeoutError reports an attempt that exceeded the policy's
// AttemptTimeout. It classifies as transient.
type TimeoutError struct {
	Timeout time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("retry: attempt exceeded %v timeout", e.Timeout)
}

// Exhausted wraps the final error after every allowed attempt of a
// transient fault failed.
type Exhausted struct {
	Attempts int
	Err      error
}

// Error implements error.
func (e *Exhausted) Error() string {
	return fmt.Sprintf("retry: %d attempts exhausted: %v", e.Attempts, e.Err)
}

// Unwrap exposes the final attempt's error.
func (e *Exhausted) Unwrap() error { return e.Err }

// Policy bounds a retry loop. The zero value is usable: it takes the
// package defaults (4 attempts, 1ms base delay doubling to a 100ms
// cap, 50% jitter, no attempt timeout).
type Policy struct {
	// MaxAttempts is the total number of tries (first attempt
	// included); values below 1 take the default of 4.
	MaxAttempts int
	// BaseDelay is the sleep before the second attempt; it doubles per
	// attempt. Default 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 100ms.
	MaxDelay time.Duration
	// Jitter in [0,1] randomizes each delay by ±Jitter/2 of its value so
	// concurrent retries decorrelate. Default 0.5.
	Jitter float64
	// AttemptTimeout bounds one attempt; 0 means no timeout. A timed-out
	// attempt counts as a transient failure. The attempt's goroutine is
	// abandoned, not killed — work must tolerate that.
	AttemptTimeout time.Duration
	// Classify overrides the default classification (ClassOf). Unknown
	// results fall back to ClassOf's verdict.
	Classify func(error) Class
	// Sleep replaces time.Sleep (tests). Nil means time.Sleep.
	Sleep func(time.Duration)
	// Observe, when set, receives the outcome of every Do call: the
	// number of attempts made and the final error (nil on success).
	// Observability hooks count attempts-1 as retries and watch for
	// *Exhausted.
	Observe func(attempts int, err error)
}

// WithDefaults fills unset fields with the package defaults.
func (p Policy) WithDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.5
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Backoff returns the jittered delay before attempt (1-based: the
// delay after the attempt-th failure). The result always lies within
// [BaseDelay, MaxDelay]: jitter decorrelates concurrent retries but
// must neither hammer faster than the configured floor nor overshoot
// the cap.
func (p Policy) Backoff(attempt int) time.Duration {
	p = p.WithDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		// Spread over [d*(1-j/2), d*(1+j/2)], then clamp into bounds.
		span := float64(d) * p.Jitter
		d = time.Duration(float64(d) - span/2 + rand.Float64()*span)
	}
	if d < p.BaseDelay {
		d = p.BaseDelay
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// classify applies the policy's classifier with ClassOf as fallback.
func (p Policy) classify(err error) Class {
	if p.Classify != nil {
		if c := p.Classify(err); c != ClassUnknown {
			return c
		}
	}
	return ClassOf(err)
}

// Do runs fn under the policy: transient failures are retried with
// backoff up to MaxAttempts; permanent and unknown failures return
// immediately. Panics inside fn are recovered into a *PanicError
// (permanent). It returns the number of attempts made and the final
// error — a *Exhausted wrapper when transient retries ran out, the
// bare error otherwise.
func (p Policy) Do(fn func() error) (int, error) {
	p = p.WithDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		err = p.runOnce(fn)
		if err == nil {
			return p.report(attempt, nil)
		}
		if p.classify(err) != ClassTransient {
			return p.report(attempt, err)
		}
		if attempt >= p.MaxAttempts {
			return p.report(attempt, &Exhausted{Attempts: attempt, Err: err})
		}
		p.Sleep(p.Backoff(attempt))
	}
}

// report funnels every Do outcome through the Observe hook.
func (p Policy) report(attempts int, err error) (int, error) {
	if p.Observe != nil {
		p.Observe(attempts, err)
	}
	return attempts, err
}

// runOnce executes fn with panic capture and the optional attempt
// timeout.
func (p Policy) runOnce(fn func() error) error {
	if p.AttemptTimeout <= 0 {
		return capture(fn)
	}
	done := make(chan error, 1)
	go func() { done <- capture(fn) }()
	timer := time.NewTimer(p.AttemptTimeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return Transient(&TimeoutError{Timeout: p.AttemptTimeout})
	}
}

func capture(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = Recovered(r)
		}
	}()
	return fn()
}
