package retry

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func noSleep(p Policy) Policy {
	p.Sleep = func(time.Duration) {}
	return p
}

func TestClassification(t *testing.T) {
	base := fmt.Errorf("disk glitch")
	if ClassOf(base) != ClassUnknown {
		t.Error("bare error should be unknown")
	}
	if ClassOf(Transient(base)) != ClassTransient || !IsTransient(Transient(base)) {
		t.Error("transient mark lost")
	}
	if ClassOf(Permanent(base)) != ClassPermanent {
		t.Error("permanent mark lost")
	}
	// Marks survive %w wrapping.
	wrapped := fmt.Errorf("queue: %w", Transient(base))
	if !IsTransient(wrapped) {
		t.Error("transient mark should survive fmt %w wrapping")
	}
	// The innermost mark wins: a permanent fault stays permanent even if
	// an outer layer re-marks the whole operation transient.
	remarked := Transient(fmt.Errorf("op: %w", Permanent(base)))
	if ClassOf(remarked) != ClassPermanent {
		t.Error("innermost classification should win")
	}
	if !errors.Is(Transient(base), base) {
		t.Error("marking should preserve errors.Is")
	}
	if Transient(nil) != nil || Permanent(nil) != nil {
		t.Error("marking nil should stay nil")
	}
}

func TestDoRetriesTransient(t *testing.T) {
	calls := 0
	n, err := noSleep(Policy{MaxAttempts: 5}).Do(func() error {
		calls++
		if calls < 3 {
			return Transient(fmt.Errorf("flaky"))
		}
		return nil
	})
	if err != nil || n != 3 || calls != 3 {
		t.Fatalf("n=%d calls=%d err=%v", n, calls, err)
	}
}

func TestDoFailsFastOnPermanentAndUnknown(t *testing.T) {
	for _, mk := range []func(error) error{Permanent, func(e error) error { return e }} {
		calls := 0
		bad := fmt.Errorf("unknown column")
		n, err := noSleep(Policy{MaxAttempts: 5}).Do(func() error {
			calls++
			return mk(bad)
		})
		if calls != 1 || n != 1 {
			t.Errorf("fail-fast made %d calls", calls)
		}
		if !errors.Is(err, bad) {
			t.Errorf("err = %v", err)
		}
	}
}

func TestDoExhausts(t *testing.T) {
	calls := 0
	n, err := noSleep(Policy{MaxAttempts: 3}).Do(func() error {
		calls++
		return Transient(fmt.Errorf("always down"))
	})
	if calls != 3 || n != 3 {
		t.Fatalf("calls = %d", calls)
	}
	var ex *Exhausted
	if !errors.As(err, &ex) || ex.Attempts != 3 {
		t.Fatalf("want Exhausted(3), got %v", err)
	}
	// Exhaustion is permanent: nested policies must not re-retry it.
	if ClassOf(err) == ClassTransient {
		t.Error("exhausted error should not classify transient")
	}
}

func TestDoRecoversPanic(t *testing.T) {
	calls := 0
	_, err := noSleep(Policy{MaxAttempts: 4}).Do(func() error {
		calls++
		panic("poison action")
	})
	if calls != 1 {
		t.Errorf("panic should not be retried (calls=%d)", calls)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || len(pe.Stack) == 0 {
		t.Fatalf("want PanicError with stack, got %v", err)
	}
	if ClassOf(err) != ClassPermanent {
		t.Error("panic should classify permanent")
	}
}

func TestAttemptTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	var calls int64
	p := noSleep(Policy{MaxAttempts: 2, AttemptTimeout: 5 * time.Millisecond})
	_, err := p.Do(func() error {
		if atomic.AddInt64(&calls, 1) == 1 {
			<-block // hang the first attempt
		}
		return nil
	})
	if err != nil {
		t.Fatalf("timeout then success: %v", err)
	}
	if got := atomic.LoadInt64(&calls); got != 2 {
		t.Errorf("calls = %d", got)
	}
}

func TestBackoffShape(t *testing.T) {
	p := Policy{BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Jitter: 0}
	want := []time.Duration{1, 2, 4, 8, 8} // ms, capped
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Jitter stays within ±25% of the nominal value at Jitter=0.5.
	j := Policy{BaseDelay: 4 * time.Millisecond, MaxDelay: 4 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := j.Backoff(1)
		if d < 3*time.Millisecond || d > 5*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [3ms,5ms]", d)
		}
	}
}

func TestClassifyOverride(t *testing.T) {
	calls := 0
	p := noSleep(Policy{
		MaxAttempts: 3,
		Classify: func(err error) Class {
			if err.Error() == "deadlock" {
				return ClassTransient
			}
			return ClassUnknown
		},
	})
	n, err := p.Do(func() error {
		calls++
		return fmt.Errorf("deadlock") // unmarked, classified by hook
	})
	if n != 3 || calls != 3 {
		t.Errorf("override should retry: n=%d", n)
	}
	var ex *Exhausted
	if !errors.As(err, &ex) {
		t.Errorf("err = %v", err)
	}
}

// TestBackoffJitterBounds asserts every computed delay lies within
// [BaseDelay, MaxDelay] across the policy classes the system actually
// runs (action, queue, dead-letter) plus the defaults and full jitter.
// The raw jitter spread is symmetric around the nominal delay, so an
// unclamped implementation dips below base on early attempts and
// overshoots the cap on late ones.
func TestBackoffJitterBounds(t *testing.T) {
	policies := map[string]Policy{
		"defaults":    {},
		"action":      {MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond},
		"queue":       {MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond},
		"dead-letter": {MaxAttempts: 8, BaseDelay: 500 * time.Microsecond, MaxDelay: 20 * time.Millisecond},
		"full-jitter": {BaseDelay: 2 * time.Millisecond, MaxDelay: 16 * time.Millisecond, Jitter: 1},
	}
	for name, p := range policies {
		eff := p.WithDefaults()
		for attempt := 1; attempt <= 12; attempt++ {
			for i := 0; i < 200; i++ {
				d := p.Backoff(attempt)
				if d < eff.BaseDelay || d > eff.MaxDelay {
					t.Fatalf("%s: backoff(%d) = %v outside [%v, %v]",
						name, attempt, d, eff.BaseDelay, eff.MaxDelay)
				}
			}
		}
	}
}
