package expr

import (
	"testing"

	"triggerman/internal/types"
)

// mkSelCNF builds and binds a single-variable CNF for signature tests.
func mkSelCNF(t *testing.T, n Node) CNF {
	t.Helper()
	bindSingle(t, n, empCols)
	c, err := ToCNF(n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSignatureEquivalenceClass(t *testing.T) {
	// The paper's example: salary > 80000 and salary > 50000 share one
	// signature (Figure 2); salary = 80000 does not.
	s1, c1, err := ExtractSignature(mkSelCNF(t, Cmp(OpGt, Col("emp", "salary"), Int(80000))))
	if err != nil {
		t.Fatal(err)
	}
	s2, c2, err := ExtractSignature(mkSelCNF(t, Cmp(OpGt, Col("emp", "salary"), Int(50000))))
	if err != nil {
		t.Fatal(err)
	}
	s3, _, err := ExtractSignature(mkSelCNF(t, Cmp(OpEq, Col("emp", "salary"), Int(80000))))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Canonical() != s2.Canonical() {
		t.Errorf("same-shape signatures differ: %q vs %q", s1, s2)
	}
	if s1.Hash() != s2.Hash() {
		t.Error("equal signatures hash differently")
	}
	if s1.Canonical() == s3.Canonical() {
		t.Error("> and = should have different signatures")
	}
	if len(c1) != 1 || c1[0].Int() != 80000 {
		t.Errorf("constants 1 = %v", c1)
	}
	if len(c2) != 1 || c2[0].Int() != 50000 {
		t.Errorf("constants 2 = %v", c2)
	}
}

func TestSignatureEqualityIndexable(t *testing.T) {
	sig, consts, err := ExtractSignature(mkSelCNF(t, Cmp(OpEq, Col("emp", "name"), Str("Bob"))))
	if err != nil {
		t.Fatal(err)
	}
	if sig.Indexability() != IndexEquality {
		t.Fatalf("indexability = %s", sig.Indexability())
	}
	if len(sig.EqCols) != 1 || sig.EqCols[0] != empCols["name"] {
		t.Errorf("EqCols = %v", sig.EqCols)
	}
	if sig.NumConstants != 1 {
		t.Errorf("NumConstants = %d", sig.NumConstants)
	}
	if len(sig.Rest.Clauses) != 0 {
		t.Errorf("rest should be empty: %s", sig.Rest)
	}
	key, err := sig.EqKey(consts)
	if err != nil || len(key) != 1 || key[0].Str() != "Bob" {
		t.Errorf("EqKey = %v, %v", key, err)
	}
	tok := types.Tuple{types.NewString("Bob"), types.NewInt(1), types.NewString("d")}
	probe := sig.TokenEqKey(tok)
	if !probe.Equal(key) {
		t.Errorf("probe %v != key %v", probe, key)
	}
}

func TestSignatureCompositeEquality(t *testing.T) {
	// name='Bob' AND dept='eng' -> composite [const1, const2] key.
	n := And(Cmp(OpEq, Col("emp", "name"), Str("Bob")),
		Cmp(OpEq, Col("emp", "dept"), Str("eng")))
	sig, consts, err := ExtractSignature(mkSelCNF(t, n))
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.EqCols) != 2 {
		t.Fatalf("EqCols = %v", sig.EqCols)
	}
	key, _ := sig.EqKey(consts)
	if key.String() != "('Bob', 'eng')" {
		t.Errorf("key = %v", key)
	}
}

func TestSignatureRangeIndexable(t *testing.T) {
	sig, _, err := ExtractSignature(mkSelCNF(t, Cmp(OpGt, Col("emp", "salary"), Int(80000))))
	if err != nil {
		t.Fatal(err)
	}
	if sig.Indexability() != IndexRange {
		t.Fatalf("indexability = %s", sig.Indexability())
	}
	if sig.RangeCol != empCols["salary"] || sig.RangeOp != OpGt || sig.RangeConstNum != 1 {
		t.Errorf("range: col=%d op=%s num=%d", sig.RangeCol, sig.RangeOp, sig.RangeConstNum)
	}
}

func TestSignatureFlippedComparison(t *testing.T) {
	// 80000 < salary normalizes to salary > 80000.
	sig, _, err := ExtractSignature(mkSelCNF(t, Cmp(OpLt, Int(80000), Col("emp", "salary"))))
	if err != nil {
		t.Fatal(err)
	}
	if sig.Indexability() != IndexRange || sig.RangeOp != OpGt {
		t.Errorf("flip: %s op=%s", sig.Indexability(), sig.RangeOp)
	}
}

func TestSignatureMixedIndexableSplit(t *testing.T) {
	// dept='eng' AND salary > 50000: equality drives the index, range
	// clause becomes rest-of-predicate (E_NI).
	n := And(Cmp(OpEq, Col("emp", "dept"), Str("eng")),
		Cmp(OpGt, Col("emp", "salary"), Int(50000)))
	sig, consts, err := ExtractSignature(mkSelCNF(t, n))
	if err != nil {
		t.Fatal(err)
	}
	if sig.Indexability() != IndexEquality {
		t.Fatalf("indexability = %s", sig.Indexability())
	}
	if len(sig.Rest.Clauses) != 1 {
		t.Fatalf("rest = %s", sig.Rest)
	}
	// Instantiating rest with this expression's constants must yield a
	// predicate testable against tokens.
	rest, err := InstantiateCNF(sig.Rest, consts)
	if err != nil {
		t.Fatal(err)
	}
	env := SingleEnv{New: types.Tuple{types.NewString("Bob"), types.NewInt(60000), types.NewString("eng")}}
	got, err := EvalPredicate(rest.Node(), env)
	if err != nil || got != True {
		t.Errorf("rest eval = %s, %v", got, err)
	}
	env2 := SingleEnv{New: types.Tuple{types.NewString("Bob"), types.NewInt(40000), types.NewString("eng")}}
	if got, _ := EvalPredicate(rest.Node(), env2); got != False {
		t.Errorf("rest eval low salary = %s", got)
	}
}

func TestSignatureDisjunctionNotIndexable(t *testing.T) {
	// (name='Bob' OR dept='eng'): multi-atom clause, not indexable.
	n := Or(Cmp(OpEq, Col("emp", "name"), Str("Bob")),
		Cmp(OpEq, Col("emp", "dept"), Str("eng")))
	sig, consts, err := ExtractSignature(mkSelCNF(t, n))
	if err != nil {
		t.Fatal(err)
	}
	if sig.Indexability() != IndexNone {
		t.Errorf("indexability = %s", sig.Indexability())
	}
	if sig.NumConstants != 2 || len(consts) != 2 {
		t.Errorf("constants = %v", consts)
	}
	if len(sig.Rest.Clauses) != 1 {
		t.Errorf("rest = %s", sig.Rest)
	}
}

func TestSignatureNoConstants(t *testing.T) {
	// salary > :OLD.salary has no constants at all.
	oldRef := &ColumnRef{Var: "emp", Column: "salary", Old: true, VarIdx: -1, ColIdx: -1}
	sig, consts, err := ExtractSignature(mkSelCNF(t, Cmp(OpGt, Col("emp", "salary"), oldRef)))
	if err != nil {
		t.Fatal(err)
	}
	if sig.NumConstants != 0 || len(consts) != 0 {
		t.Errorf("constants = %v", consts)
	}
	if sig.Indexability() != IndexNone {
		t.Errorf("indexability = %s", sig.Indexability())
	}
}

func TestSignatureOldColumnNotIndexable(t *testing.T) {
	// :OLD.salary = 5 must not claim equality-indexability, because the
	// predicate index probes new-image values.
	oldRef := &ColumnRef{Var: "emp", Column: "salary", Old: true, VarIdx: -1, ColIdx: -1}
	sig, _, err := ExtractSignature(mkSelCNF(t, Cmp(OpEq, oldRef, Int(5))))
	if err != nil {
		t.Fatal(err)
	}
	if sig.Indexability() != IndexNone {
		t.Errorf("old-image equality should be IndexNone, got %s", sig.Indexability())
	}
}

func TestSignatureConstantNumbering(t *testing.T) {
	// Constants are numbered left to right (§5).
	n := And(Cmp(OpEq, Col("emp", "name"), Str("A")),
		And(Cmp(OpGt, Col("emp", "salary"), Int(10)),
			Cmp(OpLt, Col("emp", "salary"), Int(20))))
	sig, consts, err := ExtractSignature(mkSelCNF(t, n))
	if err != nil {
		t.Fatal(err)
	}
	if sig.NumConstants != 3 {
		t.Fatalf("NumConstants = %d", sig.NumConstants)
	}
	want := []types.Value{types.NewString("A"), types.NewInt(10), types.NewInt(20)}
	for i := range want {
		if !types.Equal(consts[i], want[i]) {
			t.Errorf("const %d = %v, want %v", i+1, consts[i], want[i])
		}
	}
}

func TestInstantiateRoundtrip(t *testing.T) {
	orig := And(Cmp(OpEq, Col("emp", "name"), Str("Bob")),
		Cmp(OpGt, &Binary{Op: OpMul, Left: Col("emp", "salary"), Right: Float(1.5)}, Int(100)))
	c := mkSelCNF(t, orig)
	sig, consts, err := ExtractSignature(c)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := InstantiateCNF(sig.Generalized, consts)
	if err != nil {
		t.Fatal(err)
	}
	if inst.String() != c.String() {
		t.Errorf("roundtrip: %q vs %q", inst.String(), c.String())
	}
}

func TestInstantiateErrors(t *testing.T) {
	if _, err := Instantiate(&Placeholder{Num: 3}, []types.Value{types.NewInt(1)}); err == nil {
		t.Error("out-of-range placeholder should error")
	}
	n, err := Instantiate(nil, nil)
	if n != nil || err != nil {
		t.Error("nil instantiate")
	}
}

func TestSignatureDifferentColumnsDiffer(t *testing.T) {
	s1, _, _ := ExtractSignature(mkSelCNF(t, Cmp(OpEq, Col("emp", "name"), Str("x"))))
	s2, _, _ := ExtractSignature(mkSelCNF(t, Cmp(OpEq, Col("emp", "dept"), Str("x"))))
	if s1.Canonical() == s2.Canonical() {
		t.Error("different columns should have different signatures")
	}
}

func TestEqKeyErrors(t *testing.T) {
	sig, _, err := ExtractSignature(mkSelCNF(t, Cmp(OpEq, Col("emp", "name"), Str("Bob"))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sig.EqKey(nil); err == nil {
		t.Error("missing constants should error")
	}
}

func TestIndexabilityString(t *testing.T) {
	if IndexEquality.String() != "equality" || IndexRange.String() != "range" || IndexNone.String() != "none" {
		t.Error("Indexability strings")
	}
}

// Property-style: every generated equality predicate lands in the same
// class as any other with the same column, and instantiation restores
// the original text.
func TestSignatureClassProperty(t *testing.T) {
	var prev *Signature
	for i := int64(0); i < 50; i++ {
		n := Cmp(OpEq, Col("emp", "salary"), Int(i*100))
		sig, consts, err := ExtractSignature(mkSelCNF(t, n))
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && sig.Canonical() != prev.Canonical() {
			t.Fatalf("iteration %d: signature changed", i)
		}
		prev = sig
		inst, err := InstantiateCNF(sig.Generalized, consts)
		if err != nil {
			t.Fatal(err)
		}
		env := SingleEnv{New: types.Tuple{types.NewString("x"), types.NewInt(i * 100), types.NewString("d")}}
		if got, _ := EvalPredicate(inst.Node(), env); got != True {
			t.Fatalf("instantiated predicate false for matching tuple at %d", i)
		}
	}
}
