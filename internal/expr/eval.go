package expr

import (
	"fmt"
	"strings"

	"triggerman/internal/types"
)

// Tri is SQL three-valued logic: true, false, or unknown (from NULLs).
type Tri uint8

const (
	// False is definitely false.
	False Tri = iota
	// True is definitely true.
	True
	// Unknown arises when a NULL participates in a comparison.
	Unknown
)

// String renders the truth value.
func (t Tri) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

func triAnd(a, b Tri) Tri {
	if a == False || b == False {
		return False
	}
	if a == Unknown || b == Unknown {
		return Unknown
	}
	return True
}

func triOr(a, b Tri) Tri {
	if a == True || b == True {
		return True
	}
	if a == Unknown || b == Unknown {
		return Unknown
	}
	return False
}

func triNot(a Tri) Tri {
	switch a {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Env supplies tuple values during evaluation. VarIdx selects the tuple
// for a bound ColumnRef; Old selects the pre-update image.
type Env interface {
	// TupleFor returns the tuple bound to tuple-variable index i,
	// choosing the old image if old is true. A nil return yields NULLs.
	TupleFor(i int, old bool) types.Tuple
}

// SingleEnv is an Env over exactly one tuple variable (index 0), as used
// during selection-predicate testing against a token.
type SingleEnv struct {
	New types.Tuple
	Old types.Tuple
}

// TupleFor implements Env.
func (e SingleEnv) TupleFor(i int, old bool) types.Tuple {
	if i != 0 {
		return nil
	}
	if old {
		return e.Old
	}
	return e.New
}

// MultiEnv is an Env over several tuple variables, used during join
// testing in the discrimination network.
type MultiEnv struct {
	Tuples []types.Tuple
	Olds   []types.Tuple
}

// TupleFor implements Env.
func (e MultiEnv) TupleFor(i int, old bool) types.Tuple {
	if old {
		if i >= 0 && i < len(e.Olds) {
			return e.Olds[i]
		}
		return nil
	}
	if i >= 0 && i < len(e.Tuples) {
		return e.Tuples[i]
	}
	return nil
}

// EvalPredicate evaluates a Boolean tree under env. Errors indicate a
// malformed tree (unbound references, type confusion), not data issues:
// NULL handling is expressed through Tri.
func EvalPredicate(n Node, env Env) (Tri, error) {
	switch t := n.(type) {
	case *Unary:
		if t.Op == OpNot {
			v, err := EvalPredicate(t.Child, env)
			if err != nil {
				return Unknown, err
			}
			return triNot(v), nil
		}
	case *Binary:
		switch t.Op {
		case OpAnd:
			l, err := EvalPredicate(t.Left, env)
			if err != nil {
				return Unknown, err
			}
			if l == False {
				return False, nil
			}
			r, err := EvalPredicate(t.Right, env)
			if err != nil {
				return Unknown, err
			}
			return triAnd(l, r), nil
		case OpOr:
			l, err := EvalPredicate(t.Left, env)
			if err != nil {
				return Unknown, err
			}
			if l == True {
				return True, nil
			}
			r, err := EvalPredicate(t.Right, env)
			if err != nil {
				return Unknown, err
			}
			return triOr(l, r), nil
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike:
			lv, err := EvalScalar(t.Left, env)
			if err != nil {
				return Unknown, err
			}
			rv, err := EvalScalar(t.Right, env)
			if err != nil {
				return Unknown, err
			}
			return compare(t.Op, lv, rv), nil
		}
	case *Const:
		// A bare constant used as a predicate: nonzero/nonempty = true.
		return truthiness(t.Val), nil
	}
	return Unknown, fmt.Errorf("expr: node %s is not a predicate", n)
}

func truthiness(v types.Value) Tri {
	switch {
	case v.IsNull():
		return Unknown
	case v.IsNumeric():
		f, _ := v.AsFloat()
		if f != 0 {
			return True
		}
		return False
	default:
		if v.Str() != "" {
			return True
		}
		return False
	}
}

func compare(op Op, l, r types.Value) Tri {
	if l.IsNull() || r.IsNull() {
		return Unknown
	}
	if op == OpLike {
		if !l.IsString() || !r.IsString() {
			return False
		}
		if matchLike(l.Str(), r.Str()) {
			return True
		}
		return False
	}
	c := types.Compare(l, r)
	var ok bool
	switch op {
	case OpEq:
		ok = c == 0
	case OpNe:
		ok = c != 0
	case OpLt:
		ok = c < 0
	case OpLe:
		ok = c <= 0
	case OpGt:
		ok = c > 0
	case OpGe:
		ok = c >= 0
	}
	if ok {
		return True
	}
	return False
}

// matchLike implements SQL LIKE with % (any run) and _ (any single
// character) wildcards, by backtracking on %.
func matchLike(s, pattern string) bool {
	var match func(si, pi int) bool
	match = func(si, pi int) bool {
		for pi < len(pattern) {
			switch pattern[pi] {
			case '%':
				// Collapse consecutive %.
				for pi < len(pattern) && pattern[pi] == '%' {
					pi++
				}
				if pi == len(pattern) {
					return true
				}
				for k := si; k <= len(s); k++ {
					if match(k, pi) {
						return true
					}
				}
				return false
			case '_':
				if si >= len(s) {
					return false
				}
				si++
				pi++
			default:
				if si >= len(s) || s[si] != pattern[pi] {
					return false
				}
				si++
				pi++
			}
		}
		return si == len(s)
	}
	return match(0, 0)
}

// EvalScalar evaluates a scalar (non-Boolean) tree to a value.
func EvalScalar(n Node, env Env) (types.Value, error) {
	switch t := n.(type) {
	case *Const:
		return t.Val, nil
	case *Placeholder:
		return types.Null(), fmt.Errorf("expr: placeholder CONSTANT_%d evaluated without instantiation", t.Num)
	case *ColumnRef:
		if t.VarIdx < 0 || t.ColIdx < 0 {
			return types.Null(), fmt.Errorf("expr: unbound column reference %s", t)
		}
		tu := env.TupleFor(t.VarIdx, t.Old)
		return tu.Get(t.ColIdx), nil
	case *Unary:
		if t.Op == OpNeg {
			v, err := EvalScalar(t.Child, env)
			if err != nil {
				return types.Null(), err
			}
			return negate(v)
		}
		// NOT as scalar: fold Tri to int for orthogonality.
		tr, err := EvalPredicate(t, env)
		if err != nil {
			return types.Null(), err
		}
		return triToValue(tr), nil
	case *Binary:
		switch t.Op {
		case OpAdd, OpSub, OpMul, OpDiv:
			lv, err := EvalScalar(t.Left, env)
			if err != nil {
				return types.Null(), err
			}
			rv, err := EvalScalar(t.Right, env)
			if err != nil {
				return types.Null(), err
			}
			return arith(t.Op, lv, rv)
		default:
			tr, err := EvalPredicate(t, env)
			if err != nil {
				return types.Null(), err
			}
			return triToValue(tr), nil
		}
	case *FuncCall:
		return evalFunc(t, env)
	}
	return types.Null(), fmt.Errorf("expr: cannot evaluate %T as scalar", n)
}

func triToValue(t Tri) types.Value {
	switch t {
	case True:
		return types.NewInt(1)
	case False:
		return types.NewInt(0)
	default:
		return types.Null()
	}
}

func negate(v types.Value) (types.Value, error) {
	switch v.Kind() {
	case types.KindNull:
		return types.Null(), nil
	case types.KindInt:
		return types.NewInt(-v.Int()), nil
	case types.KindFloat:
		return types.NewFloat(-v.Float()), nil
	default:
		return types.Null(), fmt.Errorf("expr: cannot negate %s", v.Kind())
	}
}

func arith(op Op, l, r types.Value) (types.Value, error) {
	if l.IsNull() || r.IsNull() {
		return types.Null(), nil
	}
	if op == OpAdd && l.IsString() && r.IsString() {
		return types.NewString(l.Str() + r.Str()), nil
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return types.Null(), fmt.Errorf("expr: %s applied to non-numeric operands (%s, %s)", op, l.Kind(), r.Kind())
	}
	// Integer arithmetic stays integral.
	if l.Kind() == types.KindInt && r.Kind() == types.KindInt {
		a, b := l.Int(), r.Int()
		switch op {
		case OpAdd:
			return types.NewInt(a + b), nil
		case OpSub:
			return types.NewInt(a - b), nil
		case OpMul:
			return types.NewInt(a * b), nil
		case OpDiv:
			if b == 0 {
				return types.Null(), fmt.Errorf("expr: integer division by zero")
			}
			return types.NewInt(a / b), nil
		}
	}
	switch op {
	case OpAdd:
		return types.NewFloat(lf + rf), nil
	case OpSub:
		return types.NewFloat(lf - rf), nil
	case OpMul:
		return types.NewFloat(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return types.Null(), fmt.Errorf("expr: division by zero")
		}
		return types.NewFloat(lf / rf), nil
	}
	return types.Null(), fmt.Errorf("expr: bad arithmetic op %s", op)
}

func evalFunc(f *FuncCall, env Env) (types.Value, error) {
	args := make([]types.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := EvalScalar(a, env)
		if err != nil {
			return types.Null(), err
		}
		args[i] = v
	}
	name := strings.ToLower(f.Name)
	wantArgs := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("expr: %s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "upper":
		if err := wantArgs(1); err != nil {
			return types.Null(), err
		}
		if args[0].IsNull() {
			return types.Null(), nil
		}
		if !args[0].IsString() {
			return types.Null(), fmt.Errorf("expr: upper on %s", args[0].Kind())
		}
		return types.NewString(strings.ToUpper(args[0].Str())), nil
	case "lower":
		if err := wantArgs(1); err != nil {
			return types.Null(), err
		}
		if args[0].IsNull() {
			return types.Null(), nil
		}
		if !args[0].IsString() {
			return types.Null(), fmt.Errorf("expr: lower on %s", args[0].Kind())
		}
		return types.NewString(strings.ToLower(args[0].Str())), nil
	case "length":
		if err := wantArgs(1); err != nil {
			return types.Null(), err
		}
		if args[0].IsNull() {
			return types.Null(), nil
		}
		if !args[0].IsString() {
			return types.Null(), fmt.Errorf("expr: length on %s", args[0].Kind())
		}
		return types.NewInt(int64(len(args[0].Str()))), nil
	case "abs":
		if err := wantArgs(1); err != nil {
			return types.Null(), err
		}
		switch args[0].Kind() {
		case types.KindNull:
			return types.Null(), nil
		case types.KindInt:
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return types.NewInt(v), nil
		case types.KindFloat:
			v := args[0].Float()
			if v < 0 {
				v = -v
			}
			return types.NewFloat(v), nil
		default:
			return types.Null(), fmt.Errorf("expr: abs on %s", args[0].Kind())
		}
	default:
		return types.Null(), fmt.Errorf("expr: unknown function %q", f.Name)
	}
}
