package expr

import (
	"testing"

	"triggerman/internal/types"
)

// bindSingle binds every column ref to variable 0 with a fixed column
// mapping, for tests.
func bindSingle(t *testing.T, n Node, cols map[string]int) {
	t.Helper()
	b := &Binder{
		VarIndex:   map[string]int{"r": 0, "emp": 0},
		DefaultVar: 0,
		ColumnIndex: func(_ int, c string) int {
			if i, ok := cols[c]; ok {
				return i
			}
			return -1
		},
	}
	if err := b.Bind(n); err != nil {
		t.Fatalf("bind: %v", err)
	}
}

var empCols = map[string]int{"name": 0, "salary": 1, "dept": 2}

func empEnv(name string, salary int64, dept string) SingleEnv {
	return SingleEnv{New: types.Tuple{
		types.NewString(name), types.NewInt(salary), types.NewString(dept),
	}}
}

func TestTriLogic(t *testing.T) {
	if triAnd(True, Unknown) != Unknown || triAnd(False, Unknown) != False {
		t.Error("triAnd")
	}
	if triOr(True, Unknown) != True || triOr(False, Unknown) != Unknown {
		t.Error("triOr")
	}
	if triNot(Unknown) != Unknown || triNot(True) != False {
		t.Error("triNot")
	}
	if True.String() != "true" || False.String() != "false" || Unknown.String() != "unknown" {
		t.Error("Tri.String")
	}
}

func TestEvalComparisons(t *testing.T) {
	env := empEnv("Bob", 90000, "eng")
	cases := []struct {
		n    Node
		want Tri
	}{
		{Cmp(OpGt, Col("emp", "salary"), Int(80000)), True},
		{Cmp(OpGt, Col("emp", "salary"), Int(95000)), False},
		{Cmp(OpEq, Col("emp", "name"), Str("Bob")), True},
		{Cmp(OpNe, Col("emp", "name"), Str("Bob")), False},
		{Cmp(OpLe, Col("emp", "salary"), Int(90000)), True},
		{Cmp(OpGe, Col("emp", "salary"), Int(90001)), False},
		{Cmp(OpLt, Col("emp", "salary"), Float(90000.5)), True},
		{Cmp(OpLike, Col("emp", "dept"), Str("e%")), True},
		{Cmp(OpLike, Col("emp", "dept"), Str("x%")), False},
	}
	for _, c := range cases {
		bindSingle(t, c.n, empCols)
		got, err := EvalPredicate(c.n, env)
		if err != nil {
			t.Fatalf("%s: %v", c.n, err)
		}
		if got != c.want {
			t.Errorf("%s = %s, want %s", c.n, got, c.want)
		}
	}
}

func TestEvalBooleans(t *testing.T) {
	env := empEnv("Bob", 90000, "eng")
	hi := Cmp(OpGt, Col("emp", "salary"), Int(80000)) // true
	lo := Cmp(OpLt, Col("emp", "salary"), Int(80000)) // false
	n := And(hi, Not(lo))
	bindSingle(t, n, empCols)
	if got, _ := EvalPredicate(n, env); got != True {
		t.Errorf("AND/NOT = %s", got)
	}
	n2 := Or(Clone(lo), Clone(lo))
	bindSingle(t, n2, empCols)
	if got, _ := EvalPredicate(n2, env); got != False {
		t.Errorf("OR = %s", got)
	}
}

func TestEvalNullSemantics(t *testing.T) {
	env := SingleEnv{New: types.Tuple{types.Null(), types.Null(), types.Null()}}
	n := Cmp(OpEq, Col("emp", "name"), Str("Bob"))
	bindSingle(t, n, empCols)
	if got, _ := EvalPredicate(n, env); got != Unknown {
		t.Errorf("NULL = 'Bob' should be unknown, got %s", got)
	}
	// unknown OR true = true
	alwaysTrue := Cmp(OpEq, Int(1), Int(1))
	n2 := Or(Clone(n), alwaysTrue)
	bindSingle(t, n2, empCols)
	if got, _ := EvalPredicate(n2, env); got != True {
		t.Errorf("unknown OR true = %s", got)
	}
}

func TestEvalOldImage(t *testing.T) {
	oldRef := &ColumnRef{Var: "emp", Column: "salary", VarIdx: -1, ColIdx: -1, Old: true}
	n := Cmp(OpGt, Col("emp", "salary"), oldRef) // salary increased
	bindSingle(t, n, empCols)
	env := SingleEnv{
		New: types.Tuple{types.NewString("Bob"), types.NewInt(95000), types.NewString("eng")},
		Old: types.Tuple{types.NewString("Bob"), types.NewInt(90000), types.NewString("eng")},
	}
	if got, _ := EvalPredicate(n, env); got != True {
		t.Errorf("raise detection = %s", got)
	}
}

func TestEvalArithmetic(t *testing.T) {
	env := empEnv("Bob", 90000, "eng")
	n := Cmp(OpGt, &Binary{Op: OpMul, Left: Col("emp", "salary"), Right: Float(1.1)}, Int(95000))
	bindSingle(t, n, empCols)
	if got, _ := EvalPredicate(n, env); got != True {
		t.Errorf("salary*1.1 > 95000 = %s", got)
	}
	// integer arithmetic stays integral
	v, err := EvalScalar(&Binary{Op: OpDiv, Left: Int(7), Right: Int(2)}, env)
	if err != nil || v.Kind() != types.KindInt || v.Int() != 3 {
		t.Errorf("7/2 = %v, %v", v, err)
	}
	if _, err := EvalScalar(&Binary{Op: OpDiv, Left: Int(1), Right: Int(0)}, env); err == nil {
		t.Error("division by zero should error")
	}
	// string concatenation with +
	v, err = EvalScalar(&Binary{Op: OpAdd, Left: Str("a"), Right: Str("b")}, env)
	if err != nil || v.Str() != "ab" {
		t.Errorf("'a'+'b' = %v, %v", v, err)
	}
	// null propagation
	v, err = EvalScalar(&Binary{Op: OpAdd, Left: Lit(types.Null()), Right: Int(1)}, env)
	if err != nil || !v.IsNull() {
		t.Errorf("NULL+1 = %v, %v", v, err)
	}
	// negation
	v, err = EvalScalar(&Unary{Op: OpNeg, Child: Int(5)}, env)
	if err != nil || v.Int() != -5 {
		t.Errorf("-5 = %v, %v", v, err)
	}
}

func TestEvalFunctions(t *testing.T) {
	env := empEnv("Bob", 90000, "eng")
	cases := []struct {
		f    *FuncCall
		want types.Value
	}{
		{&FuncCall{Name: "upper", Args: []Node{Str("bob")}}, types.NewString("BOB")},
		{&FuncCall{Name: "lower", Args: []Node{Str("BOB")}}, types.NewString("bob")},
		{&FuncCall{Name: "length", Args: []Node{Str("abcd")}}, types.NewInt(4)},
		{&FuncCall{Name: "abs", Args: []Node{Int(-7)}}, types.NewInt(7)},
		{&FuncCall{Name: "abs", Args: []Node{Float(-2.5)}}, types.NewFloat(2.5)},
	}
	for _, c := range cases {
		got, err := EvalScalar(c.f, env)
		if err != nil {
			t.Fatalf("%s: %v", c.f, err)
		}
		if !types.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.f, got, c.want)
		}
	}
	if _, err := EvalScalar(&FuncCall{Name: "nope", Args: nil}, env); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := EvalScalar(&FuncCall{Name: "upper", Args: []Node{Str("a"), Str("b")}}, env); err == nil {
		t.Error("arity error expected")
	}
	if _, err := EvalScalar(&FuncCall{Name: "abs", Args: []Node{Str("a")}}, env); err == nil {
		t.Error("abs on string should error")
	}
}

func TestEvalErrors(t *testing.T) {
	env := empEnv("Bob", 1, "x")
	// unbound column
	if _, err := EvalScalar(Col("emp", "salary"), env); err == nil {
		t.Error("unbound column should error")
	}
	// placeholder leak
	if _, err := EvalScalar(&Placeholder{Num: 1}, env); err == nil {
		t.Error("placeholder eval should error")
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%lo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_y", false},
		{"hello", "", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "a%c%", true},
		{"abc", "%%%", true},
		{"ab", "a_b", false},
	}
	for _, c := range cases {
		if got := matchLike(c.s, c.p); got != c.want {
			t.Errorf("like(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestMultiEnv(t *testing.T) {
	e := MultiEnv{
		Tuples: []types.Tuple{{types.NewInt(1)}, {types.NewInt(2)}},
		Olds:   []types.Tuple{{types.NewInt(0)}},
	}
	if e.TupleFor(1, false).Get(0).Int() != 2 {
		t.Error("TupleFor(1)")
	}
	if e.TupleFor(0, true).Get(0).Int() != 0 {
		t.Error("TupleFor old")
	}
	if e.TupleFor(5, false) != nil || e.TupleFor(1, true) != nil {
		t.Error("out-of-range should be nil")
	}
}

func TestTruthiness(t *testing.T) {
	n := Int(1)
	if got, _ := EvalPredicate(n, SingleEnv{}); got != True {
		t.Error("1 should be true")
	}
	if got, _ := EvalPredicate(Int(0), SingleEnv{}); got != False {
		t.Error("0 should be false")
	}
	if got, _ := EvalPredicate(Lit(types.Null()), SingleEnv{}); got != Unknown {
		t.Error("NULL should be unknown")
	}
	if got, _ := EvalPredicate(Str("x"), SingleEnv{}); got != True {
		t.Error("'x' should be true")
	}
}
