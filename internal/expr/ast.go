// Package expr implements TriggerMan's expression machinery: typed
// syntax trees for when-clause predicates, three-valued evaluation,
// conversion to conjunctive normal form, grouping of conjuncts by the
// tuple variables they reference (§4 of the paper), and expression
// signatures — the generalized form of a predicate with constants
// replaced by numbered placeholders (§5).
package expr

import (
	"fmt"
	"strings"

	"triggerman/internal/types"
)

// Op enumerates operators appearing in predicate syntax trees.
type Op uint8

const (
	// Comparison operators.
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// Boolean connectives.
	OpAnd
	OpOr
	OpNot
	// Arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpNeg
	// String containment (LIKE with only %x% patterns is folded to this).
	OpLike
)

// String returns the surface syntax of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpNot:
		return "NOT"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpNeg:
		return "-"
	case OpLike:
		return "LIKE"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// IsComparison reports whether o is one of the six comparison operators
// or LIKE.
func (o Op) IsComparison() bool {
	switch o {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike:
		return true
	}
	return false
}

// Negate returns the comparison with inverted truth (e.g. < becomes >=).
// It panics for non-comparison, non-negatable operators.
func (o Op) Negate() Op {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	default:
		panic("expr: Negate on " + o.String())
	}
}

// Node is a node in an expression syntax tree. Trees are immutable once
// built; all transformation functions return new trees.
type Node interface {
	// String renders the node in surface syntax.
	String() string
	// equalShape is used by signature comparison; implemented in
	// signature.go for each node type.
	isNode()
}

// Const is a literal constant leaf.
type Const struct {
	Val types.Value
}

func (c *Const) isNode()        {}
func (c *Const) String() string { return c.Val.String() }

// ColumnRef is a reference to tupleVar.column. Var is the tuple-variable
// name from the trigger's from clause; Column the attribute. During
// binding, VarIdx/ColIdx are resolved to positional indexes.
type ColumnRef struct {
	Var    string
	Column string
	// VarIdx is the index of the tuple variable in the trigger's from
	// list; -1 until bound.
	VarIdx int
	// ColIdx is the column position in that variable's schema; -1 until
	// bound.
	ColIdx int
	// Old marks a :OLD reference (pre-update image); default is new.
	Old bool
	// Param marks a reference written with :NEW/:OLD parameter syntax.
	// In execSQL action text, only Param references are macro-substituted
	// with token values; bare references address the target table.
	Param bool
}

func (c *ColumnRef) isNode() {}
func (c *ColumnRef) String() string {
	prefix := ""
	if c.Old {
		prefix = ":OLD."
	}
	if c.Var == "" {
		return prefix + c.Column
	}
	return prefix + c.Var + "." + c.Column
}

// Placeholder replaces a constant in an expression signature. Num is the
// 1-based left-to-right constant number (§5: CONSTANT_x).
type Placeholder struct {
	Num int
}

func (p *Placeholder) isNode()        {}
func (p *Placeholder) String() string { return fmt.Sprintf("CONSTANT_%d", p.Num) }

// Unary is NOT or arithmetic negation.
type Unary struct {
	Op    Op
	Child Node
}

func (u *Unary) isNode() {}
func (u *Unary) String() string {
	if u.Op == OpNot {
		return "NOT (" + u.Child.String() + ")"
	}
	return "-(" + u.Child.String() + ")"
}

// Binary is a two-operand operator application.
type Binary struct {
	Op          Op
	Left, Right Node
}

func (b *Binary) isNode() {}
func (b *Binary) String() string {
	l, r := b.Left.String(), b.Right.String()
	if needParens(b.Left, b.Op) {
		l = "(" + l + ")"
	}
	if needParens(b.Right, b.Op) {
		r = "(" + r + ")"
	}
	return l + " " + b.Op.String() + " " + r
}

func needParens(child Node, parent Op) bool {
	c, ok := child.(*Binary)
	if !ok {
		return false
	}
	return prec(c.Op) < prec(parent)
}

func prec(o Op) int {
	switch o {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike:
		return 3
	case OpAdd, OpSub:
		return 4
	case OpMul, OpDiv:
		return 5
	default:
		return 6
	}
}

// FuncCall is a call to a built-in scalar function (upper, lower, abs,
// length). Kept generic so new functions slot in without AST changes.
type FuncCall struct {
	Name string
	Args []Node
}

func (f *FuncCall) isNode() {}
func (f *FuncCall) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return strings.ToLower(f.Name) + "(" + strings.Join(parts, ", ") + ")"
}

// And builds a conjunction, folding nil operands.
func And(a, b Node) Node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &Binary{Op: OpAnd, Left: a, Right: b}
}

// Or builds a disjunction, folding nil operands.
func Or(a, b Node) Node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &Binary{Op: OpOr, Left: a, Right: b}
}

// Not builds a negation.
func Not(a Node) Node { return &Unary{Op: OpNot, Child: a} }

// Cmp builds a comparison node.
func Cmp(op Op, l, r Node) Node { return &Binary{Op: op, Left: l, Right: r} }

// Col builds an unbound column reference.
func Col(v, c string) *ColumnRef { return &ColumnRef{Var: v, Column: c, VarIdx: -1, ColIdx: -1} }

// Lit builds a constant leaf.
func Lit(v types.Value) *Const { return &Const{Val: v} }

// Int, Float, Str are literal shorthands used heavily in tests.
func Int(v int64) *Const     { return Lit(types.NewInt(v)) }
func Float(v float64) *Const { return Lit(types.NewFloat(v)) }
func Str(v string) *Const    { return Lit(types.NewString(v)) }

// Walk calls fn for every node in the tree, pre-order. If fn returns
// false the node's children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch t := n.(type) {
	case *Unary:
		Walk(t.Child, fn)
	case *Binary:
		Walk(t.Left, fn)
		Walk(t.Right, fn)
	case *FuncCall:
		for _, a := range t.Args {
			Walk(a, fn)
		}
	}
}

// Clone deep-copies a tree.
func Clone(n Node) Node {
	switch t := n.(type) {
	case nil:
		return nil
	case *Const:
		c := *t
		return &c
	case *ColumnRef:
		c := *t
		return &c
	case *Placeholder:
		c := *t
		return &c
	case *Unary:
		return &Unary{Op: t.Op, Child: Clone(t.Child)}
	case *Binary:
		return &Binary{Op: t.Op, Left: Clone(t.Left), Right: Clone(t.Right)}
	case *FuncCall:
		args := make([]Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = Clone(a)
		}
		return &FuncCall{Name: t.Name, Args: args}
	default:
		panic(fmt.Sprintf("expr: Clone of %T", n))
	}
}

// Vars returns the set of distinct tuple-variable names referenced by
// the tree, in first-appearance order.
func Vars(n Node) []string {
	var out []string
	seen := make(map[string]bool)
	Walk(n, func(m Node) bool {
		if c, ok := m.(*ColumnRef); ok && !seen[c.Var] {
			seen[c.Var] = true
			out = append(out, c.Var)
		}
		return true
	})
	return out
}
