package expr

import (
	"fmt"
	"sort"
	"strings"
)

// CNF is a predicate in conjunctive normal form: an AND of clauses, each
// clause an OR of atoms. An atom is a comparison (possibly under a
// single NOT) or bare constant. Empty CNF means TRUE.
type CNF struct {
	Clauses []Clause
}

// Clause is a disjunction of atomic predicates.
type Clause struct {
	Atoms []Node
}

// Node reassembles the clause into a single OR tree.
func (c Clause) Node() Node {
	var out Node
	for _, a := range c.Atoms {
		out = Or(out, a)
	}
	return out
}

// String renders the clause.
func (c Clause) String() string {
	parts := make([]string, len(c.Atoms))
	for i, a := range c.Atoms {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// Node reassembles the CNF into a single AND-of-ORs tree, or nil for
// the trivially true predicate.
func (c CNF) Node() Node {
	var out Node
	for _, cl := range c.Clauses {
		out = And(out, cl.Node())
	}
	return out
}

// String renders the CNF.
func (c CNF) String() string {
	if len(c.Clauses) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(c.Clauses))
	for i, cl := range c.Clauses {
		parts[i] = cl.String()
	}
	return strings.Join(parts, " AND ")
}

// Vars returns the distinct tuple variables referenced by the clause.
func (c Clause) Vars() []string { return Vars(c.Node()) }

// ToCNF converts an arbitrary Boolean tree to conjunctive normal form:
// push NOT inward (De Morgan, comparison negation), then distribute OR
// over AND. Exponential in the worst case, as usual; trigger conditions
// are small in practice ("most selection predicates will not contain
// ORs", §5).
func ToCNF(n Node) (CNF, error) {
	if n == nil {
		return CNF{}, nil
	}
	nnf, err := toNNF(n, false)
	if err != nil {
		return CNF{}, err
	}
	clauses := distribute(nnf)
	return CNF{Clauses: clauses}, nil
}

// toNNF pushes negations down to atoms. neg tracks whether we are under
// an odd number of NOTs.
func toNNF(n Node, neg bool) (Node, error) {
	switch t := n.(type) {
	case *Unary:
		if t.Op == OpNot {
			return toNNF(t.Child, !neg)
		}
		// Arithmetic negation is an atom constituent.
		if neg {
			return Not(Clone(n)), nil
		}
		return Clone(n), nil
	case *Binary:
		switch t.Op {
		case OpAnd:
			l, err := toNNF(t.Left, neg)
			if err != nil {
				return nil, err
			}
			r, err := toNNF(t.Right, neg)
			if err != nil {
				return nil, err
			}
			if neg {
				return Or(l, r), nil // De Morgan
			}
			return And(l, r), nil
		case OpOr:
			l, err := toNNF(t.Left, neg)
			if err != nil {
				return nil, err
			}
			r, err := toNNF(t.Right, neg)
			if err != nil {
				return nil, err
			}
			if neg {
				return And(l, r), nil
			}
			return Or(l, r), nil
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			if neg {
				return &Binary{Op: t.Op.Negate(), Left: Clone(t.Left), Right: Clone(t.Right)}, nil
			}
			return Clone(n), nil
		case OpLike:
			if neg {
				return Not(Clone(n)), nil // NOT LIKE stays as a guarded atom
			}
			return Clone(n), nil
		default:
			// Arithmetic under boolean context: treat as atom.
			if neg {
				return Not(Clone(n)), nil
			}
			return Clone(n), nil
		}
	default:
		if neg {
			return Not(Clone(n)), nil
		}
		return Clone(n), nil
	}
}

// distribute converts an NNF tree to a list of OR-clauses.
func distribute(n Node) []Clause {
	if b, ok := n.(*Binary); ok {
		switch b.Op {
		case OpAnd:
			return append(distribute(b.Left), distribute(b.Right)...)
		case OpOr:
			left := distribute(b.Left)
			right := distribute(b.Right)
			// (A1 AND A2) OR (B1 AND B2) = cross product of clauses.
			out := make([]Clause, 0, len(left)*len(right))
			for _, lc := range left {
				for _, rc := range right {
					merged := Clause{Atoms: make([]Node, 0, len(lc.Atoms)+len(rc.Atoms))}
					merged.Atoms = append(merged.Atoms, lc.Atoms...)
					merged.Atoms = append(merged.Atoms, rc.Atoms...)
					out = append(out, merged)
				}
			}
			return out
		}
	}
	return []Clause{{Atoms: []Node{n}}}
}

// PredicateClass classifies a conjunct group per §4 of the paper.
type PredicateClass uint8

const (
	// Trivial refers to zero tuple variables (constant predicate).
	Trivial PredicateClass = iota
	// Selection refers to exactly one tuple variable.
	Selection
	// Join refers to exactly two tuple variables.
	Join
	// HyperJoin refers to three or more tuple variables.
	HyperJoin
)

// String names the class.
func (p PredicateClass) String() string {
	switch p {
	case Trivial:
		return "trivial"
	case Selection:
		return "selection"
	case Join:
		return "join"
	case HyperJoin:
		return "hyper-join"
	default:
		return "?"
	}
}

// ConjunctGroup is the AND of all CNF clauses that reference the same
// set of tuple variables (§4: "Group the conjuncts by the set of data
// sources they refer to").
type ConjunctGroup struct {
	// Vars is the sorted set of tuple-variable names the group refers to.
	Vars []string
	// Clauses are the CNF clauses in the group; their AND forms the
	// selection/join predicate.
	Clauses []Clause
	// Class is derived from len(Vars).
	Class PredicateClass
}

// Predicate reassembles the group into a single tree.
func (g ConjunctGroup) Predicate() Node {
	var out Node
	for _, c := range g.Clauses {
		out = And(out, c.Node())
	}
	return out
}

// CNF returns the group's clauses as a CNF value.
func (g ConjunctGroup) CNF() CNF { return CNF{Clauses: g.Clauses} }

// GroupConjuncts partitions CNF clauses by referenced tuple-variable
// set. Groups come back ordered: trivial first, then selections in
// first-appearance order of their variable, then joins, then hyper-joins.
func GroupConjuncts(c CNF) []ConjunctGroup {
	byKey := make(map[string]*ConjunctGroup)
	var order []string
	for _, cl := range c.Clauses {
		vars := cl.Vars()
		sort.Strings(vars)
		key := strings.Join(vars, "\x00")
		g, ok := byKey[key]
		if !ok {
			g = &ConjunctGroup{Vars: vars, Class: classOf(len(vars))}
			byKey[key] = g
			order = append(order, key)
		}
		g.Clauses = append(g.Clauses, cl)
	}
	out := make([]ConjunctGroup, 0, len(order))
	for _, key := range order {
		out = append(out, *byKey[key])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

func classOf(nvars int) PredicateClass {
	switch nvars {
	case 0:
		return Trivial
	case 1:
		return Selection
	case 2:
		return Join
	default:
		return HyperJoin
	}
}

// Binder resolves tuple-variable and column names to indexes.
type Binder struct {
	// VarIndex maps tuple-variable name (lower-cased) to its position in
	// the trigger's from list.
	VarIndex map[string]int
	// ColumnIndex resolves (varIdx, columnName) to a column position,
	// returning -1 if unknown.
	ColumnIndex func(varIdx int, column string) int
	// DefaultVar, when there is exactly one tuple variable, lets bare
	// column names bind without qualification; -1 disables.
	DefaultVar int
}

// Bind resolves all ColumnRefs in n in place (the tree is mutated; pass
// a Clone if the original must be preserved).
func (b *Binder) Bind(n Node) error {
	var firstErr error
	Walk(n, func(m Node) bool {
		c, ok := m.(*ColumnRef)
		if !ok || firstErr != nil {
			return firstErr == nil
		}
		vi := -1
		if c.Var == "" {
			vi = b.DefaultVar
			if vi < 0 {
				firstErr = fmt.Errorf("expr: unqualified column %q is ambiguous", c.Column)
				return false
			}
		} else {
			idx, ok := b.VarIndex[strings.ToLower(c.Var)]
			if !ok {
				firstErr = fmt.Errorf("expr: unknown tuple variable %q", c.Var)
				return false
			}
			vi = idx
		}
		ci := b.ColumnIndex(vi, c.Column)
		if ci < 0 {
			firstErr = fmt.Errorf("expr: unknown column %q of tuple variable %q", c.Column, c.Var)
			return false
		}
		c.VarIdx = vi
		c.ColIdx = ci
		return true
	})
	return firstErr
}
