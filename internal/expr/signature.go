package expr

import (
	"fmt"
	"hash/fnv"
	"strings"

	"triggerman/internal/types"
)

// Signature is an expression signature (§5): the generalized form of a
// selection predicate where every constant is replaced by a numbered
// placeholder, CONSTANT_1 .. CONSTANT_m, in left-to-right order. Two
// predicates with the same signature differ only in constant values and
// form one equivalence class.
//
// A Signature also records the split E = E_I AND E_NI (§5.1): the
// indexable part that can drive a constant-set lookup, and the
// non-indexable rest that must be tested per expression.
type Signature struct {
	// Generalized is the CNF of the predicate with placeholders at
	// constant positions.
	Generalized CNF
	// NumConstants is m, the number of placeholders.
	NumConstants int
	// canonical is the normalized text used for equality and hashing.
	canonical string

	// EqCols lists the bound column indexes of indexable equality atoms
	// (clauses of the single-atom form col = CONSTANT_k), in clause
	// order. When non-empty, the constant set is keyed by the composite
	// [const1..constK] as in the paper's clustered index.
	EqCols []int
	// EqConstNums holds, parallel to EqCols, the placeholder number
	// supplying each key component.
	EqConstNums []int
	// RangeCol, when EqCols is empty and a single-atom range clause
	// exists, is the bound column index of the first such clause;
	// otherwise -1.
	RangeCol int
	// RangeOp is the comparison of that clause, normalized so the column
	// is on the left (e.g. 50 < salary becomes salary > 50).
	RangeOp Op
	// RangeConstNum is the placeholder number of the range bound, or 0.
	RangeConstNum int
	// Rest is the generalized non-indexable remainder E_NI (clauses not
	// consumed by the indexable part). Empty means the whole predicate
	// is indexable.
	Rest CNF
}

// Indexability classifies how a signature's constant set can be probed.
type Indexability uint8

const (
	// IndexNone means no atom is indexable: every member expression must
	// be evaluated against the token.
	IndexNone Indexability = iota
	// IndexEquality means the composite equality key [const1..constK]
	// drives an exact-match lookup.
	IndexEquality
	// IndexRange means a single comparison bound drives an interval
	// stab query.
	IndexRange
)

// String names the indexability class.
func (i Indexability) String() string {
	switch i {
	case IndexEquality:
		return "equality"
	case IndexRange:
		return "range"
	default:
		return "none"
	}
}

// Indexability reports the signature's probe class.
func (s *Signature) Indexability() Indexability {
	switch {
	case len(s.EqCols) > 0:
		return IndexEquality
	case s.RangeCol >= 0:
		return IndexRange
	default:
		return IndexNone
	}
}

// Canonical returns the normalized text of the generalized expression.
// Signatures are equal iff their canonical forms are equal.
func (s *Signature) Canonical() string { return s.canonical }

// Hash returns a stable hash of the canonical form.
func (s *Signature) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.canonical))
	return h.Sum64()
}

// String implements fmt.Stringer.
func (s *Signature) String() string { return s.canonical }

// ExtractSignature generalizes a bound selection-predicate CNF: it
// replaces each constant with a numbered placeholder, records the
// extracted constants in order, and computes the indexable split. The
// input CNF must reference a single tuple variable (a selection
// predicate per §4); column references must already be bound.
func ExtractSignature(c CNF) (*Signature, []types.Value, error) {
	sig := &Signature{RangeCol: -1}
	var consts []types.Value
	next := 1

	gen := CNF{Clauses: make([]Clause, len(c.Clauses))}
	for i, cl := range c.Clauses {
		atoms := make([]Node, len(cl.Atoms))
		for j, a := range cl.Atoms {
			g, err := generalize(Clone(a), &next, &consts)
			if err != nil {
				return nil, nil, err
			}
			atoms[j] = g
		}
		gen.Clauses[i] = Clause{Atoms: atoms}
	}
	sig.Generalized = gen
	sig.NumConstants = next - 1

	// Indexable split: single-atom clauses of form col = CONSTANT_k form
	// a composite equality key. Failing that, the first single-atom
	// range clause col {<,<=,>,>=} CONSTANT_k is range-indexable.
	var rest []Clause
	for _, cl := range gen.Clauses {
		if col, op, num, ok := indexableAtom(cl); ok && op == OpEq {
			sig.EqCols = append(sig.EqCols, col)
			sig.EqConstNums = append(sig.EqConstNums, num)
			continue
		}
		rest = append(rest, cl)
	}
	if len(sig.EqCols) == 0 {
		kept := rest[:0]
		for _, cl := range rest {
			if sig.RangeCol < 0 {
				if col, op, num, ok := indexableAtom(cl); ok && op != OpEq && op != OpNe && op != OpLike {
					sig.RangeCol = col
					sig.RangeOp = op
					sig.RangeConstNum = num
					continue
				}
			}
			kept = append(kept, cl)
		}
		rest = kept
	}
	sig.Rest = CNF{Clauses: rest}
	sig.canonical = canonicalText(gen)
	return sig, consts, nil
}

// generalize replaces Const leaves with numbered placeholders, appending
// the extracted values to consts. Scalar sub-structure (arithmetic,
// functions) is preserved.
func generalize(n Node, next *int, consts *[]types.Value) (Node, error) {
	switch t := n.(type) {
	case *Const:
		*consts = append(*consts, t.Val)
		p := &Placeholder{Num: *next}
		*next++
		return p, nil
	case *ColumnRef, *Placeholder:
		return n, nil
	case *Unary:
		c, err := generalize(t.Child, next, consts)
		if err != nil {
			return nil, err
		}
		t.Child = c
		return t, nil
	case *Binary:
		l, err := generalize(t.Left, next, consts)
		if err != nil {
			return nil, err
		}
		r, err := generalize(t.Right, next, consts)
		if err != nil {
			return nil, err
		}
		t.Left, t.Right = l, r
		return t, nil
	case *FuncCall:
		for i, a := range t.Args {
			g, err := generalize(a, next, consts)
			if err != nil {
				return nil, err
			}
			t.Args[i] = g
		}
		return t, nil
	default:
		return nil, fmt.Errorf("expr: cannot generalize %T", n)
	}
}

// indexableAtom recognizes a single-atom clause of the form
// col <cmp> CONSTANT_k (or the flipped CONSTANT_k <cmp> col, which it
// normalizes). Returns the bound column index, operator (column on the
// left), and placeholder number.
func indexableAtom(cl Clause) (col int, op Op, constNum int, ok bool) {
	if len(cl.Atoms) != 1 {
		return 0, 0, 0, false
	}
	b, isBin := cl.Atoms[0].(*Binary)
	if !isBin || !b.Op.IsComparison() {
		return 0, 0, 0, false
	}
	if c, p, good := colAndPlaceholder(b.Left, b.Right); good {
		return c.ColIdx, b.Op, p.Num, c.ColIdx >= 0 && !c.Old
	}
	if c, p, good := colAndPlaceholder(b.Right, b.Left); good {
		return c.ColIdx, flip(b.Op), p.Num, c.ColIdx >= 0 && !c.Old
	}
	return 0, 0, 0, false
}

func colAndPlaceholder(a, b Node) (*ColumnRef, *Placeholder, bool) {
	c, ok1 := a.(*ColumnRef)
	p, ok2 := b.(*Placeholder)
	if ok1 && ok2 {
		return c, p, true
	}
	return nil, nil, false
}

// flip mirrors a comparison across its operands (a < b  <=>  b > a).
func flip(o Op) Op {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return o
	}
}

// canonicalText renders the generalized CNF with normalized casing and
// positional (bound) column references so that textual equality means
// structural equality.
func canonicalText(c CNF) string {
	var b strings.Builder
	for i, cl := range c.Clauses {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteByte('(')
		for j, a := range cl.Atoms {
			if j > 0 {
				b.WriteString(" OR ")
			}
			writeCanonical(&b, a)
		}
		b.WriteByte(')')
	}
	return b.String()
}

func writeCanonical(b *strings.Builder, n Node) {
	switch t := n.(type) {
	case *Const:
		b.WriteString(t.Val.String())
	case *Placeholder:
		fmt.Fprintf(b, "$%d", t.Num)
	case *ColumnRef:
		if t.Old {
			b.WriteString("old.")
		}
		if t.VarIdx >= 0 {
			fmt.Fprintf(b, "#%d.%d", t.VarIdx, t.ColIdx)
		} else {
			b.WriteString(strings.ToLower(t.Var))
			b.WriteByte('.')
			b.WriteString(strings.ToLower(t.Column))
		}
	case *Unary:
		b.WriteString(t.Op.String())
		b.WriteByte('(')
		writeCanonical(b, t.Child)
		b.WriteByte(')')
	case *Binary:
		b.WriteByte('(')
		writeCanonical(b, t.Left)
		b.WriteByte(' ')
		b.WriteString(t.Op.String())
		b.WriteByte(' ')
		writeCanonical(b, t.Right)
		b.WriteByte(')')
	case *FuncCall:
		b.WriteString(strings.ToLower(t.Name))
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			writeCanonical(b, a)
		}
		b.WriteByte(')')
	}
}

// Instantiate substitutes constants for placeholders in a generalized
// tree, returning a concrete copy. consts is indexed by placeholder
// number - 1.
func Instantiate(n Node, consts []types.Value) (Node, error) {
	switch t := n.(type) {
	case nil:
		return nil, nil
	case *Placeholder:
		if t.Num < 1 || t.Num > len(consts) {
			return nil, fmt.Errorf("expr: placeholder $%d out of range (have %d constants)", t.Num, len(consts))
		}
		return Lit(consts[t.Num-1]), nil
	case *Const, *ColumnRef:
		return Clone(t), nil
	case *Unary:
		c, err := Instantiate(t.Child, consts)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Op, Child: c}, nil
	case *Binary:
		l, err := Instantiate(t.Left, consts)
		if err != nil {
			return nil, err
		}
		r, err := Instantiate(t.Right, consts)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: t.Op, Left: l, Right: r}, nil
	case *FuncCall:
		args := make([]Node, len(t.Args))
		for i, a := range t.Args {
			g, err := Instantiate(a, consts)
			if err != nil {
				return nil, err
			}
			args[i] = g
		}
		return &FuncCall{Name: t.Name, Args: args}, nil
	default:
		return nil, fmt.Errorf("expr: cannot instantiate %T", n)
	}
}

// InstantiateCNF applies Instantiate clause-wise.
func InstantiateCNF(c CNF, consts []types.Value) (CNF, error) {
	out := CNF{Clauses: make([]Clause, len(c.Clauses))}
	for i, cl := range c.Clauses {
		atoms := make([]Node, len(cl.Atoms))
		for j, a := range cl.Atoms {
			n, err := Instantiate(a, consts)
			if err != nil {
				return CNF{}, err
			}
			atoms[j] = n
		}
		out.Clauses[i] = Clause{Atoms: atoms}
	}
	return out, nil
}

// EqKey builds the composite equality key [const1..constK] for an
// expression in this signature's class, given its constant vector.
func (s *Signature) EqKey(consts []types.Value) (types.Tuple, error) {
	key := make(types.Tuple, len(s.EqConstNums))
	for i, num := range s.EqConstNums {
		if num < 1 || num > len(consts) {
			return nil, fmt.Errorf("expr: constant %d missing for equality key", num)
		}
		key[i] = consts[num-1]
	}
	return key, nil
}

// TokenEqKey builds the probe key for a token tuple: the values of the
// signature's equality columns in EqCols order.
func (s *Signature) TokenEqKey(tu types.Tuple) types.Tuple {
	key := make(types.Tuple, len(s.EqCols))
	for i, col := range s.EqCols {
		key[i] = tu.Get(col)
	}
	return key
}
