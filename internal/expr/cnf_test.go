package expr

import (
	"math/rand"
	"testing"

	"triggerman/internal/types"
)

func TestToCNFSimple(t *testing.T) {
	// a AND b -> two clauses
	n := And(Cmp(OpEq, Col("r", "a"), Int(1)), Cmp(OpEq, Col("r", "b"), Int(2)))
	c, err := ToCNF(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clauses) != 2 || len(c.Clauses[0].Atoms) != 1 {
		t.Fatalf("CNF = %s", c)
	}
}

func TestToCNFDistribution(t *testing.T) {
	// a OR (b AND c) -> (a OR b) AND (a OR c)
	a := Cmp(OpEq, Col("r", "a"), Int(1))
	b := Cmp(OpEq, Col("r", "b"), Int(2))
	cc := Cmp(OpEq, Col("r", "c"), Int(3))
	c, err := ToCNF(Or(a, And(b, cc)))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clauses) != 2 {
		t.Fatalf("want 2 clauses, got %s", c)
	}
	for _, cl := range c.Clauses {
		if len(cl.Atoms) != 2 {
			t.Errorf("clause %s should have 2 atoms", cl)
		}
	}
}

func TestToCNFDeMorganAndNegation(t *testing.T) {
	// NOT (a = 1 AND b < 2) -> (a <> 1 OR b >= 2)
	n := Not(And(Cmp(OpEq, Col("r", "a"), Int(1)), Cmp(OpLt, Col("r", "b"), Int(2))))
	c, err := ToCNF(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clauses) != 1 || len(c.Clauses[0].Atoms) != 2 {
		t.Fatalf("CNF = %s", c)
	}
	got := c.String()
	want := "(r.a <> 1 OR r.b >= 2)"
	if got != want {
		t.Errorf("CNF = %q, want %q", got, want)
	}
}

func TestToCNFDoubleNegation(t *testing.T) {
	a := Cmp(OpGt, Col("r", "x"), Int(5))
	c, err := ToCNF(Not(Not(a)))
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "(r.x > 5)" {
		t.Errorf("CNF = %q", c)
	}
}

func TestToCNFNotLike(t *testing.T) {
	n := Not(Cmp(OpLike, Col("r", "s"), Str("a%")))
	c, err := ToCNF(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Clauses[0].Atoms[0].(*Unary); !ok {
		t.Errorf("NOT LIKE should stay a guarded atom: %s", c)
	}
}

func TestToCNFNil(t *testing.T) {
	c, err := ToCNF(nil)
	if err != nil || len(c.Clauses) != 0 {
		t.Errorf("nil -> %v, %v", c, err)
	}
	if c.String() != "TRUE" {
		t.Errorf("empty CNF string = %q", c.String())
	}
	if c.Node() != nil {
		t.Error("empty CNF Node should be nil")
	}
}

// cnfEquivalent checks semantic equivalence of original and CNF over
// random single-variable environments.
func cnfEquivalent(t *testing.T, orig Node, cols map[string]int) {
	t.Helper()
	c, err := ToCNF(orig)
	if err != nil {
		t.Fatal(err)
	}
	back := c.Node()
	bindSingle(t, orig, cols)
	if back != nil {
		bindSingle(t, back, cols)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		env := SingleEnv{New: types.Tuple{
			types.NewString(string(rune('a' + rng.Intn(3)))),
			types.NewInt(int64(rng.Intn(10))),
			types.NewInt(int64(rng.Intn(10))),
		}}
		a, err1 := EvalPredicate(orig, env)
		if back == nil {
			if a != True {
				t.Fatalf("empty CNF but original = %s", a)
			}
			continue
		}
		b, err2 := EvalPredicate(back, env)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval: %v / %v", err1, err2)
		}
		if a != b {
			t.Fatalf("env %v: original=%s cnf=%s (%s vs %s)", env.New, a, b, orig, back)
		}
	}
}

func TestCNFEquivalenceRandom(t *testing.T) {
	cols := map[string]int{"name": 0, "x": 1, "y": 2}
	mk := func() Node {
		return nil
	}
	_ = mk
	rng := rand.New(rand.NewSource(7))
	var gen func(depth int) Node
	gen = func(depth int) Node {
		if depth == 0 || rng.Intn(3) == 0 {
			cols := []string{"name", "x", "y"}
			col := cols[rng.Intn(len(cols))]
			ops := []Op{OpEq, OpNe, OpLt, OpGt, OpLe, OpGe}
			op := ops[rng.Intn(len(ops))]
			if col == "name" {
				op = OpEq
				return Cmp(op, Col("r", col), Str(string(rune('a'+rng.Intn(3)))))
			}
			return Cmp(op, Col("r", col), Int(int64(rng.Intn(10))))
		}
		switch rng.Intn(3) {
		case 0:
			return And(gen(depth-1), gen(depth-1))
		case 1:
			return Or(gen(depth-1), gen(depth-1))
		default:
			return Not(gen(depth - 1))
		}
	}
	for trial := 0; trial < 40; trial++ {
		n := gen(3)
		cnfEquivalent(t, n, cols)
	}
}

func TestGroupConjuncts(t *testing.T) {
	// s.name='Iris' AND s.spno=r.spno AND r.nno=h.nno  (IrisHouseAlert, §2)
	sel := Cmp(OpEq, Col("s", "name"), Str("Iris"))
	j1 := Cmp(OpEq, Col("s", "spno"), Col("r", "spno"))
	j2 := Cmp(OpEq, Col("r", "nno"), Col("h", "nno"))
	c, err := ToCNF(And(And(sel, j1), j2))
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupConjuncts(c)
	if len(groups) != 3 {
		t.Fatalf("want 3 groups, got %d", len(groups))
	}
	if groups[0].Class != Selection || len(groups[0].Vars) != 1 || groups[0].Vars[0] != "s" {
		t.Errorf("group 0 = %+v", groups[0])
	}
	if groups[1].Class != Join || groups[2].Class != Join {
		t.Errorf("join groups: %v %v", groups[1].Class, groups[2].Class)
	}
}

func TestGroupConjunctsTrivialAndHyper(t *testing.T) {
	trivial := Cmp(OpEq, Int(1), Int(1))
	hyper := Cmp(OpEq, &Binary{Op: OpAdd, Left: Col("a", "x"), Right: Col("b", "y")}, Col("c", "z"))
	sel := Cmp(OpGt, Col("a", "x"), Int(0))
	c, err := ToCNF(And(And(trivial, hyper), sel))
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupConjuncts(c)
	if len(groups) != 3 {
		t.Fatalf("want 3 groups, got %d: %v", len(groups), groups)
	}
	// ordered: trivial, selection, hyper-join
	if groups[0].Class != Trivial {
		t.Errorf("group 0 class = %s", groups[0].Class)
	}
	if groups[1].Class != Selection {
		t.Errorf("group 1 class = %s", groups[1].Class)
	}
	if groups[2].Class != HyperJoin {
		t.Errorf("group 2 class = %s", groups[2].Class)
	}
	if Trivial.String() != "trivial" || HyperJoin.String() != "hyper-join" {
		t.Error("class names")
	}
}

func TestGroupMergesSameVarSet(t *testing.T) {
	a := Cmp(OpGt, Col("r", "x"), Int(1))
	b := Cmp(OpLt, Col("r", "x"), Int(10))
	c, _ := ToCNF(And(a, b))
	groups := GroupConjuncts(c)
	if len(groups) != 1 || len(groups[0].Clauses) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].Predicate() == nil {
		t.Error("predicate reassembly")
	}
}

func TestBinderErrors(t *testing.T) {
	b := &Binder{
		VarIndex:    map[string]int{"r": 0},
		DefaultVar:  -1,
		ColumnIndex: func(_ int, c string) int { return map[string]int{"x": 0}[c] - 0 },
	}
	// ColumnIndex above returns 0 for everything; build a stricter one.
	b.ColumnIndex = func(_ int, c string) int {
		if c == "x" {
			return 0
		}
		return -1
	}
	if err := b.Bind(Cmp(OpEq, Col("unknown", "x"), Int(1))); err == nil {
		t.Error("unknown variable should error")
	}
	if err := b.Bind(Cmp(OpEq, Col("r", "nope"), Int(1))); err == nil {
		t.Error("unknown column should error")
	}
	if err := b.Bind(Cmp(OpEq, Col("", "x"), Int(1))); err == nil {
		t.Error("unqualified without default should error")
	}
	b.DefaultVar = 0
	n := Cmp(OpEq, Col("", "x"), Int(1))
	if err := b.Bind(n); err != nil {
		t.Errorf("default var bind: %v", err)
	}
	ref := n.(*Binary).Left.(*ColumnRef)
	if ref.VarIdx != 0 || ref.ColIdx != 0 {
		t.Errorf("bound ref = %+v", ref)
	}
}

func TestWalkAndClone(t *testing.T) {
	n := And(
		Cmp(OpEq, Col("r", "a"), Int(1)),
		&FuncCall{Name: "abs", Args: []Node{Col("r", "b")}},
	)
	count := 0
	Walk(n, func(Node) bool { count++; return true })
	if count != 6 { // And, Cmp, Col, Int, Func, Col
		t.Errorf("walk count = %d", count)
	}
	cl := Clone(n)
	if cl.String() != n.String() {
		t.Errorf("clone %q != %q", cl.String(), n.String())
	}
	// mutating clone must not affect original
	cl.(*Binary).Left.(*Binary).Left.(*ColumnRef).Column = "z"
	if cl.String() == n.String() {
		t.Error("clone aliases original")
	}
	vars := Vars(n)
	if len(vars) != 1 || vars[0] != "r" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestOpHelpers(t *testing.T) {
	if OpLt.Negate() != OpGe || OpEq.Negate() != OpNe {
		t.Error("Negate")
	}
	if !OpLike.IsComparison() || OpAnd.IsComparison() {
		t.Error("IsComparison")
	}
	defer func() {
		if recover() == nil {
			t.Error("Negate(OpAnd) should panic")
		}
	}()
	_ = OpAnd.Negate()
}

func TestStringRendering(t *testing.T) {
	n := Or(And(Cmp(OpEq, Col("r", "a"), Int(1)), Cmp(OpEq, Col("r", "b"), Int(2))),
		Cmp(OpGt, Col("r", "c"), Int(3)))
	got := n.String()
	want := "r.a = 1 AND r.b = 2 OR r.c > 3" // AND binds tighter; no parens needed
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	old := &ColumnRef{Column: "salary", Old: true}
	if old.String() != ":OLD.salary" {
		t.Errorf("old ref = %q", old.String())
	}
}
