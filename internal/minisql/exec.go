package minisql

import (
	"bytes"
	"fmt"
	"strings"

	"triggerman/internal/expr"
	"triggerman/internal/parser"
	"triggerman/internal/storage"
	"triggerman/internal/types"
)

// Result is the outcome of a statement execution.
type Result struct {
	// Columns names the select projection (empty for DML).
	Columns []string
	// Rows holds select output.
	Rows []types.Tuple
	// Affected counts rows touched by insert/update/delete.
	Affected int
	// IndexUsed names the index chosen by the planner, if any.
	IndexUsed string
	// Table names the DML target (empty for select).
	Table string
	// Changes lists the row images touched by DML, in order, for update
	// capture: insert sets New, delete sets Old, update sets both.
	Changes []RowChange
}

// RowChange is one captured row mutation.
type RowChange struct {
	Old, New types.Tuple
}

// Exec parses and executes a statement string.
func (db *DB) Exec(sql string) (*Result, error) {
	st, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(st)
}

// ExecStmt executes a pre-parsed statement. Column references in the
// statement must resolve against the target table; :NEW/:OLD references
// must already have been substituted away (the exec package performs
// the paper's macro substitution before calling here).
func (db *DB) ExecStmt(st parser.Statement) (*Result, error) {
	switch s := st.(type) {
	case *parser.Select:
		return db.execSelect(s)
	case *parser.Insert:
		return db.execInsert(s)
	case *parser.Update:
		return db.execUpdate(s)
	case *parser.Delete:
		return db.execDelete(s)
	default:
		return nil, fmt.Errorf("minisql: unsupported statement %T", st)
	}
}

// bindTo resolves column refs in n against the table's schema. The
// table name (or nothing) is the only legal qualifier.
func bindTo(t *Table, n expr.Node) error {
	if n == nil {
		return nil
	}
	b := &expr.Binder{
		VarIndex:   map[string]int{strings.ToLower(t.Name): 0},
		DefaultVar: 0,
		ColumnIndex: func(_ int, col string) int {
			return t.Schema.ColumnIndex(col)
		},
	}
	return b.Bind(n)
}

func rowEnv(tu types.Tuple) expr.Env { return expr.SingleEnv{New: tu} }

// plan describes how a WHERE clause will locate rows.
type plan struct {
	index *Index
	// eqKey, when set, is an exact composite key probe.
	eqKey []byte
	// lo/hi bound a single-column range scan on index.Columns[0];
	// nil end means unbounded. loStrict/hiStrict exclude the endpoint.
	lo, hi             *types.Value
	loStrict, hiStrict bool
}

// choosePlan looks for an index that can serve the WHERE clause: first a
// full composite equality match, then a single-column range.
func (t *Table) choosePlan(where expr.Node) *plan {
	if where == nil {
		return nil
	}
	cnf, err := expr.ToCNF(where)
	if err != nil {
		return nil
	}
	// Equality atoms col -> value.
	eq := map[int]types.Value{}
	type rng struct {
		val types.Value
		op  expr.Op
	}
	ranges := map[int][]rng{}
	for _, cl := range cnf.Clauses {
		if len(cl.Atoms) != 1 {
			continue
		}
		b, ok := cl.Atoms[0].(*expr.Binary)
		if !ok || !b.Op.IsComparison() {
			continue
		}
		col, val, op, ok := colConst(b)
		if !ok {
			continue
		}
		if op == expr.OpEq {
			eq[col] = val
		} else {
			ranges[col] = append(ranges[col], rng{val, op})
		}
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Full composite equality.
	for _, ix := range t.indexes {
		key := make(types.Tuple, 0, len(ix.Columns))
		ok := true
		for _, c := range ix.Columns {
			v, has := eq[c]
			if !has {
				ok = false
				break
			}
			key = append(key, v)
		}
		if ok {
			return &plan{index: ix, eqKey: types.EncodeKey(nil, key)}
		}
	}
	// Single-column range on an index prefix.
	for _, ix := range t.indexes {
		c := ix.Columns[0]
		rs := ranges[c]
		if len(rs) == 0 {
			continue
		}
		p := &plan{index: ix}
		for _, r := range rs {
			v := r.val
			switch r.op {
			case expr.OpGt:
				if p.lo == nil || types.Compare(v, *p.lo) > 0 {
					p.lo, p.loStrict = &v, true
				}
			case expr.OpGe:
				if p.lo == nil || types.Compare(v, *p.lo) > 0 {
					p.lo, p.loStrict = &v, false
				}
			case expr.OpLt:
				if p.hi == nil || types.Compare(v, *p.hi) < 0 {
					p.hi, p.hiStrict = &v, true
				}
			case expr.OpLe:
				if p.hi == nil || types.Compare(v, *p.hi) < 0 {
					p.hi, p.hiStrict = &v, false
				}
			}
		}
		if p.lo != nil || p.hi != nil {
			return p
		}
	}
	return nil
}

// colConst recognizes column-vs-constant comparisons, normalizing the
// column to the left.
func colConst(b *expr.Binary) (col int, val types.Value, op expr.Op, ok bool) {
	if c, isCol := b.Left.(*expr.ColumnRef); isCol && !c.Old && c.ColIdx >= 0 {
		if k, isConst := b.Right.(*expr.Const); isConst {
			return c.ColIdx, k.Val, b.Op, true
		}
	}
	if c, isCol := b.Right.(*expr.ColumnRef); isCol && !c.Old && c.ColIdx >= 0 {
		if k, isConst := b.Left.(*expr.Const); isConst {
			switch b.Op {
			case expr.OpLt:
				return c.ColIdx, k.Val, expr.OpGt, true
			case expr.OpLe:
				return c.ColIdx, k.Val, expr.OpGe, true
			case expr.OpGt:
				return c.ColIdx, k.Val, expr.OpLt, true
			case expr.OpGe:
				return c.ColIdx, k.Val, expr.OpLe, true
			case expr.OpEq, expr.OpNe:
				return c.ColIdx, k.Val, b.Op, true
			}
		}
	}
	return 0, types.Value{}, 0, false
}

// matchingRIDs runs the plan (or a full scan when plan is nil), calling
// fn for candidate rows; the WHERE clause is re-checked by the caller.
func (t *Table) candidates(p *plan, fn func(rid storage.RID, tu types.Tuple) bool) error {
	if p == nil {
		return t.Scan(fn)
	}
	if p.eqKey != nil {
		vals, err := p.index.tree.Lookup(p.eqKey)
		if err != nil {
			return err
		}
		for _, v := range vals {
			rid := storage.UnpackRID(v)
			tu, err := t.Get(rid)
			if err != nil {
				// Row vanished between index and heap (no MVCC); skip.
				continue
			}
			if !fn(rid, tu) {
				return nil
			}
		}
		return nil
	}
	// Range scan.
	var start []byte
	if p.lo != nil {
		start = types.EncodeKey(nil, types.Tuple{*p.lo})
		if p.loStrict {
			// Successor of all keys with this prefix: append 0xFF guard.
			start = append(start, 0xFF)
		}
	}
	var hiKey []byte
	if p.hi != nil {
		hiKey = types.EncodeKey(nil, types.Tuple{*p.hi})
	}
	var ierr error
	err := p.index.tree.Scan(start, func(k []byte, v uint64) bool {
		if hiKey != nil {
			c := bytes.Compare(truncateTo(k, hiKey), hiKey)
			if c > 0 || (c == 0 && p.hiStrict) {
				return false
			}
		}
		rid := storage.UnpackRID(v)
		tu, err := t.Get(rid)
		if err != nil {
			return true
		}
		if ierr != nil {
			return false
		}
		return fn(rid, tu)
	})
	if err != nil {
		return err
	}
	return ierr
}

// truncateTo cuts k to at most the length of bound for prefix compare
// (composite index keys extend past the single-column bound).
func truncateTo(k, bound []byte) []byte {
	if len(k) > len(bound) {
		return k[:len(bound)]
	}
	return k
}

func (db *DB) execSelect(s *parser.Select) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	where := expr.Clone(s.Where)
	if err := bindTo(t, where); err != nil {
		return nil, err
	}
	// Projection setup.
	var cols []string
	var exprs []expr.Node
	for _, item := range s.Items {
		if item.Star {
			for i, c := range t.Schema.Columns {
				cols = append(cols, c.Name)
				exprs = append(exprs, &expr.ColumnRef{Column: c.Name, VarIdx: 0, ColIdx: i})
			}
			continue
		}
		e := expr.Clone(item.Expr)
		if err := bindTo(t, e); err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			name = e.String()
		}
		cols = append(cols, name)
		exprs = append(exprs, e)
	}
	res := &Result{Columns: cols}
	pl := t.choosePlan(where)
	if pl != nil {
		res.IndexUsed = pl.index.Name
	}
	var eerr error
	err = t.candidates(pl, func(rid storage.RID, tu types.Tuple) bool {
		env := rowEnv(tu)
		if where != nil {
			ok, werr := expr.EvalPredicate(where, env)
			if werr != nil {
				eerr = werr
				return false
			}
			if ok != expr.True {
				return true
			}
		}
		row := make(types.Tuple, len(exprs))
		for i, e := range exprs {
			v, verr := expr.EvalScalar(e, env)
			if verr != nil {
				eerr = verr
				return false
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
		return true
	})
	if err != nil {
		return nil, err
	}
	if eerr != nil {
		return nil, eerr
	}
	return res, nil
}

func (db *DB) execInsert(s *parser.Insert) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	tu := make(types.Tuple, t.Schema.Arity())
	for i := range tu {
		tu[i] = types.Null()
	}
	for i, ve := range s.Values {
		e := expr.Clone(ve)
		// Value expressions may not reference table columns.
		v, err := expr.EvalScalar(e, expr.SingleEnv{})
		if err != nil {
			return nil, fmt.Errorf("minisql: insert value %d: %w", i+1, err)
		}
		pos := i
		if len(s.Columns) > 0 {
			pos = t.Schema.ColumnIndex(s.Columns[i])
			if pos < 0 {
				return nil, fmt.Errorf("minisql: unknown column %q in insert", s.Columns[i])
			}
		}
		if pos >= len(tu) {
			return nil, fmt.Errorf("minisql: insert supplies %d values but %s has %d columns",
				len(s.Values), t.Name, t.Schema.Arity())
		}
		tu[pos] = v
	}
	if _, err := t.Insert(tu); err != nil {
		return nil, err
	}
	return &Result{Affected: 1, Table: t.Name, Changes: []RowChange{{New: tu}}}, nil
}

func (db *DB) execUpdate(s *parser.Update) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	where := expr.Clone(s.Where)
	if err := bindTo(t, where); err != nil {
		return nil, err
	}
	type setc struct {
		col int
		e   expr.Node
	}
	var sets []setc
	for _, sc := range s.Sets {
		col := t.Schema.ColumnIndex(sc.Column)
		if col < 0 {
			return nil, fmt.Errorf("minisql: unknown column %q in update", sc.Column)
		}
		e := expr.Clone(sc.Value)
		if err := bindTo(t, e); err != nil {
			return nil, err
		}
		sets = append(sets, setc{col, e})
	}
	// Collect matches first (mutating while scanning an index we may be
	// updating would invalidate the iteration).
	pl := t.choosePlan(where)
	type match struct {
		rid storage.RID
		tu  types.Tuple
	}
	var matches []match
	var eerr error
	err = t.candidates(pl, func(rid storage.RID, tu types.Tuple) bool {
		if where != nil {
			ok, werr := expr.EvalPredicate(where, rowEnv(tu))
			if werr != nil {
				eerr = werr
				return false
			}
			if ok != expr.True {
				return true
			}
		}
		matches = append(matches, match{rid, tu.Clone()})
		return true
	})
	if err != nil {
		return nil, err
	}
	if eerr != nil {
		return nil, eerr
	}
	res := &Result{Table: t.Name}
	if pl != nil {
		res.IndexUsed = pl.index.Name
	}
	for _, m := range matches {
		env := rowEnv(m.tu)
		nt := m.tu.Clone()
		for _, sc := range sets {
			v, verr := expr.EvalScalar(sc.e, env)
			if verr != nil {
				return nil, verr
			}
			nt[sc.col] = v
		}
		if _, err := t.UpdateRow(m.rid, nt); err != nil {
			return nil, err
		}
		res.Affected++
		res.Changes = append(res.Changes, RowChange{Old: m.tu, New: nt})
	}
	return res, nil
}

func (db *DB) execDelete(s *parser.Delete) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	where := expr.Clone(s.Where)
	if err := bindTo(t, where); err != nil {
		return nil, err
	}
	pl := t.choosePlan(where)
	var rids []storage.RID
	var eerr error
	err = t.candidates(pl, func(rid storage.RID, tu types.Tuple) bool {
		if where != nil {
			ok, werr := expr.EvalPredicate(where, rowEnv(tu))
			if werr != nil {
				eerr = werr
				return false
			}
			if ok != expr.True {
				return true
			}
		}
		rids = append(rids, rid)
		return true
	})
	if err != nil {
		return nil, err
	}
	if eerr != nil {
		return nil, eerr
	}
	res := &Result{Table: t.Name}
	if pl != nil {
		res.IndexUsed = pl.index.Name
	}
	for _, rid := range rids {
		old, gerr := t.Get(rid)
		if gerr != nil {
			return nil, gerr
		}
		if err := t.Delete(rid); err != nil {
			return nil, err
		}
		res.Affected++
		res.Changes = append(res.Changes, RowChange{Old: old})
	}
	return res, nil
}
