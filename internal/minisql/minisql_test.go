package minisql

import (
	"fmt"
	"testing"

	"triggerman/internal/storage"
	"triggerman/internal/types"
)

func newDB(t testing.TB) *DB {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMem(), 256)
	db, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func empTable(t testing.TB, db *DB) *Table {
	t.Helper()
	schema := types.MustSchema(
		types.Column{Name: "name", Kind: types.KindVarchar},
		types.Column{Name: "salary", Kind: types.KindInt},
		types.Column{Name: "dept", Kind: types.KindVarchar},
	)
	tab, err := db.CreateTable("emp", schema)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func seedEmp(t testing.TB, db *DB) {
	t.Helper()
	for i, row := range []string{"Bob,90000,eng", "Alice,120000,eng", "Carol,70000,ops", "Dave,50000,sales"} {
		var name, dept string
		var sal int64
		if _, err := fmt.Sscanf(row, "%s", &name); err != nil {
			_ = i
		}
		_ = name
		_ = dept
		_ = sal
		_ = row
	}
	for _, r := range []struct {
		name string
		sal  int64
		dept string
	}{
		{"Bob", 90000, "eng"},
		{"Alice", 120000, "eng"},
		{"Carol", 70000, "ops"},
		{"Dave", 50000, "sales"},
	} {
		if _, err := db.Exec(fmt.Sprintf(
			"insert into emp values ('%s', %d, '%s')", r.name, r.sal, r.dept)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCreateTableAndInsertSelect(t *testing.T) {
	db := newDB(t)
	empTable(t, db)
	seedEmp(t, db)

	res, err := db.Exec("select name, salary from emp where dept = 'eng'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "name" || res.Columns[1] != "salary" {
		t.Errorf("columns = %v", res.Columns)
	}
	res, _ = db.Exec("select * from emp")
	if len(res.Rows) != 4 || len(res.Columns) != 3 {
		t.Errorf("star select: %d rows, %v", len(res.Rows), res.Columns)
	}
	// Expression projection with alias.
	res, err = db.Exec("select salary * 2 as dbl from emp where name = 'Bob'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "dbl" || res.Rows[0][0].Int() != 180000 {
		t.Errorf("alias select = %v %v", res.Columns, res.Rows)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := newDB(t)
	empTable(t, db)
	seedEmp(t, db)

	res, err := db.Exec("update emp set salary = salary + 1000 where dept = 'eng'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Errorf("affected = %d", res.Affected)
	}
	r2, _ := db.Exec("select salary from emp where name = 'Bob'")
	if r2.Rows[0][0].Int() != 91000 {
		t.Errorf("salary = %v", r2.Rows[0][0])
	}
	res, _ = db.Exec("delete from emp where salary < 60000")
	if res.Affected != 1 {
		t.Errorf("delete affected = %d", res.Affected)
	}
	tab, _ := db.Table("emp")
	if tab.Count() != 3 {
		t.Errorf("count = %d", tab.Count())
	}
	// delete everything
	res, _ = db.Exec("delete from emp")
	if res.Affected != 3 || tab.Count() != 0 {
		t.Errorf("delete all: %d, count %d", res.Affected, tab.Count())
	}
}

func TestInsertVariants(t *testing.T) {
	db := newDB(t)
	empTable(t, db)
	// Named columns, partial: missing column becomes NULL.
	if _, err := db.Exec("insert into emp(name, dept) values ('Eve', 'eng')"); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("select salary from emp where name = 'Eve'")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("missing column should be NULL, got %v", res.Rows[0][0])
	}
	// Type mismatch.
	if _, err := db.Exec("insert into emp values (42, 'oops', 'x')"); err == nil {
		t.Error("type mismatch should fail")
	}
	// Arity overflow.
	if _, err := db.Exec("insert into emp values ('a', 1, 'b', 'c')"); err == nil {
		t.Error("arity overflow should fail")
	}
	// Unknown column.
	if _, err := db.Exec("insert into emp(ghost) values (1)"); err == nil {
		t.Error("unknown column should fail")
	}
	// Unknown table.
	if _, err := db.Exec("insert into nope values (1)"); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestIndexUseEquality(t *testing.T) {
	db := newDB(t)
	tab := empTable(t, db)
	seedEmp(t, db)
	if _, err := tab.CreateIndex("emp_name", "name"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("select salary from emp where name = 'Alice'")
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexUsed != "emp_name" {
		t.Errorf("index not used: %q", res.IndexUsed)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 120000 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Index maintained across update.
	if _, err := db.Exec("update emp set name = 'Alicia' where name = 'Alice'"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Exec("select salary from emp where name = 'Alicia'")
	if len(res.Rows) != 1 {
		t.Errorf("post-update lookup rows = %v", res.Rows)
	}
	res, _ = db.Exec("select salary from emp where name = 'Alice'")
	if len(res.Rows) != 0 {
		t.Error("old key still in index")
	}
	// Index maintained across delete.
	db.Exec("delete from emp where name = 'Alicia'")
	res, _ = db.Exec("select salary from emp where name = 'Alicia'")
	if len(res.Rows) != 0 {
		t.Error("deleted key still in index")
	}
}

func TestIndexUseRange(t *testing.T) {
	db := newDB(t)
	tab := empTable(t, db)
	for i := 0; i < 200; i++ {
		db.Exec(fmt.Sprintf("insert into emp values ('e%03d', %d, 'd')", i, i*1000))
	}
	if _, err := tab.CreateIndex("emp_sal", "salary"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("select name from emp where salary > 150000 and salary <= 160000")
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexUsed != "emp_sal" {
		t.Errorf("range index not used: %q", res.IndexUsed)
	}
	if len(res.Rows) != 10 { // 151..160
		t.Errorf("rows = %d", len(res.Rows))
	}
	// between
	res, _ = db.Exec("select name from emp where salary between 10000 and 12000")
	if len(res.Rows) != 3 {
		t.Errorf("between rows = %d", len(res.Rows))
	}
	// unbounded high
	res, _ = db.Exec("select name from emp where salary >= 198000")
	if len(res.Rows) != 2 {
		t.Errorf(">= rows = %d", len(res.Rows))
	}
}

func TestCompositeIndex(t *testing.T) {
	db := newDB(t)
	tab := empTable(t, db)
	seedEmp(t, db)
	if _, err := tab.CreateIndex("emp_dept_name", "dept", "name"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("select salary from emp where dept = 'eng' and name = 'Bob'")
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexUsed != "emp_dept_name" {
		t.Errorf("composite index not used: %q", res.IndexUsed)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 90000 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Partial match (dept only) cannot use the full-equality path but
	// must still return correct results via scan.
	res, _ = db.Exec("select salary from emp where dept = 'eng'")
	if len(res.Rows) != 2 {
		t.Errorf("partial rows = %v", res.Rows)
	}
}

func TestIndexBackfill(t *testing.T) {
	db := newDB(t)
	tab := empTable(t, db)
	seedEmp(t, db)
	ix, err := tab.CreateIndex("late_idx", "name")
	if err != nil {
		t.Fatal(err)
	}
	_ = ix
	res, _ := db.Exec("select salary from emp where name = 'Carol'")
	if res.IndexUsed != "late_idx" || len(res.Rows) != 1 {
		t.Errorf("backfilled index: used=%q rows=%v", res.IndexUsed, res.Rows)
	}
	// Duplicate index name rejected.
	if _, err := tab.CreateIndex("late_idx", "dept"); err == nil {
		t.Error("duplicate index name should fail")
	}
	if _, err := tab.CreateIndex("bad", "ghost"); err == nil {
		t.Error("index on unknown column should fail")
	}
	if _, err := tab.CreateIndex("empty"); err == nil {
		t.Error("empty column list should fail")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	disk := storage.NewMem()
	bp := storage.NewBufferPool(disk, 128)
	db, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	master := db.MasterPage()
	schema := types.MustSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindVarchar},
	)
	tab, err := db.CreateTable("kv", schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("kv_k", "k"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(fmt.Sprintf("insert into kv values (%d, 'val%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}

	bp2 := storage.NewBufferPool(disk, 128)
	db2, err := Open(bp2, master)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Tables(); len(got) != 1 || got[0] != "kv" {
		t.Fatalf("tables = %v", got)
	}
	res, err := db2.Exec("select v from kv where k = 42")
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexUsed != "kv_k" || len(res.Rows) != 1 || res.Rows[0][0].Str() != "val42" {
		t.Errorf("reopened query: used=%q rows=%v", res.IndexUsed, res.Rows)
	}
	// Writes continue after reopen.
	if _, err := db2.Exec("insert into kv values (500, 'new')"); err != nil {
		t.Fatal(err)
	}
}

func TestDropTable(t *testing.T) {
	db := newDB(t)
	empTable(t, db)
	if err := db.DropTable("emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("emp"); err == nil {
		t.Error("dropped table still visible")
	}
	if err := db.DropTable("emp"); err == nil {
		t.Error("double drop should fail")
	}
	// Name can be reused.
	if _, err := db.CreateTable("emp", types.MustSchema(types.Column{Name: "x", Kind: types.KindInt})); err != nil {
		t.Error(err)
	}
}

func TestDuplicateTable(t *testing.T) {
	db := newDB(t)
	empTable(t, db)
	if _, err := db.CreateTable("EMP", types.MustSchema()); err == nil {
		t.Error("case-insensitive duplicate should fail")
	}
}

func TestSelectErrors(t *testing.T) {
	db := newDB(t)
	empTable(t, db)
	if _, err := db.Exec("select ghost from emp"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := db.Exec("select * from ghost"); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := db.Exec("update emp set ghost = 1"); err == nil {
		t.Error("update unknown column should fail")
	}
	if _, err := db.Exec("this is not sql"); err == nil {
		t.Error("garbage should fail")
	}
}

func TestNullSemanticsInWhere(t *testing.T) {
	db := newDB(t)
	tab := empTable(t, db)
	tab.Insert(types.Tuple{types.NewString("N"), types.Null(), types.NewString("x")})
	// NULL salary doesn't match salary > 0 or salary <= 0.
	res, _ := db.Exec("select name from emp where salary > 0")
	if len(res.Rows) != 0 {
		t.Error("NULL matched > 0")
	}
	res, _ = db.Exec("select name from emp where salary <= 0")
	if len(res.Rows) != 0 {
		t.Error("NULL matched <= 0")
	}
}

func TestLargeTableScanAndIndexAgree(t *testing.T) {
	db := newDB(t)
	tab := empTable(t, db)
	for i := 0; i < 1000; i++ {
		tab.Insert(types.Tuple{
			types.NewString(fmt.Sprintf("u%04d", i)),
			types.NewInt(int64(i % 50 * 1000)),
			types.NewString(fmt.Sprintf("d%d", i%7)),
		})
	}
	// Scan answer.
	scanRes, err := db.Exec("select name from emp where salary = 25000")
	if err != nil {
		t.Fatal(err)
	}
	tab.CreateIndex("sal_idx", "salary")
	idxRes, err := db.Exec("select name from emp where salary = 25000")
	if err != nil {
		t.Fatal(err)
	}
	if idxRes.IndexUsed != "sal_idx" {
		t.Error("index not used after creation")
	}
	if len(scanRes.Rows) != len(idxRes.Rows) || len(scanRes.Rows) != 20 {
		t.Errorf("scan %d vs index %d rows", len(scanRes.Rows), len(idxRes.Rows))
	}
}

func TestUpdateRelocationMaintainsIndex(t *testing.T) {
	db := newDB(t)
	schema := types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "blob", Kind: types.KindVarchar},
	)
	tab, _ := db.CreateTable("big", schema)
	tab.CreateIndex("big_id", "id")
	// Fill a page, then grow one row so it relocates.
	for i := 0; i < 12; i++ {
		db.Exec(fmt.Sprintf("insert into big values (%d, '%s')", i, string(make([]byte, 300))))
	}
	grow := make([]byte, 3500)
	for i := range grow {
		grow[i] = 'x'
	}
	if _, err := db.Exec(fmt.Sprintf("update big set blob = '%s' where id = 3", grow)); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("select id from big where id = 3")
	if res.IndexUsed != "big_id" || len(res.Rows) != 1 {
		t.Errorf("post-relocation: used=%q rows=%d", res.IndexUsed, len(res.Rows))
	}
}
