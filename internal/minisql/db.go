// Package minisql is a small single-table SQL executor over the storage
// engine. It stands in for the host DBMS's query processor (Informix in
// the paper): trigger actions run real INSERT/UPDATE/DELETE/SELECT
// statements against real tables here, and the "database table" constant
// set organizations (§5.2, strategies 3 and 4) store and query their
// constants through it.
package minisql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"triggerman/internal/btree"
	"triggerman/internal/storage"
	"triggerman/internal/types"
)

// DB is a collection of named tables sharing one buffer pool, with a
// master catalog so tables survive restarts.
type DB struct {
	mu     sync.RWMutex
	bp     *storage.BufferPool
	master *storage.HeapFile
	tables map[string]*Table
}

// Table is a heap file with a schema and zero or more B+tree indexes.
type Table struct {
	Name   string
	Schema *types.Schema

	mu      sync.RWMutex
	db      *DB
	heap    *storage.HeapFile
	indexes []*Index
	catRID  storage.RID // row in the master catalog
}

// Index is a secondary (or clustered-in-spirit) index over a column
// prefix of its table.
type Index struct {
	Name    string
	Columns []int // key column positions, in key order
	tree    *btree.BTree
}

// Create initializes a fresh database on bp. The master catalog heap
// becomes the first heap allocated; remember MasterPage to reopen.
func Create(bp *storage.BufferPool) (*DB, error) {
	master, err := storage.CreateHeap(bp)
	if err != nil {
		return nil, err
	}
	return &DB{bp: bp, master: master, tables: make(map[string]*Table)}, nil
}

// MasterPage returns the master catalog's identity page.
func (db *DB) MasterPage() storage.PageID { return db.master.FirstPage() }

// Open reattaches to a database persisted on bp's disk.
func Open(bp *storage.BufferPool, masterPage storage.PageID) (*DB, error) {
	master, err := storage.OpenHeap(bp, masterPage)
	if err != nil {
		return nil, err
	}
	db := &DB{bp: bp, master: master, tables: make(map[string]*Table)}
	var loadErr error
	err = master.Scan(func(rid storage.RID, rec []byte) bool {
		tu, _, derr := types.DecodeTuple(rec)
		if derr != nil {
			loadErr = derr
			return false
		}
		t, derr := db.decodeTableRow(tu)
		if derr != nil {
			loadErr = derr
			return false
		}
		t.catRID = rid
		db.tables[strings.ToLower(t.Name)] = t
		return true
	})
	if err != nil {
		return nil, err
	}
	if loadErr != nil {
		return nil, loadErr
	}
	return db, nil
}

// Pool returns the shared buffer pool.
func (db *DB) Pool() *storage.BufferPool { return db.bp }

// catalog row: (name, schemaText, heapPage, indexText)
// schemaText: "col:kind,col:kind" ; indexText: "name@metaPage@c1+c2;..."

func encodeSchema(s *types.Schema) string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.Name + ":" + strconv.Itoa(int(c.Kind))
	}
	return strings.Join(parts, ",")
}

func decodeSchema(text string) (*types.Schema, error) {
	if text == "" {
		return types.NewSchema()
	}
	var cols []types.Column
	for _, part := range strings.Split(text, ",") {
		i := strings.LastIndexByte(part, ':')
		if i < 0 {
			return nil, fmt.Errorf("minisql: bad schema text %q", text)
		}
		k, err := strconv.Atoi(part[i+1:])
		if err != nil {
			return nil, fmt.Errorf("minisql: bad schema text %q: %v", text, err)
		}
		cols = append(cols, types.Column{Name: part[:i], Kind: types.Kind(k)})
	}
	return types.NewSchema(cols...)
}

func (t *Table) encodeRow() types.Tuple {
	var idx []string
	for _, ix := range t.indexes {
		cols := make([]string, len(ix.Columns))
		for i, c := range ix.Columns {
			cols[i] = strconv.Itoa(c)
		}
		idx = append(idx, ix.Name+"@"+strconv.Itoa(int(ix.tree.MetaPage()))+"@"+strings.Join(cols, "+"))
	}
	return types.Tuple{
		types.NewString(t.Name),
		types.NewString(encodeSchema(t.Schema)),
		types.NewInt(int64(t.heap.FirstPage())),
		types.NewString(strings.Join(idx, ";")),
	}
}

func (db *DB) decodeTableRow(tu types.Tuple) (*Table, error) {
	if len(tu) != 4 {
		return nil, fmt.Errorf("minisql: bad catalog row %v", tu)
	}
	schema, err := decodeSchema(tu[1].Str())
	if err != nil {
		return nil, err
	}
	heap, err := storage.OpenHeap(db.bp, storage.PageID(tu[2].Int()))
	if err != nil {
		return nil, err
	}
	t := &Table{Name: tu[0].Str(), Schema: schema, db: db, heap: heap}
	if idxText := tu[3].Str(); idxText != "" {
		for _, part := range strings.Split(idxText, ";") {
			fields := strings.Split(part, "@")
			if len(fields) != 3 {
				return nil, fmt.Errorf("minisql: bad index text %q", part)
			}
			metaPage, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, err
			}
			tree, err := btree.Open(db.bp, storage.PageID(metaPage))
			if err != nil {
				return nil, err
			}
			var cols []int
			for _, cs := range strings.Split(fields[2], "+") {
				c, err := strconv.Atoi(cs)
				if err != nil {
					return nil, err
				}
				cols = append(cols, c)
			}
			t.indexes = append(t.indexes, &Index{Name: fields[0], Columns: cols, tree: tree})
		}
	}
	return t, nil
}

func (db *DB) saveTableLocked(t *Table) error {
	rec := types.EncodeTuple(nil, t.encodeRow())
	if t.catRID == (storage.RID{}) {
		rid, err := db.master.Insert(rec)
		if err != nil {
			return err
		}
		t.catRID = rid
		return nil
	}
	rid, err := db.master.Update(t.catRID, rec)
	if err != nil {
		return err
	}
	t.catRID = rid
	return nil
}

// CreateTable creates an empty table. Table names are case-insensitive.
func (db *DB) CreateTable(name string, schema *types.Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("minisql: table %q already exists", name)
	}
	heap, err := storage.CreateHeap(db.bp)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Schema: schema, db: db, heap: heap}
	if err := db.saveTableLocked(t); err != nil {
		return nil, err
	}
	db.tables[key] = t
	return t, nil
}

// Table looks a table up by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("minisql: unknown table %q", name)
	}
	return t, nil
}

// DropTable removes a table from the catalog (heap pages are not
// reclaimed; the pager has no free list).
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	t, ok := db.tables[key]
	if !ok {
		return fmt.Errorf("minisql: unknown table %q", name)
	}
	if err := db.master.Delete(t.catRID); err != nil {
		return err
	}
	delete(db.tables, key)
	return nil
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// CreateIndex builds a B+tree index over the named columns and
// backfills it from existing rows.
func (t *Table) CreateIndex(name string, columns ...string) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var cols []int
	for _, c := range columns {
		i := t.Schema.ColumnIndex(c)
		if i < 0 {
			return nil, fmt.Errorf("minisql: index on unknown column %q of %s", c, t.Name)
		}
		cols = append(cols, i)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("minisql: index needs at least one column")
	}
	for _, ix := range t.indexes {
		if strings.EqualFold(ix.Name, name) {
			return nil, fmt.Errorf("minisql: index %q already exists on %s", name, t.Name)
		}
	}
	tree, err := btree.Create(t.db.bp)
	if err != nil {
		return nil, err
	}
	ix := &Index{Name: name, Columns: cols, tree: tree}
	// Backfill.
	err = t.heap.Scan(func(rid storage.RID, rec []byte) bool {
		tu, _, derr := types.DecodeTuple(rec)
		if derr != nil {
			err = derr
			return false
		}
		if _, ierr := tree.Insert(ix.keyOf(tu), rid.Pack()); ierr != nil {
			err = ierr
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	t.indexes = append(t.indexes, ix)
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	return ix, t.db.saveTableLocked(t)
}

func (ix *Index) keyOf(tu types.Tuple) []byte {
	key := make(types.Tuple, len(ix.Columns))
	for i, c := range ix.Columns {
		key[i] = tu.Get(c)
	}
	return types.EncodeKey(nil, key)
}

// Indexes returns the table's indexes.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Index, len(t.indexes))
	copy(out, t.indexes)
	return out
}

// Insert appends a row, validating arity and types (NULL fits any
// column), and maintains all indexes.
func (t *Table) Insert(tu types.Tuple) (storage.RID, error) {
	if err := t.validate(tu); err != nil {
		return storage.RID{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, err := t.heap.Insert(types.EncodeTuple(nil, tu))
	if err != nil {
		return storage.RID{}, err
	}
	for _, ix := range t.indexes {
		if _, err := ix.tree.Insert(ix.keyOf(tu), rid.Pack()); err != nil {
			return storage.RID{}, err
		}
	}
	return rid, nil
}

func (t *Table) validate(tu types.Tuple) error {
	if len(tu) != t.Schema.Arity() {
		return fmt.Errorf("minisql: %s expects %d columns, got %d", t.Name, t.Schema.Arity(), len(tu))
	}
	for i, v := range tu {
		if v.IsNull() {
			continue
		}
		want := t.Schema.Columns[i].Kind
		ok := v.Kind() == want ||
			(v.IsNumeric() && (want == types.KindInt || want == types.KindFloat)) ||
			(v.IsString() && (want == types.KindChar || want == types.KindVarchar))
		if !ok {
			return fmt.Errorf("minisql: column %s of %s wants %s, got %s",
				t.Schema.Columns[i].Name, t.Name, want, v.Kind())
		}
	}
	return nil
}

// Get fetches the row at rid.
func (t *Table) Get(rid storage.RID) (types.Tuple, error) {
	rec, err := t.heap.Get(rid)
	if err != nil {
		return nil, err
	}
	tu, _, err := types.DecodeTuple(rec)
	return tu, err
}

// Delete removes the row at rid and its index entries.
func (t *Table) Delete(rid storage.RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deleteLocked(rid)
}

func (t *Table) deleteLocked(rid storage.RID) error {
	rec, err := t.heap.Get(rid)
	if err != nil {
		return err
	}
	tu, _, err := types.DecodeTuple(rec)
	if err != nil {
		return err
	}
	if err := t.heap.Delete(rid); err != nil {
		return err
	}
	for _, ix := range t.indexes {
		if _, err := ix.tree.Delete(ix.keyOf(tu), rid.Pack()); err != nil {
			return err
		}
	}
	return nil
}

// UpdateRow replaces the row at rid, returning its new RID.
func (t *Table) UpdateRow(rid storage.RID, tu types.Tuple) (storage.RID, error) {
	if err := t.validate(tu); err != nil {
		return storage.RID{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, err := t.Get(rid)
	if err != nil {
		return storage.RID{}, err
	}
	nrid, err := t.heap.Update(rid, types.EncodeTuple(nil, tu))
	if err != nil {
		return storage.RID{}, err
	}
	for _, ix := range t.indexes {
		if _, err := ix.tree.Delete(ix.keyOf(old), rid.Pack()); err != nil {
			return storage.RID{}, err
		}
		if _, err := ix.tree.Insert(ix.keyOf(tu), nrid.Pack()); err != nil {
			return storage.RID{}, err
		}
	}
	return nrid, nil
}

// Scan iterates all rows in heap order.
func (t *Table) Scan(fn func(rid storage.RID, tu types.Tuple) bool) error {
	var derr error
	err := t.heap.Scan(func(rid storage.RID, rec []byte) bool {
		tu, _, e := types.DecodeTuple(rec)
		if e != nil {
			derr = e
			return false
		}
		return fn(rid, tu)
	})
	if err != nil {
		return err
	}
	return derr
}

// Count returns the number of rows.
func (t *Table) Count() int { return t.heap.Count() }
