package hashidx

import (
	"fmt"
	"math/rand"
	"testing"

	"triggerman/internal/btree"
	"triggerman/internal/storage"
	"triggerman/internal/types"
)

func newIdx(t testing.TB, buckets int) *Index {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMem(), 512)
	ix, err := Create(bp, buckets)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func key(s string) []byte {
	return types.EncodeKey(nil, types.Tuple{types.NewString(s)})
}

func TestInsertLookup(t *testing.T) {
	ix := newIdx(t, 8)
	added, err := ix.Insert(key("a"), 1)
	if err != nil || !added {
		t.Fatal(err)
	}
	if added, _ := ix.Insert(key("a"), 1); added {
		t.Error("duplicate pair should be a no-op")
	}
	ix.Insert(key("a"), 2)
	ix.Insert(key("b"), 3)
	vals, err := ix.Lookup(key("a"))
	if err != nil || len(vals) != 2 {
		t.Fatalf("lookup a = %v, %v", vals, err)
	}
	vals, _ = ix.Lookup(key("missing"))
	if len(vals) != 0 {
		t.Error("missing key")
	}
	if ix.Len() != 3 {
		t.Errorf("len = %d", ix.Len())
	}
	if ok, _ := ix.Contains(key("b"), 3); !ok {
		t.Error("contains")
	}
	if ok, _ := ix.Contains(key("b"), 4); ok {
		t.Error("contains wrong val")
	}
}

func TestDeleteAndTombstoneReuse(t *testing.T) {
	ix := newIdx(t, 4)
	ix.Insert(key("x"), 10)
	ok, err := ix.Delete(key("x"), 10)
	if err != nil || !ok {
		t.Fatal("delete")
	}
	if ok, _ := ix.Delete(key("x"), 10); ok {
		t.Error("double delete")
	}
	if vals, _ := ix.Lookup(key("x")); len(vals) != 0 {
		t.Error("deleted still visible")
	}
	// Same-length key reuses the tombstone slot: page usage stays flat.
	ix.Insert(key("y"), 20)
	if vals, _ := ix.Lookup(key("y")); len(vals) != 1 || vals[0] != 20 {
		t.Error("tombstone reuse broke lookup")
	}
	if ix.Len() != 1 {
		t.Errorf("len = %d", ix.Len())
	}
}

func TestOverflowChains(t *testing.T) {
	// One bucket forces deep chains.
	ix := newIdx(t, 1)
	const n = 2000
	for i := 0; i < n; i++ {
		added, err := ix.Insert(key(fmt.Sprintf("key-%05d", i)), uint64(i))
		if err != nil || !added {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if ix.Len() != n {
		t.Fatalf("len = %d", ix.Len())
	}
	for i := 0; i < n; i += 97 {
		vals, err := ix.Lookup(key(fmt.Sprintf("key-%05d", i)))
		if err != nil || len(vals) != 1 || vals[0] != uint64(i) {
			t.Fatalf("lookup %d = %v, %v", i, vals, err)
		}
	}
	seen := 0
	ix.ScanAll(func([]byte, uint64) bool { seen++; return true })
	if seen != n {
		t.Errorf("scan saw %d", seen)
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	disk := storage.NewMem()
	bp := storage.NewBufferPool(disk, 256)
	ix, err := Create(bp, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		ix.Insert(key(fmt.Sprintf("k%04d", i)), uint64(i))
	}
	ix.Delete(key("k0042"), 42)
	meta := ix.MetaPage()
	bp.FlushAll()

	bp2 := storage.NewBufferPool(disk, 256)
	ix2, err := Open(bp2, meta)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != 499 || ix2.Buckets() != 16 {
		t.Fatalf("reopened len=%d buckets=%d", ix2.Len(), ix2.Buckets())
	}
	vals, _ := ix2.Lookup(key("k0007"))
	if len(vals) != 1 || vals[0] != 7 {
		t.Errorf("reopened lookup = %v", vals)
	}
	if vals, _ := ix2.Lookup(key("k0042")); len(vals) != 0 {
		t.Error("deleted entry resurrected")
	}
	// Corrupt meta detection.
	if _, err := Open(storage.NewBufferPool(storage.NewMem(), 8), mustNewPage(t)); err == nil {
		t.Error("opening a zero page as meta should fail")
	}
}

func mustNewPage(t *testing.T) storage.PageID {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMem(), 8)
	p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(p.ID, true)
	return p.ID
}

func TestValidation(t *testing.T) {
	bp := storage.NewBufferPool(storage.NewMem(), 64)
	if _, err := Create(bp, maxBuckets+1); err == nil {
		t.Error("too many buckets")
	}
	ix, _ := Create(bp, 2)
	if _, err := ix.Insert(make([]byte, MaxKeySize+1), 1); err == nil {
		t.Error("oversized key")
	}
	if _, err := ix.Insert(key("a"), ^uint64(0)); err == nil {
		t.Error("reserved value")
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	ix := newIdx(t, 8)
	rng := rand.New(rand.NewSource(5))
	model := map[string]map[uint64]bool{}
	for step := 0; step < 4000; step++ {
		k := fmt.Sprintf("k%03d", rng.Intn(150))
		v := uint64(rng.Intn(12))
		kb := key(k)
		switch rng.Intn(3) {
		case 0, 1:
			added, err := ix.Insert(kb, v)
			if err != nil {
				t.Fatal(err)
			}
			if model[k] == nil {
				model[k] = map[uint64]bool{}
			}
			if added == model[k][v] {
				t.Fatalf("step %d: added=%v model=%v", step, added, model[k][v])
			}
			model[k][v] = true
		default:
			ok, err := ix.Delete(kb, v)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (model[k] != nil && model[k][v]) {
				t.Fatalf("step %d: delete=%v model=%v", step, ok, model[k][v])
			}
			if model[k] != nil {
				delete(model[k], v)
			}
		}
	}
	total := 0
	for k, vs := range model {
		total += len(vs)
		vals, err := ix.Lookup(key(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != len(vs) {
			t.Fatalf("key %s: %d vals, model %d", k, len(vals), len(vs))
		}
		for _, v := range vals {
			if !vs[v] {
				t.Fatalf("key %s: extra value %d", k, v)
			}
		}
	}
	if ix.Len() != total {
		t.Fatalf("len %d != model %d", ix.Len(), total)
	}
}

// Ablation: point-lookup cost, hash index vs clustered B+tree, for the
// equality constant-table role (§5.1's "it may still be possible to use
// an index" discussion).
func BenchmarkPointLookupHashVsBTree(b *testing.B) {
	const n = 100000
	for _, structure := range []string{"hash", "btree"} {
		b.Run(structure, func(b *testing.B) {
			bp := storage.NewBufferPool(storage.NewMem(), 1<<16)
			keys := make([][]byte, n)
			for i := range keys {
				keys[i] = key(fmt.Sprintf("user%07d", i))
			}
			var lookup func([]byte) ([]uint64, error)
			switch structure {
			case "hash":
				ix, err := Create(bp, 1000)
				if err != nil {
					b.Fatal(err)
				}
				for i, k := range keys {
					if _, err := ix.Insert(k, uint64(i)); err != nil {
						b.Fatal(err)
					}
				}
				lookup = ix.Lookup
			case "btree":
				tr, err := btree.Create(bp)
				if err != nil {
					b.Fatal(err)
				}
				for i, k := range keys {
					if _, err := tr.Insert(k, uint64(i)); err != nil {
						b.Fatal(err)
					}
				}
				lookup = tr.Lookup
			}
			rng := rand.New(rand.NewSource(9))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, err := lookup(keys[rng.Intn(n)])
				if err != nil || len(vals) != 1 {
					b.Fatalf("lookup: %v %v", vals, err)
				}
			}
		})
	}
}
