// Package hashidx implements a disk-backed static hash index with
// overflow chains over the storage engine. It is the equality
// alternative to the clustered B+tree for constant tables (§5.1 notes
// the composite key is used for equality retrieval; a hash index serves
// the same probes with O(1) expected page touches). The bucket count is
// fixed at creation — the standard static-hashing trade-off, adequate
// for constant tables whose size class is chosen by the organization
// policy.
package hashidx

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"

	"triggerman/internal/storage"
)

// MaxKeySize bounds keys (same bound as the B+tree for interchangeability).
const MaxKeySize = 512

// Bucket page layout:
//
//	offset 0: uint16 entry count
//	offset 2: uint16 free offset (next write position)
//	offset 4: uint32 overflow page (InvalidPageID terminator)
//	offset 8: entries, each: uint16 klen | key | uint64 val
const (
	bhdrSize   = 8
	maxBuckets = (storage.PageSize - 16) / 4
)

// Index is the hash index handle.
type Index struct {
	mu      sync.Mutex
	bp      *storage.BufferPool
	meta    storage.PageID
	buckets []storage.PageID
	size    int
}

// Create allocates a hash index with the given bucket count.
func Create(bp *storage.BufferPool, buckets int) (*Index, error) {
	if buckets < 1 {
		buckets = 1
	}
	if buckets > maxBuckets {
		return nil, fmt.Errorf("hashidx: %d buckets exceeds max %d", buckets, maxBuckets)
	}
	meta, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	metaID := meta.ID
	idx := &Index{bp: bp, meta: metaID, buckets: make([]storage.PageID, buckets)}
	for i := range idx.buckets {
		p, err := bp.NewPage()
		if err != nil {
			bp.Unpin(metaID, true)
			return nil, err
		}
		initBucket(p)
		idx.buckets[i] = p.ID
		if err := bp.Unpin(p.ID, true); err != nil {
			bp.Unpin(metaID, true)
			return nil, err
		}
	}
	idx.writeMeta(meta)
	return idx, bp.Unpin(metaID, true)
}

// Open reattaches to an index by its meta page.
func Open(bp *storage.BufferPool, metaID storage.PageID) (*Index, error) {
	p, err := bp.FetchPage(metaID)
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(p.Data[0:]))
	if n < 1 || n > maxBuckets {
		bp.Unpin(metaID, false)
		return nil, fmt.Errorf("hashidx: corrupt meta page (buckets=%d)", n)
	}
	idx := &Index{bp: bp, meta: metaID, buckets: make([]storage.PageID, n)}
	idx.size = int(binary.LittleEndian.Uint64(p.Data[4:]))
	for i := 0; i < n; i++ {
		idx.buckets[i] = storage.PageID(binary.LittleEndian.Uint32(p.Data[12+i*4:]))
	}
	return idx, bp.Unpin(metaID, false)
}

// MetaPage returns the index's persistent identity.
func (ix *Index) MetaPage() storage.PageID { return ix.meta }

// Buckets returns the bucket count.
func (ix *Index) Buckets() int { return len(ix.buckets) }

// Len returns the entry count.
func (ix *Index) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.size
}

func (ix *Index) writeMeta(p *storage.Page) {
	binary.LittleEndian.PutUint32(p.Data[0:], uint32(len(ix.buckets)))
	binary.LittleEndian.PutUint64(p.Data[4:], uint64(ix.size))
	for i, b := range ix.buckets {
		binary.LittleEndian.PutUint32(p.Data[12+i*4:], uint32(b))
	}
}

func (ix *Index) syncMeta() error {
	p, err := ix.bp.FetchPage(ix.meta)
	if err != nil {
		return err
	}
	ix.writeMeta(p)
	return ix.bp.Unpin(ix.meta, true)
}

func initBucket(p *storage.Page) {
	binary.LittleEndian.PutUint16(p.Data[0:], 0)
	binary.LittleEndian.PutUint16(p.Data[2:], bhdrSize)
	binary.LittleEndian.PutUint32(p.Data[4:], uint32(storage.InvalidPageID))
}

func bucketCount(p *storage.Page) int { return int(binary.LittleEndian.Uint16(p.Data[0:])) }
func bucketFree(p *storage.Page) int  { return int(binary.LittleEndian.Uint16(p.Data[2:])) }
func setBucketCount(p *storage.Page, n int) {
	binary.LittleEndian.PutUint16(p.Data[0:], uint16(n))
}
func setBucketFree(p *storage.Page, n int) {
	binary.LittleEndian.PutUint16(p.Data[2:], uint16(n))
}
func overflow(p *storage.Page) storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(p.Data[4:]))
}
func setOverflow(p *storage.Page, id storage.PageID) {
	binary.LittleEndian.PutUint32(p.Data[4:], uint32(id))
}

func bucketOf(key []byte, n int) int {
	h := fnv.New64a()
	h.Write(key)
	return int(h.Sum64() % uint64(n))
}

// iterate walks all entries of a bucket chain. fn's tombstone flag:
// entries with val == tombstone are skipped by the public API; internal
// callers see them too via raw.
const tombstone = ^uint64(0)

type entryPos struct {
	page storage.PageID
	off  int
}

func (ix *Index) iterate(bucket int, fn func(pos entryPos, key []byte, val uint64) bool) error {
	id := ix.buckets[bucket]
	for id != storage.InvalidPageID {
		p, err := ix.bp.FetchPage(id)
		if err != nil {
			return err
		}
		n := bucketCount(p)
		off := bhdrSize
		stop := false
		for e := 0; e < n && !stop; e++ {
			klen := int(binary.LittleEndian.Uint16(p.Data[off:]))
			key := p.Data[off+2 : off+2+klen]
			val := binary.LittleEndian.Uint64(p.Data[off+2+klen:])
			if !fn(entryPos{id, off}, key, val) {
				stop = true
			}
			off += 2 + klen + 8
		}
		next := overflow(p)
		if err := ix.bp.Unpin(id, false); err != nil {
			return err
		}
		if stop {
			return nil
		}
		id = next
	}
	return nil
}

// Insert adds (key, val). Re-inserting an existing pair is a no-op
// returning false. val must not be the reserved tombstone (all-ones).
func (ix *Index) Insert(key []byte, val uint64) (bool, error) {
	if len(key) > MaxKeySize {
		return false, fmt.Errorf("hashidx: key of %d bytes exceeds max %d", len(key), MaxKeySize)
	}
	if val == tombstone {
		return false, fmt.Errorf("hashidx: value %d is reserved", val)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	b := bucketOf(key, len(ix.buckets))
	// Duplicate check; remember a tombstone slot of matching size class.
	dup := false
	var reuse *entryPos
	err := ix.iterate(b, func(pos entryPos, k []byte, v uint64) bool {
		if v == tombstone && len(k) == len(key) && reuse == nil {
			p := pos
			reuse = &p
		}
		if v != tombstone && bytes.Equal(k, key) && v == val {
			dup = true
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	if dup {
		return false, nil
	}
	if reuse != nil {
		// Overwrite the tombstone in place.
		p, err := ix.bp.FetchPage(reuse.page)
		if err != nil {
			return false, err
		}
		off := reuse.off
		klen := int(binary.LittleEndian.Uint16(p.Data[off:]))
		copy(p.Data[off+2:off+2+klen], key)
		binary.LittleEndian.PutUint64(p.Data[off+2+klen:], val)
		if err := ix.bp.Unpin(reuse.page, true); err != nil {
			return false, err
		}
		ix.size++
		return true, ix.syncMeta()
	}
	// Append to the first chain page with room, growing the chain if
	// needed.
	need := 2 + len(key) + 8
	id := ix.buckets[b]
	for {
		p, err := ix.bp.FetchPage(id)
		if err != nil {
			return false, err
		}
		if storage.PageSize-bucketFree(p) >= need {
			off := bucketFree(p)
			binary.LittleEndian.PutUint16(p.Data[off:], uint16(len(key)))
			copy(p.Data[off+2:], key)
			binary.LittleEndian.PutUint64(p.Data[off+2+len(key):], val)
			setBucketFree(p, off+need)
			setBucketCount(p, bucketCount(p)+1)
			if err := ix.bp.Unpin(id, true); err != nil {
				return false, err
			}
			ix.size++
			return true, ix.syncMeta()
		}
		next := overflow(p)
		if next != storage.InvalidPageID {
			ix.bp.Unpin(id, false)
			id = next
			continue
		}
		// Grow the chain.
		np, nerr := ix.bp.NewPage()
		if nerr != nil {
			ix.bp.Unpin(id, false)
			return false, nerr
		}
		initBucket(np)
		setOverflow(p, np.ID)
		if err := ix.bp.Unpin(id, true); err != nil {
			ix.bp.Unpin(np.ID, true)
			return false, err
		}
		id = np.ID
		if err := ix.bp.Unpin(np.ID, true); err != nil {
			return false, err
		}
	}
}

// Lookup returns every value stored under key.
func (ix *Index) Lookup(key []byte) ([]uint64, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var out []uint64
	err := ix.iterate(bucketOf(key, len(ix.buckets)), func(_ entryPos, k []byte, v uint64) bool {
		if v != tombstone && bytes.Equal(k, key) {
			out = append(out, v)
		}
		return true
	})
	return out, err
}

// Contains reports whether the exact pair exists.
func (ix *Index) Contains(key []byte, val uint64) (bool, error) {
	vals, err := ix.Lookup(key)
	if err != nil {
		return false, err
	}
	for _, v := range vals {
		if v == val {
			return true, nil
		}
	}
	return false, nil
}

// Delete removes the exact (key, val) pair by tombstoning its entry.
func (ix *Index) Delete(key []byte, val uint64) (bool, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var found *entryPos
	err := ix.iterate(bucketOf(key, len(ix.buckets)), func(pos entryPos, k []byte, v uint64) bool {
		if v != tombstone && bytes.Equal(k, key) && v == val {
			p := pos
			found = &p
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	if found == nil {
		return false, nil
	}
	p, err := ix.bp.FetchPage(found.page)
	if err != nil {
		return false, err
	}
	klen := int(binary.LittleEndian.Uint16(p.Data[found.off:]))
	binary.LittleEndian.PutUint64(p.Data[found.off+2+klen:], tombstone)
	if err := ix.bp.Unpin(found.page, true); err != nil {
		return false, err
	}
	ix.size--
	return true, ix.syncMeta()
}

// ScanAll visits every live entry (unordered), for rebuilds and tests.
func (ix *Index) ScanAll(fn func(key []byte, val uint64) bool) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for b := range ix.buckets {
		stop := false
		err := ix.iterate(b, func(_ entryPos, k []byte, v uint64) bool {
			if v == tombstone {
				return true
			}
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}
