// Package sqlscan tokenizes the TriggerMan command language (§2 of the
// paper): keyword-delimited, SQL-like commands such as create trigger,
// define data source, drop trigger, and the mini-SQL used in execSQL
// actions.
package sqlscan

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies a lexical token.
type TokenKind uint8

const (
	// EOF marks the end of input.
	EOF TokenKind = iota
	// Ident is an identifier or keyword (keyword-ness is decided by the
	// parser; the language is keyword-delimited but not reserved).
	Ident
	// Number is an integer or float literal.
	Number
	// String is a single-quoted string literal with '' escapes, already
	// unescaped in Text.
	String
	// Symbol is an operator or punctuation token: = <> != < <= > >= ( )
	// , . + - * / : ;
	Symbol
	// Param is a :NEW or :OLD parameter prefix token (the colon form).
	Param
)

// String names the token kind.
func (k TokenKind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case Number:
		return "number"
	case String:
		return "string"
	case Symbol:
		return "symbol"
	case Param:
		return "parameter"
	default:
		return "?"
	}
}

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	// Text is the token's content: identifier text as written, the
	// unescaped string body, the number literal, or the symbol itself.
	Text string
	// Pos is the byte offset of the token's first character.
	Pos int
	// IsFloat is set for Number tokens containing '.' or an exponent.
	IsFloat bool
}

// Is reports whether the token is an identifier matching word
// case-insensitively.
func (t Token) Is(word string) bool {
	return t.Kind == Ident && strings.EqualFold(t.Text, word)
}

// IsSymbol reports whether the token is the given symbol.
func (t Token) IsSymbol(sym string) bool {
	return t.Kind == Symbol && t.Text == sym
}

// Scanner tokenizes an input string.
type Scanner struct {
	src string
	pos int
}

// New returns a scanner over src.
func New(src string) *Scanner { return &Scanner{src: src} }

// Error is a lexical error with position information.
type Error struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("syntax error at offset %d: %s", e.Pos, e.Msg) }

// Next returns the next token.
func (s *Scanner) Next() (Token, error) {
	s.skipSpace()
	if s.pos >= len(s.src) {
		return Token{Kind: EOF, Pos: s.pos}, nil
	}
	start := s.pos
	c := s.src[s.pos]
	switch {
	case isIdentStart(c):
		return s.scanIdent(start), nil
	case c >= '0' && c <= '9':
		return s.scanNumber(start)
	case c == '\'':
		return s.scanString(start)
	case c == ':':
		// :NEW / :OLD / :name parameter; bare ':' is a symbol.
		s.pos++
		if s.pos < len(s.src) && isIdentStart(s.src[s.pos]) {
			tok := s.scanIdent(s.pos)
			return Token{Kind: Param, Text: tok.Text, Pos: start}, nil
		}
		return Token{Kind: Symbol, Text: ":", Pos: start}, nil
	case c == '.':
		// .5 is a float; bare '.' is a symbol.
		if s.pos+1 < len(s.src) && s.src[s.pos+1] >= '0' && s.src[s.pos+1] <= '9' {
			return s.scanNumber(start)
		}
		s.pos++
		return Token{Kind: Symbol, Text: ".", Pos: start}, nil
	default:
		return s.scanSymbol(start)
	}
}

// All tokenizes the whole input.
func (s *Scanner) All() ([]Token, error) {
	var out []Token
	for {
		t, err := s.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (s *Scanner) skipSpace() {
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			s.pos++
		case c == '-' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '-':
			// -- line comment
			for s.pos < len(s.src) && s.src[s.pos] != '\n' {
				s.pos++
			}
		case c == '/' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '*':
			// /* block comment */ (unterminated comment consumes rest)
			s.pos += 2
			for s.pos+1 < len(s.src) && !(s.src[s.pos] == '*' && s.src[s.pos+1] == '/') {
				s.pos++
			}
			if s.pos+1 < len(s.src) {
				s.pos += 2
			} else {
				s.pos = len(s.src)
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (s *Scanner) scanIdent(start int) Token {
	for s.pos < len(s.src) && isIdentCont(s.src[s.pos]) {
		s.pos++
	}
	return Token{Kind: Ident, Text: s.src[start:s.pos], Pos: start}
}

func (s *Scanner) scanNumber(start int) (Token, error) {
	isFloat := false
	for s.pos < len(s.src) && s.src[s.pos] >= '0' && s.src[s.pos] <= '9' {
		s.pos++
	}
	if s.pos < len(s.src) && s.src[s.pos] == '.' {
		// Don't absorb ".." or ".col"; only digits after the dot.
		if s.pos+1 < len(s.src) && s.src[s.pos+1] >= '0' && s.src[s.pos+1] <= '9' {
			isFloat = true
			s.pos++
			for s.pos < len(s.src) && s.src[s.pos] >= '0' && s.src[s.pos] <= '9' {
				s.pos++
			}
		} else if s.pos == start {
			// Leading-dot float like .5 — already guaranteed a digit.
			isFloat = true
			s.pos++
		}
	}
	if s.pos < len(s.src) && (s.src[s.pos] == 'e' || s.src[s.pos] == 'E') {
		mark := s.pos
		s.pos++
		if s.pos < len(s.src) && (s.src[s.pos] == '+' || s.src[s.pos] == '-') {
			s.pos++
		}
		if s.pos < len(s.src) && s.src[s.pos] >= '0' && s.src[s.pos] <= '9' {
			isFloat = true
			for s.pos < len(s.src) && s.src[s.pos] >= '0' && s.src[s.pos] <= '9' {
				s.pos++
			}
		} else {
			s.pos = mark // 'e' begins an identifier, not an exponent
		}
	}
	text := s.src[start:s.pos]
	if s.pos < len(s.src) && isIdentStart(s.src[s.pos]) {
		return Token{}, &Error{Pos: s.pos, Msg: fmt.Sprintf("malformed number %q", text+string(s.src[s.pos]))}
	}
	return Token{Kind: Number, Text: text, Pos: start, IsFloat: isFloat}, nil
}

func (s *Scanner) scanString(start int) (Token, error) {
	s.pos++ // opening quote
	var b strings.Builder
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if c == '\'' {
			if s.pos+1 < len(s.src) && s.src[s.pos+1] == '\'' {
				b.WriteByte('\'')
				s.pos += 2
				continue
			}
			s.pos++
			return Token{Kind: String, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		s.pos++
	}
	return Token{}, &Error{Pos: start, Msg: "unterminated string literal"}
}

var twoCharSymbols = map[string]bool{
	"<>": true, "!=": true, "<=": true, ">=": true, "==": true,
}

func (s *Scanner) scanSymbol(start int) (Token, error) {
	c := s.src[s.pos]
	if s.pos+1 < len(s.src) {
		two := s.src[s.pos : s.pos+2]
		if twoCharSymbols[two] {
			s.pos += 2
			// Normalize aliases.
			switch two {
			case "!=":
				two = "<>"
			case "==":
				two = "="
			}
			return Token{Kind: Symbol, Text: two, Pos: start}, nil
		}
	}
	switch c {
	case '=', '<', '>', '(', ')', ',', '+', '-', '*', '/', ';':
		s.pos++
		return Token{Kind: Symbol, Text: string(c), Pos: start}, nil
	}
	if unicode.IsPrint(rune(c)) {
		return Token{}, &Error{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
	return Token{}, &Error{Pos: start, Msg: fmt.Sprintf("unexpected byte 0x%02x", c)}
}
