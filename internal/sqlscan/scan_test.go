package sqlscan

import (
	"strings"
	"testing"
)

func scanAll(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := New(src).All()
	if err != nil {
		t.Fatalf("scan %q: %v", src, err)
	}
	return toks
}

func TestScanCreateTrigger(t *testing.T) {
	src := `create trigger updateFred from emp on update(emp.salary)
	        when emp.name = 'Bob' do execSQL 'update emp set salary=5'`
	toks := scanAll(t, src)
	// spot-check a few tokens
	if !toks[0].Is("create") || !toks[1].Is("TRIGGER") {
		t.Errorf("keywords: %v %v", toks[0], toks[1])
	}
	var sawString, sawParen, sawEq bool
	for _, tok := range toks {
		switch {
		case tok.Kind == String && strings.HasPrefix(tok.Text, "update emp"):
			sawString = true
		case tok.IsSymbol("("):
			sawParen = true
		case tok.IsSymbol("="):
			sawEq = true
		}
	}
	if !sawString || !sawParen || !sawEq {
		t.Errorf("missing tokens: str=%v paren=%v eq=%v", sawString, sawParen, sawEq)
	}
	if toks[len(toks)-1].Kind != EOF {
		t.Error("missing EOF")
	}
}

func TestScanNumbers(t *testing.T) {
	cases := []struct {
		src     string
		text    string
		isFloat bool
	}{
		{"42", "42", false},
		{"3.14", "3.14", true},
		{".5", ".5", true},
		{"1e6", "1e6", true},
		{"2.5e-3", "2.5e-3", true},
		{"7E+2", "7E+2", true},
	}
	for _, c := range cases {
		toks := scanAll(t, c.src)
		if toks[0].Kind != Number || toks[0].Text != c.text || toks[0].IsFloat != c.isFloat {
			t.Errorf("scan %q = %+v", c.src, toks[0])
		}
	}
}

func TestScanNumberThenIdent(t *testing.T) {
	if _, err := New("12abc").All(); err == nil {
		t.Error("12abc should be a lexical error")
	}
	// "1e" is number 1 followed by identifier e (no exponent digits).
	toks, err := New("1 e").All()
	if err != nil || toks[0].Text != "1" || !toks[1].Is("e") {
		t.Errorf("1 e: %v, %v", toks, err)
	}
}

func TestScanQualifiedName(t *testing.T) {
	toks := scanAll(t, "emp.salary")
	if !toks[0].Is("emp") || !toks[1].IsSymbol(".") || !toks[2].Is("salary") {
		t.Errorf("emp.salary = %v", toks)
	}
}

func TestScanStringEscapes(t *testing.T) {
	toks := scanAll(t, `'it''s ok'`)
	if toks[0].Kind != String || toks[0].Text != "it's ok" {
		t.Errorf("escaped string = %+v", toks[0])
	}
	if _, err := New("'unterminated").All(); err == nil {
		t.Error("unterminated string should error")
	}
}

func TestScanParams(t *testing.T) {
	toks := scanAll(t, ":NEW.emp.salary = :OLD.emp.salary")
	if toks[0].Kind != Param || toks[0].Text != "NEW" {
		t.Errorf("param = %+v", toks[0])
	}
	var oldSeen bool
	for _, tok := range toks {
		if tok.Kind == Param && tok.Text == "OLD" {
			oldSeen = true
		}
	}
	if !oldSeen {
		t.Error(":OLD not scanned")
	}
}

func TestScanSymbols(t *testing.T) {
	toks := scanAll(t, "<> != <= >= < > = ( ) , + - * / ; ==")
	want := []string{"<>", "<>", "<=", ">=", "<", ">", "=", "(", ")", ",", "+", "-", "*", "/", ";", "="}
	for i, w := range want {
		if !toks[i].IsSymbol(w) {
			t.Errorf("symbol %d = %+v, want %q", i, toks[i], w)
		}
	}
}

func TestScanComments(t *testing.T) {
	toks := scanAll(t, "a -- line comment\nb /* block */ c")
	if !toks[0].Is("a") || !toks[1].Is("b") || !toks[2].Is("c") {
		t.Errorf("comments: %v", toks)
	}
	// unterminated block comment just consumes the rest
	toks = scanAll(t, "a /* never ends")
	if !toks[0].Is("a") || toks[1].Kind != EOF {
		t.Errorf("unterminated comment: %v", toks)
	}
}

func TestScanErrors(t *testing.T) {
	for _, bad := range []string{"@", "#", "\x01"} {
		if _, err := New(bad).All(); err == nil {
			t.Errorf("%q should be a lexical error", bad)
		} else if !strings.Contains(err.Error(), "syntax error") {
			t.Errorf("error text: %v", err)
		}
	}
}

func TestScanBareColon(t *testing.T) {
	toks := scanAll(t, ": 5")
	if !toks[0].IsSymbol(":") {
		t.Errorf("bare colon = %+v", toks[0])
	}
}

func TestTokenKindString(t *testing.T) {
	kinds := []TokenKind{EOF, Ident, Number, String, Symbol, Param}
	for _, k := range kinds {
		if k.String() == "?" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestScanEmptyAndWhitespace(t *testing.T) {
	toks := scanAll(t, "   \t\n  ")
	if len(toks) != 1 || toks[0].Kind != EOF {
		t.Errorf("whitespace-only: %v", toks)
	}
}

func TestScanPositions(t *testing.T) {
	toks := scanAll(t, "ab cd")
	if toks[0].Pos != 0 || toks[1].Pos != 3 {
		t.Errorf("positions: %+v", toks)
	}
}
