// Package fleet is the cluster-wide observability layer: one pane of
// glass over a multi-node trigger processor. Each node runs a Fleet
// that (1) assembles cross-node trace timelines by fetching the
// peers' local trace records for a propagated tm1- id (/tracez), (2)
// federates metrics by scraping peer registry snapshots over the wire
// and merging them — counters summed, gauges labeled per node,
// histograms merged bucket-wise — into /fleetz JSON,
// /metrics?scope=cluster Prometheus text, and a fleet-scope SLO
// evaluation behind /sloz?scope=cluster, and (3) runs an
// anomaly-triggered flight recorder that freezes a diagnostics bundle
// at /debugz/bundle when an SLO burn fires, a peer goes down, or
// dead letters spike.
//
// Everything here is off the token hot path: peer scrapes happen on
// this package's own loop or inside ops requests, and the only
// System-side coupling is an atomic.Value federation hook read by ops
// handlers.
package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"triggerman"
	"triggerman/internal/metrics"
	"triggerman/internal/slo"
)

// Cluster is the peer surface Fleet needs, implemented by
// *cluster.Node. Fleet deliberately does not import internal/cluster
// (which imports the root package): the interface keeps the
// dependency one-way and lets tests substitute misbehaving peers.
// A nil Cluster is a single-node fleet — every endpoint still works,
// covering just this node.
type Cluster interface {
	SelfID() string
	PeerIDs() []string
	PeerUp(id string) bool
	PeerTraceFetch(peer, traceID string) (string, error)
	PeerMetricsSnapshot(peer string) (string, error)
}

// Config tunes a Fleet.
type Config struct {
	// ScrapeEvery is the background federation refresh interval
	// (default 2s). Ops requests additionally refresh on demand.
	ScrapeEvery time.Duration
	// PeerTimeout bounds every peer wire call made while serving an
	// ops request, so a wedged peer degrades the answer instead of
	// hanging it (default 2s).
	PeerTimeout time.Duration
	// Recorder tunes the flight recorder.
	Recorder RecorderConfig
}

// NodeStatus is one node's row in /fleetz: whether its snapshot was
// merged this round and its headline ingest counter.
type NodeStatus struct {
	ID       string `json:"id"`
	Self     bool   `json:"self"`
	OK       bool   `json:"ok"`
	Error    string `json:"error,omitempty"`
	TokensIn int64  `json:"tokens_in"`
}

// Fleet is one node's fleet-observability engine.
type Fleet struct {
	sys *triggerman.System
	cl  Cluster
	cfg Config
	rec *Recorder

	// sloEng evaluates the node's objectives over the merged fleet
	// histograms. It shares no registry with the node-local engine (its
	// gauges would collide) — verdicts surface via /sloz?scope=cluster
	// and slo.burn events tagged scope=cluster.
	sloEng *slo.Engine

	// refreshMu single-flights scrape rounds; state below mu is the
	// last completed round.
	refreshMu sync.Mutex
	mu        sync.Mutex
	merged    *metrics.Snapshot
	mergedAt  time.Time
	rows      []NodeStatus

	scrapes    atomic.Int64
	scrapeErrs atomic.Int64

	stop   chan struct{}
	done   chan struct{}
	closeO sync.Once
}

// New builds a Fleet around sys, registers /tracez, /fleetz, and
// /debugz/bundle on its ops surface, installs the ?scope=cluster
// federation hook, and starts the background scrape loop and flight
// recorder. Close releases all of it.
func New(sys *triggerman.System, cl Cluster, cfg Config) *Fleet {
	if cfg.ScrapeEvery <= 0 {
		cfg.ScrapeEvery = 2 * time.Second
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 2 * time.Second
	}
	f := &Fleet{
		sys:  sys,
		cl:   cl,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}

	// Mirror the node's objectives at fleet scope: same names, targets
	// and thresholds, evaluated over the merged per-class end-to-end
	// histograms instead of the local ones.
	var windows []slo.WindowPair
	if eng := sys.SLO(); eng != nil {
		windows = eng.Windows()
	}
	f.sloEng = slo.New(slo.Config{
		Windows: windows,
		OnEvent: func(event string, attrs ...any) {
			sys.EventLog().Emit(event, append(attrs, "scope", "cluster")...)
		},
	})
	for _, o := range sys.SLOObjectives() {
		f.sloEng.Add(slo.Objective{
			Name:      o.Name,
			Class:     o.Class,
			Target:    o.Target,
			Threshold: o.Threshold,
			Source:    f.classSource(o.Class, o.Threshold),
		})
	}

	f.rec = newRecorder(sys, f.selfID(), cfg.Recorder)

	sys.RegisterOpsHandler("/tracez", f.handleTracez)
	sys.RegisterOpsHandler("/fleetz", f.handleFleetz)
	sys.RegisterOpsHandler("/debugz/bundle", f.rec.handleBundle)
	sys.SetFederation(f)

	go f.loop()
	f.rec.start()
	return f
}

// Close stops the scrape loop and recorder and uninstalls the
// federation hook. Registered ops handlers keep answering from the
// last merged state (ops listeners may outlive the fleet briefly
// during shutdown).
func (f *Fleet) Close() {
	f.closeO.Do(func() {
		f.sys.SetFederation(nil)
		close(f.stop)
		<-f.done
		f.rec.stop()
	})
}

func (f *Fleet) loop() {
	defer close(f.done)
	tick := time.NewTicker(f.cfg.ScrapeEvery)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
			f.Refresh()
		}
	}
}

func (f *Fleet) selfID() string {
	if f.cl != nil {
		return f.cl.SelfID()
	}
	return f.sys.NodeID()
}

// classSource adapts one class's merged histogram for the fleet SLO
// engine. It reads the last merged snapshot — never the wire — so an
// engine Tick is always cheap and local.
func (f *Fleet) classSource(class string, cutoff time.Duration) slo.FuncSource {
	labels := metrics.LabelString(metrics.L("class", class))
	return func() (int64, int64) {
		f.mu.Lock()
		snap := f.merged
		f.mu.Unlock()
		if snap == nil {
			return 0, 0
		}
		h, ok := snap.Histogram("tman_token_duration_seconds", labels)
		if !ok {
			return 0, 0
		}
		return h.Count, h.CountAtOrBelow(cutoff)
	}
}

// Refresh runs one federation round: snapshot the local registry,
// fetch every up peer's snapshot (bounded by PeerTimeout), merge, and
// re-evaluate the fleet SLO engine against the result. Down or failing
// peers degrade the round to the reachable subset; the round itself
// never fails.
func (f *Fleet) Refresh() {
	f.refreshMu.Lock()
	defer f.refreshMu.Unlock()
	f.scrapes.Add(1)

	self := f.selfID()
	snaps := map[string]*metrics.Snapshot{self: f.sys.Metrics().Snapshot()}
	rows := []NodeStatus{{ID: self, Self: true, OK: true}}
	if f.cl != nil {
		for _, id := range f.cl.PeerIDs() {
			row := NodeStatus{ID: id}
			switch {
			case !f.cl.PeerUp(id):
				row.Error = "peer is down"
				f.scrapeErrs.Add(1)
			default:
				raw, err := f.callPeer(func() (string, error) { return f.cl.PeerMetricsSnapshot(id) })
				if err != nil {
					row.Error = err.Error()
					f.scrapeErrs.Add(1)
					break
				}
				var snap metrics.Snapshot
				if err := json.Unmarshal([]byte(raw), &snap); err != nil {
					row.Error = fmt.Sprintf("bad snapshot: %v", err)
					f.scrapeErrs.Add(1)
					break
				}
				snaps[id] = &snap
				row.OK = true
			}
			rows = append(rows, row)
		}
	}
	for i := range rows {
		if snap := snaps[rows[i].ID]; snap != nil {
			rows[i].TokensIn = snap.FamilyTotal("tman_tokens_total")
		}
	}
	merged := metrics.Merge(snaps)
	now := time.Now()

	f.mu.Lock()
	f.merged = merged
	f.mergedAt = now
	f.rows = rows
	f.mu.Unlock()

	f.sloEng.Tick()
}

// callPeer bounds a peer wire call with the configured timeout. The
// underlying call runs to completion in its own goroutine either way
// (the reconnecting client serializes per-peer traffic); the bound is
// on how long an ops request waits for it.
func (f *Fleet) callPeer(fn func() (string, error)) (string, error) {
	type result struct {
		out string
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := fn()
		ch <- result{out, err}
	}()
	select {
	case r := <-ch:
		return r.out, r.err
	case <-time.After(f.cfg.PeerTimeout):
		return "", fmt.Errorf("fleet: peer call timed out after %v", f.cfg.PeerTimeout)
	}
}

// --- federation hook (triggerman.Federation) --------------------------

// ClusterMetrics implements triggerman.Federation: a fresh federation
// round rendered as Prometheus text.
func (f *Fleet) ClusterMetrics() (string, error) {
	f.Refresh()
	f.mu.Lock()
	snap := f.merged
	f.mu.Unlock()
	var b strings.Builder
	if err := snap.WritePrometheus(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// clusterSlozPayload is the /sloz?scope=cluster shape. It is a
// distinct contract from node-scope /sloz (whose field set is pinned
// by the ops golden tests): same windows/objectives vocabulary, plus
// the scope and the node set the verdict was computed over.
type clusterSlozPayload struct {
	Enabled    bool                  `json:"enabled"`
	Scope      string                `json:"scope"`
	Node       string                `json:"node"`
	Nodes      []string              `json:"nodes"`
	Windows    []slo.WindowPair      `json:"windows"`
	Objectives []slo.ObjectiveStatus `json:"objectives"`
}

// ClusterSloz implements triggerman.Federation: burn verdicts over the
// merged per-class histograms. Refresh already ticked the engine
// against the new merge.
func (f *Fleet) ClusterSloz() (any, error) {
	f.Refresh()
	f.mu.Lock()
	rows := append([]NodeStatus(nil), f.rows...)
	f.mu.Unlock()
	nodes := make([]string, 0, len(rows))
	for _, r := range rows {
		if r.OK {
			nodes = append(nodes, r.ID)
		}
	}
	sort.Strings(nodes)
	return clusterSlozPayload{
		Enabled:    true,
		Scope:      "cluster",
		Node:       f.selfID(),
		Nodes:      nodes,
		Windows:    f.sloEng.Windows(),
		Objectives: f.sloEng.Snapshot(),
	}, nil
}

// --- /fleetz ----------------------------------------------------------

// fleetzPayload is the fleet health overview: per-node scrape status
// and the fleet-summed headline counters.
type fleetzPayload struct {
	Node           string           `json:"node"`
	Nodes          []NodeStatus     `json:"nodes"`
	Scrapes        int64            `json:"scrapes"`
	ScrapeErrors   int64            `json:"scrape_errors"`
	MergedAtUnixNs int64            `json:"merged_at_unix_ns"`
	Totals         map[string]int64 `json:"totals"`
	Recorder       recorderStatus   `json:"recorder"`
}

// fleetTotals are the headline counter families always present in
// fleetzPayload.Totals (0 when a family has no samples yet).
var fleetTotals = []string{
	"tman_tokens_total",
	"tman_matches_total",
	"tman_actions_total",
	"tman_dead_letters_total",
	"tman_cluster_forward_total",
}

func (f *Fleet) handleFleetz(w http.ResponseWriter, r *http.Request) {
	f.Refresh()
	f.mu.Lock()
	merged := f.merged
	mergedAt := f.mergedAt
	rows := append([]NodeStatus(nil), f.rows...)
	f.mu.Unlock()
	p := fleetzPayload{
		Node:           f.selfID(),
		Nodes:          rows,
		Scrapes:        f.scrapes.Load(),
		ScrapeErrors:   f.scrapeErrs.Load(),
		MergedAtUnixNs: mergedAt.UnixNano(),
		Totals:         make(map[string]int64, len(fleetTotals)),
		Recorder:       f.rec.status(),
	}
	for _, name := range fleetTotals {
		var v int64
		if merged != nil {
			v = merged.FamilyTotal(name)
		}
		p.Totals[name] = v
	}
	writeJSON(w, p)
}

// writeJSON renders one indented JSON payload (the fleet package's
// copy of the ops helper; ops.go's is unexported).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
