// Package fleet_test boots real multi-node clusters with the fleet
// observability layer attached to every member and drives the whole
// story from one node's HTTP surface: cross-node trace assembly,
// fleet-merged metrics, cluster-scope SLO verdicts, and the
// anomaly-triggered flight recorder.
package fleet_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"triggerman"
	"triggerman/client"
	"triggerman/internal/cluster"
	"triggerman/internal/fleet"
	"triggerman/internal/metrics"
	"triggerman/internal/retry"
	"triggerman/internal/types"
)

// fnode is one booted cluster member with its fleet layer.
type fnode struct {
	id   string
	addr string
	sys  *triggerman.System
	node *cluster.Node
	fl   *fleet.Fleet

	stopO sync.Once
}

// stop is idempotent so churn tests can kill a node the cleanup will
// visit again.
func (n *fnode) stop() {
	n.stopO.Do(func() {
		if n.fl != nil {
			n.fl.Close()
		}
		n.node.Close()
		n.sys.Close()
	})
}

func (n *fnode) opsURL(path string) string {
	return "http://" + n.sys.OpsAddr() + path
}

// testRetry keeps forwarding/dial backoff short so down-node paths
// resolve in milliseconds, not seconds.
func testRetry() *retry.Policy {
	return &retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
}

// burnObjective is mirrored at fleet scope by every node: a
// sub-bucket threshold means every completed token is "bad", so the
// first federation round with data starts the burn — the injected
// anomaly the acceptance test needs.
func burnObjective() []triggerman.SLOObjective {
	return []triggerman.SLOObjective{{
		Name:      "interactive-instant",
		Class:     "interactive",
		Target:    0.99,
		Threshold: time.Nanosecond,
	}}
}

// startFleet boots a 3-node cluster A/B/C, each with an ops listener
// and a Fleet: listeners first, then systems, then cluster start,
// then the fleet layer (mirroring cmd/tmcluster's boot order).
func startFleet(t *testing.T) map[string]*fnode {
	t.Helper()
	ids := []string{"A", "B", "C"}
	lns := make([]net.Listener, len(ids))
	members := make([]cluster.Member, len(ids))
	for i, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		members[i] = cluster.Member{ID: id, Addr: ln.Addr().String()}
	}
	nodes := make(map[string]*fnode, len(ids))
	for i, id := range ids {
		sys, err := triggerman.Open(triggerman.Options{
			Queue:            triggerman.MemoryQueue,
			Synchronous:      true,
			NodeID:           id,
			TraceSampleEvery: 1,
			MetricsAddr:      "127.0.0.1:0",
			SLOObjectives:    burnObjective(),
		})
		if err != nil {
			t.Fatalf("Open(%s): %v", id, err)
		}
		node, err := cluster.New(sys, cluster.Config{
			Self:         members[i],
			Peers:        members,
			PingEvery:    50 * time.Millisecond,
			ForwardRetry: testRetry(),
		})
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", id, err)
		}
		node.Serve(lns[i])
		n := &fnode{id: id, addr: members[i].Addr, sys: sys, node: node}
		nodes[id] = n
		t.Cleanup(n.stop)
	}
	for _, n := range nodes {
		n.node.Start()
	}
	for _, n := range nodes {
		n.fl = fleet.New(n.sys, n.node, fleet.Config{
			ScrapeEvery: 100 * time.Millisecond,
			PeerTimeout: time.Second,
			Recorder:    fleet.RecorderConfig{Interval: 50 * time.Millisecond},
		})
	}
	return nodes
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// sourceOwnedBy scans generated names for one the ring places on
// owner.
func sourceOwnedBy(t *testing.T, r *cluster.Ring, owner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("src%d", i)
		if r.Owner(name) == owner {
			return name
		}
	}
	t.Fatalf("no generated source owned by %s", owner)
	return ""
}

func mustCommand(t *testing.T, c *client.Client, text string) {
	t.Helper()
	if _, err := c.Command(text); err != nil {
		t.Fatalf("command %q: %v", text, err)
	}
}

func defineAndTrigger(t *testing.T, c *client.Client, src string) {
	t.Helper()
	mustCommand(t, c, fmt.Sprintf("define data source %s(x int)", src))
	mustCommand(t, c, fmt.Sprintf(
		"create trigger t_%s from %s when %s.x >= 0 do raise event Fired_%s(%s.x)",
		src, src, src, src, src))
}

var opsClient = &http.Client{Timeout: 5 * time.Second}

// getBody GETs a URL with a bounded client and returns status + body —
// the "never hangs" guarantee is the client timeout.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := opsClient.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	status, body := getBody(t, url)
	if status != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, status, body)
	}
	if err := json.Unmarshal([]byte(body), into); err != nil {
		t.Fatalf("decode %s: %v (body %q)", url, err, body)
	}
}

// tracezView mirrors the /tracez payload fields the tests read.
type tracezView struct {
	ID       string `json:"id"`
	Node     string `json:"node"`
	Complete bool   `json:"complete"`
	Nodes    []struct {
		ID      string `json:"id"`
		OK      bool   `json:"ok"`
		Error   string `json:"error"`
		Records int    `json:"records"`
	} `json:"nodes"`
	Segments []struct {
		Node string `json:"node"`
	} `json:"segments"`
	ForwardHopNs int64    `json:"forward_hop_ns"`
	Timeline     []string `json:"timeline"`
}

// segmentNodes reports which distinct nodes contributed segments.
func (v *tracezView) segmentNodes() map[string]bool {
	out := map[string]bool{}
	for _, s := range v.Segments {
		out[s.Node] = true
	}
	return out
}

// expositionValue extracts an exact (unlabeled) sample's value from
// Prometheus text.
func expositionValue(t *testing.T, text, sample string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("sample %q not in exposition", sample)
	return 0
}

// TestFleetAcceptance is the issue's acceptance path: push a token
// whose source is owned by a remote node, then retrieve — from the
// ORIGIN node's HTTP surface alone — the assembled cross-node
// timeline (with a nonzero forward hop), the fleet-merged histogram
// whose count equals the sum of the per-node counts, the
// cluster-scope SLO burn, and the frozen flight-recorder bundle
// carrying the triggering event.
func TestFleetAcceptance(t *testing.T) {
	nodes := startFleet(t)
	a, b := nodes["A"], nodes["B"]
	ring := a.node.Ring()

	cliA, err := client.Dial(a.addr, 4)
	if err != nil {
		t.Fatalf("dial A: %v", err)
	}
	defer cliA.Close()

	srcB := sourceOwnedBy(t, ring, "B")
	defineAndTrigger(t, cliA, srcB)
	waitUntil(t, "replication of "+srcB+" to B", func() bool {
		for _, s := range b.sys.DataSources() {
			if s == srcB {
				return true
			}
		}
		return false
	})

	// Push traced tokens through A; the ring owns them on B, so every
	// one crosses the forwarding hop.
	const pushes = 5
	var traceID string
	for i := 0; i < pushes; i++ {
		ctx, err := cliA.PushInsertTraced(srcB, types.Tuple{types.NewInt(int64(i))})
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if traceID == "" {
			traceID = ctx
		}
	}
	if !strings.HasPrefix(traceID, "tm1-") {
		t.Fatalf("traced push returned %q, want tm1- context", traceID)
	}
	for _, n := range nodes {
		n.sys.Drain()
	}

	// 1. Cross-node timeline from the origin: segments from both the
	// origin (forward hop) and the owner (dequeue/match/action), the
	// forward-hop stage explicit and nonzero.
	var tz tracezView
	waitUntil(t, "assembled cross-node timeline on A", func() bool {
		tz = tracezView{}
		getJSON(t, a.opsURL("/tracez?id="+traceID), &tz)
		segs := tz.segmentNodes()
		return tz.Complete && segs["A"] && segs["B"] && tz.ForwardHopNs > 0
	})
	if len(tz.Nodes) != 3 {
		t.Fatalf("/tracez nodes = %+v, want 3 rows", tz.Nodes)
	}
	if len(tz.Timeline) == 0 {
		t.Fatalf("/tracez timeline empty: %+v", tz)
	}
	sawForward := false
	for _, line := range tz.Timeline {
		if strings.Contains(line, "stage=forward") {
			sawForward = true
		}
	}
	if !sawForward {
		t.Fatalf("timeline has no forward stage: %v", tz.Timeline)
	}

	// 2. Fleet-merged histogram from the origin: valid exposition, and
	// the merged end-to-end count equals the sum of the per-node
	// counts (everything is drained, so the counts are stable).
	status, text := getBody(t, a.opsURL("/metrics?scope=cluster"))
	if status != http.StatusOK {
		t.Fatalf("/metrics?scope=cluster status %d: %s", status, text)
	}
	if err := metrics.CheckExposition(text); err != nil {
		t.Fatalf("merged exposition invalid: %v", err)
	}
	var wantCount int64
	for _, n := range nodes {
		if h, ok := n.sys.Metrics().Snapshot().Histogram("tman_token_duration_seconds", ""); ok {
			wantCount += h.Count
		}
	}
	if wantCount < pushes {
		t.Fatalf("per-node duration counts sum to %d, want >= %d", wantCount, pushes)
	}
	got := expositionValue(t, text, "tman_token_duration_seconds_count")
	if got != wantCount {
		t.Fatalf("merged tman_token_duration_seconds_count = %d, want per-node sum %d", got, wantCount)
	}

	// 3. Cluster-scope SLO from the origin: the nanosecond-threshold
	// objective must burn once the merged histograms carry the tokens.
	var sz struct {
		Enabled    bool     `json:"enabled"`
		Scope      string   `json:"scope"`
		Nodes      []string `json:"nodes"`
		Objectives []struct {
			Name    string `json:"name"`
			Burning bool   `json:"burning"`
		} `json:"objectives"`
	}
	waitUntil(t, "cluster-scope SLO burn on A", func() bool {
		sz = struct {
			Enabled    bool     `json:"enabled"`
			Scope      string   `json:"scope"`
			Nodes      []string `json:"nodes"`
			Objectives []struct {
				Name    string `json:"name"`
				Burning bool   `json:"burning"`
			} `json:"objectives"`
		}{}
		getJSON(t, a.opsURL("/sloz?scope=cluster"), &sz)
		for _, o := range sz.Objectives {
			if o.Name == "interactive-instant" && o.Burning {
				return true
			}
		}
		return false
	})
	if !sz.Enabled || sz.Scope != "cluster" || len(sz.Nodes) != 3 {
		t.Fatalf("/sloz?scope=cluster shape: %+v", sz)
	}

	// 4. The burn is an anomaly: the origin's flight recorder must
	// freeze a bundle whose trigger is the slo.burn event.
	var bz struct {
		Node          string `json:"node"`
		Frozen        bool   `json:"frozen"`
		TriggersTotal int64  `json:"triggers_total"`
		Bundle        *struct {
			TriggerKind  string `json:"trigger_kind"`
			TriggerEvent struct {
				Event string         `json:"event"`
				Attrs map[string]any `json:"attrs"`
			} `json:"trigger_event"`
			Goroutines string `json:"goroutines"`
		} `json:"bundle"`
	}
	waitUntil(t, "frozen flight-recorder bundle on A", func() bool {
		getJSON(t, a.opsURL("/debugz/bundle"), &bz)
		return bz.Frozen && bz.Bundle != nil
	})
	if bz.Node != "A" {
		t.Fatalf("bundle node = %q, want A", bz.Node)
	}
	if bz.Bundle.TriggerKind != "slo.burn" || bz.Bundle.TriggerEvent.Event != "slo.burn" {
		t.Fatalf("bundle trigger = %q / event %q, want slo.burn", bz.Bundle.TriggerKind, bz.Bundle.TriggerEvent.Event)
	}
	if state, _ := bz.Bundle.TriggerEvent.Attrs["state"].(string); state != "firing" {
		t.Fatalf("trigger event state = %v, want firing", bz.Bundle.TriggerEvent.Attrs)
	}
	if !strings.Contains(bz.Bundle.Goroutines, "goroutine") {
		t.Fatal("bundle goroutine dump empty")
	}
	if bz.TriggersTotal < 1 {
		t.Fatalf("triggers_total = %d, want >= 1", bz.TriggersTotal)
	}

	// /fleetz agrees: every node merged, the summed token counter is at
	// least the pushes, and the recorder row shows the freeze.
	var fz struct {
		Node  string `json:"node"`
		Nodes []struct {
			ID string `json:"id"`
			OK bool   `json:"ok"`
		} `json:"nodes"`
		Totals   map[string]int64 `json:"totals"`
		Recorder struct {
			Frozen bool `json:"frozen"`
		} `json:"recorder"`
	}
	getJSON(t, a.opsURL("/fleetz"), &fz)
	if fz.Node != "A" || len(fz.Nodes) != 3 {
		t.Fatalf("/fleetz shape: %+v", fz)
	}
	for _, row := range fz.Nodes {
		if !row.OK {
			t.Fatalf("/fleetz node %s not ok: %+v", row.ID, fz.Nodes)
		}
	}
	if fz.Totals["tman_tokens_total"] < pushes {
		t.Fatalf("fleet tokens_total = %d, want >= %d", fz.Totals["tman_tokens_total"], pushes)
	}
	if !fz.Recorder.Frozen {
		t.Fatal("/fleetz recorder row not frozen after bundle freeze")
	}
}

// TestTracezOwnerDeathDegradesToPartial kills the node holding the
// owner-side half of a trace while /tracez requests are in flight:
// every response must stay 200 and bounded, and once the peer is gone
// the assembly degrades to a partial timeline that still carries the
// origin's forward segment — it never hangs and never 500s.
func TestTracezOwnerDeathDegradesToPartial(t *testing.T) {
	nodes := startFleet(t)
	a, b := nodes["A"], nodes["B"]
	ring := a.node.Ring()

	cliA, err := client.Dial(a.addr, 4)
	if err != nil {
		t.Fatalf("dial A: %v", err)
	}
	defer cliA.Close()

	srcB := sourceOwnedBy(t, ring, "B")
	defineAndTrigger(t, cliA, srcB)
	ctx, err := cliA.PushInsertTraced(srcB, types.Tuple{types.NewInt(1)})
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	url := a.opsURL("/tracez?id=" + ctx)

	// Sanity: the full assembly works while everyone is up.
	var tz tracezView
	waitUntil(t, "complete pre-kill timeline", func() bool {
		tz = tracezView{}
		getJSON(t, url, &tz)
		return tz.Complete && tz.segmentNodes()["B"]
	})

	// Hammer /tracez from a background goroutine while B dies, so
	// requests race the kill itself. Every response must be 200.
	stop := make(chan struct{})
	var hammer sync.WaitGroup
	hammer.Add(1)
	go func() {
		defer hammer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			status, body := getBody(t, url)
			if status != http.StatusOK {
				t.Errorf("mid-churn /tracez status %d: %s", status, body)
				return
			}
		}
	}()

	b.stop()
	waitUntil(t, "A marks B down", func() bool { return !a.node.PeerUp("B") })
	close(stop)
	hammer.Wait()

	// Degraded steady state: 200, complete=false, B's row carries the
	// error, and the origin's own forward segment is still there.
	tz = tracezView{}
	getJSON(t, url, &tz)
	if tz.Complete {
		t.Fatalf("timeline still complete with B dead: %+v", tz)
	}
	var bErr string
	for _, row := range tz.Nodes {
		if row.ID == "B" {
			if row.OK {
				t.Fatalf("B row ok with B dead: %+v", tz.Nodes)
			}
			bErr = row.Error
		}
	}
	if bErr == "" {
		t.Fatalf("B row has no error: %+v", tz.Nodes)
	}
	if !tz.segmentNodes()["A"] || tz.ForwardHopNs <= 0 {
		t.Fatalf("partial timeline lost the origin forward segment: %+v", tz)
	}
}
