package fleet_test

import (
	"encoding/json"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"triggerman"
	"triggerman/internal/fleet"
	"triggerman/internal/metrics"
)

// openFleetSys opens a standalone System with an ops listener and a
// Fleet over cl (nil = single-node fleet).
func openFleetSys(t *testing.T, cl fleet.Cluster, cfg fleet.Config) (*triggerman.System, *fleet.Fleet) {
	t.Helper()
	sys, err := triggerman.Open(triggerman.Options{
		Queue:            triggerman.MemoryQueue,
		Synchronous:      true,
		NodeID:           "solo",
		TraceSampleEvery: 1,
		MetricsAddr:      "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { sys.Close() })
	fl := fleet.New(sys, cl, cfg)
	t.Cleanup(fl.Close)
	return sys, fl
}

// quietFleet keeps the background loops out of deterministic tests:
// refreshes happen only on demand (ops requests still refresh).
func quietFleet() fleet.Config {
	return fleet.Config{
		ScrapeEvery: time.Hour,
		PeerTimeout: 250 * time.Millisecond,
		Recorder:    fleet.RecorderConfig{Disable: true},
	}
}

// fakeCluster substitutes misbehaving peers for the wire layer.
type fakeCluster struct {
	self   string
	peers  []string
	up     map[string]bool
	snaps  map[string]string // peer -> metrics snapshot JSON
	traces map[string]string // peer -> trace records JSON
	delay  time.Duration     // per-call stall, to trip PeerTimeout
}

func (f *fakeCluster) SelfID() string    { return f.self }
func (f *fakeCluster) PeerIDs() []string { return f.peers }
func (f *fakeCluster) PeerUp(id string) bool {
	return f.up[id]
}
func (f *fakeCluster) PeerTraceFetch(peer, traceID string) (string, error) {
	time.Sleep(f.delay)
	return f.traces[peer], nil
}
func (f *fakeCluster) PeerMetricsSnapshot(peer string) (string, error) {
	time.Sleep(f.delay)
	return f.snaps[peer], nil
}

// peerSnapshot builds a peer registry with a known counter value and
// renders it the way the wire verb would.
func peerSnapshot(t *testing.T, node string, tokens int64) string {
	t.Helper()
	r := metrics.NewRegistry()
	r.Counter("tman_tokens_total", "tokens captured and queued").Add(tokens)
	snap := r.Snapshot()
	snap.Node = node
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(raw)
}

// jsonKeys decodes a JSON object and returns its sorted top-level
// keys — the ops-contract fixture used across the triggerman repo.
func jsonKeys(t *testing.T, body string) []string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestOpsContractGoldenFields pins the top-level JSON field sets of
// the fleet endpoints. Dashboards and scrapers key on these names;
// renaming one is a breaking change this test makes loud.
func TestOpsContractGoldenFields(t *testing.T) {
	sys, _ := openFleetSys(t, nil, quietFleet())
	base := "http://" + sys.OpsAddr()

	_, body := getBody(t, base+"/fleetz")
	want := []string{"merged_at_unix_ns", "node", "nodes", "recorder", "scrape_errors", "scrapes", "totals"}
	if got := jsonKeys(t, body); !reflect.DeepEqual(got, want) {
		t.Fatalf("/fleetz fields = %v, want %v", got, want)
	}

	_, body = getBody(t, base+"/tracez?id=tm1-00000000000000ab-01")
	want = []string{"complete", "forward_hop_ns", "id", "node", "nodes", "segments", "timeline"}
	if got := jsonKeys(t, body); !reflect.DeepEqual(got, want) {
		t.Fatalf("/tracez fields = %v, want %v", got, want)
	}

	_, body = getBody(t, base+"/debugz/bundle")
	want = []string{"frozen", "node", "triggers_total"}
	if got := jsonKeys(t, body); !reflect.DeepEqual(got, want) {
		t.Fatalf("/debugz/bundle fields = %v, want %v", got, want)
	}

	status, body := getBody(t, base+"/sloz?scope=cluster")
	if status != http.StatusOK {
		t.Fatalf("/sloz?scope=cluster status %d: %s", status, body)
	}
	want = []string{"enabled", "node", "nodes", "objectives", "scope", "windows"}
	if got := jsonKeys(t, body); !reflect.DeepEqual(got, want) {
		t.Fatalf("/sloz?scope=cluster fields = %v, want %v", got, want)
	}
}

// TestTracezRejectsBadIDs pins the input contract: a missing or
// malformed id is a 400, never a 500 and never an empty 200.
func TestTracezRejectsBadIDs(t *testing.T) {
	sys, _ := openFleetSys(t, nil, quietFleet())
	base := "http://" + sys.OpsAddr()
	for _, q := range []string{"", "?id=garbage", "?id=tm1-zz-01", "?id=tm1-0000000000000000-01"} {
		status, body := getBody(t, base+"/tracez"+q)
		if status != http.StatusBadRequest {
			t.Fatalf("/tracez%s status = %d (%s), want 400", q, status, body)
		}
	}
}

// TestClusterScopeNeedsFederation pins the standalone behavior: a
// system with no fleet layer answers ?scope=cluster with 501, not a
// confusing single-node payload.
func TestClusterScopeNeedsFederation(t *testing.T) {
	sys, err := triggerman.Open(triggerman.Options{
		Queue:       triggerman.MemoryQueue,
		Synchronous: true,
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer sys.Close()
	status, _ := getBody(t, "http://"+sys.OpsAddr()+"/metrics?scope=cluster")
	if status != http.StatusNotImplemented {
		t.Fatalf("/metrics?scope=cluster without fleet: status %d, want 501", status)
	}
}

// TestFederationMergesAndDegrades drives a Refresh against one
// healthy fake peer and one down peer: the merged counter must be the
// sum over reachable nodes, and the down peer must surface as a row
// error, not a failed round.
func TestFederationMergesAndDegrades(t *testing.T) {
	fake := &fakeCluster{
		self:  "solo",
		peers: []string{"p1", "p2"},
		up:    map[string]bool{"p1": true, "p2": false},
		snaps: map[string]string{"p1": peerSnapshot(t, "p1", 40)},
	}
	sys, _ := openFleetSys(t, fake, quietFleet())
	local := sys.Metrics().Snapshot().FamilyTotal("tman_tokens_total")

	var fz struct {
		Nodes []struct {
			ID    string `json:"id"`
			Self  bool   `json:"self"`
			OK    bool   `json:"ok"`
			Error string `json:"error"`
		} `json:"nodes"`
		ScrapeErrors int64            `json:"scrape_errors"`
		Totals       map[string]int64 `json:"totals"`
	}
	getJSON(t, "http://"+sys.OpsAddr()+"/fleetz", &fz)
	if len(fz.Nodes) != 3 {
		t.Fatalf("fleetz rows = %+v, want self+2 peers", fz.Nodes)
	}
	for _, row := range fz.Nodes {
		switch row.ID {
		case "solo":
			if !row.Self || !row.OK {
				t.Fatalf("self row: %+v", row)
			}
		case "p1":
			if !row.OK {
				t.Fatalf("p1 row: %+v", row)
			}
		case "p2":
			if row.OK || row.Error != "peer is down" {
				t.Fatalf("p2 row: %+v", row)
			}
		}
	}
	if fz.ScrapeErrors < 1 {
		t.Fatalf("scrape_errors = %d, want >= 1 for the down peer", fz.ScrapeErrors)
	}
	if want := local + 40; fz.Totals["tman_tokens_total"] != want {
		t.Fatalf("merged tokens_total = %d, want local %d + peer 40", fz.Totals["tman_tokens_total"], local)
	}

	// The merged exposition is valid and carries the summed counter.
	status, text := getBody(t, "http://"+sys.OpsAddr()+"/metrics?scope=cluster")
	if status != http.StatusOK {
		t.Fatalf("scope=cluster status %d", status)
	}
	if err := metrics.CheckExposition(text); err != nil {
		t.Fatalf("merged exposition invalid: %v", err)
	}
}

// TestTracezPeerTimeoutDegrades wedges a fake peer past PeerTimeout:
// the assembly must come back within the bound, Complete=false, with
// the timeout named in the peer's row.
func TestTracezPeerTimeoutDegrades(t *testing.T) {
	fake := &fakeCluster{
		self:  "solo",
		peers: []string{"slow"},
		up:    map[string]bool{"slow": true},
		delay: 2 * time.Second,
	}
	sys, _ := openFleetSys(t, fake, quietFleet()) // PeerTimeout 250ms

	began := time.Now()
	var tz tracezView
	getJSON(t, "http://"+sys.OpsAddr()+"/tracez?id=tm1-00000000000000ab-01", &tz)
	if el := time.Since(began); el > 2*time.Second {
		t.Fatalf("tracez took %v despite 250ms peer timeout", el)
	}
	if tz.Complete {
		t.Fatal("timeline complete despite wedged peer")
	}
	if len(tz.Nodes) != 2 || tz.Nodes[1].OK || !strings.Contains(tz.Nodes[1].Error, "timed out") {
		t.Fatalf("slow peer row: %+v", tz.Nodes)
	}
}

// TestRecorderFreezesOnPeerDown feeds the recorder a peer-down
// transition through the event log and checks the freeze/rearm cycle
// from the HTTP surface.
func TestRecorderFreezesOnPeerDown(t *testing.T) {
	cfg := quietFleet()
	cfg.Recorder = fleet.RecorderConfig{Disable: true} // CheckNow runs in the handler
	sys, _ := openFleetSys(t, nil, cfg)
	base := "http://" + sys.OpsAddr()

	// Baseline: armed, nothing frozen.
	var bz struct {
		Frozen        bool  `json:"frozen"`
		TriggersTotal int64 `json:"triggers_total"`
		Bundle        *struct {
			TriggerKind string           `json:"trigger_kind"`
			WindowNs    int64            `json:"window_ns"`
			Events      []map[string]any `json:"events"`
		} `json:"bundle"`
	}
	getJSON(t, base+"/debugz/bundle", &bz)
	if bz.Frozen {
		t.Fatalf("recorder frozen before any anomaly: %+v", bz)
	}

	// The cluster layer's down transition, as the pinger would emit it.
	sys.EventLog().Warn("cluster.peer", "peer", "B", "state", "down")
	getJSON(t, base+"/debugz/bundle", &bz)
	if !bz.Frozen || bz.Bundle == nil || bz.Bundle.TriggerKind != "peer.down" {
		t.Fatalf("no peer.down freeze: %+v", bz)
	}
	if bz.TriggersTotal != 1 {
		t.Fatalf("triggers_total = %d, want 1", bz.TriggersTotal)
	}

	// Rearm clears the bundle; the already-consumed event must not
	// re-freeze it.
	getJSON(t, base+"/debugz/bundle?rearm=1", &bz)
	if bz.Frozen {
		t.Fatalf("recorder still frozen after rearm: %+v", bz)
	}
}
