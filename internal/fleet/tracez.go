package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"triggerman/internal/trace"
)

// tracezPayload is the assembled cross-node timeline for one
// propagated trace id. Complete is false when any peer could not be
// asked (down, timed out, or returned garbage) — the timeline then
// covers the reachable subset, which is the useful degradation: a
// partial answer now beats a complete answer never.
type tracezPayload struct {
	ID       string       `json:"id"`
	Node     string       `json:"node"`
	Complete bool         `json:"complete"`
	Nodes    []tracezNode `json:"nodes"`
	// Segments are every node's records for this id, merged and sorted
	// by start time: origin capture → forward hop → owner
	// dequeue/match/action.
	Segments []tracezSegment `json:"segments"`
	// ForwardHopNs totals the forward-stage time across segments — the
	// cross-node cost, made explicit so "slow because of the hop" and
	// "slow on the owner" are distinguishable at a glance.
	ForwardHopNs int64 `json:"forward_hop_ns"`
	// Timeline is a human-readable rendering: one line per stage,
	// offset from the earliest segment's start.
	Timeline []string `json:"timeline"`
}

// tracezNode is one node's contribution to the assembly.
type tracezNode struct {
	ID      string `json:"id"`
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	Records int    `json:"records"`
}

// tracezSegment is one node's trace record, stamped with the node it
// came from.
type tracezSegment struct {
	Node string `json:"node"`
	trace.Record
}

// handleTracez serves /tracez?id=tm1-...: the local trace ring's
// records for the id plus every reachable peer's, assembled into one
// timeline. Peer failures degrade the answer (Complete=false); they
// never 500 it, and PeerTimeout guarantees it cannot hang.
func (f *Fleet) handleTracez(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("id")
	if raw == "" {
		http.Error(w, "tracez: ?id=tm1-<traceid>-<flags> required", http.StatusBadRequest)
		return
	}
	tid, _, err := trace.ParseContext(raw)
	if err != nil || tid == 0 {
		http.Error(w, fmt.Sprintf("tracez: bad trace id %q", raw), http.StatusBadRequest)
		return
	}
	id := trace.FormatContext(tid, trace.FlagSampled)
	self := f.selfID()
	p := tracezPayload{
		ID:       id,
		Node:     self,
		Complete: true,
		Nodes:    []tracezNode{},
		Segments: []tracezSegment{},
		Timeline: []string{},
	}

	local := f.sys.Tracer().RecordsByParent(tid)
	p.Nodes = append(p.Nodes, tracezNode{ID: self, OK: true, Records: len(local)})
	for _, rec := range local {
		p.Segments = append(p.Segments, tracezSegment{Node: self, Record: rec})
	}

	if f.cl != nil {
		for _, pid := range f.cl.PeerIDs() {
			row := tracezNode{ID: pid}
			switch {
			case !f.cl.PeerUp(pid):
				row.Error = "peer is down"
				p.Complete = false
			default:
				out, err := f.callPeer(func() (string, error) { return f.cl.PeerTraceFetch(pid, id) })
				if err != nil {
					row.Error = err.Error()
					p.Complete = false
					break
				}
				var recs []trace.Record
				if err := json.Unmarshal([]byte(out), &recs); err != nil {
					row.Error = fmt.Sprintf("bad trace payload: %v", err)
					p.Complete = false
					break
				}
				row.OK = true
				row.Records = len(recs)
				for _, rec := range recs {
					p.Segments = append(p.Segments, tracezSegment{Node: pid, Record: rec})
				}
			}
			p.Nodes = append(p.Nodes, row)
		}
	}

	sort.SliceStable(p.Segments, func(i, j int) bool {
		return p.Segments[i].Start.Before(p.Segments[j].Start)
	})
	for _, seg := range p.Segments {
		for _, st := range seg.Stages {
			if st.Stage == trace.StageForward.String() {
				p.ForwardHopNs += int64(st.Total)
			}
		}
	}
	if len(p.Segments) > 0 {
		t0 := p.Segments[0].Start
		for _, seg := range p.Segments {
			off := seg.Start.Sub(t0)
			for _, st := range seg.Stages {
				p.Timeline = append(p.Timeline, fmt.Sprintf(
					"+%.3fms node=%s stage=%s took=%.3fms",
					float64(off.Nanoseconds())/1e6, seg.Node, st.Stage,
					float64(st.Total.Nanoseconds())/1e6))
			}
		}
	}
	writeJSON(w, p)
}
