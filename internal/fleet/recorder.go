package fleet

import (
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"triggerman"
	"triggerman/internal/eventlog"
	"triggerman/internal/trace"
)

// RecorderConfig tunes the flight recorder.
type RecorderConfig struct {
	// Interval is the buffering tick (default 250ms); each tick stores
	// one frame of scalar metric values and scans new event-log
	// entries for triggers.
	Interval time.Duration
	// Frames bounds the frame ring (default 32 — with the default
	// interval, an ~8s metrics-delta window).
	Frames int
	// DeadLetterSpike is the tman_dead_letters_total delta over the
	// buffered window that counts as an anomaly (default 25).
	DeadLetterSpike int64
	// TraceTail and EventTail bound how many recent traces / events a
	// frozen bundle carries (defaults 16 / 64).
	TraceTail int
	EventTail int
	// Disable skips the background tick loop; CheckNow (and therefore
	// /debugz/bundle) still evaluates triggers on demand.
	Disable bool
}

// MetricDelta is one scalar instrument's change over the buffered
// window.
type MetricDelta struct {
	Name  string `json:"name"`
	Delta int64  `json:"delta"`
}

// Bundle is the frozen black box: what the node looked like the
// moment the first anomaly fired. It is captured once and held until
// rearmed, so the state near the incident survives however long the
// operator takes to look.
type Bundle struct {
	Node           string `json:"node"`
	FrozenAtUnixNs int64  `json:"frozen_at_unix_ns"`
	// TriggerKind is "slo.burn", "peer.down", or "deadletter.spike".
	TriggerKind  string          `json:"trigger_kind"`
	TriggerEvent eventlog.Record `json:"trigger_event"`
	// WindowNs is the metrics-delta observation window (oldest
	// buffered frame to the freeze).
	WindowNs     int64             `json:"window_ns"`
	MetricsDelta []MetricDelta     `json:"metrics_delta"`
	Events       []eventlog.Record `json:"events"`
	Traces       []trace.Record    `json:"traces"`
	Goroutines   string            `json:"goroutines"`
}

// frame is one buffered tick: every scalar instrument's value.
type frame struct {
	at      time.Time
	scalars map[string]int64
}

// Recorder is the anomaly-triggered flight recorder: a bounded buffer
// of recent system state plus a one-shot freeze.
type Recorder struct {
	sys  *triggerman.System
	node string
	cfg  RecorderConfig

	// tickMu serializes tick bodies (background loop vs handler-driven
	// CheckNow).
	tickMu sync.Mutex

	mu         sync.Mutex
	frames     []frame
	next, cnt  int
	seenEvents int64
	frozen     *Bundle

	triggers atomic.Int64

	stopC  chan struct{}
	doneC  chan struct{}
	closeO sync.Once
}

func newRecorder(sys *triggerman.System, node string, cfg RecorderConfig) *Recorder {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.Frames <= 0 {
		cfg.Frames = 32
	}
	if cfg.DeadLetterSpike <= 0 {
		cfg.DeadLetterSpike = 25
	}
	if cfg.TraceTail <= 0 {
		cfg.TraceTail = 16
	}
	if cfg.EventTail <= 0 {
		cfg.EventTail = 64
	}
	return &Recorder{
		sys:    sys,
		node:   node,
		cfg:    cfg,
		frames: make([]frame, cfg.Frames),
		// Start the event high-water at the current total: history from
		// before the recorder existed must not fire it.
		seenEvents: sys.EventLog().Total(),
		stopC:      make(chan struct{}),
		doneC:      make(chan struct{}),
	}
}

func (r *Recorder) start() {
	if r.cfg.Disable {
		close(r.doneC)
		return
	}
	go func() {
		defer close(r.doneC)
		tick := time.NewTicker(r.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-r.stopC:
				return
			case <-tick.C:
				r.CheckNow()
			}
		}
	}()
}

func (r *Recorder) stop() {
	r.closeO.Do(func() {
		close(r.stopC)
		<-r.doneC
	})
}

// scalarFrame flattens the registry's counters into name{labels} →
// value. Counters only: their deltas are rates, which is what an
// incident window wants; gauges and histograms ride along in the
// bundle via events and traces.
func (r *Recorder) scalarFrame() frame {
	snap := r.sys.Metrics().Snapshot()
	f := frame{at: time.Now(), scalars: make(map[string]int64, 64)}
	for _, fam := range snap.Families {
		if fam.Kind != "counter" {
			continue
		}
		for _, inst := range fam.Insts {
			f.scalars[fam.Name+inst.Labels] = inst.Value
		}
	}
	return f
}

// CheckNow runs one recorder tick synchronously: buffer a frame, scan
// for triggers, freeze on the first anomaly. The /debugz/bundle
// handler calls it so a bundle request never races the tick interval.
func (r *Recorder) CheckNow() {
	r.tickMu.Lock()
	defer r.tickMu.Unlock()

	cur := r.scalarFrame()
	elog := r.sys.EventLog()
	total := elog.Total()

	r.mu.Lock()
	newN := total - r.seenEvents
	r.seenEvents = total
	var oldest *frame
	if r.cnt > 0 {
		idx := (r.next - r.cnt + len(r.frames)) % len(r.frames)
		o := r.frames[idx]
		oldest = &o
	}
	alreadyFrozen := r.frozen != nil
	r.mu.Unlock()

	// Trigger scan 1+2: fresh slo.burn firings and peer down
	// transitions in the event log since the last tick.
	var trigKind string
	var trigEvent eventlog.Record
	if newN > 0 {
		recent := elog.Recent()
		if newN > int64(len(recent)) {
			newN = int64(len(recent))
		}
		for _, rec := range recent[len(recent)-int(newN):] {
			switch rec.Event {
			case "slo.burn":
				if s, _ := rec.Attrs["state"].(string); s == "firing" {
					trigKind, trigEvent = "slo.burn", rec
				}
			case "cluster.peer":
				if s, _ := rec.Attrs["state"].(string); s == "down" && trigKind == "" {
					trigKind, trigEvent = "peer.down", rec
				}
			}
		}
	}
	// Trigger scan 3: dead-letter spike over the buffered window.
	if trigKind == "" && oldest != nil {
		const dl = "tman_dead_letters_total"
		if delta := cur.scalars[dl] - oldest.scalars[dl]; delta >= r.cfg.DeadLetterSpike {
			trigKind = "deadletter.spike"
			trigEvent = eventlog.Record{
				Time: cur.at, Level: "WARN", Event: "deadletter.spike",
				Attrs: map[string]any{
					"delta":     delta,
					"window_ns": cur.at.Sub(oldest.at).Nanoseconds(),
				},
			}
		}
	}

	if trigKind != "" {
		r.triggers.Add(1)
		if !alreadyFrozen {
			r.freeze(trigKind, trigEvent, cur, oldest)
		}
	}

	r.mu.Lock()
	r.frames[r.next] = cur
	r.next = (r.next + 1) % len(r.frames)
	if r.cnt < len(r.frames) {
		r.cnt++
	}
	r.mu.Unlock()
}

// freeze captures the bundle: goroutine dump, metrics delta over the
// buffered window, recent events and traces — then announces itself in
// the event log (where /eventz and peers can see it).
func (r *Recorder) freeze(kind string, ev eventlog.Record, cur frame, oldest *frame) {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	b := &Bundle{
		Node:           r.node,
		FrozenAtUnixNs: cur.at.UnixNano(),
		TriggerKind:    kind,
		TriggerEvent:   ev,
		MetricsDelta:   []MetricDelta{},
		Goroutines:     string(buf[:n]),
	}
	if oldest != nil {
		b.WindowNs = cur.at.Sub(oldest.at).Nanoseconds()
		for name, v := range cur.scalars {
			if d := v - oldest.scalars[name]; d != 0 {
				b.MetricsDelta = append(b.MetricsDelta, MetricDelta{Name: name, Delta: d})
			}
		}
		sort.Slice(b.MetricsDelta, func(i, j int) bool { return b.MetricsDelta[i].Name < b.MetricsDelta[j].Name })
	}
	events := r.sys.EventLog().Recent()
	if len(events) > r.cfg.EventTail {
		events = events[len(events)-r.cfg.EventTail:]
	}
	b.Events = events
	traces := r.sys.Tracer().Recent()
	if len(traces) > r.cfg.TraceTail {
		traces = traces[len(traces)-r.cfg.TraceTail:]
	}
	b.Traces = traces

	r.mu.Lock()
	if r.frozen == nil {
		r.frozen = b
	}
	r.mu.Unlock()
	r.sys.EventLog().Warn("flightrecorder.freeze", "node", r.node, "trigger", kind)
}

// Rearm clears a frozen bundle so the recorder can capture the next
// anomaly.
func (r *Recorder) Rearm() {
	r.mu.Lock()
	r.frozen = nil
	r.mu.Unlock()
}

// recorderStatus is the /fleetz summary row.
type recorderStatus struct {
	Enabled       bool  `json:"enabled"`
	Frozen        bool  `json:"frozen"`
	TriggersTotal int64 `json:"triggers_total"`
}

func (r *Recorder) status() recorderStatus {
	r.mu.Lock()
	frozen := r.frozen != nil
	r.mu.Unlock()
	return recorderStatus{
		Enabled:       !r.cfg.Disable,
		Frozen:        frozen,
		TriggersTotal: r.triggers.Load(),
	}
}

// bundlePayload is the /debugz/bundle shape; Bundle is present only
// once frozen.
type bundlePayload struct {
	Node          string  `json:"node"`
	Frozen        bool    `json:"frozen"`
	TriggersTotal int64   `json:"triggers_total"`
	Bundle        *Bundle `json:"bundle,omitempty"`
}

// handleBundle serves /debugz/bundle. ?rearm=1 clears a frozen bundle
// first; the handler then evaluates triggers synchronously so a burn
// that just fired is visible without waiting for the next tick.
func (r *Recorder) handleBundle(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("rearm") == "1" {
		r.Rearm()
	}
	r.CheckNow()
	r.mu.Lock()
	b := r.frozen
	r.mu.Unlock()
	writeJSON(w, bundlePayload{
		Node:          r.node,
		Frozen:        b != nil,
		TriggersTotal: r.triggers.Load(),
		Bundle:        b,
	})
}
