package faults

import (
	"testing"
	"time"

	"triggerman/internal/retry"
	"triggerman/internal/storage"
)

func TestDiskRateInjection(t *testing.T) {
	d := NewDisk(storage.NewMem(), 1)
	id, err := d.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	d.SetErrorRate(0.5)
	fails := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if err := d.ReadPage(id, buf); err != nil {
			if !retry.IsTransient(err) {
				t.Fatalf("injected fault not transient: %v", err)
			}
			fails++
		}
	}
	if fails < n/3 || fails > 2*n/3 {
		t.Errorf("0.5 rate produced %d/%d failures", fails, n)
	}
	if d.Injected() != int64(fails) {
		t.Errorf("Injected() = %d, want %d", d.Injected(), fails)
	}
	d.SetErrorRate(0)
	if err := d.ReadPage(id, buf); err != nil {
		t.Errorf("rate 0 should not fail: %v", err)
	}
}

func TestDiskForcedSwitches(t *testing.T) {
	d := NewDisk(storage.NewMem(), 7)
	id, _ := d.AllocatePage()
	buf := make([]byte, storage.PageSize)

	d.SetFailWrites(true)
	if err := d.WritePage(id, buf); err == nil {
		t.Error("forced write fault missing")
	}
	d.SetFailWrites(false)
	if err := d.WritePage(id, buf); err != nil {
		t.Errorf("write after heal: %v", err)
	}
	d.SetFailAllocs(true)
	if _, err := d.AllocatePage(); err == nil {
		t.Error("forced alloc fault missing")
	}
	d.SetFailAllocs(false)
	d.SetFailReads(true)
	if err := d.ReadPage(id, buf); err == nil {
		t.Error("forced read fault missing")
	}
}

func TestDiskLatency(t *testing.T) {
	d := NewDisk(storage.NewMem(), 3)
	id, _ := d.AllocatePage()
	buf := make([]byte, storage.PageSize)
	d.SetLatency(2 * time.Millisecond)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := d.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Errorf("5 reads at 2ms latency took %v", el)
	}
}

func TestActionInjectorModes(t *testing.T) {
	a := NewActionInjector(11)
	hook := a.Hook()

	// Error mode.
	a.SetErrorRate(1)
	if err := hook(1); err == nil || !retry.IsTransient(err) {
		t.Fatalf("error injection: %v", err)
	}
	a.SetErrorRate(0)
	if err := hook(1); err != nil {
		t.Fatalf("rate 0: %v", err)
	}
	if a.InjectedErrors() != 1 {
		t.Errorf("InjectedErrors = %d", a.InjectedErrors())
	}

	// Panic mode.
	a.SetPanicRate(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic injection did not panic")
			}
		}()
		hook(2)
	}()
	a.SetPanicRate(0)

	// Poison quarantines one trigger only.
	a.Poison(42)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("poisoned trigger did not panic")
			}
		}()
		hook(42)
	}()
	if err := hook(7); err != nil {
		t.Errorf("non-poisoned trigger: %v", err)
	}
	a.Heal(42)
	if err := hook(42); err != nil {
		t.Errorf("healed trigger: %v", err)
	}
	if a.InjectedPanics() != 2 {
		t.Errorf("InjectedPanics = %d", a.InjectedPanics())
	}
}
