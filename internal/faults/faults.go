// Package faults is the fault-injection harness: reusable wrappers that
// make the storage and action layers fail on demand so chaos tests can
// assert the system's failure-handling contract — no token lost, no
// driver killed, Drain/Close still terminate — under sustained fault
// rates.
//
// Two injectors are provided. Disk wraps a storage.DiskManager with
// probabilistic (or switched-on) I/O errors and added latency; it
// generalizes the ad-hoc faultDisk previously private to the storage
// tests. ActionInjector plugs into exec.Executor.Inject and makes rule
// actions fail or panic at a configured rate. Injected errors are
// marked retry.Transient, so they exercise the retry/backoff path the
// way a real flaky disk would; panics exercise the panic-isolation
// path.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"triggerman/internal/retry"
	"triggerman/internal/storage"
)

// Disk wraps a DiskManager and injects faults. The zero rate injects
// nothing; the always-fail switches override the rates for
// deterministic tests.
type Disk struct {
	inner storage.DiskManager

	mu        sync.Mutex
	rng       *rand.Rand
	readRate  float64
	writeRate float64
	allocRate float64
	latency   time.Duration

	failReads, failWrites, failAllocs bool

	injected int64
}

var _ storage.DiskManager = (*Disk)(nil)

// NewDisk wraps inner with a deterministic injector seeded by seed.
func NewDisk(inner storage.DiskManager, seed int64) *Disk {
	return &Disk{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// Inner returns the wrapped manager.
func (d *Disk) Inner() storage.DiskManager { return d.inner }

// SetErrorRate makes every read, write and allocation fail with
// probability p (0 disables).
func (d *Disk) SetErrorRate(p float64) {
	d.mu.Lock()
	d.readRate, d.writeRate, d.allocRate = p, p, p
	d.mu.Unlock()
}

// SetRates sets per-operation failure probabilities.
func (d *Disk) SetRates(read, write, alloc float64) {
	d.mu.Lock()
	d.readRate, d.writeRate, d.allocRate = read, write, alloc
	d.mu.Unlock()
}

// SetLatency adds a fixed delay to every read and write.
func (d *Disk) SetLatency(l time.Duration) {
	d.mu.Lock()
	d.latency = l
	d.mu.Unlock()
}

// SetFailReads / SetFailWrites / SetFailAllocs force every operation of
// that kind to fail until switched off (deterministic error-path
// tests).
func (d *Disk) SetFailReads(on bool) {
	d.mu.Lock()
	d.failReads = on
	d.mu.Unlock()
}

// SetFailWrites forces write failures on or off.
func (d *Disk) SetFailWrites(on bool) {
	d.mu.Lock()
	d.failWrites = on
	d.mu.Unlock()
}

// SetFailAllocs forces allocation failures on or off.
func (d *Disk) SetFailAllocs(on bool) {
	d.mu.Lock()
	d.failAllocs = on
	d.mu.Unlock()
}

// Injected reports how many faults have been injected so far.
func (d *Disk) Injected() int64 { return atomic.LoadInt64(&d.injected) }

// decide rolls the dice for one operation and applies latency.
func (d *Disk) decide(forced bool, rate float64) bool {
	d.mu.Lock()
	lat := d.latency
	hit := forced || (rate > 0 && d.rng.Float64() < rate)
	d.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	if hit {
		atomic.AddInt64(&d.injected, 1)
	}
	return hit
}

// ReadPage implements storage.DiskManager.
func (d *Disk) ReadPage(id storage.PageID, buf []byte) error {
	d.mu.Lock()
	forced, rate := d.failReads, d.readRate
	d.mu.Unlock()
	if d.decide(forced, rate) {
		return retry.Transient(fmt.Errorf("faults: injected read fault on page %d", id))
	}
	return d.inner.ReadPage(id, buf)
}

// WritePage implements storage.DiskManager.
func (d *Disk) WritePage(id storage.PageID, buf []byte) error {
	d.mu.Lock()
	forced, rate := d.failWrites, d.writeRate
	d.mu.Unlock()
	if d.decide(forced, rate) {
		return retry.Transient(fmt.Errorf("faults: injected write fault on page %d", id))
	}
	return d.inner.WritePage(id, buf)
}

// AllocatePage implements storage.DiskManager.
func (d *Disk) AllocatePage() (storage.PageID, error) {
	d.mu.Lock()
	forced, rate := d.failAllocs, d.allocRate
	d.mu.Unlock()
	if d.decide(forced, rate) {
		return storage.InvalidPageID, retry.Transient(fmt.Errorf("faults: injected allocation fault"))
	}
	return d.inner.AllocatePage()
}

// NumPages implements storage.DiskManager.
func (d *Disk) NumPages() int { return d.inner.NumPages() }

// Sync implements storage.DiskManager.
func (d *Disk) Sync() error { return d.inner.Sync() }

// Close implements storage.DiskManager.
func (d *Disk) Close() error { return d.inner.Close() }

// ActionInjector makes rule actions fail. Wire its Hook into
// exec.Executor.Inject. Error injections return transient errors (the
// retry path); panic injections panic (the isolation path); a trigger
// listed in Poison panics on every firing (the quarantine path).
type ActionInjector struct {
	mu        sync.Mutex
	rng       *rand.Rand
	errRate   float64
	panicRate float64
	poison    map[uint64]bool

	injectedErrs   int64
	injectedPanics int64
}

// NewActionInjector returns a deterministic injector seeded by seed.
func NewActionInjector(seed int64) *ActionInjector {
	return &ActionInjector{rng: rand.New(rand.NewSource(seed)), poison: make(map[uint64]bool)}
}

// SetErrorRate makes actions fail with a transient error at rate p.
func (a *ActionInjector) SetErrorRate(p float64) {
	a.mu.Lock()
	a.errRate = p
	a.mu.Unlock()
}

// SetPanicRate makes actions panic at rate p.
func (a *ActionInjector) SetPanicRate(p float64) {
	a.mu.Lock()
	a.panicRate = p
	a.mu.Unlock()
}

// Poison makes every firing of the given trigger panic.
func (a *ActionInjector) Poison(triggerID uint64) {
	a.mu.Lock()
	a.poison[triggerID] = true
	a.mu.Unlock()
}

// Heal removes a trigger from the poison set.
func (a *ActionInjector) Heal(triggerID uint64) {
	a.mu.Lock()
	delete(a.poison, triggerID)
	a.mu.Unlock()
}

// InjectedErrors reports how many action errors were injected.
func (a *ActionInjector) InjectedErrors() int64 { return atomic.LoadInt64(&a.injectedErrs) }

// InjectedPanics reports how many action panics were injected.
func (a *ActionInjector) InjectedPanics() int64 { return atomic.LoadInt64(&a.injectedPanics) }

// Hook returns the function to install as exec.Executor.Inject.
func (a *ActionInjector) Hook() func(triggerID uint64) error {
	return func(triggerID uint64) error {
		a.mu.Lock()
		poisoned := a.poison[triggerID]
		doPanic := !poisoned && a.panicRate > 0 && a.rng.Float64() < a.panicRate
		doErr := !poisoned && !doPanic && a.errRate > 0 && a.rng.Float64() < a.errRate
		a.mu.Unlock()
		switch {
		case poisoned:
			atomic.AddInt64(&a.injectedPanics, 1)
			panic(fmt.Sprintf("faults: poison trigger %d", triggerID))
		case doPanic:
			atomic.AddInt64(&a.injectedPanics, 1)
			panic(fmt.Sprintf("faults: injected action panic (trigger %d)", triggerID))
		case doErr:
			atomic.AddInt64(&a.injectedErrs, 1)
			return retry.Transient(fmt.Errorf("faults: injected action fault (trigger %d)", triggerID))
		}
		return nil
	}
}
