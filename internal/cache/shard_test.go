package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardedBasics(t *testing.T) {
	var loads int64
	s := NewSharded(64, countingLoader(&loads))
	e, err := s.Pin(7)
	if err != nil || e.Value.(string) != "trigger-7" {
		t.Fatalf("pin: %v %v", e, err)
	}
	if !s.Resident(7) {
		t.Error("resident")
	}
	if err := s.Unpin(7); err != nil {
		t.Fatal(err)
	}
	// Hit.
	s.Pin(7)
	s.Unpin(7)
	if loads != 1 {
		t.Errorf("loads = %d", loads)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if err := s.Invalidate(7); err != nil {
		t.Fatal(err)
	}
	if s.Resident(7) || s.Len() != 0 {
		t.Error("invalidate")
	}
}

func TestShardedDistribution(t *testing.T) {
	var loads int64
	s := NewSharded(160, countingLoader(&loads))
	for i := uint64(0); i < 160; i++ {
		if _, err := s.Pin(i); err != nil {
			t.Fatal(err)
		}
		s.Unpin(i)
	}
	// IDs 0..159 spread evenly over 16 shards of 10: all resident.
	if s.Len() != 160 {
		t.Errorf("len = %d, want 160 (even spread)", s.Len())
	}
}

func TestShardedTinyCapacity(t *testing.T) {
	// Capacity below shard count still yields 1 slot per shard.
	s := NewSharded(3, countingLoader(new(int64)))
	for i := uint64(0); i < 32; i++ {
		if _, err := s.Pin(i); err != nil {
			t.Fatal(err)
		}
		s.Unpin(i)
	}
	if s.Len() > 16 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestShardedConcurrent(t *testing.T) {
	var loads int64
	s := NewSharded(256, func(id uint64) (interface{}, error) {
		atomic.AddInt64(&loads, 1)
		return fmt.Sprintf("t%d", id), nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				id := (seed*31 + uint64(i)) % 512
				e, err := s.Pin(id)
				if err != nil {
					continue
				}
				if e.Value.(string) != fmt.Sprintf("t%d", id) {
					t.Errorf("wrong value for %d", id)
				}
				s.Unpin(id)
			}
		}(uint64(g))
	}
	wg.Wait()
	if s.Len() > 256 {
		t.Errorf("over capacity: %d", s.Len())
	}
}
