package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func countingLoader(loads *int64) Loader {
	return func(id uint64) (interface{}, error) {
		atomic.AddInt64(loads, 1)
		return fmt.Sprintf("trigger-%d", id), nil
	}
}

func TestPinLoadsOnMiss(t *testing.T) {
	var loads int64
	c := New(4, countingLoader(&loads))
	e, err := c.Pin(7)
	if err != nil {
		t.Fatal(err)
	}
	if e.Value.(string) != "trigger-7" {
		t.Errorf("value = %v", e.Value)
	}
	if loads != 1 {
		t.Errorf("loads = %d", loads)
	}
	c.Unpin(7)
	// Hit path: no new load.
	if _, err := c.Pin(7); err != nil {
		t.Fatal(err)
	}
	c.Unpin(7)
	if loads != 1 {
		t.Errorf("loads after hit = %d", loads)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEvictionLRU(t *testing.T) {
	var loads int64
	c := New(2, countingLoader(&loads))
	pinUnpin := func(id uint64) {
		t.Helper()
		if _, err := c.Pin(id); err != nil {
			t.Fatal(err)
		}
		c.Unpin(id)
	}
	pinUnpin(1)
	pinUnpin(2)
	pinUnpin(1) // 2 becomes LRU
	pinUnpin(3) // evicts 2
	if c.Resident(2) {
		t.Error("2 should be evicted")
	}
	if !c.Resident(1) || !c.Resident(3) {
		t.Error("1 and 3 should be resident")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
	// Re-pinning 2 reloads it.
	pinUnpin(2)
	if loads != 4 {
		t.Errorf("loads = %d", loads)
	}
}

func TestPinnedEntriesNotEvicted(t *testing.T) {
	var loads int64
	c := New(1, countingLoader(&loads))
	if _, err := c.Pin(1); err != nil {
		t.Fatal(err)
	}
	// Capacity 1, entry pinned: next pin must fail, not evict.
	if _, err := c.Pin(2); err == nil {
		t.Error("pin beyond capacity with all pinned should fail")
	}
	c.Unpin(1)
	if _, err := c.Pin(2); err != nil {
		t.Errorf("pin after unpin: %v", err)
	}
}

func TestUnpinErrors(t *testing.T) {
	c := New(2, countingLoader(new(int64)))
	if err := c.Unpin(99); err == nil {
		t.Error("unpin non-resident")
	}
	c.Pin(1)
	c.Unpin(1)
	if err := c.Unpin(1); err == nil {
		t.Error("double unpin")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4, countingLoader(new(int64)))
	c.Pin(1)
	if err := c.Invalidate(1); err == nil {
		t.Error("invalidate pinned should fail")
	}
	c.Unpin(1)
	if err := c.Invalidate(1); err != nil {
		t.Fatal(err)
	}
	if c.Resident(1) {
		t.Error("still resident")
	}
	if err := c.Invalidate(42); err != nil {
		t.Error("invalidating absent should be a no-op")
	}
}

func TestLoaderError(t *testing.T) {
	c := New(2, func(id uint64) (interface{}, error) {
		return nil, fmt.Errorf("catalog corrupt")
	})
	if _, err := c.Pin(1); err == nil {
		t.Error("loader error should propagate")
	}
	if c.Len() != 0 {
		t.Error("failed load should not install an entry")
	}
}

func TestConcurrentPinUnpin(t *testing.T) {
	var loads int64
	c := New(16, countingLoader(&loads))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id := (seed*7 + uint64(i)) % 32
				e, err := c.Pin(id)
				if err != nil {
					// Transient "all pinned" is possible with 8
					// concurrent pins of 32 ids in 16 slots; retry.
					continue
				}
				if e.Value.(string) != fmt.Sprintf("trigger-%d", id) {
					t.Errorf("wrong value for %d", id)
				}
				c.Unpin(id)
			}
		}(uint64(g))
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("cache over capacity: %d", c.Len())
	}
}

func TestWorkingSetHitRatio(t *testing.T) {
	// E5's shape in miniature: when capacity >= working set, hit ratio
	// approaches 1; when capacity is half, misses grow.
	run := func(capacity int) float64 {
		var loads int64
		c := New(capacity, countingLoader(&loads))
		for round := 0; round < 50; round++ {
			for id := uint64(0); id < 20; id++ {
				if _, err := c.Pin(id); err != nil {
					t.Fatal(err)
				}
				c.Unpin(id)
			}
		}
		st := c.Stats()
		return float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	big := run(20)
	small := run(10)
	if big < 0.97 {
		t.Errorf("full-capacity hit ratio = %f", big)
	}
	if small > 0.5 {
		t.Errorf("half-capacity hit ratio = %f (LRU on cyclic scan should thrash)", small)
	}
}

type recordingObserver struct {
	mu                    sync.Mutex
	hits, misses, evicted []uint64
}

func (o *recordingObserver) CacheHit(id uint64) {
	o.mu.Lock()
	o.hits = append(o.hits, id)
	o.mu.Unlock()
}

func (o *recordingObserver) CacheMiss(id uint64) {
	o.mu.Lock()
	o.misses = append(o.misses, id)
	o.mu.Unlock()
}

func (o *recordingObserver) CacheEvict(id uint64) {
	o.mu.Lock()
	o.evicted = append(o.evicted, id)
	o.mu.Unlock()
}

func TestObserverSeesHitMissEvict(t *testing.T) {
	var loads int64
	c := New(2, countingLoader(&loads))
	obs := &recordingObserver{}
	c.SetObserver(obs)

	mustPin := func(id uint64) {
		t.Helper()
		if _, err := c.Pin(id); err != nil {
			t.Fatal(err)
		}
		if err := c.Unpin(id); err != nil {
			t.Fatal(err)
		}
	}
	mustPin(1) // miss
	mustPin(1) // hit
	mustPin(2) // miss
	mustPin(3) // miss, evicts 1 (LRU)

	if len(obs.misses) != 3 || obs.misses[0] != 1 || obs.misses[1] != 2 || obs.misses[2] != 3 {
		t.Fatalf("misses = %v", obs.misses)
	}
	if len(obs.hits) != 1 || obs.hits[0] != 1 {
		t.Fatalf("hits = %v", obs.hits)
	}
	if len(obs.evicted) != 1 || obs.evicted[0] != 1 {
		t.Fatalf("evicted = %v", obs.evicted)
	}
}
