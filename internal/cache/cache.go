// Package cache implements the trigger cache of §5.1: complete trigger
// descriptions (ID, name, syntax tree, A-TREAT network skeleton) are
// kept on disk in the trigger catalog and pinned into a bounded
// main-memory cache when a token matches one of the trigger's
// predicates — "analogous to the pin operation in a traditional buffer
// pool" (§5.4).
//
// The cache is generic over the cached description type via the Loader
// function, so the catalog layer decides what a description contains.
package cache

import (
	"container/list"
	"fmt"
	"sync"
)

// Entry is a cached trigger description.
type Entry struct {
	TriggerID uint64
	// Value is the loaded description (the catalog stores a
	// *catalog.LoadedTrigger here).
	Value interface{}

	pins  int
	lruEl *list.Element
}

// Loader fetches a trigger description from the catalog on a miss.
type Loader func(triggerID uint64) (interface{}, error)

// Observer receives per-trigger cache events for attribution and the
// structured event log. Callbacks run outside the cache lock but must
// be cheap and must not call back into the cache.
type Observer interface {
	CacheHit(triggerID uint64)
	CacheMiss(triggerID uint64)
	CacheEvict(triggerID uint64)
}

// Stats counts cache activity.
type Stats struct {
	Hits, Misses, Evictions int64
}

// Cache is a bounded pin-count LRU over trigger descriptions.
type Cache struct {
	mu       sync.Mutex
	capacity int
	loader   Loader
	entries  map[uint64]*Entry
	lru      *list.List // back = least recently used, unpinned only
	stats    Stats
	observer Observer
}

// SetObserver installs the event observer (call before concurrent use).
func (c *Cache) SetObserver(o Observer) {
	c.mu.Lock()
	c.observer = o
	c.mu.Unlock()
}

// New builds a cache holding at most capacity descriptions. The paper's
// sizing example: 4KB per description, 64MB of cache = 16,384 triggers.
func New(capacity int, loader Loader) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		loader:   loader,
		entries:  make(map[uint64]*Entry, capacity),
		lru:      list.New(),
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len reports the number of resident descriptions.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Pin fetches the trigger description, loading it on a miss, and pins
// it so it cannot be evicted until Unpin. Callers must pair every Pin
// with an Unpin.
func (c *Cache) Pin(triggerID uint64) (*Entry, error) {
	c.mu.Lock()
	obs := c.observer
	if e, ok := c.entries[triggerID]; ok {
		c.stats.Hits++
		e.pins++
		if e.lruEl != nil {
			c.lru.Remove(e.lruEl)
			e.lruEl = nil
		}
		c.mu.Unlock()
		if obs != nil {
			obs.CacheHit(triggerID)
		}
		return e, nil
	}
	c.stats.Misses++
	// Make room before loading (load happens outside the lock; a
	// placeholder reserves the slot so concurrent pins of the same
	// trigger wait via double-check below).
	var evicted []uint64
	if len(c.entries) >= c.capacity {
		victim, err := c.evictLocked()
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		evicted = append(evicted, victim)
	}
	c.mu.Unlock()
	c.notify(obs, triggerID, evicted)

	val, err := c.loader(triggerID)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	// Double-check: a concurrent loader may have installed it.
	if e, ok := c.entries[triggerID]; ok {
		e.pins++
		if e.lruEl != nil {
			c.lru.Remove(e.lruEl)
			e.lruEl = nil
		}
		c.mu.Unlock()
		return e, nil
	}
	evicted = evicted[:0]
	if len(c.entries) >= c.capacity {
		victim, err := c.evictLocked()
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		evicted = append(evicted, victim)
	}
	e := &Entry{TriggerID: triggerID, Value: val, pins: 1}
	c.entries[triggerID] = e
	c.mu.Unlock()
	if obs != nil {
		for _, v := range evicted {
			obs.CacheEvict(v)
		}
	}
	return e, nil
}

// notify delivers the miss and any eviction events outside the lock.
func (c *Cache) notify(obs Observer, missed uint64, evicted []uint64) {
	if obs == nil {
		return
	}
	obs.CacheMiss(missed)
	for _, v := range evicted {
		obs.CacheEvict(v)
	}
}

// Unpin releases one pin; at zero pins the entry becomes evictable.
func (c *Cache) Unpin(triggerID uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[triggerID]
	if !ok {
		return fmt.Errorf("cache: unpin of non-resident trigger %d", triggerID)
	}
	if e.pins <= 0 {
		return fmt.Errorf("cache: unpin of unpinned trigger %d", triggerID)
	}
	e.pins--
	if e.pins == 0 {
		e.lruEl = c.lru.PushFront(triggerID)
	}
	return nil
}

// Invalidate drops a trigger from the cache (after drop trigger or
// enable/disable). Pinned entries cannot be invalidated.
func (c *Cache) Invalidate(triggerID uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[triggerID]
	if !ok {
		return nil
	}
	if e.pins > 0 {
		return fmt.Errorf("cache: trigger %d is pinned (%d)", triggerID, e.pins)
	}
	if e.lruEl != nil {
		c.lru.Remove(e.lruEl)
	}
	delete(c.entries, triggerID)
	return nil
}

func (c *Cache) evictLocked() (uint64, error) {
	el := c.lru.Back()
	if el == nil {
		return 0, fmt.Errorf("cache: all %d cached triggers are pinned", c.capacity)
	}
	victim := el.Value.(uint64)
	c.lru.Remove(el)
	delete(c.entries, victim)
	c.stats.Evictions++
	return victim, nil
}

// Resident reports whether the trigger is currently cached (tests).
func (c *Cache) Resident(triggerID uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[triggerID]
	return ok
}
