package cache

// Sharded wraps N independent caches keyed by trigger ID so concurrent
// drivers pinning different triggers do not contend on one mutex. The
// capacity is divided evenly across shards, which preserves the global
// bound while making the LRU per-shard (a standard approximation).
type Sharded struct {
	shards []*Cache
}

// shardCount is a power of two so the modulo is a mask.
const shardCount = 16

// NewSharded builds a sharded cache with the given total capacity.
func NewSharded(capacity int, loader Loader) *Sharded {
	per := capacity / shardCount
	if per < 1 {
		per = 1
	}
	s := &Sharded{shards: make([]*Cache, shardCount)}
	for i := range s.shards {
		s.shards[i] = New(per, loader)
	}
	return s
}

// SetObserver installs the event observer on every shard.
func (s *Sharded) SetObserver(o Observer) {
	for _, c := range s.shards {
		c.SetObserver(o)
	}
}

func (s *Sharded) shard(id uint64) *Cache {
	return s.shards[id&(shardCount-1)]
}

// Pin pins a trigger description, loading on miss.
func (s *Sharded) Pin(triggerID uint64) (*Entry, error) {
	return s.shard(triggerID).Pin(triggerID)
}

// Unpin releases one pin.
func (s *Sharded) Unpin(triggerID uint64) error {
	return s.shard(triggerID).Unpin(triggerID)
}

// Invalidate drops an unpinned entry.
func (s *Sharded) Invalidate(triggerID uint64) error {
	return s.shard(triggerID).Invalidate(triggerID)
}

// Resident reports whether the trigger is cached.
func (s *Sharded) Resident(triggerID uint64) bool {
	return s.shard(triggerID).Resident(triggerID)
}

// Len sums resident descriptions across shards.
func (s *Sharded) Len() int {
	n := 0
	for _, c := range s.shards {
		n += c.Len()
	}
	return n
}

// Stats sums counters across shards.
func (s *Sharded) Stats() Stats {
	var out Stats
	for _, c := range s.shards {
		st := c.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
	}
	return out
}
