// Package workload generates the synthetic trigger populations and
// update streams used by the experiment harness (EXPERIMENTS.md). The
// generators encode the paper's core premise: "if a large number of
// triggers are created, it is almost certainly the case that many of
// them have almost the same format" — so trigger populations are drawn
// from a small pool of expression signatures with many distinct
// constants.
package workload

import (
	"fmt"
	"math/rand"

	"triggerman/internal/datasource"
	"triggerman/internal/expr"
	"triggerman/internal/types"
)

// EmpSchema is the employee schema used by most experiments.
var EmpSchema = types.MustSchema(
	types.Column{Name: "name", Kind: types.KindVarchar},
	types.Column{Name: "salary", Kind: types.KindInt},
	types.Column{Name: "dept", Kind: types.KindVarchar},
)

// EmpRow builds an employee tuple.
func EmpRow(name string, salary int64, dept string) types.Tuple {
	return types.Tuple{types.NewString(name), types.NewInt(salary), types.NewString(dept)}
}

// EqualityTriggers returns n create-trigger statements of the single
// signature "emp.name = <const>", with constants cycling over
// distinctConsts values. Trigger i raises event E<i>.
func EqualityTriggers(n, distinctConsts int) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fmt.Sprintf(
			"create trigger eq%07d from emp when emp.name = 'user%07d' do raise event Eq(emp.salary)",
			i, i%distinctConsts)
	}
	return out
}

// RangeTriggers returns n statements of the signature
// "emp.salary > <const>" with constants spread over [0, maxConst).
func RangeTriggers(n int, maxConst int64) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		c := int64(i) * maxConst / int64(n)
		out[i] = fmt.Sprintf(
			"create trigger rg%07d from emp when emp.salary > %d do raise event Rg(emp.name)",
			i, c)
	}
	return out
}

// SameConditionTriggers returns n statements sharing one condition and
// constant (Figure 5's shape: same condition, different actions).
func SameConditionTriggers(n int) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fmt.Sprintf(
			"create trigger same%07d from emp when emp.dept = 'PENDING' do raise event Same%07d()",
			i, i)
	}
	return out
}

// MixedSignatureTriggers returns n statements drawn round-robin from
// sigPool distinct signatures (equality and range shapes over the three
// emp columns), each instantiated with a fresh constant. This models
// the paper's claim that even millions of triggers exhibit only a few
// hundred signatures.
func MixedSignatureTriggers(n, sigPool int) []string {
	// Range thresholds spread over ~[0, 2n*scale] so a token stream with
	// salaries over the same domain matches a selective fraction of the
	// range predicates instead of nearly all of them.
	shapes := []func(i, c int) string{
		func(i, c int) string { return fmt.Sprintf("emp.name = 'u%07d'", c) },
		func(i, c int) string { return fmt.Sprintf("emp.salary > %d", 900_000+c*17%100_000) },
		func(i, c int) string { return fmt.Sprintf("emp.dept = 'd%07d'", c) },
		func(i, c int) string { return fmt.Sprintf("emp.salary < %d", c*13%100_000) },
		func(i, c int) string { return fmt.Sprintf("emp.name = 'u%07d' and emp.salary > %d", c, c) },
		func(i, c int) string { return fmt.Sprintf("emp.dept = 'd%07d' and emp.salary < %d", c, c) },
		func(i, c int) string { return fmt.Sprintf("emp.salary >= %d", 950_000+c*7%50_000) },
		func(i, c int) string { return fmt.Sprintf("emp.name = 'u%07d' and emp.dept = 'd%07d'", c, c%97) },
	}
	if sigPool < 1 {
		sigPool = 1
	}
	if sigPool > len(shapes) {
		// Extend the pool with distinct-column-constant composites:
		// each extra slot compares salary against a distinct multiple.
		for k := len(shapes); k < sigPool; k++ {
			mult := int64(k)
			shapes = append(shapes, func(i, c int) string {
				return fmt.Sprintf("emp.salary * %d > %d", mult, c)
			})
		}
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		shape := shapes[i%sigPool]
		out[i] = fmt.Sprintf(
			"create trigger mx%07d from emp when %s do raise event Mx(emp.salary)",
			i, shape(i, i))
	}
	return out
}

// InsertTokens returns count insert descriptors over the emp schema with
// names drawn uniformly from nameSpace and salaries from [0, maxSalary).
func InsertTokens(rng *rand.Rand, count, nameSpace int, maxSalary int64, sourceID int32) []datasource.Token {
	out := make([]datasource.Token, count)
	for i := range out {
		out[i] = datasource.Token{
			SourceID: sourceID,
			Op:       datasource.OpInsert,
			New: EmpRow(
				fmt.Sprintf("user%07d", rng.Intn(nameSpace)),
				rng.Int63n(maxSalary),
				fmt.Sprintf("d%07d", rng.Intn(nameSpace))),
		}
	}
	return out
}

// DefaultZipf is the zipf exponent the tmbench harness has always used
// for its skewed draws (cache skew, hot-key sweeps); the -zipf flag
// defaults to it.
const DefaultZipf = 1.3

// DefaultZipfGoBench is the exponent the go-test benchmark harness
// (BenchmarkE5 in bench_test.go) has always used for its cache-skew
// draw.
const DefaultZipfGoBench = 1.07

// ZipfIDs returns count trigger IDs in [1, n] drawn from a Zipf
// distribution with parameter s (skew grows with s); used by the
// trigger-cache experiment.
func ZipfIDs(rng *rand.Rand, count, n int, s float64) []uint64 {
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	out := make([]uint64, count)
	for i := range out {
		out[i] = z.Uint64() + 1
	}
	return out
}

// ContendedIDs returns count IDs in [1, n] where an expected fraction f
// of the draws hit the single contended key (ID 1 — the "viral
// entity") and the remainder spread over the background domain
// [2, n]: zipf with exponent s when s > 1, uniform otherwise. The
// background never lands on the contended key, so the hot key's
// observed fraction equals f up to sampling noise — the property the
// skew sweep's axes depend on. f is clamped to [0, 1].
func ContendedIDs(rng *rand.Rand, count, n int, f, s float64) []uint64 {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	if n < 2 {
		f = 1 // degenerate domain: only the contended key exists
	}
	var z *rand.Zipf
	if s > 1 && n > 2 {
		z = rand.NewZipf(rng, s, 1, uint64(n-2))
	}
	out := make([]uint64, count)
	for i := range out {
		if rng.Float64() < f {
			out[i] = 1
			continue
		}
		if z != nil {
			out[i] = z.Uint64() + 2
		} else {
			out[i] = uint64(rng.Intn(n-1)) + 2
		}
	}
	return out
}

// ContendedTokens returns count insert descriptors over the emp schema
// whose names follow the ContendedIDs distribution: an expected
// fraction f carries the one viral name (user0000000), the rest spread
// over nameSpace names — zipf-s when s > 1, uniform otherwise. This is
// the skew experiment's update stream: every hot token probes the same
// constant-set entry, so the per-centry counters behind it are exactly
// the cache lines the phase-reconciled slices protect.
func ContendedTokens(rng *rand.Rand, count, nameSpace int, f, s float64, maxSalary int64, sourceID int32) []datasource.Token {
	ids := ContendedIDs(rng, count, nameSpace, f, s)
	out := make([]datasource.Token, count)
	for i := range out {
		out[i] = datasource.Token{
			SourceID: sourceID,
			Op:       datasource.OpInsert,
			New: EmpRow(
				fmt.Sprintf("user%07d", ids[i]-1),
				rng.Int63n(maxSalary),
				fmt.Sprintf("d%07d", rng.Intn(nameSpace))),
		}
	}
	return out
}

// NaivePredicate is one entry of the naive (unindexed) trigger matcher:
// the strategy of the ECA systems in the paper's §8, where "the cost
// ... is always at least linear in the number of triggers" because
// every applicable trigger's condition is tested per event.
type NaivePredicate struct {
	TriggerID uint64
	Pred      expr.Node // bound against the source schema (VarIdx 0)
}

// NaiveMatcher tests every predicate against every token — the baseline
// for experiment E1.
type NaiveMatcher struct {
	Preds []NaivePredicate
}

// Add appends a predicate.
func (m *NaiveMatcher) Add(triggerID uint64, pred expr.Node) {
	m.Preds = append(m.Preds, NaivePredicate{TriggerID: triggerID, Pred: pred})
}

// Match calls fn for every trigger whose predicate accepts the token.
func (m *NaiveMatcher) Match(tok datasource.Token, fn func(triggerID uint64) bool) error {
	env := expr.SingleEnv{New: tok.Effective(), Old: tok.Old}
	for _, p := range m.Preds {
		ok, err := expr.EvalPredicate(p.Pred, env)
		if err != nil {
			return err
		}
		if ok == expr.True {
			if !fn(p.TriggerID) {
				return nil
			}
		}
	}
	return nil
}

// BindEmp binds a predicate tree against the emp schema (helper for
// experiment setup).
func BindEmp(n expr.Node) error {
	b := &expr.Binder{
		VarIndex:   map[string]int{"emp": 0},
		DefaultVar: 0,
		ColumnIndex: func(_ int, col string) int {
			return EmpSchema.ColumnIndex(col)
		},
	}
	return b.Bind(n)
}
