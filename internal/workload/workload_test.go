package workload

import (
	"math/rand"
	"strings"
	"testing"

	"triggerman/internal/datasource"
	"triggerman/internal/expr"
	"triggerman/internal/parser"
	"triggerman/internal/types"
)

func parseAll(t *testing.T, stmts []string) {
	t.Helper()
	for _, s := range stmts {
		st, err := parser.Parse(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if _, ok := st.(*parser.CreateTrigger); !ok {
			t.Fatalf("%q parsed as %T", s, st)
		}
	}
}

func TestGeneratorsParse(t *testing.T) {
	parseAll(t, EqualityTriggers(50, 10))
	parseAll(t, RangeTriggers(50, 100000))
	parseAll(t, SameConditionTriggers(50))
	parseAll(t, MixedSignatureTriggers(100, 8))
	parseAll(t, MixedSignatureTriggers(30, 12)) // extended pool
	parseAll(t, MixedSignatureTriggers(5, 0))   // clamps to 1
}

func TestGeneratorNamesUnique(t *testing.T) {
	stmts := MixedSignatureTriggers(200, 8)
	seen := map[string]bool{}
	for _, s := range stmts {
		name := strings.Fields(s)[2]
		if seen[name] {
			t.Fatalf("duplicate trigger name %q", name)
		}
		seen[name] = true
	}
}

func TestMixedSignaturePoolSize(t *testing.T) {
	// Binding + signature extraction of the pool yields exactly sigPool
	// distinct canonical signatures.
	for _, pool := range []int{1, 4, 8} {
		stmts := MixedSignatureTriggers(64, pool)
		sigs := map[string]bool{}
		for _, s := range stmts {
			st, err := parser.Parse(s)
			if err != nil {
				t.Fatal(err)
			}
			ct := st.(*parser.CreateTrigger)
			n := expr.Clone(ct.When)
			if err := BindEmp(n); err != nil {
				t.Fatalf("%q: %v", s, err)
			}
			cnf, err := expr.ToCNF(n)
			if err != nil {
				t.Fatal(err)
			}
			sig, _, err := expr.ExtractSignature(cnf)
			if err != nil {
				t.Fatal(err)
			}
			sigs[sig.Canonical()] = true
		}
		if len(sigs) != pool {
			t.Errorf("pool %d produced %d distinct signatures", pool, len(sigs))
		}
	}
}

func TestInsertTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	toks := InsertTokens(rng, 100, 50, 1000, 7)
	if len(toks) != 100 {
		t.Fatal("count")
	}
	for _, tok := range toks {
		if tok.SourceID != 7 || tok.Op != datasource.OpInsert {
			t.Fatalf("token = %+v", tok)
		}
		if tok.New.Get(1).Int() >= 1000 {
			t.Fatal("salary out of range")
		}
	}
}

func TestZipfIDsSkewAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ids := ZipfIDs(rng, 20000, 100, 1.5)
	counts := map[uint64]int{}
	for _, id := range ids {
		if id < 1 || id > 100 {
			t.Fatalf("id %d out of range", id)
		}
		counts[id]++
	}
	if counts[1] <= counts[50]*2 {
		t.Errorf("no skew: counts[1]=%d counts[50]=%d", counts[1], counts[50])
	}
}

func TestNaiveMatcher(t *testing.T) {
	var nm NaiveMatcher
	for i := int64(0); i < 10; i++ {
		pred := expr.Cmp(expr.OpGt, expr.Col("emp", "salary"), expr.Int(i*100))
		if err := BindEmp(pred); err != nil {
			t.Fatal(err)
		}
		nm.Add(uint64(i+1), pred)
	}
	tok := datasource.Token{SourceID: 1, Op: datasource.OpInsert, New: EmpRow("x", 450, "d")}
	var hits []uint64
	if err := nm.Match(tok, func(id uint64) bool {
		hits = append(hits, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 { // thresholds 0..400
		t.Errorf("hits = %v", hits)
	}
	// Early stop.
	n := 0
	nm.Match(tok, func(uint64) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop = %d", n)
	}
}

func TestEmpRowShape(t *testing.T) {
	r := EmpRow("a", 5, "d")
	if len(r) != EmpSchema.Arity() {
		t.Fatal("arity")
	}
	if r.Get(0).Kind() != types.KindVarchar || r.Get(1).Kind() != types.KindInt {
		t.Fatal("kinds")
	}
}

// TestContendedIDsDistribution pins the generator's contract: the hot
// key's observed fraction stays within ±2 points of the requested f,
// for both uniform and zipf backgrounds, and every ID stays in [1, n].
func TestContendedIDsDistribution(t *testing.T) {
	const draws = 200000
	for _, tc := range []struct {
		name string
		f, s float64
	}{
		{"half-uniform", 0.5, 0},
		{"half-zipf", 0.5, DefaultZipf},
		{"tenth-uniform", 0.1, 0},
		{"ninety-zipf", 0.9, 1.07},
		{"none", 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			ids := ContendedIDs(rng, draws, 1000, tc.f, tc.s)
			hot := 0
			for _, id := range ids {
				if id < 1 || id > 1000 {
					t.Fatalf("id %d out of [1, 1000]", id)
				}
				if id == 1 {
					hot++
				}
			}
			got := float64(hot) / draws
			// The background draws over [2, n], so the hot key's observed
			// fraction is f up to sampling noise — pinned at ±2 points.
			if got < tc.f-0.02 || got > tc.f+0.02 {
				t.Fatalf("hot fraction = %.4f, want %.2f ±2%%", got, tc.f)
			}
		})
	}
}

// TestContendedTokensShape: the token stream carries the same hot
// fraction in its name column and stays schema-valid.
func TestContendedTokensShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	toks := ContendedTokens(rng, 50000, 500, 0.5, 0, 1000, 3)
	hot := 0
	for _, tok := range toks {
		if tok.SourceID != 3 || tok.Op != datasource.OpInsert || len(tok.New) != EmpSchema.Arity() {
			t.Fatalf("malformed token %+v", tok)
		}
		if tok.New.Get(0).Str() == "user0000000" {
			hot++
		}
	}
	got := float64(hot) / 50000
	if got < 0.48 || got > 0.525 {
		t.Fatalf("hot-name fraction = %.4f, want 0.50 ±2%%", got)
	}
}
