// Package predindex implements the paper's selection predicate index
// (Figures 3–5): a root hash table on data source ID leading to
// per-source expression-signature lists, each signature owning a
// constant set keyed by the constants extracted from trigger predicates,
// each constant linked to a triggerID set of expression instances. The
// structure is fully normalized (§5.3): a constant shared by N triggers
// is tested once, not N times.
//
// Each signature's constant set can be organized four ways (§5.2):
// main-memory list, main-memory index, non-indexed database table, or
// indexed database table. Small equivalence classes use the low-overhead
// structures; large ones must use tables. An adaptive policy switches
// organization as the class grows.
package predindex

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"triggerman/internal/datasource"
	"triggerman/internal/expr"
	"triggerman/internal/metrics"
	"triggerman/internal/minisql"
	"triggerman/internal/phasecounter"
	"triggerman/internal/profile"
	"triggerman/internal/types"
)

// Organization selects a constant-set storage strategy (§5.2).
type Organization uint8

const (
	// OrgAuto lets the policy pick and switch organizations by size.
	OrgAuto Organization = iota
	// OrgMemoryList is strategy 1: an unordered main-memory list.
	OrgMemoryList
	// OrgMemoryIndex is strategy 2: a main-memory hash or interval index.
	OrgMemoryIndex
	// OrgTable is strategy 3: a non-indexed database table.
	OrgTable
	// OrgIndexedTable is strategy 4: a database table with a clustered
	// index on [const1..constK].
	OrgIndexedTable
)

// String names the organization.
func (o Organization) String() string {
	switch o {
	case OrgAuto:
		return "auto"
	case OrgMemoryList:
		return "mm-list"
	case OrgMemoryIndex:
		return "mm-index"
	case OrgTable:
		return "table"
	case OrgIndexedTable:
		return "indexed-table"
	default:
		return fmt.Sprintf("org(%d)", uint8(o))
	}
}

// Policy holds the adaptive-organization thresholds (the cost model of
// [Hans98b] reduces to size cutoffs between the strategies).
type Policy struct {
	// ListMax is the largest class kept as a main-memory list.
	ListMax int
	// MemMax is the largest class kept in a main-memory index; beyond
	// it the class moves to an indexed database table.
	MemMax int
}

// DefaultPolicy matches the paper's guidance: lists for tiny classes,
// memory indexes for the common case, tables for the huge tail.
var DefaultPolicy = Policy{ListMax: 16, MemMax: 65536}

// Ref is one element of a triggerID set: an expression instance of some
// trigger, with the A-TREAT node to forward matched tokens to and the
// non-indexable rest of its predicate.
type Ref struct {
	ExprID    uint64
	TriggerID uint64
	// NextNode identifies the discrimination-network node
	// (nextNetworkNode in the paper's const_tableN schema); for network
	// triggers it is the tuple-variable index.
	NextNode int32
	// Rest is the instantiated, bound non-indexable part E_NI; empty
	// means the whole predicate was indexable.
	Rest expr.CNF
	// FireMask is the event condition under which a match may fire the
	// trigger (the signature's own mask may be broader — AllOps — for
	// alpha-memory maintenance of multi-variable triggers).
	FireMask EventMask
	// MultiVar marks refs belonging to triggers with more than one tuple
	// variable (their alpha memories need maintenance on every event).
	MultiVar bool
	// Gator marks refs whose trigger runs a Gator network; maintenance
	// and firing both happen through the network's incremental token
	// protocol rather than the TREAT maintain-then-enumerate split.
	Gator bool
	// Aggregate marks refs of group-by/having triggers: matched tokens
	// feed incremental aggregate state, and firing happens on having
	// transitions rather than per match.
	Aggregate bool
}

// Match is a successful selection-predicate match for a token.
type Match struct {
	Ref
	// SourceID echoes the probed data source.
	SourceID int32
}

// Stats counts index activity for the experiments. Counters are
// updated atomically; a snapshot is returned by Index.Stats.
type Stats struct {
	Tokens        int64 // tokens probed
	SigProbes     int64 // signature entries consulted
	ConstCompares int64 // constant comparisons / index probes
	RestTests     int64 // rest-of-predicate evaluations
	Matches       int64 // refs matched
}

// EventMask matches tokens by operation and, for update events,
// by updated columns.
type EventMask struct {
	Op datasource.Op
	// AnyOp, when set, means insert-or-update (the implicit event, §5).
	AnyOp bool
	// AllOps accepts every operation. Multi-variable triggers register
	// their selection predicates under AllOps so alpha memories stay
	// maintained on every kind of update; the per-variable fire mask
	// lives on the Ref.
	AllOps bool
	// Columns restricts update events; empty means any column.
	Columns []int
}

// Matches reports whether the mask accepts the token.
func (m EventMask) Matches(t datasource.Token) bool {
	switch {
	case m.AllOps:
		return true
	case m.AnyOp:
		if t.Op == datasource.OpDelete {
			return false
		}
	default:
		if t.Op != m.Op {
			return false
		}
	}
	if len(m.Columns) > 0 && t.Op == datasource.OpUpdate {
		updated := t.UpdatedColumns()
		for _, want := range m.Columns {
			for _, got := range updated {
				if want == got {
					return true
				}
			}
		}
		return false
	}
	return true
}

// key renders the mask's contribution to signature identity.
func (m EventMask) key() string {
	cols := make([]string, len(m.Columns))
	for i, c := range m.Columns {
		cols[i] = fmt.Sprint(c)
	}
	sort.Strings(cols)
	switch {
	case m.AllOps:
		return "all|" + strings.Join(cols, ",")
	case m.AnyOp:
		return "any|" + strings.Join(cols, ",")
	default:
		return m.Op.String() + "|" + strings.Join(cols, ",")
	}
}

// Encode serializes the mask for constant-table storage.
func (m EventMask) Encode() string {
	cols := make([]string, len(m.Columns))
	for i, c := range m.Columns {
		cols[i] = fmt.Sprint(c)
	}
	op := m.Op.String()
	switch {
	case m.AllOps:
		op = "all"
	case m.AnyOp:
		op = "any"
	}
	return op + "|" + strings.Join(cols, ",")
}

// DecodeEventMask parses an Encode result.
func DecodeEventMask(s string) (EventMask, error) {
	parts := strings.SplitN(s, "|", 2)
	if len(parts) != 2 {
		return EventMask{}, fmt.Errorf("predindex: bad event mask %q", s)
	}
	var m EventMask
	switch parts[0] {
	case "all":
		m.AllOps = true
	case "any":
		m.AnyOp = true
	case "insert":
		m.Op = datasource.OpInsert
	case "delete":
		m.Op = datasource.OpDelete
	case "update":
		m.Op = datasource.OpUpdate
	default:
		return EventMask{}, fmt.Errorf("predindex: bad event mask op %q", parts[0])
	}
	if parts[1] != "" {
		for _, cs := range strings.Split(parts[1], ",") {
			var c int
			if _, err := fmt.Sscanf(cs, "%d", &c); err != nil {
				return EventMask{}, fmt.Errorf("predindex: bad event mask column %q", cs)
			}
			m.Columns = append(m.Columns, c)
		}
	}
	return m, nil
}

// Index is the root predicate index.
//
// The match path is lock-free: the root source table and each source's
// signature list are published through atomic pointers, so MatchToken
// never takes the index-wide or per-source locks. Writers (AddSource,
// AddPredicate interning) clone the structure they change under a
// mutex and atomically swap the new copy in — index maintenance pays
// the copy, the probe path pays nothing.
type Index struct {
	policy Policy
	db     *minisql.DB // backing store for table organizations
	// forceOrg, when not OrgAuto, pins every new signature to one
	// organization (benchmarks use this).
	forceOrg Organization

	// sources is the copy-on-write root: source ID → per-source shard.
	// srcMu serializes the clone-and-swap in AddSource; readers load
	// the pointer and never block.
	srcMu   sync.Mutex
	sources atomic.Pointer[map[int32]*sourceShard]
	nextSig atomic.Uint64

	// dom is the phase-reconciliation domain: every hot counter in the
	// index (index-wide tallies, per-signature probe/match counters,
	// per-centry stats) slices per driver slot through it when
	// contended, and the embedding system's epoch tick folds the slices
	// back via Reconcile.
	dom *phasecounter.Domain

	// stats are the index-wide tallies. They are touched by every
	// driver on every token, so they are pre-split into per-slot
	// slices at construction — guaranteed-contended counters never run
	// a plain phase.
	stats struct {
		tokens        phasecounter.Counter
		sigProbes     phasecounter.Counter
		constCompares phasecounter.Counter
		restTests     phasecounter.Counter
		matches       phasecounter.Counter
	}

	// Registry-backed instruments (nil without WithMetrics): per-
	// organization probe counters indexed by Organization, and a probe
	// latency histogram.
	orgProbes [5]*metrics.Counter
	matchHist *metrics.Histogram

	// prof, when set, attributes candidate probes and matches to
	// individual trigger IDs (nil = no attribution; all Profiler
	// methods are nil-safe, the branch here just avoids the calls
	// entirely on the hot path).
	prof *profile.Profiler
	// costModel prices organizations for reorg events and snapshots
	// (nil = DefaultCostModel).
	costModel *CostModel
	// reorgHook observes constant-set organization transitions.
	reorgHook func(ReorgEvent)
}

// ReorgEvent describes one constant-set organization transition
// decided by the cost model's thresholds.
type ReorgEvent struct {
	SigID  uint64
	Source int32
	// Expr is the signature's canonical generalized expression.
	Expr string
	// From and To are the old and new organizations.
	From, To Organization
	// Size is the equivalence-class size that crossed a threshold.
	Size int
	// FromCostNs and ToCostNs are the cost model's per-probe estimates
	// for the class at this size under each organization.
	FromCostNs, ToCostNs float64
	// Probes is the signature's probe counter as of the last reconcile
	// epoch — the reading reorganization decisions weight cost against.
	// Stale by at most one epoch (see CostModel's staleness contract);
	// never torn, never mid-fold.
	Probes int64
}

// sourceShard is one data source's slice of the index. The signature
// list probed by MatchToken is copy-on-write: writers append to a clone
// under mu and swap the pointer; the interning map is only touched
// under mu and never read on the match path.
type sourceShard struct {
	schema *types.Schema

	mu sync.Mutex
	// sigs keys on event-mask + canonical generalized expression
	// (writer-side interning only).
	sigs map[string]*SignatureEntry
	// list is the published probe order; loaded without locks.
	list atomic.Pointer[[]*SignatureEntry]
}

// signatures loads the published signature list (lock-free).
func (s *sourceShard) signatures() []*SignatureEntry {
	if p := s.list.Load(); p != nil {
		return *p
	}
	return nil
}

// SignatureEntry is one unique expression signature for a data source,
// with its constant set.
type SignatureEntry struct {
	ID     uint64
	Source int32
	Mask   EventMask
	Sig    *expr.Signature
	// schema is the owning source's schema, carried here so constant-set
	// migrations never reach back into the root structure.
	schema *types.Schema

	mu         sync.RWMutex
	set        constantSet
	org        Organization
	partitions int
	size       int // expression instances stored

	// Lock-free introspection counters: tokens consulted against this
	// signature and refs matched through it. Phase-reconciled: a
	// signature hammered from many drivers splits them into per-slot
	// slices (see internal/phasecounter); ProbeCount/MatchCount stay
	// exact either way.
	cProbes  phasecounter.Counter
	cMatches phasecounter.Counter
	// dom backlinks to the owning index's reconcile domain so counter
	// updates can promote without reaching through the root.
	dom *phasecounter.Domain
}

// Option configures an Index.
type Option func(*Index)

// WithPolicy overrides the adaptive thresholds.
func WithPolicy(p Policy) Option { return func(ix *Index) { ix.policy = p } }

// WithDB supplies the database used by table organizations. Without it,
// classes stay in memory regardless of size.
func WithDB(db *minisql.DB) Option { return func(ix *Index) { ix.db = db } }

// WithForcedOrganization pins all constant sets to one strategy.
func WithForcedOrganization(o Organization) Option {
	return func(ix *Index) { ix.forceOrg = o }
}

// WithProfile attributes candidate probes and matches to trigger IDs
// through the profiler's sketch.
func WithProfile(p *profile.Profiler) Option {
	return func(ix *Index) { ix.prof = p }
}

// WithReorgHook installs fn, called after every constant-set
// organization migration. fn runs under the signature entry's lock and
// must not call back into the index.
func WithReorgHook(fn func(ReorgEvent)) Option {
	return func(ix *Index) { ix.reorgHook = fn }
}

// WithSlots sets the slice geometry for phase-reconciled counters to
// the driver pool's slot count, so a contended key gets exactly one
// slice per worker. Without it the geometry defaults to GOMAXPROCS —
// correct but potentially wider than the pool.
func WithSlots(n int) Option {
	return func(ix *Index) { ix.dom = phasecounter.NewDomain(n) }
}

// WithMetrics registers the index's instruments with reg: a probe
// counter per constant-set organization (which strategy actually served
// each signature lookup) and a token match-latency histogram.
func WithMetrics(reg *metrics.Registry) Option {
	return func(ix *Index) {
		for o := OrgAuto; o <= OrgIndexedTable; o++ {
			ix.orgProbes[o] = reg.Counter("tman_index_org_probes_total",
				"signature probes by constant-set organization", metrics.L("org", o.String()))
		}
		ix.matchHist = reg.Histogram("tman_index_match_duration_seconds",
			"predicate index probe time per token", nil)
	}
}

// New builds an empty predicate index.
func New(opts ...Option) *Index {
	ix := &Index{policy: DefaultPolicy}
	empty := make(map[int32]*sourceShard)
	ix.sources.Store(&empty)
	for _, o := range opts {
		o(ix)
	}
	if ix.dom == nil {
		ix.dom = phasecounter.NewDomain(runtime.GOMAXPROCS(0))
	}
	// The index-wide tallies are touched by every driver on every
	// token — guaranteed contention, so split them up front rather than
	// waiting for the writer-switch probe to notice.
	ix.stats.tokens.Split(ix.dom)
	ix.stats.sigProbes.Split(ix.dom)
	ix.stats.constCompares.Split(ix.dom)
	ix.stats.restTests.Split(ix.dom)
	ix.stats.matches.Split(ix.dom)
	return ix
}

// Reconcile runs one phase-reconciliation epoch: every sliced counter
// in the index (index-wide tallies, per-signature and per-centry
// stats) folds its per-driver slices into its base cell, refreshing
// the reconciled readings that reorganization decisions and snapshots
// consume. The embedding system ticks this on its epoch timer;
// Stats(), ProbeCount() and MatchCount() are exact without it.
func (ix *Index) Reconcile() { ix.dom.Reconcile() }

// Contention snapshots the index's phase-reconciliation domain: how
// many counters are sliced, promote/demote totals, and reconcile epoch
// recency. /indexz exposes it for the viral-entity runbook.
func (ix *Index) Contention() phasecounter.DomainStats { return ix.dom.Stats() }

// shard loads the current root map and looks up one source (lock-free).
func (ix *Index) shard(source int32) (*sourceShard, bool) {
	m := *ix.sources.Load()
	s, ok := m[source]
	return s, ok
}

// Stats returns a snapshot of the index counters. Exact: sliced
// counters sum their live per-driver slices.
func (ix *Index) Stats() Stats {
	return Stats{
		Tokens:        ix.stats.tokens.Value(),
		SigProbes:     ix.stats.sigProbes.Value(),
		ConstCompares: ix.stats.constCompares.Value(),
		RestTests:     ix.stats.restTests.Value(),
		Matches:       ix.stats.matches.Value(),
	}
}

// AddSource registers a data source's schema (required before adding
// predicates or probing tokens for it). The root map is copy-on-write:
// concurrent MatchToken calls keep probing the old map until the swap.
func (ix *Index) AddSource(id int32, schema *types.Schema) {
	ix.srcMu.Lock()
	defer ix.srcMu.Unlock()
	old := *ix.sources.Load()
	if _, ok := old[id]; ok {
		return
	}
	next := make(map[int32]*sourceShard, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = &sourceShard{schema: schema, sigs: make(map[string]*SignatureEntry)}
	ix.sources.Store(&next)
}

// Signatures returns the signature entries for a source (tests and the
// console's dump command).
func (ix *Index) Signatures(source int32) []*SignatureEntry {
	si, ok := ix.shard(source)
	if !ok {
		return nil
	}
	sigs := si.signatures()
	out := make([]*SignatureEntry, len(sigs))
	copy(out, sigs)
	return out
}

// SignatureCount reports the number of distinct signatures on a source.
func (ix *Index) SignatureCount(source int32) int {
	si, ok := ix.shard(source)
	if !ok {
		return 0
	}
	return len(si.signatures())
}

// AddPredicate registers one selection predicate instance: the
// signature is interned (creating its constant set on first sight, per
// §5.1 step 5) and the instance's constants and ref are added to the
// equivalence class.
func (ix *Index) AddPredicate(source int32, mask EventMask, sig *expr.Signature, consts []types.Value, ref Ref) (*SignatureEntry, error) {
	si, ok := ix.shard(source)
	if !ok {
		return nil, fmt.Errorf("predindex: unknown data source %d", source)
	}
	key := mask.key() + "\x00" + sig.Canonical()
	si.mu.Lock()
	entry, seen := si.sigs[key]
	if !seen {
		entry = &SignatureEntry{
			ID:         ix.nextSig.Add(1),
			Source:     source,
			Mask:       mask,
			Sig:        sig,
			schema:     si.schema,
			partitions: 1,
			dom:        ix.dom,
		}
		org := ix.forceOrg
		if org == OrgAuto {
			org = OrgMemoryList
		}
		set, err := ix.newSet(entry, org)
		if err != nil {
			si.mu.Unlock()
			return nil, err
		}
		entry.set = set
		entry.org = org
		si.sigs[key] = entry
		// Publish the extended list as a fresh copy: in-flight probes
		// keep walking the old slice, new probes see the new entry.
		old := si.signatures()
		next := make([]*SignatureEntry, len(old), len(old)+1)
		copy(next, old)
		next = append(next, entry)
		si.list.Store(&next)
	}
	si.mu.Unlock()

	entry.mu.Lock()
	defer entry.mu.Unlock()
	if err := entry.set.add(consts, ref); err != nil {
		return nil, err
	}
	entry.size++
	return entry, ix.maybeReorganize(entry)
}

// RemovePredicate removes one expression instance from its class.
func (ix *Index) RemovePredicate(entry *SignatureEntry, consts []types.Value, exprID uint64) error {
	entry.mu.Lock()
	defer entry.mu.Unlock()
	removed, err := entry.set.remove(consts, exprID)
	if err != nil {
		return err
	}
	if !removed {
		return fmt.Errorf("predindex: expression %d not found in signature %d", exprID, entry.ID)
	}
	entry.size--
	return nil
}

// Organization reports the entry's current constant-set strategy.
func (e *SignatureEntry) Organization() Organization {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.org
}

// Size reports the number of expression instances in the class.
func (e *SignatureEntry) Size() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.size
}

// SetPartitions splits every triggerID set of this signature into n
// round-robin partitions (Figure 5), enabling condition-level
// concurrency: MatchPartition(p) visits only partition p.
func (e *SignatureEntry) SetPartitions(n int) error {
	if n < 1 {
		return fmt.Errorf("predindex: partitions must be >= 1")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.partitions = n
	return e.set.repartition(n)
}

// Partitions reports the signature's partition count.
func (e *SignatureEntry) Partitions() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.partitions
}

// ProbeCount reports how many tokens have consulted this signature
// (exact: sums live slices when the counter is sliced).
func (e *SignatureEntry) ProbeCount() int64 { return e.cProbes.Value() }

// MatchCount reports how many refs have matched through this signature.
func (e *SignatureEntry) MatchCount() int64 { return e.cMatches.Value() }

// maybeReorganize migrates the constant set when its size crosses a
// policy threshold. Caller holds entry.mu.
func (ix *Index) maybeReorganize(e *SignatureEntry) error {
	if ix.forceOrg != OrgAuto {
		return nil
	}
	want := e.org
	switch {
	case e.size <= ix.policy.ListMax:
		want = OrgMemoryList
	case e.size <= ix.policy.MemMax || ix.db == nil:
		want = OrgMemoryIndex
	default:
		want = OrgIndexedTable
	}
	if want == e.org {
		return nil
	}
	// Never downgrade from a table organization (rebuilding memory
	// structures from a shrinking table is possible but pointless for
	// trigger workloads, which shrink rarely).
	if (e.org == OrgIndexedTable || e.org == OrgTable) && want != OrgIndexedTable && want != OrgTable {
		return nil
	}
	return ix.migrate(e, want)
}

// migrate rebuilds the entry's constant set under a new organization.
// Caller holds entry.mu.
func (ix *Index) migrate(e *SignatureEntry, want Organization) error {
	ns, err := ix.newSet(e, want)
	if err != nil {
		return err
	}
	if err := e.set.forEach(func(consts types.Tuple, ref Ref) error {
		return ns.add(consts, ref)
	}); err != nil {
		return err
	}
	if err := ns.repartition(e.partitions); err != nil {
		return err
	}
	from := e.org
	e.set = ns
	e.org = want
	if ix.reorgHook != nil {
		m := ix.costModelOrDefault()
		ix.reorgHook(ReorgEvent{
			SigID:      e.ID,
			Source:     e.Source,
			Expr:       e.Sig.Canonical(),
			From:       from,
			To:         want,
			Size:       e.size,
			FromCostNs: m.ProbeCost(from, e.size),
			ToCostNs:   m.ProbeCost(want, e.size),
			// Reconciled, not live: the decision path reads the folded
			// value so a mid-probe slice delta can never tear the event.
			Probes: e.cProbes.Reconciled(),
		})
	}
	return nil
}

// costModelOrDefault prices organizations for events and snapshots.
func (ix *Index) costModelOrDefault() CostModel {
	if ix.costModel != nil {
		return *ix.costModel
	}
	return DefaultCostModel
}

func (ix *Index) newSet(e *SignatureEntry, org Organization) (constantSet, error) {
	switch org {
	case OrgMemoryList:
		return newMemList(e.Sig), nil
	case OrgMemoryIndex:
		return newMemIndex(e.Sig), nil
	case OrgTable, OrgIndexedTable:
		if ix.db == nil {
			return nil, fmt.Errorf("predindex: table organization requires a database (WithDB)")
		}
		return newTableSet(ix.db, e, e.schema, org == OrgIndexedTable)
	default:
		return nil, fmt.Errorf("predindex: cannot instantiate organization %s", org)
	}
}

// MatchToken probes the index with a token and streams every matching
// expression instance. This is the §5.4 algorithm: locate the data
// source predicate index, consult each signature's predicate-testing
// structure, then test remaining clauses of partially indexable
// predicates. Callers with a stable driver slot should prefer
// MatchTokenSlot so contended counters slice per worker.
func (ix *Index) MatchToken(tok datasource.Token, fn func(Match) bool) error {
	return ix.matchToken(tok, -1, -1, fn)
}

// MatchTokenSlot is MatchToken with the caller's stable driver slot
// (taskq Task.RunSlot): counter updates route to the worker's own
// slice once a key goes hot, so a viral constant stops bouncing cache
// lines between drivers.
func (ix *Index) MatchTokenSlot(tok datasource.Token, slot int, fn func(Match) bool) error {
	return ix.matchToken(tok, -1, slot, fn)
}

// MatchTokenPartition is MatchToken restricted to one partition of every
// triggerID set (task type 3 of §6).
func (ix *Index) MatchTokenPartition(tok datasource.Token, part int, fn func(Match) bool) error {
	return ix.matchToken(tok, part, -1, fn)
}

// MatchTokenPartitionSlot is MatchTokenPartition with the caller's
// stable driver slot.
func (ix *Index) MatchTokenPartitionSlot(tok datasource.Token, part, slot int, fn func(Match) bool) error {
	return ix.matchToken(tok, part, slot, fn)
}

// probe carries the prober's worker identity and the reconcile domain
// down into the constant-set organizations, so per-centry counters can
// slice per driver.
type probe struct {
	dom  *phasecounter.Domain
	slot int
}

func (ix *Index) matchToken(tok datasource.Token, part, slot int, fn func(Match) bool) error {
	if ix.matchHist != nil {
		begin := time.Now()
		defer func() { ix.matchHist.Observe(time.Since(begin)) }()
	}
	// Lock-free: one atomic load for the root map, one for the
	// source's published signature list. Concurrent AddPredicate swaps
	// are invisible to a probe already holding the old slice, which is
	// exactly the isolation the paper's per-token semantics need.
	si, ok := ix.shard(tok.SourceID)
	if !ok {
		return fmt.Errorf("predindex: token for unknown data source %d", tok.SourceID)
	}
	sigs := si.signatures()

	pc := probe{dom: ix.dom, slot: slot}
	ix.stats.tokens.Add(pc.dom, slot, 1)
	tuple := tok.Effective()
	env := expr.SingleEnv{New: tuple, Old: tok.Old}
	var sigProbes, restTests, matches int64
	stop := false
	for _, e := range sigs {
		if stop {
			break
		}
		if !e.Mask.Matches(tok) {
			continue
		}
		sigProbes++
		// The read lock is held across the whole set probe: the memory
		// organizations mutate their structures in place under the entry
		// write lock, so a probe overlapping an AddPredicate must hold the
		// reader side. Probes share it — probe-vs-probe stays concurrent —
		// and per-probe tallies are phase-reconciled counters, so the only
		// shared read-modify-write left on this path is the lock word
		// itself. Match callbacks must not mutate this entry (the system
		// buffers matches and fires after the probe returns).
		e.mu.RLock()
		set := e.set
		parts := e.partitions
		org := e.org
		if org <= OrgIndexedTable {
			if c := ix.orgProbes[org]; c != nil {
				c.Inc()
			}
		}
		probePart := part
		if probePart >= parts {
			probePart = probePart % parts
		}
		e.cProbes.Add(pc.dom, slot, 1)
		var sigMatches int64
		compares, err := set.match(tuple, probePart, pc, func(ref Ref) bool {
			if len(ref.Rest.Clauses) > 0 {
				restTests++
				ok, err := expr.EvalPredicate(ref.Rest.Node(), env)
				if err != nil || ok != expr.True {
					// Charge the failed probe on this cold branch; the hot
					// (matching) branch folds probe+match into one lookup.
					if p := ix.prof; p != nil {
						p.MatchProbeSlot(ref.TriggerID, slot)
					}
					return true
				}
			}
			matches++
			sigMatches++
			if p := ix.prof; p != nil {
				p.MatchHitSlot(ref.TriggerID, slot)
			}
			if !fn(Match{Ref: ref, SourceID: tok.SourceID}) {
				stop = true
				return false
			}
			return true
		})
		e.mu.RUnlock()
		if sigMatches > 0 {
			e.cMatches.Add(pc.dom, slot, sigMatches)
		}
		ix.stats.constCompares.Add(pc.dom, slot, int64(compares))
		if err != nil {
			return err
		}
	}
	if sigProbes > 0 {
		ix.stats.sigProbes.Add(pc.dom, slot, sigProbes)
	}
	if restTests > 0 {
		ix.stats.restTests.Add(pc.dom, slot, restTests)
	}
	if matches > 0 {
		ix.stats.matches.Add(pc.dom, slot, matches)
	}
	return nil
}

// SigSnapshot describes one signature entry for introspection
// (/indexz, the explain verb): identity, live organization, class
// size, partitioning, probe/match counters, and the cost model's
// per-probe estimate at the current size.
type SigSnapshot struct {
	ID     uint64 `json:"sig_id"`
	Source int32  `json:"source_id"`
	Mask   string `json:"mask"`
	Expr   string `json:"expr"`
	// Org is the live constant-set organization; Structure names the
	// concrete predicate-testing structure behind it.
	Org        string `json:"organization"`
	Structure  string `json:"structure"`
	Size       int    `json:"size"`
	Partitions int    `json:"partitions"`
	Probes     int64  `json:"probes"`
	Matches    int64  `json:"matches"`
	// EstProbeCostNs is the cost model's estimate for one probe against
	// this class at its current size and organization.
	EstProbeCostNs float64 `json:"est_probe_cost_ns"`
	// Phase-reconciliation state of the signature's probe counter:
	// "plain" (single shared cell) or "sliced" (per-driver slices —
	// the counter proved contended), with the live slice count, how
	// many reconcile epochs have folded it, and the age of the latest
	// fold (-1 before the first). ReconciledProbes is the folded probe
	// reading the cost model consumes (stale ≤ 1 epoch).
	Phase              string `json:"phase"`
	Slices             int    `json:"slices"`
	Reconciles         int64  `json:"reconciles"`
	LastReconcileAgeNs int64  `json:"last_reconcile_age_ns"`
	ReconciledProbes   int64  `json:"reconciled_probes"`
	// HotConstants lists this signature's contended constants — centries
	// whose own probe counters went sliced (a viral entity shows up
	// here), hottest first. Empty when nothing is contended or the set
	// lives in a table organization.
	HotConstants []HotConst `json:"hot_constants,omitempty"`
}

// HotConst is one contended constant inside a signature's set: its
// rendered constant tuple, exact probe/match tallies, and slice count.
type HotConst struct {
	Consts  string `json:"consts"`
	Probes  int64  `json:"probes"`
	Matches int64  `json:"matches"`
	Slices  int    `json:"slices"`
}

// Snapshot dumps every signature on every source, ordered by source ID
// then signature ID.
func (ix *Index) Snapshot() []SigSnapshot {
	var entries []*SignatureEntry
	for _, si := range *ix.sources.Load() {
		entries = append(entries, si.signatures()...)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Source != entries[j].Source {
			return entries[i].Source < entries[j].Source
		}
		return entries[i].ID < entries[j].ID
	})
	m := ix.costModelOrDefault()
	out := make([]SigSnapshot, 0, len(entries))
	for _, e := range entries {
		e.mu.RLock()
		snap := SigSnapshot{
			ID:             e.ID,
			Source:         e.Source,
			Mask:           e.Mask.Encode(),
			Expr:           e.Sig.Canonical(),
			Org:            e.org.String(),
			Structure:      e.set.describe(),
			Size:           e.size,
			Partitions:     e.partitions,
			EstProbeCostNs: m.ProbeCost(e.org, e.size),
			HotConstants:   e.set.hotConstants(maxHotConstants),
		}
		e.mu.RUnlock()
		snap.Probes = e.cProbes.Value()
		snap.Matches = e.cMatches.Value()
		snap.Phase = e.cProbes.Phase().String()
		snap.Slices = e.cProbes.Slices()
		snap.Reconciles = e.cProbes.Reconciles()
		snap.LastReconcileAgeNs = -1
		if last := e.cProbes.LastReconcile(); !last.IsZero() {
			snap.LastReconcileAgeNs = time.Since(last).Nanoseconds()
		}
		snap.ReconciledProbes = e.cProbes.Reconciled()
		out = append(out, snap)
	}
	return out
}

// maxHotConstants bounds the per-signature contended-constant list in
// snapshots; a healthy index has zero, a viral-entity incident a
// handful.
const maxHotConstants = 8
