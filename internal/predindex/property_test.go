package predindex

import (
	"fmt"
	"math/rand"
	"testing"

	"triggerman/internal/expr"
	"triggerman/internal/minisql"
	"triggerman/internal/parser"
	"triggerman/internal/storage"
	"triggerman/internal/types"
)

// TestPropertyIndexMatchesNaive is the package's oracle: for random
// predicate populations (equality, range, composite, disjunctive — all
// indexability classes) and random tokens, the predicate index must
// return exactly the trigger set a naive evaluate-everything matcher
// returns, under every organization.
func TestPropertyIndexMatchesNaive(t *testing.T) {
	orgs := []Organization{OrgMemoryList, OrgMemoryIndex, OrgIndexedTable, OrgTable}
	for _, org := range orgs {
		t.Run(org.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(org) * 7919))
			var opts []Option
			bp := storage.NewBufferPool(storage.NewMem(), 1024)
			db, err := minisql.Create(bp)
			if err != nil {
				t.Fatal(err)
			}
			opts = append(opts, WithDB(db), WithForcedOrganization(org))
			ix := New(opts...)
			ix.AddSource(empSrc, empSchema)

			type naive struct {
				id   uint64
				pred expr.Node
			}
			var preds []naive

			n := 120
			if org == OrgTable {
				n = 40 // full scans per probe; keep the oracle fast
			}
			for i := 0; i < n; i++ {
				when := randomWhen(rng)
				sig, consts := buildSig(t, when)
				ref := refFor(t, sig, consts, uint64(i+1), uint64(i+1))
				if _, err := ix.AddPredicate(empSrc, EventMask{AnyOp: true}, sig, consts, ref); err != nil {
					t.Fatalf("%q: %v", when, err)
				}
				node := mustBound(t, when)
				preds = append(preds, naive{uint64(i + 1), node})
			}

			for probe := 0; probe < 200; probe++ {
				tok := insertTok(
					fmt.Sprintf("u%02d", rng.Intn(20)),
					int64(rng.Intn(2000)),
					fmt.Sprintf("d%02d", rng.Intn(20)))
				want := map[uint64]bool{}
				env := expr.SingleEnv{New: tok.New}
				for _, p := range preds {
					ok, err := expr.EvalPredicate(p.pred, env)
					if err != nil {
						t.Fatal(err)
					}
					if ok == expr.True {
						want[p.id] = true
					}
				}
				got := map[uint64]bool{}
				if err := ix.MatchToken(tok, func(m Match) bool {
					if got[m.TriggerID] {
						t.Fatalf("duplicate match for trigger %d", m.TriggerID)
					}
					got[m.TriggerID] = true
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("probe %d %s: got %d matches, want %d\n got=%v\nwant=%v",
						probe, tok, len(got), len(want), got, want)
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("probe %d: missing trigger %d", probe, id)
					}
				}
			}
		})
	}
}

// randomWhen generates a random single-variable predicate exercising
// every indexability class.
func randomWhen(rng *rand.Rand) string {
	name := func() string { return fmt.Sprintf("'u%02d'", rng.Intn(20)) }
	dept := func() string { return fmt.Sprintf("'d%02d'", rng.Intn(20)) }
	sal := func() int { return rng.Intn(2000) }
	switch rng.Intn(8) {
	case 0:
		return fmt.Sprintf("emp.name = %s", name())
	case 1:
		return fmt.Sprintf("emp.salary > %d", sal())
	case 2:
		return fmt.Sprintf("emp.salary <= %d", sal())
	case 3:
		return fmt.Sprintf("emp.name = %s and emp.dept = %s", name(), dept())
	case 4:
		return fmt.Sprintf("emp.name = %s and emp.salary > %d", name(), sal())
	case 5:
		return fmt.Sprintf("emp.name = %s or emp.dept = %s", name(), dept())
	case 6:
		return fmt.Sprintf("emp.salary between %d and %d", sal()/2, 1000+sal())
	default:
		return fmt.Sprintf("not (emp.dept = %s)", dept())
	}
}

func mustBound(t *testing.T, when string) expr.Node {
	t.Helper()
	n, err := parseAndBind(when)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func parseAndBind(when string) (expr.Node, error) {
	n, err := parser.ParseExpr(when)
	if err != nil {
		return nil, err
	}
	b := &expr.Binder{
		VarIndex:   map[string]int{"emp": 0},
		DefaultVar: 0,
		ColumnIndex: func(_ int, col string) int {
			return empSchema.ColumnIndex(col)
		},
	}
	if err := b.Bind(n); err != nil {
		return nil, err
	}
	return n, nil
}

// TestPropertyRemoveRestoresNaive removes a random half of the
// predicates and re-checks the oracle, covering delete paths of every
// organization.
func TestPropertyRemoveRestoresNaive(t *testing.T) {
	for _, org := range []Organization{OrgMemoryList, OrgMemoryIndex, OrgIndexedTable} {
		t.Run(org.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(org) * 104729))
			bp := storage.NewBufferPool(storage.NewMem(), 1024)
			db, _ := minisql.Create(bp)
			ix := New(WithDB(db), WithForcedOrganization(org))
			ix.AddSource(empSrc, empSchema)

			type entryInfo struct {
				id     uint64
				pred   expr.Node
				entry  *SignatureEntry
				consts []types.Value
			}
			var all []entryInfo
			for i := 0; i < 80; i++ {
				when := randomWhen(rng)
				sig, consts := buildSig(t, when)
				ref := refFor(t, sig, consts, uint64(i+1), uint64(i+1))
				e, err := ix.AddPredicate(empSrc, EventMask{AnyOp: true}, sig, consts, ref)
				if err != nil {
					t.Fatal(err)
				}
				all = append(all, entryInfo{uint64(i + 1), mustBound(t, when), e, consts})
			}
			live := map[uint64]expr.Node{}
			for _, e := range all {
				live[e.id] = e.pred
			}
			for _, e := range all {
				if rng.Intn(2) == 0 {
					if err := ix.RemovePredicate(e.entry, e.consts, e.id); err != nil {
						t.Fatal(err)
					}
					delete(live, e.id)
				}
			}
			for probe := 0; probe < 100; probe++ {
				tok := insertTok(
					fmt.Sprintf("u%02d", rng.Intn(20)),
					int64(rng.Intn(2000)),
					fmt.Sprintf("d%02d", rng.Intn(20)))
				env := expr.SingleEnv{New: tok.New}
				want := map[uint64]bool{}
				for id, pred := range live {
					ok, err := expr.EvalPredicate(pred, env)
					if err != nil {
						t.Fatal(err)
					}
					if ok == expr.True {
						want[id] = true
					}
				}
				got := map[uint64]bool{}
				ix.MatchToken(tok, func(m Match) bool { got[m.TriggerID] = true; return true })
				if len(got) != len(want) {
					t.Fatalf("probe %d: got %v want %v", probe, got, want)
				}
			}
		})
	}
}
