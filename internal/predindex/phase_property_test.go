package predindex

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"triggerman/internal/datasource"
	"triggerman/internal/expr"
	"triggerman/internal/types"
)

// TestPropertyProbeDuringReconcile is the probe-during-reconcile
// property test the acceptance criteria name: concurrent slot-stamped
// probes against an index with one viral constant — while a reconciler
// spins fold epochs and another goroutine keeps adding predicates to
// the same signature — must produce exactly the totals a
// single-threaded reference predicts. Run under -race.
func TestPropertyProbeDuringReconcile(t *testing.T) {
	const (
		writers    = 8
		probesEach = 2000 // even: half on the hot constant, half cold
		hotTrigs   = 3
		ncold      = 10
		adderAdds  = 150
	)
	// Forced organization so concurrent adds never cross a reorg
	// threshold mid-run; the COW add path is exercised all the same.
	ix := newIx(t, WithSlots(writers), WithForcedOrganization(OrgMemoryIndex))
	mask := EventMask{AnyOp: true}

	// One viral constant carrying several triggers, plus cold singleton
	// constants — all the same signature shape, so one entry.
	var entry *SignatureEntry
	for i := 0; i < hotTrigs; i++ {
		sig, consts := buildSig(t, "emp.name = 'hot'")
		e, err := ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, uint64(i+1), uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		entry = e
	}
	for i := 0; i < ncold; i++ {
		sig, consts := buildSig(t, fmt.Sprintf("emp.name = 'c%02d'", i))
		if _, err := ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, uint64(100+i), uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}

	// Pre-build the concurrent adder's work in the test goroutine
	// (buildSig may t.Fatal). The added constants are never probed, so
	// the expected totals stay deterministic.
	type addJob struct {
		sig    *expr.Signature
		consts []types.Value
		ref    Ref
	}
	jobs := make([]addJob, adderAdds)
	for i := range jobs {
		sig, consts := buildSig(t, fmt.Sprintf("emp.name = 'zz%03d'", i))
		jobs[i] = addJob{sig, consts, refFor(t, sig, consts, uint64(5000+i), uint64(5000+i))}
	}

	errCh := make(chan error, writers+1)
	var stop atomic.Bool
	var aux sync.WaitGroup
	aux.Add(1)
	go func() { // reconciler: fold epochs racing every probe
		defer aux.Done()
		for !stop.Load() {
			ix.Reconcile()
			runtime.Gosched()
		}
	}()
	aux.Add(1)
	go func() { // adder: COW set swaps racing every probe
		defer aux.Done()
		for _, j := range jobs {
			if _, err := ix.AddPredicate(empSrc, mask, j.sig, j.consts, j.ref); err != nil {
				errCh <- err
				return
			}
			runtime.Gosched()
		}
	}()

	var gotMatches atomic.Int64
	var probers sync.WaitGroup
	for w := 0; w < writers; w++ {
		probers.Add(1)
		go func(slot int) {
			defer probers.Done()
			var local int64
			for i := 0; i < probesEach; i++ {
				var tok datasource.Token
				if i%2 == 0 {
					tok = insertTok("hot", int64(i), "d00")
				} else {
					tok = insertTok(fmt.Sprintf("c%02d", (i/2+slot)%ncold), int64(i), "d00")
				}
				if err := ix.MatchTokenSlot(tok, slot, func(Match) bool {
					local++
					return true
				}); err != nil {
					errCh <- err
					return
				}
				if i%16 == 0 {
					runtime.Gosched() // interleave on single-P schedulers too
				}
			}
			gotMatches.Add(local)
		}(w)
	}
	probers.Wait()
	stop.Store(true)
	aux.Wait()
	ix.Reconcile() // final fold at quiescence
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Single-threaded reference.
	const (
		totalProbes = writers * probesEach
		hotProbes   = totalProbes / 2
		wantMatches = hotProbes*hotTrigs + (totalProbes - hotProbes)
	)
	if got := gotMatches.Load(); got != wantMatches {
		t.Fatalf("callback matches = %d, want %d", got, wantMatches)
	}
	if got := entry.ProbeCount(); got != totalProbes {
		t.Fatalf("entry probes = %d, want %d", got, totalProbes)
	}
	if got := entry.MatchCount(); got != wantMatches {
		t.Fatalf("entry matches = %d, want %d", got, wantMatches)
	}
	st := ix.Stats()
	if st.Tokens != totalProbes || st.SigProbes != totalProbes || st.Matches != wantMatches {
		t.Fatalf("stats tokens/sigProbes/matches = %d/%d/%d, want %d/%d/%d",
			st.Tokens, st.SigProbes, st.Matches, totalProbes, totalProbes, wantMatches)
	}
	if st.RestTests != 0 {
		t.Fatalf("restTests = %d, want 0 (pure equality signatures)", st.RestTests)
	}

	// Phase state: the entry counter and the hot constant must have
	// promoted under 8-way traffic, and the reconciled reading must have
	// caught up to the live value at quiescence.
	snaps := ix.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshot entries = %d, want 1", len(snaps))
	}
	snap := snaps[0]
	if snap.Probes != totalProbes {
		t.Fatalf("snapshot probes = %d, want %d", snap.Probes, totalProbes)
	}
	if snap.Phase != "sliced" || snap.Slices != writers {
		t.Fatalf("snapshot phase/slices = %s/%d, want sliced/%d", snap.Phase, snap.Slices, writers)
	}
	if snap.Reconciles == 0 || snap.LastReconcileAgeNs < 0 {
		t.Fatalf("snapshot reconciles=%d lastAge=%d, want folds recorded", snap.Reconciles, snap.LastReconcileAgeNs)
	}
	if snap.ReconciledProbes != totalProbes {
		t.Fatalf("reconciled probes = %d, want %d after final fold", snap.ReconciledProbes, totalProbes)
	}
	if len(snap.HotConstants) == 0 {
		t.Fatal("hot constant never promoted to the sliced phase")
	}
	hc := snap.HotConstants[0]
	if !strings.Contains(hc.Consts, "hot") {
		t.Fatalf("hottest constant = %q, want the viral key", hc.Consts)
	}
	if hc.Probes != hotProbes || hc.Matches != int64(hotProbes)*hotTrigs {
		t.Fatalf("hot constant probes/matches = %d/%d, want %d/%d",
			hc.Probes, hc.Matches, hotProbes, hotProbes*hotTrigs)
	}
	if hc.Slices != writers {
		t.Fatalf("hot constant slices = %d, want %d", hc.Slices, writers)
	}

	dom := ix.Contention()
	if dom.Slots != writers || dom.Sliced == 0 || dom.Reconciles == 0 {
		t.Fatalf("domain stats = %+v, want slots=%d with sliced counters and epochs", dom, writers)
	}

	// The racing adds must all be visible after the run.
	ms := matchAll(t, ix, insertTok("zz000", 1, "d00"))
	if len(ms) != 1 || ms[0].TriggerID != 5000 {
		t.Fatalf("concurrently added predicate not matchable: %v", ms)
	}
}
