package predindex

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"triggerman/internal/datasource"
	"triggerman/internal/expr"
	"triggerman/internal/minisql"
	"triggerman/internal/parser"
	"triggerman/internal/storage"
	"triggerman/internal/types"
)

var empSchema = types.MustSchema(
	types.Column{Name: "name", Kind: types.KindVarchar},
	types.Column{Name: "salary", Kind: types.KindInt},
	types.Column{Name: "dept", Kind: types.KindVarchar},
)

const empSrc = int32(1)

// buildSig parses a when-clause, binds it against emp, and extracts the
// signature — the same pipeline trigger creation uses.
func buildSig(t testing.TB, when string) (*expr.Signature, []types.Value) {
	t.Helper()
	n, err := parser.ParseExpr(when)
	if err != nil {
		t.Fatal(err)
	}
	b := &expr.Binder{
		VarIndex:   map[string]int{"emp": 0},
		DefaultVar: 0,
		ColumnIndex: func(_ int, col string) int {
			return empSchema.ColumnIndex(col)
		},
	}
	if err := b.Bind(n); err != nil {
		t.Fatal(err)
	}
	cnf, err := expr.ToCNF(n)
	if err != nil {
		t.Fatal(err)
	}
	sig, consts, err := expr.ExtractSignature(cnf)
	if err != nil {
		t.Fatal(err)
	}
	return sig, consts
}

func refFor(t testing.TB, sig *expr.Signature, consts []types.Value, exprID, trigID uint64) Ref {
	t.Helper()
	rest, err := expr.InstantiateCNF(sig.Rest, consts)
	if err != nil {
		t.Fatal(err)
	}
	return Ref{ExprID: exprID, TriggerID: trigID, NextNode: int32(exprID), Rest: rest}
}

func insertTok(name string, salary int64, dept string) datasource.Token {
	return datasource.Token{
		SourceID: empSrc,
		Op:       datasource.OpInsert,
		New:      types.Tuple{types.NewString(name), types.NewInt(salary), types.NewString(dept)},
	}
}

func matchAll(t testing.TB, ix *Index, tok datasource.Token) []Match {
	t.Helper()
	var out []Match
	if err := ix.MatchToken(tok, func(m Match) bool {
		out = append(out, m)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func triggerIDs(ms []Match) map[uint64]bool {
	out := map[uint64]bool{}
	for _, m := range ms {
		out[m.TriggerID] = true
	}
	return out
}

func newIx(t testing.TB, opts ...Option) *Index {
	t.Helper()
	ix := New(opts...)
	ix.AddSource(empSrc, empSchema)
	return ix
}

func TestSignatureInterning(t *testing.T) {
	ix := newIx(t)
	mask := EventMask{AnyOp: true}
	// 100 triggers, same shape, different constants -> ONE signature.
	for i := 0; i < 100; i++ {
		sig, consts := buildSig(t, fmt.Sprintf("emp.salary > %d", i*1000))
		if _, err := ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, uint64(i+1), uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.SignatureCount(empSrc); got != 1 {
		t.Fatalf("signatures = %d, want 1", got)
	}
	// A different shape adds a second signature.
	sig, consts := buildSig(t, "emp.name = 'Bob'")
	ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, 1000, 1000))
	if got := ix.SignatureCount(empSrc); got != 2 {
		t.Fatalf("signatures = %d, want 2", got)
	}
	// Same shape but different event mask is a distinct signature (the
	// signature triple includes the operation code).
	sig2, consts2 := buildSig(t, "emp.name = 'Bob'")
	ix.AddPredicate(empSrc, EventMask{Op: datasource.OpDelete}, sig2, consts2, refFor(t, sig2, consts2, 1001, 1001))
	if got := ix.SignatureCount(empSrc); got != 3 {
		t.Fatalf("signatures = %d, want 3", got)
	}
}

func TestMatchEquality(t *testing.T) {
	for _, org := range []Organization{OrgMemoryList, OrgMemoryIndex} {
		t.Run(org.String(), func(t *testing.T) {
			ix := newIx(t, WithForcedOrganization(org))
			mask := EventMask{AnyOp: true}
			for i := uint64(1); i <= 50; i++ {
				sig, consts := buildSig(t, fmt.Sprintf("emp.name = 'user%02d'", i))
				ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, i, i))
			}
			ms := matchAll(t, ix, insertTok("user07", 1, "eng"))
			if len(ms) != 1 || ms[0].TriggerID != 7 {
				t.Fatalf("matches = %+v", ms)
			}
			if len(matchAll(t, ix, insertTok("nobody", 1, "eng"))) != 0 {
				t.Error("spurious match")
			}
		})
	}
}

func TestMatchRange(t *testing.T) {
	for _, org := range []Organization{OrgMemoryList, OrgMemoryIndex} {
		t.Run(org.String(), func(t *testing.T) {
			ix := newIx(t, WithForcedOrganization(org))
			mask := EventMask{AnyOp: true}
			for i := uint64(1); i <= 10; i++ {
				sig, consts := buildSig(t, fmt.Sprintf("emp.salary > %d", i*10000))
				ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, i, i))
			}
			ms := matchAll(t, ix, insertTok("x", 55000, "d"))
			if len(ms) != 5 { // thresholds 10k..50k
				t.Fatalf("matched %d, want 5", len(ms))
			}
			if len(matchAll(t, ix, insertTok("x", 5000, "d"))) != 0 {
				t.Error("below all thresholds should not match")
			}
		})
	}
}

func TestMatchRestOfPredicate(t *testing.T) {
	ix := newIx(t)
	mask := EventMask{AnyOp: true}
	// dept='eng' indexable; salary > 50000 is the rest.
	sig, consts := buildSig(t, "emp.dept = 'eng' and emp.salary > 50000")
	ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, 1, 1))
	if len(matchAll(t, ix, insertTok("a", 60000, "eng"))) != 1 {
		t.Error("should match")
	}
	if len(matchAll(t, ix, insertTok("a", 40000, "eng"))) != 0 {
		t.Error("rest should reject low salary")
	}
	if len(matchAll(t, ix, insertTok("a", 60000, "ops"))) != 0 {
		t.Error("index should reject wrong dept")
	}
	st := ix.Stats()
	if st.RestTests == 0 {
		t.Error("rest tests not counted")
	}
}

func TestEventMaskFiltering(t *testing.T) {
	ix := newIx(t)
	sig, consts := buildSig(t, "emp.salary > 0")
	// insert-only trigger
	ix.AddPredicate(empSrc, EventMask{Op: datasource.OpInsert}, sig, consts, refFor(t, sig, consts, 1, 1))
	// delete-only trigger
	sig2, consts2 := buildSig(t, "emp.salary > 0")
	ix.AddPredicate(empSrc, EventMask{Op: datasource.OpDelete}, sig2, consts2, refFor(t, sig2, consts2, 2, 2))
	// update(salary) trigger
	sig3, consts3 := buildSig(t, "emp.salary > 0")
	ix.AddPredicate(empSrc, EventMask{Op: datasource.OpUpdate, Columns: []int{1}}, sig3, consts3, refFor(t, sig3, consts3, 3, 3))

	ins := insertTok("a", 10, "d")
	if ids := triggerIDs(matchAll(t, ix, ins)); !ids[1] || ids[2] || ids[3] {
		t.Errorf("insert matched %v", ids)
	}
	del := datasource.Token{SourceID: empSrc, Op: datasource.OpDelete,
		Old: types.Tuple{types.NewString("a"), types.NewInt(10), types.NewString("d")}}
	if ids := triggerIDs(matchAll(t, ix, del)); ids[1] || !ids[2] || ids[3] {
		t.Errorf("delete matched %v", ids)
	}
	// update changing salary fires the update(salary) trigger
	upd := datasource.Token{SourceID: empSrc, Op: datasource.OpUpdate,
		Old: types.Tuple{types.NewString("a"), types.NewInt(10), types.NewString("d")},
		New: types.Tuple{types.NewString("a"), types.NewInt(20), types.NewString("d")}}
	if ids := triggerIDs(matchAll(t, ix, upd)); ids[1] || ids[2] || !ids[3] {
		t.Errorf("update(salary) matched %v", ids)
	}
	// update changing only dept does NOT fire update(salary)
	upd2 := datasource.Token{SourceID: empSrc, Op: datasource.OpUpdate,
		Old: types.Tuple{types.NewString("a"), types.NewInt(10), types.NewString("d")},
		New: types.Tuple{types.NewString("a"), types.NewInt(10), types.NewString("e")}}
	if ids := triggerIDs(matchAll(t, ix, upd2)); ids[3] {
		t.Errorf("update(dept) wrongly fired update(salary) trigger: %v", ids)
	}
}

func TestImplicitInsertOrUpdate(t *testing.T) {
	ix := newIx(t)
	sig, consts := buildSig(t, "emp.salary > 0")
	ix.AddPredicate(empSrc, EventMask{AnyOp: true}, sig, consts, refFor(t, sig, consts, 1, 1))
	if len(matchAll(t, ix, insertTok("a", 5, "d"))) != 1 {
		t.Error("insert should match AnyOp")
	}
	del := datasource.Token{SourceID: empSrc, Op: datasource.OpDelete,
		Old: types.Tuple{types.NewString("a"), types.NewInt(5), types.NewString("d")}}
	if len(matchAll(t, ix, del)) != 0 {
		t.Error("delete should not match AnyOp (insert-or-update)")
	}
}

func TestNormalizedSharedConstant(t *testing.T) {
	// N triggers with the SAME constant: one constant entry, N-element
	// triggerID set (§5.3).
	ix := newIx(t, WithForcedOrganization(OrgMemoryIndex))
	mask := EventMask{AnyOp: true}
	for i := uint64(1); i <= 100; i++ {
		sig, consts := buildSig(t, "emp.name = 'shared'")
		ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, i, i))
	}
	ms := matchAll(t, ix, insertTok("shared", 1, "d"))
	if len(ms) != 100 {
		t.Fatalf("matched %d, want 100", len(ms))
	}
	// One probe, not 100 comparisons.
	st := ix.Stats()
	if st.ConstCompares != 1 {
		t.Errorf("const compares = %d, want 1 (normalized)", st.ConstCompares)
	}
}

func TestPartitionedTriggerIDSets(t *testing.T) {
	ix := newIx(t)
	mask := EventMask{AnyOp: true}
	var entry *SignatureEntry
	for i := uint64(1); i <= 40; i++ {
		sig, consts := buildSig(t, "emp.name = 'hot'")
		e, err := ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, i, i))
		if err != nil {
			t.Fatal(err)
		}
		entry = e
	}
	if err := entry.SetPartitions(4); err != nil {
		t.Fatal(err)
	}
	if entry.Partitions() != 4 {
		t.Error("partition count")
	}
	tok := insertTok("hot", 1, "d")
	seen := map[uint64]int{}
	total := 0
	for p := 0; p < 4; p++ {
		var ms []Match
		if err := ix.MatchTokenPartition(tok, p, func(m Match) bool {
			ms = append(ms, m)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(ms) != 10 {
			t.Errorf("partition %d matched %d, want 10", p, len(ms))
		}
		for _, m := range ms {
			seen[m.TriggerID]++
			total++
		}
	}
	if total != 40 || len(seen) != 40 {
		t.Fatalf("partitions cover %d unique of %d total", len(seen), total)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("trigger %d seen %d times", id, n)
		}
	}
}

func TestRemovePredicate(t *testing.T) {
	ix := newIx(t)
	mask := EventMask{AnyOp: true}
	sig, consts := buildSig(t, "emp.name = 'x'")
	entry, err := ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.RemovePredicate(entry, consts, 1); err != nil {
		t.Fatal(err)
	}
	if len(matchAll(t, ix, insertTok("x", 1, "d"))) != 0 {
		t.Error("removed predicate still matches")
	}
	if err := ix.RemovePredicate(entry, consts, 1); err == nil {
		t.Error("double remove should fail")
	}
}

func TestAdaptiveReorganization(t *testing.T) {
	bp := storage.NewBufferPool(storage.NewMem(), 512)
	db, err := minisql.Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	ix := newIx(t, WithDB(db), WithPolicy(Policy{ListMax: 4, MemMax: 20}))
	mask := EventMask{AnyOp: true}
	var entry *SignatureEntry
	add := func(i uint64) {
		sig, consts := buildSig(t, fmt.Sprintf("emp.name = 'u%04d'", i))
		e, err := ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, i, i))
		if err != nil {
			t.Fatal(err)
		}
		entry = e
	}
	for i := uint64(1); i <= 3; i++ {
		add(i)
	}
	if entry.Organization() != OrgMemoryList {
		t.Fatalf("small class org = %s", entry.Organization())
	}
	for i := uint64(4); i <= 15; i++ {
		add(i)
	}
	if entry.Organization() != OrgMemoryIndex {
		t.Fatalf("medium class org = %s", entry.Organization())
	}
	for i := uint64(16); i <= 40; i++ {
		add(i)
	}
	if entry.Organization() != OrgIndexedTable {
		t.Fatalf("large class org = %s", entry.Organization())
	}
	// All 40 still matchable after two migrations.
	for _, probe := range []uint64{1, 10, 25, 40} {
		ms := matchAll(t, ix, insertTok(fmt.Sprintf("u%04d", probe), 1, "d"))
		if len(ms) != 1 || ms[0].TriggerID != probe {
			t.Fatalf("probe %d after migration: %+v", probe, ms)
		}
	}
	if entry.Size() != 40 {
		t.Errorf("size = %d", entry.Size())
	}
}

func TestTableOrganizations(t *testing.T) {
	for _, org := range []Organization{OrgTable, OrgIndexedTable} {
		t.Run(org.String(), func(t *testing.T) {
			bp := storage.NewBufferPool(storage.NewMem(), 512)
			db, _ := minisql.Create(bp)
			ix := newIx(t, WithDB(db), WithForcedOrganization(org))
			mask := EventMask{AnyOp: true}
			var entry *SignatureEntry
			for i := uint64(1); i <= 60; i++ {
				// include a rest clause to exercise text roundtrip
				sig, consts := buildSig(t, fmt.Sprintf("emp.name = 'u%02d' and emp.salary > %d", i, i*100))
				e, err := ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, i, i))
				if err != nil {
					t.Fatal(err)
				}
				entry = e
			}
			if entry.Organization() != org {
				t.Fatalf("org = %s", entry.Organization())
			}
			ms := matchAll(t, ix, insertTok("u07", 100000, "d"))
			if len(ms) != 1 || ms[0].TriggerID != 7 {
				t.Fatalf("matches = %+v", ms)
			}
			// rest rejects low salary (u07 requires > 700)
			if len(matchAll(t, ix, insertTok("u07", 500, "d"))) != 0 {
				t.Error("rest should reject")
			}
			// range-indexable signature through a table
			sigR, constsR := buildSig(t, "emp.salary > 100000")
			if _, err := ix.AddPredicate(empSrc, mask, sigR, constsR, refFor(t, sigR, constsR, 1000, 1000)); err != nil {
				t.Fatal(err)
			}
			ms = matchAll(t, ix, insertTok("nobody", 150000, "d"))
			if len(ms) != 1 || ms[0].TriggerID != 1000 {
				t.Fatalf("range table matches = %+v", ms)
			}
			// removal
			if err := ix.RemovePredicate(entry, mustConsts(t, "u07", 700), 7); err != nil {
				t.Fatal(err)
			}
			if len(matchAll(t, ix, insertTok("u07", 100000, "d"))) != 0 {
				t.Error("removed row still matches")
			}
		})
	}
}

func mustConsts(t *testing.T, name string, sal int64) []types.Value {
	t.Helper()
	return []types.Value{types.NewString(name), types.NewInt(sal)}
}

func TestTableOrgRequiresDB(t *testing.T) {
	ix := newIx(t, WithForcedOrganization(OrgIndexedTable))
	sig, consts := buildSig(t, "emp.name = 'x'")
	if _, err := ix.AddPredicate(empSrc, EventMask{AnyOp: true}, sig, consts, Ref{ExprID: 1}); err == nil {
		t.Error("table org without DB should fail")
	}
}

func TestUnknownSource(t *testing.T) {
	ix := New()
	sig, consts := buildSig(t, "emp.name = 'x'")
	if _, err := ix.AddPredicate(99, EventMask{}, sig, consts, Ref{}); err == nil {
		t.Error("unknown source add should fail")
	}
	tok := datasource.Token{SourceID: 99, Op: datasource.OpInsert, New: types.Tuple{}}
	if err := ix.MatchToken(tok, func(Match) bool { return true }); err == nil {
		t.Error("unknown source probe should fail")
	}
}

func TestNonIndexableSignature(t *testing.T) {
	// (name='a' OR dept='b'): disjunction, nothing indexable; matching
	// relies on rest tests for every member.
	ix := newIx(t)
	mask := EventMask{AnyOp: true}
	for i := uint64(1); i <= 5; i++ {
		sig, consts := buildSig(t, fmt.Sprintf("emp.name = 'n%d' or emp.dept = 'd%d'", i, i))
		ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, i, i))
	}
	ms := matchAll(t, ix, insertTok("n3", 1, "d5"))
	if ids := triggerIDs(ms); len(ids) != 2 || !ids[3] || !ids[5] {
		t.Fatalf("matched %v, want {3,5}", ids)
	}
}

func TestMatchEarlyStop(t *testing.T) {
	ix := newIx(t)
	mask := EventMask{AnyOp: true}
	for i := uint64(1); i <= 20; i++ {
		sig, consts := buildSig(t, "emp.name = 'x'")
		ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, i, i))
	}
	n := 0
	ix.MatchToken(insertTok("x", 1, "d"), func(Match) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop saw %d", n)
	}
}

func TestStatsCounting(t *testing.T) {
	ix := newIx(t)
	sig, consts := buildSig(t, "emp.name = 'x'")
	ix.AddPredicate(empSrc, EventMask{AnyOp: true}, sig, consts, refFor(t, sig, consts, 1, 1))
	matchAll(t, ix, insertTok("x", 1, "d"))
	matchAll(t, ix, insertTok("y", 1, "d"))
	st := ix.Stats()
	if st.Tokens != 2 || st.Matches != 1 || st.SigProbes != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOrganizationString(t *testing.T) {
	for _, o := range []Organization{OrgAuto, OrgMemoryList, OrgMemoryIndex, OrgTable, OrgIndexedTable} {
		if o.String() == "" {
			t.Error("empty org name")
		}
	}
}

func TestEventMaskCodec(t *testing.T) {
	masks := []EventMask{
		{Op: datasource.OpInsert},
		{Op: datasource.OpDelete},
		{Op: datasource.OpUpdate, Columns: []int{1, 3}},
		{AnyOp: true},
		{AllOps: true},
	}
	for _, m := range masks {
		back, err := DecodeEventMask(m.Encode())
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if back.Encode() != m.Encode() {
			t.Errorf("roundtrip %+v -> %+v", m, back)
		}
	}
	for _, bad := range []string{"", "bogus|", "update|x", "insert"} {
		if _, err := DecodeEventMask(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestConcurrentProbesDuringWrites(t *testing.T) {
	// The match path must stay correct (and race-free) while writers
	// swap copy-on-write signature lists and the root source map
	// underneath it: probers, AddPredicate interning new signatures,
	// and AddSource registering fresh sources all run concurrently.
	ix := newIx(t)
	mask := EventMask{Op: datasource.OpInsert}
	sig, consts := buildSig(t, "emp.salary == 100")
	if _, err := ix.AddPredicate(empSrc, mask, sig, consts, refFor(t, sig, consts, 1, 1)); err != nil {
		t.Fatal(err)
	}
	tok := insertTok("ann", 100, "eng")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var n int
				if err := ix.MatchToken(tok, func(Match) bool { n++; return true }); err != nil {
					t.Error(err)
					return
				}
				if n < 1 {
					t.Errorf("probe lost the seed predicate: %d matches", n)
					return
				}
			}
		}()
	}
	// Writer 1: intern new signature entries on the probed source (COW
	// list swaps under the probers' feet). Constants generalize into
	// one signature, so distinct update-column masks force distinct
	// entries; inserts ignore the column filter, keeping every entry on
	// the probers' path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			m := EventMask{Op: datasource.OpInsert, Columns: []int{i + 1}}
			s, c := buildSig(t, fmt.Sprintf("emp.salary == %d", 1000+i))
			if _, err := ix.AddPredicate(empSrc, m, s, c, refFor(t, s, c, uint64(100+i), uint64(100+i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Writer 2: grow the root source map (root pointer swaps).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int32(2); i < 100; i++ {
			ix.AddSource(i, empSchema)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := ix.SignatureCount(empSrc); got != 201 {
		t.Errorf("signature count = %d, want 201", got)
	}
	if got := len(matchAll(t, ix, tok)); got != 1 {
		t.Errorf("final probe matched %d refs, want 1", got)
	}
}

func TestConcurrentAddPredicateSameSignature(t *testing.T) {
	// Concurrent adds that intern the SAME signature must not lose
	// instances or publish a duplicate entry.
	ix := newIx(t)
	mask := EventMask{Op: datasource.OpInsert}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := uint64(g*1000 + i + 1)
				s, c := buildSig(t, fmt.Sprintf("emp.salary == %d", id))
				if _, err := ix.AddPredicate(empSrc, mask, s, c, refFor(t, s, c, id, id)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := ix.SignatureCount(empSrc); got != 1 {
		t.Fatalf("signature count = %d, want 1 (same shape interned once)", got)
	}
	es := ix.Signatures(empSrc)
	if len(es) != 1 || es[0].Size() != 200 {
		t.Fatalf("entry size = %d, want 200 instances", es[0].Size())
	}
}
