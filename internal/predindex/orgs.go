package predindex

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"triggerman/internal/expr"
	"triggerman/internal/intervalskiplist"
	"triggerman/internal/minisql"
	"triggerman/internal/parser"
	"triggerman/internal/phasecounter"
	"triggerman/internal/storage"
	"triggerman/internal/types"
)

// constantSet stores the constants of one expression signature's
// equivalence class and the triggerID set attached to each constant
// (Figure 4). Implementations are the four organizations of §5.2.
//
// match streams the refs of constants whose indexable part accepts the
// token tuple; the caller tests each ref's rest-of-predicate. part
// selects one triggerID-set partition (-1 = all). The returned count
// approximates the constant comparisons / probes performed.
type constantSet interface {
	add(consts types.Tuple, ref Ref) error
	remove(consts types.Tuple, exprID uint64) (bool, error)
	match(tuple types.Tuple, part int, pc probe, emit func(Ref) bool) (int, error)
	forEach(fn func(consts types.Tuple, ref Ref) error) error
	repartition(n int) error
	// describe names the concrete predicate-testing structure for
	// introspection (/indexz, explain).
	describe() string
	// hotConstants lists the set's contended constants (centries whose
	// probe counters went sliced), hottest first, at most max. Table
	// organizations return nil: their per-row state lives in SQL, not
	// in shared memory, so there is nothing to slice.
	hotConstants(max int) []HotConst
}

// centry is one constant (or constant tuple) with its triggerID set,
// round-robin partitioned per Figure 5.
//
// cProbes counts tokens whose indexable part landed on this constant;
// cMatches counts refs streamed to the rest-test from it. Both are
// phase-reconciled: a viral constant's tallies split into per-driver
// slices instead of bouncing one cache line across every core, and a
// sliced centry is exactly what Snapshot reports as a hot constant.
type centry struct {
	id     uint64
	consts types.Tuple
	eqKey  []byte // set for equality signatures
	parts  [][]Ref
	rr     int // round-robin cursor for partition assignment

	cProbes  phasecounter.Counter
	cMatches phasecounter.Counter
}

func (c *centry) addRef(ref Ref) {
	i := c.rr % len(c.parts)
	c.parts[i] = append(c.parts[i], ref)
	c.rr++
}

func (c *centry) removeRef(exprID uint64) bool {
	for pi, p := range c.parts {
		for i, r := range p {
			if r.ExprID == exprID {
				c.parts[pi] = append(p[:i], p[i+1:]...)
				return true
			}
		}
	}
	return false
}

// emitCounted charges the centry's phase-reconciled probe/match stats
// and streams the selected partition(s). The probe charge lands before
// emission (a token consulted this constant); the match charge batches
// the streamed-ref count in one add.
func (c *centry) emitCounted(part int, pc probe, emit func(Ref) bool) bool {
	c.cProbes.Add(pc.dom, pc.slot, 1)
	var n int64
	ok := c.emit(part, func(r Ref) bool {
		n++
		return emit(r)
	})
	if n != 0 {
		c.cMatches.Add(pc.dom, pc.slot, n)
	}
	return ok
}

func (c *centry) emit(part int, emit func(Ref) bool) bool {
	if part >= 0 {
		for _, r := range c.parts[part%len(c.parts)] {
			if !emit(r) {
				return false
			}
		}
		return true
	}
	for _, p := range c.parts {
		for _, r := range p {
			if !emit(r) {
				return false
			}
		}
	}
	return true
}

func (c *centry) refCount() int {
	n := 0
	for _, p := range c.parts {
		n += len(p)
	}
	return n
}

func (c *centry) repartition(n int) {
	var all []Ref
	for _, p := range c.parts {
		all = append(all, p...)
	}
	c.parts = make([][]Ref, n)
	c.rr = 0
	for _, r := range all {
		c.addRef(r)
	}
}

// collectHot gathers the sliced centries seen by visit, hottest first,
// capped at max — the shared body behind the memory organizations'
// hotConstants.
func collectHot(max int, visit func(fn func(*centry))) []HotConst {
	var out []HotConst
	visit(func(c *centry) {
		if c.cProbes.Phase() != phasecounter.PhaseSliced {
			return
		}
		out = append(out, HotConst{
			Consts:  c.consts.String(),
			Probes:  c.cProbes.Value(),
			Matches: c.cMatches.Value(),
			Slices:  c.cProbes.Slices(),
		})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Probes > out[j].Probes })
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// matchesIndexable tests the signature's indexable part for one constant
// entry against a token tuple.
func matchesIndexable(sig *expr.Signature, c *centry, tuple types.Tuple, eqProbe []byte) bool {
	switch sig.Indexability() {
	case expr.IndexEquality:
		return string(c.eqKey) == string(eqProbe)
	case expr.IndexRange:
		v := tuple.Get(sig.RangeCol)
		bound := c.consts[sig.RangeConstNum-1]
		if v.IsNull() {
			return false
		}
		cmp := types.Compare(v, bound)
		switch sig.RangeOp {
		case expr.OpGt:
			return cmp > 0
		case expr.OpGe:
			return cmp >= 0
		case expr.OpLt:
			return cmp < 0
		case expr.OpLe:
			return cmp <= 0
		}
		return false
	default:
		// Nothing indexable: every member is a candidate; rest testing
		// does all the work.
		return true
	}
}

func eqProbeFor(sig *expr.Signature, tuple types.Tuple) []byte {
	if sig.Indexability() != expr.IndexEquality {
		return nil
	}
	return types.EncodeKey(nil, sig.TokenEqKey(tuple))
}

func constKeyFor(sig *expr.Signature, consts types.Tuple) ([]byte, error) {
	if sig.Indexability() != expr.IndexEquality {
		return nil, nil
	}
	key, err := sig.EqKey(consts)
	if err != nil {
		return nil, err
	}
	return types.EncodeKey(nil, key), nil
}

// --- organization 1: main-memory list ---

type memList struct {
	sig     *expr.Signature
	entries []*centry
	// dedup accelerates add/remove only; match costs stay linear, which
	// is the point of the list organization.
	dedup  map[string]*centry
	nextID uint64
	nparts int
}

func newMemList(sig *expr.Signature) *memList {
	return &memList{sig: sig, nparts: 1, dedup: make(map[string]*centry)}
}

func (m *memList) add(consts types.Tuple, ref Ref) error {
	ck := constTupleKey(consts)
	c, ok := m.dedup[ck]
	if !ok {
		key, err := constKeyFor(m.sig, consts)
		if err != nil {
			return err
		}
		m.nextID++
		c = &centry{id: m.nextID, consts: consts.Clone(), eqKey: key, parts: make([][]Ref, m.nparts)}
		m.entries = append(m.entries, c)
		m.dedup[ck] = c
	}
	c.addRef(ref)
	return nil
}

func (m *memList) remove(consts types.Tuple, exprID uint64) (bool, error) {
	ck := constTupleKey(consts)
	c, ok := m.dedup[ck]
	if !ok || !c.removeRef(exprID) {
		return false, nil
	}
	if c.refCount() == 0 {
		for i, pc := range m.entries {
			if pc == c {
				m.entries = append(m.entries[:i], m.entries[i+1:]...)
				break
			}
		}
		delete(m.dedup, ck)
	}
	return true, nil
}

func (m *memList) match(tuple types.Tuple, part int, pc probe, emit func(Ref) bool) (int, error) {
	eqp := eqProbeFor(m.sig, tuple)
	compares := 0
	for _, c := range m.entries {
		compares++
		if matchesIndexable(m.sig, c, tuple, eqp) {
			if !c.emitCounted(part, pc, emit) {
				break
			}
		}
	}
	return compares, nil
}

func (m *memList) forEach(fn func(types.Tuple, Ref) error) error {
	for _, c := range m.entries {
		for _, p := range c.parts {
			for _, r := range p {
				if err := fn(c.consts, r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (m *memList) repartition(n int) error {
	m.nparts = n
	for _, c := range m.entries {
		c.repartition(n)
	}
	return nil
}

func (m *memList) describe() string {
	return fmt.Sprintf("linear list, %d constant(s)", len(m.entries))
}

func (m *memList) hotConstants(max int) []HotConst {
	return collectHot(max, func(fn func(*centry)) {
		for _, c := range m.entries {
			fn(c)
		}
	})
}

// --- organization 2: main-memory index ---

// memIndex uses a hash table for equality signatures, an interval skip
// list for range signatures, and degrades to a list for non-indexable
// signatures (no index can help them).
type memIndex struct {
	sig     *expr.Signature
	byKey   map[string]*centry // equality
	isl     *intervalskiplist.List
	byID    map[uint64]*centry // interval ID -> entry
	byConst map[string]*centry // encoded constant tuple -> entry (range/plain)
	plain   []*centry          // non-indexable
	nextID  uint64
	nparts  int
}

func newMemIndex(sig *expr.Signature) *memIndex {
	m := &memIndex{
		sig:     sig,
		nparts:  1,
		byID:    make(map[uint64]*centry),
		byConst: make(map[string]*centry),
	}
	switch sig.Indexability() {
	case expr.IndexEquality:
		m.byKey = make(map[string]*centry)
	case expr.IndexRange:
		m.isl = intervalskiplist.New(0x7a6e)
	}
	return m
}

func constTupleKey(consts types.Tuple) string {
	return string(types.EncodeKey(nil, consts))
}

func (m *memIndex) intervalFor(id uint64, bound types.Value) intervalskiplist.Interval {
	switch m.sig.RangeOp {
	case expr.OpGt:
		return intervalskiplist.Gt(id, bound)
	case expr.OpGe:
		return intervalskiplist.Ge(id, bound)
	case expr.OpLt:
		return intervalskiplist.Lt(id, bound)
	default:
		return intervalskiplist.Le(id, bound)
	}
}

func (m *memIndex) add(consts types.Tuple, ref Ref) error {
	switch m.sig.Indexability() {
	case expr.IndexEquality:
		key, err := constKeyFor(m.sig, consts)
		if err != nil {
			return err
		}
		c, ok := m.byKey[string(key)]
		if !ok {
			m.nextID++
			c = &centry{id: m.nextID, consts: consts.Clone(), eqKey: key, parts: make([][]Ref, m.nparts)}
			m.byKey[string(key)] = c
		}
		c.addRef(ref)
		return nil
	case expr.IndexRange:
		bound := consts[m.sig.RangeConstNum-1]
		ck := constTupleKey(consts)
		if c, ok := m.byConst[ck]; ok {
			c.addRef(ref)
			return nil
		}
		m.nextID++
		c := &centry{id: m.nextID, consts: consts.Clone(), parts: make([][]Ref, m.nparts)}
		c.addRef(ref)
		if err := m.isl.Insert(m.intervalFor(c.id, bound)); err != nil {
			return err
		}
		m.byID[c.id] = c
		m.byConst[ck] = c
		return nil
	default:
		ck := constTupleKey(consts)
		if c, ok := m.byConst[ck]; ok {
			c.addRef(ref)
			return nil
		}
		m.nextID++
		c := &centry{id: m.nextID, consts: consts.Clone(), parts: make([][]Ref, m.nparts)}
		c.addRef(ref)
		m.plain = append(m.plain, c)
		m.byConst[ck] = c
		return nil
	}
}

func (m *memIndex) remove(consts types.Tuple, exprID uint64) (bool, error) {
	switch m.sig.Indexability() {
	case expr.IndexEquality:
		key, err := constKeyFor(m.sig, consts)
		if err != nil {
			return false, err
		}
		c, ok := m.byKey[string(key)]
		if !ok || !c.removeRef(exprID) {
			return false, nil
		}
		if c.refCount() == 0 {
			delete(m.byKey, string(key))
		}
		return true, nil
	case expr.IndexRange:
		ck := constTupleKey(consts)
		c, ok := m.byConst[ck]
		if !ok || !c.removeRef(exprID) {
			return false, nil
		}
		if c.refCount() == 0 {
			bound := c.consts[m.sig.RangeConstNum-1]
			m.isl.Delete(m.intervalFor(c.id, bound))
			delete(m.byID, c.id)
			delete(m.byConst, ck)
		}
		return true, nil
	default:
		ck := constTupleKey(consts)
		c, ok := m.byConst[ck]
		if !ok || !c.removeRef(exprID) {
			return false, nil
		}
		if c.refCount() == 0 {
			for i, pc := range m.plain {
				if pc == c {
					m.plain = append(m.plain[:i], m.plain[i+1:]...)
					break
				}
			}
			delete(m.byConst, ck)
		}
		return true, nil
	}
}

func (m *memIndex) match(tuple types.Tuple, part int, pc probe, emit func(Ref) bool) (int, error) {
	switch m.sig.Indexability() {
	case expr.IndexEquality:
		eqp := eqProbeFor(m.sig, tuple)
		if c, ok := m.byKey[string(eqp)]; ok {
			c.emitCounted(part, pc, emit)
		}
		return 1, nil
	case expr.IndexRange:
		v := tuple.Get(m.sig.RangeCol)
		if v.IsNull() {
			return 0, nil
		}
		compares := 0
		m.isl.Stab(v, func(iv intervalskiplist.Interval) bool {
			compares++
			c, ok := m.byID[iv.ID]
			if !ok {
				return true
			}
			return c.emitCounted(part, pc, emit)
		})
		if compares == 0 {
			compares = 1
		}
		return compares, nil
	default:
		compares := 0
		for _, c := range m.plain {
			compares++
			if !c.emitCounted(part, pc, emit) {
				break
			}
		}
		return compares, nil
	}
}

func (m *memIndex) forEach(fn func(types.Tuple, Ref) error) error {
	visit := func(c *centry) error {
		for _, p := range c.parts {
			for _, r := range p {
				if err := fn(c.consts, r); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, c := range m.byKey {
		if err := visit(c); err != nil {
			return err
		}
	}
	for _, c := range m.byID {
		if err := visit(c); err != nil {
			return err
		}
	}
	for _, c := range m.plain {
		if err := visit(c); err != nil {
			return err
		}
	}
	return nil
}

func (m *memIndex) repartition(n int) error {
	m.nparts = n
	for _, c := range m.byKey {
		c.repartition(n)
	}
	for _, c := range m.byID {
		c.repartition(n)
	}
	for _, c := range m.plain {
		c.repartition(n)
	}
	return nil
}

func (m *memIndex) hotConstants(max int) []HotConst {
	return collectHot(max, func(fn func(*centry)) {
		for _, c := range m.byKey {
			fn(c)
		}
		for _, c := range m.byID {
			fn(c)
		}
		for _, c := range m.plain {
			fn(c)
		}
	})
}

func (m *memIndex) describe() string {
	switch m.sig.Indexability() {
	case expr.IndexEquality:
		return fmt.Sprintf("hash table, %d constant(s)", len(m.byKey))
	case expr.IndexRange:
		return fmt.Sprintf("interval skip list, %d interval(s)", len(m.byID))
	default:
		return fmt.Sprintf("non-indexable scan list, %d constant(s)", len(m.plain))
	}
}

// --- organizations 3 and 4: database constant tables ---

// tableSet stores the class in a real table, const_sig_<N>, with the
// paper's schema: exprID, triggerID, nextNetworkNode, const1..constK,
// restOfPredicate (§5.1). Organization 4 adds a clustered index on the
// indexable constant columns; organization 3 scans.
type tableSet struct {
	sig     *expr.Signature
	db      *minisql.DB
	schema  *types.Schema // data source schema, for binding rest text
	name    string
	indexed bool
	created bool
	nparts  int

	mu        sync.Mutex
	restCache map[uint64]expr.CNF
}

func newTableSet(db *minisql.DB, e *SignatureEntry, srcSchema *types.Schema, indexed bool) (*tableSet, error) {
	return &tableSet{
		sig:       e.Sig,
		db:        db,
		schema:    srcSchema,
		name:      fmt.Sprintf("const_sig_%d", e.ID),
		indexed:   indexed,
		nparts:    1,
		restCache: make(map[uint64]expr.CNF),
	}, nil
}

func constCol(i int) string { return "const" + strconv.Itoa(i+1) }

// ensureTable lazily creates const_sig_N once constant kinds are known.
func (ts *tableSet) ensureTable(consts types.Tuple) (*minisql.Table, error) {
	if ts.created {
		return ts.db.Table(ts.name)
	}
	cols := []types.Column{
		{Name: "exprid", Kind: types.KindInt},
		{Name: "triggerid", Kind: types.KindInt},
		{Name: "nextnode", Kind: types.KindInt},
		{Name: "firemask", Kind: types.KindVarchar},
		{Name: "multivar", Kind: types.KindInt},
		{Name: "gator", Kind: types.KindInt},
		{Name: "aggr", Kind: types.KindInt},
	}
	for i, v := range consts {
		kind := v.Kind()
		if kind == types.KindNull {
			kind = types.KindVarchar
		}
		cols = append(cols, types.Column{Name: constCol(i), Kind: kind})
	}
	cols = append(cols, types.Column{Name: "restofpredicate", Kind: types.KindVarchar})
	schema, err := types.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	tab, err := ts.db.CreateTable(ts.name, schema)
	if err != nil {
		return nil, err
	}
	if ts.indexed {
		var keyCols []string
		switch ts.sig.Indexability() {
		case expr.IndexEquality:
			for _, num := range ts.sig.EqConstNums {
				keyCols = append(keyCols, constCol(num-1))
			}
		case expr.IndexRange:
			keyCols = []string{constCol(ts.sig.RangeConstNum - 1)}
		}
		if len(keyCols) > 0 {
			if _, err := tab.CreateIndex(ts.name+"_cidx", keyCols...); err != nil {
				return nil, err
			}
		}
	}
	ts.created = true
	return tab, nil
}

func (ts *tableSet) add(consts types.Tuple, ref Ref) error {
	tab, err := ts.ensureTable(consts)
	if err != nil {
		return err
	}
	mv, gt, ag := int64(0), int64(0), int64(0)
	if ref.MultiVar {
		mv = 1
	}
	if ref.Gator {
		gt = 1
	}
	if ref.Aggregate {
		ag = 1
	}
	row := make(types.Tuple, 0, 8+len(consts))
	row = append(row,
		types.NewInt(int64(ref.ExprID)),
		types.NewInt(int64(ref.TriggerID)),
		types.NewInt(int64(ref.NextNode)),
		types.NewString(ref.FireMask.Encode()),
		types.NewInt(mv),
		types.NewInt(gt),
		types.NewInt(ag),
	)
	row = append(row, consts...)
	row = append(row, types.NewString(restToText(ref.Rest)))
	_, err = tab.Insert(row)
	return err
}

func (ts *tableSet) remove(consts types.Tuple, exprID uint64) (bool, error) {
	if !ts.created {
		return false, nil
	}
	res, err := ts.db.ExecStmt(&parser.Delete{
		Table: ts.name,
		Where: expr.Cmp(expr.OpEq, expr.Col("", "exprid"), expr.Int(int64(exprID))),
	})
	if err != nil {
		return false, err
	}
	ts.mu.Lock()
	delete(ts.restCache, exprID)
	ts.mu.Unlock()
	return res.Affected > 0, nil
}

// whereFor builds the WHERE clause probing the constant table for a
// token tuple ("queried as needed, using the SQL query processor").
func (ts *tableSet) whereFor(tuple types.Tuple) expr.Node {
	switch ts.sig.Indexability() {
	case expr.IndexEquality:
		var where expr.Node
		for i, col := range ts.sig.EqCols {
			num := ts.sig.EqConstNums[i]
			atom := expr.Cmp(expr.OpEq,
				expr.Col("", constCol(num-1)),
				expr.Lit(tuple.Get(col)))
			where = expr.And(where, atom)
		}
		return where
	case expr.IndexRange:
		v := tuple.Get(ts.sig.RangeCol)
		// Predicate value OP constant holds iff constant FLIP(OP) value.
		var op expr.Op
		switch ts.sig.RangeOp {
		case expr.OpGt:
			op = expr.OpLt
		case expr.OpGe:
			op = expr.OpLe
		case expr.OpLt:
			op = expr.OpGt
		default:
			op = expr.OpGe
		}
		return expr.Cmp(op, expr.Col("", constCol(ts.sig.RangeConstNum-1)), expr.Lit(v))
	default:
		return nil
	}
}

func (ts *tableSet) match(tuple types.Tuple, part int, _ probe, emit func(Ref) bool) (int, error) {
	if !ts.created {
		return 0, nil
	}
	sel := &parser.Select{
		Items: []parser.SelectItem{{Star: true}},
		Table: ts.name,
		Where: ts.whereFor(tuple),
	}
	res, err := ts.db.ExecStmt(sel)
	if err != nil {
		return 0, err
	}
	compares := len(res.Rows)
	if res.IndexUsed == "" {
		// Scanned: the whole class was compared.
		if tab, terr := ts.db.Table(ts.name); terr == nil {
			compares = tab.Count()
		}
	}
	for _, row := range res.Rows {
		ref, derr := ts.refFromRow(row)
		if derr != nil {
			return compares, derr
		}
		if part >= 0 && int(ref.ExprID)%ts.nparts != part%ts.nparts {
			continue
		}
		if !emit(ref) {
			break
		}
	}
	return compares, nil
}

func (ts *tableSet) refFromRow(row types.Tuple) (Ref, error) {
	mask, err := DecodeEventMask(row[3].Str())
	if err != nil {
		return Ref{}, err
	}
	ref := Ref{
		ExprID:    uint64(row[0].Int()),
		TriggerID: uint64(row[1].Int()),
		NextNode:  int32(row[2].Int()),
		FireMask:  mask,
		MultiVar:  row[4].Int() != 0,
		Gator:     row[5].Int() != 0,
		Aggregate: row[6].Int() != 0,
	}
	restText := row[len(row)-1].Str()
	if restText == "" {
		return ref, nil
	}
	ts.mu.Lock()
	cached, ok := ts.restCache[ref.ExprID]
	ts.mu.Unlock()
	if ok {
		ref.Rest = cached
		return ref, nil
	}
	rest, err := restFromText(restText, ts.schema)
	if err != nil {
		return ref, fmt.Errorf("predindex: bad stored rest predicate %q: %w", restText, err)
	}
	ts.mu.Lock()
	ts.restCache[ref.ExprID] = rest
	ts.mu.Unlock()
	ref.Rest = rest
	return ref, nil
}

func (ts *tableSet) forEach(fn func(types.Tuple, Ref) error) error {
	if !ts.created {
		return nil
	}
	tab, err := ts.db.Table(ts.name)
	if err != nil {
		return err
	}
	var ferr error
	serr := tab.Scan(func(_ storage.RID, row types.Tuple) bool {
		ref, derr := ts.refFromRow(row)
		if derr != nil {
			ferr = derr
			return false
		}
		consts := row[7 : len(row)-1].Clone()
		if err := fn(consts, ref); err != nil {
			ferr = err
			return false
		}
		return true
	})
	if serr != nil {
		return serr
	}
	return ferr
}

func (ts *tableSet) repartition(n int) error {
	ts.nparts = n
	return nil
}

func (ts *tableSet) hotConstants(int) []HotConst { return nil }

func (ts *tableSet) describe() string {
	if ts.indexed {
		return fmt.Sprintf("table %s with clustered index %s_cidx", ts.name, ts.name)
	}
	return fmt.Sprintf("table %s, sequential scan", ts.name)
}

// restToText serializes an instantiated rest-of-predicate for the
// restOfPredicate column. Column references are stripped of their
// tuple-variable qualifier so the text re-binds against the data source
// schema alone.
func restToText(rest expr.CNF) string {
	if len(rest.Clauses) == 0 {
		return ""
	}
	node := expr.Clone(rest.Node())
	expr.Walk(node, func(n expr.Node) bool {
		if c, ok := n.(*expr.ColumnRef); ok {
			c.Var = ""
		}
		return true
	})
	return node.String()
}

// restFromText parses and binds a stored rest predicate.
func restFromText(text string, schema *types.Schema) (expr.CNF, error) {
	node, err := parser.ParseExpr(text)
	if err != nil {
		return expr.CNF{}, err
	}
	b := &expr.Binder{
		VarIndex:   map[string]int{},
		DefaultVar: 0,
		ColumnIndex: func(_ int, col string) int {
			if schema == nil {
				return -1
			}
			return schema.ColumnIndex(col)
		},
	}
	// Old-image refs keep a var name of "old" textual form; strip any
	// qualifier uniformly.
	expr.Walk(node, func(n expr.Node) bool {
		if c, ok := n.(*expr.ColumnRef); ok {
			c.Var = ""
		}
		return true
	})
	if err := b.Bind(node); err != nil {
		return expr.CNF{}, err
	}
	return expr.ToCNF(node)
}
