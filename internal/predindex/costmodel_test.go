package predindex

import (
	"fmt"
	"math"
	"testing"
)

func TestCostModelShapes(t *testing.T) {
	m := DefaultCostModel
	// List is linear, index flat.
	if m.ProbeCost(OrgMemoryList, 10) >= m.ProbeCost(OrgMemoryList, 10000) {
		t.Error("list cost should grow")
	}
	if m.ProbeCost(OrgMemoryIndex, 10) != m.ProbeCost(OrgMemoryIndex, 10000) {
		t.Error("index probe should be size-independent")
	}
	// Non-indexed table is linear; indexed table logarithmic.
	lin := m.ProbeCost(OrgTable, 100000) / m.ProbeCost(OrgTable, 1000)
	logn := m.ProbeCost(OrgIndexedTable, 100000) / m.ProbeCost(OrgIndexedTable, 1000)
	if lin < 10 {
		t.Errorf("table scan growth %f too shallow", lin)
	}
	if logn > 3 {
		t.Errorf("indexed table growth %f too steep", logn)
	}
	if !math.IsInf(m.ProbeCost(OrgAuto, 1), 1) {
		t.Error("auto has no probe cost")
	}
	if m.ProbeCost(OrgMemoryList, 0) != m.ProbeCost(OrgMemoryList, 1) {
		t.Error("size clamps at 1")
	}
}

func TestCostModelChoose(t *testing.T) {
	m := DefaultCostModel
	if got := m.Choose(4); got != OrgMemoryList {
		t.Errorf("tiny class -> %s", got)
	}
	if got := m.Choose(5000); got != OrgMemoryIndex {
		t.Errorf("medium class -> %s", got)
	}
	// Over budget: 64MB / 256B = 262144 entries.
	if got := m.Choose(300000); got != OrgIndexedTable {
		t.Errorf("huge class -> %s", got)
	}
	// With a tiny budget everything large goes to tables.
	small := m
	small.MemoryBudget = 1024
	if got := small.Choose(100); got != OrgIndexedTable {
		t.Errorf("over-budget class -> %s", got)
	}
	// Unlimited budget never chooses tables.
	unlimited := m
	unlimited.MemoryBudget = 0
	if got := unlimited.Choose(10_000_000); got != OrgMemoryIndex {
		t.Errorf("unlimited budget -> %s", got)
	}
	// Degenerate: indexed table worse than scan for size 1 with odd
	// constants still returns a table org.
	weird := m
	weird.MemoryBudget = 1
	weird.IndexedTableBase = 1e9
	if got := weird.Choose(10); got != OrgTable {
		t.Errorf("cheap scan should win: %s", got)
	}
}

func TestCostModelPolicy(t *testing.T) {
	p := DefaultCostModel.Policy()
	// Crossover (600-500)/11 ≈ 9.
	if p.ListMax < 4 || p.ListMax > 32 {
		t.Errorf("ListMax = %d", p.ListMax)
	}
	if p.MemMax != int(DefaultCostModel.MemoryBudget)/DefaultCostModel.BytesPerEntry {
		t.Errorf("MemMax = %d", p.MemMax)
	}
	// Degenerate models still yield a usable policy.
	var zero CostModel
	pz := zero.Policy()
	if pz.ListMax < 1 || pz.MemMax <= pz.ListMax {
		t.Errorf("zero-model policy = %+v", pz)
	}
}

func TestWithCostModelDrivesAdaptiveIndex(t *testing.T) {
	m := DefaultCostModel
	m.MemoryBudget = 40 * int64(m.BytesPerEntry) // force tables at 41+
	ix := New(WithCostModel(m))
	ix.AddSource(empSrc, empSchema)
	// No DB configured: classes cap at mm-index instead of tables.
	var entry *SignatureEntry
	for i := uint64(1); i <= 60; i++ {
		sig, consts := buildSig(t, fmt.Sprintf("emp.name = 'c%03d'", i))
		e, err := ix.AddPredicate(empSrc, EventMask{AnyOp: true}, sig, consts, refFor(t, sig, consts, i, i))
		if err != nil {
			t.Fatal(err)
		}
		entry = e
	}
	if entry.Organization() != OrgMemoryIndex {
		t.Errorf("org without DB = %s", entry.Organization())
	}
	// Matching still exact.
	ms := matchAll(t, ix, insertTok("c042", 1, "d"))
	if len(ms) != 1 || ms[0].TriggerID != 42 {
		t.Errorf("matches = %+v", ms)
	}
}
