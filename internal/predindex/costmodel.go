package predindex

import "math"

// CostModel is the organization-selection cost model the paper defers
// to its long version ("A cost model that illustrates the tradeoffs is
// presented in [Hans98b]", §5.2). It estimates the per-probe cost of
// each constant-set organization as a function of equivalence-class
// size and derives the size thresholds at which the cheaper structure
// changes, subject to a main-memory budget that forces large classes
// onto disk-backed tables.
//
// The default constants are calibrated from this repository's E2
// measurements (EXPERIMENTS.md); they matter only through the
// crossovers they imply, so order-of-magnitude accuracy suffices.
type CostModel struct {
	// ListBase and ListPerEntry model the main-memory list:
	// cost = ListBase + ListPerEntry * size.
	ListBase, ListPerEntry float64
	// IndexProbe models the main-memory hash / ordered index:
	// cost = IndexProbe (size-independent for point probes).
	IndexProbe float64
	// TableBase and TablePerEntry model the non-indexed table scan.
	TableBase, TablePerEntry float64
	// IndexedTableBase and IndexedTableLog model the clustered-index
	// table: cost = IndexedTableBase + IndexedTableLog * log2(size).
	IndexedTableBase, IndexedTableLog float64

	// BytesPerEntry estimates the main-memory footprint of one
	// expression instance (constants + ref + index overhead).
	BytesPerEntry int
	// MemoryBudget bounds the total main memory a single equivalence
	// class may consume before it must move to a table organization
	// (0 = unlimited, table organizations never chosen).
	MemoryBudget int64
}

// DefaultCostModel is calibrated from the E2 sweep on the reference
// machine: list ≈ 0.5µs + 11ns/entry, hash probe ≈ 0.6µs, table scan ≈
// 8µs + 320ns/entry, indexed table ≈ 2µs + 0.3µs·log2(n).
var DefaultCostModel = CostModel{
	ListBase:         500,
	ListPerEntry:     11,
	IndexProbe:       600,
	TableBase:        8000,
	TablePerEntry:    320,
	IndexedTableBase: 2000,
	IndexedTableLog:  300,
	BytesPerEntry:    256,
	MemoryBudget:     64 << 20, // the paper's 64MB sizing example
}

// ProbeCost estimates one probe against a class of the given size under
// the given organization, in nanoseconds.
func (m CostModel) ProbeCost(org Organization, size int) float64 {
	if size < 1 {
		size = 1
	}
	switch org {
	case OrgMemoryList:
		return m.ListBase + m.ListPerEntry*float64(size)
	case OrgMemoryIndex:
		return m.IndexProbe
	case OrgTable:
		return m.TableBase + m.TablePerEntry*float64(size)
	case OrgIndexedTable:
		return m.IndexedTableBase + m.IndexedTableLog*math.Log2(float64(size)+1)
	default:
		return math.Inf(1)
	}
}

// fitsMemory reports whether a class of the given size may stay in main
// memory under the budget.
func (m CostModel) fitsMemory(size int) bool {
	if m.MemoryBudget <= 0 {
		return true
	}
	return int64(size)*int64(m.BytesPerEntry) <= m.MemoryBudget
}

// Choose returns the cheapest admissible organization for a class of
// the given size: the cheaper of the main-memory structures while the
// class fits the budget, else the cheaper of the table structures
// (§5.2: "Strategies 3 and 4 must be implemented to make it feasible to
// process very large numbers of triggers ... Strategies 1 and 2 are
// also required in order to make the common case fast").
func (m CostModel) Choose(size int) Organization {
	if m.fitsMemory(size) {
		if m.ProbeCost(OrgMemoryList, size) <= m.ProbeCost(OrgMemoryIndex, size) {
			return OrgMemoryList
		}
		return OrgMemoryIndex
	}
	if m.ProbeCost(OrgTable, size) <= m.ProbeCost(OrgIndexedTable, size) {
		return OrgTable
	}
	return OrgIndexedTable
}

// Policy derives the adaptive thresholds the index uses at run time:
// ListMax is the list/index probe-cost crossover and MemMax the largest
// class the memory budget admits.
func (m CostModel) Policy() Policy {
	// list cost = index cost  =>  size = (IndexProbe - ListBase) / slope
	listMax := 0
	if m.ListPerEntry > 0 {
		listMax = int((m.IndexProbe - m.ListBase) / m.ListPerEntry)
	}
	if listMax < 1 {
		listMax = 1
	}
	memMax := int(math.MaxInt32)
	if m.MemoryBudget > 0 && m.BytesPerEntry > 0 {
		memMax = int(m.MemoryBudget / int64(m.BytesPerEntry))
	}
	if memMax <= listMax {
		memMax = listMax + 1
	}
	return Policy{ListMax: listMax, MemMax: memMax}
}

// WithCostModel configures the index's adaptive thresholds from a cost
// model instead of raw cutoffs. The model is retained so organization-
// transition events and snapshots can report its per-probe estimates.
func WithCostModel(m CostModel) Option {
	return func(ix *Index) {
		ix.policy = m.Policy()
		ix.costModel = &m
	}
}
