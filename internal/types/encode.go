package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary tuple encoding used by the storage engine. Layout:
//
//	uint16 column count
//	per column: 1 byte kind tag, then payload:
//	  null     -> nothing
//	  int      -> 8-byte little-endian two's complement
//	  float    -> 8-byte little-endian IEEE-754 bits
//	  char/varchar -> uint32 length + raw bytes
//
// The encoding is self-describing so heap records can be decoded without
// consulting the schema (important for the update-descriptor queue table,
// whose payload schema varies by data source).

// EncodeTuple appends the binary encoding of t to dst and returns the
// extended slice.
func EncodeTuple(dst []byte, t Tuple) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint16(n[:2], uint16(len(t)))
	dst = append(dst, n[0], n[1])
	for _, v := range t {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindNull:
		case KindInt:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v.i))
			dst = append(dst, b[:]...)
		case KindFloat:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.f))
			dst = append(dst, b[:]...)
		case KindChar, KindVarchar:
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(len(v.s)))
			dst = append(dst, b[:]...)
			dst = append(dst, v.s...)
		}
	}
	return dst
}

// DecodeTuple parses a tuple from the front of buf, returning the tuple
// and the number of bytes consumed.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("types: tuple header truncated (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint16(buf[:2]))
	pos := 2
	t := make(Tuple, 0, n)
	for c := 0; c < n; c++ {
		if pos >= len(buf) {
			return nil, 0, fmt.Errorf("types: tuple truncated at column %d", c)
		}
		kind := Kind(buf[pos])
		pos++
		switch kind {
		case KindNull:
			t = append(t, Null())
		case KindInt:
			if pos+8 > len(buf) {
				return nil, 0, fmt.Errorf("types: int payload truncated at column %d", c)
			}
			t = append(t, NewInt(int64(binary.LittleEndian.Uint64(buf[pos:]))))
			pos += 8
		case KindFloat:
			if pos+8 > len(buf) {
				return nil, 0, fmt.Errorf("types: float payload truncated at column %d", c)
			}
			t = append(t, NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))))
			pos += 8
		case KindChar, KindVarchar:
			if pos+4 > len(buf) {
				return nil, 0, fmt.Errorf("types: string header truncated at column %d", c)
			}
			l := int(binary.LittleEndian.Uint32(buf[pos:]))
			pos += 4
			if pos+l > len(buf) {
				return nil, 0, fmt.Errorf("types: string payload truncated at column %d", c)
			}
			s := string(buf[pos : pos+l])
			pos += l
			if kind == KindChar {
				t = append(t, NewChar(s))
			} else {
				t = append(t, NewString(s))
			}
		default:
			return nil, 0, fmt.Errorf("types: unknown kind tag %d at column %d", kind, c)
		}
	}
	return t, pos, nil
}

// EncodedSize returns the number of bytes EncodeTuple will emit for t.
func EncodedSize(t Tuple) int {
	n := 2
	for _, v := range t {
		n++
		switch v.kind {
		case KindInt, KindFloat:
			n += 8
		case KindChar, KindVarchar:
			n += 4 + len(v.s)
		}
	}
	return n
}

// EncodeKey encodes a tuple as an order-preserving byte key: comparing
// two encoded keys with bytes.Compare yields the same order as
// comparing the tuples column-by-column with Compare. Used for B+tree
// composite keys over constant tables (§5.1: clustered index on
// [const1..constK]).
func EncodeKey(dst []byte, t Tuple) []byte {
	for _, v := range t {
		switch v.kind {
		case KindNull:
			dst = append(dst, 0x00)
		case KindInt, KindFloat:
			f, _ := v.AsFloat()
			bits := math.Float64bits(f)
			// Flip so that the byte order matches numeric order:
			// negative floats reverse, positives get the sign bit set.
			if bits&(1<<63) != 0 {
				bits = ^bits
			} else {
				bits |= 1 << 63
			}
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], bits)
			dst = append(dst, 0x01)
			dst = append(dst, b[:]...)
		case KindChar, KindVarchar:
			dst = append(dst, 0x02)
			// Escape 0x00 as 0x00 0xFF so the 0x00 0x00 terminator
			// cannot appear inside the payload, keeping order.
			for i := 0; i < len(v.s); i++ {
				c := v.s[i]
				if c == 0x00 {
					dst = append(dst, 0x00, 0xFF)
				} else {
					dst = append(dst, c)
				}
			}
			dst = append(dst, 0x00, 0x00)
		}
	}
	return dst
}
