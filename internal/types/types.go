// Package types defines the value system shared by every TriggerMan
// subsystem: typed scalar values, schemas, and tuples.
//
// The paper's current implementation "supports char, varchar, integer,
// and float data types" (§3); we implement exactly those four plus an
// explicit NULL, with total ordering, hashing and a compact binary
// encoding used by the storage engine.
package types

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the data types supported by the system.
type Kind uint8

const (
	// KindNull is the type of the SQL NULL value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 float.
	KindFloat
	// KindChar is a fixed-width character string (padded semantics are
	// handled at the schema layer; the value itself is a Go string).
	KindChar
	// KindVarchar is a variable-width character string.
	KindVarchar
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "integer"
	case KindFloat:
		return "float"
	case KindChar:
		return "char"
	case KindVarchar:
		return "varchar"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindFromName maps a type name from the command language to a Kind.
// It accepts the spellings int, integer, float, double, real, char,
// character, varchar, text (case-insensitive).
func KindFromName(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "int", "integer", "bigint", "smallint":
		return KindInt, nil
	case "float", "double", "real":
		return KindFloat, nil
	case "char", "character":
		return KindChar, nil
	case "varchar", "text", "string":
		return KindVarchar, nil
	default:
		return KindNull, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Value is a typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a varchar value.
func NewString(v string) Value { return Value{kind: KindVarchar, s: v} }

// NewChar returns a fixed-width char value.
func NewChar(v string) Value { return Value{kind: KindChar, s: v} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if the value is not an
// integer; callers must check Kind first or use AsFloat for numerics.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("types: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the float payload, panicking on non-floats.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic("types: Float() on " + v.kind.String())
	}
	return v.f
}

// Str returns the string payload, panicking on non-strings.
func (v Value) Str() string {
	if v.kind != KindChar && v.kind != KindVarchar {
		panic("types: Str() on " + v.kind.String())
	}
	return v.s
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// IsString reports whether the value is a char or varchar.
func (v Value) IsString() bool { return v.kind == KindChar || v.kind == KindVarchar }

// AsFloat converts a numeric value to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// String renders the value for display and for canonical signature text.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindChar, KindVarchar:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	default:
		return "?"
	}
}

// Compare totally orders values. NULL sorts before everything; numerics
// compare numerically across int/float; strings compare byte-wise.
// Comparing a numeric with a string orders by kind to stay total.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			}
			return 0
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.IsString() && b.IsString() {
		return strings.Compare(a.s, b.s)
	}
	// Cross-kind: order numerics before strings.
	an, bn := a.IsNumeric(), b.IsNumeric()
	switch {
	case an && !bn:
		return -1
	case !an && bn:
		return 1
	}
	return 0
}

// Equal reports value equality under Compare semantics (NULL == NULL
// here; SQL three-valued logic is applied at the expression layer).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a stable hash of the value, with int/float coalesced so
// that values that compare equal hash equal.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch v.kind {
	case KindNull:
		h.Write([]byte{0})
	case KindInt, KindFloat:
		f, _ := v.AsFloat()
		if v.kind == KindInt && float64(v.i) != f {
			// unreachable; defensive
			f = float64(v.i)
		}
		var buf [9]byte
		buf[0] = 1
		binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(f))
		h.Write(buf[:])
	case KindChar, KindVarchar:
		h.Write([]byte{2})
		h.Write([]byte(v.s))
	}
	return h.Sum64()
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema and its name lookup table. Column names are
// case-insensitive; duplicates are rejected.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("types: duplicate column %q", c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if s.byName == nil {
		return -1
	}
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Columns) }

// String renders the schema as (name type, ...).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is a row of values positionally matching a schema.
type Tuple []Value

// Get returns the i'th value, or NULL when out of range. Out-of-range
// access arises legitimately when an update descriptor carries a
// narrower projection than the schema.
func (t Tuple) Get(i int) Value {
	if i < 0 || i >= len(t) {
		return Null()
	}
	return t[i]
}

// Clone returns a copy of the tuple (values are immutable, so a shallow
// copy of the slice suffices).
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Hash returns a stable hash of the whole tuple.
func (t Tuple) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, v := range t {
		h ^= v.Hash()
		h *= 1099511628211
	}
	return h
}

// Equal reports whether two tuples are value-equal.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !Equal(t[i], o[i]) {
			return false
		}
	}
	return true
}
