package types

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindInt: "integer", KindFloat: "float",
		KindChar: "char", KindVarchar: "varchar",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFromName(t *testing.T) {
	for name, want := range map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "float": KindFloat,
		"DOUBLE": KindFloat, "char": KindChar, "VarChar": KindVarchar,
		"text": KindVarchar,
	} {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := KindFromName("blob"); err == nil {
		t.Error("KindFromName(blob) should fail")
	}
}

func TestValueAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() not null")
	}
	if NewInt(7).Int() != 7 {
		t.Error("Int roundtrip")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float roundtrip")
	}
	if NewString("x").Str() != "x" {
		t.Error("Str roundtrip")
	}
	if NewChar("c").Kind() != KindChar {
		t.Error("char kind")
	}
	if !NewInt(1).IsNumeric() || !NewFloat(1).IsNumeric() || NewString("a").IsNumeric() {
		t.Error("IsNumeric")
	}
	if !NewString("a").IsString() || NewInt(1).IsString() {
		t.Error("IsString")
	}
}

func TestValuePanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int() on string should panic")
		}
	}()
	_ = NewString("a").Int()
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Errorf("AsFloat(int 3) = %v, %v", f, ok)
	}
	if f, ok := NewFloat(1.5).AsFloat(); !ok || f != 1.5 {
		t.Errorf("AsFloat(1.5) = %v, %v", f, ok)
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("AsFloat(string) should fail")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewChar("b"), NewString("b"), 0},
		{Null(), NewInt(0), -1},
		{NewInt(0), Null(), 1},
		{Null(), Null(), 0},
		{NewInt(1), NewString("1"), -1}, // numerics before strings
		{NewString("1"), NewInt(1), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualAndHashConsistency(t *testing.T) {
	// int 2 and float 2.0 compare equal and must hash equal.
	if !Equal(NewInt(2), NewFloat(2.0)) {
		t.Fatal("int 2 != float 2.0")
	}
	if NewInt(2).Hash() != NewFloat(2.0).Hash() {
		t.Error("hash(int 2) != hash(float 2.0)")
	}
	if NewChar("x").Hash() != NewString("x").Hash() {
		t.Error("hash(char x) != hash(varchar x)")
	}
	if NewInt(1).Hash() == NewInt(2).Hash() {
		t.Error("hash(1) == hash(2): suspicious")
	}
}

func TestValueString(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{NewInt(-5), "-5"},
		{NewFloat(1.5), "1.5"},
		{NewString("it's"), "'it''s'"},
	} {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSchema(t *testing.T) {
	s, err := NewSchema(Column{"id", KindInt}, Column{"Name", KindVarchar})
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 {
		t.Errorf("arity = %d", s.Arity())
	}
	if s.ColumnIndex("name") != 1 || s.ColumnIndex("ID") != 0 {
		t.Error("case-insensitive lookup failed")
	}
	if s.ColumnIndex("missing") != -1 {
		t.Error("missing column should be -1")
	}
	if _, err := NewSchema(Column{"a", KindInt}, Column{"A", KindInt}); err == nil {
		t.Error("duplicate column should fail")
	}
	want := "(id integer, Name varchar)"
	if s.String() != want {
		t.Errorf("String() = %q, want %q", s.String(), want)
	}
}

func TestSchemaZeroValue(t *testing.T) {
	var s Schema
	if s.ColumnIndex("x") != -1 {
		t.Error("zero schema lookup should be -1")
	}
}

func TestTupleBasics(t *testing.T) {
	tu := Tuple{NewInt(1), NewString("a")}
	if !Equal(tu.Get(0), NewInt(1)) {
		t.Error("Get(0)")
	}
	if !tu.Get(5).IsNull() || !tu.Get(-1).IsNull() {
		t.Error("out-of-range Get should be NULL")
	}
	cl := tu.Clone()
	if !tu.Equal(cl) {
		t.Error("clone not equal")
	}
	cl[0] = NewInt(9)
	if tu.Equal(cl) {
		t.Error("clone aliases original")
	}
	if tu.Equal(Tuple{NewInt(1)}) {
		t.Error("length mismatch should be unequal")
	}
	if Tuple(nil).Clone() != nil {
		t.Error("nil clone should be nil")
	}
	if got := tu.String(); got != "(1, 'a')" {
		t.Errorf("String() = %q", got)
	}
}

func TestEncodeDecodeTuple(t *testing.T) {
	cases := []Tuple{
		{},
		{Null()},
		{NewInt(42), NewFloat(-1.25), NewString("hello"), NewChar("pad"), Null()},
		{NewString("")},
		{NewInt(math.MaxInt64), NewInt(math.MinInt64)},
	}
	for _, tu := range cases {
		enc := EncodeTuple(nil, tu)
		if len(enc) != EncodedSize(tu) {
			t.Errorf("EncodedSize(%v) = %d, actual %d", tu, EncodedSize(tu), len(enc))
		}
		dec, n, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", tu, err)
		}
		if n != len(enc) {
			t.Errorf("consumed %d of %d", n, len(enc))
		}
		if !tu.Equal(dec) {
			t.Errorf("roundtrip %v -> %v", tu, dec)
		}
		// char/varchar distinction must survive.
		for i := range tu {
			if tu[i].Kind() != dec[i].Kind() {
				t.Errorf("kind changed at %d: %v -> %v", i, tu[i].Kind(), dec[i].Kind())
			}
		}
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	enc := EncodeTuple(nil, Tuple{NewInt(1), NewString("abc")})
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeTuple(enc[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	bad := []byte{1, 0, 99} // one column, bogus kind tag
	if _, _, err := DecodeTuple(bad); err == nil {
		t.Error("bogus kind tag not detected")
	}
}

func TestEncodeKeyOrderPreserving(t *testing.T) {
	vals := []Value{
		Null(), NewFloat(math.Inf(-1)), NewInt(-1000), NewFloat(-0.5),
		NewInt(0), NewFloat(0.5), NewInt(7), NewFloat(7.5), NewInt(1000),
		NewFloat(math.Inf(1)),
		NewString(""), NewString("a"), NewString("a\x00b"), NewString("ab"),
		NewString("b"),
	}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			ka := EncodeKey(nil, Tuple{vals[i]})
			kb := EncodeKey(nil, Tuple{vals[j]})
			want := Compare(vals[i], vals[j])
			got := bytes.Compare(ka, kb)
			if sign(got) != sign(want) {
				t.Errorf("key order (%v, %v): bytes %d, values %d", vals[i], vals[j], got, want)
			}
		}
	}
}

func TestEncodeKeyComposite(t *testing.T) {
	// ("a", 2) must sort before ("ab", 1): first column decides.
	k1 := EncodeKey(nil, Tuple{NewString("a"), NewInt(2)})
	k2 := EncodeKey(nil, Tuple{NewString("ab"), NewInt(1)})
	if bytes.Compare(k1, k2) >= 0 {
		t.Error("composite key order broken by string terminator")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

// Property: tuple encode/decode roundtrips for arbitrary int/float/string
// mixes.
func TestQuickTupleRoundtrip(t *testing.T) {
	f := func(ints []int64, floats []float64, strs []string) bool {
		var tu Tuple
		for _, v := range ints {
			tu = append(tu, NewInt(v))
		}
		for _, v := range floats {
			if math.IsNaN(v) {
				v = 0 // NaN breaks Compare reflexivity by design; skip
			}
			tu = append(tu, NewFloat(v))
		}
		for _, v := range strs {
			tu = append(tu, NewString(v))
		}
		if len(tu) > 65535 {
			return true
		}
		enc := EncodeTuple(nil, tu)
		dec, n, err := DecodeTuple(enc)
		return err == nil && n == len(enc) && tu.Equal(dec)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EncodeKey ordering matches Compare ordering for int pairs.
func TestQuickKeyOrderInts(t *testing.T) {
	f := func(a, b int64) bool {
		ka := EncodeKey(nil, Tuple{NewInt(a)})
		kb := EncodeKey(nil, Tuple{NewInt(b)})
		return sign(bytes.Compare(ka, kb)) == sign(Compare(NewInt(a), NewInt(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EncodeKey ordering matches Compare ordering for string pairs.
func TestQuickKeyOrderStrings(t *testing.T) {
	f := func(a, b string) bool {
		ka := EncodeKey(nil, Tuple{NewString(a)})
		kb := EncodeKey(nil, Tuple{NewString(b)})
		return sign(bytes.Compare(ka, kb)) == sign(Compare(NewString(a), NewString(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sorting values by Compare then encoding yields sorted keys.
func TestQuickSortConsistency(t *testing.T) {
	f := func(xs []int64) bool {
		vals := make([]Value, len(xs))
		for i, x := range xs {
			vals[i] = NewInt(x)
		}
		sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
		for i := 1; i < len(vals); i++ {
			ka := EncodeKey(nil, Tuple{vals[i-1]})
			kb := EncodeKey(nil, Tuple{vals[i]})
			if bytes.Compare(ka, kb) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleHash(t *testing.T) {
	a := Tuple{NewInt(1), NewString("x")}
	b := Tuple{NewInt(1), NewString("x")}
	c := Tuple{NewString("x"), NewInt(1)}
	if a.Hash() != b.Hash() {
		t.Error("equal tuples hash differently")
	}
	if a.Hash() == c.Hash() {
		t.Error("order-insensitive hash: suspicious")
	}
}

func TestDecodeTupleNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 50000; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %x: %v", buf, r)
				}
			}()
			DecodeTuple(buf)
		}()
	}
}
