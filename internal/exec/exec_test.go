package exec

import (
	"testing"

	"triggerman/internal/event"
	"triggerman/internal/expr"
	"triggerman/internal/minisql"
	"triggerman/internal/parser"
	"triggerman/internal/storage"
	"triggerman/internal/types"
)

var empSchema = types.MustSchema(
	types.Column{Name: "name", Kind: types.KindVarchar},
	types.Column{Name: "salary", Kind: types.KindInt},
)

func binding(name string, salary int64, oldSalary int64) Binding {
	b := Binding{
		VarIndex: map[string]int{"emp": 0},
		Tuples:   []types.Tuple{{types.NewString(name), types.NewInt(salary)}},
		Olds:     []types.Tuple{{types.NewString(name), types.NewInt(oldSalary)}},
	}
	return b
}

func schemaOf(int) *types.Schema { return empSchema }

func parseAction(t *testing.T, doClause string) parser.Action {
	t.Helper()
	st, err := parser.Parse("create trigger x from emp " + doClause)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*parser.CreateTrigger).Do
}

func execDB(t *testing.T) *minisql.DB {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMem(), 64)
	db, err := minisql.Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("emp", empSchema); err != nil {
		t.Fatal(err)
	}
	db.Exec("insert into emp values ('Fred', 100)")
	return db
}

func TestExecSQLMacroSubstitution(t *testing.T) {
	db := execDB(t)
	e := &Executor{DB: db}
	act := parseAction(t, `do execSQL 'update emp set salary=:NEW.emp.salary where emp.name=''Fred'''`)
	if err := e.Execute(1, act, binding("Bob", 777, 100), schemaOf); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("select salary from emp where name = 'Fred'")
	if res.Rows[0][0].Int() != 777 {
		t.Errorf("Fred = %v", res.Rows)
	}
}

func TestExecSQLOldReference(t *testing.T) {
	db := execDB(t)
	e := &Executor{DB: db}
	act := parseAction(t, `do execSQL 'insert into emp values (:OLD.emp.name, :OLD.emp.salary)'`)
	if err := e.Execute(1, act, binding("Ada", 900, 450), schemaOf); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("select salary from emp where name = 'Ada'")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 450 {
		t.Errorf(":OLD rows = %v", res.Rows)
	}
}

func TestExecSQLShortParamForm(t *testing.T) {
	// :NEW.salary without the variable qualifier binds when the trigger
	// has a single tuple variable.
	db := execDB(t)
	e := &Executor{DB: db}
	act := parseAction(t, `do execSQL 'insert into emp values (''copy'', :NEW.salary)'`)
	if err := e.Execute(1, act, binding("Bob", 123, 0), schemaOf); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("select salary from emp where name = 'copy'")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 123 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestRaiseEventAction(t *testing.T) {
	bus := event.NewBus()
	defer bus.Close()
	sub, _ := bus.Subscribe("Hot", 4)
	e := &Executor{Bus: bus}
	act := parseAction(t, `do raise event Hot(emp.name, emp.salary * 2)`)
	if err := e.Execute(9, act, binding("Ada", 50, 0), schemaOf); err != nil {
		t.Fatal(err)
	}
	n := <-sub.C()
	if n.TriggerID != 9 || n.Args[0].Str() != "Ada" || n.Args[1].Int() != 100 {
		t.Errorf("notification = %+v", n)
	}
}

func TestRaiseEventNoArgs(t *testing.T) {
	bus := event.NewBus()
	defer bus.Close()
	sub, _ := bus.Subscribe("Ping", 1)
	e := &Executor{Bus: bus}
	act := parseAction(t, `do raise event Ping()`)
	if err := e.Execute(1, act, binding("x", 1, 0), schemaOf); err != nil {
		t.Fatal(err)
	}
	if n := <-sub.C(); len(n.Args) != 0 {
		t.Errorf("args = %v", n.Args)
	}
}

func TestExecuteConfigErrors(t *testing.T) {
	e := &Executor{}
	if err := e.Execute(1, parseAction(t, `do execSQL 'select * from emp'`), binding("x", 1, 0), schemaOf); err == nil {
		t.Error("execSQL without DB should fail")
	}
	if err := e.Execute(1, parseAction(t, `do raise event E()`), binding("x", 1, 0), schemaOf); err == nil {
		t.Error("raise event without bus should fail")
	}
}

func TestResolveErrors(t *testing.T) {
	b := binding("x", 1, 0)
	if _, err := b.Resolve(&expr.ColumnRef{Var: "ghost", Column: "name"}, schemaOf); err == nil {
		t.Error("unknown variable")
	}
	if _, err := b.Resolve(&expr.ColumnRef{Var: "emp", Column: "ghost"}, schemaOf); err == nil {
		t.Error("unknown column")
	}
	multi := Binding{VarIndex: map[string]int{"a": 0, "b": 1}, Tuples: make([]types.Tuple, 2)}
	if _, err := multi.Resolve(&expr.ColumnRef{Column: "name"}, schemaOf); err == nil {
		t.Error("ambiguous unqualified ref")
	}
	if _, err := b.Resolve(&expr.ColumnRef{Var: "emp", Column: "name"}, func(int) *types.Schema { return nil }); err == nil {
		t.Error("nil schema")
	}
}

func TestSubstituteStatementKinds(t *testing.T) {
	b := binding("Ada", 7, 3)
	cases := []string{
		"select name, :NEW.emp.salary from emp where salary > :NEW.emp.salary",
		"select * from emp",
		"insert into emp(name, salary) values ('x', :NEW.emp.salary)",
		"update emp set salary = :OLD.emp.salary where name = 'x'",
		"delete from emp where salary < :NEW.emp.salary",
	}
	for _, sql := range cases {
		st, err := parser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := SubstituteStatement(st, b, schemaOf)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		// No Param refs survive substitution.
		checkNoParams(t, sub)
	}
}

func checkNoParams(t *testing.T, st parser.Statement) {
	t.Helper()
	var nodes []expr.Node
	switch s := st.(type) {
	case *parser.Select:
		nodes = append(nodes, s.Where)
		for _, it := range s.Items {
			nodes = append(nodes, it.Expr)
		}
	case *parser.Insert:
		nodes = append(nodes, s.Values...)
	case *parser.Update:
		nodes = append(nodes, s.Where)
		for _, sc := range s.Sets {
			nodes = append(nodes, sc.Value)
		}
	case *parser.Delete:
		nodes = append(nodes, s.Where)
	}
	for _, n := range nodes {
		expr.Walk(n, func(m expr.Node) bool {
			if ref, ok := m.(*expr.ColumnRef); ok && ref.Param {
				t.Errorf("param ref %s survived substitution", ref)
			}
			return true
		})
	}
}

func TestBareRefsNotSubstitutedInExecSQL(t *testing.T) {
	// "where emp.name='Fred'" addresses the TABLE, not the binding.
	b := binding("Bob", 1, 0)
	st, _ := parser.Parse("select * from emp where emp.name = 'Fred'")
	sub, err := SubstituteStatement(st, b, schemaOf)
	if err != nil {
		t.Fatal(err)
	}
	sel := sub.(*parser.Select)
	ref := sel.Where.(*expr.Binary).Left.(*expr.ColumnRef)
	if ref.Column != "name" {
		t.Error("bare table ref should survive")
	}
}

func TestMultiVariableBinding(t *testing.T) {
	// The IrisHouseAlert shape: raise event args from two variables.
	houseSchema := types.MustSchema(
		types.Column{Name: "hno", Kind: types.KindInt},
		types.Column{Name: "address", Kind: types.KindVarchar},
	)
	schemas := []*types.Schema{empSchema, houseSchema}
	b := Binding{
		VarIndex: map[string]int{"s": 0, "h": 1},
		Tuples: []types.Tuple{
			{types.NewString("Iris"), types.NewInt(1)},
			{types.NewInt(100), types.NewString("12 Oak Ln")},
		},
	}
	bus := event.NewBus()
	defer bus.Close()
	sub, _ := bus.Subscribe("E", 1)
	e := &Executor{Bus: bus}
	st, _ := parser.Parse("create trigger x from emp s, house h do raise event E(s.name, h.address)")
	act := st.(*parser.CreateTrigger).Do
	err := e.Execute(1, act, b, func(vi int) *types.Schema { return schemas[vi] })
	if err != nil {
		t.Fatal(err)
	}
	n := <-sub.C()
	if n.Args[0].Str() != "Iris" || n.Args[1].Str() != "12 Oak Ln" {
		t.Errorf("args = %v", n.Args)
	}
}
