// Package exec executes rule actions (§2, §5.4): when a trigger
// condition is satisfied for a tuple combination, the matched values are
// macro-substituted into the action — ":NEW notation ... allows
// reference to new updated data values ... Values matching the trigger
// condition are substituted into the trigger action using macro
// substitution. After substitution, the trigger action is evaluated."
//
// execSQL actions run against the embedded mini-SQL database; raise
// event actions publish on the event bus.
package exec

import (
	"fmt"
	"strings"
	"time"

	"triggerman/internal/event"
	"triggerman/internal/expr"
	"triggerman/internal/metrics"
	"triggerman/internal/minisql"
	"triggerman/internal/parser"
	"triggerman/internal/types"
)

// Binding carries the matched tuple combination for one firing.
type Binding struct {
	// VarIndex maps lower-cased tuple-variable names to combo positions.
	VarIndex map[string]int
	// Tuples holds the matched tuple per variable.
	Tuples []types.Tuple
	// Olds holds pre-update images (usually only the seed variable's).
	Olds []types.Tuple
}

// Resolve produces the value a column reference denotes under the
// binding. Unqualified references resolve only when there is exactly
// one tuple variable.
func (b Binding) Resolve(ref *expr.ColumnRef, schemaOf func(varIdx int) *types.Schema) (types.Value, error) {
	vi := -1
	if ref.Var == "" {
		if len(b.Tuples) != 1 {
			return types.Null(), fmt.Errorf("exec: unqualified reference %q is ambiguous over %d variables", ref.Column, len(b.Tuples))
		}
		vi = 0
	} else {
		idx, ok := b.VarIndex[strings.ToLower(ref.Var)]
		if !ok {
			return types.Null(), fmt.Errorf("exec: unknown tuple variable %q in action", ref.Var)
		}
		vi = idx
	}
	schema := schemaOf(vi)
	if schema == nil {
		return types.Null(), fmt.Errorf("exec: no schema for variable %q", ref.Var)
	}
	ci := schema.ColumnIndex(ref.Column)
	if ci < 0 {
		return types.Null(), fmt.Errorf("exec: unknown column %q of %q in action", ref.Column, ref.Var)
	}
	var tu types.Tuple
	if ref.Old {
		if vi < len(b.Olds) {
			tu = b.Olds[vi]
		}
	} else {
		if vi < len(b.Tuples) {
			tu = b.Tuples[vi]
		}
	}
	return tu.Get(ci), nil
}

// StmtRunner abstracts statement execution so the embedding system can
// wrap the database with update capture (actions that modify captured
// tables then produce new tokens — cascaded trigger firing).
type StmtRunner interface {
	ExecStmt(parser.Statement) (*minisql.Result, error)
}

// Executor runs trigger actions.
type Executor struct {
	// DB executes execSQL statements; may be nil if no trigger uses
	// execSQL.
	DB StmtRunner
	// Bus receives raise event publications; may be nil likewise.
	Bus *event.Bus
	// Inject, when set, runs before every action execution; a non-nil
	// error aborts the action. The fault-injection harness
	// (internal/faults.ActionInjector) installs its hook here to make
	// actions fail or panic on demand.
	Inject func(triggerID uint64) error
	// Hist, when non-nil, records the latency of every Execute call
	// (one observation per attempt, including failed ones).
	Hist *metrics.Histogram
	// Observe, when set, receives the duration of each delivery-side
	// phase inside an action: "execsql" (statement execution against the
	// database) and "deliver" (event-bus publication). The token tracer
	// installs a per-firing hook here to stamp the deliver stage.
	Observe func(phase string, d time.Duration)
}

// Execute runs one action for one firing.
func (e *Executor) Execute(triggerID uint64, act parser.Action, b Binding, schemaOf func(int) *types.Schema) error {
	if e.Hist != nil {
		begin := time.Now()
		defer func() { e.Hist.Observe(time.Since(begin)) }()
	}
	if e.Inject != nil {
		if err := e.Inject(triggerID); err != nil {
			return err
		}
	}
	switch a := act.(type) {
	case *parser.ExecSQL:
		if e.DB == nil {
			return fmt.Errorf("exec: execSQL action with no database configured")
		}
		st, err := SubstituteStatement(a.Stmt, b, schemaOf)
		if err != nil {
			return err
		}
		begin := time.Now()
		_, err = e.DB.ExecStmt(st)
		if e.Observe != nil {
			e.Observe("execsql", time.Since(begin))
		}
		return err
	case *parser.RaiseEvent:
		if e.Bus == nil {
			return fmt.Errorf("exec: raise event action with no event bus configured")
		}
		args := make(types.Tuple, len(a.Args))
		for i, arg := range a.Args {
			sub, err := substituteExpr(arg, b, schemaOf, true)
			if err != nil {
				return err
			}
			v, err := expr.EvalScalar(sub, expr.SingleEnv{})
			if err != nil {
				return err
			}
			args[i] = v
		}
		begin := time.Now()
		e.Bus.Raise(a.Name, args, triggerID)
		if e.Observe != nil {
			e.Observe("deliver", time.Since(begin))
		}
		return nil
	default:
		return fmt.Errorf("exec: unsupported action %T", act)
	}
}

// SubstituteStatement deep-copies an execSQL statement with every
// :NEW/:OLD parameter reference replaced by its bound value. Bare
// column references are left alone — they address the statement's
// target table.
func SubstituteStatement(st parser.Statement, b Binding, schemaOf func(int) *types.Schema) (parser.Statement, error) {
	switch s := st.(type) {
	case *parser.Select:
		out := &parser.Select{Table: s.Table}
		for _, item := range s.Items {
			ni := parser.SelectItem{Alias: item.Alias, Star: item.Star}
			if item.Expr != nil {
				e, err := substituteExpr(item.Expr, b, schemaOf, false)
				if err != nil {
					return nil, err
				}
				ni.Expr = e
			}
			out.Items = append(out.Items, ni)
		}
		var err error
		if out.Where, err = substituteExpr(s.Where, b, schemaOf, false); err != nil {
			return nil, err
		}
		return out, nil
	case *parser.Insert:
		out := &parser.Insert{Table: s.Table, Columns: append([]string(nil), s.Columns...)}
		for _, v := range s.Values {
			e, err := substituteExpr(v, b, schemaOf, false)
			if err != nil {
				return nil, err
			}
			out.Values = append(out.Values, e)
		}
		return out, nil
	case *parser.Update:
		out := &parser.Update{Table: s.Table}
		for _, sc := range s.Sets {
			e, err := substituteExpr(sc.Value, b, schemaOf, false)
			if err != nil {
				return nil, err
			}
			out.Sets = append(out.Sets, parser.SetClause{Column: sc.Column, Value: e})
		}
		var err error
		if out.Where, err = substituteExpr(s.Where, b, schemaOf, false); err != nil {
			return nil, err
		}
		return out, nil
	case *parser.Delete:
		out := &parser.Delete{Table: s.Table}
		var err error
		if out.Where, err = substituteExpr(s.Where, b, schemaOf, false); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, fmt.Errorf("exec: cannot substitute into %T", st)
	}
}

// substituteExpr clones n, replacing parameter references (and, when
// all is set, every column reference) with constant values from the
// binding.
func substituteExpr(n expr.Node, b Binding, schemaOf func(int) *types.Schema, all bool) (expr.Node, error) {
	switch t := n.(type) {
	case nil:
		return nil, nil
	case *expr.Const, *expr.Placeholder:
		return expr.Clone(t), nil
	case *expr.ColumnRef:
		if t.Param || all {
			v, err := b.Resolve(t, schemaOf)
			if err != nil {
				return nil, err
			}
			return expr.Lit(v), nil
		}
		return expr.Clone(t), nil
	case *expr.Unary:
		c, err := substituteExpr(t.Child, b, schemaOf, all)
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: t.Op, Child: c}, nil
	case *expr.Binary:
		l, err := substituteExpr(t.Left, b, schemaOf, all)
		if err != nil {
			return nil, err
		}
		r, err := substituteExpr(t.Right, b, schemaOf, all)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: t.Op, Left: l, Right: r}, nil
	case *expr.FuncCall:
		out := &expr.FuncCall{Name: t.Name}
		for _, a := range t.Args {
			e, err := substituteExpr(a, b, schemaOf, all)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, e)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("exec: cannot substitute %T", n)
	}
}
